#pragma once

/// \file
/// \brief Network-facing KV server over ShardedAltIndex (DESIGN.md §13).
///
/// Architecture (one process):
///
///   acceptor thread ── accept() ──> hands each connection to a worker
///   worker thread ×N ── epoll ET ──> drains ready connections, coalesces
///                                    GETs into one LookupBatch per flush
///
/// Each worker owns a private epoll instance; a connection is registered with
/// exactly one worker for its whole life, so all per-connection state is
/// single-threaded after the locked handoff queue. The interesting part is the
/// drain cycle: every epoll wake-up pins the epoch of every shard once, walks
/// the ready connections, and funnels their GET frames into an 8–32-entry
/// AMAC batch (AltIndex::LookupBatch, PR 1) — prefetch interleaving driven by
/// real traffic instead of a synthetic driver. Non-GET frames flush the
/// pending batch first, which preserves per-connection response order under
/// pipelining.
///
/// The wire protocol is docs/PROTOCOL.md (src/server/protocol.h).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/spinlock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "shard/sharded_alt_index.h"

namespace alt {
namespace server {

struct ServerOptions {
  /// TCP port to bind on 0.0.0.0; 0 picks an ephemeral port (see port()).
  uint16_t port = 9117;

  /// Worker (epoll + drain) threads. Connections are assigned round-robin.
  int num_workers = 2;

  /// Max GET keys coalesced into one LookupBatch flush; clamped to [1, 64].
  /// 1 degenerates to scalar lookups (the A/B baseline in EXPERIMENTS.md).
  size_t batch_size = 16;

  /// Backpressure (DESIGN.md §13.4): a worker stops decoding frames from a
  /// connection whose pending output exceeds this many bytes, leaving further
  /// input in the kernel socket buffer until the client drains responses.
  size_t max_pending_out_bytes = 1u << 20;

  /// Fairness: at most this many frames decoded per connection per drain
  /// cycle; a connection with more buffered input yields to its neighbours
  /// and continues next cycle.
  size_t max_frames_per_drain = 128;

  /// SCAN count clamp (responses stay under protocol.h kMaxBodyLen).
  uint32_t max_scan_count = 1024;

  /// Index configuration (shard count, partition, per-shard AltOptions).
  shard::ShardedOptions sharded;
};

/// Aggregated server-side counters (also exported through the STATS opcode
/// and the process metrics registry — see common/metrics.h kServer*).
struct ServerStats {
  uint64_t accepts = 0;
  uint64_t frames_in = 0;
  uint64_t responses_out = 0;
  uint64_t malformed = 0;
  uint64_t batch_flushes = 0;
  uint64_t batch_keys = 0;
  uint64_t open_connections = 0;
  /// occupancy_hist[n] = flushes that carried exactly n keys (n <= 64).
  std::vector<uint64_t> occupancy_hist;

  double mean_batch_occupancy() const {
    return batch_flushes > 0
               ? static_cast<double>(batch_keys) / static_cast<double>(batch_flushes)
               : 0.0;
  }
};

class KvServer {
 public:
  explicit KvServer(ServerOptions options = ServerOptions{});
  ~KvServer();

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// Bulk-load the index before Start() (single-threaded phase, sorted
  /// duplicate-free input — ConcurrentIndex::BulkLoad contract).
  Status Preload(const Key* keys, const Value* values, size_t n);

  /// Bind, listen, spawn acceptor + workers. Returns after the socket is
  /// live: a client may connect as soon as Start() returns OK.
  Status Start();

  /// Stop accepting, close every connection, join all threads. Idempotent;
  /// also run by the destructor.
  void Stop();

  /// Actual bound port (after Start(); resolves port 0).
  uint16_t port() const { return bound_port_; }

  ServerStats CollectStats() const;

  /// JSON document served by the STATS opcode: {"server":{...},"metrics":{...}}.
  std::string StatsJson() const;

  shard::ShardedAltIndex& index() { return *index_; }
  const ServerOptions& options() const { return options_; }

 private:
  class Worker;
  friend class Worker;

  void AcceptLoop();

  ServerOptions options_;
  std::unique_ptr<shard::ShardedAltIndex> index_;

  int listen_fd_ = -1;
  int accept_wake_fd_ = -1;  ///< eventfd that interrupts the acceptor's epoll
  int accept_epfd_ = -1;
  uint16_t bound_port_ = 0;
  bool preloaded_ = false;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread accept_thread_;
  std::atomic<uint64_t> next_worker_{0};
  std::atomic<uint64_t> accepts_{0};
};

}  // namespace server
}  // namespace alt
