#include "core/gpl.h"

#include <cmath>
#include <limits>

namespace alt {

std::vector<Segment> GplSegment(const Key* keys, size_t n, double epsilon) {
  std::vector<Segment> segments;
  if (n == 0) return segments;

  size_t seg_start = 0;
  while (seg_start < n) {
    const Key first = keys[seg_start];
    double upper = -std::numeric_limits<double>::infinity();
    double lower = std::numeric_limits<double>::infinity();
    size_t cur = seg_start + 1;
    // Alg. 1: extend while MAX(upper_error, lower_error) <= epsilon. With the
    // midpoint model the two errors are equal: (upper-lower)/2 * dx.
    while (cur < n) {
      const double dx = static_cast<double>(keys[cur] - first);
      const double new_slope = static_cast<double>(cur - seg_start) / dx;
      double u = upper > new_slope ? upper : new_slope;
      double l = lower < new_slope ? lower : new_slope;
      if ((u - l) * dx > 2.0 * epsilon) break;  // pessimistic split
      upper = u;
      lower = l;
      ++cur;
    }
    const size_t len = cur - seg_start;
    double slope = 0.0;
    if (len >= 2) slope = 0.5 * (upper + lower);
    segments.push_back(Segment{seg_start, len, slope});
    seg_start = cur;
  }
  return segments;
}

std::vector<Segment> ShrinkingConeSegment(const Key* keys, size_t n, double epsilon) {
  std::vector<Segment> segments;
  if (n == 0) return segments;

  size_t seg_start = 0;
  while (seg_start < n) {
    const Key first = keys[seg_start];
    double upper = std::numeric_limits<double>::infinity();
    double lower = -std::numeric_limits<double>::infinity();
    size_t cur = seg_start + 1;
    while (cur < n) {
      const double dx = static_cast<double>(keys[cur] - first);
      const double dy = static_cast<double>(cur - seg_start);
      const double s = dy / dx;
      if (s > upper || s < lower) break;  // outside the cone
      // Narrow the cone to lines passing within +-epsilon of this point.
      const double hi = (dy + epsilon) / dx;
      const double lo = (dy - epsilon) / dx;
      if (hi < upper) upper = hi;
      if (lo > lower) lower = lo;
      ++cur;
    }
    const size_t len = cur - seg_start;
    double slope = 0.0;
    if (len >= 2) {
      // Any slope inside the final cone works; take the midpoint (clamped to
      // finite values for 2-point cones).
      double u = upper, l = lower;
      if (!std::isfinite(u)) u = l;
      if (!std::isfinite(l)) l = u;
      slope = 0.5 * (u + l);
      if (!std::isfinite(slope)) {
        slope = static_cast<double>(len - 1) /
                static_cast<double>(keys[seg_start + len - 1] - first);
      }
    }
    segments.push_back(Segment{seg_start, len, slope});
    seg_start = cur;
  }
  return segments;
}

double MaxSegmentError(const Key* keys, const Segment& seg) {
  const Key first = keys[seg.start];
  double max_err = 0.0;
  for (size_t i = 0; i < seg.length; ++i) {
    const double predicted =
        seg.slope * static_cast<double>(keys[seg.start + i] - first);
    const double err = std::fabs(predicted - static_cast<double>(i));
    if (err > max_err) max_err = err;
  }
  return max_err;
}

}  // namespace alt
