#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "art/art_tree.h"
#include "common/key_codec.h"
#include "common/prefetch.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"

namespace alt {

/// \brief The fast pointer buffer (§III-C): maps each GPL model to the deepest
/// ART node covering the model's key range, so secondary searches for conflict
/// data resume mid-tree instead of at the root.
///
/// Entries are deduplicated by target node (the merge scheme, §III-C2): each
/// ART node's `fp_slot` header field names its (single) entry, making the
/// structure-modification callbacks O(1). Writers take the per-entry spin lock
/// (§III-E); readers are lock-free and conservative:
///  - the entry's (depth, prefix) is only used to *validate* that a key lies
///    under the target subtree; the traversal depth itself is re-read from the
///    node's `match_level` under its OLC version, and
///  - entry updates only ever *widen* coverage (replacement keeps it equal,
///    prefix split / removal lift the entry toward the root), so a torn
///    node/meta pair can cause at worst a futile subtree probe that falls back
///    to a root traversal — never a wrong result.
///
/// Storage is chunked so entry addresses are stable while the buffer grows
/// (tail models append entries at runtime).
class FastPointerBuffer : public art::ArtStructureListener {
 public:
  struct Ref {
    art::Node* node;
    int depth;
    Key prefix;
  };

  FastPointerBuffer();
  ~FastPointerBuffer() override;

  /// Register `node` (at `depth` = node->match_level, covering keys that share
  /// `prefix`'s first `depth` bytes). Returns the entry index; if the node
  /// already has an entry, returns that one (merge scheme). Thread-safe.
  int32_t AddPointer(art::Node* node, int depth, Key prefix);

  /// Current target of entry `slot`. Optimistic lock-free read, validated by
  /// caller: a stale Ref is caught by the ART descent's version validation
  /// (kRestart) and falls back to a root traversal — see class comment.
  Ref Get(int32_t slot) const ALT_OPTIMISTIC_PATH ALT_REQUIRES_EPOCH;

  /// Batched read path stage hook: pull entry `slot`'s line ahead of Get so a
  /// kGoArt outcome can resolve its fast pointer without stalling the group.
  void PrefetchEntry(int32_t slot) const {
    if (slot >= 0) PrefetchRead(&EntryAt(static_cast<size_t>(slot)));
  }

  /// \return true iff `key` shares the entry's validated prefix, i.e. the
  /// hinted subtree is known to cover it.
  static bool Covers(const Ref& ref, Key key) {
    return KeyPrefix(key, ref.depth) == ref.prefix;
  }

  /// Number of (merged) entries.
  size_t Size() const { return count_.load(std::memory_order_acquire); }

  /// Number of AddPointer calls (what the buffer would hold without the merge
  /// scheme) — the Fig. 10(b) ablation statistic.
  size_t UnmergedCount() const { return add_calls_.load(std::memory_order_relaxed); }

  size_t MemoryBytes() const;

  // --- ArtStructureListener (called with the affected node's lock held) -----
  void OnNodeReplaced(int32_t slot, art::Node* old_node, art::Node* new_node) override;
  void OnPrefixSplit(int32_t slot, art::Node* node, art::Node* new_parent) override;
  void OnNodeRemoved(int32_t slot, art::Node* node, art::Node* ancestor) override;

 private:
  static constexpr size_t kChunkBits = 12;  // 4096 entries per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = 1 << 14;

  struct Entry {
    SpinLock lock;
    /// Writers (initialization + the On* SMO callbacks) hold `lock`; the
    /// lock-free reader is Get(), the sanctioned ALT_OPTIMISTIC_PATH escape
    /// (torn reads are benign — see the class comment).
    std::atomic<art::Node*> node GUARDED_BY(lock){nullptr};
    /// prefix | depth: the prefix's low byte is always 0 (depth <= 7 for
    /// inner nodes), so the depth occupies the low 8 bits.
    std::atomic<uint64_t> meta GUARDED_BY(lock){0};
  };

  Entry& EntryAt(size_t i) const {
    return chunks_[i >> kChunkBits][i & (kChunkSize - 1)];
  }

  static uint64_t PackMeta(Key prefix, int depth) {
    return prefix | static_cast<uint64_t>(depth & 0xFF);
  }

  mutable std::unique_ptr<Entry[]> chunks_[kMaxChunks];
  std::atomic<size_t> count_{0};
  std::atomic<size_t> add_calls_{0};
  SpinLock grow_lock_;
};

}  // namespace alt
