# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(epoch_test "/root/repo/build/tests/epoch_test")
set_tests_properties(epoch_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gpl_test "/root/repo/build/tests/gpl_test")
set_tests_properties(gpl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(art_test "/root/repo/build/tests/art_test")
set_tests_properties(art_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gpl_model_test "/root/repo/build/tests/gpl_model_test")
set_tests_properties(gpl_model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fast_pointer_test "/root/repo/build/tests/fast_pointer_test")
set_tests_properties(fast_pointer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(alt_index_test "/root/repo/build/tests/alt_index_test")
set_tests_properties(alt_index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(retraining_test "/root/repo/build/tests/retraining_test")
set_tests_properties(retraining_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(concurrency_test "/root/repo/build/tests/concurrency_test")
set_tests_properties(concurrency_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(olc_btree_test "/root/repo/build/tests/olc_btree_test")
set_tests_properties(olc_btree_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(art_edge_test "/root/repo/build/tests/art_edge_test")
set_tests_properties(art_edge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;23;alt_add_test;/root/repo/tests/CMakeLists.txt;0;")
