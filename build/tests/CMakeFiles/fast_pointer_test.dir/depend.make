# Empty dependencies file for fast_pointer_test.
# This may be replaced when dependencies are built.
