#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/factory.h"
#include "common/epoch.h"
#include "common/random.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

// Multi-threaded contract tests, parameterized over every concurrent index.
// Threads own disjoint key shards, so each thread can assert read-your-writes
// without a global history; a final single-threaded sweep verifies the state.
class ConcurrentIndexTest : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

constexpr int kThreads = 8;

TEST_P(ConcurrentIndexTest, DisjointInsertersAllLand) {
  auto index = MakeIndex(GetParam());
  auto keys = GenerateKeys(Dataset::kOsm, 60000, 3);
  std::vector<Key> bulk(keys.begin(), keys.begin() + 20000);
  std::vector<Value> vals(bulk.size());
  for (size_t i = 0; i < bulk.size(); ++i) vals[i] = ValueFor(bulk[i]);
  ASSERT_TRUE(index->BulkLoad(bulk.data(), vals.data(), bulk.size()).ok());

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 20000 + static_cast<size_t>(t); i < keys.size();
           i += kThreads) {
        if (!index->Insert(keys[i], ValueFor(keys[i]))) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load()) << index->Name();
  EXPECT_EQ(index->Size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    Value v;
    ASSERT_TRUE(index->Lookup(keys[i], &v)) << index->Name() << " " << i;
    EXPECT_EQ(v, ValueFor(keys[i]));
  }
}

TEST_P(ConcurrentIndexTest, ReadersNeverSeeTornValues) {
  auto index = MakeIndex(GetParam());
  auto keys = GenerateKeys(Dataset::kLibio, 20000, 7);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = keys[i] * 2;
  ASSERT_TRUE(index->BulkLoad(keys.data(), vals.data(), keys.size()).ok());

  // Updaters flip values between k*2 and k*2+100; readers must only ever see
  // one of the two legal values.
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(55 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const Key k = keys[rng.NextBounded(keys.size())];
        index->Update(k, k * 2 + (rng.Next() & 1 ? 100 : 0));
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(99 + t);
      for (int i = 0; i < 30000; ++i) {
        const Key k = keys[rng.NextBounded(keys.size())];
        Value v;
        if (!index->Lookup(k, &v)) {
          failed.store(true);
          continue;
        }
        if (v != k * 2 && v != k * 2 + 100) failed.store(true);
      }
    });
  }
  for (size_t t = 2; t < threads.size(); ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads[0].join();
  threads[1].join();
  EXPECT_FALSE(failed.load()) << index->Name();
}

TEST_P(ConcurrentIndexTest, MixedWorkloadFinalStateCorrect) {
  auto index = MakeIndex(GetParam());
  auto keys = GenerateKeys(Dataset::kFb, 40000, 13);
  // Bulk: first half. Each thread owns keys with i % kThreads == t in the
  // second half and performs insert -> update -> (maybe remove).
  const size_t half = keys.size() / 2;
  std::vector<Value> vals(half);
  for (size_t i = 0; i < half; ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index->BulkLoad(keys.data(), vals.data(), half).ok());

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = half + static_cast<size_t>(t); i < keys.size();
           i += kThreads) {
        const Key k = keys[i];
        if (!index->Insert(k, 1)) failed.store(true);
        if (!index->Update(k, ValueFor(k))) failed.store(true);
        Value v;
        if (!index->Lookup(k, &v) || v != ValueFor(k)) failed.store(true);
        if (i % 3 == 0) {
          if (!index->Remove(k)) failed.store(true);
          if (index->Lookup(k, &v)) failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load()) << index->Name();
  for (size_t i = half; i < keys.size(); ++i) {
    Value v;
    const bool expect = i % 3 != 0;
    ASSERT_EQ(index->Lookup(keys[i], &v), expect) << index->Name() << " " << i;
    if (expect) EXPECT_EQ(v, ValueFor(keys[i]));
  }
}

TEST_P(ConcurrentIndexTest, ScansRemainSortedUnderChurn) {
  auto index = MakeIndex(GetParam());
  auto keys = GenerateKeys(Dataset::kOsm, 30000, 21);
  const size_t half = keys.size() / 2;
  std::vector<Key> bulk;
  std::vector<Value> vals;
  for (size_t i = 0; i < keys.size(); i += 2) {
    bulk.push_back(keys[i]);
    vals.push_back(ValueFor(keys[i]));
  }
  ASSERT_TRUE(index->BulkLoad(bulk.data(), vals.data(), bulk.size()).ok());

  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (size_t i = 1; i < keys.size(); i += 2) {
      index->Insert(keys[i], ValueFor(keys[i]));
    }
  });
  std::thread scanner([&] {
    std::vector<std::pair<Key, Value>> out;
    Rng rng(31);
    for (int r = 0; r < 60; ++r) {
      const Key start = keys[rng.NextBounded(keys.size())];
      index->Scan(start, 100, &out);
      for (size_t i = 1; i < out.size(); ++i) {
        if (out[i - 1].first >= out[i].first) failed.store(true);
      }
      for (const auto& [k, v] : out) {
        if (k < start || v != ValueFor(k)) failed.store(true);
      }
    }
  });
  writer.join();
  scanner.join();
  EXPECT_FALSE(failed.load()) << index->Name();
  (void)half;
}

TEST_P(ConcurrentIndexTest, BatchedReadsAgainstChurn) {
  // LookupBatch linearizability under write traffic: stable keys (never
  // removed, values flipped between two legal states) must always be found
  // with a legal value; churn keys (inserted/removed in cycles, plus enough
  // volume to drive alt's expansion path) may come back either way, but a hit
  // must carry the key's one legal value — never torn, never stale-freed.
  auto index = MakeIndex(GetParam());
  auto keys = GenerateKeys(Dataset::kFb, 40000, 13);
  std::vector<Key> stable, churn;
  for (size_t i = 0; i < keys.size(); ++i) {
    (i & 1 ? churn : stable).push_back(keys[i]);
  }
  std::vector<Value> vals(stable.size());
  for (size_t i = 0; i < stable.size(); ++i) vals[i] = stable[i] * 2;
  ASSERT_TRUE(index->BulkLoad(stable.data(), vals.data(), stable.size()).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> writer_failures{0};
  std::atomic<int> stable_misses{0};
  std::atomic<int> bad_stable_values{0};
  std::atomic<int> bad_churn_values{0};
  std::vector<std::thread> threads;
  // Two writers cycle insert/remove over disjoint churn shards.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      while (!stop.load(std::memory_order_acquire)) {
        for (size_t i = static_cast<size_t>(t); i < churn.size(); i += 2) {
          if (!index->Insert(churn[i], ValueFor(churn[i]))) ++writer_failures;
        }
        for (size_t i = static_cast<size_t>(t); i < churn.size(); i += 2) {
          if (!index->Remove(churn[i])) ++writer_failures;
          if (stop.load(std::memory_order_acquire)) break;
        }
      }
    });
  }
  // One updater flips stable values between the two legal states.
  threads.emplace_back([&] {
    Rng rng(77);
    while (!stop.load(std::memory_order_acquire)) {
      const Key k = stable[rng.NextBounded(stable.size())];
      index->Update(k, k * 2 + (rng.Next() & 1 ? 100 : 0));
    }
  });
  // Four readers issue mixed batches through the batched path.
  constexpr size_t kWidth = 32;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(301 + t);
      Key batch[kWidth];
      Value out[kWidth];
      bool found[kWidth];
      for (int iter = 0; iter < 2000; ++iter) {
        for (size_t i = 0; i < kWidth; ++i) {
          batch[i] = (rng.Next() & 1) ? stable[rng.NextBounded(stable.size())]
                                      : churn[rng.NextBounded(churn.size())];
        }
        index->LookupBatch(batch, kWidth, out, found);
        for (size_t i = 0; i < kWidth; ++i) {
          const Key k = batch[i];
          const bool is_stable =
              std::binary_search(stable.begin(), stable.end(), k);
          if (is_stable) {
            if (!found[i]) {
              ++stable_misses;
            } else if (out[i] != k * 2 && out[i] != k * 2 + 100) {
              ++bad_stable_values;
            }
          } else if (found[i] && out[i] != ValueFor(k)) {
            ++bad_churn_values;
          }
        }
      }
    });
  }
  // Join readers first (they bound the test), then stop the write traffic.
  for (size_t t = 3; t < threads.size(); ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = 0; t < 3; ++t) threads[t].join();
  EXPECT_EQ(writer_failures.load(), 0) << index->Name();
  EXPECT_EQ(stable_misses.load(), 0) << index->Name();
  EXPECT_EQ(bad_stable_values.load(), 0) << index->Name();
  EXPECT_EQ(bad_churn_values.load(), 0) << index->Name();

  // Final single-threaded sweep: batch results match scalar on the quiesced
  // index.
  std::vector<Value> out(keys.size());
  std::unique_ptr<bool[]> found(new bool[keys.size()]);
  index->LookupBatch(keys.data(), keys.size(), out.data(), found.get());
  for (size_t i = 0; i < keys.size(); ++i) {
    Value v;
    const bool scalar = index->Lookup(keys[i], &v);
    ASSERT_EQ(found[i], scalar) << index->Name() << " key " << keys[i];
    if (scalar) EXPECT_EQ(out[i], v);
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, ConcurrentIndexTest,
                         ::testing::Values("alt", "alex", "lipp", "xindex",
                                           "finedex", "art", "btree-olc", "btree"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace alt
