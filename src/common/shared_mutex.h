#pragma once

#include <shared_mutex>

#include "common/thread_annotations.h"

namespace alt {

/// \brief std::shared_mutex wrapped as a clang thread-safety capability.
///
/// libstdc++'s std::shared_mutex carries no annotations, so acquisitions
/// through it (std::unique_lock / std::shared_lock) are invisible to the
/// analysis. This wrapper + its two RAII guards make reader-writer locking in
/// the baselines (BTreeIndex oracle, XIndexLike group buffers) checkable.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Exclusive RAII guard for SharedMutex (replaces std::unique_lock).
class SCOPED_CAPABILITY WriteLockGuard {
 public:
  explicit WriteLockGuard(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriteLockGuard() RELEASE() { mu_.unlock(); }
  WriteLockGuard(const WriteLockGuard&) = delete;
  WriteLockGuard& operator=(const WriteLockGuard&) = delete;

 private:
  SharedMutex& mu_;
};

/// Shared RAII guard for SharedMutex (replaces std::shared_lock).
class SCOPED_CAPABILITY ReadLockGuard {
 public:
  explicit ReadLockGuard(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReadLockGuard() RELEASE() { mu_.unlock_shared(); }
  ReadLockGuard(const ReadLockGuard&) = delete;
  ReadLockGuard& operator=(const ReadLockGuard&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace alt
