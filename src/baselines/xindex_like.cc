#include "baselines/xindex_like.h"

#include <algorithm>
#include <chrono>

#include "common/epoch.h"

namespace alt {

void XIndexLike::GroupData::Train() {
  const size_t n = keys.size();
  base = n > 0 ? keys[0] : 0;
  slope = 0;
  max_error = 0;
  if (n >= 2 && keys[n - 1] > keys[0]) {
    slope = static_cast<double>(n - 1) / static_cast<double>(keys[n - 1] - keys[0]);
  }
  for (size_t i = 0; i < n; ++i) {
    const double pred = slope * static_cast<double>(keys[i] - base);
    const double err = pred > static_cast<double>(i)
                           ? pred - static_cast<double>(i)
                           : static_cast<double>(i) - pred;
    if (err > max_error) max_error = static_cast<uint32_t>(err) + 1;
  }
}

size_t XIndexLike::GroupData::LowerBound(Key key) const {
  const size_t n = keys.size();
  if (n == 0) return 0;
  int64_t pred = 0;
  if (key > base) {
    pred = static_cast<int64_t>(slope * static_cast<double>(key - base));
    if (pred >= static_cast<int64_t>(n)) pred = static_cast<int64_t>(n) - 1;
  }
  int64_t lo = pred - max_error - 1;
  int64_t hi = pred + max_error + 1;
  if (lo < 0) lo = 0;
  if (hi > static_cast<int64_t>(n)) hi = static_cast<int64_t>(n);
  // The window is only valid for keys the model was trained on; widen to the
  // full array if the window boundaries do not bracket `key`.
  if (lo > 0 && keys[static_cast<size_t>(lo - 1)] >= key) lo = 0;
  if (hi < static_cast<int64_t>(n) && keys[static_cast<size_t>(hi)] < key) {
    hi = static_cast<int64_t>(n);
  }
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (keys[static_cast<size_t>(mid)] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<size_t>(lo);
}

size_t XIndexLike::GroupData::Find(Key key) const {
  const size_t pos = LowerBound(key);
  if (pos < keys.size() && keys[pos] == key) return pos;
  return keys.size();
}

XIndexLike::~XIndexLike() {
  stop_.store(true, std::memory_order_release);
  if (bg_thread_.joinable()) bg_thread_.join();
}

Status XIndexLike::BulkLoad(const Key* keys, const Value* values, size_t n) {
  if (n == 0) return Status::InvalidArgument("empty bulk load");
  for (size_t i = 1; i < n; ++i) {
    if (keys[i] <= keys[i - 1]) {
      return Status::InvalidArgument("keys must be sorted and duplicate-free");
    }
  }
  for (size_t start = 0; start < n; start += kGroupSize) {
    const size_t len = std::min<size_t>(kGroupSize, n - start);
    auto g = std::make_unique<Group>();
    g->first_key = keys[start];
    auto* gd = new GroupData();
    gd->keys.assign(keys + start, keys + start + len);
    gd->values.assign(values + start, values + start + len);
    gd->Train();
    g->data.store(gd, std::memory_order_release);
    pivots_.push_back(keys[start]);
    groups_.push_back(std::move(g));
  }
  // Train the root model over the pivots (RMI level 0).
  root_base_ = pivots_[0];
  root_slope_ = 0;
  root_error_ = 0;
  const size_t m = pivots_.size();
  if (m >= 2 && pivots_[m - 1] > pivots_[0]) {
    root_slope_ =
        static_cast<double>(m - 1) / static_cast<double>(pivots_[m - 1] - pivots_[0]);
  }
  for (size_t i = 0; i < m; ++i) {
    const double pred = root_slope_ * static_cast<double>(pivots_[i] - root_base_);
    const double err = pred > static_cast<double>(i)
                           ? pred - static_cast<double>(i)
                           : static_cast<double>(i) - pred;
    if (err > root_error_) root_error_ = static_cast<uint32_t>(err) + 1;
  }
  size_.store(n, std::memory_order_relaxed);
  bg_thread_ = std::thread([this] { BackgroundLoop(); });
  return Status::OK();
}

XIndexLike::Group* XIndexLike::LocateGroup(Key key) const {
  const size_t m = pivots_.size();
  int64_t pred = 0;
  if (key > root_base_) {
    pred = static_cast<int64_t>(root_slope_ * static_cast<double>(key - root_base_));
    if (pred >= static_cast<int64_t>(m)) pred = static_cast<int64_t>(m) - 1;
  }
  int64_t lo = pred - root_error_ - 1;
  int64_t hi = pred + root_error_ + 1;
  if (lo < 0) lo = 0;
  if (hi > static_cast<int64_t>(m)) hi = static_cast<int64_t>(m);
  if (lo > 0 && pivots_[static_cast<size_t>(lo - 1)] > key) lo = 0;
  if (hi < static_cast<int64_t>(m) && pivots_[static_cast<size_t>(hi)] <= key) {
    hi = static_cast<int64_t>(m);
  }
  // upper_bound(key) - 1 within [lo, hi).
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (pivots_[static_cast<size_t>(mid)] <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const size_t idx = lo == 0 ? 0 : static_cast<size_t>(lo - 1);
  return groups_[idx].get();
}

bool XIndexLike::Lookup(Key key, Value* out) {
  EpochGuard g;
  Group* grp = LocateGroup(key);
  {
    ReadLockGuard lock(grp->buffer_mu);
    auto it = grp->buffer.find(key);
    if (it != grp->buffer.end()) {
      if (!it->second.has_value()) return false;  // tombstone
      *out = *it->second;
      return true;
    }
  }
  const GroupData* gd = grp->data.load(std::memory_order_acquire);
  const size_t pos = gd->Find(key);
  if (pos == gd->keys.size()) return false;
  *out = gd->values[pos];
  return true;
}

bool XIndexLike::Insert(Key key, Value value) {
  EpochGuard g;
  Group* grp = LocateGroup(key);
  WriteLockGuard lock(grp->buffer_mu);
  auto it = grp->buffer.find(key);
  if (it != grp->buffer.end()) {
    if (it->second.has_value()) return false;  // live buffer entry
    it->second = value;                        // resurrect over a tombstone
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const GroupData* gd = grp->data.load(std::memory_order_acquire);
  if (gd->Find(key) != gd->keys.size()) return false;  // lives in the array
  grp->buffer.emplace(key, value);
  grp->buffer_count.fetch_add(1, std::memory_order_relaxed);
  size_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool XIndexLike::Update(Key key, Value value) {
  EpochGuard g;
  Group* grp = LocateGroup(key);
  WriteLockGuard lock(grp->buffer_mu);
  auto it = grp->buffer.find(key);
  if (it != grp->buffer.end()) {
    if (!it->second.has_value()) return false;
    it->second = value;
    return true;
  }
  const GroupData* gd = grp->data.load(std::memory_order_acquire);
  if (gd->Find(key) == gd->keys.size()) return false;
  // Shadow the immutable array entry through the buffer.
  grp->buffer.emplace(key, value);
  grp->buffer_count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool XIndexLike::Remove(Key key) {
  EpochGuard g;
  Group* grp = LocateGroup(key);
  WriteLockGuard lock(grp->buffer_mu);
  auto it = grp->buffer.find(key);
  const GroupData* gd = grp->data.load(std::memory_order_acquire);
  const bool in_array = gd->Find(key) != gd->keys.size();
  if (it != grp->buffer.end()) {
    if (!it->second.has_value()) return false;  // already tombstoned
    if (in_array) {
      it->second = std::nullopt;
    } else {
      grp->buffer.erase(it);
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  if (!in_array) return false;
  grp->buffer.emplace(key, std::nullopt);
  grp->buffer_count.fetch_add(1, std::memory_order_relaxed);
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

size_t XIndexLike::Scan(Key start, size_t count,
                        std::vector<std::pair<Key, Value>>* out) {
  out->clear();
  if (count == 0) return 0;
  EpochGuard g;
  // Find the starting group index.
  size_t gi = 0;
  {
    size_t lo = 0, hi = pivots_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (pivots_[mid] <= start) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    gi = lo == 0 ? 0 : lo - 1;
  }
  for (; gi < groups_.size() && out->size() < count; ++gi) {
    Group* grp = groups_[gi].get();
    ReadLockGuard lock(grp->buffer_mu);
    const GroupData* gd = grp->data.load(std::memory_order_acquire);
    size_t ai = gd->LowerBound(start);
    auto bi = grp->buffer.lower_bound(start);
    while (out->size() < count &&
           (ai < gd->keys.size() || bi != grp->buffer.end())) {
      const bool take_array =
          bi == grp->buffer.end() ||
          (ai < gd->keys.size() && gd->keys[ai] < bi->first);
      if (take_array) {
        out->emplace_back(gd->keys[ai], gd->values[ai]);
        ++ai;
      } else {
        if (ai < gd->keys.size() && gd->keys[ai] == bi->first) ++ai;  // shadowed
        if (bi->second.has_value()) out->emplace_back(bi->first, *bi->second);
        ++bi;
      }
    }
  }
  return out->size();
}

void XIndexLike::CompactGroup(Group* grp) {
  WriteLockGuard lock(grp->buffer_mu);
  if (grp->buffer.empty()) return;
  GroupData* old = grp->data.load(std::memory_order_acquire);
  auto* merged = new GroupData();
  merged->keys.reserve(old->keys.size() + grp->buffer.size());
  merged->values.reserve(merged->keys.capacity());
  size_t ai = 0;
  auto bi = grp->buffer.begin();
  while (ai < old->keys.size() || bi != grp->buffer.end()) {
    const bool take_array = bi == grp->buffer.end() ||
                            (ai < old->keys.size() && old->keys[ai] < bi->first);
    if (take_array) {
      merged->keys.push_back(old->keys[ai]);
      merged->values.push_back(old->values[ai]);
      ++ai;
    } else {
      if (ai < old->keys.size() && old->keys[ai] == bi->first) ++ai;  // shadowed
      if (bi->second.has_value()) {
        merged->keys.push_back(bi->first);
        merged->values.push_back(*bi->second);
      }
      ++bi;
    }
  }
  merged->Train();
  grp->data.store(merged, std::memory_order_release);
  grp->buffer.clear();
  grp->buffer_count.store(0, std::memory_order_relaxed);
  EpochManager::Global().Retire(old,
                                [](void* p) { delete static_cast<GroupData*>(p); });
  compactions_.fetch_add(1, std::memory_order_relaxed);
}

void XIndexLike::BackgroundLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    bool did_work = false;
    for (auto& g : groups_) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (g->buffer_count.load(std::memory_order_relaxed) >= kCompactThreshold) {
        EpochGuard guard;
        CompactGroup(g.get());
        did_work = true;
      }
    }
    if (!did_work) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

size_t XIndexLike::MemoryUsage() const {
  size_t total = pivots_.size() * (sizeof(Key) + sizeof(void*));
  for (const auto& g : groups_) {
    total += sizeof(Group);
    const GroupData* gd = g->data.load(std::memory_order_acquire);
    total += gd->keys.size() * (sizeof(Key) + sizeof(Value)) + sizeof(GroupData);
    // std::map node overhead for the delta buffer.
    total += g->buffer_count.load(std::memory_order_relaxed) *
             (sizeof(Key) + sizeof(Value) + 48);
  }
  return total;
}

}  // namespace alt
