file(REMOVE_RECURSE
  "libalt_common.a"
)
