#pragma once

#include <atomic>

#include "common/index_interface.h"
#include "common/optlock.h"

namespace alt {

/// \brief Concurrent B+-tree with optimistic lock coupling (the OLC B-tree of
/// Leis et al., DaMoN'16) — the "traditional index" yardstick the paper's
/// introduction measures learned indexes against ("the average read
/// performance of a learned index is 1.5x-3x faster than that of a B-tree").
///
/// Design:
///  - fixed fanout inner/leaf nodes, eager top-down splits (a full node met
///    during descent is split immediately, so parents always have room),
///  - per-node OptLock versions: optimistic reads, exclusive writes,
///  - leaves are forward-linked for range scans,
///  - removals are lazy (no underflow merging): standard for OLC teaching
///    implementations and irrelevant to the paper's insert/lookup workloads.
///
/// Thread-safety matches the other indexes: BulkLoad first, then any mix of
/// concurrent operations, no EpochGuard needed. The tree never frees a node
/// mid-operation: a split keeps the original node as the left half and only
/// allocates a new sibling, removals are lazy, and every node lives until the
/// destructor — so nothing is ever retired through the epoch manager and
/// callers carry no epoch obligation.
class OlcBTree : public ConcurrentIndex {
 public:
  OlcBTree();
  ~OlcBTree() override;

  std::string Name() const override { return "B+Tree(OLC)"; }

  Status BulkLoad(const Key* keys, const Value* values, size_t n) override;
  bool Lookup(Key key, Value* out) override;
  bool Insert(Key key, Value value) override;
  bool Update(Key key, Value value) override;
  bool Remove(Key key) override;
  size_t Scan(Key start, size_t count,
              std::vector<std::pair<Key, Value>>* out) override;
  size_t MemoryUsage() const override;
  size_t Size() const override { return size_.load(std::memory_order_relaxed); }

  /// Tree height (root = 1). Quiescent-only.
  size_t Height() const;

 private:
  static constexpr int kInnerFanout = 32;  ///< max children per inner node
  static constexpr int kLeafCapacity = 32;

  struct Node {
    OptLock lock;
    std::atomic<uint16_t> count{0};
    const bool is_leaf;
    explicit Node(bool leaf) : is_leaf(leaf) {}
  };

  struct Inner : Node {
    Key keys[kInnerFanout - 1];
    std::atomic<Node*> children[kInnerFanout];
    Inner() : Node(false) {
      for (auto& c : children) c.store(nullptr, std::memory_order_relaxed);
    }
    bool IsFull() const {
      return count.load(std::memory_order_relaxed) == kInnerFanout - 1;
    }
    /// Index of the child covering `key`.
    int ChildIndex(Key key) const {
      const int n = count.load(std::memory_order_relaxed);
      int lo = 0, hi = n;
      while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (keys[mid] <= key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  };

  struct LeafNode : Node {
    Key keys[kLeafCapacity];
    std::atomic<Value> values[kLeafCapacity];
    std::atomic<LeafNode*> next{nullptr};
    LeafNode() : Node(true) {}
    bool IsFull() const {
      return count.load(std::memory_order_relaxed) == kLeafCapacity;
    }
    /// First index with keys[i] >= key.
    int LowerBound(Key key) const {
      const int n = count.load(std::memory_order_relaxed);
      int lo = 0, hi = n;
      while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (keys[mid] < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  };

  enum class Op { kDone, kRestart, kExists, kNotFound };

  /// Split the full root (leaf or inner) under meta + node locks.
  void SplitRoot(Node* node, uint64_t v, bool* restarted);
  /// Split full `child` under `parent`'s lock. Both locks are released.
  void SplitChild(Inner* parent, uint64_t pv, Node* child, uint64_t cv,
                  bool* restarted);

  Op InsertImpl(Key key, Value value);
  Op RemoveImpl(Key key);

  static void DeleteSubtree(Node* node);
  static size_t SubtreeBytes(const Node* node);

  OptLock meta_lock_;  ///< guards root pointer swaps
  std::atomic<Node*> root_;
  std::atomic<size_t> size_{0};
};

}  // namespace alt
