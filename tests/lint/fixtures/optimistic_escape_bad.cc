// alt-optimistic-escape failing fixture: an ALT_OPTIMISTIC_PATH function
// with no adjacent justification comment whose optimistically read value
// escapes through a return with no version re-validation anywhere.
#define ALT_OPTIMISTIC_PATH

struct Slot {
  unsigned Read() const;
  bool Validate(unsigned w) const;
  int value;
};

int LeakUnvalidatedRead(const Slot& s) ALT_OPTIMISTIC_PATH {
  const int v = s.value;
  return v;
}
