# Empty dependencies file for bench_fig8b_hotwrite.
# This may be replaced when dependencies are built.
