#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"
#include "common/timer.h"

namespace alt {
namespace metrics {

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kLearnedHits: return "learned_hits";
    case Counter::kLearnedNegatives: return "learned_negatives";
    case Counter::kSlotInserts: return "slot_inserts";
    case Counter::kConflictInserts: return "conflict_inserts";
    case Counter::kArtLookups: return "art_lookups";
    case Counter::kArtLookupSteps: return "art_lookup_steps";
    case Counter::kArtRootFallbacks: return "art_root_fallbacks";
    case Counter::kFastPointerHits: return "fast_pointer_hits";
    case Counter::kWriteBacks: return "write_backs";
    case Counter::kScanOps: return "scan_ops";
    case Counter::kEmptyScans: return "empty_scans";
    case Counter::kRetrainStarted: return "retrain_started";
    case Counter::kRetrainFinished: return "retrain_finished";
    case Counter::kTailModelsAppended: return "tail_models_appended";
    case Counter::kBatchLookups: return "batch_lookups";
    case Counter::kBatchScalarFallbacks: return "batch_scalar_fallbacks";
    case Counter::kServerAccepts: return "server_accepts";
    case Counter::kServerFramesIn: return "server_frames_in";
    case Counter::kServerBatchFlushes: return "server_batch_flushes";
    case Counter::kServerBatchKeys: return "server_batch_keys";
    case Counter::kServerMalformedFrames: return "server_malformed_frames";
    case Counter::kServerWorkerFailures: return "server_worker_failures";
    case Counter::kCount: break;
  }
  return "unknown";
}

const char* GaugeName(Gauge g) {
  switch (g) {
    case Gauge::kNumModels: return "num_models";
    case Gauge::kLiveKeys: return "live_keys";
    case Gauge::kCount: break;
  }
  return "unknown";
}

const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kBulkLoad: return "bulk_load";
    case EventType::kRetrainStart: return "retrain_start";
    case EventType::kRetrainFinish: return "retrain_finish";
    case EventType::kTailModelAppend: return "tail_model_append";
  }
  return "unknown";
}

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

void Registry::RecordEvent(EventType type, uint64_t duration_ns, uint64_t detail) {
  const Event e{type, NowNanos(), duration_ns, detail};
  SpinLockGuard g(event_lock_);
  events_[event_head_ % kEventCapacity] = e;
  ++event_head_;
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot s;
  s.at_ns = NowNanos();
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kNumCounters; ++i) {
      s.counters[i] += shard.cells[i].load(std::memory_order_relaxed);
    }
    for (size_t i = 0; i < kFpDepthBuckets; ++i) {
      s.fp_hit_depth[i] +=
          shard.cells[kNumCounters + i].load(std::memory_order_relaxed);
    }
  }
  for (size_t i = 0; i < kNumGauges; ++i) {
    s.gauges[i] = gauges_[i].load(std::memory_order_relaxed);
  }
  {
    SpinLockGuard g(event_lock_);
    const uint64_t n = std::min<uint64_t>(event_head_, kEventCapacity);
    s.events.reserve(static_cast<size_t>(n));
    // Oldest retained event first.
    for (uint64_t i = event_head_ - n; i < event_head_; ++i) {
      s.events.push_back(events_[i % kEventCapacity]);
    }
    s.dropped_events = event_head_ - n;
  }
  return s;
}

void Registry::ResetForTest() {
  for (Shard& shard : shards_) {
    for (auto& cell : shard.cells) cell.store(0, std::memory_order_relaxed);
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  SpinLockGuard g(event_lock_);
  event_head_ = 0;
}

Snapshot Snapshot::DeltaSince(const Snapshot& base) const {
  Snapshot d = *this;
  for (size_t i = 0; i < kNumCounters; ++i) {
    d.counters[i] -= std::min(base.counters[i], d.counters[i]);
  }
  for (size_t i = 0; i < kFpDepthBuckets; ++i) {
    d.fp_hit_depth[i] -= std::min(base.fp_hit_depth[i], d.fp_hit_depth[i]);
  }
  // Events recorded at or before the baseline snapshot are not part of the
  // delta. Ring drops in `base` are counted once: only newly dropped remain.
  d.events.erase(std::remove_if(d.events.begin(), d.events.end(),
                                [&](const Event& e) { return e.at_ns <= base.at_ns; }),
                 d.events.end());
  d.dropped_events -= std::min(base.dropped_events, d.dropped_events);
  return d;
}

Snapshot TakeSnapshot() {
#if defined(ALT_METRICS_DISABLED)
  Snapshot s;
  s.at_ns = NowNanos();
  return s;
#else
  return Registry::Global().TakeSnapshot();
#endif
}

void ResetForTest() {
#if !defined(ALT_METRICS_DISABLED)
  Registry::Global().ResetForTest();
#endif
}

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

}  // namespace

std::string ToJson(const Snapshot& s) {
  std::string out;
  out.reserve(1024 + 96 * s.events.size());
  out += "{\"at_ns\":";
  AppendU64(&out, s.at_ns);
  out += ",\"counters\":{";
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (i != 0) out += ',';
    // Names are static identifiers today, but route them through the shared
    // escaper anyway so a future name can never corrupt the document.
    AppendJsonQuoted(CounterName(static_cast<Counter>(i)), &out);
    out += ':';
    AppendU64(&out, s.counters[i]);
  }
  out += "},\"fp_hit_depth\":[";
  for (size_t i = 0; i < kFpDepthBuckets; ++i) {
    if (i != 0) out += ',';
    AppendU64(&out, s.fp_hit_depth[i]);
  }
  out += "],\"gauges\":{";
  for (size_t i = 0; i < kNumGauges; ++i) {
    if (i != 0) out += ',';
    AppendJsonQuoted(GaugeName(static_cast<Gauge>(i)), &out);
    out += ':';
    AppendI64(&out, s.gauges[i]);
  }
  out += "},\"events\":[";
  for (size_t i = 0; i < s.events.size(); ++i) {
    const Event& e = s.events[i];
    if (i != 0) out += ',';
    out += "{\"type\":";
    AppendJsonQuoted(EventTypeName(e.type), &out);
    out += ",\"at_ns\":";
    AppendU64(&out, e.at_ns);
    out += ",\"duration_ns\":";
    AppendU64(&out, e.duration_ns);
    out += ",\"detail\":";
    AppendU64(&out, e.detail);
    out += '}';
  }
  out += "],\"dropped_events\":";
  AppendU64(&out, s.dropped_events);
  out += '}';
  return out;
}

}  // namespace metrics
}  // namespace alt
