/// \file
/// \brief alt_server: network-facing KV server over ShardedAltIndex.
///
/// Preloads a deterministic keyset (same GenerateKeys(dataset, keys, seed)
/// call the load generator makes — see docs/OPERATIONS.md), starts the epoll
/// server, prints one JSON line with the bound port, then runs until SIGINT/
/// SIGTERM or --duration elapses. STATS responses and a final stderr line
/// carry the serving counters (docs/PROTOCOL.md, DESIGN.md §13).

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/trace.h"
#include "datasets/dataset.h"
#include "server/server.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "Usage: %s [options]\n"
      "  --port N        TCP port (0 = ephemeral; default 9117)\n"
      "  --workers N     epoll worker threads (default 2)\n"
      "  --batch N       max GET keys per coalesced LookupBatch, 1..64\n"
      "                  (default 16; 1 = scalar baseline)\n"
      "  --shards N      index shards (default 4)\n"
      "  --partition P   range | hash (default range)\n"
      "  --dataset D     libio|osm|fb|longlat|uniform|lognormal|sequential\n"
      "                  (default fb)\n"
      "  --keys N        preloaded keyset size (default 200000)\n"
      "  --seed N        keyset seed (default 99)\n"
      "  --duration S    exit after S seconds (default 0 = run until signal)\n"
      "  --trace_json F  flight-recorder spans -> Chrome trace-event JSON at\n"
      "                  shutdown (open in Perfetto; empty = tracing off)\n",
      argv0);
}

uint64_t ParseU64(const char* s, const char* flag) {
  char* end = nullptr;
  const uint64_t v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "alt_server: bad value for %s: '%s'\n", flag, s);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  alt::server::ServerOptions opt;
  alt::Dataset dataset = alt::Dataset::kFb;
  size_t keys_n = 200000;
  uint64_t seed = 99;
  uint64_t duration_s = 0;
  std::string trace_json;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "alt_server: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--port") {
      opt.port = static_cast<uint16_t>(ParseU64(next("--port"), "--port"));
    } else if (a == "--workers") {
      opt.num_workers = static_cast<int>(ParseU64(next("--workers"), "--workers"));
    } else if (a == "--batch") {
      opt.batch_size = ParseU64(next("--batch"), "--batch");
    } else if (a == "--shards") {
      opt.sharded.num_shards =
          static_cast<int>(ParseU64(next("--shards"), "--shards"));
    } else if (a == "--partition") {
      const std::string p = next("--partition");
      if (p == "range") {
        opt.sharded.partition = alt::shard::Partition::kRange;
      } else if (p == "hash") {
        opt.sharded.partition = alt::shard::Partition::kHash;
      } else {
        std::fprintf(stderr, "alt_server: --partition must be range|hash\n");
        return 2;
      }
    } else if (a == "--dataset") {
      alt::Status s = alt::ParseDataset(next("--dataset"), &dataset);
      if (!s.ok()) {
        std::fprintf(stderr, "alt_server: %s\n", s.ToString().c_str());
        return 2;
      }
    } else if (a == "--keys") {
      keys_n = ParseU64(next("--keys"), "--keys");
    } else if (a == "--seed") {
      seed = ParseU64(next("--seed"), "--seed");
    } else if (a == "--duration") {
      duration_s = ParseU64(next("--duration"), "--duration");
    } else if (a == "--trace_json") {
      trace_json = next("--trace_json");
    } else if (a == "--help" || a == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "alt_server: unknown flag '%s'\n", a.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  // Block the shutdown signals before any thread spawns so sigtimedwait below
  // is the only consumer (worker threads inherit the mask).
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  if (!trace_json.empty()) alt::trace::SetEnabled(true);

  alt::server::KvServer server(opt);
  {
    const std::vector<alt::Key> keys = alt::GenerateKeys(dataset, keys_n, seed);
    std::vector<alt::Value> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) values[i] = alt::ValueFor(keys[i]);
    alt::Status s = server.Preload(keys.data(), values.data(), keys.size());
    if (!s.ok()) {
      std::fprintf(stderr, "alt_server: preload failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  alt::Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "alt_server: start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // One machine-readable line for wrappers (CI smoke leg parses the port).
  std::printf(
      "{\"alt_server\":{\"port\":%u,\"workers\":%d,\"batch\":%zu,"
      "\"shards\":%d,\"partition\":\"%s\",\"dataset\":\"%s\",\"keys\":%zu,"
      "\"seed\":%llu}}\n",
      server.port(), opt.num_workers, opt.batch_size, opt.sharded.num_shards,
      opt.sharded.partition == alt::shard::Partition::kRange ? "range" : "hash",
      alt::DatasetName(dataset), keys_n,
      static_cast<unsigned long long>(seed));
  std::fflush(stdout);

  if (duration_s > 0) {
    timespec left{static_cast<time_t>(duration_s), 0};
    sigtimedwait(&sigs, nullptr, &left);  // signal or timeout both end the run
  } else {
    int sig = 0;
    sigwait(&sigs, &sig);
  }

  server.Stop();
  std::fprintf(stderr, "%s\n", server.StatsJson().c_str());
  if (!trace_json.empty() && !alt::trace::WriteChromeTrace(trace_json)) {
    std::fprintf(stderr, "alt_server: failed to write %s\n", trace_json.c_str());
    return 1;
  }
  return 0;
}
