#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/key_codec.h"
#include "common/status.h"

namespace alt {

/// The four evaluation datasets of the paper (§IV-A1) plus generic synthetic
/// distributions. The real SOSD binaries are not shipped here; DistFb..
/// DistLonglat are distribution-matched synthetic stand-ins that preserve the
/// CDF-fit-difficulty ordering libio < osm < fb < longlat (DESIGN.md §5).
enum class Dataset {
  kLibio,       ///< near-dense auto-increment IDs with bursty gaps (easiest CDF)
  kOsm,         ///< uniform samples over the 64-bit cell-ID space (moderate)
  kFb,          ///< lognormal-spaced user IDs with heavy-tail gaps (hard)
  kLonglat,     ///< multimodal product transform of lat/long pairs (hardest)
  kUniform,     ///< uniform random keys
  kLognormal,   ///< lognormal-spaced keys
  kSequential,  ///< 1..n (degenerate: one GPL model)
};

/// Parse "libio" / "osm" / "fb" / "longlat" / "uniform" / "lognormal" /
/// "sequential".
Status ParseDataset(const std::string& name, Dataset* out);

const char* DatasetName(Dataset d);

/// All dataset enum values that mirror paper figures (the first four).
std::vector<Dataset> PaperDatasets();

/// \brief Generate `n` distinct sorted keys following `dataset`'s
/// distribution. Deterministic for a given (dataset, n, seed).
std::vector<Key> GenerateKeys(Dataset dataset, size_t n, uint64_t seed = 42);

/// Value for a key in tests/benches: a cheap deterministic function of the
/// key so correctness checks need no side table.
inline Value ValueFor(Key k) { return k * 0x9e3779b97f4a7c15ULL + 1; }

}  // namespace alt
