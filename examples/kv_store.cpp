// kv_store: a miniature concurrent memory key-value store built on AltIndex —
// the "memory database system" scenario from the paper's title.
//
//   $ ./build/examples/kv_store [num_threads] [seconds]
//
// Spawns writer, reader and scanner threads against one shared index and
// reports per-role throughput, demonstrating the §III-E concurrency design
// end to end (optimistic slot versions + OLC ART + epoch reclamation).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "common/zipf.h"
#include "core/alt_index.h"
#include "datasets/dataset.h"

int main(int argc, char** argv) {
  using namespace alt;
  const int num_threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 3.0;

  // Seed the store with half a million user records.
  const size_t n = 500000;
  std::vector<Key> keys = GenerateKeys(Dataset::kFb, n, 99);
  std::vector<Value> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = ValueFor(keys[i]);

  AltIndex store;
  if (!store.BulkLoad(keys.data(), values.data(), n).ok()) return 1;
  std::printf("kv_store: %zu records loaded, %d worker threads, %.1fs run\n",
              store.Size(), num_threads, seconds);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0}, writes{0}, scans{0}, misses{0}, failures{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(7 * t + 1);
      ScrambledZipf zipf(n, 0.99, 1000 + t);
      std::vector<std::pair<Key, Value>> window;
      uint64_t local_reads = 0, local_writes = 0, local_scans = 0;
      uint64_t local_misses = 0, local_failures = 0;
      uint64_t next_key = 0xF000000000000000ULL + (static_cast<uint64_t>(t) << 40);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t dice = rng.NextBounded(100);
        if (dice < 60) {  // 60% point reads, zipfian hot set
          Value v;
          if (!store.Lookup(keys[zipf.Next()], &v)) ++local_misses;
          ++local_reads;
        } else if (dice < 90) {  // 30% writes: upsert fresh or update hot
          if (dice < 75) {
            if (!store.Insert(next_key++, dice)) ++local_failures;
          } else {
            if (!store.Update(keys[zipf.Next()], dice)) ++local_failures;
          }
          ++local_writes;
        } else {  // 10% short scans
          store.Scan(keys[zipf.Next()], 20, &window);
          ++local_scans;
        }
      }
      reads.fetch_add(local_reads, std::memory_order_relaxed);
      writes.fetch_add(local_writes, std::memory_order_relaxed);
      scans.fetch_add(local_scans, std::memory_order_relaxed);
      misses.fetch_add(local_misses, std::memory_order_relaxed);
      failures.fetch_add(local_failures, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  // workers are joined: relaxed loads are enough for the final tallies.
  const uint64_t r = reads.load(std::memory_order_relaxed);
  const uint64_t w = writes.load(std::memory_order_relaxed);
  const uint64_t s = scans.load(std::memory_order_relaxed);
  const double total = static_cast<double>(r + w + s);
  std::printf("reads  : %10llu\n", static_cast<unsigned long long>(r));
  std::printf("writes : %10llu\n", static_cast<unsigned long long>(w));
  std::printf("scans  : %10llu\n", static_cast<unsigned long long>(s));
  std::printf("total  : %.2f Mops/s\n", total / seconds / 1e6);
  // Every read targets a seeded key and upsert keys are per-thread unique, so
  // any miss or failed write is a correctness bug, not workload noise.
  const uint64_t miss = misses.load(std::memory_order_relaxed);
  const uint64_t fail = failures.load(std::memory_order_relaxed);
  std::printf("lookup misses: %llu | failed writes: %llu\n",
              static_cast<unsigned long long>(miss),
              static_cast<unsigned long long>(fail));
  if (miss != 0 || fail != 0) {
    std::fprintf(stderr, "kv_store: FAILED (%llu misses, %llu write failures)\n",
                 static_cast<unsigned long long>(miss),
                 static_cast<unsigned long long>(fail));
    return 1;
  }

  const auto st = store.CollectStats();
  std::printf("final size %zu keys | %zu models | %zu in ART | %zu retrains\n",
              store.Size(), st.num_models, st.art_keys, st.retrain_finished);
  return 0;
}
