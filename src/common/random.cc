#include "common/random.h"

#include <cmath>

namespace alt {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace alt
