#pragma once

#include <string>
#include <vector>

#include "common/key_codec.h"
#include "common/status.h"

namespace alt {

/// \brief Loader for SOSD-format binary key files (Kipf et al., the benchmark
/// the paper draws `fb`/`osm` from): a little-endian uint64 element count
/// followed by that many little-endian uint64 keys.
///
/// Use this to run the benches against the real datasets when available:
///   bench_fig7_workloads --dataset-file /path/to/osm_cellids_200M_uint64
///
/// \param limit read at most this many keys (0 = all).
/// Keys are sorted and deduplicated after loading (the paper excludes
/// duplicate-containing datasets).
Status LoadSosdFile(const std::string& path, size_t limit, std::vector<Key>* out);

/// Write keys in SOSD format (test fixture / dataset export helper).
Status WriteSosdFile(const std::string& path, const std::vector<Key>& keys);

}  // namespace alt
