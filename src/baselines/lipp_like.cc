#include "baselines/lipp_like.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/epoch.h"

namespace alt {

LippLike::Node* LippLike::Build(const Key* keys, const Value* values, size_t n,
                                double span_mult) {
  auto* node = new Node();
  uint32_t cap = static_cast<uint32_t>(static_cast<double>(n) * 2 * span_mult);
  if (cap < kMinCapacity) cap = kMinCapacity;
  node->capacity = cap;
  node->entries = std::make_unique<Entry[]>(cap);
  node->base = keys[0];
  const double span =
      static_cast<double>(keys[n - 1] - keys[0]) * (span_mult > 1 ? span_mult : 1);
  node->slope =
      (n >= 2 && span > 0) ? static_cast<double>(cap - 1) / span : 0.0;
  // Group keys by predicted slot; singletons become data entries, groups
  // become recursively built children (conflict separation, as in LIPP).
  size_t i = 0;
  while (i < n) {
    const uint32_t slot = node->PredictSlot(keys[i]);
    size_t j = i + 1;
    while (j < n && node->PredictSlot(keys[j]) == slot) ++j;
    Entry& e = node->entries[slot];
    if (j - i == 1) {
      e.key.store(keys[i], std::memory_order_relaxed);
      e.payload.store(values[i], std::memory_order_relaxed);
      e.type.store(kData, std::memory_order_relaxed);
    } else {
      Node* child = Build(keys + i, values + i, j - i);
      e.payload.store(reinterpret_cast<uint64_t>(child), std::memory_order_relaxed);
      e.type.store(kChild, std::memory_order_relaxed);
    }
    i = j;
  }
  return node;
}

void LippLike::DeleteSubtree(Node* node) {
  // Iterative: conflict chains can be deep before the first rebuild fires.
  std::vector<Node*> stack{node};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    for (uint32_t i = 0; i < n->capacity; ++i) {
      if (n->entries[i].type.load(std::memory_order_relaxed) == kChild) {
        stack.push_back(reinterpret_cast<Node*>(
            n->entries[i].payload.load(std::memory_order_relaxed)));
      }
    }
    delete n;
  }
}

LippLike::~LippLike() {
  if (root_ != nullptr) DeleteSubtree(root_);
}

Status LippLike::BulkLoad(const Key* keys, const Value* values, size_t n) {
  if (n == 0) return Status::InvalidArgument("empty bulk load");
  for (size_t i = 1; i < n; ++i) {
    if (keys[i] <= keys[i - 1]) {
      return Status::InvalidArgument("keys must be sorted and duplicate-free");
    }
  }
  root_ = Build(keys, values, n);
  size_.store(n, std::memory_order_relaxed);
  return Status::OK();
}

bool LippLike::Lookup(Key key, Value* out) {
  EpochGuard g;
restart:
  Node* node = root_;
  bool restart = false;
  uint64_t v = node->lock.ReadLockOrRestart(&restart);
  if (restart) goto restart;
  for (;;) {
    Entry& e = node->entries[node->PredictSlot(key)];
    const uint8_t type = e.type.load(std::memory_order_acquire);
    const Key k = e.key.load(std::memory_order_relaxed);
    const uint64_t payload = e.payload.load(std::memory_order_relaxed);
    node->lock.CheckOrRestart(v, &restart);
    if (restart) goto restart;
    switch (type) {
      case kEmpty:
        return false;
      case kData:
        if (k != key) return false;
        *out = payload;
        return true;
      case kChild: {
        Node* child = reinterpret_cast<Node*>(payload);
        uint64_t cv = child->lock.ReadLockOrRestart(&restart);
        if (restart) goto restart;
        node->lock.CheckOrRestart(v, &restart);
        if (restart) goto restart;
        node = child;
        v = cv;
        break;
      }
    }
  }
}

// Optimistic escape: descent re-validates node versions and restarts on any
// concurrent structure change (goto restart), under an EpochGuard.
bool LippLike::Insert(Key key, Value value) ALT_OPTIMISTIC_PATH {
  EpochGuard g;
  int depth = 0;
restart:
  depth = 0;
  Node* node = root_;
  bool restart = false;
  uint64_t v = node->lock.ReadLockOrRestart(&restart);
  if (restart) goto restart;
  for (;;) {
    // LIPP+ statistics: every node on the insert path counts the insert —
    // including the root, which becomes the shared cache-line hotspot.
    node->insert_count.fetch_add(1, std::memory_order_relaxed);

    const uint32_t slot = node->PredictSlot(key);
    Entry& e = node->entries[slot];
    const uint8_t type = e.type.load(std::memory_order_acquire);
    const Key k = e.key.load(std::memory_order_relaxed);
    const uint64_t payload = e.payload.load(std::memory_order_relaxed);
    node->lock.CheckOrRestart(v, &restart);
    if (restart) goto restart;
    switch (type) {
      case kEmpty: {
        node->lock.UpgradeToWriteLockOrRestart(v, &restart);
        if (restart) goto restart;
        e.key.store(key, std::memory_order_relaxed);
        e.payload.store(value, std::memory_order_relaxed);
        e.type.store(kData, std::memory_order_release);
        node->lock.WriteUnlock();
        size_.fetch_add(1, std::memory_order_relaxed);
        if (depth > kRebuildTriggerDepth) {
          RebuildSubtreeFor(key, depth > kRebuildSpan ? depth - kRebuildSpan : 2);
        }
        return true;
      }
      case kData: {
        if (k == key) return false;
        // Conflict: move both keys into a new child (LIPP's separation).
        node->lock.UpgradeToWriteLockOrRestart(v, &restart);
        if (restart) goto restart;
        Key ck[2];
        Value cv[2];
        if (k < key) {
          ck[0] = k;
          cv[0] = payload;
          ck[1] = key;
          cv[1] = value;
        } else {
          ck[0] = key;
          cv[0] = value;
          ck[1] = k;
          cv[1] = payload;
        }
        Node* child = Build(ck, cv, 2);
        e.payload.store(reinterpret_cast<uint64_t>(child), std::memory_order_relaxed);
        e.type.store(kChild, std::memory_order_release);
        node->lock.WriteUnlock();
        size_.fetch_add(1, std::memory_order_relaxed);
        if (depth > kRebuildTriggerDepth) {
          RebuildSubtreeFor(key, depth > kRebuildSpan ? depth - kRebuildSpan : 2);
        }
        return true;
      }
      case kChild: {
        Node* child = reinterpret_cast<Node*>(payload);
        uint64_t cv2 = child->lock.ReadLockOrRestart(&restart);
        if (restart) goto restart;
        node->lock.CheckOrRestart(v, &restart);
        if (restart) goto restart;
        node = child;
        v = cv2;
        ++depth;
        break;
      }
    }
  }
}

// Same version-validated restart descent as Insert.
bool LippLike::Update(Key key, Value value) ALT_OPTIMISTIC_PATH {
  EpochGuard g;
restart:
  Node* node = root_;
  bool restart = false;
  uint64_t v = node->lock.ReadLockOrRestart(&restart);
  if (restart) goto restart;
  for (;;) {
    Entry& e = node->entries[node->PredictSlot(key)];
    const uint8_t type = e.type.load(std::memory_order_acquire);
    const Key k = e.key.load(std::memory_order_relaxed);
    const uint64_t payload = e.payload.load(std::memory_order_relaxed);
    node->lock.CheckOrRestart(v, &restart);
    if (restart) goto restart;
    switch (type) {
      case kEmpty:
        return false;
      case kData: {
        if (k != key) return false;
        node->lock.UpgradeToWriteLockOrRestart(v, &restart);
        if (restart) goto restart;
        if (e.type.load(std::memory_order_relaxed) == kData &&
            e.key.load(std::memory_order_relaxed) == key) {
          e.payload.store(value, std::memory_order_relaxed);
          node->lock.WriteUnlock();
          return true;
        }
        node->lock.WriteUnlock();
        goto restart;
      }
      case kChild: {
        Node* child = reinterpret_cast<Node*>(payload);
        uint64_t cv = child->lock.ReadLockOrRestart(&restart);
        if (restart) goto restart;
        node->lock.CheckOrRestart(v, &restart);
        if (restart) goto restart;
        node = child;
        v = cv;
        break;
      }
    }
  }
}

// Same version-validated restart descent as Insert.
bool LippLike::Remove(Key key) ALT_OPTIMISTIC_PATH {
  EpochGuard g;
restart:
  Node* node = root_;
  bool restart = false;
  uint64_t v = node->lock.ReadLockOrRestart(&restart);
  if (restart) goto restart;
  for (;;) {
    Entry& e = node->entries[node->PredictSlot(key)];
    const uint8_t type = e.type.load(std::memory_order_acquire);
    const Key k = e.key.load(std::memory_order_relaxed);
    const uint64_t payload = e.payload.load(std::memory_order_relaxed);
    node->lock.CheckOrRestart(v, &restart);
    if (restart) goto restart;
    switch (type) {
      case kEmpty:
        return false;
      case kData: {
        if (k != key) return false;
        node->lock.UpgradeToWriteLockOrRestart(v, &restart);
        if (restart) goto restart;
        if (e.type.load(std::memory_order_relaxed) == kData &&
            e.key.load(std::memory_order_relaxed) == key) {
          e.type.store(kEmpty, std::memory_order_release);
          node->lock.WriteUnlock();
          size_.fetch_sub(1, std::memory_order_relaxed);
          return true;
        }
        node->lock.WriteUnlock();
        goto restart;
      }
      case kChild: {
        Node* child = reinterpret_cast<Node*>(payload);
        uint64_t cv = child->lock.ReadLockOrRestart(&restart);
        if (restart) goto restart;
        node->lock.CheckOrRestart(v, &restart);
        if (restart) goto restart;
        node = child;
        v = cv;
        break;
      }
    }
  }
}

bool LippLike::ScanCollect(const Node* node, Key lo, size_t max_items,
                           std::vector<std::pair<Key, Value>>* out) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const size_t checkpoint = out->size();
    bool restart = false;
    const uint64_t v = node->lock.ReadLockOrRestart(&restart);
    if (restart) return false;
    bool ok = true;
    for (uint32_t i = 0; i < node->capacity && out->size() < max_items; ++i) {
      const Entry& e = node->entries[i];
      const uint8_t type = e.type.load(std::memory_order_acquire);
      if (type == kData) {
        const Key k = e.key.load(std::memory_order_relaxed);
        const Value val = e.payload.load(std::memory_order_relaxed);
        if (k >= lo) out->emplace_back(k, val);
      } else if (type == kChild) {
        const Node* child = reinterpret_cast<const Node*>(
            e.payload.load(std::memory_order_relaxed));
        if (!ScanCollect(child, lo, max_items, out)) {
          ok = false;
          break;
        }
      }
    }
    node->lock.CheckOrRestart(v, &restart);
    if (ok && !restart) return true;
    out->resize(checkpoint);
  }
  return false;
}

size_t LippLike::Scan(Key start, size_t count,
                      std::vector<std::pair<Key, Value>>* out) {
  out->clear();
  if (count == 0) return 0;
  EpochGuard g;
  while (!ScanCollect(root_, start, count, out)) {
    out->clear();
  }
  // Model monotonicity makes slot order = key order, but concurrent inserts
  // can interleave; sort as a safety net (cheap for short scans).
  std::sort(out->begin(), out->end());
  if (out->size() > count) out->resize(count);
  return out->size();
}

void LippLike::CollectAndObsolete(Node* node,
                                  std::vector<std::pair<Key, Value>>* out) {
  if (!node->lock.WriteLockOrFail()) return;  // already obsolete (impossible
                                              // while the anchor is locked)
  for (uint32_t i = 0; i < node->capacity; ++i) {
    Entry& e = node->entries[i];
    const uint8_t type = e.type.load(std::memory_order_relaxed);
    if (type == kData) {
      out->emplace_back(e.key.load(std::memory_order_relaxed),
                        e.payload.load(std::memory_order_relaxed));
    } else if (type == kChild) {
      CollectAndObsolete(
          reinterpret_cast<Node*>(e.payload.load(std::memory_order_relaxed)), out);
    }
  }
  node->lock.WriteUnlockObsolete();
  EpochManager::Global().Retire(node,
                                [](void* p) { delete static_cast<Node*>(p); });
}

// Optimistic escape: anchor versions re-validated (restart flag) before the
// rebuilt subtree is published; losers retry with a deeper anchor.
void LippLike::RebuildSubtreeFor(Key key, int anchor_depth) ALT_OPTIMISTIC_PATH {
  if (anchor_depth < 2) anchor_depth = 2;
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool restart = false;
    Node* parent = root_;
    uint64_t pv = parent->lock.ReadLockOrRestart(&restart);
    if (restart) continue;
    // Descend to the anchor's parent (anchor sits at anchor_depth; root is 0).
    bool retry = false;
    for (int depth = 0; depth < anchor_depth - 1; ++depth) {
      Entry& e = parent->entries[parent->PredictSlot(key)];
      const uint8_t type = e.type.load(std::memory_order_acquire);
      const uint64_t payload = e.payload.load(std::memory_order_relaxed);
      parent->lock.CheckOrRestart(pv, &restart);
      if (restart) {
        retry = true;
        break;
      }
      if (type != kChild) return;  // path got shallower; nothing to rebuild
      Node* child = reinterpret_cast<Node*>(payload);
      uint64_t cv = child->lock.ReadLockOrRestart(&restart);
      if (restart) {
        retry = true;
        break;
      }
      parent->lock.CheckOrRestart(pv, &restart);
      if (restart) {
        retry = true;
        break;
      }
      parent = child;
      pv = cv;
    }
    if (retry) continue;
    Entry& e = parent->entries[parent->PredictSlot(key)];
    const uint8_t type = e.type.load(std::memory_order_acquire);
    const uint64_t payload = e.payload.load(std::memory_order_relaxed);
    parent->lock.CheckOrRestart(pv, &restart);
    if (restart) continue;
    if (type != kChild) return;
    parent->lock.UpgradeToWriteLockOrRestart(pv, &restart);
    if (restart) continue;
    // The anchor entry is frozen: collect the whole subtree, retire its
    // nodes, and install a freshly built (flat) replacement.
    std::vector<std::pair<Key, Value>> data;
    CollectAndObsolete(reinterpret_cast<Node*>(payload), &data);
    std::sort(data.begin(), data.end());
    if (data.empty()) {
      e.type.store(kEmpty, std::memory_order_release);
    } else if (data.size() == 1) {
      e.key.store(data[0].first, std::memory_order_relaxed);
      e.payload.store(data[0].second, std::memory_order_relaxed);
      e.type.store(kData, std::memory_order_release);
    } else {
      std::vector<Key> ks(data.size());
      std::vector<Value> vs(data.size());
      for (size_t i = 0; i < data.size(); ++i) {
        ks[i] = data[i].first;
        vs[i] = data[i].second;
      }
      Node* rebuilt = Build(ks.data(), vs.data(), ks.size(), /*span_mult=*/2.0);
      e.payload.store(reinterpret_cast<uint64_t>(rebuilt), std::memory_order_relaxed);
      e.type.store(kChild, std::memory_order_release);
    }
    parent->lock.WriteUnlock();
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
}

size_t LippLike::SubtreeBytes(const Node* node) {
  size_t total = sizeof(Node) + node->capacity * sizeof(Entry);
  for (uint32_t i = 0; i < node->capacity; ++i) {
    if (node->entries[i].type.load(std::memory_order_relaxed) == kChild) {
      total += SubtreeBytes(reinterpret_cast<const Node*>(
          node->entries[i].payload.load(std::memory_order_relaxed)));
    }
  }
  return total;
}

size_t LippLike::SubtreeDepth(const Node* node) {
  size_t depth = 1;
  for (uint32_t i = 0; i < node->capacity; ++i) {
    if (node->entries[i].type.load(std::memory_order_relaxed) == kChild) {
      const size_t d = 1 + SubtreeDepth(reinterpret_cast<const Node*>(
                               node->entries[i].payload.load(std::memory_order_relaxed)));
      if (d > depth) depth = d;
    }
  }
  return depth;
}

size_t LippLike::MemoryUsage() const {
  return root_ == nullptr ? 0 : SubtreeBytes(root_);
}

size_t LippLike::Depth() const { return root_ == nullptr ? 0 : SubtreeDepth(root_); }

}  // namespace alt
