#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/index_interface.h"
#include "common/perf_counters.h"
#include "workload/workload.h"

namespace alt {

/// Per-(op type × serving path) latency attribution row (DESIGN.md §9.2):
/// which internal path answered the op, how often, and at what latency.
struct PathStat {
  OpType op = OpType::kRead;
  ServedBy served = ServedBy::kUnattributed;
  uint64_t count = 0;    ///< ops routed to this path (every op, not sampled)
  uint64_t samples = 0;  ///< latency samples behind the percentiles (1/16)
  double mean_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
};

/// Micro-architectural counters of one run (RunOptions::perf_stat): per-thread
/// perf_event_open groups opened inside each worker (started after the go
/// barrier, so fd setup and barrier spin are excluded), summed across threads.
/// When the active tier lacks a counter the derived per-op value is reported
/// as unavailable — never as a silent zero.
struct PerfStatResult {
  bool enabled = false;  ///< --perf_stat was requested
  perf::Tier tier = perf::Tier::kUnavailable;
  std::string tier_name;  ///< TierName() with the open-failure reason
  perf::Reading totals;   ///< summed Stop() readings of all workers
  uint64_t ops = 0;       ///< ops the counters cover (== RunResult::total_ops)

  double PerOp(uint64_t total) const {
    return ops > 0 ? static_cast<double>(total) / static_cast<double>(ops) : 0;
  }
  double PerKop(uint64_t total) const { return PerOp(total) * 1000.0; }
};

/// Aggregated result of one timed run.
struct RunResult {
  double throughput_mops = 0;  ///< million operations per second
  double seconds = 0;
  uint64_t total_ops = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;  ///< the paper's P99.9 tail metric
  double mean_ns = 0;
  uint64_t failed_ops = 0;   ///< reads that missed / duplicate inserts
  uint64_t empty_scans = 0;  ///< scans past the last key (not failures)
  /// Non-empty iff RunOptions::path_breakdown; rows with count > 0 only,
  /// ordered by (op, served).
  std::vector<PathStat> path_stats;
  /// Populated iff RunOptions::perf_stat.
  PerfStatResult perf;
};

/// Execution knobs for RunWorkload.
struct RunOptions {
  size_t scan_length = 100;
  /// Reads per LookupBatch call: each worker coalesces up to this many
  /// *consecutive* kRead ops and issues them through the index's batched read
  /// path. 1 (default) keeps the scalar Lookup path, so existing benchmark
  /// numbers stay comparable. A sampled batch records its mean per-op latency.
  size_t read_batch = 1;
  /// When non-empty, append one JSON line per emitted snapshot to this file:
  /// periodic "interval" deltas (if metrics_interval_seconds > 0) while the
  /// run executes, plus one "final" line with the run result and the metrics
  /// delta scoped to this run (see common/metrics.h).
  std::string metrics_json;
  /// Seconds between interval snapshots; 0 (default) emits only the final one.
  double metrics_interval_seconds = 0;
  /// Free-form run label copied into each JSON line (e.g. "ycsb-a/alt/16t").
  std::string metrics_label;
  /// Collect per-(op × serving path) latency attribution into
  /// RunResult::path_stats (and the "paths" array of the final metrics JSON
  /// line). Off by default: attribution routes ops through the Served*
  /// interface variants and keeps one extra histogram per (op, path) pair
  /// per thread.
  bool path_breakdown = false;
  /// Sample micro-architectural counters per worker thread (perf_event_open;
  /// see common/perf_counters.h for the hardware/software/unavailable tiers)
  /// into RunResult::perf and the "perf" object of the final metrics JSON
  /// line. Off by default: opening counter groups costs a few syscalls per
  /// thread and the Start/Stop ioctls bracket the measured loop.
  bool perf_stat = false;
};

/// \brief Execute pre-generated per-thread op streams against `index` with
/// one thread per stream and return throughput + tail latency (sampled 1/16).
///
/// Threads start together behind a barrier; the wall clock covers the slowest
/// thread, matching how the paper reports Mops/s for T threads.
RunResult RunWorkload(ConcurrentIndex* index,
                      const std::vector<std::vector<Op>>& streams,
                      const RunOptions& options);
RunResult RunWorkload(ConcurrentIndex* index,
                      const std::vector<std::vector<Op>>& streams,
                      size_t scan_length = 100);

/// Convenience: bulk-load `index` with the first `bulk_fraction` of keys
/// (values = ValueFor(key)), generate streams over the rest, run, return.
struct BenchSetup {
  std::vector<Key> loaded;
  std::vector<Key> pool;
};

/// Split sorted dataset keys into bulk-load set (every key whose rank is
/// below bulk_fraction when interleaved) and insert pool. Interleaving (odd /
/// even ranks) keeps both sets distribution-representative, mirroring how
/// learned-index evaluations sample insert keys.
BenchSetup SplitDataset(const std::vector<Key>& keys, double bulk_fraction);

/// Human-readable name of an op type ("read", "insert", ...).
const char* OpTypeName(OpType t);

/// Print RunResult::path_stats as an aligned table to `f` (default stdout).
/// No-op when path_stats is empty.
void PrintPathBreakdown(const RunResult& result, std::FILE* f = nullptr);

/// Print RunResult::perf as a human-readable block to `f` (default stdout):
/// the active tier plus the per-op counter rows that tier supports. A failed
/// perf_event_open prints a clearly marked "unavailable" line (with the
/// errno text) and the TSC estimate — never zeros posing as measurements.
/// No-op when perf_stat was not requested.
void PrintPerfStat(const RunResult& result, std::FILE* f = nullptr);

}  // namespace alt
