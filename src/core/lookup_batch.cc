// Batched point-lookup path (AMAC-style group prefetching).
//
// LookupBatch keeps up to `batch_group_width` lookups in flight as explicit
// state machines (BatchCursor). Each pipeline stage performs the small amount
// of compute that depends on an already-prefetched line, issues the prefetch
// for the *next* dependent line, and yields to the other cursors in the group,
// so the group's cache misses overlap instead of serializing.
//
// Stages: kLocate (directory binary search; lines prefetched at issue) →
// kModel (model header → slot prediction, slot line prefetched) → kProbe
// (per-slot optimistic read) → kFpEntry (fast-pointer entry, hint node lines
// prefetched) → kArtInit / kArtStep (resumable OLC descent, one tree level per
// step; see ArtTree::DescentStep).
//
// Anything off the common read path — a §III-F expansion visible on the routed
// model, a MIGRATED slot, a failed post-miss revalidation, or an OLC restart
// storm — falls back to the scalar LookupInternal, which handles every race
// with its own retry loop. The fallback runs under the same epoch guard and
// does its own per-path metrics accounting; the batch layer only adds
// kBatchScalarFallbacks so the fallback rate stays observable.
//
// Metrics are accumulated into a per-call BatchStatsDelta and flushed with one
// RMW per non-zero counter when the batch completes, instead of per key.

#include <algorithm>
#include <cstring>

#include "common/epoch.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/alt_index.h"

namespace alt {

namespace {
using metrics::Counter;

/// OLC restarts tolerated per cursor before giving up on the pipelined
/// descent (the scalar fallback has an unbounded retry loop of its own).
constexpr int kMaxDescentRestarts = 16;
}  // namespace

struct AltIndex::BatchCursor {
  enum class Stage : uint8_t {
    kLocate,   ///< resolve directory → model (directory lines prefetched)
    kModel,    ///< read model header, predict + prefetch the slot
    kProbe,    ///< optimistic slot read
    kFpEntry,  ///< read the fast-pointer entry (prefetched), validate coverage
    kArtInit,  ///< begin the OLC descent at hint or root
    kArtStep,  ///< advance the descent one node per touch
  };

  Stage stage = Stage::kLocate;
  Key key = 0;
  uint32_t index = 0;  ///< position in the caller's out/found arrays

  const GplModel* model = nullptr;
  const GplSlot* slot = nullptr;  ///< routed slot for post-miss revalidation
  uint32_t word = 0;              ///< slot word observed when routed to ART
  bool tail_routed = false;       ///< routed via non-strict EMPTY (no revalidate word)

  int32_t fpi = -1;
  FastPointerBuffer::Ref hint{};
  bool hint_descent = false;  ///< current descent starts at the hint node
  art::ArtTree::DescentState ds;
  int art_steps = 0;
  int restarts = 0;
};

struct AltIndex::BatchStatsDelta {
  uint64_t learned_hits = 0;
  uint64_t learned_negatives = 0;
  uint64_t art_lookups = 0;
  uint64_t art_steps = 0;
  uint64_t fp_hits = 0;
  uint64_t fp_depth[metrics::kFpDepthBuckets] = {};
  uint64_t root_fallbacks = 0;
  uint64_t scalar_fallbacks = 0;

  void Flush(size_t batch_size) const {
    metrics::Inc(Counter::kBatchLookups, batch_size);
    if (learned_hits != 0) metrics::Inc(Counter::kLearnedHits, learned_hits);
    if (learned_negatives != 0) {
      metrics::Inc(Counter::kLearnedNegatives, learned_negatives);
    }
    if (art_lookups != 0) metrics::Inc(Counter::kArtLookups, art_lookups);
    if (art_steps != 0) metrics::Inc(Counter::kArtLookupSteps, art_steps);
    if (fp_hits != 0) metrics::Inc(Counter::kFastPointerHits, fp_hits);
    for (size_t d = 0; d < metrics::kFpDepthBuckets; ++d) {
      if (fp_depth[d] != 0) metrics::FpDepthHit(static_cast<int>(d), fp_depth[d]);
    }
    if (root_fallbacks != 0) {
      metrics::Inc(Counter::kArtRootFallbacks, root_fallbacks);
    }
    if (scalar_fallbacks != 0) {
      metrics::Inc(Counter::kBatchScalarFallbacks, scalar_fallbacks);
    }
  }
};

bool AltIndex::BatchStep(BatchCursor& c, Value* out, bool* found,
                         BatchStatsDelta* st) const ALT_REQUIRES_EPOCH {
  using Stage = BatchCursor::Stage;

  // Terminal helpers; each writes the caller-visible result and retires the
  // cursor. The scalar fallback delegates wholesale to LookupInternal, which
  // performs its own (per-key) metrics accounting.
  const auto finish = [&](bool hit) {
    found[c.index] = hit;
    return true;
  };
  const auto fallback = [&]() {
    ++st->scalar_fallbacks;
    found[c.index] = LookupInternal(c.key, &out[c.index]);
    return true;
  };
  // Route the cursor into ART-OPT: through the fast-pointer hint when the
  // entry covers the key (entry line was not prefetched — accept one miss;
  // the hint node's lines are what matter and kFpEntry prefetches them).
  const auto route_to_art = [&]() {
    c.fpi = options_.enable_fast_pointers ? c.model->fp_index() : -1;
    if (c.fpi >= 0) {
      fp_buffer_.PrefetchEntry(c.fpi);
      c.stage = Stage::kFpEntry;
    } else {
      c.stage = Stage::kArtInit;
    }
    return false;
  };

  switch (c.stage) {
    case Stage::kLocate: {
      // Locate dispatches to the AVX2 8-way probe when available (§10); the
      // window it sweeps is what issue()'s PrefetchLocate pulled.
      const ModelDirectory::Snapshot* snap = directory_.snapshot();
      const size_t idx = ModelDirectory::Locate(*snap, c.key);
      c.model = snap->models[idx].load(std::memory_order_acquire);
      if (c.model->expansion() != nullptr) {
        // §III-F in flight on this model: the scalar path owns the
        // temporal-buffer dance (double probes, re-routing on kMigrated).
        return fallback();
      }
      // One line covers the whole hot header (alignas(64) hot/cold split).
      PrefetchReadRange(c.model, kCacheLineBytes);
      c.stage = Stage::kModel;
      return false;
    }

    case Stage::kModel: {
      if (c.key >= c.model->coverage_end()) {
        // Out-of-coverage keys never live in slots; ART is authoritative
        // (mirrors ProbeSlot's kGoArt-with-null-slot route).
        c.slot = nullptr;
        c.word = 0;
        return route_to_art();
      }
      const uint32_t si = c.model->Predict(c.key);
      c.model->PrefetchSlot(si);
      c.slot = &c.model->slot(si);
      c.stage = Stage::kProbe;
      return false;
    }

    case Stage::kProbe: {
      const GplSlot* slot = nullptr;
      uint32_t word = 0;
      Value v = 0;
      switch (ProbeSlot(c.model, c.key, &v, &slot, &word)) {
        case Probe::kHit:
          out[c.index] = v;
          ++st->learned_hits;
          return finish(true);
        case Probe::kExistsSameKey:  // lookup probes never return this
        case Probe::kEmpty:
          if (c.model->strict_empty()) {
            // Zero-error invariant: EMPTY predicted slot proves absence.
            ++st->learned_negatives;
            return finish(false);
          }
          // Fresh tail model with the invariant suspended: the key may still
          // be ART-resident. Remember the word for post-miss revalidation.
          c.slot = slot;
          c.word = word;
          c.tail_routed = true;
          return route_to_art();
        case Probe::kMigrated:
          // An expansion raced in after kLocate; let the scalar path re-route.
          return fallback();
        case Probe::kGoArt:
        case Probe::kGoArtTombstone:
          // Secondary search. The scalar path's tombstone write-back is an
          // opportunistic repair, not needed for result correctness — the
          // batch path skips it rather than taking a slot lock mid-pipeline.
          c.slot = slot;
          c.word = word;
          return route_to_art();
      }
      return fallback();  // unreachable
    }

    case Stage::kFpEntry: {
      c.hint = fp_buffer_.Get(c.fpi);
      if (c.hint.node != nullptr && FastPointerBuffer::Covers(c.hint, c.key)) {
        PrefetchReadRange(c.hint.node, 2 * kCacheLineBytes);
        c.hint_descent = true;
      } else {
        c.hint.node = nullptr;
      }
      c.stage = Stage::kArtInit;
      return false;
    }

    case Stage::kArtInit: {
      art::Node* start = c.hint_descent ? c.hint.node : art_.root();
      if (!art_.DescentInit(start, &c.ds)) {
        // Hint went obsolete between Get and init (the root never does).
        c.hint_descent = false;
        if (!art_.DescentInit(art_.root(), &c.ds)) return fallback();
      }
      c.stage = Stage::kArtStep;
      return false;
    }

    case Stage::kArtStep: {
      Value v = 0;
      switch (art_.DescentStep(&c.ds, c.key, &v, &c.art_steps)) {
        case art::StepResult::kStepped:
          return false;  // next node's lines are in flight
        case art::StepResult::kFound:
          out[c.index] = v;
          ++st->art_lookups;
          st->art_steps += static_cast<uint64_t>(c.art_steps);
          if (c.hint_descent) {
            ++st->fp_hits;
            const int d = std::min<int>(c.hint.depth,
                                        static_cast<int>(metrics::kFpDepthBuckets) - 1);
            ++st->fp_depth[d < 0 ? 0 : d];
          }
          return finish(true);
        case art::StepResult::kNotFound:
          if (c.hint_descent) {
            // A miss under the hint is not authoritative during SMOs —
            // same rule as ArtLookup: fall back to a root descent.
            ++st->root_fallbacks;
            c.hint_descent = false;
            c.stage = Stage::kArtInit;
            return false;
          }
          ++st->art_lookups;
          st->art_steps += static_cast<uint64_t>(c.art_steps);
          // Authoritative ART miss: re-validate the routing (mirrors the
          // tail of LookupInternal). A changed slot word or a re-routed
          // directory means the key may have moved while we searched.
          if (c.slot != nullptr) {
            if (c.slot->word.Validate(c.word)) {
              return finish(false);
            }
            return fallback();
          } else {
            const ModelDirectory::Snapshot* snap2 = directory_.snapshot();
            if (snap2->models[ModelDirectory::Locate(*snap2, c.key)].load(
                    std::memory_order_acquire) == c.model) {
              return finish(false);
            }
            return fallback();
          }
        case art::StepResult::kRestart:
          if (++c.restarts > kMaxDescentRestarts) return fallback();
          c.stage = Stage::kArtInit;
          return false;
      }
      return fallback();  // unreachable
    }
  }
  return fallback();  // unreachable
}

size_t AltIndex::LookupBatch(const Key* keys, size_t n, Value* out,
                             bool* found) const {
  if (n == 0) return 0;
  EpochGuard g(*epoch_);
  trace::Span span("lookup_batch", "read", n);

  const uint32_t width = std::max(
      1u, std::min(options_.batch_group_width, AltOptions::kMaxBatchGroupWidth));

  BatchStatsDelta st;
  BatchCursor cursors[AltOptions::kMaxBatchGroupWidth];
  bool active[AltOptions::kMaxBatchGroupWidth] = {};
  size_t next = 0;  ///< next key index to issue
  size_t live = 0;  ///< cursors currently in flight

  const auto issue = [&](size_t lane) {
    BatchCursor& c = cursors[lane];
    c = BatchCursor{};
    c.key = keys[next];
    c.index = static_cast<uint32_t>(next);
    active[lane] = true;
    ++next;
    ++live;
    // Prefetch the directory lines the kLocate stage will touch.
    ModelDirectory::PrefetchLocate(*directory_.snapshot(), c.key);
  };

  const size_t group = std::min<size_t>(width, n);
  for (size_t i = 0; i < group; ++i) issue(i);

  // Round-robin over the in-flight group; a retired cursor is immediately
  // refilled with the next pending key so the pipeline stays full.
  while (live > 0) {
    for (size_t i = 0; i < group; ++i) {
      if (!active[i]) continue;
      if (BatchStep(cursors[i], out, found, &st)) {
        --live;
        active[i] = false;
        if (next < n) issue(i);
      }
    }
  }

  st.Flush(n);

  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (found[i]) ++hits;
  }
  return hits;
}

}  // namespace alt
