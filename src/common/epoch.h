#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/spinlock.h"

namespace alt {

/// \brief Epoch-based memory reclamation shared by all concurrent structures.
///
/// Optimistic lock coupling (ART) and copy-on-write snapshots (model directory,
/// retraining) replace nodes while lock-free readers may still dereference the
/// old ones. Writers therefore *retire* replaced memory here instead of freeing
/// it; it is reclaimed once every thread that could have observed it has left
/// its read-side critical section.
///
/// Usage:
///   { EpochGuard g;            // read-side critical section
///     ... dereference shared nodes ... }
///   EpochManager::Global().Retire(old_node, [](void* p){ delete Node::From(p); });
///
/// The design is the classic 3-epoch scheme: a guard pins the global epoch in a
/// per-thread slot; retired items are stamped with the epoch at retirement and
/// freed when the minimum pinned epoch has advanced past them.
class EpochManager {
 public:
  static constexpr uint64_t kIdle = ~uint64_t{0};
  static constexpr int kMaxThreads = 256;

  using Deleter = void (*)(void*);

  static EpochManager& Global() {
    static EpochManager mgr;
    return mgr;
  }

  /// Enter a read-side critical section (nestable). Prefer EpochGuard.
  void Enter() {
    ThreadState& ts = LocalState();
    if (ts.nesting++ == 0) {
      uint64_t e = global_epoch_.load(std::memory_order_acquire);
      slots_[ts.slot].epoch.store(e, std::memory_order_release);
      // A second load catches an advance that raced with our publication.
      uint64_t e2 = global_epoch_.load(std::memory_order_acquire);
      if (e2 != e) slots_[ts.slot].epoch.store(e2, std::memory_order_release);
    }
  }

  void Exit() {
    ThreadState& ts = LocalState();
    if (--ts.nesting == 0) {
      slots_[ts.slot].epoch.store(kIdle, std::memory_order_release);
    }
  }

  /// Schedule `p` for deletion once all current readers are gone.
  void Retire(void* p, Deleter del) {
    ThreadState& ts = LocalState();
    uint64_t e = global_epoch_.load(std::memory_order_acquire);
    {
      std::lock_guard<SpinLock> lg(ts.retired_lock);
      ts.retired.push_back({p, del, e});
    }
    if (++ts.retire_count % kAdvanceInterval == 0) {
      AdvanceAndCollect(ts);
    }
  }

  /// Free everything retired so far. Only safe when no thread is inside a
  /// read-side section (e.g. between benchmark phases, in destructors of the
  /// last live index, or single-threaded tests).
  void DrainAll() {
    global_epoch_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lg(registry_mutex_);
    for (ThreadState* ts : registry_) {
      std::vector<Retired> items;
      {
        std::lock_guard<SpinLock> il(ts->retired_lock);
        items.swap(ts->retired);
      }
      for (auto& r : items) r.del(r.p);
    }
  }

  uint64_t GlobalEpoch() const { return global_epoch_.load(std::memory_order_acquire); }

  /// Count of items awaiting reclamation (approximate; for tests/metrics).
  size_t PendingCount() {
    std::lock_guard<std::mutex> lg(registry_mutex_);
    size_t n = 0;
    for (ThreadState* ts : registry_) {
      std::lock_guard<SpinLock> il(ts->retired_lock);
      n += ts->retired.size();
    }
    return n;
  }

 private:
  static constexpr int kAdvanceInterval = 64;

  struct Retired {
    void* p;
    Deleter del;
    uint64_t epoch;
  };

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  struct ThreadState {
    int slot = -1;
    int nesting = 0;
    uint64_t retire_count = 0;
    SpinLock retired_lock;
    std::vector<Retired> retired;
  };

  EpochManager() = default;

  // The singleton destructs at process exit, after user threads joined: free
  // everything still pending plus the per-thread registry records.
  ~EpochManager() {
    DrainAll();
    std::lock_guard<std::mutex> lg(registry_mutex_);
    for (ThreadState* ts : registry_) delete ts;
    registry_.clear();
  }

  ThreadState& LocalState() {
    thread_local ThreadState* ts = nullptr;
    if (ts == nullptr) ts = RegisterThread();
    return *ts;
  }

  ThreadState* RegisterThread() {
    auto* ts = new ThreadState();
    std::lock_guard<std::mutex> lg(registry_mutex_);
    ts->slot = next_slot_++ % kMaxThreads;
    registry_.push_back(ts);
    return ts;
  }

  uint64_t MinPinnedEpoch() const {
    uint64_t m = kIdle;
    for (const Slot& s : slots_) {
      uint64_t e = s.epoch.load(std::memory_order_acquire);
      if (e < m) m = e;
    }
    return m;
  }

  void AdvanceAndCollect(ThreadState& ts) {
    global_epoch_.fetch_add(1, std::memory_order_acq_rel);
    uint64_t min_pinned = MinPinnedEpoch();
    std::vector<Retired> free_now;
    {
      std::lock_guard<SpinLock> lg(ts.retired_lock);
      auto& v = ts.retired;
      size_t w = 0;
      for (size_t i = 0; i < v.size(); ++i) {
        // Safe once no reader can still be pinned at or before the retire epoch.
        if (v[i].epoch < min_pinned) {
          free_now.push_back(v[i]);
        } else {
          v[w++] = v[i];
        }
      }
      v.resize(w);
    }
    for (auto& r : free_now) r.del(r.p);
  }

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxThreads];
  std::mutex registry_mutex_;
  std::vector<ThreadState*> registry_;
  int next_slot_ = 0;
};

/// RAII read-side critical section.
class EpochGuard {
 public:
  EpochGuard() { EpochManager::Global().Enter(); }
  ~EpochGuard() { EpochManager::Global().Exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
};

}  // namespace alt
