#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/key_codec.h"
#include "common/status.h"

namespace alt {

/// \brief Uniform facade over every index in this repository (ALT-index, the
/// four learned-index competitors, ART, B+-tree), used by the benchmark
/// harness, workload runner and integration tests.
///
/// Contract: BulkLoad runs once, single-threaded, before any other call; all
/// other operations are thread-safe and may run concurrently.
class ConcurrentIndex {
 public:
  virtual ~ConcurrentIndex() = default;

  /// Human-readable name used in benchmark table rows (e.g. "ALT-index").
  virtual std::string Name() const = 0;

  /// Build from sorted, duplicate-free data.
  virtual Status BulkLoad(const Key* keys, const Value* values, size_t n) = 0;

  /// \return true and set *out if `key` is present.
  virtual bool Lookup(Key key, Value* out) = 0;

  /// Batched point lookups: found[i] is set for every key, out[i] only when
  /// found[i]. Indexes with a pipelined read path (ALT-index) override this;
  /// the default is the scalar loop, so every index accepts batched reads.
  /// \return the number of keys found.
  virtual size_t LookupBatch(const Key* keys, size_t n, Value* out, bool* found) {
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      found[i] = Lookup(keys[i], &out[i]);
      hits += found[i] ? 1 : 0;
    }
    return hits;
  }

  /// \return false if the key already exists (no change).
  virtual bool Insert(Key key, Value value) = 0;

  /// Overwrite an existing key; \return false if absent.
  virtual bool Update(Key key, Value value) = 0;

  /// \return true if the key was present.
  virtual bool Remove(Key key) = 0;

  /// Up to `count` pairs with key >= start, ascending. \return pairs written.
  virtual size_t Scan(Key start, size_t count,
                      std::vector<std::pair<Key, Value>>* out) = 0;

  /// Approximate heap footprint in bytes (quiescent).
  virtual size_t MemoryUsage() const = 0;

  /// Approximate live key count.
  virtual size_t Size() const = 0;
};

}  // namespace alt
