// Reproduces Fig. 8(e): throughput as the Zipfian skew theta grows (osm,
// read-write-balanced reads). Higher skew means better cache locality, so
// throughput rises; ALT-index should keep its lead throughout.
#include "bench_common.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  const auto keys = LoadKeys(cfg, Dataset::kOsm);
  PrintHeader("Fig. 8(e): throughput vs zipf theta (osm, balanced, Mops/s)",
              {"theta", "ALT", "ALEX+", "LIPP+", "FINEdex", "XIndex", "ART"});
  for (double theta : {0.5, 0.7, 0.9, 0.99, 1.1, 1.3}) {
    BenchConfig c = cfg;
    c.zipf_theta = theta;
    std::vector<std::string> row{Fmt(theta)};
    for (const char* name : {"alt", "alex", "lipp", "finedex", "xindex", "art"}) {
      const RunResult r = RunOne(c, name, keys, WorkloadType::kBalanced);
      row.push_back(Fmt(r.throughput_mops));
    }
    PrintRow(row);
  }
  return 0;
}
