// alt-epoch-pinned failing fixture: calls to ALT_REQUIRES_EPOCH functions
// from scopes with no pin evidence. The macro and guard are stand-ins; the
// check keys off the tokens, not the real headers.
#define ALT_REQUIRES_EPOCH
struct EpochGuard {};

struct Node {
  int value;
};

int ReadNode(const Node* n) ALT_REQUIRES_EPOCH;

int Unpinned(const Node* n) {
  return ReadNode(n);
}

int GuardInInnerScopeOnly(const Node* n) {
  {
    EpochGuard g;
  }
  return ReadNode(n);
}
