#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/key_codec.h"
#include "common/prefetch.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "core/gpl_model.h"

namespace alt {

/// \brief The flattened "upper model" (§III-B): an immutable sorted array of
/// model first-keys published through an atomic snapshot pointer, plus the
/// model pointers themselves.
///
/// Two kinds of structural change, both rare and serialized by a lock:
///  - retraining replaces a model *in place* (first_key is preserved, so the
///    sorted order is untouched): an atomic store into the snapshot's slot;
///  - appending a tail model (out-of-range catcher, §III-F) copies the
///    snapshot (copy-on-write) and swings the snapshot pointer.
///
/// Readers run under an EpochGuard; replaced models/snapshots are retired to
/// the epoch manager.
class ModelDirectory {
 public:
  struct Snapshot {
    explicit Snapshot(size_t n) : first_keys(n), models(n) {}
    std::vector<Key> first_keys;
    std::vector<std::atomic<GplModel*>> models;
    /// Optional radix acceleration (§III-B discusses binary search vs radix
    /// table): radix[r] = index of the model owning the smallest key whose
    /// top `radix_bits` equal r. Narrows the binary search window to the
    /// bucket; empty when radix_bits == 0.
    int radix_bits = 0;
    std::vector<uint32_t> radix;
  };

  ModelDirectory() = default;
  ~ModelDirectory();

  ModelDirectory(const ModelDirectory&) = delete;
  ModelDirectory& operator=(const ModelDirectory&) = delete;

  /// Install the initial model list (bulk load, single-threaded). Takes
  /// ownership. Models must be sorted by first_key.
  /// \param radix_bits build a 2^radix_bits-entry prefix table accelerating
  ///        Locate (0 = pure binary search, the paper's choice).
  void Build(std::vector<GplModel*> models, int radix_bits = 0);

  /// Current snapshot; caller must hold an EpochGuard.
  const Snapshot* snapshot() const { return snapshot_.load(std::memory_order_acquire); }

  /// Batched read path stage hook: pull the first-key segment Locate will
  /// binary-search for `key` (the radix bucket when present, else the middle
  /// of the full window) so the upper-model search does not stall the group.
  static void PrefetchLocate(const Snapshot& s, Key key) {
    size_t lo = 0, hi = s.first_keys.size();
    if (s.radix_bits > 0) {
      const size_t r = static_cast<size_t>(key >> (64 - s.radix_bits));
      PrefetchRead(&s.radix[r]);
      lo = s.radix[r];
      hi = s.radix[r + 1];
    }
    if (lo < hi) {
      PrefetchRead(&s.first_keys[lo + (hi - lo) / 2]);
      // The model-pointer cell is read right after the search resolves; its
      // array parallels first_keys, so the same midpoint is the best guess.
      PrefetchRead(&s.models[lo + (hi - lo) / 2]);
    }
  }

  /// Index of the model responsible for `key`: the last model whose first_key
  /// <= key (clamped to 0 for under-range keys).
  static size_t Locate(const Snapshot& s, Key key) {
    // Branch-reduced binary search over the sorted first-key array, narrowed
    // to the key's radix bucket when the table is present.
    size_t lo = 0, hi = s.first_keys.size();
    if (s.radix_bits > 0) {
      const size_t r = static_cast<size_t>(key >> (64 - s.radix_bits));
      lo = s.radix[r];
      hi = s.radix[r + 1];
    }
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (s.first_keys[mid] <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo == 0 ? 0 : lo - 1;
  }

  /// Retraining finished: swap `old_model` (at the slot owning `first_key`)
  /// for `new_model`. Retires the old model via the epoch manager.
  /// \return false if the slot no longer holds `old_model`.
  bool PublishReplacement(GplModel* old_model, GplModel* new_model);

  /// Append a model whose first_key is greater than every existing one.
  /// \return false (and leave the directory untouched) if a concurrent append
  /// already installed a model at or beyond this first key.
  bool AppendTail(GplModel* model);

  size_t NumModels() const {
    const Snapshot* s = snapshot_.load(std::memory_order_acquire);
    return s == nullptr ? 0 : s->first_keys.size();
  }

  /// Sum of model footprints (quiescent).
  size_t MemoryBytes() const;

 private:
  static void RetireSnapshot(Snapshot* s);
  static void BuildRadix(Snapshot* s, int radix_bits);

  /// Serializes structural changes (Build / PublishReplacement / AppendTail).
  /// Snapshots themselves stay readable lock-free through `snapshot_`.
  SpinLock structure_lock_;
  int radix_bits_ GUARDED_BY(structure_lock_) = 0;
  std::atomic<Snapshot*> snapshot_{nullptr};
};

}  // namespace alt
