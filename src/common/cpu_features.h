#pragma once

// ALT_SIMD_X86: this build contains the AVX2 code paths (function-level
// `target("avx2")` attributes; no global -mavx2, so the baseline code stays
// runnable on any x86-64). Vector slot-state scans read slot words with plain
// (non-atomic) loads — the same seqlock-escape idiom as the optimistic
// accessors, but invisible to ThreadSanitizer — so TSan builds compile the
// scalar paths only and every report stays actionable.
#if defined(__SANITIZE_THREAD__)
#define ALT_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ALT_TSAN_BUILD 1
#endif
#endif
#if !defined(ALT_SIMD_DISABLED) && !defined(ALT_TSAN_BUILD) && \
    defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ALT_SIMD_X86 1
#else
#define ALT_SIMD_X86 0
#endif

namespace alt {
namespace cpu {

/// \brief Runtime CPU feature report backing the SIMD dispatch (DESIGN.md §10).
///
/// Detection runs once (CPUID via __builtin_cpu_supports, which also checks
/// OS XSAVE support for the ymm state) and is folded together with the two
/// kill switches:
///  - compile time: -DALT_SIMD=OFF builds no vector code at all;
///  - runtime: ALT_FORCE_SCALAR=1 in the environment pins the always-compiled
///    scalar paths even on AVX2 hardware (the differential-test hook, and the
///    escape hatch if a vector path ever misbehaves in production).
struct Features {
  bool avx2 = false;          ///< hardware + OS support ymm state
  bool forced_scalar = false; ///< ALT_FORCE_SCALAR=1 seen in the environment
  bool compiled_simd = false; ///< this binary contains the AVX2 paths
};

/// The process-wide feature report (detected once, then cached).
const Features& GetFeatures();

/// True iff the vector paths should run: compiled in, hardware-supported, and
/// not overridden by ALT_FORCE_SCALAR. Cheap enough for per-operation checks
/// (one relaxed bool load after first use).
bool SimdEnabled();

/// Human-readable dispatch decision for logs and bench headers: "avx2",
/// "scalar (forced)", "scalar (no avx2)", or "scalar (compiled out)".
const char* SimdModeName();

}  // namespace cpu
}  // namespace alt
