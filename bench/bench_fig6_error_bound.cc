// Reproduces Fig. 6: the relationship between the GPL error bound and (a) the
// number of GPL models (Eq. 1's inverse proportionality) and (b) ALT-index
// throughput, including the "stable area" around the suggested epsilon =
// N/1000 (§III-D).
#include "core/alt_index.h"

#include "bench_common.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);

  PrintHeader("Fig. 6(a): #GPL models vs error bound",
              {"ErrorBound", "libio", "osm", "fb", "longlat"});
  const std::vector<double> bounds = {8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
  // Cache generated keys per dataset.
  std::vector<std::vector<Key>> all_keys;
  for (Dataset d : PaperDatasets()) all_keys.push_back(LoadKeys(cfg, d));
  for (double eps : bounds) {
    std::vector<std::string> row{Fmt(eps, 0)};
    for (const auto& keys : all_keys) {
      AltOptions o;
      o.error_bound = eps;
      AltIndex index(o);
      auto setup = SplitDataset(keys, cfg.bulk_fraction);
      std::vector<Value> vals(setup.loaded.size());
      for (size_t i = 0; i < vals.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
      index.BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size());
      row.push_back(std::to_string(index.CollectStats().num_models));
    }
    PrintRow(row);
  }

  PrintHeader("Fig. 6(b): ALT-index throughput vs error bound (read-only, Mops/s)",
              {"ErrorBound", "libio", "osm", "fb", "longlat"});
  for (double eps : bounds) {
    std::vector<std::string> row{Fmt(eps, 0)};
    for (size_t di = 0; di < all_keys.size(); ++di) {
      AltOptions o;
      o.error_bound = eps;
      const RunResult r = RunOne(cfg, "alt", all_keys[di], WorkloadType::kReadOnly, o);
      row.push_back(Fmt(r.throughput_mops));
    }
    PrintRow(row);
  }
  const double suggested =
      AltOptions::SuggestErrorBound(static_cast<size_t>(
          static_cast<double>(cfg.keys) * cfg.bulk_fraction));
  std::printf("\nSuggested epsilon (N_bulk/1000) = %.0f — expect it inside the"
              " stable area above.\n", suggested);
  return 0;
}
