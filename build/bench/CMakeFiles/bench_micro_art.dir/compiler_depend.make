# Empty compiler generated dependencies file for bench_micro_art.
# This may be replaced when dependencies are built.
