#include "common/simd.h"

#include <cstring>

#if ALT_SIMD_X86
#include <immintrin.h>
#endif

namespace alt {
namespace simd {

SlotScan8 ScanSlotWords8Scalar(const void* first_slot,
                               size_t stride) ALT_REQUIRES_EPOCH {
  SlotScan8 r;
  const auto* base = static_cast<const unsigned char*>(first_slot);
  for (int lane = 0; lane < 8; ++lane) {
    uint32_t w;
    std::memcpy(&w, base + stride * static_cast<size_t>(lane), sizeof(w));
    if ((w & 1u) != 0) {
      r.busy_mask |= static_cast<uint8_t>(1u << lane);
      continue;
    }
    r.state_mask[(w >> 1) & 3u] |= static_cast<uint8_t>(1u << lane);
  }
  return r;
}

#if ALT_SIMD_X86
namespace detail {

// AVX2 has no unsigned 64-bit compare; flipping the sign bit maps unsigned
// order onto the signed _mm256_cmpgt_epi64 order.
__attribute__((target("avx2"))) size_t UpperBoundU64Avx2(const uint64_t* data,
                                                         size_t lo, size_t hi,
                                                         uint64_t key) {
  // Bisect until the window fits one contiguous sweep. Identical midpoint
  // arithmetic to the scalar twin, so both take the same path to the window.
  while (hi - lo > kSimdSearchCutover) {
    const size_t mid = lo + (hi - lo) / 2;
    if (data[mid] <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m256i sign = _mm256_set1_epi64x(static_cast<long long>(1ULL << 63));
  const __m256i vkey = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(key)), sign);
  size_t i = lo;
  // 8 keys per iteration: two 256-bit loads, two compares, one combined
  // movemask test. The array is sorted, so the first set bit is the answer.
  for (; i + 8 <= hi; i += 8) {
    const __m256i a = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i)), sign);
    const __m256i b = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i + 4)), sign);
    const unsigned ma = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(a, vkey))));
    const unsigned mb = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(b, vkey))));
    const unsigned m = ma | (mb << 4);
    if (m != 0) return i + static_cast<size_t>(__builtin_ctz(m));
  }
  if (i + 4 <= hi) {
    const __m256i a = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i)), sign);
    const unsigned m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(a, vkey))));
    if (m != 0) return i + static_cast<size_t>(__builtin_ctz(m));
    i += 4;
  }
  for (; i < hi; ++i) {
    if (data[i] > key) return i;
  }
  return hi;
}

__attribute__((target("avx2"))) SlotScan8 ScanSlotWords8Avx2(
    const void* first_slot, size_t stride) ALT_REQUIRES_EPOCH {
  const auto* base = static_cast<const unsigned char*>(first_slot);
  __m256i words;
  if (stride == 32) {
    // 8 slots of exactly 32 bytes each: one 256-bit load per slot puts the
    // state word in 32-bit lane 0, and a three-level unpack tree packs the
    // eight lane-0 words into one vector. VPGATHERDD is 1-2 cycles *per
    // element* on most cores, so eight plain loads (same cache lines either
    // way) plus seven shuffles measure ~3x faster than the gather variant.
    const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base));
    const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 32));
    const __m256i v2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 64));
    const __m256i v3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 96));
    const __m256i v4 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 128));
    const __m256i v5 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 160));
    const __m256i v6 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 192));
    const __m256i v7 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 224));
    const __m256i a01 = _mm256_unpacklo_epi32(v0, v1);  // low lane: w0 w1 . .
    const __m256i a23 = _mm256_unpacklo_epi32(v2, v3);  // low lane: w2 w3 . .
    const __m256i a45 = _mm256_unpacklo_epi32(v4, v5);
    const __m256i a67 = _mm256_unpacklo_epi32(v6, v7);
    const __m256i b03 = _mm256_unpacklo_epi64(a01, a23);  // low lane: w0..w3
    const __m256i b47 = _mm256_unpacklo_epi64(a45, a67);  // low lane: w4..w7
    words = _mm256_permute2x128_si256(b03, b47, 0x20);    // w0..w7
  } else {
    // Generic stride: one gather replaces 8 strided scalar loads; scale 1
    // keeps the byte stride free-form.
    const int s = static_cast<int>(stride);
    const __m256i vidx = _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s,
                                           6 * s, 7 * s);
    words = _mm256_i32gather_epi32(reinterpret_cast<const int*>(first_slot),
                                   vidx, 1);
  }
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i three = _mm256_set1_epi32(3);
  SlotScan8 r;
  r.busy_mask = static_cast<uint8_t>(_mm256_movemask_ps(_mm256_castsi256_ps(
      _mm256_cmpeq_epi32(_mm256_and_si256(words, one), one))));
  const __m256i state = _mm256_and_si256(_mm256_srli_epi32(words, 1), three);
  for (int st = 0; st < 4; ++st) {
    const uint8_t m = static_cast<uint8_t>(_mm256_movemask_ps(_mm256_castsi256_ps(
        _mm256_cmpeq_epi32(state, _mm256_set1_epi32(st)))));
    r.state_mask[st] = static_cast<uint8_t>(m & ~r.busy_mask);
  }
  return r;
}

}  // namespace detail
#endif  // ALT_SIMD_X86

}  // namespace simd
}  // namespace alt
