#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/key_codec.h"
#include "common/status.h"

namespace alt {

/// Workload mixes from the paper (§IV-A2).
enum class WorkloadType {
  kReadOnly,   ///< 100% reads
  kReadHeavy,  ///< 80% reads, 20% inserts
  kBalanced,   ///< 50% reads, 50% inserts
  kWriteHeavy, ///< 20% reads, 80% inserts
  kWriteOnly,  ///< 100% inserts
  kScan,       ///< 100-key scans
};

Status ParseWorkload(const std::string& name, WorkloadType* out);
const char* WorkloadName(WorkloadType w);
std::vector<WorkloadType> PaperWorkloads();

enum class OpType : uint8_t { kRead, kInsert, kScan, kUpdate, kRemove };

struct Op {
  OpType type;
  Key key;
};

/// \brief Pre-generated per-thread operation streams, so the timed region
/// measures only index work.
///
/// Key selection follows the paper: reads draw Zipfian (theta = 0.99 by
/// default) over the bulk-loaded keys; inserts draw uniformly from the
/// reserved (not-yet-loaded) key pool, partitioned per thread so concurrent
/// inserters never collide on the same key; scans start at Zipfian-chosen
/// loaded keys.
struct WorkloadOptions {
  WorkloadType type = WorkloadType::kBalanced;
  size_t ops_per_thread = 200000;
  double zipf_theta = 0.99;
  size_t scan_length = 100;
  uint64_t seed = 1234;
  /// Hot-write mode (§IV-E): inserts are drawn *sequentially* from the pool
  /// (which the caller arranges to be a consecutive key range) to hammer one
  /// region and trigger retraining.
  bool sequential_inserts = false;
};

std::vector<std::vector<Op>> GenerateOpStreams(
    const std::vector<Key>& loaded_keys, const std::vector<Key>& insert_pool,
    int num_threads, const WorkloadOptions& options);

}  // namespace alt
