#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "art/art_tree.h"
#include "common/epoch.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/fast_pointer_buffer.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

using art::ArtTree;
using art::HintOutcome;

class ArtEdgeTest : public ::testing::Test {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

// ---------------------------------------------------------------------------
// Shrinking paths: grow nodes to each fanout, then remove back down.
// ---------------------------------------------------------------------------

TEST_F(ArtEdgeTest, ShrinkNode256To48) {
  ArtTree tree;
  EpochGuard g;
  const Key base = 0x7700000000000000ULL;
  for (uint64_t b = 0; b < 200; ++b) tree.Insert(base | (b << 32), b);
  auto before = tree.CollectStats();
  ASSERT_GE(before.n256, 2u) << "root + the grown inner node";
  // Remove down to 20 children: 256 -> 48 (and further). Only the fixed
  // Node256 root remains at that fanout.
  for (uint64_t b = 20; b < 200; ++b) EXPECT_TRUE(tree.Remove(base | (b << 32)));
  auto after = tree.CollectStats();
  EXPECT_EQ(after.n256, 1u) << "only the permanent root stays a Node256";
  EXPECT_LT(after.bytes, before.bytes);
  for (uint64_t b = 0; b < 20; ++b) {
    Value v;
    ASSERT_TRUE(tree.Lookup(base | (b << 32), &v));
    EXPECT_EQ(v, b);
  }
}

TEST_F(ArtEdgeTest, ShrinkNode48To16AndNode16To4) {
  ArtTree tree;
  EpochGuard g;
  const Key base = 0x3300000000000000ULL;
  for (uint64_t b = 0; b < 40; ++b) tree.Insert(base | (b << 24), b);
  ASSERT_GE(tree.CollectStats().n48, 1u);
  for (uint64_t b = 2; b < 40; ++b) EXPECT_TRUE(tree.Remove(base | (b << 24)));
  const auto stats = tree.CollectStats();
  EXPECT_EQ(stats.n48, 0u);
  Value v;
  EXPECT_TRUE(tree.Lookup(base | (0ull << 24), &v));
  EXPECT_TRUE(tree.Lookup(base | (1ull << 24), &v));
}

TEST_F(ArtEdgeTest, RemoveMergeConcatenatesLongPrefixes) {
  ArtTree tree;
  EpochGuard g;
  // Three keys: two share a 7-byte prefix; the third diverges at byte 2.
  const Key a = 0x1112131415161718ULL;
  const Key b = 0x1112131415161719ULL;
  const Key c = 0x11FF000000000000ULL;
  tree.Insert(a, 1);
  tree.Insert(b, 2);
  tree.Insert(c, 3);
  // Removing c merges the split node; the deep pair's path re-compresses.
  EXPECT_TRUE(tree.Remove(c));
  Value v;
  ASSERT_TRUE(tree.Lookup(a, &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(tree.Lookup(b, &v));
  EXPECT_EQ(v, 2u);
  // Removing b leaves a single leaf reachable through the merged path.
  EXPECT_TRUE(tree.Remove(b));
  ASSERT_TRUE(tree.Lookup(a, &v));
  EXPECT_EQ(v, 1u);
  EXPECT_FALSE(tree.Lookup(b, &v));
}

TEST_F(ArtEdgeTest, InsertRemoveEverythingRepeatedly) {
  ArtTree tree;
  EpochGuard g;
  auto keys = GenerateKeys(Dataset::kLognormal, 3000, 5);
  for (int round = 0; round < 4; ++round) {
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(tree.Insert(keys[i], i + round)) << round << " " << i;
    }
    EXPECT_EQ(tree.Size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(tree.Remove(keys[i])) << round << " " << i;
    }
    EXPECT_EQ(tree.Size(), 0u);
    EXPECT_EQ(tree.CollectStats().leaves, 0u);
  }
}

// ---------------------------------------------------------------------------
// Hint entry points
// ---------------------------------------------------------------------------

TEST_F(ArtEdgeTest, LookupFromObsoleteHintReportsNeedRoot) {
  ArtTree tree;
  EpochGuard g;
  const Key base = 0x4400000000000000ULL;
  // Build a Node4 and keep a pointer to it.
  tree.Insert(base | (1ull << 40), 1);
  tree.Insert(base | (2ull << 40), 2);
  int depth = 0;
  art::Node* node = tree.FindLcaNode(base | (1ull << 40), base | (2ull << 40), &depth);
  ASSERT_NE(node, tree.root());
  // Grow it past 4 children: the node is replaced and marked obsolete.
  for (uint64_t b = 3; b <= 6; ++b) tree.Insert(base | (b << 40), b);
  Value v;
  EXPECT_EQ(tree.LookupFrom(node, base | (1ull << 40), &v), HintOutcome::kNeedRoot);
  EXPECT_EQ(tree.InsertFrom(node, base | (9ull << 40), 9), HintOutcome::kNeedRoot);
}

TEST_F(ArtEdgeTest, InsertFromHintNeedsRootWhenHintMustGrow) {
  ArtTree tree;
  EpochGuard g;
  const Key base = 0x5500000000000000ULL;
  for (uint64_t b = 1; b <= 4; ++b) tree.Insert(base | (b << 40), b);
  int depth = 0;
  art::Node* node = tree.FindLcaNode(base | (1ull << 40), base | (4ull << 40), &depth);
  // Node4 is full; inserting a fifth distinct branch via the hint requires
  // growing the hint node itself, whose parent the hint path cannot know.
  const HintOutcome r = tree.InsertFrom(node, base | (5ull << 40), 5);
  EXPECT_EQ(r, HintOutcome::kNeedRoot);
  // The root-based fallback performs the growth.
  EXPECT_TRUE(tree.Insert(base | (5ull << 40), 5));
  Value v;
  ASSERT_TRUE(tree.Lookup(base | (5ull << 40), &v));
  EXPECT_EQ(v, 5u);
}

TEST_F(ArtEdgeTest, LookupFromDeepHintAfterManyMutations) {
  ArtTree tree;
  FastPointerBuffer buf;
  tree.SetListener(&buf);
  EpochGuard g;
  auto keys = GenerateKeys(Dataset::kFb, 20000, 17);
  for (size_t i = 0; i < keys.size(); i += 2) tree.Insert(keys[i], i);
  int depth = 0;
  const size_t lo_i = keys.size() / 4, hi_i = lo_i + 400;
  art::Node* lca = tree.FindLcaNode(keys[lo_i], keys[hi_i], &depth);
  const int32_t slot = buf.AddPointer(lca, depth, KeyPrefix(keys[lo_i], depth));
  // Heavy mutation inside and around the hinted range.
  for (size_t i = 1; i < keys.size(); i += 2) tree.Insert(keys[i], i);
  for (size_t i = lo_i; i < hi_i; i += 3) tree.Remove(keys[i]);
  // The (possibly relocated) entry still answers every surviving range key.
  const auto ref = buf.Get(slot);
  for (size_t i = lo_i; i <= hi_i; ++i) {
    Value v;
    const bool expect = !(i >= lo_i && i < hi_i && (i - lo_i) % 3 == 0);
    bool found;
    if (ref.node != nullptr && FastPointerBuffer::Covers(ref, keys[i])) {
      const HintOutcome r = tree.LookupFrom(ref.node, keys[i], &v);
      found = r == HintOutcome::kFound ||
              (r != HintOutcome::kFound && tree.Lookup(keys[i], &v));
    } else {
      found = tree.Lookup(keys[i], &v);
    }
    EXPECT_EQ(found, expect) << i;
  }
}

// ---------------------------------------------------------------------------
// Scans under adversarial structure
// ---------------------------------------------------------------------------

TEST_F(ArtEdgeTest, ScanOverDeepPrefixClusters) {
  ArtTree tree;
  EpochGuard g;
  // Clusters of keys sharing 6-byte prefixes, far apart.
  std::vector<Key> all;
  Rng rng(3);
  for (int c = 0; c < 50; ++c) {
    const Key base = rng.Next() & ~Key{0xFFFF};
    for (int i = 0; i < 40; ++i) all.push_back(base | static_cast<Key>(i * 7));
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  for (size_t i = 0; i < all.size(); ++i) tree.Insert(all[i], i);
  std::vector<std::pair<Key, Value>> out;
  for (size_t start = 0; start + 60 < all.size(); start += 123) {
    ASSERT_EQ(tree.Scan(all[start], 60, &out), 60u);
    for (size_t i = 0; i < 60; ++i) EXPECT_EQ(out[i].first, all[start + i]);
  }
}

TEST_F(ArtEdgeTest, RangeQueryTightWindows) {
  ArtTree tree;
  EpochGuard g;
  for (Key k = 0; k < 1000; ++k) tree.Insert(k * 1000, k);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(tree.RangeQuery(5000, 5000, &out), 1u);       // exact single
  EXPECT_EQ(tree.RangeQuery(5001, 5999, &out), 0u);       // between keys
  EXPECT_EQ(tree.RangeQuery(0, 0, &out), 1u);             // smallest key
  EXPECT_EQ(tree.RangeQuery(999000, ~Key{0}, &out), 1u);  // largest key
}

// ---------------------------------------------------------------------------
// Zipf high-skew branch (theta > 1)
// ---------------------------------------------------------------------------

TEST(ZipfEdgeTest, ThetaAboveOneStillBounded) {
  Zipf z(5000, 1.3, 3);
  int top = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t r = z.Next();
    ASSERT_LT(r, 5000u);
    top += (r == 0);
  }
  EXPECT_GT(top, 2000) << "theta=1.3 concentrates hard on rank 0";
}

}  // namespace
}  // namespace alt
