#pragma once

#include <string>

namespace alt {

/// \brief Escape `s` for inclusion inside a JSON string literal (RFC 8259):
/// `"` and `\` are backslash-escaped, control characters below 0x20 become
/// `\uXXXX` (with the common short forms `\n` `\t` `\r` `\b` `\f`). The result
/// does NOT include the surrounding quotes.
///
/// Every hand-built JSON emitter in the repo (runner metrics lines, metrics
/// registry export, trace export, structural reports) must route free-form
/// strings — labels, phases, dataset names — through this helper; only
/// compile-time constant names may be emitted raw.
std::string JsonEscape(const std::string& s);

/// Append `"` + JsonEscape(s) + `"` to *out (the common emit pattern).
void AppendJsonQuoted(const std::string& s, std::string* out);

}  // namespace alt
