#pragma once

#include <map>

#include "common/index_interface.h"
#include "common/shared_mutex.h"

namespace alt {

/// \brief Correctness oracle: std::map under a reader-writer lock.
///
/// Not a performance competitor (the paper does not benchmark a B-tree); the
/// stress / property tests compare every other index against this oracle to
/// validate results under concurrency.
class BTreeIndex : public ConcurrentIndex {
 public:
  std::string Name() const override { return "BTree(oracle)"; }

  Status BulkLoad(const Key* keys, const Value* values, size_t n) override {
    WriteLockGuard lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      if (i > 0 && keys[i] <= keys[i - 1]) {
        return Status::InvalidArgument("keys must be sorted and duplicate-free");
      }
      map_.emplace(keys[i], values[i]);
    }
    return Status::OK();
  }

  bool Lookup(Key key, Value* out) override {
    ReadLockGuard lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    *out = it->second;
    return true;
  }

  bool Insert(Key key, Value value) override {
    WriteLockGuard lock(mu_);
    return map_.emplace(key, value).second;
  }

  bool Update(Key key, Value value) override {
    WriteLockGuard lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    it->second = value;
    return true;
  }

  bool Remove(Key key) override {
    WriteLockGuard lock(mu_);
    return map_.erase(key) > 0;
  }

  size_t Scan(Key start, size_t count,
              std::vector<std::pair<Key, Value>>* out) override {
    ReadLockGuard lock(mu_);
    out->clear();
    for (auto it = map_.lower_bound(start); it != map_.end() && out->size() < count;
         ++it) {
      out->emplace_back(it->first, it->second);
    }
    return out->size();
  }

  size_t MemoryUsage() const override {
    ReadLockGuard lock(mu_);
    // std::map node: 3 pointers + color + payload, rounded to the allocator.
    return map_.size() * (sizeof(std::pair<Key, Value>) + 40);
  }

  size_t Size() const override {
    ReadLockGuard lock(mu_);
    return map_.size();
  }

 private:
  mutable SharedMutex mu_;
  std::map<Key, Value> map_ GUARDED_BY(mu_);
};

}  // namespace alt
