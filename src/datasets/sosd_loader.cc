#include "datasets/sosd_loader.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace alt {

Status LoadSosdFile(const std::string& path, size_t limit, std::vector<Key>* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("truncated SOSD header in " + path);
  }
  if (limit != 0 && count > limit) count = limit;
  out->resize(count);
  const size_t got = std::fread(out->data(), sizeof(Key), count, f);
  std::fclose(f);
  if (got != count) return Status::IOError("truncated SOSD body in " + path);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return Status::OK();
}

Status WriteSosdFile(const std::string& path, const std::vector<Key>& keys) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path + " for writing");
  const uint64_t count = keys.size();
  bool ok = std::fwrite(&count, sizeof(count), 1, f) == 1;
  ok = ok && std::fwrite(keys.data(), sizeof(Key), keys.size(), f) == keys.size();
  std::fclose(f);
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace alt
