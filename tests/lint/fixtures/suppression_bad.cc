// Suppression fixture (failing): the alt-lint-allow meta-check rejects
// suppressions naming unknown checks, suppressions with no reason, and
// suppressions that match nothing.
#include <atomic>

struct Peeker {
  std::atomic<int> n{0};

  // ALT_LINT_ALLOW(alt-bogus-check): no such check exists
  int A() const { return n.load(std::memory_order_relaxed); }

  // ALT_LINT_ALLOW(alt-atomic-order):
  int B() const { return n.load(std::memory_order_relaxed); }

  // ALT_LINT_ALLOW(alt-atomic-order): nothing on the next line needs this
  int C() const { return n.load(std::memory_order_relaxed); }

  // ALT_LINT_ALLOW(never-closed so the grammar cannot parse a check name
  int D() const { return n.load(std::memory_order_relaxed); }
};
