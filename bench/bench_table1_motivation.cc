// Reproduces Table I: throughput and P99.9 latency of the concurrent
// updatable learned indexes and ART on libio and osm under the
// read-write-balanced workload. The paper's takeaway — no single competitor
// combines high throughput with low tail latency on both datasets, while ART
// is surprisingly strong — should reproduce in shape.
#include "bench_common.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  cfg.datasets = {Dataset::kLibio, Dataset::kOsm};

  PrintHeader("Table I: motivation (read-write-balanced, " +
                  std::to_string(cfg.threads) + " threads)",
              {"Index", "Dataset", "Mops/s", "P99.9(us)", "P50(ns)"});
  for (const char* name : {"alex", "lipp", "finedex", "xindex", "art"}) {
    for (Dataset d : cfg.datasets) {
      const auto keys = LoadKeys(cfg, d);
      const RunResult r = RunOne(cfg, name, keys, WorkloadType::kBalanced);
      PrintRow({MakeIndex(name)->Name(), DatasetName(d), Fmt(r.throughput_mops),
                Fmt(static_cast<double>(r.p999_ns) / 1000.0),
                std::to_string(r.p50_ns)});
    }
  }
  std::printf(
      "\nLimitations (paper column): ALEX+ = data shifting, LIPP+ = statistic\n"
      "info, FINEdex/XIndex = prediction error, ART = node traversal.\n");
  return 0;
}
