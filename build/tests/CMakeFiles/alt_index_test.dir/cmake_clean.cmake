file(REMOVE_RECURSE
  "CMakeFiles/alt_index_test.dir/alt_index_test.cc.o"
  "CMakeFiles/alt_index_test.dir/alt_index_test.cc.o.d"
  "alt_index_test"
  "alt_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
