#include "baselines/finedex_like.h"

#include <algorithm>

#include "core/gpl.h"

namespace alt {

FinedexLike::~FinedexLike() = default;

size_t FinedexLike::Model::LowerBound(Key key) const {
  const size_t n = keys.size();
  if (n == 0) return 0;
  int64_t pred = 0;
  if (key > base) {
    pred = static_cast<int64_t>(slope * static_cast<double>(key - base));
    if (pred >= static_cast<int64_t>(n)) pred = static_cast<int64_t>(n) - 1;
  }
  int64_t lo = pred - max_error - 1;
  int64_t hi = pred + max_error + 1;
  if (lo < 0) lo = 0;
  if (hi > static_cast<int64_t>(n)) hi = static_cast<int64_t>(n);
  if (lo > 0 && keys[static_cast<size_t>(lo - 1)] >= key) lo = 0;
  if (hi < static_cast<int64_t>(n) && keys[static_cast<size_t>(hi)] < key) {
    hi = static_cast<int64_t>(n);
  }
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (keys[static_cast<size_t>(mid)] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<size_t>(lo);
}

Status FinedexLike::BulkLoad(const Key* keys, const Value* values, size_t n) {
  if (n == 0) return Status::InvalidArgument("empty bulk load");
  for (size_t i = 1; i < n; ++i) {
    if (keys[i] <= keys[i - 1]) {
      return Status::InvalidArgument("keys must be sorted and duplicate-free");
    }
  }
  // LPA-style segmentation: shrinking cone with FINEdex's suggested bound.
  const std::vector<Segment> segs = ShrinkingConeSegment(keys, n, kErrorBound);
  models_.reserve(segs.size());
  first_keys_.reserve(segs.size());
  for (const Segment& seg : segs) {
    auto m = std::make_unique<Model>();
    m->base = keys[seg.start];
    m->keys.assign(keys + seg.start, keys + seg.start + seg.length);
    m->values = std::make_unique<std::atomic<Value>[]>(seg.length);
    for (size_t i = 0; i < seg.length; ++i) {
      m->values[i].store(values[seg.start + i], std::memory_order_relaxed);
    }
    const size_t tomb_words = (seg.length + 63) / 64;
    m->tombstones = std::make_unique<std::atomic<uint64_t>[]>(tomb_words);
    for (size_t w = 0; w < tomb_words; ++w) {
      m->tombstones[w].store(0, std::memory_order_relaxed);
    }
    m->bins = std::make_unique<std::atomic<Bin*>[]>(seg.length + 1);
    m->bin_locks = std::make_unique<SpinLock[]>(seg.length + 1);
    for (size_t i = 0; i <= seg.length; ++i) {
      m->bins[i].store(nullptr, std::memory_order_relaxed);
    }
    m->slope = seg.slope;
    m->max_error = 0;
    for (size_t i = 0; i < seg.length; ++i) {
      const double pred = m->slope * static_cast<double>(m->keys[i] - m->base);
      const double err = pred > static_cast<double>(i)
                             ? pred - static_cast<double>(i)
                             : static_cast<double>(i) - pred;
      if (err > m->max_error) m->max_error = static_cast<uint32_t>(err) + 1;
    }
    first_keys_.push_back(m->base);
    models_.push_back(std::move(m));
  }
  size_.store(n, std::memory_order_relaxed);
  return Status::OK();
}

FinedexLike::Model* FinedexLike::LocateModel(Key key) const {
  size_t lo = 0, hi = first_keys_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (first_keys_[mid] <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return models_[lo == 0 ? 0 : lo - 1].get();
}

FinedexLike::Bin::Slot* FinedexLike::FindInBins(Bin* head, Key key) {
  for (Bin* b = head; b != nullptr; b = b->next.load(std::memory_order_acquire)) {
    const uint32_t cnt =
        std::min<uint32_t>(b->count.load(std::memory_order_acquire), kBinCapacity);
    for (uint32_t i = 0; i < cnt; ++i) {
      Bin::Slot& s = b->slots[i];
      if (s.state.load(std::memory_order_acquire) == 1 &&
          s.key.load(std::memory_order_relaxed) == key) {
        return &s;
      }
    }
  }
  return nullptr;
}

bool FinedexLike::Lookup(Key key, Value* out) {
  Model* m = LocateModel(key);
  const size_t pos = m->LowerBound(key);
  if (pos < m->keys.size() && m->keys[pos] == key) {
    if (!m->Tombstoned(pos)) {
      *out = m->values[pos].load(std::memory_order_acquire);
      return true;
    }
    // Tombstoned in the array: a re-insert may live in the bins below.
  }
  // Bin position: keys between keys[pos-1] and keys[pos] live at bin `pos`;
  // an exact array match uses its own position's bins for re-inserts.
  Bin::Slot* s = FindInBins(m->bins[pos].load(std::memory_order_acquire), key);
  if (s == nullptr) return false;
  *out = s->value.load(std::memory_order_acquire);
  return true;
}

bool FinedexLike::Insert(Key key, Value value) {
  Model* m = LocateModel(key);
  const size_t pos = m->LowerBound(key);
  const bool in_array = pos < m->keys.size() && m->keys[pos] == key;
  if (in_array && !m->Tombstoned(pos)) return false;
  SpinLockGuard lg(m->bin_locks[pos]);
  if (in_array && !m->Tombstoned(pos)) return false;  // re-check under lock
  Bin* head = m->bins[pos].load(std::memory_order_acquire);
  if (FindInBins(head, key) != nullptr) return false;
  // Append into the first bin with space (bins are append-only; deleted
  // slots are not recycled, as in level bins).
  Bin* b = head;
  Bin* prev = nullptr;
  while (b != nullptr && b->count.load(std::memory_order_relaxed) >= kBinCapacity) {
    prev = b;
    b = b->next.load(std::memory_order_acquire);
  }
  if (b == nullptr) {
    b = new Bin();
    if (prev == nullptr) {
      m->bins[pos].store(b, std::memory_order_release);
    } else {
      prev->next.store(b, std::memory_order_release);
    }
  }
  const uint32_t i = b->count.load(std::memory_order_relaxed);
  b->slots[i].key.store(key, std::memory_order_relaxed);
  b->slots[i].value.store(value, std::memory_order_relaxed);
  b->slots[i].state.store(1, std::memory_order_release);
  b->count.store(i + 1, std::memory_order_release);
  size_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FinedexLike::Update(Key key, Value value) {
  Model* m = LocateModel(key);
  const size_t pos = m->LowerBound(key);
  if (pos < m->keys.size() && m->keys[pos] == key && !m->Tombstoned(pos)) {
    m->values[pos].store(value, std::memory_order_release);
    return true;
  }
  SpinLockGuard lg(m->bin_locks[pos]);
  Bin::Slot* s = FindInBins(m->bins[pos].load(std::memory_order_acquire), key);
  if (s == nullptr || s->state.load(std::memory_order_acquire) != 1) return false;
  s->value.store(value, std::memory_order_release);
  return true;
}

bool FinedexLike::Remove(Key key) {
  Model* m = LocateModel(key);
  const size_t pos = m->LowerBound(key);
  SpinLockGuard lg(m->bin_locks[pos]);
  if (pos < m->keys.size() && m->keys[pos] == key && !m->Tombstoned(pos)) {
    m->tombstones[pos >> 6].fetch_or(uint64_t{1} << (pos & 63),
                                     std::memory_order_release);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  Bin::Slot* s = FindInBins(m->bins[pos].load(std::memory_order_acquire), key);
  if (s == nullptr || s->state.load(std::memory_order_acquire) != 1) return false;
  s->state.store(2, std::memory_order_release);
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void FinedexLike::CollectBins(Bin* head, Key lo, Key hi,
                              std::vector<std::pair<Key, Value>>* out) const {
  for (Bin* b = head; b != nullptr; b = b->next.load(std::memory_order_acquire)) {
    const uint32_t cnt =
        std::min<uint32_t>(b->count.load(std::memory_order_acquire), kBinCapacity);
    for (uint32_t i = 0; i < cnt; ++i) {
      Bin::Slot& s = b->slots[i];
      if (s.state.load(std::memory_order_acquire) != 1) continue;
      const Key k = s.key.load(std::memory_order_relaxed);
      if (k >= lo && k <= hi) {
        out->emplace_back(k, s.value.load(std::memory_order_relaxed));
      }
    }
  }
}

size_t FinedexLike::Scan(Key start, size_t count,
                         std::vector<std::pair<Key, Value>>* out) {
  out->clear();
  if (count == 0) return 0;
  // Locate the starting model index.
  size_t mi = 0;
  {
    size_t lo = 0, hi = first_keys_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (first_keys_[mid] <= start) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    mi = lo == 0 ? 0 : lo - 1;
  }
  std::vector<std::pair<Key, Value>> chunk;
  for (; mi < models_.size() && out->size() < count; ++mi) {
    Model* m = models_[mi].get();
    chunk.clear();
    for (size_t pos = m->LowerBound(start); pos <= m->keys.size(); ++pos) {
      CollectBins(m->bins[pos].load(std::memory_order_acquire), start, ~Key{0},
                  &chunk);
      if (pos < m->keys.size() && m->keys[pos] >= start && !m->Tombstoned(pos)) {
        chunk.emplace_back(m->keys[pos], m->values[pos].load(std::memory_order_acquire));
      }
      if (chunk.size() >= 2 * count + 16) break;  // enough for this model
    }
    std::sort(chunk.begin(), chunk.end());
    for (const auto& kv : chunk) {
      if (out->size() >= count) break;
      out->push_back(kv);
    }
  }
  if (out->size() > count) out->resize(count);
  return out->size();
}

size_t FinedexLike::MemoryUsage() const {
  size_t total = first_keys_.size() * sizeof(Key);
  for (const auto& m : models_) {
    total += sizeof(Model);
    total += m->keys.size() * (sizeof(Key) + sizeof(Value));
    total += (m->keys.size() + 1) * (sizeof(std::atomic<Bin*>) + sizeof(SpinLock));
    total += ((m->keys.size() + 63) / 64) * 8;
    for (size_t i = 0; i <= m->keys.size(); ++i) {
      for (Bin* b = m->bins[i].load(std::memory_order_acquire); b != nullptr;
           b = b->next.load(std::memory_order_acquire)) {
        total += sizeof(Bin);
      }
    }
  }
  return total;
}

}  // namespace alt
