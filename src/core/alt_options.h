#pragma once

#include <cstddef>
#include <cstdint>

namespace alt {

class EpochManager;

/// \brief Tuning knobs for AltIndex. Defaults follow the paper's
/// recommendations (§III-D, §IV-A4).
struct AltOptions {
  /// Epoch manager this index retires replaced models/nodes through. nullptr
  /// (default) means the process-wide EpochManager::Global(), which is right
  /// for a single index. Sharded deployments (src/shard/) hand each shard its
  /// own manager so shards reclaim independently instead of serializing on
  /// one global epoch. The manager must outlive the index.
  EpochManager* epoch_manager = nullptr;

  /// GPL prediction error bound ε. 0 means "suggested": bulkload_size / 1000
  /// (the paper's guidance), floored at kMinErrorBound.
  double error_bound = 0.0;

  /// Gapped-array expansion factor γ: a model gets roughly γ slots per key,
  /// trading space for fewer conflicts evicted to ART-OPT (§III-B "array gaps
  /// scheme").
  double gap_factor = 2.0;

  /// Enable the fast pointer buffer (§III-C). Off = secondary searches start
  /// at the ART root (used by the Fig. 10(a) ablation).
  bool enable_fast_pointers = true;

  /// Merge duplicate fast pointers (§III-C2). Off keeps one entry per model
  /// (used by the Fig. 10(b) ablation).
  bool merge_fast_pointers = true;

  /// Enable dynamic retraining (§III-F). Off = crowded models push every
  /// further conflicting insert into ART-OPT.
  bool enable_retraining = true;

  /// A model expands when its runtime insertions exceed
  /// retrain_trigger_ratio * build_size.
  double retrain_trigger_ratio = 1.0;

  /// Slot count for the empty tail model appended when the last model
  /// retrains (out-of-range insert catcher).
  uint32_t tail_model_slots = 1024;

  /// Radix-table acceleration for the upper model: Locate narrows its binary
  /// search to a 2^upper_radix_bits prefix bucket. 0 (default) is the paper's
  /// pure "optimized binary search"; 10-16 trades ~4KB-512KB of table for
  /// shorter searches (the §III-B design-choice ablation).
  int upper_radix_bits = 0;

  /// Back GPL slot arrays spanning >= 2MB with transparent huge pages
  /// (MADV_HUGEPAGE), shrinking the dTLB footprint of large models
  /// (DESIGN.md §10). Graceful 4KB fallback when THP is unavailable; smaller
  /// arrays always use the ordinary 64-byte-aligned heap path.
  bool use_huge_pages = false;

  /// In-flight lookups per group in LookupBatch (AMAC-style pipelining).
  /// Values past the CPU's miss-level parallelism (~10-16 outstanding L1
  /// misses) add bookkeeping without hiding more latency. Clamped to
  /// [1, kMaxBatchGroupWidth].
  uint32_t batch_group_width = 16;

  static constexpr uint32_t kMaxBatchGroupWidth = 64;

  static constexpr double kMinErrorBound = 16.0;

  /// The paper's suggested ε = N_total / 1000 (§III-D).
  static double SuggestErrorBound(size_t bulkload_size) {
    double e = static_cast<double>(bulkload_size) / 1000.0;
    return e < kMinErrorBound ? kMinErrorBound : e;
  }

  double EffectiveErrorBound(size_t bulkload_size) const {
    return error_bound > 0.0 ? error_bound : SuggestErrorBound(bulkload_size);
  }
};

}  // namespace alt
