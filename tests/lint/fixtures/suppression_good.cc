// Suppression fixture (clean): a well-formed ALT_LINT_ALLOW silences the
// finding on the adjacent line and is counted in the summary, and a
// multi-line suppression comment covers the line following the block.
#include <atomic>

struct Peeker {
  std::atomic<int> n{0};

  int Peek() const {
    return n.load();  // ALT_LINT_ALLOW(alt-atomic-order): deliberate seq_cst default, used by the ordering stress test
  }

  // ALT_LINT_ALLOW(alt-atomic-order): deliberate seq_cst default; this
  // comment spans two lines and still covers the access below.
  int PeekAgain() const { return n.load(); }
};
