# Empty dependencies file for bench_fig8e_skew.
# This may be replaced when dependencies are built.
