#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/index_interface.h"
#include "common/key_codec.h"
#include "core/alt_index.h"

namespace alt {
namespace shard {

/// How ShardedAltIndex maps a key to a shard.
enum class Partition {
  /// Contiguous key ranges, boundaries rebalanced to equal key counts at
  /// BulkLoad. Scans touch only the shards overlapping the range; this is the
  /// paper-faithful layout (nothing in a §III-E operation crosses a keyspace
  /// boundary except Scan).
  kRange,
  /// splitmix64-mixed hash of the key modulo the shard count. Insert-balanced
  /// under any key skew, but every Scan must k-way-merge all shards.
  kHash,
};

/// Tuning for ShardedAltIndex.
struct ShardedOptions {
  /// Number of AltIndex shards; clamped to [1, kMaxShards].
  int num_shards = 4;

  Partition partition = Partition::kRange;

  /// Build and bulk-load each shard on its own thread. Besides load speed,
  /// this is the NUMA placement policy: first-touch puts each shard's models,
  /// ART nodes, and epoch state on the page owned by the loading thread's
  /// node (no libnuma dependency; see DESIGN.md §12).
  bool parallel_load = true;

  /// Round-robin the per-shard load threads across CPUs (Linux affinity;
  /// no-op elsewhere). Only meaningful with parallel_load on a multi-socket
  /// box where the scheduler would otherwise colocate the loaders.
  bool pin_load_threads = false;

  /// Per-shard AltIndex tuning. `index.epoch_manager` is ignored: each shard
  /// always gets its own private EpochManager.
  AltOptions index;

  /// Pairs pulled per shard per refill by the cross-shard merge cursors.
  size_t scan_batch = 128;

  static constexpr int kMaxShards = 32;
};

/// \brief N AltIndex instances behind one ConcurrentIndex facade
/// (ROADMAP item 1; DESIGN.md §12).
///
/// Each shard owns a private EpochManager, so retirement and reclamation —
/// the one piece of read-side state every operation of a single AltIndex
/// shares — scale with the shard count instead of serializing process-wide.
/// The shard's manager carries a per-shard trace category, so flight-recorder
/// epoch_advance/epoch_drain spans attribute to the owning shard.
///
/// Concurrency contract is ConcurrentIndex's: BulkLoad runs once,
/// single-threaded, before anything else; all other operations are
/// thread-safe. Point operations dispatch to exactly one shard and inherit
/// its per-key linearizability. Cross-shard Scan merges per-shard cursors
/// (merge_iterator.h) and matches AltIndex::Scan's per-slot-atomic contract.
class ShardedAltIndex : public ConcurrentIndex {
 public:
  explicit ShardedAltIndex(ShardedOptions options = ShardedOptions{});
  ~ShardedAltIndex() override;

  ShardedAltIndex(const ShardedAltIndex&) = delete;
  ShardedAltIndex& operator=(const ShardedAltIndex&) = delete;

  std::string Name() const override;

  /// Splits the (sorted, duplicate-free) data across shards — equal-count
  /// range boundaries under kRange — and bulk-loads every shard, one thread
  /// per shard when parallel_load is set.
  Status BulkLoad(const Key* keys, const Value* values, size_t n) override;

  bool Lookup(Key key, Value* out) override;
  size_t LookupBatch(const Key* keys, size_t n, Value* out, bool* found) override;
  bool Insert(Key key, Value value) override;
  bool Update(Key key, Value value) override;
  bool Remove(Key key) override;

  bool LookupServed(Key key, Value* out, ServedBy* served) override;
  bool InsertServed(Key key, Value value, ServedBy* served) override;
  bool UpdateServed(Key key, Value value, ServedBy* served) override;
  bool RemoveServed(Key key, ServedBy* served) override;

  /// Up to `count` pairs with key >= start, ascending, merged across shards.
  size_t Scan(Key start, size_t count,
              std::vector<std::pair<Key, Value>>* out) override;

  /// All pairs with lo <= key <= hi, ascending, merged across shards.
  size_t RangeQuery(Key lo, Key hi, std::vector<std::pair<Key, Value>>* out);

  MemoryBreakdown CollectMemoryBreakdown() const override;
  std::string StructureJson() const override;
  size_t MemoryUsage() const override;
  size_t Size() const override;

  // -- shard introspection (tests, benches) ---------------------------------

  size_t num_shards() const { return shards_.size(); }
  const AltIndex& shard(size_t i) const { return *shards_[i].index; }
  EpochManager& shard_epoch(size_t i) { return *shards_[i].epoch; }

  /// The shard `key` dispatches to (stable between structural phases).
  size_t ShardIndexOf(Key key) const;

  /// First key of shard i's range (kRange; meaningless under kHash).
  Key ShardLowerBound(size_t i) const { return starts_[i]; }

  /// Drain every shard's epoch manager (quiescent; between bench phases).
  void DrainAllShards();

  const ShardedOptions& options() const { return options_; }

 private:
  struct Shard {
    std::unique_ptr<EpochManager> epoch;
    std::unique_ptr<AltIndex> index;
  };

  /// Construct shard i's epoch manager + index (on the calling thread, which
  /// is what makes parallel_load a first-touch policy).
  Shard MakeShard(size_t i) const;

  /// Scan under kRange: shards hold disjoint ascending ranges, so the k-way
  /// merge degenerates to walking shards in order — no cross-shard heap, no
  /// wasted Scan amplification on the shards past the fill point.
  size_t ScanRangePartition(Key start, size_t count,
                            std::vector<std::pair<Key, Value>>* out) const;

  /// Scan under kHash: genuine k-way merge across every shard's cursor.
  size_t ScanMerged(Key start, size_t count,
                    std::vector<std::pair<Key, Value>>* out) const;

  ShardedOptions options_;
  std::vector<Shard> shards_;
  /// starts_[i] = smallest key dispatched to shard i (kRange). starts_[0] is
  /// always 0. Written only by the constructor and BulkLoad (single-threaded
  /// phases by contract), read-only afterwards.
  std::vector<Key> starts_;
  bool loaded_ = false;
};

}  // namespace shard
}  // namespace alt
