#include "core/gpl_model.h"

#include <cstddef>
#include <new>
#include <type_traits>

#include "common/aligned_mem.h"
#include "common/cpu_features.h"
#include "common/simd.h"

namespace alt {

// Packing contract of the vector scan + single-line prefetch (DESIGN.md §10):
// the state word leads each slot, slots are exactly half a cache line, and a
// 64-byte-aligned array therefore never lets a slot straddle a line.
static_assert(offsetof(GplSlot, word) == 0,
              "slot word must lead the slot (vector scan gathers at offset 0)");
static_assert(sizeof(GplSlot) == 32 && alignof(GplSlot) == 32,
              "GplSlot must stay exactly half a cache line");
static_assert(alignof(GplModel) == 64,
              "hot header must start on a cache-line boundary");
// The dtor releases the slot array without running per-slot destructors.
static_assert(std::is_trivially_destructible_v<GplSlot>,
              "FreeHotArray skips slot destructors");

GplModel::GplModel(Key first_key, double slope, uint32_t num_slots, uint32_t build_size,
                   Key coverage_end, bool use_huge_pages)
    : first_key_(first_key),
      slope_(slope),
      coverage_end_(coverage_end),
      num_slots_(num_slots == 0 ? 1 : num_slots),
      build_size_(build_size) {
  const size_t bytes = sizeof(GplSlot) * static_cast<size_t>(num_slots_);
  void* mem = AllocateHotArray(bytes, use_huge_pages, &slots_huge_);
  if (mem == nullptr) throw std::bad_alloc();
  slots_ = static_cast<GplSlot*>(mem);
  // The region is already zero-filled; the placement news formally start the
  // slot lifetimes (all member initializers are zero, so this compiles to the
  // same stores the zero-fill already made).
  for (uint32_t i = 0; i < num_slots_; ++i) new (&slots_[i]) GplSlot();
}

Expansion::~Expansion() {
  if (!done.load(std::memory_order_acquire)) delete new_model;
}

GplModel::~GplModel() {
  Expansion* e = expansion_.load(std::memory_order_acquire);
  delete e;
  FreeHotArray(slots_, sizeof(GplSlot) * static_cast<size_t>(num_slots_),
               slots_huge_);
}

uint32_t GplModel::CountOccupied() const ALT_REQUIRES_EPOCH {
  uint32_t n = 0;
  uint32_t i = 0;
  // Hoisted dispatch: one vector step classifies 8 slots (a gather over the
  // leading state words). Busy lanes (in-flight writer) are re-read through
  // SlotWord::Read(), which spins to a stable word.
  if (cpu::SimdEnabled()) {
    for (; i + 8 <= num_slots_; i += 8) {
      const simd::SlotScan8 scan = simd::ScanSlotWords8(&slots_[i], sizeof(GplSlot));
      n += static_cast<uint32_t>(
          __builtin_popcount(scan.state_mask[static_cast<int>(SlotState::kOccupied)]));
      uint8_t busy = scan.busy_mask;
      while (busy != 0) {
        const int lane = __builtin_ctz(busy);
        busy = static_cast<uint8_t>(busy & (busy - 1));
        if (SlotWord::StateOf(slots_[i + static_cast<uint32_t>(lane)].word.Read()) ==
            SlotState::kOccupied) {
          ++n;
        }
      }
    }
  }
  for (; i < num_slots_; ++i) {
    if (SlotWord::StateOf(slots_[i].word.Read()) == SlotState::kOccupied) ++n;
  }
  return n;
}

void GplModel::CountSlotStates(size_t counts[4]) const ALT_REQUIRES_EPOCH {
  uint32_t i = 0;
  if (cpu::SimdEnabled()) {
    for (; i + 8 <= num_slots_; i += 8) {
      const simd::SlotScan8 scan = simd::ScanSlotWords8(&slots_[i], sizeof(GplSlot));
      for (int st = 0; st < 4; ++st) {
        counts[st] += static_cast<size_t>(__builtin_popcount(scan.state_mask[st]));
      }
      uint8_t busy = scan.busy_mask;
      while (busy != 0) {
        const int lane = __builtin_ctz(busy);
        busy = static_cast<uint8_t>(busy & (busy - 1));
        const uint32_t state = static_cast<uint32_t>(
            SlotWord::StateOf(slots_[i + static_cast<uint32_t>(lane)].word.Read()));
        counts[state & 3]++;
      }
    }
  }
  for (; i < num_slots_; ++i) {
    const uint32_t state = static_cast<uint32_t>(SlotWord::StateOf(slots_[i].word.Read()));
    counts[state & 3]++;
  }
}

void GplModel::CollectRange(Key lo, Key hi, std::vector<std::pair<Key, Value>>* out,
                            size_t limit) const ALT_REQUIRES_EPOCH {
  size_t appended = 0;
  const bool vec = cpu::SimdEnabled();
  uint32_t skip_run = 0;  // consecutive non-occupied slots seen by the scalar probe
  // Placement is monotone in the key, so no key >= lo sits left of
  // Predict(lo), and the first resident key beyond hi ends the walk.
  for (uint32_t i = Predict(lo); i < num_slots_ && appended < limit; ++i) {
    // Skip-scan, but only once a scalar run of >= 8 misses shows the region
    // is sparse. At typical occupancy the next occupied slot is 1-2 slots
    // away and an unconditional vector step costs more than the scalar probe
    // it replaces (measured ~2x slower on dense scans); in genuinely sparse
    // stretches — a strict model's untouched half, a freshly expanded array —
    // one vector step discards 8 non-candidates at once. Only lanes that are
    // occupied — or busy, i.e. possibly *becoming* occupied — need the
    // per-slot seqlock protocol below.
    if (vec && skip_run >= 8) {
      while (i + 8 <= num_slots_) {
        const simd::SlotScan8 scan = simd::ScanSlotWords8(&slots_[i], sizeof(GplSlot));
        const uint8_t candidates = static_cast<uint8_t>(
            scan.state_mask[static_cast<int>(SlotState::kOccupied)] | scan.busy_mask);
        if (candidates != 0) {
          i += static_cast<uint32_t>(__builtin_ctz(candidates));
          break;
        }
        i += 8;
      }
      skip_run = 0;
      if (i >= num_slots_) break;
    }
    const GplSlot& s = slots_[i];
    bool occupied_here = false;
    for (;;) {
      const uint32_t w = s.word.Read();
      if (SlotWord::StateOf(w) != SlotState::kOccupied) break;
      occupied_here = true;
      const Key k = s.OptimisticKey();
      const Value v = s.OptimisticValue();
      if (!s.word.Validate(w)) continue;  // concurrent writer: re-read the slot
      if (k > hi) return;
      if (k >= lo) {
        out->emplace_back(k, v);
        ++appended;
      }
      break;
    }
    skip_run = occupied_here ? 0 : skip_run + 1;
  }
}

}  // namespace alt
