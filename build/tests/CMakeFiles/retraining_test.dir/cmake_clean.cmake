file(REMOVE_RECURSE
  "CMakeFiles/retraining_test.dir/retraining_test.cc.o"
  "CMakeFiles/retraining_test.dir/retraining_test.cc.o.d"
  "retraining_test"
  "retraining_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retraining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
