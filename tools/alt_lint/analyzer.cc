#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <functional>

namespace altlint {
namespace {

const std::set<std::string> kAtomicMethods = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set",
};

const std::set<std::string> kRawLockTypes = {
    "lock_guard", "unique_lock", "shared_lock", "scoped_lock",
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
};

const std::set<std::string> kRawLockCalls = {
    "lock", "unlock", "lock_shared", "unlock_shared", "try_lock",
};

// A call to any of these counts as version re-validation for
// alt-optimistic-escape (the project's seqlock / optimistic-lock vocabulary).
const std::set<std::string> kRevalidators = {
    "CheckOrRestart", "ReadValidate", "Validate", "ReadLockOrRestart",
    "UpgradeToWriteLockOrRestart", "TryWriteLock", "WriteLockOrFail",
    "compare_exchange_weak", "compare_exchange_strong",
};

const std::set<std::string> kKeywordsNoCall = {
    "if", "for", "while", "switch", "return", "sizeof", "alignas", "alignof",
    "decltype", "static_assert", "catch", "new", "delete", "throw", "case",
    "co_await", "co_return", "co_yield", "requires", "noexcept", "assert",
};

bool IsAllCapsMacro(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

// Lowercase and collapse every non-alphanumeric run to a single space.
std::string NormalizeComment(const std::string& s) {
  std::string out;
  bool last_space = true;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      last_space = false;
    } else if (!last_space) {
      out += ' ';
      last_space = true;
    }
  }
  return out;
}

bool ContainsWord(const std::string& normalized, const std::string& word) {
  size_t pos = 0;
  while ((pos = normalized.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || normalized[pos - 1] == ' ';
    const size_t end = pos + word.size();
    const bool right_ok = end == normalized.size() || normalized[end] == ' ';
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

struct Justification {
  bool present = false;
  bool caller_validated = false;
};

struct FnMarkers {
  bool requires_epoch = false;
  bool optimistic = false;
  int optimistic_line = 0;
};

// One ALT_LINT_ALLOW(check): reason occurrence.
struct Allow {
  std::string check;
  bool has_reason = false;
  bool known = false;
  int line = 0;       // anchor: last line of the carrying comment
  bool used = false;
};

class Walker {
 public:
  Walker(const LexedFile& f, const std::set<std::string>& epoch_fns,
         std::set<std::string>* collect, std::vector<Finding>* findings)
      : f_(f), epoch_fns_(epoch_fns), collect_(collect), findings_(findings) {
    BuildBracketMatch();
    CollectAtomicVars();
  }

  void Run() {
    if (findings_) {
      ScanRawLockTypes();
    }
    WalkDecls(0, f_.tokens.size());
  }

 private:
  const Token& Tok(size_t i) const { return f_.tokens[i]; }
  size_t N() const { return f_.tokens.size(); }

  bool Is(size_t i, const char* text) const {
    return i < N() && Tok(i).text == text;
  }

  void Report(size_t i, const std::string& check, const std::string& message) {
    if (!findings_) return;
    findings_->push_back({f_.path, Tok(i).line, Tok(i).col, check, message});
  }

  // ---- setup ------------------------------------------------------------

  void BuildBracketMatch() {
    match_.assign(N(), SIZE_MAX);
    std::vector<size_t> stack;
    for (size_t i = 0; i < N(); ++i) {
      const std::string& t = Tok(i).text;
      if (t == "(" || t == "{" || t == "[") {
        stack.push_back(i);
      } else if (t == ")" || t == "}" || t == "]") {
        // Tolerant matching: pop the nearest opener of the same family if
        // possible, else the nearest opener (imbalance from macro tricks).
        const char want = t == ")" ? '(' : t == "}" ? '{' : '[';
        for (size_t k = stack.size(); k > 0; --k) {
          if (f_.tokens[stack[k - 1]].text[0] == want) {
            match_[stack[k - 1]] = i;
            match_[i] = stack[k - 1];
            stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(k - 1),
                        stack.end());
            break;
          }
        }
      }
    }
  }

  // Close of the bracket opened at i, or `fallback` when unmatched.
  size_t MatchOr(size_t i, size_t fallback) const {
    return match_[i] == SIZE_MAX ? fallback : match_[i];
  }

  // Record every `std::atomic<...> name` (member, global, or local) so the
  // operator-form part of alt-atomic-order can key off the variable names.
  void CollectAtomicVars() {
    for (size_t i = 0; i + 1 < N(); ++i) {
      if (Tok(i).kind != TokKind::kIdent || Tok(i).text != "atomic") continue;
      if (!Is(i + 1, "<")) continue;
      // Find the matching '>' tracking depth; '>>' closes two.
      size_t j = i + 1;
      int depth = 0;
      while (j < N()) {
        const std::string& t = Tok(j).text;
        if (t == "<") {
          ++depth;
        } else if (t == ">") {
          if (--depth == 0) break;
        } else if (t == ">>") {
          depth -= 2;
          if (depth <= 0) break;
        } else if (t == ";" || t == "{") {
          depth = -1;  // not a template argument list after all
          break;
        }
        ++j;
      }
      if (depth != 0 || j + 1 >= N()) continue;
      size_t k = j + 1;
      while (Is(k, "&") || Is(k, "*")) ++k;  // references/pointers: skip
      if (k < N() && Tok(k).kind == TokKind::kIdent) {
        atomic_vars_.insert(Tok(k).text);
        atomic_decl_idx_.insert(k);
      }
    }
  }

  // ---- flat scans (context-free) ----------------------------------------

  void ScanRawLockTypes() {
    for (size_t i = 2; i < N(); ++i) {
      if (Tok(i).kind != TokKind::kIdent) continue;
      if (!kRawLockTypes.count(Tok(i).text)) continue;
      if (Is(i - 1, "::") && Is(i - 2, "std")) {
        Report(i - 2, "alt-raw-lock",
               "raw 'std::" + Tok(i).text +
                   "' bypasses the annotated capability layer; use "
                   "alt::SpinLock / alt::SharedMutex and their RAII guards "
                   "(src/common/{spinlock,shared_mutex}.h)");
      }
    }
  }

  // ---- declaration-level walk -------------------------------------------

  // Walk [i, end) at namespace/class scope, detecting function definitions.
  void WalkDecls(size_t i, size_t end) {
    while (i < end) {
      const Token& t = Tok(i);
      const std::string& x = t.text;
      if (x == "{") {  // stray brace (initializer, etc.)
        i = MatchOr(i, end) + 1;
        continue;
      }
      if (x == "}") {
        ++i;
        continue;
      }
      if (t.kind == TokKind::kIdent && x == "namespace") {
        size_t j = i + 1;
        while (j < end && !Is(j, "{") && !Is(j, ";")) ++j;
        if (j < end && Is(j, "{")) {
          const size_t close = MatchOr(j, end);
          WalkDecls(j + 1, close);
          i = close + 1;
        } else {
          i = j + 1;
        }
        continue;
      }
      if (t.kind == TokKind::kIdent &&
          (x == "class" || x == "struct" || x == "union" || x == "enum")) {
        const bool recurse = x != "enum";
        size_t j = i + 1;
        while (j < end && !Is(j, "{") && !Is(j, ";")) {
          if (Is(j, "(")) {
            j = MatchOr(j, end);
          }
          ++j;
        }
        if (j < end && Is(j, "{")) {
          const size_t close = MatchOr(j, end);
          if (recurse) WalkDecls(j + 1, close);
          i = close + 1;
        } else {
          i = j + 1;
        }
        continue;
      }
      if (t.kind == TokKind::kIdent && x == "template") {
        if (Is(i + 1, "<")) {
          size_t j = i + 1;
          int depth = 0;
          while (j < end) {
            if (Is(j, "<")) ++depth;
            else if (Is(j, ">") && --depth == 0) break;
            else if (Is(j, ">>") && (depth -= 2) <= 0) break;
            ++j;
          }
          i = j + 1;
        } else {
          ++i;
        }
        continue;
      }
      if (t.kind == TokKind::kIdent &&
          (x == "using" || x == "typedef" || x == "friend" ||
           x == "static_assert")) {
        while (i < end && !Is(i, ";")) {
          if (Is(i, "(") || Is(i, "{")) i = MatchOr(i, end);
          ++i;
        }
        ++i;
        continue;
      }
      if (t.kind == TokKind::kIdent && !kKeywordsNoCall.count(x) &&
          Is(i + 1, "(")) {
        i = HandleCandidate(i, end);
        continue;
      }
      if (x == "(") {
        i = MatchOr(i, end) + 1;
        continue;
      }
      ++i;
    }
  }

  // tokens[i] is an identifier followed by '(' at declaration scope: decide
  // whether it heads a function declaration or definition, harvest trailing
  // markers, and walk the body if present. Returns the resume index.
  size_t HandleCandidate(size_t name_idx, size_t end) {
    const std::string name = Tok(name_idx).text;
    const int name_line = Tok(name_idx).line;
    const size_t rp = MatchOr(name_idx + 1, end);
    if (rp == end) return name_idx + 1;

    FnMarkers m;
    size_t j = rp + 1;
    while (j < end) {
      const Token& t = Tok(j);
      const std::string& x = t.text;
      if (x == "const" || x == "noexcept" || x == "override" || x == "final" ||
          x == "mutable" || x == "volatile" || x == "&" || x == "&&") {
        ++j;
        continue;
      }
      if (x == "ALT_REQUIRES_EPOCH") {
        m.requires_epoch = true;
        ++j;
        continue;
      }
      if (x == "ALT_OPTIMISTIC_PATH") {
        m.optimistic = true;
        m.optimistic_line = t.line;
        ++j;
        continue;
      }
      if (t.kind == TokKind::kIdent &&
          (IsAllCapsMacro(x) || x == "__attribute__")) {
        ++j;
        if (j < end && Is(j, "(")) j = MatchOr(j, end) + 1;
        continue;
      }
      if (x == "->") {  // trailing return type: scan to body or ';'
        ++j;
        while (j < end && !Is(j, "{") && !Is(j, ";")) {
          if (Is(j, "(")) j = MatchOr(j, end);
          ++j;
        }
        continue;
      }
      if (x == ":") {  // constructor initializer list
        ++j;
        while (j < end && !Is(j, ";")) {
          if (Is(j, "(")) {
            j = MatchOr(j, end) + 1;
            continue;
          }
          if (Is(j, "{")) {
            // Brace-init of a member (`a_{1}`) follows an identifier or a
            // template closer; anything else opens the constructor body.
            const std::string& prev = Tok(j - 1).text;
            const bool brace_init =
                Tok(j - 1).kind == TokKind::kIdent || prev == ">" || prev == ">>";
            if (!brace_init) break;
            j = MatchOr(j, end) + 1;
            continue;
          }
          ++j;
        }
        continue;
      }
      if (x == "=") {  // = default / = delete / = 0
        while (j < end && !Is(j, ";")) ++j;
        continue;
      }
      if (x == "{") {
        OnFunction(name, name_idx, name_line, m, /*has_body=*/true);
        const size_t close = MatchOr(j, end);
        WalkBody(j, close, m);
        return close + 1;
      }
      if (x == ";") {
        OnFunction(name, name_idx, name_line, m, /*has_body=*/false);
        return j + 1;
      }
      // Not a function after all (macro invocation, variable, ...).
      return rp + 1;
    }
    return end;
  }

  void OnFunction(const std::string& name, size_t name_idx, int name_line,
                  const FnMarkers& m, bool has_body) {
    (void)name_idx;
    if (collect_ && m.requires_epoch) collect_->insert(name);
    if (!findings_) return;
    if (m.optimistic) {
      const Justification just = FindJustification(name_line, m.optimistic_line);
      if (!just.present) {
        findings_->push_back(
            {f_.path, m.optimistic_line, 1, "alt-optimistic-escape",
             "ALT_OPTIMISTIC_PATH on '" + name +
                 "' lacks an adjacent justification comment naming its "
                 "validation (seqlock / version re-validation / restart / CAS "
                 "/ validated-by-caller)"});
      }
      if (has_body) {
        pending_opt_name_ = name;
        pending_opt_line_ = m.optimistic_line;
        pending_opt_caller_validated_ = just.caller_validated;
      }
    } else {
      pending_opt_name_.clear();
    }
  }

  Justification FindJustification(int decl_line, int marker_line) const {
    Justification out;
    const int lo = decl_line - 4;
    for (const Comment& c : f_.comments) {
      if (c.end_line < lo || c.line > marker_line) continue;
      const std::string n = NormalizeComment(c.text);
      const bool caller = n.find("validated by caller") != std::string::npos ||
                          n.find("caller validat") != std::string::npos;
      const bool named = caller || n.find("seqlock") != std::string::npos ||
                         n.find("version") != std::string::npos ||
                         n.find("restart") != std::string::npos ||
                         n.find("revalidat") != std::string::npos ||
                         n.find("re validat") != std::string::npos ||
                         n.find("compare exchange") != std::string::npos ||
                         ContainsWord(n, "cas");
      if (named) {
        out.present = true;
        out.caller_validated |= caller;
      }
    }
    return out;
  }

  // ---- function-body walk ------------------------------------------------

  void WalkBody(size_t open, size_t close, const FnMarkers& m) {
    // Epoch-pin evidence per open scope: true once the scope (or an enclosing
    // one) dominates the remaining statements with an EpochGuard or a runtime
    // pin assertion.
    std::vector<bool> evidence;
    evidence.push_back(m.requires_epoch);

    const bool opt = m.optimistic && !pending_opt_name_.empty();
    const std::string opt_name = pending_opt_name_;
    const int opt_line = pending_opt_line_;
    const bool caller_validated = pending_opt_caller_validated_;
    pending_opt_name_.clear();
    bool seen_reval = false;
    bool escape_reported = false;

    for (size_t i = open + 1; i < close && i < N(); ++i) {
      const Token& t = Tok(i);
      const std::string& x = t.text;
      if (x == "{") {
        evidence.push_back(false);
        continue;
      }
      if (x == "}") {
        if (evidence.size() > 1) evidence.pop_back();
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;

      if (x == "EpochGuard" || x == "ALT_ASSERT_EPOCH_PINNED") {
        evidence.back() = true;
        continue;
      }
      if (kRevalidators.count(x) && Is(i + 1, "(")) seen_reval = true;

      if (opt && x == "return" && !seen_reval && !caller_validated &&
          !escape_reported && ReturnEscapes(i, close)) {
        Report(i, "alt-optimistic-escape",
               "optimistic read escapes from '" + opt_name +
                   "': value-bearing return before the first version "
                   "re-validation (CheckOrRestart / ReadValidate / Validate / "
                   "CAS)");
        escape_reported = true;
        continue;
      }

      const bool member_call = i > 0 && (Is(i - 1, ".") || Is(i - 1, "->"));
      if (member_call && Is(i + 1, "(")) {
        if (kAtomicMethods.count(x)) CheckAtomicCall(i);
        if (kRawLockCalls.count(x)) {
          Report(i, "alt-raw-lock",
                 "naked '." + x +
                     "()' bypasses the annotated RAII guards; use "
                     "SpinLockGuard / WriteLockGuard / ReadLockGuard (or an "
                     "annotated TRY_ACQUIRE interface)");
        }
      }

      if (Is(i + 1, "(") && !kKeywordsNoCall.count(x) && epoch_fns_.count(x)) {
        const bool pinned =
            std::any_of(evidence.begin(), evidence.end(), [](bool b) { return b; });
        if (!pinned) {
          Report(i, "alt-epoch-pinned",
                 "call to epoch-protected '" + x +
                     "' outside an epoch-pinned scope; hold an alt::EpochGuard "
                     "(or assert with ALT_ASSERT_EPOCH_PINNED) before this "
                     "call, or mark the enclosing function "
                     "ALT_REQUIRES_EPOCH");
        }
      }

      // Operator-form atomic accesses are only flagged in statement-leading
      // position: resolving `r.name = ...` vs `c.name = ...` needs real type
      // information, and a name collision with a non-atomic member must not
      // produce a false finding (see tests/lint fixtures).
      if (atomic_vars_.count(x) && !atomic_decl_idx_.count(i) &&
          StatementLeading(i)) {
        CheckAtomicOperator(i);
      }
    }

    if (opt && !caller_validated && !seen_reval && findings_) {
      findings_->push_back(
          {f_.path, opt_line, 1, "alt-optimistic-escape",
           "optimistic function '" + opt_name +
               "' never re-validates: no version recheck (CheckOrRestart / "
               "ReadValidate / Validate / CAS) in its body; re-validate before "
               "trusting optimistic reads, or justify as validated-by-caller"});
    }
  }

  // True when `return <expr>;` carries anything beyond literal constants and
  // enum-style values (kFoo, Op::kFoo) — i.e. an optimistically read value.
  bool ReturnEscapes(size_t ret_idx, size_t close) const {
    for (size_t i = ret_idx + 1; i < close && !Is(i, ";"); ++i) {
      const Token& t = Tok(i);
      if (t.kind != TokKind::kIdent) continue;
      const std::string& x = t.text;
      if (x == "true" || x == "false" || x == "nullptr") continue;
      if (x.size() >= 2 && x[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(x[1])) && !Is(i + 1, "(")) {
        continue;  // enum constant
      }
      if (Is(i + 1, "::")) continue;  // scope qualifier (Op::kFoo, Status::...)
      return true;
    }
    return false;
  }

  void CheckAtomicCall(size_t i) {
    const size_t lp = i + 1;
    const size_t rp = MatchOr(lp, N() - 1);
    bool has_order = false;
    for (size_t k = lp + 1; k < rp; ++k) {
      if (Tok(k).kind == TokKind::kIdent &&
          Tok(k).text.find("memory_order") != std::string::npos) {
        has_order = true;
        break;
      }
    }
    if (!has_order) {
      Report(i, "alt-atomic-order",
             "atomic '" + Tok(i).text +
                 "' call without an explicit std::memory_order argument "
                 "(fix-it: append 'std::memory_order_seq_cst', or the "
                 "deliberate weaker order, as the final argument)");
    }
  }

  bool StatementLeading(size_t i) const {
    if (i == 0) return true;
    const std::string& p = Tok(i - 1).text;
    return p == ";" || p == "{" || p == "}" || p == "(" || p == ")" ||
           p == "," || p == "++" || p == "--";
  }

  void CheckAtomicOperator(size_t i) {
    const std::string& name = Tok(i).text;
    auto report = [&](const std::string& op, const std::string& instead) {
      Report(i, "alt-atomic-order",
             "operator '" + op + "' on std::atomic '" + name +
                 "' is an implicit seq_cst access; use " + instead +
                 " with an explicit std::memory_order");
    };
    if (Is(i + 1, "++") || Is(i + 1, "--")) {
      report(Tok(i + 1).text, "fetch_add/fetch_sub");
    } else if (i > 0 && (Is(i - 1, "++") || Is(i - 1, "--"))) {
      report(Tok(i - 1).text, "fetch_add/fetch_sub");
    } else if (Is(i + 1, "+=") || Is(i + 1, "-=")) {
      report(Tok(i + 1).text, "fetch_add/fetch_sub");
    } else if (Is(i + 1, "&=") || Is(i + 1, "|=") || Is(i + 1, "^=")) {
      report(Tok(i + 1).text, "fetch_and/fetch_or/fetch_xor");
    } else if (Is(i + 1, "=")) {
      report("=", ".store()");
    }
  }

  const LexedFile& f_;
  const std::set<std::string>& epoch_fns_;
  std::set<std::string>* collect_;
  std::vector<Finding>* findings_;
  std::vector<size_t> match_;
  std::set<std::string> atomic_vars_;
  std::set<size_t> atomic_decl_idx_;

  std::string pending_opt_name_;
  int pending_opt_line_ = 0;
  bool pending_opt_caller_validated_ = false;
};

// ---- suppressions ---------------------------------------------------------

std::vector<Allow> ParseAllows(const LexedFile& f) {
  std::vector<Allow> allows;
  for (size_t ci = 0; ci < f.comments.size(); ++ci) {
    const Comment& c = f.comments[ci];
    // A suppression may continue over following //-lines; the ALLOW covers
    // findings adjacent to the END of the contiguous comment block.
    int block_end = c.end_line;
    for (size_t k = ci + 1;
         k < f.comments.size() && f.comments[k].line == block_end + 1; ++k) {
      block_end = f.comments[k].end_line;
    }
    size_t pos = 0;
    while ((pos = c.text.find("ALT_LINT_ALLOW", pos)) != std::string::npos) {
      size_t p = pos + std::string("ALT_LINT_ALLOW").size();
      if (p >= c.text.size() || c.text[p] != '(') {
        // A prose mention ("see ALT_LINT_ALLOW above"), not a suppression.
        pos = p;
        continue;
      }
      Allow a;
      a.line = block_end;
      {
        const size_t close = c.text.find(')', p);
        if (close != std::string::npos) {
          a.check = c.text.substr(p + 1, close - p - 1);
          a.known = KnownChecks().count(a.check) > 0;
          size_t r = close + 1;
          while (r < c.text.size() && std::isspace(static_cast<unsigned char>(c.text[r]))) ++r;
          if (r < c.text.size() && c.text[r] == ':') {
            ++r;
            while (r < c.text.size() &&
                   std::isspace(static_cast<unsigned char>(c.text[r]))) {
              ++r;
            }
            a.has_reason = r < c.text.size();
          }
        }
      }
      allows.push_back(a);
      pos += 1;
    }
  }
  return allows;
}

}  // namespace

const std::set<std::string>& KnownChecks() {
  static const std::set<std::string> kChecks = {
      "alt-atomic-order", "alt-epoch-pinned", "alt-optimistic-escape",
      "alt-raw-lock"};
  return kChecks;
}

void CollectEpochFunctions(const LexedFile& file, std::set<std::string>* out) {
  static const std::set<std::string> kEmpty;
  Walker(file, kEmpty, out, nullptr).Run();
}

CheckResult Check(const LexedFile& file, const std::set<std::string>& epoch_fns) {
  std::vector<Finding> raw;
  Walker(file, epoch_fns, nullptr, &raw).Run();

  std::vector<Allow> allows = ParseAllows(file);
  CheckResult result;
  for (Finding& fd : raw) {
    bool suppressed = false;
    for (Allow& a : allows) {
      if (!a.known || !a.has_reason) continue;
      if (a.check != fd.check) continue;
      if (a.line != fd.line && a.line != fd.line - 1) continue;
      a.used = true;
      suppressed = true;
    }
    if (suppressed) {
      ++result.suppressed[fd.check];
    } else {
      result.findings.push_back(std::move(fd));
    }
  }

  for (const Allow& a : allows) {
    if (a.check.empty()) {
      result.findings.push_back(
          {file.path, a.line, 1, "alt-lint-allow",
           "malformed ALT_LINT_ALLOW; expected 'ALT_LINT_ALLOW(check-name): "
           "reason'"});
    } else if (!a.known) {
      result.findings.push_back(
          {file.path, a.line, 1, "alt-lint-allow",
           "ALT_LINT_ALLOW names unknown check '" + a.check +
               "' (known: alt-atomic-order, alt-epoch-pinned, "
               "alt-optimistic-escape, alt-raw-lock)"});
    } else if (!a.has_reason) {
      result.findings.push_back(
          {file.path, a.line, 1, "alt-lint-allow",
           "ALT_LINT_ALLOW(" + a.check +
               ") has an empty reason; a suppression must say why the "
               "protocol is still upheld"});
    } else if (!a.used) {
      result.findings.push_back(
          {file.path, a.line, 1, "alt-lint-allow",
           "unused ALT_LINT_ALLOW(" + a.check +
               "): no matching finding on this or the next line; remove it"});
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.col < b.col;
            });
  return result;
}

}  // namespace altlint
