// Reproduces Fig. 8(a): memory overhead per index after bulk-loading half of
// each dataset and inserting the rest. Expected shape: ALEX+ smallest,
// ALT-index next (less than the delta-buffer designs), LIPP+ largest.
#include "bench_common.h"
#include "common/epoch.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Fig. 8(a): memory overhead (bytes/key) after load + insert-all",
              {"Index", "Dataset", "MB", "bytes/key"});
  for (const auto& name : cfg.indexes) {
    for (Dataset d : cfg.datasets) {
      const auto keys = LoadKeys(cfg, d);
      auto index = MakeIndex(name);
      const BenchSetup setup = LoadIndex(index.get(), keys, cfg.bulk_fraction);
      for (Key k : setup.pool) index->Insert(k, ValueFor(k));
      const size_t bytes = index->MemoryUsage();
      PrintRow({index->Name(), DatasetName(d),
                Fmt(static_cast<double>(bytes) / 1048576.0),
                Fmt(static_cast<double>(bytes) / static_cast<double>(keys.size()), 1)});
      index.reset();
      EpochManager::Global().DrainAll();
    }
  }
  return 0;
}
