#pragma once

#include <chrono>
#include <cstdint>

namespace alt {

/// Monotonic nanosecond clock for benchmarking and latency sampling.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

/// Simple scoped stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}
  uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) * 1e-9; }
  void Restart() { start_ = NowNanos(); }

 private:
  uint64_t start_;
};

}  // namespace alt
