# Golden-file driver for one alt-lint fixture (cmake -P).
#
# Inputs:
#   TOOL        path to the alt-lint binary
#   FIXTURE     fixture file name (relative to WORKDIR, so diagnostics carry
#               stable relative paths the goldens can pin)
#   EXPECTED    path to the golden stdout file
#   EXPECT_EXIT required exit code (1 for failing fixtures, 0 for clean ones)
#   WORKDIR     the fixtures directory

execute_process(
  COMMAND ${TOOL} ${FIXTURE}
  WORKING_DIRECTORY ${WORKDIR}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE errout
  RESULT_VARIABLE code)

file(READ ${EXPECTED} want)

if(NOT actual STREQUAL want)
  message(FATAL_ERROR "alt-lint output for ${FIXTURE} diverged from golden "
                      "${EXPECTED}.\n--- expected ---\n${want}\n--- actual ---\n"
                      "${actual}\n--- stderr ---\n${errout}")
endif()

if(NOT code EQUAL EXPECT_EXIT)
  message(FATAL_ERROR "alt-lint exit code for ${FIXTURE} was ${code}, "
                      "expected ${EXPECT_EXIT}.\n--- stderr ---\n${errout}")
endif()
