#pragma once

// The four ALT-Index protocol checks (see README.md and DESIGN.md §11):
//
//   alt-atomic-order      every std::atomic access spells its memory_order
//   alt-epoch-pinned      epoch-protected functions called only under a pin
//   alt-optimistic-escape ALT_OPTIMISTIC_PATH is justified and re-validates
//   alt-raw-lock          no std:: locks / naked .lock() outside the wrappers
//
// Plus the meta-check `alt-lint-allow` validating suppression comments
// (`// ALT_LINT_ALLOW(check): reason`), which are counted, never silent.
//
// Analysis runs in two passes: CollectEpochFunctions() gathers every function
// name annotated ALT_REQUIRES_EPOCH across all input files (the macro is the
// propagation vehicle: a caller that cannot pin marks itself and pushes the
// obligation outward); Check() then walks each file's token stream with a
// scope-tracking function walker and emits findings.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace altlint {

struct Finding {
  std::string path;
  int line = 0;
  int col = 0;
  std::string check;    // e.g. "alt-atomic-order"
  std::string message;
};

struct CheckResult {
  std::vector<Finding> findings;                // after suppression
  std::map<std::string, int> suppressed;        // check -> count
};

/// All check names a suppression may name.
const std::set<std::string>& KnownChecks();

/// Pass 1: names of functions declared or defined with ALT_REQUIRES_EPOCH.
void CollectEpochFunctions(const LexedFile& file, std::set<std::string>* out);

/// Pass 2: run every check over `file`.
CheckResult Check(const LexedFile& file, const std::set<std::string>& epoch_fns);

}  // namespace altlint
