#pragma once

#include <atomic>
#include <memory>

#include "common/index_interface.h"
#include "common/optlock.h"

namespace alt {

/// \brief Mechanism-faithful re-implementation of LIPP+ (Wu et al. 2021 with
/// the optimistic concurrency wrapper of Wongkham et al. 2022):
///
///  - *precise positions*: each node's monotone linear model maps a key to
///    exactly one slot — no secondary search;
///  - *conflict child nodes*: when an insert predicts an occupied slot, the
///    two keys move into a freshly built child node (FMCD-style: capacity
///    ~2x keys, endpoint slope over the local span);
///  - *statistics counters*: every node along the insert path increments an
///    insert counter — deliberately reproducing the cache-line invalidation
///    bottleneck the paper attributes LIPP+'s concurrency ceiling to
///    (Table I "statistic info", §II-B).
///
///  - *subtree adjustment*: when an insert descends past a depth threshold
///    (conflict chains from clustered/sequential inserts), the subtree under
///    a shallow anchor is collected, rebuilt flat and swapped in — a coarse
///    stand-in for LIPP's FMCD reconstruction ("rapid reconstruction and
///    adjustment of subtrees", paper §II-B). The rebuild holds the anchor's
///    parent lock, so operations on that subtree pause — reproducing LIPP+'s
///    write-heavy stalls in a correct-by-construction way.
class LippLike : public ConcurrentIndex {
 public:
  LippLike() = default;
  ~LippLike() override;

  std::string Name() const override { return "LIPP+"; }

  Status BulkLoad(const Key* keys, const Value* values, size_t n) override;
  bool Lookup(Key key, Value* out) override;
  bool Insert(Key key, Value value) override;
  bool Update(Key key, Value value) override;
  bool Remove(Key key) override;
  size_t Scan(Key start, size_t count,
              std::vector<std::pair<Key, Value>>* out) override;
  size_t MemoryUsage() const override;
  size_t Size() const override { return size_.load(std::memory_order_relaxed); }

  /// Max tree depth (stats / tests).
  size_t Depth() const;

  /// Subtree reconstructions performed so far (stats / tests).
  uint64_t Rebuilds() const { return rebuilds_.load(std::memory_order_relaxed); }

 private:
  enum : uint8_t { kEmpty = 0, kData = 1, kChild = 2 };

  struct Entry {
    std::atomic<uint8_t> type{kEmpty};
    std::atomic<Key> key{0};
    std::atomic<uint64_t> payload{0};  // Value, or Node* when type == kChild
  };

  struct Node {
    OptLock lock;
    std::atomic<uint32_t> insert_count{0};  // the LIPP+ statistics hotspot
    Key base = 0;
    double slope = 0;
    uint32_t capacity = 0;
    std::unique_ptr<Entry[]> entries;

    uint32_t PredictSlot(Key k) const {
      if (k <= base) return 0;
      const double p = slope * static_cast<double>(k - base);
      if (p >= static_cast<double>(capacity - 1)) return capacity - 1;
      return static_cast<uint32_t>(p + 0.5);
    }
  };

  static constexpr uint32_t kMinCapacity = 16;
  /// Insert descents deeper than this trigger a subtree rebuild.
  static constexpr int kRebuildTriggerDepth = 24;
  /// The rebuild anchors this many levels above the conflict chain's tail,
  /// so each rebuild flattens a small, bounded subtree (amortized O(1) per
  /// insert under hot appends).
  static constexpr int kRebuildSpan = 16;

  /// \param span_mult stretch the model's key span (and capacity) beyond the
  ///        build set — used by rebuilds so a moving insert frontier is
  ///        absorbed instead of instantly re-chaining (FMCD's conflict-aware
  ///        sizing, coarsely).
  static Node* Build(const Key* keys, const Value* values, size_t n,
                     double span_mult = 1.0);
  static void DeleteSubtree(Node* node);
  static size_t SubtreeBytes(const Node* node);
  static size_t SubtreeDepth(const Node* node);
  bool ScanCollect(const Node* node, Key lo, size_t max_items,
                   std::vector<std::pair<Key, Value>>* out) const;

  /// Exclusively lock `node`, snapshot its live data, recurse into children,
  /// then mark it obsolete and retire it. Concurrent writers either finished
  /// before our lock (their data is collected) or restart on the obsolete
  /// version and re-route through the rebuilt subtree.
  static void CollectAndObsolete(Node* node,
                                 std::vector<std::pair<Key, Value>>* out);

  /// Rebuild the subtree under `key`'s ancestor at `anchor_depth`.
  void RebuildSubtreeFor(Key key, int anchor_depth);

  Node* root_ = nullptr;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> rebuilds_{0};
};

}  // namespace alt
