// Shard-count sweep for the sharded front-end (DESIGN.md §12): the Fig. 9
// read-heavy mix run against one monolithic ALT-Index and 2/4/16-shard
// ShardedAltIndex facades as the thread count grows. Each shard owns a
// private EpochManager, so the sweep isolates the cost of the global epoch
// ticker vs per-shard tickers under contention. NOTE: this container has a
// single CPU core, so absolute throughput cannot rise with threads; the
// sweep still exercises contention behaviour (see EXPERIMENTS.md for the
// interpretation). Pass --path_breakdown to attribute time to serving paths
// (per-shard epoch spans show up as epoch/shardN in --trace_json output).
#include <thread>

#include "bench_common.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u\n", hw);
  for (Dataset d : cfg.datasets) {
    const auto keys = LoadKeys(cfg, d);
    PrintHeader(std::string("Shard scaling, read-heavy workload, ") +
                    DatasetName(d) + " (Mops/s)",
                {"Threads", "ALT", "sharded2", "sharded4", "sharded16"});
    for (int threads : {1, 2, 4, 8, 16, 32, 64}) {
      BenchConfig c = cfg;
      c.threads = threads;
      // Keep total work constant across thread counts.
      c.ops_per_thread = std::max<size_t>(
          1000, cfg.ops_per_thread * static_cast<size_t>(cfg.threads) /
                    static_cast<size_t>(threads));
      std::vector<std::string> row{std::to_string(threads)};
      for (const char* name :
           {"alt", "alt-sharded2", "alt-sharded4", "alt-sharded16"}) {
        const RunResult r = RunOne(c, name, keys, WorkloadType::kReadHeavy);
        row.push_back(Fmt(r.throughput_mops));
      }
      PrintRow(row);
    }
  }
  return 0;
}
