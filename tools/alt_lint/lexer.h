#pragma once

// Token-level C++ front end for alt-lint (see README.md in this directory).
//
// This is not a general C++ parser: it produces an exact token stream with
// source positions, a side list of comments (the checks read suppression and
// justification text out of them), and it skips preprocessor directive lines
// (tokens inside #define bodies must not count as protocol evidence). That is
// all the alt-lint checks need — they key off ALT-specific macros and member
// names, not off general C++ semantics.

#include <cstddef>
#include <string>
#include <vector>

namespace altlint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (incl. ud-suffixes)
  kString,   // string literals (incl. raw strings), char literals
  kPunct,    // operators and punctuation, longest-match
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
};

struct Comment {
  std::string text;    // without the // or /* */ delimiters
  int line = 0;        // first line (1-based)
  int end_line = 0;    // last line (inclusive)
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize `source`. Never fails: unterminated constructs are closed at EOF.
LexedFile Lex(const std::string& path, const std::string& source);

}  // namespace altlint
