// kv_store: a miniature concurrent memory key-value store built on AltIndex —
// the "memory database system" scenario from the paper's title.
//
//   $ ./build/examples/kv_store [num_threads] [seconds]
//
// Spawns writer, reader and scanner threads against one shared index and
// reports per-role throughput, demonstrating the §III-E concurrency design
// end to end (optimistic slot versions + OLC ART + epoch reclamation).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "common/zipf.h"
#include "core/alt_index.h"
#include "datasets/dataset.h"

int main(int argc, char** argv) {
  using namespace alt;
  const int num_threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 3.0;

  // Seed the store with half a million user records.
  const size_t n = 500000;
  std::vector<Key> keys = GenerateKeys(Dataset::kFb, n, 99);
  std::vector<Value> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = ValueFor(keys[i]);

  AltIndex store;
  if (!store.BulkLoad(keys.data(), values.data(), n).ok()) return 1;
  std::printf("kv_store: %zu records loaded, %d worker threads, %.1fs run\n",
              store.Size(), num_threads, seconds);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0}, writes{0}, scans{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(7 * t + 1);
      ScrambledZipf zipf(n, 0.99, 1000 + t);
      std::vector<std::pair<Key, Value>> window;
      uint64_t local_reads = 0, local_writes = 0, local_scans = 0;
      uint64_t next_key = 0xF000000000000000ULL + (static_cast<uint64_t>(t) << 40);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t dice = rng.NextBounded(100);
        if (dice < 60) {  // 60% point reads, zipfian hot set
          Value v;
          store.Lookup(keys[zipf.Next()], &v);
          ++local_reads;
        } else if (dice < 90) {  // 30% writes: upsert fresh or update hot
          if (dice < 75) {
            store.Insert(next_key++, dice);
          } else {
            store.Update(keys[zipf.Next()], dice);
          }
          ++local_writes;
        } else {  // 10% short scans
          store.Scan(keys[zipf.Next()], 20, &window);
          ++local_scans;
        }
      }
      reads.fetch_add(local_reads);
      writes.fetch_add(local_writes);
      scans.fetch_add(local_scans);
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  const double total =
      static_cast<double>(reads.load() + writes.load() + scans.load());
  std::printf("reads  : %10llu\n", static_cast<unsigned long long>(reads.load()));
  std::printf("writes : %10llu\n", static_cast<unsigned long long>(writes.load()));
  std::printf("scans  : %10llu\n", static_cast<unsigned long long>(scans.load()));
  std::printf("total  : %.2f Mops/s\n", total / seconds / 1e6);

  const auto st = store.CollectStats();
  std::printf("final size %zu keys | %zu models | %zu in ART | %zu retrains\n",
              store.Size(), st.num_models, st.art_keys, st.retrain_finished);
  return 0;
}
