#include "baselines/btree_index.h"

// Header-only implementation; this translation unit anchors the vtable.
namespace alt {}
