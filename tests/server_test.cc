/// \file
/// \brief Serving-stack tests: frame codec roundtrips, a malformed-input
/// corpus against the FrameDecoder and a live server, and loopback
/// integration runs (KvClient + the loadgen core against an in-process
/// KvServer). The wire format under test is docs/PROTOCOL.md.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/timer.h"
#include "datasets/dataset.h"
#include "server/client.h"
#include "server/loadgen.h"
#include "server/protocol.h"
#include "server/server.h"

namespace alt {
namespace server {
namespace {

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(Protocol, HeaderLayoutMatchesSpec) {
  // docs/PROTOCOL.md pins the exact bytes; this test is the executable spec.
  std::vector<uint8_t> buf;
  AppendGet(&buf, 0x1122334455667788ull, 0xAABBCCDDEEFF0011ull);
  ASSERT_EQ(buf.size(), kHeaderBytes + 8u);
  EXPECT_EQ(GetU32(buf.data()), 8u);            // body_len, LE
  EXPECT_EQ(buf[4], kProtocolVersion);          // version
  EXPECT_EQ(buf[5], 0x01);                      // Op::kGet
  EXPECT_EQ(buf[6], 0x00);                      // echo_op unused in requests
  EXPECT_EQ(buf[7], 0x00);                      // reserved
  EXPECT_EQ(GetU64(buf.data() + 8), 0x1122334455667788ull);
  EXPECT_EQ(GetU64(buf.data() + kHeaderBytes), 0xAABBCCDDEEFF0011ull);
}

TEST(Protocol, RequestRoundtripsThroughDecoder) {
  std::vector<uint8_t> buf;
  AppendGet(&buf, 1, 42);
  AppendPut(&buf, 2, 43, 430);
  AppendDel(&buf, 3, 44);
  AppendScan(&buf, 4, 45, 17);
  AppendStats(&buf, 5);

  FrameDecoder dec;
  dec.Feed(buf.data(), buf.size());

  FrameHeader h;
  const uint8_t* body = nullptr;
  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  EXPECT_EQ(h.op(), Op::kGet);
  EXPECT_EQ(h.request_id, 1u);
  EXPECT_EQ(GetU64(body), 42u);
  EXPECT_EQ(ValidateRequest(h), RespStatus::kOk);

  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  EXPECT_EQ(h.op(), Op::kPut);
  EXPECT_EQ(GetU64(body), 43u);
  EXPECT_EQ(GetU64(body + 8), 430u);

  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  EXPECT_EQ(h.op(), Op::kDel);

  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  EXPECT_EQ(h.op(), Op::kScan);
  EXPECT_EQ(GetU64(body), 45u);
  EXPECT_EQ(GetU32(body + 8), 17u);

  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  EXPECT_EQ(h.op(), Op::kStats);
  EXPECT_EQ(h.body_len, 0u);

  EXPECT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kNeedMore);
}

TEST(Protocol, ResponseRoundtripsThroughDecodeResponse) {
  std::vector<uint8_t> buf;
  AppendValueResponse(&buf, 7, 0xDEADull);
  AppendPutResponse(&buf, 8, true);
  AppendStatusResponse(&buf, 9, RespStatus::kNotFound,
                       static_cast<uint8_t>(Op::kGet));
  const std::pair<Key, Value> pairs[2] = {{1, 10}, {2, 20}};
  AppendScanResponse(&buf, 10, pairs, 2);
  AppendStatsResponse(&buf, 11, "{\"x\":1}");

  FrameDecoder dec;
  dec.Feed(buf.data(), buf.size());
  FrameHeader h;
  const uint8_t* body = nullptr;
  Response r;

  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  ASSERT_TRUE(h.is_response());
  ASSERT_TRUE(DecodeResponse(h, body, &r));
  EXPECT_EQ(r.request_id, 7u);
  EXPECT_EQ(r.status, RespStatus::kOk);
  EXPECT_EQ(r.value, 0xDEADull);

  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  ASSERT_TRUE(DecodeResponse(h, body, &r));
  EXPECT_TRUE(r.created);

  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  ASSERT_TRUE(DecodeResponse(h, body, &r));
  EXPECT_EQ(r.status, RespStatus::kNotFound);

  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  ASSERT_TRUE(DecodeResponse(h, body, &r));
  ASSERT_EQ(r.pairs.size(), 2u);
  EXPECT_EQ(r.pairs[0], (std::pair<Key, Value>{1, 10}));
  EXPECT_EQ(r.pairs[1], (std::pair<Key, Value>{2, 20}));

  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  ASSERT_TRUE(DecodeResponse(h, body, &r));
  EXPECT_EQ(r.json, "{\"x\":1}");
}

TEST(Protocol, DecoderReassemblesFramesSplitAcrossFeeds) {
  std::vector<uint8_t> buf;
  AppendPut(&buf, 99, 1234, 5678);
  // Feed one byte at a time: header split, body split, every boundary hit.
  FrameDecoder dec;
  FrameHeader h;
  const uint8_t* body = nullptr;
  for (size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kNeedMore)
        << "frame completed early at byte " << i;
    dec.Feed(&buf[i], 1);
  }
  ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
  EXPECT_EQ(h.op(), Op::kPut);
  EXPECT_EQ(h.request_id, 99u);
  EXPECT_EQ(GetU64(body), 1234u);
  EXPECT_EQ(GetU64(body + 8), 5678u);
}

TEST(Protocol, DecoderCompactionSurvivesManyFrames) {
  // Push enough traffic through one decoder to force several internal
  // compactions; every frame must still come out intact and in order.
  FrameDecoder dec;
  FrameHeader h;
  const uint8_t* body = nullptr;
  std::vector<uint8_t> buf;
  for (uint64_t i = 0; i < 5000; ++i) {
    buf.clear();
    AppendGet(&buf, i, i * 3);
    dec.Feed(buf.data(), buf.size());
    ASSERT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kFrame);
    ASSERT_EQ(h.request_id, i);
    ASSERT_EQ(GetU64(body), i * 3);
  }
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Malformed-input corpus (decoder level)
// ---------------------------------------------------------------------------

TEST(ProtocolMalformed, TruncatedHeaderIsNeedMoreNotError) {
  // 15 of 16 header bytes: the decoder must wait, not reject.
  std::vector<uint8_t> buf;
  AppendStats(&buf, 1);
  FrameDecoder dec;
  dec.Feed(buf.data(), kHeaderBytes - 1);
  FrameHeader h;
  const uint8_t* body = nullptr;
  EXPECT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kNeedMore);
}

TEST(ProtocolMalformed, OversizedBodyLenIsUnrecoverable) {
  std::vector<uint8_t> buf;
  AppendHeader(&buf, static_cast<uint8_t>(Op::kGet), 1, kMaxBodyLen + 1);
  FrameDecoder dec;
  dec.Feed(buf.data(), buf.size());
  FrameHeader h;
  const uint8_t* body = nullptr;
  EXPECT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kError);
  EXPECT_NE(dec.error(), nullptr);
  // Sticky: more input cannot resynchronize a length-prefixed stream.
  uint8_t junk[32] = {0};
  dec.Feed(junk, sizeof(junk));
  EXPECT_EQ(dec.Next(&h, &body), FrameDecoder::Result::kError);
}

TEST(ProtocolMalformed, ValidationRejectsBadFrames) {
  FrameHeader h{};
  h.version = kProtocolVersion;

  h.code = static_cast<uint8_t>(Op::kGet);
  h.body_len = 7;  // GET needs exactly 8
  EXPECT_EQ(ValidateRequest(h), RespStatus::kMalformed);
  h.body_len = 8;
  EXPECT_EQ(ValidateRequest(h), RespStatus::kOk);

  h.code = 0x7F;  // unknown opcode
  EXPECT_EQ(ValidateRequest(h), RespStatus::kUnsupported);

  h.code = static_cast<uint8_t>(Op::kPut);
  h.body_len = 16;
  h.version = 2;  // future protocol version
  EXPECT_EQ(ValidateRequest(h), RespStatus::kUnsupported);
}

// ---------------------------------------------------------------------------
// Live server fixture
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  static constexpr size_t kKeys = 20000;

  void StartServer(ServerOptions opt = ServerOptions{}) {
    opt.port = 0;  // ephemeral
    server_ = std::make_unique<KvServer>(opt);
    keys_ = GenerateKeys(Dataset::kFb, kKeys, /*seed=*/99);
    std::vector<Value> values(keys_.size());
    for (size_t i = 0; i < keys_.size(); ++i) values[i] = ValueFor(keys_[i]);
    ASSERT_TRUE(server_->Preload(keys_.data(), values.data(), keys_.size()).ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  Status Connect(KvClient* c) {
    return c->Connect("127.0.0.1", server_->port(), /*retry_for_ms=*/2000);
  }

  std::unique_ptr<KvServer> server_;
  std::vector<Key> keys_;
};

TEST_F(ServerTest, BasicOpsRoundtrip) {
  StartServer();
  KvClient c;
  ASSERT_TRUE(Connect(&c).ok());

  Value v = 0;
  bool found = false;
  ASSERT_TRUE(c.Get(keys_[123], &v, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(v, ValueFor(keys_[123]));

  ASSERT_TRUE(c.Get(keys_[0] - 1, &v, &found).ok());
  EXPECT_FALSE(found);

  bool created = false;
  const Key nk = 0xF100000000000000ull;
  ASSERT_TRUE(c.Put(nk, 777, &created).ok());
  EXPECT_TRUE(created);
  ASSERT_TRUE(c.Get(nk, &v, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(v, 777u);
  ASSERT_TRUE(c.Put(nk, 778, &created).ok());  // upsert
  EXPECT_FALSE(created);

  bool existed = false;
  ASSERT_TRUE(c.Del(nk, &existed).ok());
  EXPECT_TRUE(existed);
  ASSERT_TRUE(c.Get(nk, &v, &found).ok());
  EXPECT_FALSE(found);
  ASSERT_TRUE(c.Del(nk, &existed).ok());
  EXPECT_FALSE(existed);

  std::vector<std::pair<Key, Value>> pairs;
  ASSERT_TRUE(c.Scan(keys_[100], 10, &pairs).ok());
  ASSERT_EQ(pairs.size(), 10u);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].first, keys_[100 + i]);
    EXPECT_EQ(pairs[i].second, ValueFor(keys_[100 + i]));
  }

  std::string json;
  ASSERT_TRUE(c.Stats(&json).ok());
  EXPECT_NE(json.find("\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_flushes\""), std::string::npos);
}

TEST_F(ServerTest, PipelinedResponsesArriveInRequestOrder) {
  StartServer();
  KvClient c;
  ASSERT_TRUE(Connect(&c).ok());

  // Interleave GETs with batch-flushing ops (PUT/SCAN) so coalescing cannot
  // reorder responses without this test noticing.
  std::vector<uint64_t> ids;
  for (int round = 0; round < 20; ++round) {
    ids.push_back(c.QueueGet(keys_[static_cast<size_t>(round) * 7]));
    ids.push_back(c.QueueGet(keys_[static_cast<size_t>(round) * 11]));
    ids.push_back(c.QueuePut(0xF200000000000000ull + round, round));
    ids.push_back(c.QueueScan(keys_[0], 3));
  }
  ASSERT_TRUE(c.Flush().ok());
  for (uint64_t id : ids) {
    Response r;
    ASSERT_TRUE(c.ReceiveResponse(&r).ok());
    EXPECT_EQ(r.request_id, id);  // in-order per connection
    EXPECT_EQ(r.status, RespStatus::kOk);
  }
}

TEST_F(ServerTest, ErrorResponsesDoNotOvertakeCoalescedGets) {
  StartServer();
  KvClient c;
  ASSERT_TRUE(Connect(&c).ok());

  // Two GETs are sitting in the coalescing batch when the unknown-opcode
  // frame is decoded; its error reply must flush them first, or a
  // positionally-matching client mis-attributes every later response.
  std::vector<uint8_t> raw;
  AppendGet(&raw, 1, keys_[10]);
  AppendGet(&raw, 2, keys_[20]);
  AppendHeader(&raw, 0x6E, /*request_id=*/3, /*body_len=*/0);
  AppendGet(&raw, 4, keys_[30]);
  ASSERT_EQ(send(c.fd(), raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));

  Response r;
  ASSERT_TRUE(c.ReceiveResponse(&r).ok());
  EXPECT_EQ(r.request_id, 1u);
  EXPECT_EQ(r.status, RespStatus::kOk);
  EXPECT_EQ(r.value, ValueFor(keys_[10]));
  ASSERT_TRUE(c.ReceiveResponse(&r).ok());
  EXPECT_EQ(r.request_id, 2u);
  EXPECT_EQ(r.status, RespStatus::kOk);
  ASSERT_TRUE(c.ReceiveResponse(&r).ok());
  EXPECT_EQ(r.request_id, 3u);
  EXPECT_EQ(r.status, RespStatus::kUnsupported);
  ASSERT_TRUE(c.ReceiveResponse(&r).ok());
  EXPECT_EQ(r.request_id, 4u);
  EXPECT_EQ(r.status, RespStatus::kOk);
}

TEST_F(ServerTest, RevisitWorkIsNotDelayedByEpollTimeout) {
  ServerOptions opt;
  opt.max_frames_per_drain = 4;
  StartServer(opt);
  KvClient c;
  ASSERT_TRUE(Connect(&c).ok());

  constexpr int kN = 64;
  for (int i = 0; i < kN; ++i) c.QueueGet(keys_[static_cast<size_t>(i)]);
  const uint64_t t0 = NowNanos();
  ASSERT_TRUE(c.Flush().ok());
  Response r;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(c.ReceiveResponse(&r).ok());
    EXPECT_EQ(r.status, RespStatus::kOk);
  }
  // 64 frames at 4 per drain = 16 revisit cycles. If each revisit waited out
  // the 200ms epoll timeout (ET gives no kernel event for already-read
  // bytes) this would take >3s; with zero-timeout revisit polling it is
  // milliseconds. The bound leaves ample slack for slow CI.
  EXPECT_LT(NowNanos() - t0, 1500ull * 1000000ull);
}

TEST_F(ServerTest, MalformedFramesGetErrorResponses) {
  StartServer();
  KvClient c;
  ASSERT_TRUE(Connect(&c).ok());

  // Unknown opcode with valid header: server answers kUnsupported, stays up.
  std::vector<uint8_t> raw;
  AppendHeader(&raw, 0x6E, /*request_id=*/5, /*body_len=*/0);
  ASSERT_EQ(send(c.fd(), raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  Response r;
  ASSERT_TRUE(c.ReceiveResponse(&r).ok());
  EXPECT_EQ(r.request_id, 5u);
  EXPECT_EQ(r.status, RespStatus::kUnsupported);

  // Bad body size: kMalformed, then the server closes the connection (it
  // cannot trust the stream framing after a contract violation).
  raw.clear();
  AppendHeader(&raw, static_cast<uint8_t>(Op::kGet), 6, 4);
  PutU32(&raw, 42);
  ASSERT_EQ(send(c.fd(), raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  ASSERT_TRUE(c.ReceiveResponse(&r).ok());
  EXPECT_EQ(r.request_id, 6u);
  EXPECT_EQ(r.status, RespStatus::kMalformed);
  EXPECT_FALSE(c.ReceiveResponse(&r).ok());  // connection closed

  // Oversized length prefix: undecodable → kMalformed (id 0) and close. A
  // valid GET coalesced just before must still be answered first.
  KvClient c2;
  ASSERT_TRUE(Connect(&c2).ok());
  raw.clear();
  AppendGet(&raw, 7, keys_[2]);
  AppendHeader(&raw, static_cast<uint8_t>(Op::kGet), 8, kMaxBodyLen + 1);
  ASSERT_EQ(send(c2.fd(), raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  ASSERT_TRUE(c2.ReceiveResponse(&r).ok());
  EXPECT_EQ(r.request_id, 7u);
  EXPECT_EQ(r.status, RespStatus::kOk);
  ASSERT_TRUE(c2.ReceiveResponse(&r).ok());
  EXPECT_EQ(r.request_id, 0u);
  EXPECT_EQ(r.status, RespStatus::kMalformed);
  EXPECT_FALSE(c2.ReceiveResponse(&r).ok());

  // The server survived all of it.
  KvClient c3;
  ASSERT_TRUE(Connect(&c3).ok());
  Value v = 0;
  bool found = false;
  ASSERT_TRUE(c3.Get(keys_[1], &v, &found).ok());
  EXPECT_TRUE(found);

  const ServerStats stats = server_->CollectStats();
  EXPECT_GE(stats.malformed, 2u);
}

TEST_F(ServerTest, ScanCountClampAndStatsOpcode) {
  ServerOptions opt;
  opt.max_scan_count = 8;
  StartServer(opt);
  KvClient c;
  ASSERT_TRUE(Connect(&c).ok());

  c.QueueScan(keys_[0], 9);  // over the per-server clamp
  ASSERT_TRUE(c.Flush().ok());
  Response r;
  ASSERT_TRUE(c.ReceiveResponse(&r).ok());
  EXPECT_EQ(r.status, RespStatus::kTooLarge);

  std::vector<std::pair<Key, Value>> pairs;
  ASSERT_TRUE(c.Scan(keys_[0], 8, &pairs).ok());
  EXPECT_EQ(pairs.size(), 8u);
}

TEST_F(ServerTest, LoopbackLoadgenClosedLoopZeroFailures) {
  ServerOptions opt;
  opt.num_workers = 2;
  opt.sharded.num_shards = 2;
  StartServer(opt);

  LoadgenOptions lg;
  lg.port = server_->port();
  lg.threads = 2;
  lg.connections_per_thread = 3;
  lg.ops = 20000;
  lg.pipeline = 8;
  lg.put_pct = 5;
  lg.del_pct = 2;
  lg.scan_pct = 5;
  lg.keyspace = kKeys;  // must match the fixture's preload
  lg.seed = 99;

  const LoadgenResult res = RunLoadgen(lg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.ops_completed, lg.ops);
  EXPECT_EQ(res.failed_ops, 0u);
  EXPECT_GT(res.latency.Percentile(0.999), 0u);

  // Pipelined connections must actually coalesce (the tentpole's point):
  // mean LookupBatch occupancy strictly above scalar.
  const ServerStats stats = server_->CollectStats();
  EXPECT_GT(stats.batch_flushes, 0u);
  EXPECT_GT(stats.mean_batch_occupancy(), 1.0);
  // ops + the STATS frame RunLoadgen itself sends to snapshot the server.
  EXPECT_EQ(stats.frames_in, lg.ops + 1);
}

TEST_F(ServerTest, LoopbackLoadgenOpenLoopCompletes) {
  StartServer();
  LoadgenOptions lg;
  lg.port = server_->port();
  lg.threads = 1;
  lg.connections_per_thread = 2;
  lg.ops = 5000;
  lg.open_loop = true;
  lg.rate_ops_per_sec = 50000;
  lg.keyspace = kKeys;
  lg.seed = 99;

  const LoadgenResult res = RunLoadgen(lg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.ops_completed, lg.ops);
  EXPECT_EQ(res.failed_ops, 0u);
}

TEST_F(ServerTest, BatchSizeOneIsScalarBaseline) {
  ServerOptions opt;
  opt.batch_size = 1;
  StartServer(opt);

  LoadgenOptions lg;
  lg.port = server_->port();
  lg.threads = 1;
  lg.connections_per_thread = 2;
  lg.ops = 4000;
  lg.put_pct = 0;
  lg.scan_pct = 0;
  lg.keyspace = kKeys;
  lg.seed = 99;

  const LoadgenResult res = RunLoadgen(lg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.failed_ops, 0u);
  const ServerStats stats = server_->CollectStats();
  EXPECT_DOUBLE_EQ(stats.mean_batch_occupancy(), 1.0);
}

TEST_F(ServerTest, StopIsIdempotentAndRestartableProcessWide) {
  StartServer();
  const uint16_t port = server_->port();
  server_->Stop();
  server_->Stop();  // idempotent

  // A fresh server can bind immediately (SO_REUSEADDR) on a new socket.
  ServerOptions opt;
  opt.port = port;
  KvServer again(opt);
  ASSERT_TRUE(again.Start().ok());
  KvClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", again.port(), 2000).ok());
  bool created = false;
  ASSERT_TRUE(c.Put(1, 2, &created).ok());
  EXPECT_TRUE(created);
}

}  // namespace
}  // namespace server
}  // namespace alt
