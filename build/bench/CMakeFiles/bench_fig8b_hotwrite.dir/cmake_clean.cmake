file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_hotwrite.dir/bench_fig8b_hotwrite.cc.o"
  "CMakeFiles/bench_fig8b_hotwrite.dir/bench_fig8b_hotwrite.cc.o.d"
  "bench_fig8b_hotwrite"
  "bench_fig8b_hotwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_hotwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
