#include "core/fast_pointer_buffer.h"

#include <cassert>

namespace alt {

FastPointerBuffer::FastPointerBuffer() = default;
FastPointerBuffer::~FastPointerBuffer() = default;

int32_t FastPointerBuffer::AddPointer(art::Node* node, int depth, Key prefix) {
  add_calls_.fetch_add(1, std::memory_order_relaxed);
  // Merge scheme: if the node already owns an entry, share it.
  int32_t existing = node->fp_slot.load(std::memory_order_acquire);
  if (existing >= 0) return existing;

  SpinLockGuard lg(grow_lock_);
  existing = node->fp_slot.load(std::memory_order_acquire);
  if (existing >= 0) return existing;

  const size_t idx = count_.load(std::memory_order_relaxed);
  const size_t chunk = idx >> kChunkBits;
  assert(chunk < kMaxChunks && "fast pointer buffer capacity exceeded");
  if (chunks_[chunk] == nullptr) chunks_[chunk] = std::make_unique<Entry[]>(kChunkSize);
  Entry& e = EntryAt(idx);
  {
    // The entry is unpublished (count_ not yet bumped) so its lock is free;
    // taking it keeps the node/meta stores inside their guarding capability.
    SpinLockGuard el(e.lock);
    e.meta.store(PackMeta(prefix, depth), std::memory_order_relaxed);
    e.node.store(node, std::memory_order_release);
  }
  count_.store(idx + 1, std::memory_order_release);
  node->fp_slot.store(static_cast<int32_t>(idx), std::memory_order_release);
  return static_cast<int32_t>(idx);
}

// Optimistic read, validated by caller: the returned Ref is only trusted
// after the ART descent it seeds passes version validation (a stale node
// restarts the descent from the root).
FastPointerBuffer::Ref FastPointerBuffer::Get(int32_t slot) const
    ALT_OPTIMISTIC_PATH ALT_REQUIRES_EPOCH {
  const Entry& e = EntryAt(static_cast<size_t>(slot));
  const uint64_t meta = e.meta.load(std::memory_order_acquire);
  art::Node* node = e.node.load(std::memory_order_acquire);
  return Ref{node, static_cast<int>(meta & 0xFF), meta & ~uint64_t{0xFF}};
}

size_t FastPointerBuffer::MemoryBytes() const {
  const size_t n = count_.load(std::memory_order_acquire);
  const size_t chunks = (n + kChunkSize - 1) / kChunkSize;
  return sizeof(FastPointerBuffer) + chunks * kChunkSize * sizeof(Entry);
}

void FastPointerBuffer::OnNodeReplaced(int32_t slot, art::Node* old_node,
                                       art::Node* new_node) {
  Entry& e = EntryAt(static_cast<size_t>(slot));
  SpinLockGuard lg(e.lock);
  // Coverage and depth are identical; only the pointer changes.
  if (e.node.load(std::memory_order_relaxed) == old_node) {
    e.node.store(new_node, std::memory_order_release);
  }
}

void FastPointerBuffer::OnPrefixSplit(int32_t slot, art::Node* node,
                                      art::Node* new_parent) {
  Entry& e = EntryAt(static_cast<size_t>(slot));
  SpinLockGuard lg(e.lock);
  // The new parent sits exactly where `node` used to (same match_level), so
  // the entry's depth/prefix still describe its coverage.
  if (e.node.load(std::memory_order_relaxed) == node) {
    e.node.store(new_parent, std::memory_order_release);
  }
}

void FastPointerBuffer::OnNodeRemoved(int32_t slot, art::Node* node,
                                      art::Node* ancestor) {
  Entry& e = EntryAt(static_cast<size_t>(slot));
  SpinLockGuard lg(e.lock);
  if (e.node.load(std::memory_order_relaxed) != node) return;
  // Adopt the ancestor only if it has no entry yet; otherwise this entry
  // would stop receiving callbacks (a node names exactly one entry via
  // fp_slot) and could go stale. A dead entry just means affected models
  // fall back to root traversals.
  int32_t expected = -1;
  if (ancestor->fp_slot.compare_exchange_strong(expected, slot,
                                                std::memory_order_acq_rel)) {
    const uint64_t meta = e.meta.load(std::memory_order_relaxed);
    const Key prefix = meta & ~uint64_t{0xFF};
    // The ancestor may sit shallower; truncate the validated prefix to its
    // depth (widening coverage is always safe).
    const int new_depth = ancestor->match_level.load(std::memory_order_relaxed);
    e.meta.store(PackMeta(KeyPrefix(prefix, new_depth), new_depth),
                 std::memory_order_relaxed);
    e.node.store(ancestor, std::memory_order_release);
  } else {
    e.node.store(nullptr, std::memory_order_release);
  }
}

}  // namespace alt
