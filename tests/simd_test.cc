// Differential tests for the DESIGN.md §10 vector read-path kernels: every
// vectorized primitive must be bit-identical to its always-compiled scalar
// twin on adversarial inputs. The CI matrix runs this binary three ways —
// default (AVX2 where the CPU has it), ALT_FORCE_SCALAR=1, and a
// -DALT_SIMD=OFF build — and all three must pass identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/aligned_mem.h"
#include "common/cpu_features.h"
#include "common/random.h"
#include "common/simd.h"
#include "core/gpl_model.h"
#include "core/model_directory.h"

namespace alt {
namespace {

// ---------------------------------------------------------------------------
// UpperBoundU64: scalar vs std::upper_bound vs AVX2
// ---------------------------------------------------------------------------

std::vector<uint64_t> RandomSortedKeys(size_t n, uint64_t seed,
                                       bool with_duplicates) {
  Rng rng(seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) {
    // A narrowed key range forces duplicates and dense adjacent values.
    k = with_duplicates ? rng.Next() % (n / 2 + 2) : rng.Next();
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<uint64_t> ProbeKeys(const std::vector<uint64_t>& keys,
                                uint64_t seed) {
  std::vector<uint64_t> probes = {0, 1, ~uint64_t{0}, ~uint64_t{0} - 1};
  for (uint64_t k : keys) {
    probes.push_back(k);
    if (k > 0) probes.push_back(k - 1);
    if (k < ~uint64_t{0}) probes.push_back(k + 1);
  }
  Rng rng(seed);
  for (int i = 0; i < 256; ++i) probes.push_back(rng.Next());
  return probes;
}

TEST(UpperBoundTest, ScalarMatchesStdUpperBound) {
  for (const size_t n : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 63u, 64u, 65u, 100u,
                         511u, 512u, 1000u}) {
    for (const bool dups : {false, true}) {
      const auto keys = RandomSortedKeys(n, 11 + n, dups);
      for (uint64_t p : ProbeKeys(keys, 17 + n)) {
        const size_t expect = static_cast<size_t>(
            std::upper_bound(keys.begin(), keys.end(), p) - keys.begin());
        EXPECT_EQ(simd::UpperBoundU64Scalar(keys.data(), 0, n, p), expect)
            << "n=" << n << " dups=" << dups << " probe=" << p;
      }
    }
  }
}

TEST(UpperBoundTest, DispatchedBitIdenticalToScalar) {
  // Whatever the dispatcher resolves to (AVX2, forced scalar, compiled-out
  // SIMD), the result must be bit-identical to the scalar twin — including
  // over sub-windows, which is how Locate calls it under a radix table.
  for (const size_t n : {1u, 8u, 65u, 513u, 2048u}) {
    const auto keys = RandomSortedKeys(n, 29 + n, /*with_duplicates=*/true);
    Rng rng(31 + n);
    for (int trial = 0; trial < 64; ++trial) {
      size_t lo = static_cast<size_t>(rng.Next() % (n + 1));
      size_t hi = static_cast<size_t>(rng.Next() % (n + 1));
      if (lo > hi) std::swap(lo, hi);
      for (uint64_t p : {keys[lo < n ? lo : n - 1], rng.Next(),
                         uint64_t{0}, ~uint64_t{0}}) {
        EXPECT_EQ(simd::UpperBoundU64(keys.data(), lo, hi, p),
                  simd::UpperBoundU64Scalar(keys.data(), lo, hi, p))
            << "n=" << n << " lo=" << lo << " hi=" << hi << " probe=" << p;
      }
    }
  }
}

#if ALT_SIMD_X86
TEST(UpperBoundTest, Avx2KernelBitIdenticalToScalar) {
  // Direct kernel test, independent of ALT_FORCE_SCALAR: detection of the
  // instruction set is what gates running it, not the dispatch override.
  if (!cpu::GetFeatures().avx2) GTEST_SKIP() << "CPU lacks AVX2";
  for (const size_t n : {1u, 7u, 8u, 64u, 65u, 129u, 1000u}) {
    for (const bool dups : {false, true}) {
      const auto keys = RandomSortedKeys(n, 41 + n, dups);
      for (uint64_t p : ProbeKeys(keys, 43 + n)) {
        EXPECT_EQ(simd::detail::UpperBoundU64Avx2(keys.data(), 0, n, p),
                  simd::UpperBoundU64Scalar(keys.data(), 0, n, p))
            << "n=" << n << " dups=" << dups << " probe=" << p;
      }
    }
  }
}
#endif  // ALT_SIMD_X86

// ---------------------------------------------------------------------------
// ModelDirectory::Locate: dispatched vs scalar vs reference, radix on/off
// ---------------------------------------------------------------------------

/// Reference Locate: last model whose first_key <= key, clamped to 0.
size_t ReferenceLocate(const std::vector<Key>& first_keys, Key key) {
  size_t idx = 0;
  for (size_t i = 0; i < first_keys.size(); ++i) {
    if (first_keys[i] <= key) idx = i;
  }
  return idx;
}

TEST(LocateDifferentialTest, RandomDirectoriesRadixOnAndOff) {
  Rng rng(7);
  for (const size_t n : {1u, 2u, 5u, 64u, 65u, 300u, 1024u}) {
    for (const bool dups : {false, true}) {
      const auto first_keys = RandomSortedKeys(n, 53 + n + dups, dups);
      for (const int radix_bits : {0, 4, 8, 12}) {
        ModelDirectory::Snapshot snap(n);
        snap.first_keys = first_keys;
        ModelDirectory::BuildRadix(&snap, radix_bits);
        for (Key p : ProbeKeys(first_keys, 59 + n)) {
          const size_t got = ModelDirectory::Locate(snap, p);
          const size_t scalar = ModelDirectory::LocateScalar(snap, p);
          EXPECT_EQ(got, scalar) << "n=" << n << " radix=" << radix_bits
                                 << " dups=" << dups << " probe=" << p;
          EXPECT_EQ(got, ReferenceLocate(first_keys, p))
              << "n=" << n << " radix=" << radix_bits << " dups=" << dups
              << " probe=" << p;
        }
        // A burst of random probes on top of the structured ones.
        for (int i = 0; i < 200; ++i) {
          const Key p = rng.Next();
          EXPECT_EQ(ModelDirectory::Locate(snap, p),
                    ModelDirectory::LocateScalar(snap, p));
        }
      }
    }
  }
}

TEST(LocateDifferentialTest, DuplicateAdjacentFirstKeysPickLastOwner) {
  // Locate must return the LAST model of a duplicate first-key run (the
  // upper-bound convention): later models with the same anchor supersede
  // earlier ones in routing.
  ModelDirectory::Snapshot snap(5);
  snap.first_keys = {10, 20, 20, 20, 30};
  for (const int radix_bits : {0, 6}) {
    ModelDirectory::BuildRadix(&snap, radix_bits);
    EXPECT_EQ(ModelDirectory::Locate(snap, 20), 3u) << "radix=" << radix_bits;
    EXPECT_EQ(ModelDirectory::Locate(snap, 25), 3u) << "radix=" << radix_bits;
    EXPECT_EQ(ModelDirectory::Locate(snap, 9), 0u);   // under-range clamp
    EXPECT_EQ(ModelDirectory::Locate(snap, 31), 4u);  // past the tail
    EXPECT_EQ(ModelDirectory::Locate(snap, ~Key{0}), 4u);
    for (Key p : {Key{9}, Key{10}, Key{19}, Key{20}, Key{21}, Key{30}, Key{31}}) {
      EXPECT_EQ(ModelDirectory::Locate(snap, p),
                ModelDirectory::LocateScalar(snap, p));
    }
  }
}

TEST(LocateDifferentialTest, WindowSharedByLocateAndPrefetch) {
  ModelDirectory::Snapshot snap(8);
  snap.first_keys = {0, 1u << 20, 2u << 20, 3u << 20,
                     4u << 20, 5u << 20, 6u << 20, 7u << 20};
  ModelDirectory::BuildRadix(&snap, 8);
  for (Key p : snap.first_keys) {
    const auto w = ModelDirectory::LocateWindow(snap, p);
    ASSERT_LE(w.lo, w.hi);
    ASSERT_LE(w.hi, snap.first_keys.size());
    const size_t idx = ModelDirectory::Locate(snap, p);
    // The answer always lies in (or at the clamped edge of) the window.
    EXPECT_GE(idx + 1, w.lo);
    EXPECT_LE(idx, w.hi);
    ModelDirectory::PrefetchLocate(snap, p);  // must not fault
  }
}

// ---------------------------------------------------------------------------
// Slot-state scan: vector vs scalar, with busy lanes
// ---------------------------------------------------------------------------

TEST(SlotScanTest, DispatchedBitIdenticalToScalar) {
  GplModel model(/*first_key=*/0, /*slope=*/1.0, /*num_slots=*/256,
                 /*build_size=*/0);
  Rng rng(71);
  for (uint32_t i = 0; i < model.num_slots(); ++i) {
    model.slot(i).word.InitState(static_cast<SlotState>(rng.Next() % 4));
  }
  for (uint32_t base = 0; base + 8 <= model.num_slots(); ++base) {
    const auto vec = simd::ScanSlotWords8(&model.slot(base), sizeof(GplSlot));
    const auto ref =
        simd::ScanSlotWords8Scalar(&model.slot(base), sizeof(GplSlot));
    EXPECT_EQ(vec.busy_mask, ref.busy_mask) << "base=" << base;
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(vec.state_mask[s], ref.state_mask[s])
          << "base=" << base << " state=" << s;
    }
    // The masks partition the 8 lanes: every lane is busy or in one state.
    uint32_t all = ref.busy_mask;
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(all & ref.state_mask[s], 0u);
      all |= ref.state_mask[s];
    }
    EXPECT_EQ(all, 0xffu);
  }
}

TEST(SlotScanTest, BusyLaneExcludedFromStateMasks) {
  GplModel model(0, 1.0, 16, 0);
  for (uint32_t i = 0; i < 16; ++i) {
    model.slot(i).word.InitState(SlotState::kOccupied);
  }
  const uint32_t token = model.slot(3).word.Lock();
  const auto scan = simd::ScanSlotWords8(&model.slot(0), sizeof(GplSlot));
  EXPECT_EQ(scan.busy_mask, 1u << 3);
  EXPECT_EQ(scan.state_mask[static_cast<int>(SlotState::kOccupied)],
            0xffu & ~(1u << 3));
  model.slot(3).word.Unlock(token, SlotState::kOccupied);
}

TEST(SlotScanTest, CountsMatchManualLoop) {
  // CountOccupied / CountSlotStates run the vector fast path internally when
  // enabled; both must agree with a plain per-slot walk on ragged sizes.
  for (const uint32_t n : {1u, 7u, 8u, 9u, 63u, 64u, 200u, 1031u}) {
    GplModel model(0, 1.0, n, 0);
    Rng rng(83 + n);
    size_t expect[4] = {0, 0, 0, 0};
    for (uint32_t i = 0; i < n; ++i) {
      const auto s = static_cast<SlotState>(rng.Next() % 4);
      model.slot(i).word.InitState(s);
      expect[static_cast<size_t>(s)]++;
    }
    EXPECT_EQ(model.CountOccupied(),
              expect[static_cast<size_t>(SlotState::kOccupied)])
        << "n=" << n;
    size_t counts[4] = {0, 0, 0, 0};
    model.CountSlotStates(counts);
    size_t total = 0;
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(counts[s], expect[s]) << "n=" << n << " state=" << s;
      total += counts[s];
    }
    EXPECT_EQ(total, n);
  }
}

TEST(SlotScanTest, CollectRangeMatchesReference) {
  const uint32_t n = 512;
  GplModel model(/*first_key=*/1000, /*slope=*/0.5, n, 0);
  // Occupy a scattered subset at each key's predicted slot (first write wins,
  // like bulk load), tombstone a few others.
  Rng rng(97);
  std::vector<std::pair<Key, Value>> resident;
  for (int i = 0; i < 600; ++i) {
    const Key k = 1000 + rng.Next() % 1000;
    GplSlot& s = model.slot(model.Predict(k));
    if (s.word.State() != SlotState::kEmpty) continue;
    const uint32_t w = s.word.Lock();
    s.key.store(k, std::memory_order_relaxed);
    s.value.store(k * 3, std::memory_order_relaxed);
    s.word.Unlock(w, SlotState::kOccupied);
  }
  for (uint32_t i = 0; i < n; i += 17) {
    GplSlot& s = model.slot(i);
    if (s.word.State() != SlotState::kEmpty) continue;
    const uint32_t w = s.word.Lock();
    s.word.Unlock(w, SlotState::kTombstone);
  }
  for (uint32_t i = 0; i < n; ++i) {
    const GplSlot& s = model.slot(i);
    if (s.word.State() == SlotState::kOccupied) {
      resident.emplace_back(s.OptimisticKey(), s.OptimisticValue());
    }
  }
  for (const auto [lo, hi] : std::vector<std::pair<Key, Key>>{
           {0, ~Key{0}}, {1000, 1999}, {1200, 1400}, {1500, 1500},
           {2500, 3000}, {0, 999}}) {
    std::vector<std::pair<Key, Value>> got;
    model.CollectRange(lo, hi, &got);
    std::vector<std::pair<Key, Value>> expect;
    for (const auto& kv : resident) {
      if (kv.first >= lo && kv.first <= hi) expect.push_back(kv);
    }
    EXPECT_EQ(got, expect) << "lo=" << lo << " hi=" << hi;
    // And the limit-clipped variant.
    std::vector<std::pair<Key, Value>> limited;
    model.CollectRange(lo, hi, &limited, 3);
    expect.resize(std::min<size_t>(expect.size(), 3));
    EXPECT_EQ(limited, expect) << "lo=" << lo << " hi=" << hi << " limit=3";
  }
}

// ---------------------------------------------------------------------------
// Memory backing: alignment contract + huge-page roundtrip
// ---------------------------------------------------------------------------

TEST(AlignedMemTest, SlotArraysAre64ByteAlignedAndStraddleFree) {
  for (const uint32_t n : {1u, 5u, 100u}) {
    GplModel model(0, 1.0, n, 0);
    const auto base = reinterpret_cast<uintptr_t>(&model.slot(0));
    EXPECT_EQ(base % 64, 0u) << "n=" << n;
    for (uint32_t i = 0; i < n; ++i) {
      const auto a = reinterpret_cast<uintptr_t>(&model.slot(i));
      // 32-byte slots on a 64-byte-aligned base: a slot never crosses a line.
      EXPECT_EQ(a / 64, (a + sizeof(GplSlot) - 1) / 64) << "slot " << i;
    }
  }
}

TEST(AlignedMemTest, AllocateRoundtripSmallAndHuge) {
  for (const size_t bytes : {size_t{64}, size_t{4096}, 3 * kHugePageBytes}) {
    for (const bool huge : {false, true}) {
      bool huge_backed = true;
      void* p = AllocateHotArray(bytes, huge, &huge_backed);
      ASSERT_NE(p, nullptr) << "bytes=" << bytes << " huge=" << huge;
      if (!huge || bytes < kHugePageBytes) {
        EXPECT_FALSE(huge_backed) << "bytes=" << bytes << " huge=" << huge;
      }
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
      auto* bytes_p = static_cast<unsigned char*>(p);
      for (size_t i = 0; i < bytes; i += 512) {
        EXPECT_EQ(bytes_p[i], 0) << "offset " << i;  // zero-filled
      }
      bytes_p[0] = 0xab;
      bytes_p[bytes - 1] = 0xcd;  // whole range writable
      FreeHotArray(p, bytes, huge_backed);
    }
  }
}

TEST(AlignedMemTest, HugePageModelWorksRegardlessOfBacking) {
  // ~2.2MB of slots: the huge-page request kicks in when THP is available and
  // silently falls back when not — either way the model must behave.
  const uint32_t n = 70000;
  GplModel model(0, 1.0, n, 0, ~Key{0}, /*use_huge_pages=*/true);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(&model.slot(0)) % 64, 0u);
  EXPECT_EQ(model.CountOccupied(), 0u);
  GplSlot& s = model.slot(model.Predict(12345));
  const uint32_t w = s.word.Lock();
  s.key.store(12345, std::memory_order_relaxed);
  s.value.store(99, std::memory_order_relaxed);
  s.word.Unlock(w, SlotState::kOccupied);
  EXPECT_EQ(model.CountOccupied(), 1u);
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(CpuFeaturesTest, ModeNameConsistentWithFeatures) {
  const cpu::Features& f = cpu::GetFeatures();
  const bool enabled = cpu::SimdEnabled();
  if (enabled) {
    EXPECT_TRUE(f.compiled_simd);
    EXPECT_TRUE(f.avx2);
    EXPECT_FALSE(f.forced_scalar);
    EXPECT_STREQ(cpu::SimdModeName(), "avx2");
  } else {
    EXPECT_TRUE(!f.compiled_simd || !f.avx2 || f.forced_scalar);
    EXPECT_NE(std::string(cpu::SimdModeName()).find("scalar"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace alt
