#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/prefetch.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"

namespace alt {
namespace metrics {

/// \brief Always-on, low-overhead observability registry.
///
/// The paper evaluates ALT-index through end-to-end throughput and tail
/// latency, but the behaviour that *explains* those numbers — conflict
/// evictions to ART-OPT, fast-pointer hit depth, §III-F expansions — is
/// internal. This registry makes it visible at runtime:
///
///  - **Counters** are sharded across `kShards` cache-line-padded shards;
///    a thread increments its own shard with one relaxed fetch_add (the same
///    per-thread-collapse pattern as LatencyHistogram::Merge). Threads are
///    assigned shards round-robin on first use; two threads sharing a shard
///    is a performance detail, never a correctness one.
///  - **Gauges** are last-write-wins values (relaxed store / load).
///  - **Events** (retrains, tail appends, bulk loads) go into a bounded ring
///    under a spin lock — events are rare (structural changes), so a lock
///    there costs nothing on the op hot paths.
///
/// Snapshot() collapses the shards; counter values in successive snapshots
/// are monotonically non-decreasing. DeltaSince() subtracts a baseline, which
/// is how callers scope the process-global registry to one run (take a
/// baseline before, a snapshot after, diff).
///
/// The registry is process-global: all indexes in the process feed the same
/// counters. Benchmarks that compare configurations take per-phase deltas.
///
/// Compiling with -DALT_METRICS_DISABLED (CMake -DALT_METRICS=OFF) turns every
/// recording call into a no-op while keeping Snapshot()/ToJson() compilable,
/// which is how the overhead of the instrumentation itself is measured.

/// Counter identifiers. Names (CounterName) are the JSON keys; DESIGN.md §8
/// maps each to the paper figure it explains.
enum class Counter : uint32_t {
  kLearnedHits = 0,     ///< lookups answered by the predicted slot (§III-A)
  kLearnedNegatives,    ///< absences proven by a strict-empty predicted slot
  kSlotInserts,         ///< inserts placed at their predicted slot
  kConflictInserts,     ///< keys entering ART-OPT at runtime (conflicts + migration victims)
  kArtLookups,          ///< secondary searches (Fig. 10(a) denominator)
  kArtLookupSteps,      ///< ART nodes visited by secondary searches (Fig. 10(a) numerator)
  kArtRootFallbacks,    ///< hinted searches that retried from the root
  kFastPointerHits,     ///< secondary searches resolved inside the hinted subtree (§III-C)
  kWriteBacks,          ///< ART→slot write-backs (Alg. 2 re-adoption + §III-F sweeps)
  kScanOps,             ///< Scan/RangeQuery calls (§III-G)
  kEmptyScans,          ///< scans that found no key >= start (end of keyspace)
  kRetrainStarted,      ///< §III-F expansions triggered
  kRetrainFinished,     ///< §III-F expansions completed & published
  kTailModelsAppended,  ///< tail models appended after a last-model retrain
  kBatchLookups,        ///< keys resolved through the batched read path
  kBatchScalarFallbacks,  ///< batch cursors that dropped to the scalar path
  kServerAccepts,       ///< connections accepted by alt_server (DESIGN.md §13)
  kServerFramesIn,      ///< request frames decoded by server workers
  kServerBatchFlushes,  ///< coalesced LookupBatch flushes issued by workers
  kServerBatchKeys,     ///< GET keys carried by those flushes (keys/flushes = mean occupancy)
  kServerMalformedFrames,  ///< frames rejected by protocol validation
  kServerWorkerFailures,   ///< worker threads that exited on an epoll error
  kCount
};
constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount);

/// Stable JSON key for `c` (snake_case, e.g. "learned_hits").
const char* CounterName(Counter c);

/// Last-write-wins gauges.
enum class Gauge : uint32_t {
  kNumModels = 0,  ///< GPL models in the directory
  kLiveKeys,       ///< approximate live key count (set by the runner)
  kCount
};
constexpr size_t kNumGauges = static_cast<size_t>(Gauge::kCount);

const char* GaugeName(Gauge g);

/// Fast-pointer hits histogrammed by the hint node's ART depth (key bytes
/// matched, 0..8): how deep into the tree the §III-C buffer lets secondary
/// searches start.
constexpr size_t kFpDepthBuckets = 9;

/// Structural events recorded in the bounded ring.
enum class EventType : uint32_t {
  kBulkLoad = 0,    ///< detail = keys loaded
  kRetrainStart,    ///< detail = expanding model's first key
  kRetrainFinish,   ///< detail = published model's first key; duration = §III-F total
  kTailModelAppend, ///< detail = tail model's first key
};

const char* EventTypeName(EventType t);

struct Event {
  EventType type;
  uint64_t at_ns;        ///< NowNanos() when the event completed
  uint64_t duration_ns;  ///< 0 for instantaneous events
  uint64_t detail;       ///< event-specific payload (see EventType)
};

/// A collapsed, point-in-time view of the registry.
struct Snapshot {
  uint64_t counters[kNumCounters] = {};
  uint64_t fp_hit_depth[kFpDepthBuckets] = {};
  int64_t gauges[kNumGauges] = {};
  std::vector<Event> events;  ///< oldest-first; at most the ring capacity
  uint64_t dropped_events = 0;  ///< events overwritten before this snapshot
  uint64_t at_ns = 0;

  uint64_t counter(Counter c) const { return counters[static_cast<size_t>(c)]; }
  int64_t gauge(Gauge g) const { return gauges[static_cast<size_t>(g)]; }

  /// Counters/histogram subtracted against `base`; gauges and the event list
  /// keep this snapshot's values (events already in `base` are dropped).
  Snapshot DeltaSince(const Snapshot& base) const;
};

class Registry {
 public:
  static constexpr size_t kShards = 64;  // power of two
  static constexpr size_t kEventCapacity = 256;

  static Registry& Global();

  void Inc(Counter c, uint64_t delta = 1) {
    Cell(ShardIndex(), static_cast<size_t>(c))
        .fetch_add(delta, std::memory_order_relaxed);
  }

  void IncFpDepth(int depth, uint64_t delta = 1) {
    if (depth < 0) depth = 0;
    if (depth >= static_cast<int>(kFpDepthBuckets)) depth = kFpDepthBuckets - 1;
    Cell(ShardIndex(), kNumCounters + static_cast<size_t>(depth))
        .fetch_add(delta, std::memory_order_relaxed);
  }

  void SetGauge(Gauge g, int64_t v) {
    gauges_[static_cast<size_t>(g)].store(v, std::memory_order_relaxed);
  }

  void RecordEvent(EventType type, uint64_t duration_ns, uint64_t detail);

  /// Collapse all shards + copy the event ring. Counter values across
  /// successive snapshots are monotonically non-decreasing.
  Snapshot TakeSnapshot() const;

  /// Zero every counter/gauge and clear the ring. Only safe while no thread
  /// is concurrently recording (between test cases / benchmark phases).
  void ResetForTest();

 private:
  Registry() = default;

  struct alignas(kCacheLineBytes) Shard {
    std::atomic<uint64_t> cells[kNumCounters + kFpDepthBuckets] = {};
  };

  std::atomic<uint64_t>& Cell(size_t shard, size_t i) {
    return shards_[shard].cells[i];
  }

  /// Round-robin shard assignment on first use per thread.
  size_t ShardIndex() {
    thread_local const size_t shard =
        next_shard_.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
    return shard;
  }

  mutable Shard shards_[kShards];
  std::atomic<int64_t> gauges_[kNumGauges] = {};
  std::atomic<size_t> next_shard_{0};

  mutable SpinLock event_lock_;
  Event events_[kEventCapacity] GUARDED_BY(event_lock_);
  uint64_t event_head_ GUARDED_BY(event_lock_) = 0;  ///< total events ever recorded
};

// ---------------------------------------------------------------------------
// Hot-path recording API. Compiled out under ALT_METRICS_DISABLED so the
// instrumentation cost itself can be measured (EXPERIMENTS.md "Metrics
// overhead").
// ---------------------------------------------------------------------------

#if defined(ALT_METRICS_DISABLED)
inline void Inc(Counter, uint64_t = 1) {}
inline void FpDepthHit(int, uint64_t = 1) {}
inline void SetGauge(Gauge, int64_t) {}
inline void RecordEvent(EventType, uint64_t, uint64_t) {}
#else
inline void Inc(Counter c, uint64_t delta = 1) { Registry::Global().Inc(c, delta); }
inline void FpDepthHit(int depth, uint64_t delta = 1) {
  Registry::Global().IncFpDepth(depth, delta);
}
inline void SetGauge(Gauge g, int64_t v) { Registry::Global().SetGauge(g, v); }
inline void RecordEvent(EventType type, uint64_t duration_ns, uint64_t detail) {
  Registry::Global().RecordEvent(type, duration_ns, detail);
}
#endif

/// Snapshot the global registry (all-zero under ALT_METRICS_DISABLED).
Snapshot TakeSnapshot();

/// Quiescent-only global reset (tests / between benchmark phases).
void ResetForTest();

/// Serialize `s` as one compact JSON object:
///   {"at_ns":..,"counters":{..},"fp_hit_depth":[..],"gauges":{..},
///    "events":[{"type":..,"at_ns":..,"duration_ns":..,"detail":..},..],
///    "dropped_events":..}
std::string ToJson(const Snapshot& s);

}  // namespace metrics
}  // namespace alt
