file(REMOVE_RECURSE
  "CMakeFiles/alt_art.dir/art/art_tree.cc.o"
  "CMakeFiles/alt_art.dir/art/art_tree.cc.o.d"
  "libalt_art.a"
  "libalt_art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
