// workload_explorer: compare every index in this repository on a workload of
// your choice — a command-line harness over the shared ConcurrentIndex facade.
//
//   $ ./build/examples/workload_explorer [dataset] [workload] [threads] [keys]
//   $ ./build/examples/workload_explorer osm balanced 4 200000
//
// datasets : libio osm fb longlat uniform lognormal sequential
// workloads: read-only read-heavy balanced write-heavy write-only scan
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/factory.h"
#include "common/epoch.h"
#include "datasets/dataset.h"
#include "workload/runner.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace alt;
  const std::string dataset_name = argc > 1 ? argv[1] : "osm";
  const std::string workload_name = argc > 2 ? argv[2] : "balanced";
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;
  const size_t num_keys = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 200000;

  Dataset dataset;
  WorkloadType workload;
  if (!ParseDataset(dataset_name, &dataset).ok() ||
      !ParseWorkload(workload_name, &workload).ok()) {
    std::fprintf(stderr,
                 "usage: %s [dataset] [workload] [threads] [keys]\n"
                 "datasets: libio osm fb longlat uniform lognormal sequential\n"
                 "workloads: read-only read-heavy balanced write-heavy "
                 "write-only scan\n",
                 argv[0]);
    return 2;
  }

  std::printf("dataset=%s workload=%s threads=%d keys=%zu\n\n",
              DatasetName(dataset), WorkloadName(workload), threads, num_keys);
  const auto keys = GenerateKeys(dataset, num_keys, 42);
  const auto setup = SplitDataset(keys, 0.5);

  std::printf("%-14s %10s %12s %12s %8s\n", "index", "Mops/s", "P99.9(us)",
              "mem(MB)", "failed");
  for (const auto& name : PaperIndexLineup()) {
    auto index = MakeIndex(name);
    std::vector<Value> vals(setup.loaded.size());
    for (size_t i = 0; i < vals.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
    if (!index->BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size()).ok()) {
      std::fprintf(stderr, "%s: bulk load failed\n", name.c_str());
      continue;
    }
    WorkloadOptions opts;
    opts.type = workload;
    opts.ops_per_thread = 50000;
    const auto streams = GenerateOpStreams(setup.loaded, setup.pool, threads, opts);
    const RunResult r = RunWorkload(index.get(), streams);
    std::printf("%-14s %10.2f %12.2f %12.1f %8llu\n", index->Name().c_str(),
                r.throughput_mops, static_cast<double>(r.p999_ns) / 1000.0,
                static_cast<double>(index->MemoryUsage()) / 1048576.0,
                static_cast<unsigned long long>(r.failed_ops));
    index.reset();
    EpochManager::Global().DrainAll();
  }
  return 0;
}
