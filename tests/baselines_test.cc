#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "common/epoch.h"
#include "common/random.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

// Every index behind the common facade must satisfy the same single-threaded
// contract; these parameterized tests run the full lineup (ALT-index, ALEX+,
// LIPP+, XIndex, FINEdex, ART, and the oracle itself).
class IndexContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    index_ = MakeIndex(GetParam());
    ASSERT_NE(index_, nullptr);
  }
  void TearDown() override {
    index_.reset();
    EpochManager::Global().DrainAll();
  }

  std::unique_ptr<ConcurrentIndex> index_;
};

TEST_P(IndexContractTest, BulkLoadRejectsUnsortedInput) {
  const Key keys[] = {5, 3};
  const Value vals[] = {1, 2};
  EXPECT_FALSE(index_->BulkLoad(keys, vals, 2).ok());
}

TEST_P(IndexContractTest, LoadLookupEveryDataset) {
  for (Dataset ds : PaperDatasets()) {
    auto index = MakeIndex(GetParam());
    auto keys = GenerateKeys(ds, 20000, 3);
    std::vector<Value> vals(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);
    ASSERT_TRUE(index->BulkLoad(keys.data(), vals.data(), keys.size()).ok());
    EXPECT_EQ(index->Size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      Value v;
      ASSERT_TRUE(index->Lookup(keys[i], &v))
          << index->Name() << " lost key " << i << " on " << DatasetName(ds);
      EXPECT_EQ(v, vals[i]);
    }
    // Absent keys miss.
    Value v;
    EXPECT_FALSE(index->Lookup(keys.back() + 12345, &v));
  }
}

TEST_P(IndexContractTest, InsertLookupRemoveCycle) {
  auto keys = GenerateKeys(Dataset::kOsm, 30000, 11);
  std::vector<Key> bulk, extra;
  for (size_t i = 0; i < keys.size(); ++i) (i % 2 ? extra : bulk).push_back(keys[i]);
  std::vector<Value> bulk_vals(bulk.size());
  for (size_t i = 0; i < bulk.size(); ++i) bulk_vals[i] = ValueFor(bulk[i]);
  ASSERT_TRUE(index_->BulkLoad(bulk.data(), bulk_vals.data(), bulk.size()).ok());

  for (Key k : extra) EXPECT_TRUE(index_->Insert(k, ValueFor(k)));
  for (Key k : extra) EXPECT_FALSE(index_->Insert(k, 0)) << "duplicate accepted";
  EXPECT_EQ(index_->Size(), keys.size());

  for (size_t i = 0; i < extra.size(); i += 2) {
    EXPECT_TRUE(index_->Remove(extra[i]));
  }
  for (size_t i = 0; i < extra.size(); ++i) {
    Value v;
    EXPECT_EQ(index_->Lookup(extra[i], &v), i % 2 == 1) << index_->Name() << " " << i;
  }
  // Removed keys can be re-inserted.
  for (size_t i = 0; i < extra.size(); i += 2) {
    EXPECT_TRUE(index_->Insert(extra[i], 999));
    Value v;
    ASSERT_TRUE(index_->Lookup(extra[i], &v));
    EXPECT_EQ(v, 999u);
  }
}

TEST_P(IndexContractTest, UpdateSemantics) {
  auto keys = GenerateKeys(Dataset::kLibio, 10000, 11);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index_->BulkLoad(keys.data(), vals.data(), keys.size()).ok());
  for (size_t i = 0; i < keys.size(); i += 3) {
    EXPECT_TRUE(index_->Update(keys[i], i));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    Value v;
    ASSERT_TRUE(index_->Lookup(keys[i], &v));
    EXPECT_EQ(v, i % 3 == 0 ? i : vals[i]);
  }
  EXPECT_FALSE(index_->Update(keys.back() + 7777, 1));
}

TEST_P(IndexContractTest, ScanIsSortedAndComplete) {
  auto keys = GenerateKeys(Dataset::kFb, 20000, 19);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index_->BulkLoad(keys.data(), vals.data(), keys.size()).ok());
  std::vector<std::pair<Key, Value>> out;
  Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    const size_t start = rng.NextBounded(keys.size() - 300);
    const size_t n = 1 + rng.NextBounded(200);
    ASSERT_EQ(index_->Scan(keys[start], n, &out), n) << index_->Name();
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i].first, keys[start + i])
          << index_->Name() << " scan diverges at " << i;
      EXPECT_EQ(out[i].second, vals[start + i]);
    }
  }
  // Scan starting past the max key returns nothing.
  EXPECT_EQ(index_->Scan(keys.back() + 1, 10, &out), 0u);
}

TEST_P(IndexContractTest, ScanSeesFreshInserts) {
  std::vector<Key> bulk;
  for (Key k = 0; k < 2000; k += 2) bulk.push_back(k + 1000000);
  std::vector<Value> vals(bulk.size());
  for (size_t i = 0; i < bulk.size(); ++i) vals[i] = ValueFor(bulk[i]);
  ASSERT_TRUE(index_->BulkLoad(bulk.data(), vals.data(), bulk.size()).ok());
  for (Key k = 1; k < 2000; k += 2) ASSERT_TRUE(index_->Insert(k + 1000000, k));
  std::vector<std::pair<Key, Value>> out;
  ASSERT_EQ(index_->Scan(1000000, 2000, &out), 2000u) << index_->Name();
  for (size_t i = 0; i < 2000; ++i) {
    EXPECT_EQ(out[i].first, 1000000 + i) << index_->Name() << " at " << i;
  }
}

TEST_P(IndexContractTest, MemoryUsageNonTrivial) {
  auto keys = GenerateKeys(Dataset::kUniform, 10000, 3);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index_->BulkLoad(keys.data(), vals.data(), keys.size()).ok());
  EXPECT_GT(index_->MemoryUsage(), keys.size() * sizeof(Key));
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexContractTest,
                         ::testing::Values("alt", "alex", "lipp", "xindex",
                                           "finedex", "art", "btree-olc", "btree"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(FactoryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeIndex("no-such-index"), nullptr);
}

TEST(FactoryTest, LineupMatchesPaper) {
  const auto lineup = PaperIndexLineup();
  EXPECT_EQ(lineup.size(), 6u);
  for (const auto& name : lineup) {
    EXPECT_NE(MakeIndex(name), nullptr) << name;
  }
  EpochManager::Global().DrainAll();
}

// Oracle cross-check: replay a deterministic mixed op sequence on each index
// and on std::map; final states must agree exactly.
class OracleCrossCheckTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OracleCrossCheckTest, RandomOpsMatchStdMap) {
  auto index = MakeIndex(GetParam());
  ASSERT_NE(index, nullptr);
  auto keys = GenerateKeys(Dataset::kLonglat, 8000, 27);
  std::vector<Key> bulk(keys.begin(), keys.begin() + 4000);
  std::vector<Value> vals(bulk.size());
  for (size_t i = 0; i < bulk.size(); ++i) vals[i] = ValueFor(bulk[i]);
  ASSERT_TRUE(index->BulkLoad(bulk.data(), vals.data(), bulk.size()).ok());
  std::map<Key, Value> oracle;
  for (size_t i = 0; i < bulk.size(); ++i) oracle[bulk[i]] = vals[i];

  Rng rng(123);
  for (int op = 0; op < 40000; ++op) {
    const Key k = keys[rng.NextBounded(keys.size())];
    switch (rng.NextBounded(4)) {
      case 0: {  // insert
        const bool inserted = index->Insert(k, op);
        EXPECT_EQ(inserted, oracle.emplace(k, op).second) << "op " << op;
        break;
      }
      case 1: {  // remove
        EXPECT_EQ(index->Remove(k), oracle.erase(k) > 0) << "op " << op;
        break;
      }
      case 2: {  // update
        auto it = oracle.find(k);
        const bool updated = index->Update(k, op + 1);
        EXPECT_EQ(updated, it != oracle.end()) << "op " << op;
        if (it != oracle.end()) it->second = op + 1;
        break;
      }
      default: {  // lookup
        Value v;
        const bool found = index->Lookup(k, &v);
        auto it = oracle.find(k);
        ASSERT_EQ(found, it != oracle.end()) << "op " << op;
        if (found) EXPECT_EQ(v, it->second) << "op " << op;
        break;
      }
    }
  }
  // Full-state comparison via a giant scan.
  std::vector<std::pair<Key, Value>> out;
  index->Scan(0, oracle.size() + 10, &out);
  ASSERT_EQ(out.size(), oracle.size()) << index->Name();
  size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(out[i].first, k) << "at " << i;
    EXPECT_EQ(out[i].second, v);
    ++i;
  }
  EpochManager::Global().DrainAll();
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, OracleCrossCheckTest,
                         ::testing::Values("alt", "alex", "lipp", "xindex",
                                           "finedex", "art", "btree-olc"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace alt
