#include "datasets/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace alt {

Status ParseDataset(const std::string& name, Dataset* out) {
  if (name == "libio") {
    *out = Dataset::kLibio;
  } else if (name == "osm") {
    *out = Dataset::kOsm;
  } else if (name == "fb") {
    *out = Dataset::kFb;
  } else if (name == "longlat") {
    *out = Dataset::kLonglat;
  } else if (name == "uniform") {
    *out = Dataset::kUniform;
  } else if (name == "lognormal") {
    *out = Dataset::kLognormal;
  } else if (name == "sequential") {
    *out = Dataset::kSequential;
  } else {
    return Status::InvalidArgument("unknown dataset: " + name);
  }
  return Status::OK();
}

const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kLibio: return "libio";
    case Dataset::kOsm: return "osm";
    case Dataset::kFb: return "fb";
    case Dataset::kLonglat: return "longlat";
    case Dataset::kUniform: return "uniform";
    case Dataset::kLognormal: return "lognormal";
    case Dataset::kSequential: return "sequential";
  }
  return "?";
}

std::vector<Dataset> PaperDatasets() {
  return {Dataset::kLibio, Dataset::kOsm, Dataset::kFb, Dataset::kLonglat};
}

namespace {

void SortDedup(std::vector<Key>& keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
}

// Refill after dedup until exactly n distinct keys, drawing from `gen`.
template <typename Gen>
std::vector<Key> FillDistinct(size_t n, Gen gen) {
  std::vector<Key> keys;
  keys.reserve(n + n / 8);
  while (true) {
    while (keys.size() < n + n / 16 + 16) keys.push_back(gen());
    SortDedup(keys);
    if (keys.size() >= n) {
      keys.resize(n);
      return keys;
    }
  }
}

// libraries.io repository IDs: a dense auto-increment sequence where spans of
// IDs were deleted or skipped -> long near-linear runs with occasional jumps.
std::vector<Key> GenLibio(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> keys;
  keys.reserve(n);
  Key cur = 1000000;
  while (keys.size() < n) {
    // Runs of consecutive IDs with small per-step jitter...
    size_t run = 1000 + rng.NextBounded(20000);
    if (run > n - keys.size()) run = n - keys.size();
    for (size_t i = 0; i < run; ++i) {
      cur += 1 + rng.NextBounded(3);  // mostly dense
      keys.push_back(cur);
    }
    // ...separated by a bursty gap (deleted range).
    cur += 1000 + rng.NextBounded(500000);
  }
  return keys;
}

// OpenStreetMap cell IDs sampled uniformly: uniform over a wide 64-bit range.
std::vector<Key> GenOsm(size_t n, uint64_t seed) {
  Rng rng(seed);
  return FillDistinct(n, [&] { return rng.Next() >> 1; });
}

// Facebook user IDs: allocated in generations with exponentially growing
// magnitudes and lognormal spacing -> heavy-tailed gap distribution that is
// hard to fit with few linear pieces.
std::vector<Key> GenFb(size_t n, uint64_t seed) {
  Rng rng(seed);
  return FillDistinct(n, [&] {
    // Mixture over 8 "generations": base grows by ~16x per generation,
    // offsets are lognormal within one.
    const uint64_t gen = rng.NextBounded(8);
    const double base = std::pow(2.0, 34.0 + 3.5 * static_cast<double>(gen));
    const double x = std::exp(rng.NextGaussian() * 1.8 + 2.0);
    const uint64_t k = static_cast<uint64_t>(base * (1.0 + x * 0.01));
    return k;
  });
}

// longitude|latitude product transform: cluster centers over the globe with
// Gaussian spread, packed as (lon_scaled * 2^32 + lat_scaled) -> strongly
// multimodal CDF, the hardest to fit.
std::vector<Key> GenLonglat(size_t n, uint64_t seed) {
  Rng rng(seed);
  constexpr int kClusters = 64;
  double lon_c[kClusters], lat_c[kClusters];
  for (int i = 0; i < kClusters; ++i) {
    lon_c[i] = rng.NextDouble() * 360.0 - 180.0;
    lat_c[i] = rng.NextDouble() * 180.0 - 90.0;
  }
  return FillDistinct(n, [&] {
    const int c = static_cast<int>(rng.NextBounded(kClusters));
    double lon = lon_c[c] + rng.NextGaussian() * 2.0;
    double lat = lat_c[c] + rng.NextGaussian() * 2.0;
    if (lon < -180) lon += 360;
    if (lon > 180) lon -= 360;
    if (lat < -90) lat = -90;
    if (lat > 90) lat = 90;
    const uint64_t lon_s = static_cast<uint64_t>((lon + 180.0) / 360.0 * 4294967295.0);
    const uint64_t lat_s = static_cast<uint64_t>((lat + 90.0) / 180.0 * 4294967295.0);
    return (lon_s << 32) | lat_s;
  });
}

std::vector<Key> GenUniform(size_t n, uint64_t seed) {
  Rng rng(seed);
  return FillDistinct(n, [&] { return rng.Next(); });
}

std::vector<Key> GenLognormal(size_t n, uint64_t seed) {
  Rng rng(seed);
  return FillDistinct(n, [&] {
    const double x = std::exp(rng.NextGaussian() * 2.0 + 10.0);
    return static_cast<uint64_t>(x * 1e3);
  });
}

std::vector<Key> GenSequential(size_t n, uint64_t) {
  std::vector<Key> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = i + 1;
  return keys;
}

}  // namespace

std::vector<Key> GenerateKeys(Dataset dataset, size_t n, uint64_t seed) {
  switch (dataset) {
    case Dataset::kLibio: return GenLibio(n, seed);
    case Dataset::kOsm: return GenOsm(n, seed);
    case Dataset::kFb: return GenFb(n, seed);
    case Dataset::kLonglat: return GenLonglat(n, seed);
    case Dataset::kUniform: return GenUniform(n, seed);
    case Dataset::kLognormal: return GenLognormal(n, seed);
    case Dataset::kSequential: return GenSequential(n, seed);
  }
  return {};
}

}  // namespace alt
