file(REMOVE_RECURSE
  "CMakeFiles/fast_pointer_test.dir/fast_pointer_test.cc.o"
  "CMakeFiles/fast_pointer_test.dir/fast_pointer_test.cc.o.d"
  "fast_pointer_test"
  "fast_pointer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_pointer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
