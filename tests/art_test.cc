#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "art/art_tree.h"
#include "common/epoch.h"
#include "common/random.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

using art::ArtTree;
using art::HintOutcome;

class ArtTest : public ::testing::Test {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

TEST_F(ArtTest, EmptyTreeLookupMisses) {
  ArtTree tree;
  EpochGuard g;
  Value v;
  EXPECT_FALSE(tree.Lookup(123, &v));
  EXPECT_EQ(tree.Size(), 0u);
}

TEST_F(ArtTest, InsertAndLookupSingle) {
  ArtTree tree;
  EpochGuard g;
  EXPECT_TRUE(tree.Insert(42, 4200));
  Value v = 0;
  EXPECT_TRUE(tree.Lookup(42, &v));
  EXPECT_EQ(v, 4200u);
  EXPECT_EQ(tree.Size(), 1u);
}

TEST_F(ArtTest, DuplicateInsertRejected) {
  ArtTree tree;
  EpochGuard g;
  EXPECT_TRUE(tree.Insert(42, 1));
  EXPECT_FALSE(tree.Insert(42, 2));
  Value v;
  ASSERT_TRUE(tree.Lookup(42, &v));
  EXPECT_EQ(v, 1u);
}

TEST_F(ArtTest, KeyZeroAndMaxAreLegal) {
  ArtTree tree;
  EpochGuard g;
  EXPECT_TRUE(tree.Insert(0, 100));
  EXPECT_TRUE(tree.Insert(~Key{0}, 200));
  Value v;
  EXPECT_TRUE(tree.Lookup(0, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(tree.Lookup(~Key{0}, &v));
  EXPECT_EQ(v, 200u);
}

TEST_F(ArtTest, SimilarKeysForcePrefixSplits) {
  // Keys sharing long prefixes exercise leaf splits and path compression.
  ArtTree tree;
  EpochGuard g;
  std::vector<Key> keys = {0x1111111111111100ULL, 0x1111111111111101ULL,
                           0x1111111111110000ULL, 0x1111111100000000ULL,
                           0x1111000000000000ULL, 0x1111111111111110ULL};
  for (size_t i = 0; i < keys.size(); ++i) EXPECT_TRUE(tree.Insert(keys[i], i));
  for (size_t i = 0; i < keys.size(); ++i) {
    Value v;
    ASSERT_TRUE(tree.Lookup(keys[i], &v)) << std::hex << keys[i];
    EXPECT_EQ(v, i);
  }
  // Near misses must not match.
  Value v;
  EXPECT_FALSE(tree.Lookup(0x1111111111111102ULL, &v));
  EXPECT_FALSE(tree.Lookup(0x1111111111110001ULL, &v));
}

TEST_F(ArtTest, NodeGrowthThroughAllFanouts) {
  // 256 keys differing in one byte grow a node 4 -> 16 -> 48 -> 256.
  ArtTree tree;
  EpochGuard g;
  for (uint64_t b = 0; b < 256; ++b) {
    ASSERT_TRUE(tree.Insert(0xAA00000000000000ULL | (b << 32), b));
  }
  auto stats = tree.CollectStats();
  EXPECT_GE(stats.n256, 1u);
  for (uint64_t b = 0; b < 256; ++b) {
    Value v;
    ASSERT_TRUE(tree.Lookup(0xAA00000000000000ULL | (b << 32), &v));
    EXPECT_EQ(v, b);
  }
}

TEST_F(ArtTest, UpdateInPlace) {
  ArtTree tree;
  EpochGuard g;
  tree.Insert(7, 1);
  EXPECT_TRUE(tree.Update(7, 99));
  Value v;
  ASSERT_TRUE(tree.Lookup(7, &v));
  EXPECT_EQ(v, 99u);
  EXPECT_FALSE(tree.Update(8, 1));
}

TEST_F(ArtTest, RemoveBasic) {
  ArtTree tree;
  EpochGuard g;
  tree.Insert(1, 10);
  tree.Insert(2, 20);
  tree.Insert(3, 30);
  Value old = 0;
  EXPECT_TRUE(tree.Remove(2, &old));
  EXPECT_EQ(old, 20u);
  Value v;
  EXPECT_FALSE(tree.Lookup(2, &v));
  EXPECT_TRUE(tree.Lookup(1, &v));
  EXPECT_TRUE(tree.Lookup(3, &v));
  EXPECT_FALSE(tree.Remove(2));
  EXPECT_EQ(tree.Size(), 2u);
}

TEST_F(ArtTest, RemoveMergesAndShrinksNodes) {
  ArtTree tree;
  EpochGuard g;
  std::vector<Key> keys;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Next());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (size_t i = 0; i < keys.size(); ++i) tree.Insert(keys[i], i);
  // Remove every second key, then verify the rest.
  for (size_t i = 0; i < keys.size(); i += 2) EXPECT_TRUE(tree.Remove(keys[i]));
  for (size_t i = 0; i < keys.size(); ++i) {
    Value v;
    EXPECT_EQ(tree.Lookup(keys[i], &v), i % 2 == 1) << i;
  }
  // Remove everything; tree drains to just the root.
  for (size_t i = 1; i < keys.size(); i += 2) EXPECT_TRUE(tree.Remove(keys[i]));
  EXPECT_EQ(tree.Size(), 0u);
  auto stats = tree.CollectStats();
  EXPECT_EQ(stats.leaves, 0u);
}

TEST_F(ArtTest, ScanReturnsSortedRange) {
  ArtTree tree;
  EpochGuard g;
  std::vector<Key> keys = GenerateKeys(Dataset::kOsm, 5000, 77);
  for (size_t i = 0; i < keys.size(); ++i) tree.Insert(keys[i], ValueFor(keys[i]));
  std::vector<std::pair<Key, Value>> out;
  const size_t got = tree.Scan(keys[1000], 200, &out);
  ASSERT_EQ(got, 200u);
  for (size_t i = 0; i < got; ++i) {
    EXPECT_EQ(out[i].first, keys[1000 + i]);
    EXPECT_EQ(out[i].second, ValueFor(keys[1000 + i]));
  }
}

TEST_F(ArtTest, ScanPastEndTruncates) {
  ArtTree tree;
  EpochGuard g;
  for (Key k = 10; k < 20; ++k) tree.Insert(k, k);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(tree.Scan(15, 100, &out), 5u);
  EXPECT_EQ(tree.Scan(100, 10, &out), 0u);
}

TEST_F(ArtTest, RangeQueryInclusive) {
  ArtTree tree;
  EpochGuard g;
  for (Key k = 0; k < 100; ++k) tree.Insert(k * 10, k);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(tree.RangeQuery(100, 200, &out), 11u);
  EXPECT_EQ(out.front().first, 100u);
  EXPECT_EQ(out.back().first, 200u);
}

TEST_F(ArtTest, FindLcaCoversRange) {
  ArtTree tree;
  EpochGuard g;
  std::vector<Key> keys = GenerateKeys(Dataset::kFb, 20000, 3);
  for (size_t i = 0; i < keys.size(); ++i) tree.Insert(keys[i], i);
  Rng rng(9);
  for (int t = 0; t < 200; ++t) {
    const size_t a = rng.NextBounded(keys.size());
    const size_t b = std::min(a + 1 + rng.NextBounded(50), keys.size() - 1);
    int depth = 0;
    art::Node* lca = tree.FindLcaNode(keys[a], keys[b], &depth);
    ASSERT_NE(lca, nullptr);
    EXPECT_EQ(depth, lca->match_level.load());
    // Every key in [a, b] must be findable from the LCA.
    for (size_t i = a; i <= b; i += std::max<size_t>(1, (b - a) / 5)) {
      Value v;
      EXPECT_EQ(tree.LookupFrom(lca, keys[i], &v), HintOutcome::kFound);
      EXPECT_EQ(v, i);
    }
  }
}

TEST_F(ArtTest, LookupFromRootEqualsLookup) {
  ArtTree tree;
  EpochGuard g;
  for (Key k = 1; k <= 1000; ++k) tree.Insert(k * 7919, k);
  for (Key k = 1; k <= 1000; ++k) {
    Value v;
    EXPECT_EQ(tree.LookupFrom(tree.root(), k * 7919, &v), HintOutcome::kFound);
    EXPECT_EQ(v, k);
  }
  Value v;
  EXPECT_EQ(tree.LookupFrom(tree.root(), 13, &v), HintOutcome::kNotFound);
}

TEST_F(ArtTest, InsertFromHintSubtree) {
  ArtTree tree;
  EpochGuard g;
  // Build a subtree under a shared 4-byte prefix.
  const Key base = 0xDEADBEEF00000000ULL;
  for (uint64_t i = 0; i < 1000; ++i) tree.Insert(base | (i * 3), i);
  int depth = 0;
  art::Node* lca = tree.FindLcaNode(base, base | 0xFFFFFFFF, &depth);
  ASSERT_NE(lca, nullptr);
  // Insert new keys through the hint.
  int need_root = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    const Key k = base | (i * 3 + 1);
    const HintOutcome r = tree.InsertFrom(lca, k, i + 5000);
    if (r == HintOutcome::kNeedRoot) {
      ++need_root;
      EXPECT_TRUE(tree.Insert(k, i + 5000));
    } else {
      EXPECT_EQ(r, HintOutcome::kInserted);
    }
  }
  for (uint64_t i = 0; i < 1000; ++i) {
    Value v;
    ASSERT_TRUE(tree.Lookup(base | (i * 3 + 1), &v)) << i;
    EXPECT_EQ(v, i + 5000);
  }
  // Duplicate through hint reports kExists.
  EXPECT_EQ(tree.InsertFrom(lca, base | 1, 0), HintOutcome::kExists);
}

TEST_F(ArtTest, MatchLevelConsistentAfterMutations) {
  ArtTree tree;
  EpochGuard g;
  std::vector<Key> keys = GenerateKeys(Dataset::kLonglat, 20000, 21);
  for (size_t i = 0; i < keys.size(); ++i) tree.Insert(keys[i], i);
  for (size_t i = 0; i < keys.size(); i += 3) tree.Remove(keys[i]);
  // The root always sits at depth 0 with no compressed path.
  EXPECT_EQ(tree.root()->match_level.load(), 0);
  EXPECT_EQ(tree.root()->prefix_len.load(), 0);
  // Sampled check via FindLcaNode on random ranges: the reported depth must
  // equal the node's own match_level after all the splits/merges above.
  Rng rng(3);
  for (int t = 0; t < 100; ++t) {
    const size_t a = rng.NextBounded(keys.size() - 2);
    int depth = 0;
    art::Node* lca = tree.FindLcaNode(keys[a], keys[a + 1], &depth);
    EXPECT_EQ(lca->match_level.load(), depth);
    EXPECT_LE(depth, 7);
  }
}

TEST_F(ArtTest, CollectStatsCountsEverything) {
  ArtTree tree;
  EpochGuard g;
  auto keys = GenerateKeys(Dataset::kUniform, 10000, 31);
  for (size_t i = 0; i < keys.size(); ++i) tree.Insert(keys[i], i);
  auto stats = tree.CollectStats();
  EXPECT_EQ(stats.leaves, keys.size());
  EXPECT_GT(stats.bytes, keys.size() * sizeof(art::Leaf));
  EXPECT_GT(stats.n4 + stats.n16 + stats.n48 + stats.n256, 0u);
  EXPECT_LE(stats.height, 9u);
  EXPECT_EQ(tree.MemoryUsage(), stats.bytes);
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

TEST_F(ArtTest, ConcurrentDisjointInserts) {
  ArtTree tree;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        EpochGuard g;
        const Key k = (static_cast<Key>(t) << 56) | (rng.Next() >> 8);
        tree.Insert(k, static_cast<Value>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EpochGuard g;
  auto stats = tree.CollectStats();
  EXPECT_EQ(stats.leaves, tree.Size());
}

TEST_F(ArtTest, ConcurrentMixedReadWriteRemove) {
  ArtTree tree;
  std::vector<Key> keys = GenerateKeys(Dataset::kOsm, 40000, 55);
  {
    EpochGuard g;
    for (size_t i = 0; i < keys.size(); i += 2) tree.Insert(keys[i], i);
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  // Writers insert the odd keys; removers delete multiples of 6 (even);
  // readers hammer lookups of keys nobody is touching (i % 6 in {2, 4}).
  threads.emplace_back([&] {
    EpochGuard g;
    for (size_t i = 1; i < keys.size(); i += 2) {
      if (!tree.Insert(keys[i], i)) failed.store(true);
    }
  });
  threads.emplace_back([&] {
    EpochGuard g;
    for (size_t i = 0; i < keys.size(); i += 6) {
      if (!tree.Remove(keys[i])) failed.store(true);
    }
  });
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      EpochGuard g;
      for (size_t i = 2 + 2 * static_cast<size_t>(r); i < keys.size(); i += 6) {
        Value v;
        if (!tree.Lookup(keys[i], &v) || v != i) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  // Final state: odd keys present, multiples of 6 absent, rest present.
  EpochGuard g;
  for (size_t i = 0; i < keys.size(); ++i) {
    Value v;
    const bool expect_present = (i % 2 == 1) || (i % 6 != 0);
    EXPECT_EQ(tree.Lookup(keys[i], &v), expect_present) << i;
  }
}

TEST_F(ArtTest, ConcurrentScansDuringInserts) {
  ArtTree tree;
  std::vector<Key> keys = GenerateKeys(Dataset::kLibio, 20000, 66);
  {
    EpochGuard g;
    for (size_t i = 0; i < keys.size(); i += 2) tree.Insert(keys[i], i);
  }
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    EpochGuard g;
    for (size_t i = 1; i < keys.size(); i += 2) tree.Insert(keys[i], i);
  });
  std::thread scanner([&] {
    EpochGuard g;
    std::vector<std::pair<Key, Value>> out;
    for (int r = 0; r < 50; ++r) {
      tree.Scan(keys[r * 100], 100, &out);
      for (size_t i = 1; i < out.size(); ++i) {
        if (out[i - 1].first >= out[i].first) failed.store(true);
      }
    }
  });
  writer.join();
  scanner.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace alt
