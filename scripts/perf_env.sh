#!/usr/bin/env bash
# perf_env.sh — report (and optionally pin) the machine state that makes
# micro-architectural benchmark numbers comparable (DESIGN.md §10).
#
# Usage:
#   scripts/perf_env.sh report   # print the current state; never fails
#   scripts/perf_env.sh tune     # best-effort pinning (needs root for most)
#
# "report" is what CI's bench-smoke runs before --perf_stat benchmarks, so
# every recorded number carries the environment it was taken in. "tune" is for
# local runs on real hardware: it pins the cpufreq governor to `performance`,
# disables turbo, and lowers perf_event_paranoid so the hardware counter tier
# opens. Every step degrades gracefully — a container or VM without the knob
# just reports "n/a".

set -u

mode="${1:-report}"

read_file() {
  if [ -r "$1" ]; then
    tr -d '\n' < "$1"
  else
    printf 'n/a'
  fi
}

write_file() {  # write_file VALUE PATH
  if [ -w "$2" ]; then
    printf '%s' "$1" > "$2" 2>/dev/null && return 0
  fi
  return 1
}

report() {
  echo "== perf environment =="
  echo "kernel:               $(uname -r)"
  echo "nproc:                $(nproc 2>/dev/null || echo n/a)"
  echo "perf_event_paranoid:  $(read_file /proc/sys/kernel/perf_event_paranoid)"
  echo "  (<=2 lets unprivileged perf_event_open count user-space events;"
  echo "   --perf_stat degrades to software/TSC tiers otherwise)"
  echo "thp enabled:          $(read_file /sys/kernel/mm/transparent_hugepage/enabled)"
  echo "  (AltOptions::use_huge_pages needs 'always' or 'madvise')"
  echo "turbo (intel no_turbo): $(read_file /sys/devices/system/cpu/intel_pstate/no_turbo)"
  echo "boost (acpi cpufreq):   $(read_file /sys/devices/system/cpu/cpufreq/boost)"
  gov="/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"
  echo "cpu0 governor:        $(read_file "$gov")"
  if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
    echo "avx2:                 yes"
  else
    echo "avx2:                 no (read path runs the scalar twin)"
  fi
  echo "ALT_FORCE_SCALAR:     ${ALT_FORCE_SCALAR:-<unset>}"
}

tune() {
  ok=0; skipped=0
  # Hardware counters for unprivileged --perf_stat runs.
  if write_file 1 /proc/sys/kernel/perf_event_paranoid; then
    echo "set perf_event_paranoid=1"; ok=$((ok+1))
  else
    echo "skip perf_event_paranoid (need root)"; skipped=$((skipped+1))
  fi
  # Frequency pinning: TSC deltas and cycle counts only compare across runs
  # when the clock does not wander.
  for cpu_gov in /sys/devices/system/cpu/cpu*/cpufreq/scaling_governor; do
    [ -e "$cpu_gov" ] || continue
    write_file performance "$cpu_gov" || true
  done
  if write_file 1 /sys/devices/system/cpu/intel_pstate/no_turbo; then
    echo "disabled turbo (intel_pstate)"; ok=$((ok+1))
  elif write_file 0 /sys/devices/system/cpu/cpufreq/boost; then
    echo "disabled boost (acpi-cpufreq)"; ok=$((ok+1))
  else
    echo "skip turbo/boost (knob absent or need root)"; skipped=$((skipped+1))
  fi
  # Huge pages for AltOptions::use_huge_pages benchmarking.
  if write_file madvise /sys/kernel/mm/transparent_hugepage/enabled; then
    echo "set thp=madvise"; ok=$((ok+1))
  else
    echo "skip thp (knob absent or need root)"; skipped=$((skipped+1))
  fi
  echo "tune done: $ok applied, $skipped skipped"
  report
}

case "$mode" in
  report) report ;;
  tune) tune ;;
  *) echo "usage: $0 [report|tune]" >&2; exit 2 ;;
esac
