#pragma once

#include <atomic>

#include "common/debug_checks.h"
#include "common/thread_annotations.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace alt {

/// Pause the core briefly inside a spin loop (reduces bus traffic on x86).
inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// \brief Tiny test-and-test-and-set spin lock.
///
/// Used where the critical section is a handful of stores (fast pointer buffer
/// entries, §III-E "we use spin locks in the fast pointer buffer").
///
/// Annotated as a clang thread-safety capability; prefer the SpinLockGuard
/// RAII guard (std::lock_guard acquisitions are invisible to the analysis).
class CAPABILITY("mutex") SpinLock {
 public:
  void lock() ACQUIRE() {
    // Recorded before the spin so a same-thread double-lock aborts with a
    // diagnostic instead of spinning forever.
    ALT_DEBUG_NOTE_ACQUIRED(this, "spinlock");
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) CpuRelax();
    }
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (flag_.exchange(true, std::memory_order_acquire)) return false;
    ALT_DEBUG_NOTE_ACQUIRED(this, "spinlock");
    return true;
  }

  void unlock() RELEASE() {
    ALT_DEBUG_NOTE_RELEASED(this, "spinlock");
    ALT_DEBUG_CHECK(flag_.load(std::memory_order_relaxed), "spinlock",
                    "unlock of a lock that is not locked", this);
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLock, visible to the thread-safety analysis (use this
/// instead of std::lock_guard<SpinLock>).
class SCOPED_CAPABILITY SpinLockGuard {
 public:
  // ALT_LINT_ALLOW(alt-raw-lock): RAII guard implementation — the one place
  // SpinLock::lock()/unlock() are driven by hand.
  explicit SpinLockGuard(SpinLock& lock) ACQUIRE(lock) : lock_(lock) { lock_.lock(); }
  // ALT_LINT_ALLOW(alt-raw-lock): RAII guard implementation (see ctor).
  ~SpinLockGuard() RELEASE() { lock_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace alt
