#pragma once

/// \file
/// Source annotations consumed by tools/alt_lint (and, under clang, kept in
/// the AST as `annotate` attributes so future AST-based tooling sees them
/// too). No runtime effect on any compiler.

/// \brief Marks a function whose body touches epoch-retired memory (GplModel
/// slot arrays, art::Node trees, FastPointerBuffer segments) WITHOUT pinning
/// the epoch itself.
///
/// The contract: callers must run it inside an epoch-pinned scope — a live
/// alt::EpochGuard, or a scope asserted with ALT_ASSERT_EPOCH_PINNED — or
/// must themselves be ALT_REQUIRES_EPOCH, pushing the obligation outward.
/// `alt-lint`'s `alt-epoch-pinned` check collects every annotated function
/// name across src/ and flags any call that is not dominated by pin evidence.
///
/// This is the static mirror of the PR-2 runtime validators: EpochManager::
/// AssertPinned aborts (under ALT_DEBUG_CHECKS) when an unpinned thread
/// reaches a protected region at runtime; ALT_REQUIRES_EPOCH lets alt-lint
/// prove the property at review time, before any thread runs. Placement is
/// trailing, like the thread-safety macros:
///
///   const GplSlot* ProbeSlot(size_t i) const ALT_REQUIRES_EPOCH;
#if defined(__clang__) && !defined(SWIG)
#define ALT_REQUIRES_EPOCH __attribute__((annotate("alt::requires_epoch")))
#else
#define ALT_REQUIRES_EPOCH  // no-op; alt-lint keys off the token itself
#endif
