file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_gpl.dir/bench_micro_gpl.cc.o"
  "CMakeFiles/bench_micro_gpl.dir/bench_micro_gpl.cc.o.d"
  "bench_micro_gpl"
  "bench_micro_gpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_gpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
