// Reproduces Fig. 9: scalability under the read-write-balanced workload as
// the thread count grows (paper: 1..32 on 36 physical cores). NOTE: this
// container has a single CPU core, so absolute throughput cannot rise with
// threads; the sweep still exercises contention behaviour (see
// EXPERIMENTS.md for the interpretation).
#include <thread>

#include "bench_common.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u\n", hw);
  for (Dataset d : cfg.datasets) {
    const auto keys = LoadKeys(cfg, d);
    PrintHeader(std::string("Fig. 9: scalability, balanced workload, ") +
                    DatasetName(d) + " (Mops/s)",
                {"Threads", "ALT", "ALEX+", "LIPP+", "FINEdex", "XIndex", "ART"});
    for (int threads : {1, 2, 4, 8, 16, 32}) {
      BenchConfig c = cfg;
      c.threads = threads;
      // Keep total work constant across thread counts.
      c.ops_per_thread = std::max<size_t>(
          1000, cfg.ops_per_thread * static_cast<size_t>(cfg.threads) /
                    static_cast<size_t>(threads));
      std::vector<std::string> row{std::to_string(threads)};
      for (const char* name : {"alt", "alex", "lipp", "finedex", "xindex", "art"}) {
        const RunResult r = RunOne(c, name, keys, WorkloadType::kBalanced);
        row.push_back(Fmt(r.throughput_mops));
      }
      PrintRow(row);
    }
  }
  return 0;
}
