# Empty compiler generated dependencies file for bench_micro_gpl.
# This may be replaced when dependencies are built.
