#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/key_codec.h"

namespace alt {

/// One linear segment produced by a segmentation pass over sorted keys.
struct Segment {
  size_t start;   ///< index of the first key of the segment
  size_t length;  ///< number of keys
  double slope;   ///< positions per key-unit, anchored at the first key
};

/// \brief Greedy Pessimistic Linear segmentation (paper Algorithm 1).
///
/// Scans the sorted keys once. Each segment's candidate line is anchored at
/// its first key; `upper_slope` / `lower_slope` track the max/min slopes from
/// the anchor to every accepted point. With the final model slope chosen as
/// the midpoint, every accepted point's prediction error is bounded by
/// (upper - lower)/2 * dx <= epsilon (the Fig. 4(c) parallelogram argument),
/// so the split test is (upper - lower) * dx > 2 * epsilon.
///
/// O(n) time, O(1) state per segment.
std::vector<Segment> GplSegment(const Key* keys, size_t n, double epsilon);

/// \brief ShrinkingCone segmentation (FITing-tree, Galakatos et al. 2019),
/// implemented for the algorithm-comparison benches (Fig. 4) and as the
/// LPA-style splitter of the FINEdex baseline.
///
/// The cone's apex is the segment's first point; each accepted point (x, y)
/// narrows the feasible slope interval to lines passing within +-epsilon of
/// it. A point outside the cone starts a new segment.
std::vector<Segment> ShrinkingConeSegment(const Key* keys, size_t n, double epsilon);

/// Largest absolute prediction error of `seg` over its keys, using the
/// anchored line `pos = slope * (key - keys[start])`. Test/validation helper.
double MaxSegmentError(const Key* keys, const Segment& seg);

}  // namespace alt
