// Death tests for the ALT_DEBUG_CHECKS dynamic checkers: each test seeds one
// concrete lock-protocol or epoch-guard misuse and proves the checker aborts
// with its diagnostic, plus a positive churn test showing correct concurrent
// usage stays quiet. Compiled only when the option is on (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "art/art_tree.h"
#include "common/epoch.h"
#include "common/optlock.h"
#include "common/spinlock.h"
#include "common/version_lock.h"
#include "core/alt_index.h"
#include "core/gpl_model.h"

#if !defined(ALT_DEBUG_CHECKS)
#error "debug_checks_test requires -DALT_DEBUG_CHECKS=ON (see tests/CMakeLists.txt)"
#endif

namespace alt {
namespace {

// All death statements run threads or spin loops; the fork-per-assertion
// "threadsafe" style re-executes the binary so the child is single-threaded
// until the statement itself runs.
class DebugChecksDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

// --- version-lock protocol checker: SpinLock ---

TEST_F(DebugChecksDeathTest, SpinLockDoubleLockAborts) {
  SpinLock l;
  l.lock();
  // Without the checker this would spin forever (TTAS locks don't recurse).
  EXPECT_DEATH(l.lock(), "spinlock: double-lock");
  l.unlock();
}

TEST_F(DebugChecksDeathTest, SpinLockUnlockWithoutLockAborts) {
  SpinLock l;
  EXPECT_DEATH(l.unlock(), "spinlock: unlock-without-lock");
}

// --- version-lock protocol checker: SlotWord (GPL slot seqlock) ---

TEST_F(DebugChecksDeathTest, SlotWordDoubleLockAborts) {
  GplSlot s;
  const uint32_t w = s.word.Lock();
  EXPECT_DEATH(s.word.Lock(), "slot-word: double-lock");
  s.word.Unlock(w, SlotState::kOccupied);
}

TEST_F(DebugChecksDeathTest, SlotWordUnlockWithoutLockAborts) {
  GplSlot s;
  EXPECT_DEATH(s.word.Unlock(0, SlotState::kOccupied),
               "slot-word: unlock-without-lock");
}

TEST_F(DebugChecksDeathTest, SlotWordStaleUnlockTokenAborts) {
  GplSlot s;
  const uint32_t w = s.word.Lock();
  // Publishing from a stale token would rewind the sequence number and let a
  // racing reader validate a torn snapshot.
  EXPECT_DEATH(s.word.Unlock(w + (1u << 3), SlotState::kOccupied),
               "slot-word: Unlock without the lock held or with a stale token");
  s.word.Unlock(w, SlotState::kOccupied);
}

TEST_F(DebugChecksDeathTest, SlotWordReadWhileWriteHeldAborts) {
  GplSlot s;
  const uint32_t w = s.word.Lock();
  // Read() spins until the lock bit clears; self-read would hang forever.
  EXPECT_DEATH(s.word.Read(), "slot-word: Read while this thread holds");
  s.word.Unlock(w, SlotState::kOccupied);
}

// --- version-lock protocol checker: SlotVersion (§III-E version lock) ---

TEST_F(DebugChecksDeathTest, SlotVersionUnlockWithoutLockAborts) {
  SlotVersion v;
  EXPECT_DEATH(v.WriteUnlock(), "slot-version: unlock-without-lock");
}

TEST_F(DebugChecksDeathTest, SlotVersionDoubleLockAborts) {
  SlotVersion v;
  v.WriteLock();
  EXPECT_DEATH(v.WriteLock(), "slot-version: double-lock");
  v.WriteUnlock();
}

TEST_F(DebugChecksDeathTest, SlotVersionWrongParityPublicationAborts) {
  SlotVersion v;
  // Seed the writer-side parity bug directly: the thread's held-lock set says
  // it owns the lock, but the version was never moved to odd — unlocking now
  // would publish an odd (writer-in-flight) version and wedge every reader.
  debug::NoteLockAcquired(&v, "slot-version");
  EXPECT_DEATH(v.WriteUnlock(), "slot-version: WriteUnlock would publish an odd");
  debug::NoteLockReleased(&v, "slot-version");
}

// --- version-lock protocol checker: OptLock (ART optimistic lock coupling) ---

TEST_F(DebugChecksDeathTest, OptLockDoubleLockAborts) {
  OptLock l;
  ASSERT_TRUE(l.WriteLockOrFail());
  EXPECT_DEATH(l.WriteLockOrFail(), "optlock: double-lock");
  l.WriteUnlock();
}

TEST_F(DebugChecksDeathTest, OptLockUnlockWithoutLockAborts) {
  OptLock l;
  EXPECT_DEATH(l.WriteUnlock(), "optlock: unlock-without-lock");
}

// --- epoch-guard validator ---

TEST_F(DebugChecksDeathTest, ArtInsertOutsideEpochGuardAborts) {
  art::ArtTree tree;
  // ArtTree's contract requires callers to hold an EpochGuard (retired nodes
  // could otherwise be reclaimed mid-traversal). Seed the misuse.
  EXPECT_DEATH(tree.Insert(42, 7), "epoch-guard: ArtTree::Insert");
}

TEST_F(DebugChecksDeathTest, ArtLookupOutsideEpochGuardAborts) {
  art::ArtTree tree;
  {
    EpochGuard g;
    ASSERT_TRUE(tree.Insert(42, 7));
  }
  Value v;
  EXPECT_DEATH(tree.Lookup(42, &v), "epoch-guard: ArtTree::Lookup");
}

TEST_F(DebugChecksDeathTest, DrainAllWhileReaderPinnedAborts) {
  // DrainAll frees every retired item unconditionally — its contract is "no
  // thread inside a read-side section". With per-shard managers multiplying
  // the call sites, the contract is now checked: a still-pinned reader slot
  // at drain time is a use-after-free in the making and must abort.
  EXPECT_DEATH(
      {
        EpochManager mgr("debug-checks-drain");
        std::atomic<bool> pinned{false};
        std::thread reader([&] {
          EpochGuard g(mgr);
          pinned.store(true);
          for (;;) std::this_thread::yield();  // never unpins
        });
        while (!pinned.load()) std::this_thread::yield();
        mgr.Retire(new int(7), [](void* p) { delete static_cast<int*>(p); });
        mgr.DrainAll();
      },
      "DrainAll while a reader is pinned");
}

TEST(DebugChecksTest, DrainAllQuietWhenQuiescent) {
  EpochManager mgr("debug-checks-drain-quiet");
  {
    EpochGuard g(mgr);
    mgr.Retire(new int(7), [](void* p) { delete static_cast<int*>(p); });
  }
  mgr.DrainAll();  // all guards released: the new check must stay silent
  EXPECT_EQ(mgr.PendingCount(), 0u);
}

// --- positive control: correct usage stays quiet under the checkers ---

TEST(DebugChecksTest, CheckersStayQuietUnderConcurrentChurn) {
  // Mixed concurrent churn over the full index exercises every checked lock
  // (slot words, spin locks, ART optimistic locks, born-locked SMO nodes) and
  // the epoch-pinned hot paths; any false positive aborts the test binary.
  AltIndex index;
  constexpr size_t kBulk = 20000;
  constexpr int kThreads = 4;
  std::vector<Key> keys(kBulk);
  std::vector<Value> vals(kBulk);
  for (size_t i = 0; i < kBulk; ++i) {
    keys[i] = static_cast<Key>(i) * 16 + 5;
    vals[i] = static_cast<Value>(i);
  }
  ASSERT_TRUE(index.BulkLoad(keys.data(), vals.data(), kBulk).ok());

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < kBulk; i += kThreads) {
        const Key k = keys[i];
        // Insert a conflicting neighbor (lands in ART), update, look up both,
        // then remove the neighbor — covering all four internal hot paths.
        if (!index.Insert(k + 1, vals[i] + 100)) failed.store(true);
        if (!index.Update(k, vals[i] + 1)) failed.store(true);
        Value v;
        if (!index.Lookup(k, &v)) failed.store(true);
        if (!index.Lookup(k + 1, &v) || v != vals[i] + 100) failed.store(true);
        if (!index.Remove(k + 1)) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(index.Size(), kBulk);
  EpochManager::Global().DrainAll();
}

}  // namespace
}  // namespace alt
