
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/alex_like.cc" "src/CMakeFiles/alt_baselines.dir/baselines/alex_like.cc.o" "gcc" "src/CMakeFiles/alt_baselines.dir/baselines/alex_like.cc.o.d"
  "/root/repo/src/baselines/art_index.cc" "src/CMakeFiles/alt_baselines.dir/baselines/art_index.cc.o" "gcc" "src/CMakeFiles/alt_baselines.dir/baselines/art_index.cc.o.d"
  "/root/repo/src/baselines/btree_index.cc" "src/CMakeFiles/alt_baselines.dir/baselines/btree_index.cc.o" "gcc" "src/CMakeFiles/alt_baselines.dir/baselines/btree_index.cc.o.d"
  "/root/repo/src/baselines/factory.cc" "src/CMakeFiles/alt_baselines.dir/baselines/factory.cc.o" "gcc" "src/CMakeFiles/alt_baselines.dir/baselines/factory.cc.o.d"
  "/root/repo/src/baselines/finedex_like.cc" "src/CMakeFiles/alt_baselines.dir/baselines/finedex_like.cc.o" "gcc" "src/CMakeFiles/alt_baselines.dir/baselines/finedex_like.cc.o.d"
  "/root/repo/src/baselines/lipp_like.cc" "src/CMakeFiles/alt_baselines.dir/baselines/lipp_like.cc.o" "gcc" "src/CMakeFiles/alt_baselines.dir/baselines/lipp_like.cc.o.d"
  "/root/repo/src/baselines/olc_btree.cc" "src/CMakeFiles/alt_baselines.dir/baselines/olc_btree.cc.o" "gcc" "src/CMakeFiles/alt_baselines.dir/baselines/olc_btree.cc.o.d"
  "/root/repo/src/baselines/xindex_like.cc" "src/CMakeFiles/alt_baselines.dir/baselines/xindex_like.cc.o" "gcc" "src/CMakeFiles/alt_baselines.dir/baselines/xindex_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_art.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
