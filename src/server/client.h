#pragma once

/// \file
/// \brief Minimal blocking client for the ALT wire protocol (docs/PROTOCOL.md).
///
/// One KvClient wraps one TCP connection. The simple methods (Get/Put/Del/
/// Scan/Stats) are strictly request-response; the Send*/ReceiveResponse pair
/// exposes pipelining — queue any number of requests, then collect responses
/// in request order — which is what the load generator and the pipelining
/// tests build on. Not thread-safe: one connection, one thread.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/key_codec.h"
#include "common/status.h"
#include "server/protocol.h"

namespace alt {
namespace server {

/// A decoded response frame with its payload copied out.
struct Response {
  uint64_t request_id = 0;
  RespStatus status = RespStatus::kServerError;
  Value value = 0;                            ///< GET kOk
  bool created = false;                       ///< PUT kOk
  std::vector<std::pair<Key, Value>> pairs;   ///< SCAN kOk
  std::string json;                           ///< STATS kOk
};

class KvClient {
 public:
  KvClient() = default;
  ~KvClient() { Close(); }
  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  /// Connect to host:port. `retry_for_ms` keeps retrying connection-refused
  /// for that long (a just-started server may not be listening yet).
  Status Connect(const std::string& host, uint16_t port,
                 uint64_t retry_for_ms = 0);

  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // -- blocking request-response ops ----------------------------------------

  /// \return OK with *found / *out set; non-OK only on transport/protocol
  /// failure (a miss is OK + *found == false).
  Status Get(Key key, Value* out, bool* found);
  /// Upsert. *created (optional) reports insert-vs-update.
  Status Put(Key key, Value value, bool* created = nullptr);
  /// \return OK with *existed set.
  Status Del(Key key, bool* existed);
  Status Scan(Key start, uint32_t count,
              std::vector<std::pair<Key, Value>>* out);
  Status Stats(std::string* json);

  // -- pipelining ------------------------------------------------------------

  /// Queue a request into the send buffer (assigns and returns a request id).
  uint64_t QueueGet(Key key);
  uint64_t QueuePut(Key key, Value value);
  uint64_t QueueDel(Key key);
  uint64_t QueueScan(Key start, uint32_t count);
  uint64_t QueueStats();

  /// Write the queued bytes to the socket (blocking until fully sent).
  Status Flush();

  /// Block until the next response frame arrives and decode it. Responses
  /// arrive in request order per connection.
  Status ReceiveResponse(Response* resp);

 private:
  Status SendAll(const uint8_t* data, size_t n);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::vector<uint8_t> send_buf_;
  FrameDecoder dec_;
};

/// Decode one response frame's payload into `resp` (shared with the load
/// generator's nonblocking receive path). Returns false when the body does
/// not match the status code's layout.
bool DecodeResponse(const FrameHeader& h, const uint8_t* body, Response* resp);

}  // namespace server
}  // namespace alt
