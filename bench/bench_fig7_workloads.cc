// Reproduces Fig. 7: throughput and P99.9 tail latency of all six indexes
// under the five point-operation workloads (read-only, read-heavy, balanced,
// write-heavy, write-only) on the four datasets.
#include "bench_common.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = BenchConfig::Parse(argc, argv);
  for (WorkloadType w : PaperWorkloads()) {
    PrintHeader(std::string("Fig. 7: ") + WorkloadName(w) + " (" +
                    std::to_string(cfg.threads) + " threads)",
                {"Index", "Dataset", "Mops/s", "P99.9(us)", "failed"});
    for (const auto& name : cfg.indexes) {
      for (Dataset d : cfg.datasets) {
        const auto keys = LoadKeys(cfg, d);
        const RunResult r = RunOne(cfg, name, keys, w);
        PrintRow({MakeIndex(name)->Name(), DatasetName(d), Fmt(r.throughput_mops),
                  Fmt(static_cast<double>(r.p999_ns) / 1000.0),
                  std::to_string(r.failed_ops)});
      }
    }
  }
  return 0;
}
