# Empty compiler generated dependencies file for bench_fig10_internals.
# This may be replaced when dependencies are built.
