#pragma once

/// \file
/// \brief Flight-recorder span tracer (DESIGN.md §9).
///
/// A per-thread lock-free ring buffer of spans and instant events, recorded
/// with RAII `trace::Span` objects and exported as Chrome trace-event JSON
/// (loadable in Perfetto / chrome://tracing). The recorder is a *flight
/// recorder*: each thread keeps only its most recent `kRingCapacity` records,
/// so tracing can stay enabled for a whole run and the export shows the tail
/// of history — exactly what is needed to see where time went just before an
/// interesting moment (a retrain stall, a latency spike).
///
/// ## Cost model
///  - Compiled out (`-DALT_TRACING=OFF` → `ALT_TRACING_DISABLED`): every API
///    is an empty inline; spans cost nothing and no symbol is emitted.
///  - Compiled in but disabled (the default at runtime): one relaxed atomic
///    load per span constructor. Hot paths may instrument freely.
///  - Enabled: one `NowNanos()` pair plus ~6 relaxed stores into the calling
///    thread's own ring; no shared cache line is written.
///
/// ## Concurrency
/// Writers are wait-free and touch only their thread-local ring. A concurrent
/// reader (the exporter) snapshots rings through a per-cell sequence protocol:
/// the writer publishes odd-seq before and even-seq after the payload stores,
/// and the reader discards any cell whose sequence moved while it was read —
/// the same discipline as the per-slot optimistic locks in the learned layer,
/// so concurrent export is TSan-clean without slowing the writer.
///
/// ## Contract
/// `name` and `category` must be string literals (or otherwise outlive the
/// recorder) — the ring stores the pointers, not copies.

#include <cstdint>
#include <string>
#include <vector>

#if !defined(ALT_TRACING_DISABLED)
#include <atomic>
#endif

namespace alt {
namespace trace {

/// Chrome trace-event phase of a record.
enum class Phase : uint8_t {
  kComplete,  ///< "X": a span with start + duration
  kInstant,   ///< "i": a point event (e.g. retrain trigger)
};

/// One exported record (already validated by the collector).
struct Record {
  const char* name;
  const char* category;
  uint64_t start_ns;  ///< NowNanos() at span begin / instant emit
  uint64_t dur_ns;    ///< 0 for instants
  uint64_t detail;    ///< span-specific payload (key count, bytes, ...)
  uint32_t tid;       ///< recorder-assigned dense thread id
  Phase phase;
};

#if !defined(ALT_TRACING_DISABLED)

/// \return true when spans are currently being recorded.
bool Enabled();

/// Turn recording on/off (relaxed global flag; spans started before the flip
/// may still record). Rings persist across disable/enable — WriteChromeTrace
/// exports whatever the flight recorder currently holds.
void SetEnabled(bool on);

/// Record a completed span (normally via trace::Span, not directly).
void RecordSpan(const char* name, const char* category, uint64_t start_ns,
                uint64_t dur_ns, uint64_t detail);

/// Record an instant event.
void RecordInstant(const char* name, const char* category, uint64_t detail);

/// Snapshot every thread's ring (oldest first per thread). Safe to call while
/// other threads record; torn cells are skipped. \param dropped if non-null,
/// receives the number of records lost to ring wrap-around or tearing.
std::vector<Record> Collect(uint64_t* dropped = nullptr);

/// Serialize records as Chrome trace-event JSON ({"traceEvents": [...]}).
std::string ToChromeJson(const std::vector<Record>& records);

/// Collect + serialize + write to `path`. \return false on I/O failure.
/// Always writes a valid (possibly empty) trace document.
bool WriteChromeTrace(const std::string& path);

/// Drop all recorded spans and thread registrations. Test-only: callers must
/// guarantee no thread is concurrently recording.
void ResetForTest();

/// \brief RAII scoped span: records [construction, destruction) into the
/// calling thread's ring when tracing is enabled at construction time.
class Span {
 public:
  explicit Span(const char* name, const char* category = "alt",
                uint64_t detail = 0)
      : name_(name), category_(category), detail_(detail), active_(Enabled()) {
    if (active_) start_ns_ = ClockNow();
  }

  ~Span() {
    if (active_) RecordSpan(name_, category_, start_ns_, ClockNow() - start_ns_, detail_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach/replace the span's payload after construction (e.g. a count that
  /// is only known at the end of the traced scope).
  void set_detail(uint64_t detail) { detail_ = detail; }

 private:
  static uint64_t ClockNow();

  const char* name_;
  const char* category_;
  uint64_t start_ns_ = 0;
  uint64_t detail_;
  bool active_;
};

#else  // ALT_TRACING_DISABLED: every entry point is a no-op inline.

inline bool Enabled() { return false; }
inline void SetEnabled(bool) {}
inline void RecordSpan(const char*, const char*, uint64_t, uint64_t, uint64_t) {}
inline void RecordInstant(const char*, const char*, uint64_t) {}
inline std::vector<Record> Collect(uint64_t* dropped = nullptr) {
  if (dropped != nullptr) *dropped = 0;
  return {};
}
std::string ToChromeJson(const std::vector<Record>& records);  // still links
bool WriteChromeTrace(const std::string& path);  // writes an empty document
inline void ResetForTest() {}

class Span {
 public:
  explicit Span(const char*, const char* = "alt", uint64_t = 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void set_detail(uint64_t) {}
};

#endif  // ALT_TRACING_DISABLED

}  // namespace trace
}  // namespace alt
