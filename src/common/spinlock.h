#pragma once

#include <atomic>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace alt {

/// Pause the core briefly inside a spin loop (reduces bus traffic on x86).
inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// \brief Tiny test-and-test-and-set spin lock.
///
/// Used where the critical section is a handful of stores (fast pointer buffer
/// entries, §III-E "we use spin locks in the fast pointer buffer").
class SpinLock {
 public:
  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) CpuRelax();
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace alt
