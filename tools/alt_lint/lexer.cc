#include "lexer.h"

#include <cctype>

namespace altlint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentCont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character punctuators, longest first so greedy matching works.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=", "*=",
    "/=",  "%=",  "&=",  "|=",  "^=", "==", "!=", "<=", ">=", "&&", "||",
    "<<",  ">>",  ".*",
};

class Lexer {
 public:
  Lexer(const std::string& path, const std::string& src) : src_(src) { out_.path = path; }

  LexedFile Run() {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        Advance();
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        Advance();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        SkipDirective();
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        if (c == 'R' && Peek(1) == '"') {
          LexRawString();
          continue;
        }
        LexIdent();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        LexNumber();
        continue;
      }
      if (c == '"' || c == '\'') {
        LexQuoted(c);
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  void Advance() {
    if (src_[i_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++i_;
  }

  void Emit(TokKind kind, size_t begin, int line, int col) {
    out_.tokens.push_back({kind, src_.substr(begin, i_ - begin), line, col});
  }

  void LexIdent() {
    const size_t begin = i_;
    const int line = line_, col = col_;
    while (i_ < src_.size() && IsIdentCont(src_[i_])) Advance();
    Emit(TokKind::kIdent, begin, line, col);
  }

  void LexNumber() {
    const size_t begin = i_;
    const int line = line_, col = col_;
    // pp-number: digits, idents, ', and exponent signs. Good enough here.
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (IsIdentCont(c) || c == '.' || c == '\'') {
        Advance();
      } else if ((c == '+' || c == '-') && i_ > begin &&
                 (src_[i_ - 1] == 'e' || src_[i_ - 1] == 'E' ||
                  src_[i_ - 1] == 'p' || src_[i_ - 1] == 'P')) {
        Advance();
      } else {
        break;
      }
    }
    Emit(TokKind::kNumber, begin, line, col);
  }

  void LexQuoted(char quote) {
    const size_t begin = i_;
    const int line = line_, col = col_;
    Advance();  // opening quote
    while (i_ < src_.size() && src_[i_] != quote && src_[i_] != '\n') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) Advance();
      Advance();
    }
    if (i_ < src_.size() && src_[i_] == quote) Advance();
    Emit(TokKind::kString, begin, line, col);
  }

  void LexRawString() {
    const size_t begin = i_;
    const int line = line_, col = col_;
    Advance();  // R
    Advance();  // "
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(') {
      delim += src_[i_];
      Advance();
    }
    const std::string close = ")" + delim + "\"";
    while (i_ < src_.size() && src_.compare(i_, close.size(), close) != 0) Advance();
    for (size_t k = 0; k < close.size() && i_ < src_.size(); ++k) Advance();
    Emit(TokKind::kString, begin, line, col);
  }

  void LexLineComment() {
    const size_t begin = i_ + 2;
    const int line = line_;
    while (i_ < src_.size() && src_[i_] != '\n') Advance();
    out_.comments.push_back({src_.substr(begin, i_ - begin), line, line});
  }

  void LexBlockComment() {
    const int line = line_;
    Advance();  // '/'
    Advance();  // '*'
    const size_t begin = i_;
    while (i_ < src_.size() && !(src_[i_] == '*' && Peek(1) == '/')) Advance();
    const size_t end = i_;
    const int end_line = line_;
    if (i_ < src_.size()) {
      Advance();  // '*'
      Advance();  // '/'
    }
    out_.comments.push_back({src_.substr(begin, end - begin), line, end_line});
  }

  // Skip a preprocessor directive (with backslash continuations), but keep
  // any comments on it — suppressions may sit next to a macro definition.
  void SkipDirective() {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        if (i_ > 0 && LastNonWsBeforeIs('\\')) {
          Advance();
          continue;
        }
        break;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      Advance();
    }
  }

  bool LastNonWsBeforeIs(char want) const {
    size_t k = i_;
    while (k > 0) {
      const char c = src_[k - 1];
      if (c == ' ' || c == '\t' || c == '\r') {
        --k;
        continue;
      }
      return c == want;
    }
    return false;
  }

  void LexPunct() {
    const size_t begin = i_;
    const int line = line_, col = col_;
    for (const char* p : kPuncts) {
      const size_t n = std::char_traits<char>::length(p);
      if (src_.compare(i_, n, p) == 0) {
        for (size_t k = 0; k < n; ++k) Advance();
        Emit(TokKind::kPunct, begin, line, col);
        return;
      }
    }
    Advance();
    Emit(TokKind::kPunct, begin, line, col);
  }

  const std::string& src_;
  LexedFile out_;
  size_t i_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

LexedFile Lex(const std::string& path, const std::string& source) {
  return Lexer(path, source).Run();
}

}  // namespace altlint
