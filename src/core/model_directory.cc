#include "core/model_directory.h"

#include <cassert>

#include "common/epoch.h"

namespace alt {

ModelDirectory::ModelDirectory(EpochManager* epoch)
    : epoch_(epoch != nullptr ? epoch : &EpochManager::Global()) {}

ModelDirectory::~ModelDirectory() {
  Snapshot* s = snapshot_.load(std::memory_order_acquire);
  if (s == nullptr) return;
  for (auto& m : s->models) {
    GplModel* model = m.load(std::memory_order_relaxed);
    delete model;
  }
  delete s;
}

void ModelDirectory::BuildRadix(Snapshot* s, int radix_bits) {
  if (radix_bits <= 0) return;
  s->radix_bits = radix_bits;
  const size_t buckets = size_t{1} << radix_bits;
  s->radix.assign(buckets + 1, 0);
  // radix[r] = first index i with first_keys[i] >= (r << (64 - bits)); the
  // Locate window for bucket r is [radix[r], radix[r+1]) in upper-bound terms.
  size_t i = 0;
  const size_t n = s->first_keys.size();
  for (size_t r = 0; r <= buckets; ++r) {
    const Key boundary =
        r == buckets ? ~Key{0} : (static_cast<Key>(r) << (64 - radix_bits));
    while (i < n && s->first_keys[i] < boundary) ++i;
    s->radix[r] = static_cast<uint32_t>(i);
  }
  s->radix[buckets] = static_cast<uint32_t>(n);
}

void ModelDirectory::Build(std::vector<GplModel*> models, int radix_bits) {
  // Build is single-threaded by contract, but holding the structure lock
  // keeps the radix_bits_ write inside its guarding capability.
  SpinLockGuard lg(structure_lock_);
  radix_bits_ = radix_bits;
  auto* s = new Snapshot(models.size());
  for (size_t i = 0; i < models.size(); ++i) {
    s->first_keys[i] = models[i]->first_key();
    s->models[i].store(models[i], std::memory_order_relaxed);
  }
  BuildRadix(s, radix_bits_);
  Snapshot* old = snapshot_.exchange(s, std::memory_order_acq_rel);
  assert(old == nullptr && "Build must run once, before any operation");
  (void)old;
}

bool ModelDirectory::PublishReplacement(GplModel* old_model, GplModel* new_model) {
  SpinLockGuard lg(structure_lock_);
  Snapshot* s = snapshot_.load(std::memory_order_acquire);
  const size_t idx = Locate(*s, old_model->first_key());
  if (s->models[idx].load(std::memory_order_acquire) != old_model) return false;
  s->models[idx].store(new_model, std::memory_order_release);
  epoch_->Retire(old_model, [](void* p) { delete static_cast<GplModel*>(p); });
  return true;
}

bool ModelDirectory::AppendTail(GplModel* model) {
  SpinLockGuard lg(structure_lock_);
  Snapshot* s = snapshot_.load(std::memory_order_acquire);
  const size_t n = s->first_keys.size();
  if (n > 0 && model->first_key() <= s->first_keys[n - 1]) {
    // A concurrent append (another finishing expansion) already covers this
    // range; the caller drops its tail.
    return false;
  }
  auto* ns = new Snapshot(n + 1);
  for (size_t i = 0; i < n; ++i) {
    ns->first_keys[i] = s->first_keys[i];
    ns->models[i].store(s->models[i].load(std::memory_order_acquire),
                        std::memory_order_relaxed);
  }
  ns->first_keys[n] = model->first_key();
  ns->models[n].store(model, std::memory_order_relaxed);
  BuildRadix(ns, radix_bits_);
  snapshot_.store(ns, std::memory_order_release);
  RetireSnapshot(s);
  return true;
}

void ModelDirectory::RetireSnapshot(Snapshot* s) {
  epoch_->Retire(s, [](void* p) { delete static_cast<Snapshot*>(p); });
}

size_t ModelDirectory::MemoryBytes() const {
  const Snapshot* s = snapshot_.load(std::memory_order_acquire);
  if (s == nullptr) return 0;
  size_t total = sizeof(Snapshot) +
                 s->first_keys.size() * (sizeof(Key) + sizeof(std::atomic<GplModel*>)) +
                 s->radix.size() * sizeof(uint32_t);
  for (const auto& m : s->models) {
    const GplModel* model = m.load(std::memory_order_acquire);
    total += model->MemoryBytes();
    const Expansion* e = model->expansion();
    if (e != nullptr && e->new_model != nullptr) total += e->new_model->MemoryBytes();
  }
  return total;
}

}  // namespace alt
