# Empty dependencies file for gpl_model_test.
# This may be replaced when dependencies are built.
