#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/epoch.h"

namespace alt {
namespace {

std::atomic<int> g_deleted{0};

struct Tracked {
  int payload = 7;
};

void DeleteTracked(void* p) {
  delete static_cast<Tracked*>(p);
  g_deleted.fetch_add(1);
}

TEST(EpochTest, GuardNests) {
  EpochGuard outer;
  {
    EpochGuard inner;
    EpochGuard inner2;
  }
  // Reaching here without deadlock/assert is the test.
  SUCCEED();
}

TEST(EpochTest, DrainAllReclaimsEverything) {
  g_deleted.store(0);
  for (int i = 0; i < 100; ++i) {
    EpochManager::Global().Retire(new Tracked(), DeleteTracked);
  }
  EpochManager::Global().DrainAll();
  EXPECT_EQ(g_deleted.load(), 100);
  EXPECT_EQ(EpochManager::Global().PendingCount(), 0u);
}

TEST(EpochTest, RetireEventuallyReclaimsWithoutReaders) {
  g_deleted.store(0);
  // Retire enough items to cross several advance intervals.
  for (int i = 0; i < 1000; ++i) {
    EpochManager::Global().Retire(new Tracked(), DeleteTracked);
  }
  EXPECT_GT(g_deleted.load(), 0) << "advance intervals should have freed some";
  EpochManager::Global().DrainAll();
  EXPECT_EQ(g_deleted.load(), 1000);
}

TEST(EpochTest, ActiveReaderBlocksReclamation) {
  g_deleted.store(0);
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};

  std::thread reader([&] {
    EpochGuard g;
    reader_in.store(true);
    while (!release_reader.load()) std::this_thread::yield();
  });
  while (!reader_in.load()) std::this_thread::yield();

  // Retire from this thread while the reader pins an older epoch. Items
  // retired at epochs >= the reader's pin must survive.
  Tracked* witness = new Tracked();
  EpochManager::Global().Retire(witness, DeleteTracked);
  for (int i = 0; i < 500; ++i) {
    EpochManager::Global().Retire(new Tracked(), DeleteTracked);
  }
  EXPECT_EQ(witness->payload, 7) << "witness must not be freed under the reader";

  release_reader.store(true);
  reader.join();
  EpochManager::Global().DrainAll();
  EXPECT_EQ(g_deleted.load(), 501);
}

TEST(EpochTest, GlobalEpochAdvances) {
  const uint64_t before = EpochManager::Global().GlobalEpoch();
  for (int i = 0; i < 200; ++i) {
    EpochManager::Global().Retire(new Tracked(), DeleteTracked);
  }
  EXPECT_GT(EpochManager::Global().GlobalEpoch(), before);
  EpochManager::Global().DrainAll();
}

TEST(EpochTest, ThreadSlotsAreReusedAcrossThreadChurn) {
  // Far more *sequential* threads than kMaxThreads: each thread returns its
  // pinned-epoch slot at exit, so churn never exhausts the slot pool and the
  // number of live registrations stays bounded.
  constexpr int kChurn = EpochManager::kMaxThreads + 44;
  for (int i = 0; i < kChurn; ++i) {
    std::thread t([] {
      EpochGuard g;
      EpochManager::Global().Retire(new Tracked(), DeleteTracked);
    });
    t.join();
  }
  EXPECT_LT(EpochManager::Global().RegisteredThreads(),
            static_cast<size_t>(EpochManager::kMaxThreads));
  EpochManager::Global().DrainAll();
}

TEST(EpochDeathTest, SlotExhaustionAbortsLoudly) {
  // Handing out a shared or wrapped slot would let two live threads overwrite
  // each other's pinned epoch (silent use-after-free), so registration
  // #(kMaxThreads + 1) must abort with a diagnostic instead.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        std::atomic<bool> release{false};
        std::atomic<int> pinned{0};
        // The main thread claims one slot, then kMaxThreads spawned threads
        // take theirs one at a time (handshake: the next thread only spawns
        // once the previous one registered, and none exits until released, so
        // slots cannot be recycled). The last registration is one too many
        // and must abort before `pinned` ever reaches kMaxThreads — the
        // release below only runs if the checker is broken.
        EpochManager::Global().CurrentThreadPinned();
        std::vector<std::thread> threads;
        for (int i = 0; i < EpochManager::kMaxThreads; ++i) {
          threads.emplace_back([&] {
            EpochGuard g;
            pinned.fetch_add(1);
            while (!release.load()) std::this_thread::yield();
          });
          while (pinned.load() < i + 1) std::this_thread::yield();
        }
        release.store(true);
        for (auto& t : threads) t.join();
      },
      "thread slot exhaustion");
}

TEST(EpochTest, InstanceManagersRetireIndependently) {
  g_deleted.store(0);
  EpochManager a("epoch-test-a");
  EpochManager b("epoch-test-b");
  EXPECT_NE(a.ManagerId(), b.ManagerId());
  for (int i = 0; i < 10; ++i) a.Retire(new Tracked(), DeleteTracked);
  for (int i = 0; i < 5; ++i) b.Retire(new Tracked(), DeleteTracked);
  EXPECT_EQ(a.PendingCount(), 10u);
  EXPECT_EQ(b.PendingCount(), 5u);
  a.DrainAll();
  EXPECT_EQ(g_deleted.load(), 10) << "draining a must not touch b's items";
  EXPECT_EQ(b.PendingCount(), 5u);
  b.DrainAll();
  EXPECT_EQ(g_deleted.load(), 15);
}

TEST(EpochTest, OneThreadInterleavesGuardsOnSeveralManagers) {
  EpochManager a("epoch-test-a");
  EpochManager b("epoch-test-b");
  EXPECT_FALSE(a.CurrentThreadPinned());
  {
    EpochGuard ga(a);
    EXPECT_TRUE(a.CurrentThreadPinned());
    EXPECT_FALSE(b.CurrentThreadPinned()) << "pins are per manager";
    {
      EpochGuard gb(b);
      EpochGuard gglobal;  // the global manager is just one more instance
      EXPECT_TRUE(b.CurrentThreadPinned());
      EXPECT_TRUE(EpochManager::Global().CurrentThreadPinned());
    }
    EXPECT_FALSE(b.CurrentThreadPinned());
    EXPECT_TRUE(a.CurrentThreadPinned());
  }
  EXPECT_FALSE(a.CurrentThreadPinned());
}

TEST(EpochTest, InstanceReaderBlocksInstanceReclamationOnly) {
  g_deleted.store(0);
  EpochManager a("epoch-test-a");
  EpochManager b("epoch-test-b");
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};
  std::thread reader([&] {
    EpochGuard g(a);
    reader_in.store(true);
    while (!release_reader.load()) std::this_thread::yield();
  });
  while (!reader_in.load()) std::this_thread::yield();

  Tracked* witness = new Tracked();
  a.Retire(witness, DeleteTracked);
  // b has no pinned reader: its retired items recycle across advances even
  // while a's reader blocks a's reclamation.
  for (int i = 0; i < 500; ++i) b.Retire(new Tracked(), DeleteTracked);
  EXPECT_GT(g_deleted.load(), 0) << "a's reader must not stall b";
  EXPECT_EQ(witness->payload, 7);

  release_reader.store(true);
  reader.join();
  a.DrainAll();
  b.DrainAll();
  EXPECT_EQ(g_deleted.load(), 501);
}

TEST(EpochTest, ThreadsMayOutliveAnInstanceManager) {
  g_deleted.store(0);
  std::atomic<int> phase{0};
  std::atomic<EpochManager*> shared_mgr{nullptr};
  // The worker uses a short-lived manager, then keeps running (and exits)
  // after the manager is destroyed — the refcounted per-thread records make
  // both destruction orders safe.
  std::thread worker([&] {
    while (phase.load() == 0) std::this_thread::yield();
    // phase 1: manager alive.
    EpochManager* mgr = shared_mgr.load();
    {
      EpochGuard g(*mgr);
      mgr->Retire(new Tracked(), DeleteTracked);
    }
    phase.store(2);
    while (phase.load() == 2) std::this_thread::yield();
    // phase 3: manager destroyed; thread exits normally.
  });
  {
    EpochManager mgr("epoch-test-shortlived");
    shared_mgr.store(&mgr);
    phase.store(1);
    while (phase.load() != 2) std::this_thread::yield();
    EXPECT_EQ(mgr.RegisteredThreads(), 1u);
  }  // ~EpochManager drains the worker's retired item
  EXPECT_EQ(g_deleted.load(), 1);
  phase.store(3);
  worker.join();
}

TEST(EpochTest, SequentialManagersDoNotInheritThreadState) {
  // A fresh manager may be allocated where a destroyed one lived; the
  // id-keyed (not address-keyed) thread cache must register anew. 64 rounds
  // on one thread also exercises pruning of dead-manager entries.
  for (int round = 0; round < 64; ++round) {
    EpochManager mgr("epoch-test-churn");
    EpochGuard g(mgr);
    mgr.Retire(new Tracked(), DeleteTracked);
    EXPECT_EQ(mgr.RegisteredThreads(), 1u);
  }
}

TEST(EpochTest, ManyThreadsRetireConcurrently) {
  g_deleted.store(0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        EpochGuard g;
        EpochManager::Global().Retire(new Tracked(), DeleteTracked);
      }
    });
  }
  for (auto& th : threads) th.join();
  EpochManager::Global().DrainAll();
  EXPECT_EQ(g_deleted.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace alt
