// Reproduces Fig. 8(b): the hot-write workload. A consecutive key range is
// reserved at load time and then inserted sequentially, shifting the data
// distribution and hammering a few models — the §III-F dynamic-retraining
// stress. ALT-index should stay ahead thanks to amortized expansion; XIndex
// stays stable thanks to its background compaction thread.
#include "bench_common.h"
#include "common/epoch.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Fig. 8(b): hot write (sequential insert range + zipf reads)",
              {"Index", "Dataset", "Mops/s", "P99.9(us)"});
  for (const auto& name : cfg.indexes) {
    for (Dataset d : cfg.datasets) {
      const auto keys = LoadKeys(cfg, d);
      // Reserve a consecutive 20% range (by rank) for hot inserts: bulk-load
      // everything outside [40%, 60%).
      const size_t lo = keys.size() * 2 / 5;
      const size_t hi = keys.size() * 3 / 5;
      std::vector<Key> loaded, pool;
      for (size_t i = 0; i < keys.size(); ++i) {
        (i >= lo && i < hi ? pool : loaded).push_back(keys[i]);
      }
      auto index = MakeIndex(name);
      std::vector<Value> vals(loaded.size());
      for (size_t i = 0; i < vals.size(); ++i) vals[i] = ValueFor(loaded[i]);
      if (!index->BulkLoad(loaded.data(), vals.data(), loaded.size()).ok()) {
        std::fprintf(stderr, "bulk load failed\n");
        return 1;
      }
      WorkloadOptions opts;
      opts.type = WorkloadType::kBalanced;
      opts.ops_per_thread = cfg.ops_per_thread;
      opts.zipf_theta = cfg.zipf_theta;
      opts.seed = cfg.seed;
      opts.sequential_inserts = true;  // hot range, in order
      const auto streams = GenerateOpStreams(loaded, pool, cfg.threads, opts);
      const RunResult r = RunWorkload(index.get(), streams, cfg.scan_length);
      PrintRow({index->Name(), DatasetName(d), Fmt(r.throughput_mops),
                Fmt(static_cast<double>(r.p999_ns) / 1000.0)});
      index.reset();
      EpochManager::Global().DrainAll();
    }
  }
  return 0;
}
