#pragma once

#include "art/art_tree.h"
#include "common/index_interface.h"

namespace alt {

/// \brief Plain ART with optimistic lock coupling (the paper's "ART" row,
/// §IV-A3: "we add ART with optimistic lock scheme as a competitor"). Every
/// operation starts at the root — no learned layer, no fast pointers.
class ArtIndex : public ConcurrentIndex {
 public:
  std::string Name() const override { return "ART"; }

  Status BulkLoad(const Key* keys, const Value* values, size_t n) override;
  bool Lookup(Key key, Value* out) override;
  bool Insert(Key key, Value value) override;
  bool Update(Key key, Value value) override;
  bool Remove(Key key) override;
  size_t Scan(Key start, size_t count,
              std::vector<std::pair<Key, Value>>* out) override;
  size_t MemoryUsage() const override { return tree_.MemoryUsage(); }
  size_t Size() const override { return tree_.Size(); }

  const art::ArtTree& tree() const { return tree_; }

 private:
  art::ArtTree tree_;
};

}  // namespace alt
