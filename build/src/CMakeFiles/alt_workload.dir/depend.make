# Empty dependencies file for alt_workload.
# This may be replaced when dependencies are built.
