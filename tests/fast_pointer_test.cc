#include <gtest/gtest.h>

#include <vector>

#include "art/art_tree.h"
#include "common/epoch.h"
#include "common/metrics.h"
#include "core/alt_index.h"
#include "core/fast_pointer_buffer.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

class FastPointerTest : public ::testing::Test {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

TEST_F(FastPointerTest, AddPointerMergesByNode) {
  art::ArtTree tree;
  FastPointerBuffer buf;
  {
    EpochGuard g;
    for (Key k = 0; k < 1000; ++k) tree.Insert(k * 97, k);
  }
  int depth = 0;
  art::Node* lca1 = tree.FindLcaNode(0, 97 * 400, &depth);
  const int32_t s1 = buf.AddPointer(lca1, depth, KeyPrefix(0, depth));
  const int32_t s2 = buf.AddPointer(lca1, depth, KeyPrefix(0, depth));
  EXPECT_EQ(s1, s2) << "same node must share one entry (merge scheme)";
  EXPECT_EQ(buf.Size(), 1u);
  EXPECT_EQ(buf.UnmergedCount(), 2u);
  EXPECT_EQ(lca1->fp_slot.load(), s1);
}

TEST_F(FastPointerTest, GetReturnsWhatWasAdded) {
  art::ArtTree tree;
  FastPointerBuffer buf;
  const int32_t slot = buf.AddPointer(tree.root(), 0, 0);
  const auto ref = buf.Get(slot);
  EXPECT_EQ(ref.node, tree.root());
  EXPECT_EQ(ref.depth, 0);
  EXPECT_EQ(ref.prefix, 0u);
}

TEST_F(FastPointerTest, CoversValidatesPrefix) {
  FastPointerBuffer::Ref ref{nullptr, 2, 0x1122000000000000ULL};
  EXPECT_TRUE(FastPointerBuffer::Covers(ref, 0x1122334455667788ULL));
  EXPECT_TRUE(FastPointerBuffer::Covers(ref, 0x1122000000000000ULL));
  EXPECT_FALSE(FastPointerBuffer::Covers(ref, 0x1123000000000000ULL));
  FastPointerBuffer::Ref root_ref{nullptr, 0, 0};
  EXPECT_TRUE(FastPointerBuffer::Covers(root_ref, ~Key{0}));
}

TEST_F(FastPointerTest, NodeReplacedCallbackSwingsEntry) {
  // Fill one subtree until its node expands 4 -> 16; the entry must follow.
  art::ArtTree tree;
  FastPointerBuffer buf;
  tree.SetListener(&buf);
  EpochGuard g;
  const Key base = 0x4200000000000000ULL;
  // Two keys create an inner node at the divergence byte.
  tree.Insert(base | (1ull << 40), 1);
  tree.Insert(base | (2ull << 40), 2);
  int depth = 0;
  art::Node* node = tree.FindLcaNode(base | (1ull << 40), base | (2ull << 40), &depth);
  ASSERT_NE(node, tree.root());
  const int32_t slot = buf.AddPointer(node, depth, KeyPrefix(base, depth));
  // Grow the node past 4 children.
  for (uint64_t b = 3; b <= 8; ++b) tree.Insert(base | (b << 40), b);
  const auto ref = buf.Get(slot);
  ASSERT_NE(ref.node, nullptr);
  EXPECT_NE(ref.node, node) << "entry still points at the retired node";
  // The new target answers hinted lookups for all keys.
  for (uint64_t b = 1; b <= 8; ++b) {
    Value v;
    EXPECT_EQ(tree.LookupFrom(ref.node, base | (b << 40), &v),
              art::HintOutcome::kFound);
    EXPECT_EQ(v, b);
  }
}

TEST_F(FastPointerTest, PrefixSplitCallbackLiftsEntry) {
  art::ArtTree tree;
  FastPointerBuffer buf;
  tree.SetListener(&buf);
  EpochGuard g;
  // Keys sharing a 6-byte prefix create a deep node with compressed path.
  const Key base = 0x1111222233330000ULL;
  tree.Insert(base | 0x01, 1);
  tree.Insert(base | 0x02, 2);
  int depth = 0;
  art::Node* node = tree.FindLcaNode(base | 0x01, base | 0x02, &depth);
  const int32_t slot = buf.AddPointer(node, depth, KeyPrefix(base, depth));
  // Insert a key diverging inside the compressed path: prefix extraction
  // creates a new parent and the entry must lift to it.
  const Key divergent = 0x1111222200000000ULL | 0x05;
  tree.Insert(divergent, 5);
  const auto ref = buf.Get(slot);
  ASSERT_NE(ref.node, nullptr);
  // The (possibly lifted) entry must cover and find all three keys.
  for (const auto& [k, v] : std::vector<std::pair<Key, Value>>{
           {base | 0x01, 1}, {base | 0x02, 2}}) {
    Value got;
    ASSERT_TRUE(FastPointerBuffer::Covers(ref, k));
    EXPECT_EQ(tree.LookupFrom(ref.node, k, &got), art::HintOutcome::kFound);
    EXPECT_EQ(got, v);
  }
}

TEST_F(FastPointerTest, EndToEndHintedLookupsThroughAltIndex) {
  AltIndex index;
  auto keys = GenerateKeys(Dataset::kFb, 50000, 3);
  std::vector<Value> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());
  auto st = index.CollectStats();
  ASSERT_GT(st.art_keys, 0u) << "fb dataset must produce conflicts";
  EXPECT_GT(st.fast_pointers, 0u);
  EXPECT_GE(st.fast_pointer_adds, st.fast_pointers)
      << "merge scheme can only shrink the buffer";
  // Lookups of every key (conflicts included) succeed through the hints.
  const auto base = metrics::TakeSnapshot();
  for (size_t i = 0; i < keys.size(); ++i) {
    Value v;
    ASSERT_TRUE(index.Lookup(keys[i], &v)) << i;
    EXPECT_EQ(v, values[i]);
  }
#if !defined(ALT_METRICS_DISABLED)
  const auto delta = metrics::TakeSnapshot().DeltaSince(base);
  EXPECT_GT(delta.counter(metrics::Counter::kArtLookups), 0u);
  EXPECT_GT(delta.counter(metrics::Counter::kFastPointerHits), 0u);
#else
  (void)base;
#endif
}

TEST_F(FastPointerTest, HintShortensArtTraversals) {
  // Fig. 10(a) property: hinted secondary searches touch fewer nodes than
  // root-based ones.
  auto keys = GenerateKeys(Dataset::kLonglat, 80000, 9);
  std::vector<Value> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = ValueFor(keys[i]);

  auto run = [&](bool fast_pointers) {
    AltOptions opts;
    opts.enable_fast_pointers = fast_pointers;
    AltIndex index(opts);
    EXPECT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());
    const auto base = metrics::TakeSnapshot();
    Value v;
    for (size_t i = 0; i < keys.size(); i += 3) index.Lookup(keys[i], &v);
    const auto delta = metrics::TakeSnapshot().DeltaSince(base);
    const uint64_t lookups = delta.counter(metrics::Counter::kArtLookups);
    return lookups > 0
               ? static_cast<double>(delta.counter(metrics::Counter::kArtLookupSteps)) /
                     static_cast<double>(lookups)
               : 0.0;
  };
#if !defined(ALT_METRICS_DISABLED)
  const double with_fp = run(true);
  const double without_fp = run(false);
  ASSERT_GT(without_fp, 0.0);
  EXPECT_LT(with_fp, without_fp)
      << "fast pointers should shorten the average ART lookup length";
#else
  // Without the metrics counters there is nothing to compare; still exercise
  // both configurations for coverage.
  run(true);
  run(false);
#endif
}

}  // namespace
}  // namespace alt
