// Flight-recorder (common/trace.h) tests: record/collect round-trips, span
// nesting and timestamp sanity, Chrome trace-event JSON shape, ring-capacity
// drops, the ALT_TRACING=OFF no-op surface, and concurrent emission while an
// exporter snapshots (run under TSan by the sanitizer CI leg).
#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"

namespace alt {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::ResetForTest();
    trace::SetEnabled(true);
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::ResetForTest();
  }
};

#if !defined(ALT_TRACING_DISABLED)

const trace::Record* FindByName(const std::vector<trace::Record>& rs,
                                const char* name) {
  for (const auto& r : rs) {
    if (std::string(r.name) == name) return &r;
  }
  return nullptr;
}

TEST_F(TraceTest, SpanRoundTrip) {
  {
    trace::Span span("unit_span", "test", 7);
  }
  trace::RecordInstant("unit_instant", "test", 9);

  uint64_t dropped = 123;
  const auto records = trace::Collect(&dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(records.size(), 2u);

  const trace::Record* span = FindByName(records, "unit_span");
  ASSERT_NE(span, nullptr);
  EXPECT_STREQ(span->category, "test");
  EXPECT_EQ(span->detail, 7u);
  EXPECT_EQ(span->phase, trace::Phase::kComplete);
  EXPECT_GT(span->start_ns, 0u);

  const trace::Record* inst = FindByName(records, "unit_instant");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->detail, 9u);
  EXPECT_EQ(inst->phase, trace::Phase::kInstant);
  EXPECT_EQ(inst->dur_ns, 0u);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  trace::SetEnabled(false);
  {
    trace::Span span("invisible", "test");
  }
  trace::RecordInstant("also_invisible", "test", 0);
  EXPECT_TRUE(trace::Collect().empty());
}

TEST_F(TraceTest, NestedSpansAreContainedAndMonotone) {
  {
    trace::Span outer("outer", "test");
    Stopwatch spin;
    while (spin.ElapsedNanos() < 2000) {
    }
    {
      trace::Span inner("inner", "test");
      Stopwatch spin2;
      while (spin2.ElapsedNanos() < 2000) {
      }
    }
  }
  const auto records = trace::Collect();
  const trace::Record* outer = FindByName(records, "outer");
  const trace::Record* inner = FindByName(records, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // RAII order: the inner span's destructor runs first, so it is recorded
  // first; containment is on the [start, start+dur] intervals.
  EXPECT_LE(outer->start_ns, inner->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  EXPECT_GT(inner->dur_ns, 0u);
  EXPECT_GT(outer->dur_ns, inner->dur_ns);
}

TEST_F(TraceTest, PerThreadRecordsAreOldestFirst) {
  for (int i = 0; i < 100; ++i) {
    trace::RecordInstant("tick", "test", static_cast<uint64_t>(i));
  }
  const auto records = trace::Collect();
  ASSERT_EQ(records.size(), 100u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].tid, records[0].tid);
    EXPECT_EQ(records[i].detail, records[i - 1].detail + 1);
    EXPECT_GE(records[i].start_ns, records[i - 1].start_ns);
  }
}

TEST_F(TraceTest, RingWrapCountsDropped) {
  // One thread, > kRingCapacity (4096) records: the flight recorder keeps the
  // most recent window and reports the remainder as dropped.
  const uint64_t total = 5000;
  for (uint64_t i = 0; i < total; ++i) {
    trace::RecordInstant("wrap", "test", i);
  }
  uint64_t dropped = 0;
  const auto records = trace::Collect(&dropped);
  EXPECT_EQ(records.size() + dropped, total);
  EXPECT_GT(dropped, 0u);
  // The retained window is the tail: the last record is the newest.
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.back().detail, total - 1);
}

TEST_F(TraceTest, ChromeJsonShape) {
  {
    trace::Span span("json_span", "cat\"needs\\escaping", 3);
  }
  trace::RecordInstant("json_instant", "test", 4);
  const std::string doc = trace::ToChromeJson(trace::Collect());

  // Structural sanity a JSON parser would enforce (CI also runs the emitted
  // file through `python3 -m json.tool`).
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"json_span\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"cat\\\"needs\\\\escaping\""), std::string::npos);
  EXPECT_NE(doc.find("\"detail\":3"), std::string::npos);

  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : doc) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = in_string;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TraceTest, WriteChromeTraceProducesFile) {
  {
    trace::Span span("file_span", "test");
  }
  const std::string path = ::testing::TempDir() + "trace_test_out.json";
  ASSERT_TRUE(trace::WriteChromeTrace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"file_span\""), std::string::npos);
  EXPECT_EQ(content.rfind("{\"traceEvents\":[", 0), 0u);
}

TEST_F(TraceTest, ConcurrentEmissionWithConcurrentCollect) {
  // Writers hammer their rings while the main thread exports repeatedly; the
  // seqlock protocol must never surface a torn record (checked via the
  // name/category/detail invariants) and must stay TSan-clean.
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &done] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        trace::Span span("concurrent_span", "test",
                         (static_cast<uint64_t>(t) << 32) | i);
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (done.load(std::memory_order_acquire) < kThreads) {
    const auto records = trace::Collect();
    for (const auto& r : records) {
      ASSERT_STREQ(r.name, "concurrent_span");
      ASSERT_STREQ(r.category, "test");
      ASSERT_LT(r.detail >> 32, static_cast<uint64_t>(kThreads));
    }
  }
  for (auto& w : workers) w.join();
  uint64_t dropped = 0;
  const auto final_records = trace::Collect(&dropped);
  EXPECT_EQ(final_records.size() + dropped,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

#else  // ALT_TRACING_DISABLED

// The OFF build keeps the whole API callable (no-op) and the exporter still
// writes a valid, empty trace document — CI builds and runs this leg.
TEST_F(TraceTest, DisabledBuildIsNoOp) {
  {
    trace::Span span("noop_span", "test", 1);
    span.set_detail(2);
  }
  trace::RecordSpan("manual", "test", 0, 1, 2);
  trace::RecordInstant("manual_i", "test", 3);
  EXPECT_FALSE(trace::Enabled());
  uint64_t dropped = 99;
  EXPECT_TRUE(trace::Collect(&dropped).empty());
  EXPECT_EQ(dropped, 0u);

  const std::string doc = trace::ToChromeJson({});
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);

  const std::string path = ::testing::TempDir() + "trace_test_off.json";
  ASSERT_TRUE(trace::WriteChromeTrace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

#endif  // ALT_TRACING_DISABLED

}  // namespace
}  // namespace alt
