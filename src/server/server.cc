#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/epoch.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "server/protocol.h"

namespace alt {
namespace server {

namespace {

constexpr size_t kMaxBatch = 64;
constexpr int kEpollTimeoutMs = 200;

/// Pin every shard's epoch for one drain cycle. EpochGuard nests, so the
/// guards the index takes internally per operation become counter bumps
/// instead of epoch publications — one pin amortized over the whole cycle
/// (DESIGN.md §13.3). Reclamation of memory retired mid-cycle is deferred to
/// the next cycle boundary, bounded by the epoll timeout.
class ShardEpochPin {
 public:
  explicit ShardEpochPin(shard::ShardedAltIndex& index) {
    guards_.reserve(index.num_shards());
    for (size_t i = 0; i < index.num_shards(); ++i) {
      guards_.push_back(std::make_unique<EpochGuard>(index.shard_epoch(i)));
    }
  }

 private:
  std::vector<std::unique_ptr<EpochGuard>> guards_;
};

}  // namespace

/// One live connection. Owned by exactly one worker after the handoff
/// (single-threaded access; no locks needed past Worker::Enqueue).
struct Conn {
  explicit Conn(int fd_in) : fd(fd_in) {}
  int fd;
  FrameDecoder dec;
  std::vector<uint8_t> out;  ///< encoded responses not yet written
  size_t out_off = 0;        ///< bytes of `out` already sent
  bool read_ready = false;   ///< saw EPOLLIN, not yet drained to EAGAIN
  bool epollout_armed = false;
  bool closing = false;  ///< close once pending output is flushed

  size_t pending_out() const { return out.size() - out_off; }
};

class KvServer::Worker {
 public:
  Worker(KvServer* server, int id) : server_(server), id_(id) {
    for (auto& h : occ_hist_) h.store(0, std::memory_order_relaxed);
  }

  ~Worker() {
    if (epfd_ >= 0) close(epfd_);
    if (wake_fd_ >= 0) close(wake_fd_);
  }

  Status Init() {
    epfd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) return Status::Internal("epoll_create1 failed");
    wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) return Status::Internal("eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr marks the wake fd
    if (epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      return Status::Internal("epoll_ctl(wake) failed");
    }
    return Status::OK();
  }

  void StartThread() {
    thread_ = std::thread([this] { Run(); });
  }

  void Wake() {
    uint64_t one = 1;
    // A full eventfd counter still wakes the worker; the result is advisory.
    ssize_t ignored = write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
    // Stop() joins the acceptor before the workers, so by now no more
    // Enqueues can race this drain. Connections handed off after the
    // worker's final AdoptPending() would otherwise leak fd + heap.
    std::vector<Conn*> orphaned;
    {
      SpinLockGuard g(pending_lock_);
      orphaned.swap(pending_);
    }
    for (Conn* c : orphaned) {
      close(c->fd);
      delete c;
    }
  }

  /// True once Run() has returned (epoll failure or shutdown); the acceptor
  /// stops routing new connections to an exited worker.
  bool exited() const { return exited_.load(std::memory_order_acquire); }

  /// Acceptor-side handoff: the lock pairs with AdoptPending() on the worker
  /// thread, so the worker sees a fully constructed Conn.
  void Enqueue(Conn* conn) {
    {
      SpinLockGuard g(pending_lock_);
      pending_.push_back(conn);
    }
    Wake();
  }

  // -- stats (read concurrently by StatsJson; all relaxed atomics) ----------

  uint64_t frames_in() const { return frames_in_.load(std::memory_order_relaxed); }
  uint64_t responses_out() const { return responses_out_.load(std::memory_order_relaxed); }
  uint64_t malformed() const { return malformed_.load(std::memory_order_relaxed); }
  uint64_t batch_flushes() const { return batch_flushes_.load(std::memory_order_relaxed); }
  uint64_t batch_keys() const { return batch_keys_.load(std::memory_order_relaxed); }
  uint64_t open_conns() const { return open_conns_.load(std::memory_order_relaxed); }
  uint64_t occ_hist(size_t n) const { return occ_hist_[n].load(std::memory_order_relaxed); }

 private:
  struct BatchEntry {
    Conn* conn;
    uint64_t request_id;
  };

  void Run() {
    std::vector<epoll_event> events(64);
    while (!server_->stopping_.load(std::memory_order_acquire)) {
      // Frames left buffered by fairness/backpressure yields get no new
      // kernel event (ET, bytes already read): poll instead of sleeping so
      // revisit work is not delayed by up to kEpollTimeoutMs.
      const int timeout_ms = HasRevisitWork() ? 0 : kEpollTimeoutMs;
      int n = epoll_wait(epfd_, events.data(), static_cast<int>(events.size()),
                         timeout_ms);
      AdoptPending();
      if (server_->stopping_.load(std::memory_order_acquire)) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        // Unrecoverable epoll failure: this worker can no longer serve. Flag
        // it so the acceptor stops routing new connections here, and leave a
        // trail (stderr + counter) — silence would look like a client hang.
        std::fprintf(stderr, "[alt_server] worker %d: epoll_wait failed: %s; worker exiting\n",
                     id_, std::strerror(errno));
        metrics::Inc(metrics::Counter::kServerWorkerFailures);
        break;
      }
      bool any_ready = n > 0;
      for (int i = 0; i < n; ++i) {
        Conn* c = static_cast<Conn*>(events[i].data.ptr);
        if (c == nullptr) {  // wake eventfd
          uint64_t drained;
          while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) c->closing = true;
        if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) c->read_ready = true;
        // EPOLLOUT needs no flag: the post-drain flush below retries every
        // connection with pending output each cycle.
      }
      // Revisits (frames left buffered by fairness/backpressure yields) make
      // work even on timeout wake-ups.
      if (!any_ready && !HasRevisitWork()) continue;
      DrainCycle();
    }
    // Worker exit: FlushBatch ran inside the last DrainCycle; nothing is
    // in flight. Close everything we own. pending_ is drained by Join()
    // once the acceptor can no longer hand off new connections.
    for (Conn* c : conns_) {
      close(c->fd);
      delete c;
    }
    open_conns_.store(0, std::memory_order_relaxed);
    conns_.clear();
    exited_.store(true, std::memory_order_release);
  }

  /// Actionable buffered work: frames/bytes the next drain cycle could make
  /// progress on right now. Connections gated on the client draining output
  /// (backpressure, or closing with unflushed responses) are excluded: their
  /// FlushOut already hit EAGAIN and armed EPOLLOUT, so epoll is the right
  /// thing to wait on — counting them would turn the zero-timeout revisit
  /// poll in Run() into a busy spin.
  bool HasRevisitWork() const {
    for (Conn* c : conns_) {
      if (c->closing) continue;  // reaped same cycle, or waiting on EPOLLOUT
      if (c->pending_out() > server_->options_.max_pending_out_bytes) continue;
      if (c->read_ready || c->dec.HasCompleteFrame()) return true;
    }
    return false;
  }

  /// One coalescing pass over every connection with work, under a single
  /// epoch pin. This is the batch-occupancy driver: all GET frames decoded
  /// anywhere in the cycle funnel into one LookupBatch stream.
  void DrainCycle() {
    trace::Span span("drain", "server");
    uint64_t frames_before = frames_in_.load(std::memory_order_relaxed);
    {
      ShardEpochPin pin(*server_->index_);
      for (Conn* c : conns_) {
        if (c->closing) continue;
        if (c->pending_out() > 0) FlushOut(c);
        if (c->pending_out() > server_->options_.max_pending_out_bytes) continue;
        if (c->read_ready || c->dec.HasCompleteFrame()) DrainConn(c);
      }
      FlushBatch();
    }
    for (Conn* c : conns_) {
      if (c->pending_out() > 0) FlushOut(c);
    }
    ReapClosed();
    span.set_detail(frames_in_.load(std::memory_order_relaxed) - frames_before);
  }

  void AdoptPending() {
    std::vector<Conn*> adopted;
    {
      SpinLockGuard g(pending_lock_);
      adopted.swap(pending_);
    }
    for (Conn* c : adopted) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
      ev.data.ptr = c;
      if (epoll_ctl(epfd_, EPOLL_CTL_ADD, c->fd, &ev) != 0) {
        close(c->fd);
        delete c;
        continue;
      }
      // Bytes may have arrived before the ADD; treat the connection as
      // readable so the first cycle drains it to EAGAIN regardless.
      c->read_ready = true;
      conns_.push_back(c);
      open_conns_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Read + decode one connection until EAGAIN, a fairness/backpressure
  /// limit, or a fatal frame. GETs accumulate in the batch; everything else
  /// flushes it first (per-connection response order, DESIGN.md §13.2).
  void DrainConn(Conn* c) {
    size_t frames = 0;
    for (;;) {
      FrameHeader h;
      const uint8_t* body = nullptr;
      FrameDecoder::Result r = c->dec.Next(&h, &body);
      if (r == FrameDecoder::Result::kFrame) {
        HandleFrame(c, h, body);
        if (c->closing) return;
        if (++frames >= server_->options_.max_frames_per_drain) return;
        if (c->pending_out() > server_->options_.max_pending_out_bytes) return;
        continue;
      }
      if (r == FrameDecoder::Result::kError) {
        // Framing is unrecoverable (no boundary to resync on): best-effort
        // MALFORMED notice with request_id 0, then close. Flush first so the
        // notice does not overtake responses to earlier coalesced GETs.
        FlushBatch();
        malformed_.fetch_add(1, std::memory_order_relaxed);
        metrics::Inc(metrics::Counter::kServerMalformedFrames);
        AppendStatusResponse(&c->out, 0, RespStatus::kMalformed);
        responses_out_.fetch_add(1, std::memory_order_relaxed);
        c->closing = true;
        return;
      }
      // kNeedMore:
      if (!c->read_ready) return;
      ssize_t k = recv(c->fd, recv_buf_, sizeof(recv_buf_), 0);
      if (k > 0) {
        c->dec.Feed(recv_buf_, static_cast<size_t>(k));
        continue;
      }
      if (k == 0) {  // orderly shutdown; answer what was received, then close
        c->closing = true;
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        c->read_ready = false;
        return;
      }
      c->closing = true;
      return;
    }
  }

  void HandleFrame(Conn* c, const FrameHeader& h, const uint8_t* body) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    metrics::Inc(metrics::Counter::kServerFramesIn);
    const RespStatus v = ValidateRequest(h);
    if (v != RespStatus::kOk) {
      // Error responses obey per-connection order too (PROTOCOL.md lets
      // clients match positionally): flush coalesced GETs before replying.
      FlushBatch();
      malformed_.fetch_add(1, std::memory_order_relaxed);
      metrics::Inc(metrics::Counter::kServerMalformedFrames);
      Respond(c, [&] { AppendStatusResponse(&c->out, h.request_id, v, h.code); });
      // A body-size mismatch means the client's encoder is broken; later
      // frames cannot be trusted even though framing still parses.
      if (v == RespStatus::kMalformed) c->closing = true;
      return;
    }
    switch (h.op()) {
      case Op::kGet: {
        batch_keys_buf_[batch_n_] = GetU64(body);
        batch_meta_[batch_n_] = {c, h.request_id};
        if (++batch_n_ >= std::min(server_->options_.batch_size, kMaxBatch)) {
          FlushBatch();
        }
        break;
      }
      case Op::kPut: {
        FlushBatch();
        const Key key = GetU64(body);
        const Value value = GetU64(body + 8);
        // Upsert: Insert loses to a concurrent insert of the same key, Update
        // loses to a concurrent remove; retry the pair a few times before
        // reporting an internal error.
        bool created = false, done = false;
        for (int attempt = 0; attempt < 8 && !done; ++attempt) {
          if (server_->index_->Insert(key, value)) {
            created = true;
            done = true;
          } else if (server_->index_->Update(key, value)) {
            done = true;
          }
        }
        Respond(c, [&] {
          if (done) {
            AppendPutResponse(&c->out, h.request_id, created);
          } else {
            AppendStatusResponse(&c->out, h.request_id, RespStatus::kServerError,
                                 static_cast<uint8_t>(Op::kPut));
          }
        });
        break;
      }
      case Op::kDel: {
        FlushBatch();
        const bool removed = server_->index_->Remove(GetU64(body));
        Respond(c, [&] {
          AppendStatusResponse(&c->out, h.request_id,
                               removed ? RespStatus::kOk : RespStatus::kNotFound,
                               static_cast<uint8_t>(Op::kDel));
        });
        break;
      }
      case Op::kScan: {
        FlushBatch();
        const Key start = GetU64(body);
        const uint32_t count = GetU32(body + 8);
        if (count > server_->options_.max_scan_count) {
          Respond(c, [&] {
            AppendStatusResponse(&c->out, h.request_id, RespStatus::kTooLarge,
                                 static_cast<uint8_t>(Op::kScan));
          });
          break;
        }
        scan_scratch_.clear();
        server_->index_->Scan(start, count, &scan_scratch_);
        Respond(c, [&] {
          AppendScanResponse(&c->out, h.request_id, scan_scratch_.data(),
                             static_cast<uint32_t>(scan_scratch_.size()));
        });
        break;
      }
      case Op::kStats: {
        FlushBatch();
        const std::string json = server_->StatsJson();
        Respond(c, [&] { AppendStatsResponse(&c->out, h.request_id, json); });
        break;
      }
    }
  }

  template <typename Fn>
  void Respond(Conn* c, Fn&& append) {
    append();
    responses_out_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Issue the coalesced GETs as one AMAC batch and scatter responses back
  /// to their connections in FIFO order.
  void FlushBatch() {
    const size_t n = batch_n_;
    if (n == 0) return;
    batch_n_ = 0;
    trace::Span span("batch_flush", "server", n);
    server_->index_->LookupBatch(batch_keys_buf_, n, batch_values_, batch_found_);
    for (size_t i = 0; i < n; ++i) {
      Conn* c = batch_meta_[i].conn;
      if (batch_found_[i]) {
        AppendValueResponse(&c->out, batch_meta_[i].request_id, batch_values_[i]);
      } else {
        AppendStatusResponse(&c->out, batch_meta_[i].request_id,
                             RespStatus::kNotFound,
                             static_cast<uint8_t>(Op::kGet));
      }
      responses_out_.fetch_add(1, std::memory_order_relaxed);
    }
    batch_flushes_.fetch_add(1, std::memory_order_relaxed);
    batch_keys_.fetch_add(n, std::memory_order_relaxed);
    occ_hist_[n].fetch_add(1, std::memory_order_relaxed);
    metrics::Inc(metrics::Counter::kServerBatchFlushes);
    metrics::Inc(metrics::Counter::kServerBatchKeys, n);
  }

  void FlushOut(Conn* c) {
    while (c->out_off < c->out.size()) {
      ssize_t k = send(c->fd, c->out.data() + c->out_off,
                       c->out.size() - c->out_off, MSG_NOSIGNAL);
      if (k > 0) {
        c->out_off += static_cast<size_t>(k);
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!c->epollout_armed) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
          ev.data.ptr = c;
          epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd, &ev);
          c->epollout_armed = true;
        }
        return;
      }
      // Peer gone: drop the rest of the output and reap.
      c->out.clear();
      c->out_off = 0;
      c->closing = true;
      return;
    }
    c->out.clear();
    c->out_off = 0;
    if (c->epollout_armed) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
      ev.data.ptr = c;
      epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd, &ev);
      c->epollout_armed = false;
    }
  }

  void ReapClosed() {
    for (size_t i = 0; i < conns_.size();) {
      Conn* c = conns_[i];
      if (c->closing && c->pending_out() == 0) {
        close(c->fd);  // removes the fd from epfd_ implicitly
        delete c;
        conns_[i] = conns_.back();
        conns_.pop_back();
        open_conns_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      ++i;
    }
  }

  KvServer* const server_;
  const int id_;
  int epfd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;

  SpinLock pending_lock_;
  std::vector<Conn*> pending_ GUARDED_BY(pending_lock_);

  // Worker-thread-private state below (no locks: one owner).
  std::vector<Conn*> conns_;
  Key batch_keys_buf_[kMaxBatch];
  BatchEntry batch_meta_[kMaxBatch];
  Value batch_values_[kMaxBatch];
  bool batch_found_[kMaxBatch];
  size_t batch_n_ = 0;
  uint8_t recv_buf_[64 * 1024];
  std::vector<std::pair<Key, Value>> scan_scratch_;

  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> responses_out_{0};
  std::atomic<uint64_t> malformed_{0};
  std::atomic<uint64_t> batch_flushes_{0};
  std::atomic<uint64_t> batch_keys_{0};
  std::atomic<uint64_t> open_conns_{0};
  std::atomic<bool> exited_{false};
  std::array<std::atomic<uint64_t>, kMaxBatch + 1> occ_hist_;
};

KvServer::KvServer(ServerOptions options) : options_(std::move(options)) {
  options_.batch_size = std::max<size_t>(1, std::min(options_.batch_size, kMaxBatch));
  if (options_.num_workers < 1) options_.num_workers = 1;
  index_ = std::make_unique<shard::ShardedAltIndex>(options_.sharded);
}

KvServer::~KvServer() { Stop(); }

Status KvServer::Preload(const Key* keys, const Value* values, size_t n) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("Preload must run before Start");
  }
  Status s = index_->BulkLoad(keys, values, n);
  preloaded_ = s.ok();
  return s;
}

Status KvServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  if (!preloaded_) {
    // An empty BulkLoad publishes the whole-range tail model, so a server
    // started cold still serves PUT/GET immediately.
    Status s = index_->BulkLoad(nullptr, nullptr, 0);
    if (!s.ok()) return s;
    preloaded_ = true;
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Stop();
    return Status::IOError(std::string("bind() failed: ") + std::strerror(errno));
  }
  if (listen(listen_fd_, 256) != 0) {
    Stop();
    return Status::IOError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Stop();
    return Status::IOError("getsockname() failed");
  }
  bound_port_ = ntohs(addr.sin_port);

  accept_epfd_ = epoll_create1(EPOLL_CLOEXEC);
  accept_wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (accept_epfd_ < 0 || accept_wake_fd_ < 0) {
    Stop();
    return Status::Internal("acceptor epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(accept_epfd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = accept_wake_fd_;
  epoll_ctl(accept_epfd_, EPOLL_CTL_ADD, accept_wake_fd_, &ev);

  stopping_.store(false, std::memory_order_release);
  workers_.clear();
  for (int i = 0; i < options_.num_workers; ++i) {
    auto w = std::make_unique<Worker>(this, i);
    Status s = w->Init();
    if (!s.ok()) {
      Stop();
      return s;
    }
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) w->StartThread();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void KvServer::AcceptLoop() {
  epoll_event events[16];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = epoll_wait(accept_epfd_, events, 16, kEpollTimeoutMs);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == accept_wake_fd_) {
        uint64_t drained;
        while (read(accept_wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      trace::Span span("accept", "server");
      uint64_t accepted = 0;
      for (;;) {
        int fd = accept4(listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;  // EAGAIN: burst drained (or transient error)
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Conn* c = new Conn(fd);
        const size_t nw = workers_.size();
        size_t w = static_cast<size_t>(
            next_worker_.fetch_add(1, std::memory_order_relaxed) % nw);
        // Skip workers that died on an epoll failure — a connection assigned
        // to one would never be adopted and hang until the client times out.
        // (If every worker is dead, the Enqueue below still lands somewhere;
        // Worker::Join drains and closes unadopted connections at Stop().)
        for (size_t probe = 0; probe < nw && workers_[w]->exited(); ++probe) {
          w = (w + 1) % nw;
        }
        workers_[w]->Enqueue(c);
        accepts_.fetch_add(1, std::memory_order_relaxed);
        metrics::Inc(metrics::Counter::kServerAccepts);
        ++accepted;
      }
      span.set_detail(accepted);
    }
  }
}

void KvServer::Stop() {
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_wake_fd_ >= 0) {
      uint64_t one = 1;
      ssize_t ignored = write(accept_wake_fd_, &one, sizeof(one));
      (void)ignored;
    }
    for (auto& w : workers_) w->Wake();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& w : workers_) w->Join();
  workers_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_epfd_ >= 0) {
    close(accept_epfd_);
    accept_epfd_ = -1;
  }
  if (accept_wake_fd_ >= 0) {
    close(accept_wake_fd_);
    accept_wake_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

ServerStats KvServer::CollectStats() const {
  ServerStats s;
  s.accepts = accepts_.load(std::memory_order_relaxed);
  s.occupancy_hist.resize(kMaxBatch + 1, 0);
  for (const auto& w : workers_) {
    s.frames_in += w->frames_in();
    s.responses_out += w->responses_out();
    s.malformed += w->malformed();
    s.batch_flushes += w->batch_flushes();
    s.batch_keys += w->batch_keys();
    s.open_connections += w->open_conns();
    for (size_t i = 0; i <= kMaxBatch; ++i) s.occupancy_hist[i] += w->occ_hist(i);
  }
  return s;
}

std::string KvServer::StatsJson() const {
  const ServerStats s = CollectStats();
  std::string out = "{\"server\":{";
  auto field = [&out](const char* name, uint64_t v, bool comma = true) {
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(v);
    if (comma) out += ',';
  };
  field("accepts", s.accepts);
  field("open_connections", s.open_connections);
  field("frames_in", s.frames_in);
  field("responses_out", s.responses_out);
  field("malformed_frames", s.malformed);
  field("batch_flushes", s.batch_flushes);
  field("batch_keys", s.batch_keys);
  out += "\"mean_batch_occupancy\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s.mean_batch_occupancy());
  out += buf;
  out += ",\"batch_occupancy_hist\":[";
  for (size_t i = 0; i < s.occupancy_hist.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(s.occupancy_hist[i]);
  }
  out += "]},\"metrics\":";
  out += metrics::ToJson(metrics::TakeSnapshot());
  out += "}";
  return out;
}

}  // namespace server
}  // namespace alt
