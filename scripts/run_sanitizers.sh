#!/usr/bin/env bash
# Build and run the test suite under AddressSanitizer+UBSan and (optionally)
# ThreadSanitizer. Usage: scripts/run_sanitizers.sh [asan|tsan|all]
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-asan}"

run_asan() {
  cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=Debug \
    -DALT_SANITIZE=address \
    -DALT_BUILD_BENCHMARKS=OFF -DALT_BUILD_EXAMPLES=OFF
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
}

run_tsan() {
  cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=Debug \
    -DALT_SANITIZE=thread \
    -DALT_BUILD_BENCHMARKS=OFF -DALT_BUILD_EXAMPLES=OFF
  cmake --build build-tsan
  # Focus on the concurrency-heavy binaries; the full suite is slow under TSan.
  TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/tsan.supp" ./build-tsan/tests/art_test
  TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/tsan.supp" ./build-tsan/tests/retraining_test
  TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/tsan.supp" ./build-tsan/tests/concurrency_test
  TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/tsan.supp" ./build-tsan/tests/olc_btree_test
  TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/tsan.supp" ./build-tsan/tests/lookup_batch_test
}

case "$mode" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all) run_asan; run_tsan ;;
  *) echo "usage: $0 [asan|tsan|all]" >&2; exit 2 ;;
esac
