// Batched read path sweep: LookupBatch throughput vs. call width on the
// ALT-index, for uniform and Zipfian (theta = --zipf-theta) query draws,
// read-only and with concurrent insert/remove churn in the background.
// Width 0 rows ("scalar") call the plain Lookup loop as the baseline the
// AMAC pipeline has to beat; widths 1..64 call LookupBatch with that many
// keys per call (the internal group width stays at the configured
// AltOptions::batch_group_width, clamped to the call width).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/epoch.h"
#include "common/random.h"
#include "common/spinlock.h"
#include "common/timer.h"
#include "common/zipf.h"
#include "core/alt_index.h"

namespace alt {
namespace bench {
namespace {

constexpr size_t kWidths[] = {1, 2, 4, 8, 16, 32, 64};

inline void DoNotOptimize(const Value& v) {
  asm volatile("" : : "r,m"(v) : "memory");
}

// Per-thread query stream, pre-generated so the timed region is index-only.
std::vector<std::vector<Key>> MakeQueries(const std::vector<Key>& loaded,
                                          int threads, size_t per_thread,
                                          bool zipfian, double theta,
                                          uint64_t seed) {
  std::vector<std::vector<Key>> streams(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    auto& q = streams[static_cast<size_t>(t)];
    q.reserve(per_thread);
    Rng rng(seed + static_cast<uint64_t>(t) * 7919);
    ScrambledZipf zipf(loaded.size(), theta, seed + static_cast<uint64_t>(t));
    for (size_t i = 0; i < per_thread; ++i) {
      const size_t r = zipfian ? zipf.Next() : rng.NextBounded(loaded.size());
      q.push_back(loaded[r]);
    }
  }
  return streams;
}

// Run every query stream through the index at `width` keys per call
// (width 0 = scalar Lookup loop) and return aggregate Mops.
double TimedSweep(AltIndex* index, const std::vector<std::vector<Key>>& streams,
                  size_t width) {
  const int threads = static_cast<int>(streams.size());
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const auto& q = streams[static_cast<size_t>(t)];
      std::vector<Value> out(width ? width : 1);
      std::unique_ptr<bool[]> found(new bool[width ? width : 1]);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) CpuRelax();
      if (width == 0) {
        Value v;
        for (const Key k : q) {
          if (index->Lookup(k, &v)) DoNotOptimize(v);
        }
      } else {
        for (size_t i = 0; i < q.size(); i += width) {
          const size_t n = std::min(width, q.size() - i);
          index->LookupBatch(&q[i], n, out.data(), found.get());
          DoNotOptimize(out[0]);
        }
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) CpuRelax();
  const Stopwatch clock;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double seconds = clock.ElapsedSeconds();
  size_t total = 0;
  for (const auto& q : streams) total += q.size();
  return seconds > 0 ? static_cast<double>(total) / seconds / 1e6 : 0;
}

void RunSection(const BenchConfig& cfg, AltIndex* index,
                const std::vector<Key>& loaded, const std::vector<Key>& pool,
                bool zipfian, bool with_churn) {
  const auto streams =
      MakeQueries(loaded, cfg.threads, cfg.ops_per_thread, zipfian,
                  cfg.zipf_theta, cfg.seed);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  if (with_churn) {
    // Two background writers cycle insert/remove over disjoint pool shards so
    // the read path sees live slot churn (and, with enough traffic, expansion).
    for (int t = 0; t < 2; ++t) {
      writers.emplace_back([&, t] {
        while (!stop.load(std::memory_order_acquire)) {
          for (size_t i = static_cast<size_t>(t); i < pool.size(); i += 2) {
            index->Insert(pool[i], ValueFor(pool[i]));
            if (stop.load(std::memory_order_acquire)) return;
          }
          for (size_t i = static_cast<size_t>(t); i < pool.size(); i += 2) {
            index->Remove(pool[i]);
            if (stop.load(std::memory_order_acquire)) return;
          }
        }
      });
    }
  }
  const double scalar = TimedSweep(index, streams, 0);
  std::vector<std::string> row = {zipfian ? "zipf" : "uniform",
                                  with_churn ? "yes" : "no", Fmt(scalar)};
  for (const size_t w : kWidths) {
    const double mops = TimedSweep(index, streams, w);
    row.push_back(Fmt(mops) + "(" + Fmt(mops / scalar) + "x)");
  }
  PrintRow(row);
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
}

void Run(const BenchConfig& cfg) {
  for (const Dataset d : cfg.datasets) {
    const auto keys = LoadKeys(cfg, d);
    AltIndex index;
    const BenchSetup setup = SplitDataset(keys, cfg.bulk_fraction);
    std::vector<Value> values(setup.loaded.size());
    for (size_t i = 0; i < setup.loaded.size(); ++i) {
      values[i] = ValueFor(setup.loaded[i]);
    }
    const Status st =
        index.BulkLoad(setup.loaded.data(), values.data(), setup.loaded.size());
    if (!st.ok()) {
      std::fprintf(stderr, "bulk load failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    std::vector<std::string> cols = {"dist", "churn", "scalar"};
    for (const size_t w : kWidths) cols.push_back("w=" + std::to_string(w));
    PrintHeader(std::string("LookupBatch width sweep, ") + DatasetName(d) +
                    ", " + std::to_string(setup.loaded.size()) + " keys, " +
                    std::to_string(cfg.threads) + " threads (Mops, x = vs scalar)",
                cols);
    RunSection(cfg, &index, setup.loaded, setup.pool, /*zipfian=*/false,
               /*with_churn=*/false);
    RunSection(cfg, &index, setup.loaded, setup.pool, /*zipfian=*/true,
               /*with_churn=*/false);
    RunSection(cfg, &index, setup.loaded, setup.pool, /*zipfian=*/false,
               /*with_churn=*/true);
    RunSection(cfg, &index, setup.loaded, setup.pool, /*zipfian=*/true,
               /*with_churn=*/true);
    EpochManager::Global().DrainAll();
  }
}

}  // namespace
}  // namespace bench
}  // namespace alt

int main(int argc, char** argv) {
  alt::bench::Run(alt::bench::BenchConfig::Parse(argc, argv));
  return 0;
}
