#include "shard/sharded_alt_index.h"

#include <algorithm>
#include <thread>

#include "common/json.h"
#include "common/trace.h"
#include "shard/merge_iterator.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace alt {
namespace shard {

namespace {

/// splitmix64 finalizer: decorrelates the kHash shard choice from key order
/// so sequential key ranges spread evenly.
uint64_t MixKey(Key k) {
  uint64_t x = k + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-shard flight-recorder categories. The trace ring stores the pointer,
/// so these must be string literals with static storage (common/trace.h).
const char* ShardEpochCategory(size_t i) {
  static const char* const kCategories[] = {
      "epoch/shard0",  "epoch/shard1",  "epoch/shard2",  "epoch/shard3",
      "epoch/shard4",  "epoch/shard5",  "epoch/shard6",  "epoch/shard7",
      "epoch/shard8",  "epoch/shard9",  "epoch/shard10", "epoch/shard11",
      "epoch/shard12", "epoch/shard13", "epoch/shard14", "epoch/shard15",
      "epoch/shard16", "epoch/shard17", "epoch/shard18", "epoch/shard19",
      "epoch/shard20", "epoch/shard21", "epoch/shard22", "epoch/shard23",
      "epoch/shard24", "epoch/shard25", "epoch/shard26", "epoch/shard27",
      "epoch/shard28", "epoch/shard29", "epoch/shard30", "epoch/shard31",
  };
  static_assert(sizeof(kCategories) / sizeof(kCategories[0]) ==
                    ShardedOptions::kMaxShards,
                "one category literal per possible shard");
  return kCategories[i];
}

void MaybePinToCpu(size_t i, bool pin) {
#if defined(__linux__)
  if (!pin) return;
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(i % cpus), &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)i;
  (void)pin;
#endif
}

}  // namespace

ShardedAltIndex::ShardedAltIndex(ShardedOptions options) : options_(options) {
  options_.num_shards =
      std::clamp(options_.num_shards, 1, ShardedOptions::kMaxShards);
  const size_t n = static_cast<size_t>(options_.num_shards);
  // Pre-BulkLoad boundaries: uniform keyspace split. BulkLoad rebalances to
  // equal key counts; an index used without BulkLoad keeps these.
  const Key step = ~Key{0} / static_cast<Key>(n);
  starts_.resize(n);
  for (size_t i = 0; i < n; ++i) starts_[i] = static_cast<Key>(i) * step;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(MakeShard(i));
    // Empty-load so the index is fully operational without a facade BulkLoad
    // (AltIndex requires one bulk load before any operation).
    shards_.back().index->BulkLoad(nullptr, nullptr, 0);
  }
}

ShardedAltIndex::~ShardedAltIndex() = default;

ShardedAltIndex::Shard ShardedAltIndex::MakeShard(size_t i) const {
  Shard s;
  s.epoch = std::make_unique<EpochManager>(ShardEpochCategory(i));
  AltOptions o = options_.index;
  o.epoch_manager = s.epoch.get();
  s.index = std::make_unique<AltIndex>(o);
  return s;
}

std::string ShardedAltIndex::Name() const {
  std::string name = "ALT-sharded" + std::to_string(shards_.size());
  if (options_.partition == Partition::kHash) name += "-hash";
  return name;
}

size_t ShardedAltIndex::ShardIndexOf(Key key) const {
  if (options_.partition == Partition::kHash) {
    return static_cast<size_t>(MixKey(key) % shards_.size());
  }
  // Largest i with starts_[i] <= key; starts_[0] == 0 makes this total.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), key);
  return static_cast<size_t>(it - starts_.begin()) - 1;
}

Status ShardedAltIndex::BulkLoad(const Key* keys, const Value* values, size_t n) {
  trace::Span span("shard_bulk_load", "shard", n);
  if (loaded_) {
    return Status::InvalidArgument("BulkLoad may only run once");
  }
  for (size_t i = 1; i < n; ++i) {
    if (keys[i] <= keys[i - 1]) {
      return Status::InvalidArgument("keys must be sorted and duplicate-free");
    }
  }
  const size_t num_shards = shards_.size();

  // Per-shard slices. kRange: equal-count cuts over the sorted input, cut i
  // at index i*n/N; the key at each cut becomes the shard's start so runtime
  // dispatch agrees with the load split. kHash: stable-partition copies (a
  // filtered sorted sequence stays sorted).
  std::vector<std::pair<const Key*, const Value*>> slice_ptrs(num_shards,
                                                              {nullptr, nullptr});
  std::vector<size_t> slice_len(num_shards, 0);
  std::vector<std::vector<Key>> hash_keys;
  std::vector<std::vector<Value>> hash_values;
  std::vector<Key> new_starts = starts_;  // committed only on success
  if (options_.partition == Partition::kRange) {
    std::vector<size_t> cut(num_shards + 1, n);
    for (size_t i = 0; i <= num_shards; ++i) cut[i] = i * n / num_shards;
    for (size_t i = 0; i < num_shards; ++i) {
      if (i > 0 && cut[i] < n) new_starts[i] = keys[cut[i]];
      slice_ptrs[i] = {keys + cut[i], values + cut[i]};
      slice_len[i] = cut[i + 1] - cut[i];
    }
    new_starts[0] = 0;
  } else {
    hash_keys.resize(num_shards);
    hash_values.resize(num_shards);
    for (size_t j = 0; j < n; ++j) {
      const size_t s = static_cast<size_t>(MixKey(keys[j]) % num_shards);
      hash_keys[s].push_back(keys[j]);
      hash_values[s].push_back(values[j]);
    }
    for (size_t i = 0; i < num_shards; ++i) {
      slice_ptrs[i] = {hash_keys[i].data(), hash_values[i].data()};
      slice_len[i] = hash_keys[i].size();
    }
  }

  // Rebuild every shard and load its slice. The constructor's empty-loaded
  // shards are discarded: AltIndex bulk-loads exactly once. Each shard is
  // constructed *and* loaded on its worker thread so first-touch places the
  // shard's memory with its loader (the NUMA policy, DESIGN.md §12).
  std::vector<Shard> fresh(num_shards);
  std::vector<Status> status(num_shards);
  auto load_one = [&](size_t i) {
    MaybePinToCpu(i, options_.pin_load_threads);
    fresh[i] = MakeShard(i);
    status[i] =
        fresh[i].index->BulkLoad(slice_ptrs[i].first, slice_ptrs[i].second,
                                 slice_len[i]);
  };
  if (options_.parallel_load && num_shards > 1) {
    std::vector<std::thread> loaders;
    loaders.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) loaders.emplace_back(load_one, i);
    for (auto& t : loaders) t.join();
  } else {
    for (size_t i = 0; i < num_shards; ++i) load_one(i);
  }
  for (size_t i = 0; i < num_shards; ++i) {
    if (!status[i].ok()) return status[i];
  }
  starts_ = std::move(new_starts);
  shards_ = std::move(fresh);
  loaded_ = true;
  return Status::OK();
}

bool ShardedAltIndex::Lookup(Key key, Value* out) {
  return shards_[ShardIndexOf(key)].index->Lookup(key, out);
}

bool ShardedAltIndex::Insert(Key key, Value value) {
  return shards_[ShardIndexOf(key)].index->Insert(key, value);
}

bool ShardedAltIndex::Update(Key key, Value value) {
  return shards_[ShardIndexOf(key)].index->Update(key, value);
}

bool ShardedAltIndex::Remove(Key key) {
  return shards_[ShardIndexOf(key)].index->Remove(key);
}

bool ShardedAltIndex::LookupServed(Key key, Value* out, ServedBy* served) {
  return shards_[ShardIndexOf(key)].index->Lookup(key, out, served);
}

bool ShardedAltIndex::InsertServed(Key key, Value value, ServedBy* served) {
  return shards_[ShardIndexOf(key)].index->Insert(key, value, served);
}

bool ShardedAltIndex::UpdateServed(Key key, Value value, ServedBy* served) {
  return shards_[ShardIndexOf(key)].index->Update(key, value, served);
}

bool ShardedAltIndex::RemoveServed(Key key, ServedBy* served) {
  return shards_[ShardIndexOf(key)].index->Remove(key, served);
}

size_t ShardedAltIndex::LookupBatch(const Key* keys, size_t n, Value* out,
                                    bool* found) {
  if (shards_.size() == 1) {
    return shards_[0].index->LookupBatch(keys, n, out, found);
  }
  // Group keys by shard (order within a shard preserved) so each shard runs
  // one AMAC-pipelined batch, then scatter results back to caller positions.
  std::vector<std::vector<uint32_t>> groups(shards_.size());
  for (size_t i = 0; i < n; ++i) {
    groups[ShardIndexOf(keys[i])].push_back(static_cast<uint32_t>(i));
  }
  std::vector<Key> shard_keys;
  std::vector<Value> shard_out;
  std::unique_ptr<bool[]> shard_found(new bool[n]);
  size_t hits = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const auto& g = groups[s];
    if (g.empty()) continue;
    shard_keys.clear();
    shard_keys.reserve(g.size());
    for (uint32_t idx : g) shard_keys.push_back(keys[idx]);
    shard_out.resize(g.size());
    hits += shards_[s].index->LookupBatch(shard_keys.data(), g.size(),
                                          shard_out.data(), shard_found.get());
    for (size_t j = 0; j < g.size(); ++j) {
      found[g[j]] = shard_found[j];
      if (shard_found[j]) out[g[j]] = shard_out[j];
    }
  }
  return hits;
}

size_t ShardedAltIndex::ScanRangePartition(
    Key start, size_t count, std::vector<std::pair<Key, Value>>* out) const {
  std::vector<std::pair<Key, Value>> tmp;
  Key cursor = start;
  for (size_t i = ShardIndexOf(start);
       i < shards_.size() && out->size() < count; ++i) {
    shards_[i].index->Scan(cursor, count - out->size(), &tmp);
    out->insert(out->end(), tmp.begin(), tmp.end());
    if (i + 1 < shards_.size()) cursor = starts_[i + 1];
  }
  return out->size();
}

size_t ShardedAltIndex::ScanMerged(
    Key start, size_t count, std::vector<std::pair<Key, Value>>* out) const {
  std::vector<AltIndexScanCursor> cursors;
  cursors.reserve(shards_.size());
  const size_t batch = std::min(options_.scan_batch, count);
  for (const Shard& s : shards_) {
    cursors.emplace_back(s.index.get(), start, batch);
  }
  KWayMerger<AltIndexScanCursor> merger(std::move(cursors));
  std::pair<Key, Value> kv;
  while (out->size() < count && merger.Next(&kv)) out->push_back(kv);
  return out->size();
}

size_t ShardedAltIndex::Scan(Key start, size_t count,
                             std::vector<std::pair<Key, Value>>* out) {
  out->clear();
  if (count == 0) return 0;
  return options_.partition == Partition::kRange
             ? ScanRangePartition(start, count, out)
             : ScanMerged(start, count, out);
}

size_t ShardedAltIndex::RangeQuery(Key lo, Key hi,
                                   std::vector<std::pair<Key, Value>>* out) {
  out->clear();
  if (hi < lo) return 0;
  if (options_.partition == Partition::kRange) {
    std::vector<std::pair<Key, Value>> tmp;
    Key cursor = lo;
    const size_t last = ShardIndexOf(hi);
    for (size_t i = ShardIndexOf(lo); i <= last; ++i) {
      shards_[i].index->RangeQuery(cursor, hi, &tmp);
      out->insert(out->end(), tmp.begin(), tmp.end());
      if (i + 1 < shards_.size()) cursor = starts_[i + 1];
    }
    return out->size();
  }
  std::vector<AltIndexScanCursor> cursors;
  cursors.reserve(shards_.size());
  for (const Shard& s : shards_) {
    cursors.emplace_back(s.index.get(), lo, options_.scan_batch);
  }
  KWayMerger<AltIndexScanCursor> merger(std::move(cursors));
  std::pair<Key, Value> kv;
  while (merger.Next(&kv) && kv.first <= hi) out->push_back(kv);
  return out->size();
}

ConcurrentIndex::MemoryBreakdown ShardedAltIndex::CollectMemoryBreakdown()
    const {
  MemoryBreakdown b;
  for (const Shard& s : shards_) {
    const AltIndex::StructuralStats st = s.index->CollectStructuralStats();
    b.model_bytes += st.model_bytes;
    b.delta_bytes += st.art_bytes + st.expansion_bytes;
    b.auxiliary_bytes +=
        st.fast_pointer_bytes + st.directory_bytes + st.header_bytes;
  }
  return b;
}

std::string ShardedAltIndex::StructureJson() const {
  std::string out = "{\n  \"name\": \"";
  out += JsonEscape(Name());
  out += "\",\n  \"num_shards\": " + std::to_string(shards_.size());
  out += ",\n  \"partition\": \"";
  out += options_.partition == Partition::kRange ? "range" : "hash";
  out += "\",\n  \"shards\": [\n";
  for (size_t i = 0; i < shards_.size(); ++i) {
    out += shards_[i].index->StructureJson();
    if (i + 1 < shards_.size()) out += ",\n";
  }
  out += "\n  ]\n}\n";
  return out;
}

size_t ShardedAltIndex::MemoryUsage() const {
  size_t total = 0;
  for (const Shard& s : shards_) total += s.index->MemoryUsage();
  return total;
}

size_t ShardedAltIndex::Size() const {
  size_t total = 0;
  for (const Shard& s : shards_) total += s.index->Size();
  return total;
}

void ShardedAltIndex::DrainAllShards() {
  for (Shard& s : shards_) s.epoch->DrainAll();
}

}  // namespace shard
}  // namespace alt
