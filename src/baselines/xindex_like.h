#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/index_interface.h"
#include "common/shared_mutex.h"

namespace alt {

/// \brief Mechanism-faithful re-implementation of XIndex (Tang et al.,
/// PPoPP'20):
///
///  - *two-level RMI*: a linear root model predicts the group (leaf), with an
///    error-bounded binary search over the groups' pivot keys;
///  - *error-bounded leaf search*: each group keeps a sorted array + linear
///    model; lookups binary-search within [pred - err, pred + err] — the
///    prediction-error cost of Table I;
///  - *per-group delta buffer*: inserts go to an ordered buffer (the paper's
///    masstree stands in as an ordered map under a reader-writer lock, see
///    DESIGN.md §5) consulted before the array;
///  - *background compaction*: a dedicated thread merges oversized buffers
///    into fresh arrays and retrains the group model — XIndex's signature
///    background-retraining design (§II-B).
///
/// The group set is fixed at bulk-load time (no group splits); compaction
/// swaps each group's immutable data snapshot in place.
class XIndexLike : public ConcurrentIndex {
 public:
  XIndexLike() = default;
  ~XIndexLike() override;

  std::string Name() const override { return "XIndex"; }

  Status BulkLoad(const Key* keys, const Value* values, size_t n) override;
  bool Lookup(Key key, Value* out) override;
  bool Insert(Key key, Value value) override;
  bool Update(Key key, Value value) override;
  bool Remove(Key key) override;
  size_t Scan(Key start, size_t count,
              std::vector<std::pair<Key, Value>>* out) override;
  size_t MemoryUsage() const override;
  size_t Size() const override { return size_.load(std::memory_order_relaxed); }

  size_t NumGroups() const { return groups_.size(); }
  uint64_t Compactions() const { return compactions_.load(std::memory_order_relaxed); }

 private:
  /// Immutable sorted snapshot of a group + its trained model.
  struct GroupData {
    std::vector<Key> keys;
    std::vector<Value> values;
    Key base = 0;
    double slope = 0;
    uint32_t max_error = 0;

    void Train();
    /// Index of `key` in `keys`, or keys.size() if absent.
    size_t Find(Key key) const;
    size_t LowerBound(Key key) const;
  };

  struct Group {
    Key first_key = 0;
    std::atomic<GroupData*> data{nullptr};
    mutable SharedMutex buffer_mu;
    /// nullopt marks a tombstone shadowing an array-resident key.
    std::map<Key, std::optional<Value>> buffer GUARDED_BY(buffer_mu);
    std::atomic<uint32_t> buffer_count{0};

    ~Group() { delete data.load(std::memory_order_relaxed); }
  };

  static constexpr size_t kGroupSize = 1024;       ///< keys per group at build
  static constexpr uint32_t kCompactThreshold = 256;  ///< buffer size triggering merge

  Group* LocateGroup(Key key) const;
  void CompactGroup(Group* g);
  void BackgroundLoop();

  std::vector<Key> pivots_;
  std::vector<std::unique_ptr<Group>> groups_;
  // Root model over pivots (RMI level 0).
  Key root_base_ = 0;
  double root_slope_ = 0;
  uint32_t root_error_ = 0;

  std::thread bg_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> compactions_{0};
};

}  // namespace alt
