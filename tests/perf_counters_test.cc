// Tests for the perf_event_open harness (common/perf_counters.h) and its
// runner integration. The harness must work — or degrade loudly — on any
// kernel configuration: bare metal (hardware tier), VMs/containers without a
// PMU (software tier), and seccomp'd sandboxes (unavailable tier). The tests
// therefore assert tier-consistent behaviour, not a specific tier.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "common/epoch.h"
#include "common/perf_counters.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace alt {
namespace {

TEST(PerfCountersTest, StartStopProducesTierConsistentReading) {
  perf::ThreadCounters tc;
  tc.Start();
  // A measurable busy loop (the compiler must not fold it away).
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 2000000; ++i) sink = sink + i;
  const perf::Reading r = tc.Stop();
  EXPECT_EQ(r.tier, tc.tier());
  EXPECT_GE(r.scale, 1.0);
  switch (tc.tier()) {
    case perf::Tier::kHardware:
      EXPECT_GT(r.cycles, 0u);
      EXPECT_GT(r.instructions, 0u);
      break;
    case perf::Tier::kSoftware:
      EXPECT_GT(r.task_clock_ns, 0u);
      EXPECT_EQ(r.cycles, 0u);  // never fabricated
      break;
    case perf::Tier::kUnavailable:
      EXPECT_FALSE(tc.error().empty());
      break;
  }
#if defined(__x86_64__)
  EXPECT_GT(r.tsc_cycles, 0u);
#endif
}

TEST(PerfCountersTest, TierNameAlwaysExplainsDegradation) {
  perf::ThreadCounters tc;
  const std::string name = perf::TierName(tc.tier(), tc.error());
  EXPECT_FALSE(name.empty());
  if (tc.tier() == perf::Tier::kHardware) {
    EXPECT_EQ(name, "hardware");
  } else {
    // Degraded tiers must carry the open-failure reason, so a report line
    // can never silently pass off zeros as measurements.
    EXPECT_NE(name.find('('), std::string::npos) << name;
    EXPECT_FALSE(tc.error().empty());
  }
}

TEST(PerfCountersTest, AccumulateSumsAndKeepsWorstScale) {
  perf::Reading a;
  a.cycles = 100;
  a.task_clock_ns = 5;
  a.tsc_cycles = 7;
  a.scale = 1.5;
  perf::Reading b;
  b.cycles = 23;
  b.task_clock_ns = 2;
  b.tsc_cycles = 3;
  b.scale = 1.2;
  a.Accumulate(b);
  EXPECT_EQ(a.cycles, 123u);
  EXPECT_EQ(a.task_clock_ns, 7u);
  EXPECT_EQ(a.tsc_cycles, 10u);
  EXPECT_DOUBLE_EQ(a.scale, 1.5);
}

TEST(PerfCountersTest, RepeatedStartStopIsStable) {
  perf::ThreadCounters tc;
  for (int round = 0; round < 3; ++round) {
    tc.Start();
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < 100000; ++i) sink = sink + i;
    const perf::Reading r = tc.Stop();
    EXPECT_EQ(r.tier, tc.tier()) << "round " << round;
  }
}

TEST(PerfStatRunnerTest, RunWorkloadFillsPerfResult) {
  auto index = MakeIndex("alt", AltOptions{});
  ASSERT_NE(index, nullptr);
  std::vector<Key> keys;
  std::vector<Value> values;
  for (Key k = 1; k <= 5000; ++k) {
    keys.push_back(k * 10);
    values.push_back(k);
  }
  ASSERT_TRUE(index->BulkLoad(keys.data(), values.data(), keys.size()).ok());
  std::vector<std::vector<Op>> streams(2);
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < 20000; ++i) {
      streams[static_cast<size_t>(t)].push_back(
          Op{OpType::kRead, keys[static_cast<size_t>(i) % keys.size()]});
    }
  }
  RunOptions opts;
  opts.perf_stat = true;
  const RunResult r = RunWorkload(index.get(), streams, opts);
  EXPECT_EQ(r.failed_ops, 0u);
  ASSERT_TRUE(r.perf.enabled);
  EXPECT_EQ(r.perf.ops, r.total_ops);
  EXPECT_FALSE(r.perf.tier_name.empty());
#if defined(__x86_64__)
  // Whatever the tier, the TSC estimate is real data: a read costs cycles.
  EXPECT_GT(r.perf.PerOp(r.perf.totals.tsc_cycles), 0.0);
#endif
  if (r.perf.tier == perf::Tier::kHardware) {
    EXPECT_GT(r.perf.PerOp(r.perf.totals.cycles), 0.0);
    EXPECT_GT(r.perf.PerOp(r.perf.totals.instructions), 0.0);
  } else if (r.perf.tier == perf::Tier::kSoftware) {
    EXPECT_GT(r.perf.PerOp(r.perf.totals.task_clock_ns), 0.0);
  }
  // The human rendering never crashes regardless of tier.
  PrintPerfStat(r, stderr);
  index.reset();
  EpochManager::Global().DrainAll();
}

TEST(PerfStatRunnerTest, DisabledByDefaultCostsNothing) {
  auto index = MakeIndex("alt", AltOptions{});
  ASSERT_NE(index, nullptr);
  std::vector<Key> keys{10, 20, 30};
  std::vector<Value> values{1, 2, 3};
  ASSERT_TRUE(index->BulkLoad(keys.data(), values.data(), keys.size()).ok());
  std::vector<std::vector<Op>> streams(1);
  streams[0].push_back(Op{OpType::kRead, 20});
  const RunResult r = RunWorkload(index.get(), streams, RunOptions{});
  EXPECT_FALSE(r.perf.enabled);
  PrintPerfStat(r, stderr);  // no-op, must not print or crash
  index.reset();
  EpochManager::Global().DrainAll();
}

}  // namespace
}  // namespace alt
