// alt-epoch-pinned clean fixture: all three forms of pin evidence — a live
// EpochGuard, a runtime assertion, and interprocedural propagation via
// ALT_REQUIRES_EPOCH on the caller itself.
#define ALT_REQUIRES_EPOCH
#define ALT_ASSERT_EPOCH_PINNED(where)
struct EpochGuard {};

struct Node {
  int value;
};

int ReadNode(const Node* n) ALT_REQUIRES_EPOCH;

int PinnedByGuard(const Node* n) {
  EpochGuard g;
  return ReadNode(n);
}

int PinnedByAssertion(const Node* n) {
  ALT_ASSERT_EPOCH_PINNED("PinnedByAssertion");
  return ReadNode(n);
}

int ObligationPushedToCaller(const Node* n) ALT_REQUIRES_EPOCH {
  return ReadNode(n);
}
