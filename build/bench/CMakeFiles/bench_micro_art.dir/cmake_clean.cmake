file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_art.dir/bench_micro_art.cc.o"
  "CMakeFiles/bench_micro_art.dir/bench_micro_art.cc.o.d"
  "bench_micro_art"
  "bench_micro_art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
