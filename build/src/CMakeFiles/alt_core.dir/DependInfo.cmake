
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alt_index.cc" "src/CMakeFiles/alt_core.dir/core/alt_index.cc.o" "gcc" "src/CMakeFiles/alt_core.dir/core/alt_index.cc.o.d"
  "/root/repo/src/core/fast_pointer_buffer.cc" "src/CMakeFiles/alt_core.dir/core/fast_pointer_buffer.cc.o" "gcc" "src/CMakeFiles/alt_core.dir/core/fast_pointer_buffer.cc.o.d"
  "/root/repo/src/core/gpl.cc" "src/CMakeFiles/alt_core.dir/core/gpl.cc.o" "gcc" "src/CMakeFiles/alt_core.dir/core/gpl.cc.o.d"
  "/root/repo/src/core/gpl_model.cc" "src/CMakeFiles/alt_core.dir/core/gpl_model.cc.o" "gcc" "src/CMakeFiles/alt_core.dir/core/gpl_model.cc.o.d"
  "/root/repo/src/core/model_directory.cc" "src/CMakeFiles/alt_core.dir/core/model_directory.cc.o" "gcc" "src/CMakeFiles/alt_core.dir/core/model_directory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_art.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
