#pragma once

/// \file
/// Debug-only dynamic concurrency invariant checkers, compiled in via the
/// `ALT_DEBUG_CHECKS` CMake option (-DALT_DEBUG_CHECKS=1).
///
/// Two checkers live on top of these helpers (see DESIGN.md "Locking
/// protocol"):
///  - the *version-lock protocol checker* (version_lock.h, gpl_model.h,
///    spinlock.h): detects unlock-without-lock, same-thread double-lock (which
///    would otherwise spin forever), stale unlock tokens, and writer-side
///    even/odd version publication mistakes;
///  - the *epoch-guard validator* (epoch.h): detects hot paths that
///    dereference epoch-retired-capable shared pointers outside an EpochGuard.
///
/// All checks abort with a clear message on the first violation so fuzzing /
/// churn tests fail loudly at the misuse site instead of corrupting state.
/// In regular builds every helper compiles to nothing.

#include <cstdio>
#include <cstdlib>

namespace alt {
namespace debug {

/// Report a failed concurrency invariant and abort. Always available (the
/// epoch slot-exhaustion check uses it in release builds too).
[[noreturn]] inline void CheckFailed(const char* checker, const char* msg,
                                     const void* obj = nullptr) {
  if (obj != nullptr) {
    std::fprintf(stderr, "[alt-debug-checks] %s: %s (object %p)\n", checker, msg, obj);
  } else {
    std::fprintf(stderr, "[alt-debug-checks] %s: %s\n", checker, msg);
  }
  std::fflush(stderr);
  std::abort();
}

#if defined(ALT_DEBUG_CHECKS)

/// Per-thread registry of version locks (SpinLock / SlotWord / SlotVersion)
/// currently held by this thread. Critical sections in this codebase are a
/// handful of stores, so the held set is tiny; linear scans are fine.
struct HeldLockSet {
  static constexpr int kMax = 64;
  const void* held[kMax];
  int n = 0;
};

inline HeldLockSet& ThreadHeldLocks() {
  thread_local HeldLockSet set;
  return set;
}

inline bool LockHeldByThisThread(const void* lock) {
  const HeldLockSet& s = ThreadHeldLocks();
  for (int i = 0; i < s.n; ++i) {
    if (s.held[i] == lock) return true;
  }
  return false;
}

/// Called on acquisition; aborts on same-thread recursive lock, which none of
/// the repo's locks support (they would spin forever).
inline void NoteLockAcquired(const void* lock, const char* checker) {
  HeldLockSet& s = ThreadHeldLocks();
  if (LockHeldByThisThread(lock)) {
    CheckFailed(checker, "double-lock: this thread already holds the lock", lock);
  }
  if (s.n >= HeldLockSet::kMax) {
    CheckFailed(checker, "held-lock set overflow (critical section holds >64 locks?)",
                lock);
  }
  s.held[s.n++] = lock;
}

/// Called on release; aborts when this thread does not hold the lock.
inline void NoteLockReleased(const void* lock, const char* checker) {
  HeldLockSet& s = ThreadHeldLocks();
  for (int i = 0; i < s.n; ++i) {
    if (s.held[i] == lock) {
      s.held[i] = s.held[--s.n];
      return;
    }
  }
  CheckFailed(checker, "unlock-without-lock: this thread does not hold the lock",
              lock);
}

#endif  // ALT_DEBUG_CHECKS

}  // namespace debug
}  // namespace alt

#if defined(ALT_DEBUG_CHECKS)
#define ALT_DEBUG_CHECK(cond, checker, msg, obj) \
  do {                                           \
    if (!(cond)) ::alt::debug::CheckFailed(checker, msg, obj); \
  } while (0)
#define ALT_DEBUG_NOTE_ACQUIRED(lock, checker) \
  ::alt::debug::NoteLockAcquired(lock, checker)
#define ALT_DEBUG_NOTE_RELEASED(lock, checker) \
  ::alt::debug::NoteLockReleased(lock, checker)
#else
#define ALT_DEBUG_CHECK(cond, checker, msg, obj) ((void)0)
#define ALT_DEBUG_NOTE_ACQUIRED(lock, checker) ((void)0)
#define ALT_DEBUG_NOTE_RELEASED(lock, checker) ((void)0)
#endif
