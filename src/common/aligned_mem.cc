#include "common/aligned_mem.h"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace alt {

namespace {

inline size_t RoundUp(size_t v, size_t align) {
  return (v + align - 1) & ~(align - 1);
}

void* AllocateAligned64(size_t bytes) {
  // aligned_alloc requires the size to be a multiple of the alignment.
  void* p = std::aligned_alloc(64, RoundUp(bytes, 64));
  if (p != nullptr) std::memset(p, 0, bytes);
  return p;
}

}  // namespace

void* AllocateHotArray(size_t bytes, bool use_huge_pages, bool* huge_backed) {
  if (huge_backed != nullptr) *huge_backed = false;
  if (bytes == 0) bytes = 1;
#if defined(__linux__)
  if (use_huge_pages && bytes >= kHugePageBytes) {
    const size_t len = RoundUp(bytes, kHugePageBytes);
    void* p = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      if (madvise(p, len, MADV_HUGEPAGE) == 0) {
        if (huge_backed != nullptr) *huge_backed = true;
        return p;  // anonymous pages are already zero-filled
      }
      // THP rejected (compiled out or set to "never"): release the mapping
      // and take the plain heap path so `huge_backed` always means exactly
      // "free this with munmap(len)".
      munmap(p, len);
    }
    // mmap/madvise failed (address-space limits, THP off, ...): heap fallback.
  }
#else
  (void)use_huge_pages;
#endif
  return AllocateAligned64(bytes);
}

void FreeHotArray(void* p, size_t bytes, bool huge_backed) {
  if (p == nullptr) return;
#if defined(__linux__)
  if (huge_backed) {
    munmap(p, RoundUp(bytes, kHugePageBytes));
    return;
  }
#else
  (void)bytes;
  (void)huge_backed;
#endif
  std::free(p);
}

}  // namespace alt
