#pragma once

#include <atomic>
#include <cstdint>

#include "common/debug_checks.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"

namespace alt {

/// \brief Standalone optimistic version lock (the DaMoN'16 scheme used inside
/// ART nodes), for baseline index nodes: bit 1 = locked, bit 0 = obsolete,
/// bits 63..2 = version counter.
///
/// Annotated as a clang thread-safety capability on its *exclusive* side:
/// WriteLockOrFail / WriteUnlock are a conventional try-lock pair the analysis
/// can check. The optimistic side (ReadLockOrRestart / CheckOrRestart and the
/// conditional UpgradeToWriteLockOrRestart) is outside clang's static lockset
/// model; functions using it are marked ALT_OPTIMISTIC_PATH and rely on
/// version re-validation (see DESIGN.md "Locking protocol").
class CAPABILITY("optimistic lock") OptLock {
 public:
  static bool IsLocked(uint64_t v) { return (v & 2u) != 0; }
  static bool IsObsolete(uint64_t v) { return (v & 1u) != 0; }

  /// Spin past writers; sets *need_restart if the node is obsolete.
  uint64_t ReadLockOrRestart(bool* need_restart) const {
    // A thread that write-holds this lock would spin forever here.
    ALT_DEBUG_CHECK(!::alt::debug::LockHeldByThisThread(this), "optlock",
                    "ReadLockOrRestart while this thread write-holds the lock",
                    this);
    uint64_t v = v_.load(std::memory_order_acquire);
    while (IsLocked(v)) {
      CpuRelax();
      v = v_.load(std::memory_order_acquire);
    }
    if (IsObsolete(v)) *need_restart = true;
    return v;
  }

  /// Seqlock validation: preceding data loads stay before the re-read.
  void CheckOrRestart(uint64_t v, bool* need_restart) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    if (v_.load(std::memory_order_relaxed) != v) *need_restart = true;
  }

  /// Conditional upgrade of an optimistic read to the write lock. Invisible
  /// to the static analysis (out-parameter acquisition); callers are
  /// ALT_OPTIMISTIC_PATH.
  void UpgradeToWriteLockOrRestart(uint64_t& v, bool* need_restart) {
    if (!v_.compare_exchange_strong(v, v + 2, std::memory_order_acquire)) {
      *need_restart = true;
    } else {
      v += 2;
      ALT_DEBUG_NOTE_ACQUIRED(this, "optlock");
    }
  }

  /// Blocking write lock; \return false if the node became obsolete.
  bool WriteLockOrFail() TRY_ACQUIRE(true) {
    // A same-thread double write-lock would spin forever below.
    ALT_DEBUG_CHECK(!::alt::debug::LockHeldByThisThread(this), "optlock",
                    "double-lock: this thread already write-holds the lock", this);
    for (;;) {
      uint64_t v = v_.load(std::memory_order_acquire);
      if (IsObsolete(v)) return false;
      if (!IsLocked(v) &&
          v_.compare_exchange_weak(v, v + 2, std::memory_order_acquire)) {
        ALT_DEBUG_NOTE_ACQUIRED(this, "optlock");
        return true;
      }
      CpuRelax();
    }
  }

  void WriteUnlock() RELEASE() {
    ALT_DEBUG_NOTE_RELEASED(this, "optlock");
    ALT_DEBUG_CHECK(IsLocked(v_.load(std::memory_order_relaxed)), "optlock",
                    "WriteUnlock of a lock that is not write-locked", this);
    v_.fetch_add(2, std::memory_order_release);
  }

  void WriteUnlockObsolete() RELEASE() {
    ALT_DEBUG_NOTE_RELEASED(this, "optlock");
    ALT_DEBUG_CHECK(IsLocked(v_.load(std::memory_order_relaxed)), "optlock",
                    "WriteUnlockObsolete of a lock that is not write-locked", this);
    v_.fetch_add(3, std::memory_order_release);
  }

 private:
  std::atomic<uint64_t> v_{0};
};

}  // namespace alt
