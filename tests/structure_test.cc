// Structural-introspection tests (DESIGN.md §9.3): the byte decomposition of
// AltIndex::CollectStructuralStats must sum exactly to MemoryUsage(), the ART
// census must agree with CollectStats, and the JSON reports must be
// well-formed and carry the expected fields.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "art/art_tree.h"
#include "baselines/alt_adapter.h"
#include "common/epoch.h"
#include "common/random.h"
#include "core/alt_index.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

class StructureTest : public ::testing::Test {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

std::vector<Key> DenseKeys(size_t n, Key start = 1000, Key stride = 7) {
  std::vector<Key> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(start + stride * static_cast<Key>(i));
  return keys;
}

/// Bulk-load `bulk` keys, then insert `extra` interleaved keys so the
/// conflict tree and (possibly) expansions are populated.
void Populate(AltIndex* index, size_t bulk, size_t extra) {
  const auto keys = DenseKeys(bulk);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index->BulkLoad(keys.data(), vals.data(), keys.size()).ok());
  uint64_t seed = 99;
  for (size_t i = 0; i < extra; ++i) {
    const Key k = 1001 + 7 * (SplitMix64(seed) % (bulk * 2));
    index->Insert(k, ValueFor(k));  // duplicates just fail; fine
  }
}

TEST_F(StructureTest, ComponentBytesSumToMemoryUsage) {
  AltIndex index;
  Populate(&index, 20000, 30000);
  const AltIndex::StructuralStats st = index.CollectStructuralStats();
  EXPECT_EQ(st.total_bytes, st.header_bytes + st.directory_bytes +
                                st.model_bytes + st.expansion_bytes +
                                st.fast_pointer_bytes + st.art_bytes);
  // The acceptance bar is ±5%; the decomposition reuses MemoryUsage()'s own
  // summands, so at a quiescent point it is exact.
  EXPECT_EQ(st.total_bytes, index.MemoryUsage());
  EXPECT_GT(st.model_bytes, 0u);
  EXPECT_GT(st.num_models, 0u);
  EXPECT_EQ(st.slot_states[0] + st.slot_states[1] + st.slot_states[2] +
                st.slot_states[3],
            st.total_slots);
  EXPECT_GE(st.conflict_ratio, 0.0);
  EXPECT_LE(st.conflict_ratio, 1.0);
  size_t seg_total = 0;
  for (size_t i = 0; i < 17; ++i) seg_total += st.segment_len_hist[i];
  EXPECT_EQ(seg_total, st.num_models);
  size_t occ_total = 0;
  for (size_t i = 0; i < 10; ++i) occ_total += st.occupancy_hist[i];
  EXPECT_EQ(occ_total, st.num_models);
}

TEST_F(StructureTest, ArtCensusMatchesCollectStats) {
  art::ArtTree tree;
  {
    EpochGuard g;
    uint64_t seed = 7;
    for (int i = 0; i < 50000; ++i) {
      tree.Insert(SplitMix64(seed), static_cast<Value>(i));
    }
  }
  const art::ArtTree::Stats stats = tree.CollectStats();
  const art::ArtTree::Census census = tree.CollectCensus();
  EXPECT_EQ(census.nodes[0], stats.n4);
  EXPECT_EQ(census.nodes[1], stats.n16);
  EXPECT_EQ(census.nodes[2], stats.n48);
  EXPECT_EQ(census.nodes[3], stats.n256);
  EXPECT_EQ(census.leaves, stats.leaves);
  EXPECT_EQ(census.total_bytes, stats.bytes);
  EXPECT_EQ(census.height, stats.height);
  EXPECT_EQ(census.total_bytes, census.node_bytes[0] + census.node_bytes[1] +
                                    census.node_bytes[2] + census.node_bytes[3] +
                                    census.leaf_bytes);
  size_t depth_total = 0;
  for (int i = 0; i <= kKeyBytes; ++i) depth_total += census.depth_hist[i];
  EXPECT_EQ(depth_total, census.leaves);
  EXPECT_EQ(census.leaves, tree.Size());
}

TEST_F(StructureTest, StructureJsonIsBalancedAndComplete) {
  AltIndex index;
  Populate(&index, 5000, 5000);
  const std::string doc = index.StructureJson();
  for (const char* field :
       {"\"memory\"", "\"total_bytes\"", "\"learned_layer\"", "\"num_models\"",
        "\"segment_len_hist_log2\"", "\"occupancy_deciles\"",
        "\"conflict_ratio\"", "\"art\"", "\"node4\"", "\"leaf_depth_hist\""}) {
    EXPECT_NE(doc.find(field), std::string::npos) << field;
  }
  int depth = 0;
  for (char c : doc) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(StructureTest, AdapterBreakdownMatchesMemoryUsage) {
  AltIndexAdapter adapter;
  const auto keys = DenseKeys(10000);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(adapter.BulkLoad(keys.data(), vals.data(), keys.size()).ok());
  for (size_t i = 0; i < 5000; ++i) {
    adapter.Insert(keys.back() + 3 * static_cast<Key>(i + 1), 1);
  }
  const ConcurrentIndex::MemoryBreakdown mb = adapter.CollectMemoryBreakdown();
  EXPECT_EQ(mb.total(), adapter.MemoryUsage());
  EXPECT_GT(mb.model_bytes, 0u);
  EXPECT_GT(mb.auxiliary_bytes, 0u);
  EXPECT_EQ(mb.other_bytes, 0u);
}

TEST_F(StructureTest, ServedByDefaultsToUnattributedForBaselines) {
  // The base-class Served* variants must delegate and tag kUnattributed.
  AltIndexAdapter adapter;
  const auto keys = DenseKeys(1000);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(adapter.BulkLoad(keys.data(), vals.data(), keys.size()).ok());
  Value v = 0;
  ServedBy served = ServedBy::kUnattributed;
  EXPECT_TRUE(adapter.LookupServed(keys[10], &v, &served));
  EXPECT_NE(served, ServedBy::kUnattributed);  // ALT attributes its reads
  EXPECT_EQ(v, ValueFor(keys[10]));
  // Null out-param is legal everywhere.
  EXPECT_TRUE(adapter.LookupServed(keys[11], &v, nullptr));
}

}  // namespace
}  // namespace alt
