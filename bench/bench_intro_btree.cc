// Reproduces the paper's §I framing claim: "the average read performance of a
// learned index is 1.5x-3x faster than that of a B-tree", plus §II-C's
// motivation that ART out-inserts the learned designs. Read-only and
// write-only sweeps of ALT-index vs the OLC B+-tree vs ART.
#include "bench_common.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Intro claim: learned index vs B+Tree vs ART (read-only, Mops/s)",
              {"Dataset", "ALT-index", "B+Tree(OLC)", "ART", "ALT/BTree"});
  for (Dataset d : cfg.datasets) {
    const auto keys = LoadKeys(cfg, d);
    const RunResult alt_r = RunOne(cfg, "alt", keys, WorkloadType::kReadOnly);
    const RunResult bt_r = RunOne(cfg, "btree-olc", keys, WorkloadType::kReadOnly);
    const RunResult art_r = RunOne(cfg, "art", keys, WorkloadType::kReadOnly);
    PrintRow({DatasetName(d), Fmt(alt_r.throughput_mops), Fmt(bt_r.throughput_mops),
              Fmt(art_r.throughput_mops),
              Fmt(alt_r.throughput_mops / bt_r.throughput_mops) + "x"});
  }

  PrintHeader("Motivation: insert performance (write-only, Mops/s)",
              {"Dataset", "ALT-index", "B+Tree(OLC)", "ART"});
  for (Dataset d : cfg.datasets) {
    const auto keys = LoadKeys(cfg, d);
    const RunResult alt_r = RunOne(cfg, "alt", keys, WorkloadType::kWriteOnly);
    const RunResult bt_r = RunOne(cfg, "btree-olc", keys, WorkloadType::kWriteOnly);
    const RunResult art_r = RunOne(cfg, "art", keys, WorkloadType::kWriteOnly);
    PrintRow({DatasetName(d), Fmt(alt_r.throughput_mops), Fmt(bt_r.throughput_mops),
              Fmt(art_r.throughput_mops)});
  }
  return 0;
}
