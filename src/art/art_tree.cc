#include "art/art_tree.h"

#include <algorithm>
#include <cassert>

#include "common/epoch.h"
#include "common/prefetch.h"

namespace alt {
namespace art {

namespace {


// ---------------------------------------------------------------------------
// Node helpers. All mutating helpers require the caller to hold the node's
// write lock; read helpers are safe for optimistic readers (who must validate
// the version afterwards).
// ---------------------------------------------------------------------------

Node* GetChild(const Node* n, uint8_t byte) {
  switch (n->type) {
    case NodeType::kNode4: {
      auto* p = static_cast<const Node4*>(n);
      int cnt = n->num_children.load(std::memory_order_relaxed);
      if (cnt > 4) cnt = 4;
      for (int i = 0; i < cnt; ++i) {
        if (p->keys[i].load(std::memory_order_relaxed) == byte) {
          return p->children[i].load(std::memory_order_acquire);
        }
      }
      return nullptr;
    }
    case NodeType::kNode16: {
      auto* p = static_cast<const Node16*>(n);
      int cnt = n->num_children.load(std::memory_order_relaxed);
      if (cnt > 16) cnt = 16;
      for (int i = 0; i < cnt; ++i) {
        if (p->keys[i].load(std::memory_order_relaxed) == byte) {
          return p->children[i].load(std::memory_order_acquire);
        }
      }
      return nullptr;
    }
    case NodeType::kNode48: {
      auto* p = static_cast<const Node48*>(n);
      uint8_t idx = p->child_index[byte].load(std::memory_order_acquire);
      if (idx == Node48::kEmpty) return nullptr;
      return p->children[idx].load(std::memory_order_acquire);
    }
    case NodeType::kNode256: {
      auto* p = static_cast<const Node256*>(n);
      return p->children[byte].load(std::memory_order_acquire);
    }
  }
  return nullptr;
}

bool IsFull(const Node* n) {
  int cnt = n->num_children.load(std::memory_order_relaxed);
  switch (n->type) {
    case NodeType::kNode4: return cnt >= 4;
    case NodeType::kNode16: return cnt >= 16;
    case NodeType::kNode48: return cnt >= 48;
    case NodeType::kNode256: return false;
  }
  return false;
}

// Insert (byte -> child) into a node with spare capacity; keeps Node4/Node16
// key arrays sorted so ordered scans are cheap.
void AddChild(Node* n, uint8_t byte, Node* child) {
  switch (n->type) {
    case NodeType::kNode4: {
      auto* p = static_cast<Node4*>(n);
      int cnt = n->num_children.load(std::memory_order_relaxed);
      int pos = 0;
      while (pos < cnt && p->keys[pos].load(std::memory_order_relaxed) < byte) ++pos;
      for (int i = cnt; i > pos; --i) {
        p->keys[i].store(p->keys[i - 1].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        p->children[i].store(p->children[i - 1].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
      }
      p->keys[pos].store(byte, std::memory_order_relaxed);
      p->children[pos].store(child, std::memory_order_release);
      n->num_children.store(static_cast<uint16_t>(cnt + 1), std::memory_order_release);
      return;
    }
    case NodeType::kNode16: {
      auto* p = static_cast<Node16*>(n);
      int cnt = n->num_children.load(std::memory_order_relaxed);
      int pos = 0;
      while (pos < cnt && p->keys[pos].load(std::memory_order_relaxed) < byte) ++pos;
      for (int i = cnt; i > pos; --i) {
        p->keys[i].store(p->keys[i - 1].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        p->children[i].store(p->children[i - 1].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
      }
      p->keys[pos].store(byte, std::memory_order_relaxed);
      p->children[pos].store(child, std::memory_order_release);
      n->num_children.store(static_cast<uint16_t>(cnt + 1), std::memory_order_release);
      return;
    }
    case NodeType::kNode48: {
      auto* p = static_cast<Node48*>(n);
      int slot = 0;
      while (p->children[slot].load(std::memory_order_relaxed) != nullptr) ++slot;
      p->children[slot].store(child, std::memory_order_release);
      p->child_index[byte].store(static_cast<uint8_t>(slot), std::memory_order_release);
      n->num_children.fetch_add(1, std::memory_order_release);
      return;
    }
    case NodeType::kNode256: {
      auto* p = static_cast<Node256*>(n);
      p->children[byte].store(child, std::memory_order_release);
      n->num_children.fetch_add(1, std::memory_order_release);
      return;
    }
  }
}

// Overwrite an existing (byte -> child) mapping.
void ReplaceChild(Node* n, uint8_t byte, Node* child) {
  switch (n->type) {
    case NodeType::kNode4: {
      auto* p = static_cast<Node4*>(n);
      int cnt = n->num_children.load(std::memory_order_relaxed);
      for (int i = 0; i < cnt; ++i) {
        if (p->keys[i].load(std::memory_order_relaxed) == byte) {
          p->children[i].store(child, std::memory_order_release);
          return;
        }
      }
      break;
    }
    case NodeType::kNode16: {
      auto* p = static_cast<Node16*>(n);
      int cnt = n->num_children.load(std::memory_order_relaxed);
      for (int i = 0; i < cnt; ++i) {
        if (p->keys[i].load(std::memory_order_relaxed) == byte) {
          p->children[i].store(child, std::memory_order_release);
          return;
        }
      }
      break;
    }
    case NodeType::kNode48: {
      auto* p = static_cast<Node48*>(n);
      uint8_t idx = p->child_index[byte].load(std::memory_order_relaxed);
      p->children[idx].store(child, std::memory_order_release);
      return;
    }
    case NodeType::kNode256: {
      auto* p = static_cast<Node256*>(n);
      p->children[byte].store(child, std::memory_order_release);
      return;
    }
  }
  assert(false && "ReplaceChild: byte not present");
}

// Remove the (byte -> child) mapping; requires the entry to exist.
void RemoveChildEntry(Node* n, uint8_t byte) {
  switch (n->type) {
    case NodeType::kNode4:
    case NodeType::kNode16: {
      // Shared layout up to capacity; handle via per-type arrays.
      if (n->type == NodeType::kNode4) {
        auto* p = static_cast<Node4*>(n);
        int cnt = n->num_children.load(std::memory_order_relaxed);
        int pos = 0;
        while (pos < cnt && p->keys[pos].load(std::memory_order_relaxed) != byte) ++pos;
        assert(pos < cnt);
        for (int i = pos; i < cnt - 1; ++i) {
          p->keys[i].store(p->keys[i + 1].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
          p->children[i].store(p->children[i + 1].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
        }
        p->children[cnt - 1].store(nullptr, std::memory_order_relaxed);
        n->num_children.store(static_cast<uint16_t>(cnt - 1), std::memory_order_release);
      } else {
        auto* p = static_cast<Node16*>(n);
        int cnt = n->num_children.load(std::memory_order_relaxed);
        int pos = 0;
        while (pos < cnt && p->keys[pos].load(std::memory_order_relaxed) != byte) ++pos;
        assert(pos < cnt);
        for (int i = pos; i < cnt - 1; ++i) {
          p->keys[i].store(p->keys[i + 1].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
          p->children[i].store(p->children[i + 1].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
        }
        p->children[cnt - 1].store(nullptr, std::memory_order_relaxed);
        n->num_children.store(static_cast<uint16_t>(cnt - 1), std::memory_order_release);
      }
      return;
    }
    case NodeType::kNode48: {
      auto* p = static_cast<Node48*>(n);
      uint8_t idx = p->child_index[byte].load(std::memory_order_relaxed);
      assert(idx != Node48::kEmpty);
      p->child_index[byte].store(Node48::kEmpty, std::memory_order_release);
      p->children[idx].store(nullptr, std::memory_order_relaxed);
      n->num_children.fetch_sub(1, std::memory_order_release);
      return;
    }
    case NodeType::kNode256: {
      auto* p = static_cast<Node256*>(n);
      p->children[byte].store(nullptr, std::memory_order_release);
      n->num_children.fetch_sub(1, std::memory_order_release);
      return;
    }
  }
}

// The single remaining child of a node with num_children == 1.
Node* GetOnlyChild(Node* n, uint8_t* byte_out) {
  switch (n->type) {
    case NodeType::kNode4: {
      auto* p = static_cast<Node4*>(n);
      *byte_out = p->keys[0].load(std::memory_order_relaxed);
      return p->children[0].load(std::memory_order_relaxed);
    }
    case NodeType::kNode16: {
      auto* p = static_cast<Node16*>(n);
      *byte_out = p->keys[0].load(std::memory_order_relaxed);
      return p->children[0].load(std::memory_order_relaxed);
    }
    case NodeType::kNode48: {
      auto* p = static_cast<Node48*>(n);
      for (int b = 0; b < 256; ++b) {
        uint8_t idx = p->child_index[b].load(std::memory_order_relaxed);
        if (idx != Node48::kEmpty) {
          *byte_out = static_cast<uint8_t>(b);
          return p->children[idx].load(std::memory_order_relaxed);
        }
      }
      return nullptr;
    }
    case NodeType::kNode256: {
      auto* p = static_cast<Node256*>(n);
      for (int b = 0; b < 256; ++b) {
        Node* c = p->children[b].load(std::memory_order_relaxed);
        if (c != nullptr) {
          *byte_out = static_cast<uint8_t>(b);
          return c;
        }
      }
      return nullptr;
    }
  }
  return nullptr;
}

// Copy all (byte, child) entries of `n` into caller arrays; returns count.
int CollectEntries(const Node* n, uint8_t* bytes, Node** children) {
  int out = 0;
  switch (n->type) {
    case NodeType::kNode4: {
      auto* p = static_cast<const Node4*>(n);
      int cnt = n->num_children.load(std::memory_order_relaxed);
      for (int i = 0; i < cnt && i < 4; ++i) {
        bytes[out] = p->keys[i].load(std::memory_order_relaxed);
        children[out++] = p->children[i].load(std::memory_order_acquire);
      }
      break;
    }
    case NodeType::kNode16: {
      auto* p = static_cast<const Node16*>(n);
      int cnt = n->num_children.load(std::memory_order_relaxed);
      for (int i = 0; i < cnt && i < 16; ++i) {
        bytes[out] = p->keys[i].load(std::memory_order_relaxed);
        children[out++] = p->children[i].load(std::memory_order_acquire);
      }
      break;
    }
    case NodeType::kNode48: {
      auto* p = static_cast<const Node48*>(n);
      for (int b = 0; b < 256; ++b) {
        uint8_t idx = p->child_index[b].load(std::memory_order_acquire);
        if (idx == Node48::kEmpty) continue;
        Node* c = p->children[idx].load(std::memory_order_acquire);
        if (c == nullptr) continue;
        bytes[out] = static_cast<uint8_t>(b);
        children[out++] = c;
      }
      break;
    }
    case NodeType::kNode256: {
      auto* p = static_cast<const Node256*>(n);
      for (int b = 0; b < 256; ++b) {
        Node* c = p->children[b].load(std::memory_order_acquire);
        if (c == nullptr) continue;
        bytes[out] = static_cast<uint8_t>(b);
        children[out++] = c;
      }
      break;
    }
  }
  return out;
}

void CopyHeader(Node* dst, const Node* src) {
  dst->prefix_word.store(src->prefix_word.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  dst->prefix_len.store(src->prefix_len.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  dst->match_level.store(src->match_level.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
}

// Allocate the next-size node, copy entries + header, return it WRITE-LOCKED so
// it cannot be modified by other threads until the caller publishes + unlocks.
Node* Grow(Node* n) {
  uint8_t bytes[256];
  Node* children[256];
  const int cnt = CollectEntries(n, bytes, children);
  Node* bigger = nullptr;
  switch (n->type) {
    case NodeType::kNode4: bigger = new Node16(); break;
    case NodeType::kNode16: bigger = new Node48(); break;
    case NodeType::kNode48: bigger = new Node256(); break;
    case NodeType::kNode256: assert(false && "Node256 cannot grow"); return nullptr;
  }
  bigger->InitLocked();
  CopyHeader(bigger, n);
  for (int i = 0; i < cnt; ++i) AddChild(bigger, bytes[i], children[i]);
  return bigger;
}

// Allocate the next smaller node minus the child keyed `skip_byte`; returns it
// write-locked (same publication discipline as Grow).
Node* ShrinkWithout(Node* n, uint8_t skip_byte) {
  uint8_t bytes[256];
  Node* children[256];
  const int cnt = CollectEntries(n, bytes, children);
  Node* smaller = nullptr;
  switch (n->type) {
    case NodeType::kNode16: smaller = new Node4(); break;
    case NodeType::kNode48: smaller = new Node16(); break;
    case NodeType::kNode256: smaller = new Node48(); break;
    case NodeType::kNode4: assert(false && "Node4 cannot shrink"); return nullptr;
  }
  smaller->InitLocked();
  CopyHeader(smaller, n);
  for (int i = 0; i < cnt; ++i) {
    if (bytes[i] == skip_byte) continue;
    AddChild(smaller, bytes[i], children[i]);
  }
  return smaller;
}

// Shrink threshold: shrink only when clearly below the smaller capacity so a
// single insert does not immediately grow again (hysteresis).
bool ShouldShrink(const Node* n, int cnt_after) {
  switch (n->type) {
    case NodeType::kNode4: return false;
    case NodeType::kNode16: return cnt_after <= 3;
    case NodeType::kNode48: return cnt_after <= 12;
    case NodeType::kNode256: return cnt_after <= 40;
  }
  return false;
}

void DeleteNode(Node* n) {
  switch (n->type) {
    case NodeType::kNode4: delete static_cast<Node4*>(n); return;
    case NodeType::kNode16: delete static_cast<Node16*>(n); return;
    case NodeType::kNode48: delete static_cast<Node48*>(n); return;
    case NodeType::kNode256: delete static_cast<Node256*>(n); return;
  }
}

void RetireNode(EpochManager* mgr, Node* n) {
  mgr->Retire(n, [](void* p) { DeleteNode(static_cast<Node*>(p)); });
}

void RetireLeaf(EpochManager* mgr, Leaf* l) {
  mgr->Retire(l, [](void* p) { delete static_cast<Leaf*>(p); });
}

void DeleteSubtree(Node* n) {
  if (IsLeaf(n)) {
    delete ToLeaf(n);
    return;
  }
  uint8_t bytes[256];
  Node* children[256];
  const int cnt = CollectEntries(n, bytes, children);
  for (int i = 0; i < cnt; ++i) DeleteSubtree(children[i]);
  DeleteNode(n);
}

}  // namespace

// ---------------------------------------------------------------------------
// Tree
// ---------------------------------------------------------------------------

ArtTree::ArtTree(EpochManager* epoch)
    : epoch_(epoch != nullptr ? epoch : &EpochManager::Global()) {
  root_ = new Node256();
}

ArtTree::~ArtTree() {
  // Quiescent teardown: free remaining structure directly.
  DeleteSubtree(root_);
}

// ---- Lookup ----------------------------------------------------------------

ArtTree::OpResult ArtTree::LookupImpl(Node* start, Key key, Value* out, int* steps) const {
  bool restart = false;
  Node* node = start;
  uint64_t v = node->ReadLockOrRestart(&restart);
  if (restart) return (start == root_) ? OpResult::kRestart : OpResult::kNeedRoot;
  int depth = node->match_level.load(std::memory_order_relaxed);

  for (;;) {
    if (steps != nullptr) ++(*steps);
    const int plen = node->prefix_len.load(std::memory_order_relaxed);
    if (plen > 0) {
      const uint64_t pword = node->prefix_word.load(std::memory_order_relaxed);
      for (int i = 0; i < plen; ++i) {
        if (Node::PrefixByte(pword, i) != KeyByte(key, depth + i)) {
          node->CheckOrRestart(v, &restart);
          return restart ? OpResult::kRestart : OpResult::kNotFound;
        }
      }
      depth += plen;
    }
    assert(depth < kKeyBytes);
    const uint8_t byte = KeyByte(key, depth);
    Node* child = GetChild(node, byte);
    node->CheckOrRestart(v, &restart);
    if (restart) return OpResult::kRestart;
    if (child == nullptr) return OpResult::kNotFound;
    if (IsLeaf(child)) {
      const Leaf* leaf = ToLeaf(child);
      if (leaf->key != key) return OpResult::kNotFound;
      *out = leaf->value.load(std::memory_order_acquire);
      return OpResult::kDone;
    }
    Node* next = child;
    uint64_t nv = next->ReadLockOrRestart(&restart);
    if (restart) return OpResult::kRestart;
    node->CheckOrRestart(v, &restart);
    if (restart) return OpResult::kRestart;
    node = next;
    v = nv;
    depth += 1;
  }
}

bool ArtTree::Lookup(Key key, Value* out, int* steps) const {
  ALT_ASSERT_EPOCH_PINNED("ArtTree::Lookup", epoch_);
  for (;;) {
    OpResult r = LookupImpl(root_, key, out, steps);
    if (r == OpResult::kDone) return true;
    if (r == OpResult::kNotFound) return false;
  }
}

HintOutcome ArtTree::LookupFrom(Node* hint, Key key, Value* out, int* steps) const {
  ALT_ASSERT_EPOCH_PINNED("ArtTree::LookupFrom", epoch_);
  for (int attempt = 0; attempt < 64; ++attempt) {
    OpResult r = LookupImpl(hint, key, out, steps);
    switch (r) {
      case OpResult::kDone: return HintOutcome::kFound;
      case OpResult::kNotFound: return HintOutcome::kNotFound;
      case OpResult::kNeedRoot: return HintOutcome::kNeedRoot;
      default: break;  // kRestart: retry from the hint
    }
  }
  return HintOutcome::kNeedRoot;
}

// ---- Incremental descent (batched read path) -------------------------------

bool ArtTree::DescentInit(Node* start, DescentState* s) const {
  ALT_ASSERT_EPOCH_PINNED("ArtTree::DescentInit", epoch_);
  bool restart = false;
  s->pending = nullptr;
  s->node = start;
  s->version = start->ReadLockOrRestart(&restart);
  if (restart) return false;  // obsolete start (stale hint)
  s->depth = start->match_level.load(std::memory_order_relaxed);
  return true;
}

StepResult ArtTree::DescentStep(DescentState* s, Key key, Value* out, int* steps) const {
  ALT_ASSERT_EPOCH_PINNED("ArtTree::DescentStep", epoch_);
  bool restart = false;

  // Enter the child selected (and prefetched) by the previous step. This is
  // the second half of the OLC lock coupling from LookupImpl: read-lock the
  // child, then re-validate the parent version that produced the pointer.
  if (s->pending != nullptr) {
    Node* child = s->pending;
    s->pending = nullptr;
    if (IsLeaf(child)) {
      const Leaf* leaf = ToLeaf(child);
      if (leaf->key != key) return StepResult::kNotFound;
      if (out != nullptr) *out = leaf->value.load(std::memory_order_acquire);
      return StepResult::kFound;
    }
    uint64_t nv = child->ReadLockOrRestart(&restart);
    if (restart) return StepResult::kRestart;
    s->node->CheckOrRestart(s->version, &restart);
    if (restart) return StepResult::kRestart;
    s->node = child;
    s->version = nv;
    s->depth += 1;
  }

  // Process one node: compressed path, then child dispatch (LookupImpl's loop
  // body, minus the immediate child dereference — that is next touch's work).
  Node* node = s->node;
  if (steps != nullptr) ++(*steps);
  const int plen = node->prefix_len.load(std::memory_order_relaxed);
  if (plen > 0) {
    const uint64_t pword = node->prefix_word.load(std::memory_order_relaxed);
    for (int i = 0; i < plen; ++i) {
      if (Node::PrefixByte(pword, i) != KeyByte(key, s->depth + i)) {
        node->CheckOrRestart(s->version, &restart);
        return restart ? StepResult::kRestart : StepResult::kNotFound;
      }
    }
    s->depth += plen;
  }
  assert(s->depth < kKeyBytes);
  const uint8_t byte = KeyByte(key, s->depth);
  Node* child = GetChild(node, byte);
  node->CheckOrRestart(s->version, &restart);
  if (restart) return StepResult::kRestart;
  if (child == nullptr) return StepResult::kNotFound;
  s->pending = child;
  if (IsLeaf(child)) {
    PrefetchRead(ToLeaf(child));
  } else {
    // Header + the front of the child arrays; Node48/256 child cells beyond
    // the first lines cost at most one extra (in-cache-order) miss.
    PrefetchReadRange(child, 2 * kCacheLineBytes);
  }
  return StepResult::kStepped;
}

// ---- Insert ----------------------------------------------------------------

// OLC writer escape: every node crossing is version-checked (CheckOrRestart)
// and lock acquisition is a conditional upgrade (UpgradeToWriteLockOrRestart);
// any mismatch restarts from `start`.
ArtTree::OpResult ArtTree::InsertImpl(Node* start, Node* start_parent,
                                      uint8_t start_parent_byte, Key key,
                                      Value value) ALT_OPTIMISTIC_PATH {
  bool restart = false;
  Node* parent = start_parent;
  uint64_t pv = 0;
  uint8_t pbyte = start_parent_byte;

  Node* node = start;
  uint64_t v = node->ReadLockOrRestart(&restart);
  if (restart) return (start == root_) ? OpResult::kRestart : OpResult::kNeedRoot;
  if (parent != nullptr) {
    pv = parent->ReadLockOrRestart(&restart);
    if (restart) return OpResult::kRestart;
  }
  int depth = node->match_level.load(std::memory_order_relaxed);

  for (;;) {
    // -- compressed path --------------------------------------------------
    const int plen = node->prefix_len.load(std::memory_order_relaxed);
    if (plen > 0) {
      const uint64_t pword = node->prefix_word.load(std::memory_order_relaxed);
      int cpl = 0;
      while (cpl < plen && Node::PrefixByte(pword, cpl) == KeyByte(key, depth + cpl)) ++cpl;
      if (cpl < plen) {
        // Prefix mismatch: extract the shared prefix into a new parent Node4
        // (paper scenario ① when `node` carries a fast pointer).
        node->CheckOrRestart(v, &restart);
        if (restart) return OpResult::kRestart;
        if (parent == nullptr) return OpResult::kNeedRoot;  // hint-based: parent unknown
        parent->UpgradeToWriteLockOrRestart(pv, &restart);
        if (restart) return OpResult::kRestart;
        node->UpgradeToWriteLockOrRestart(v, &restart);
        if (restart) {
          parent->WriteUnlock();
          return OpResult::kRestart;
        }
        auto* np = new Node4();
        np->InitLocked();
        np->prefix_word.store(pword, std::memory_order_relaxed);
        np->prefix_len.store(static_cast<uint8_t>(cpl), std::memory_order_relaxed);
        np->match_level.store(static_cast<uint8_t>(depth), std::memory_order_relaxed);
        const uint8_t node_branch = Node::PrefixByte(pword, cpl);
        const uint8_t key_branch = KeyByte(key, depth + cpl);
        auto* leaf = new Leaf(key, value);
        AddChild(np, node_branch, node);
        AddChild(np, key_branch, TagLeaf(leaf));
        node->ChopPrefix(cpl + 1);
        node->match_level.store(static_cast<uint8_t>(depth + cpl + 1),
                                std::memory_order_relaxed);
        const int32_t slot = node->fp_slot.load(std::memory_order_relaxed);
        if (slot >= 0) {
          node->fp_slot.store(-1, std::memory_order_relaxed);
          np->fp_slot.store(slot, std::memory_order_relaxed);
          if (listener_ != nullptr) listener_->OnPrefixSplit(slot, node, np);
        }
        ReplaceChild(parent, pbyte, np);
        node->WriteUnlock();
        np->WriteUnlock();
        parent->WriteUnlock();
        size_.fetch_add(1, std::memory_order_relaxed);
        return OpResult::kDone;
      }
      depth += plen;
    }
    assert(depth < kKeyBytes);

    const uint8_t byte = KeyByte(key, depth);
    Node* child = GetChild(node, byte);
    node->CheckOrRestart(v, &restart);
    if (restart) return OpResult::kRestart;

    if (child == nullptr) {
      if (IsFull(node)) {
        // Node expansion (paper scenario ②): replace with the next size.
        if (parent == nullptr) return OpResult::kNeedRoot;  // hint itself must grow
        parent->UpgradeToWriteLockOrRestart(pv, &restart);
        if (restart) return OpResult::kRestart;
        node->UpgradeToWriteLockOrRestart(v, &restart);
        if (restart) {
          parent->WriteUnlock();
          return OpResult::kRestart;
        }
        Node* bigger = Grow(node);
        auto* leaf = new Leaf(key, value);
        AddChild(bigger, byte, TagLeaf(leaf));
        const int32_t slot = node->fp_slot.load(std::memory_order_relaxed);
        if (slot >= 0) {
          bigger->fp_slot.store(slot, std::memory_order_relaxed);
          if (listener_ != nullptr) listener_->OnNodeReplaced(slot, node, bigger);
        }
        ReplaceChild(parent, pbyte, bigger);
        node->WriteUnlockObsolete();
        RetireNode(epoch_, node);
        bigger->WriteUnlock();
        parent->WriteUnlock();
        size_.fetch_add(1, std::memory_order_relaxed);
        return OpResult::kDone;
      }
      node->UpgradeToWriteLockOrRestart(v, &restart);
      if (restart) return OpResult::kRestart;
      // Re-check under the lock: another writer may have added `byte` between
      // our optimistic read and the upgrade... impossible: upgrade validated
      // the version, so the optimistic read still holds. Insert directly.
      auto* leaf = new Leaf(key, value);
      AddChild(node, byte, TagLeaf(leaf));
      node->WriteUnlock();
      size_.fetch_add(1, std::memory_order_relaxed);
      return OpResult::kDone;
    }

    if (IsLeaf(child)) {
      Leaf* existing = ToLeaf(child);
      const Key ekey = existing->key;
      node->CheckOrRestart(v, &restart);
      if (restart) return OpResult::kRestart;
      if (ekey == key) return OpResult::kExists;
      // Split the leaf: new Node4 holding the two leaves under their first
      // divergent byte, with the shared bytes as its compressed path.
      node->UpgradeToWriteLockOrRestart(v, &restart);
      if (restart) return OpResult::kRestart;
      const int d2 = depth + 1;
      int cpl = 0;
      while (KeyByte(key, d2 + cpl) == KeyByte(ekey, d2 + cpl)) ++cpl;
      auto* nn = new Node4();
      nn->match_level.store(static_cast<uint8_t>(d2), std::memory_order_relaxed);
      nn->SetPrefix(key, d2, cpl);
      auto* leaf = new Leaf(key, value);
      AddChild(nn, KeyByte(ekey, d2 + cpl), child);
      AddChild(nn, KeyByte(key, d2 + cpl), TagLeaf(leaf));
      ReplaceChild(node, byte, nn);
      node->WriteUnlock();
      size_.fetch_add(1, std::memory_order_relaxed);
      return OpResult::kDone;
    }

    // -- descend with lock coupling ----------------------------------------
    parent = node;
    pv = v;
    pbyte = byte;
    Node* next = child;
    uint64_t nv = next->ReadLockOrRestart(&restart);
    if (restart) return OpResult::kRestart;
    node->CheckOrRestart(v, &restart);
    if (restart) return OpResult::kRestart;
    node = next;
    v = nv;
    depth += 1;
  }
}

bool ArtTree::Insert(Key key, Value value) {
  ALT_ASSERT_EPOCH_PINNED("ArtTree::Insert", epoch_);
  for (;;) {
    OpResult r = InsertImpl(root_, nullptr, 0, key, value);
    if (r == OpResult::kDone) return true;
    if (r == OpResult::kExists) return false;
  }
}

HintOutcome ArtTree::InsertFrom(Node* hint, Key key, Value value) {
  ALT_ASSERT_EPOCH_PINNED("ArtTree::InsertFrom", epoch_);
  for (int attempt = 0; attempt < 64; ++attempt) {
    OpResult r = InsertImpl(hint, nullptr, 0, key, value);
    switch (r) {
      case OpResult::kDone: return HintOutcome::kInserted;
      case OpResult::kExists: return HintOutcome::kExists;
      case OpResult::kNeedRoot: return HintOutcome::kNeedRoot;
      default: break;  // retry from the hint
    }
  }
  return HintOutcome::kNeedRoot;
}

bool ArtTree::Update(Key key, Value value) {
  ALT_ASSERT_EPOCH_PINNED("ArtTree::Update", epoch_);
  for (;;) {
    bool restart = false;
    Node* node = root_;
    uint64_t v = node->ReadLockOrRestart(&restart);
    if (restart) continue;
    int depth = 0;
    for (;;) {
      const int plen = node->prefix_len.load(std::memory_order_relaxed);
      if (plen > 0) {
        const uint64_t pword = node->prefix_word.load(std::memory_order_relaxed);
        bool mismatch = false;
        for (int i = 0; i < plen; ++i) {
          if (Node::PrefixByte(pword, i) != KeyByte(key, depth + i)) {
            mismatch = true;
            break;
          }
        }
        if (mismatch) {
          node->CheckOrRestart(v, &restart);
          if (restart) break;
          return false;
        }
        depth += plen;
      }
      const uint8_t byte = KeyByte(key, depth);
      Node* child = GetChild(node, byte);
      node->CheckOrRestart(v, &restart);
      if (restart) break;
      if (child == nullptr) return false;
      if (IsLeaf(child)) {
        Leaf* leaf = ToLeaf(child);
        if (leaf->key != key) return false;
        leaf->value.store(value, std::memory_order_release);
        // Validate the leaf was still reachable when we stored; else retry so
        // we do not update a detached leaf that a remove already unlinked.
        node->CheckOrRestart(v, &restart);
        if (restart) break;
        return true;
      }
      Node* next = child;
      uint64_t nv = next->ReadLockOrRestart(&restart);
      if (restart) break;
      node->CheckOrRestart(v, &restart);
      if (restart) break;
      node = next;
      v = nv;
      depth += 1;
    }
  }
}

// ---- Remove ----------------------------------------------------------------

// Same restart-validated OLC escape as InsertImpl: version checks at every
// crossing, conditional upgrades, restart on mismatch.
ArtTree::OpResult ArtTree::RemoveImpl(Key key, Value* old_value) ALT_OPTIMISTIC_PATH {
  bool restart = false;
  Node* parent = nullptr;
  uint64_t pv = 0;
  uint8_t pbyte = 0;

  Node* node = root_;
  uint64_t v = node->ReadLockOrRestart(&restart);
  if (restart) return OpResult::kRestart;
  int depth = 0;

  for (;;) {
    const int plen = node->prefix_len.load(std::memory_order_relaxed);
    if (plen > 0) {
      const uint64_t pword = node->prefix_word.load(std::memory_order_relaxed);
      for (int i = 0; i < plen; ++i) {
        if (Node::PrefixByte(pword, i) != KeyByte(key, depth + i)) {
          node->CheckOrRestart(v, &restart);
          return restart ? OpResult::kRestart : OpResult::kNotFound;
        }
      }
      depth += plen;
    }
    const uint8_t byte = KeyByte(key, depth);
    Node* child = GetChild(node, byte);
    node->CheckOrRestart(v, &restart);
    if (restart) return OpResult::kRestart;
    if (child == nullptr) return OpResult::kNotFound;

    if (IsLeaf(child)) {
      Leaf* leaf = ToLeaf(child);
      const Key ekey = leaf->key;
      node->CheckOrRestart(v, &restart);
      if (restart) return OpResult::kRestart;
      if (ekey != key) return OpResult::kNotFound;
      if (old_value != nullptr) {
        *old_value = leaf->value.load(std::memory_order_acquire);
      }

      const int cnt = node->num_children.load(std::memory_order_relaxed);

      if (cnt == 2 && node != root_) {
        // Merging the node away: its one remaining child absorbs the node's
        // compressed path plus the branch byte.
        if (parent == nullptr) return OpResult::kRestart;
        parent->UpgradeToWriteLockOrRestart(pv, &restart);
        if (restart) return OpResult::kRestart;
        node->UpgradeToWriteLockOrRestart(v, &restart);
        if (restart) {
          parent->WriteUnlock();
          return OpResult::kRestart;
        }
        RemoveChildEntry(node, byte);
        uint8_t sibling_byte = 0;
        Node* sibling = GetOnlyChild(node, &sibling_byte);
        assert(sibling != nullptr);
        if (IsLeaf(sibling)) {
          ReplaceChild(parent, pbyte, sibling);
          const int32_t slot = node->fp_slot.load(std::memory_order_relaxed);
          if (slot >= 0) {
            // The surviving child is a leaf; hand the entry to the parent,
            // which still covers the whole removed subtree's range. The
            // listener decides whether the parent can adopt it.
            node->fp_slot.store(-1, std::memory_order_relaxed);
            if (listener_ != nullptr) listener_->OnNodeRemoved(slot, node, parent);
          }
        } else {
          // Lock the sibling, then prepend node's path + branch byte to it.
          // Safe to spin while holding parent+node: writers acquire locks
          // strictly top-down, so whoever holds the sibling cannot be waiting
          // on locks we hold.
          for (;;) {
            uint64_t sv = sibling->version.load(std::memory_order_acquire);
            if (!Node::IsLocked(sv) &&
                sibling->version.compare_exchange_weak(sv, sv + 2,
                                                       std::memory_order_acquire)) {
              break;
            }
            CpuRelax();
          }
          ALT_DEBUG_NOTE_ACQUIRED(sibling, "art-node");
          const int nplen = node->prefix_len.load(std::memory_order_relaxed);
          const uint64_t npword = node->prefix_word.load(std::memory_order_relaxed);
          const int splen = sibling->prefix_len.load(std::memory_order_relaxed);
          const uint64_t spword = sibling->prefix_word.load(std::memory_order_relaxed);
          uint64_t w = 0;
          if (nplen > 0) w = npword & (~uint64_t{0} << (8 * (kKeyBytes - nplen)));
          w |= uint64_t{sibling_byte} << (8 * (kKeyBytes - 1 - nplen));
          if (splen > 0) w |= spword >> (8 * (nplen + 1));
          sibling->prefix_word.store(w, std::memory_order_relaxed);
          sibling->prefix_len.store(static_cast<uint8_t>(nplen + 1 + splen),
                                    std::memory_order_relaxed);
          sibling->match_level.store(node->match_level.load(std::memory_order_relaxed),
                                     std::memory_order_relaxed);
          const int32_t slot = node->fp_slot.load(std::memory_order_relaxed);
          if (slot >= 0) {
            // The listener adopts the entry into `sibling` iff it has none.
            node->fp_slot.store(-1, std::memory_order_relaxed);
            if (listener_ != nullptr) listener_->OnNodeRemoved(slot, node, sibling);
          }
          ReplaceChild(parent, pbyte, sibling);
          sibling->WriteUnlock();
        }
        node->WriteUnlockObsolete();
        RetireNode(epoch_, node);
        RetireLeaf(epoch_, leaf);
        parent->WriteUnlock();
        size_.fetch_sub(1, std::memory_order_relaxed);
        return OpResult::kDone;
      }

      if (ShouldShrink(node, cnt - 1) && node != root_ && parent != nullptr) {
        parent->UpgradeToWriteLockOrRestart(pv, &restart);
        if (restart) return OpResult::kRestart;
        node->UpgradeToWriteLockOrRestart(v, &restart);
        if (restart) {
          parent->WriteUnlock();
          return OpResult::kRestart;
        }
        Node* smaller = ShrinkWithout(node, byte);
        const int32_t slot = node->fp_slot.load(std::memory_order_relaxed);
        if (slot >= 0) {
          smaller->fp_slot.store(slot, std::memory_order_relaxed);
          if (listener_ != nullptr) listener_->OnNodeReplaced(slot, node, smaller);
        }
        ReplaceChild(parent, pbyte, smaller);
        node->WriteUnlockObsolete();
        RetireNode(epoch_, node);
        smaller->WriteUnlock();
        parent->WriteUnlock();
        RetireLeaf(epoch_, leaf);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return OpResult::kDone;
      }

      // Plain removal in place.
      node->UpgradeToWriteLockOrRestart(v, &restart);
      if (restart) return OpResult::kRestart;
      RemoveChildEntry(node, byte);
      node->WriteUnlock();
      RetireLeaf(epoch_, leaf);
      size_.fetch_sub(1, std::memory_order_relaxed);
      return OpResult::kDone;
    }

    parent = node;
    pv = v;
    pbyte = byte;
    Node* next = child;
    uint64_t nv = next->ReadLockOrRestart(&restart);
    if (restart) return OpResult::kRestart;
    node->CheckOrRestart(v, &restart);
    if (restart) return OpResult::kRestart;
    node = next;
    v = nv;
    depth += 1;
  }
}

bool ArtTree::Remove(Key key, Value* old_value) {
  ALT_ASSERT_EPOCH_PINNED("ArtTree::Remove", epoch_);
  for (;;) {
    OpResult r = RemoveImpl(key, old_value);
    if (r == OpResult::kDone) return true;
    if (r == OpResult::kNotFound) return false;
  }
}

// ---- Scans -------------------------------------------------------------

bool ArtTree::ScanCollect(const Node* node, Key acc, Key lo, Key hi, size_t max_items,
                          std::vector<std::pair<Key, Value>>* out, int* restarts) const {
  bool restart = false;
  for (;;) {
    restart = false;
    const uint64_t v = node->ReadLockOrRestart(&restart);
    if (restart) {
      // Node became obsolete mid-scan: signal a full restart.
      ++(*restarts);
      return false;
    }
    // Fold the compressed path into the accumulated key prefix, so child
    // subtrees can be pruned against [lo, hi].
    const int depth = node->match_level.load(std::memory_order_relaxed);
    const int plen = node->prefix_len.load(std::memory_order_relaxed);
    const uint64_t pword = node->prefix_word.load(std::memory_order_relaxed);
    Key folded = acc;
    for (int i = 0; i < plen; ++i) {
      const int pos = depth + i;
      folded &= ~(Key{0xFF} << (8 * (kKeyBytes - 1 - pos)));
      folded |= Key{Node::PrefixByte(pword, i)} << (8 * (kKeyBytes - 1 - pos));
    }
    const int branch_depth = depth + plen;
    uint8_t bytes[256];
    Node* children[256];
    const int cnt = CollectEntries(node, bytes, children);
    node->CheckOrRestart(v, &restart);
    if (restart) {
      ++(*restarts);
      if (*restarts > 1024) return false;
      continue;  // re-read this node
    }
    const size_t checkpoint = out->size();
    const int shift = 8 * (kKeyBytes - 1 - branch_depth);
    const Key low_mask =
        branch_depth + 1 >= kKeyBytes ? 0 : (Key{1} << (8 * (kKeyBytes - 1 - branch_depth))) - 1;
    for (int i = 0; i < cnt; ++i) {
      if (out->size() >= max_items) return true;
      Node* c = children[i];
      if (IsLeaf(c)) {
        const Leaf* leaf = ToLeaf(c);
        const Key k = leaf->key;
        if (k >= lo && k <= hi) {
          out->emplace_back(k, leaf->value.load(std::memory_order_acquire));
        }
        continue;
      }
      // Child subtree spans [child_acc, child_acc | low_mask]; prune it
      // against the query window (children are byte-ordered, so subtrees
      // beyond hi end the loop).
      Key child_acc = folded & ~(Key{0xFF} << shift);
      child_acc |= Key{bytes[i]} << shift;
      const Key sub_lo = child_acc;
      const Key sub_hi = child_acc | low_mask;
      if (sub_hi < lo) continue;
      if (sub_lo > hi) break;
      if (!ScanCollect(c, child_acc, lo, hi, max_items, out, restarts)) {
        out->resize(checkpoint);
        return false;
      }
    }
    return true;
  }
}

size_t ArtTree::Scan(Key lo, size_t max_items,
                     std::vector<std::pair<Key, Value>>* out) const {
  ALT_ASSERT_EPOCH_PINNED("ArtTree::Scan", epoch_);
  if (max_items == 0) return 0;
  for (;;) {
    out->clear();
    int restarts = 0;
    // Children are visited in byte order, so collection is ascending; the
    // sort below is a cheap safety net against torn-but-validated orders.
    if (ScanCollect(root_, 0, lo, ~Key{0}, max_items, out, &restarts)) {
      std::sort(out->begin(), out->end());
      if (out->size() > max_items) out->resize(max_items);
      return out->size();
    }
  }
}

size_t ArtTree::RangeQuery(Key lo, Key hi, std::vector<std::pair<Key, Value>>* out) const {
  ALT_ASSERT_EPOCH_PINNED("ArtTree::RangeQuery", epoch_);
  for (;;) {
    out->clear();
    int restarts = 0;
    if (ScanCollect(root_, 0, lo, hi, ~size_t{0}, out, &restarts)) {
      std::sort(out->begin(), out->end());
      return out->size();
    }
  }
}

// ---- Structure utilities ----------------------------------------------------

Node* ArtTree::FindLcaNode(Key lo, Key hi, int* depth_out) const {
  Node* node = root_;
  int depth = 0;
  for (;;) {
    const int plen = node->prefix_len.load(std::memory_order_relaxed);
    if (plen > 0) {
      const uint64_t pword = node->prefix_word.load(std::memory_order_relaxed);
      for (int i = 0; i < plen; ++i) {
        const uint8_t pb = Node::PrefixByte(pword, i);
        if (pb != KeyByte(lo, depth + i) || pb != KeyByte(hi, depth + i)) {
          // Keys diverge inside this node's compressed path (or leave the
          // tree's populated space): this node is the deepest cover.
          *depth_out = node->match_level.load(std::memory_order_relaxed);
          return node;
        }
      }
      depth += plen;
    }
    const uint8_t blo = KeyByte(lo, depth);
    const uint8_t bhi = KeyByte(hi, depth);
    if (blo != bhi) {
      *depth_out = node->match_level.load(std::memory_order_relaxed);
      return node;
    }
    Node* child = GetChild(node, blo);
    if (child == nullptr || IsLeaf(child)) {
      *depth_out = node->match_level.load(std::memory_order_relaxed);
      return node;
    }
    node = child;
    depth += 1;
  }
}

namespace {
void CollectStatsRec(const Node* n, size_t depth, ArtTree::Stats* s) {
  if (IsLeaf(n)) {
    s->leaves++;
    s->bytes += sizeof(Leaf);
    if (depth > s->height) s->height = depth;
    return;
  }
  switch (n->type) {
    case NodeType::kNode4: s->n4++; break;
    case NodeType::kNode16: s->n16++; break;
    case NodeType::kNode48: s->n48++; break;
    case NodeType::kNode256: s->n256++; break;
  }
  s->bytes += NodeBytes(n->type);
  uint8_t bytes[256];
  Node* children[256];
  const int cnt = CollectEntries(n, bytes, children);
  for (int i = 0; i < cnt; ++i) CollectStatsRec(children[i], depth + 1, s);
}
}  // namespace

ArtTree::Stats ArtTree::CollectStats() const {
  Stats s;
  CollectStatsRec(root_, 0, &s);
  return s;
}

namespace {
void CollectCensusRec(const Node* n, size_t inner_depth, ArtTree::Census* c) {
  if (IsLeaf(n)) {
    c->leaves++;
    c->leaf_bytes += sizeof(Leaf);
    c->total_bytes += sizeof(Leaf);
    const size_t d = inner_depth <= kKeyBytes ? inner_depth : kKeyBytes;
    c->depth_hist[d]++;
    if (inner_depth > c->height) c->height = inner_depth;
    return;
  }
  const size_t t = static_cast<size_t>(n->type);
  c->nodes[t]++;
  c->node_bytes[t] += NodeBytes(n->type);
  c->total_bytes += NodeBytes(n->type);
  const size_t plen = n->prefix_len.load(std::memory_order_relaxed);
  if (plen > 0) {
    c->compressed_nodes++;
    c->prefix_bytes += plen;
  }
  uint8_t bytes[256];
  Node* children[256];
  const int cnt = CollectEntries(n, bytes, children);
  for (int i = 0; i < cnt; ++i) CollectCensusRec(children[i], inner_depth + 1, c);
}
}  // namespace

ArtTree::Census ArtTree::CollectCensus() const {
  Census c;
  // Depth convention matches CollectStats: the root counts as depth 0, so a
  // leaf's depth equals the number of inner nodes on its root→leaf path.
  CollectCensusRec(root_, 0, &c);
  return c;
}

}  // namespace art
}  // namespace alt
