file(REMOVE_RECURSE
  "CMakeFiles/alt_datasets.dir/datasets/dataset.cc.o"
  "CMakeFiles/alt_datasets.dir/datasets/dataset.cc.o.d"
  "CMakeFiles/alt_datasets.dir/datasets/sosd_loader.cc.o"
  "CMakeFiles/alt_datasets.dir/datasets/sosd_loader.cc.o.d"
  "libalt_datasets.a"
  "libalt_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
