# Empty dependencies file for gpl_test.
# This may be replaced when dependencies are built.
