# Empty compiler generated dependencies file for alt_art.
# This may be replaced when dependencies are built.
