#pragma once

#include <cstdint>
#include <cstring>

namespace alt {

/// Fixed 8-byte unsigned integer key, the record type used throughout the paper
/// ("200 million 8-byte records").
using Key = uint64_t;
/// 8-byte payload. The indexes store values inline next to keys.
using Value = uint64_t;

/// Number of key bytes; ART consumes one byte per level.
inline constexpr int kKeyBytes = 8;

/// \brief Extract byte `level` (0 = most significant) of the big-endian
/// binary-comparable encoding of `key`.
///
/// Big-endian byte order makes lexicographic byte comparison agree with integer
/// order, which ART relies on for ordered scans.
inline uint8_t KeyByte(Key key, int level) {
  return static_cast<uint8_t>(key >> (8 * (kKeyBytes - 1 - level)));
}

/// \brief Length (in bytes) of the common prefix of two keys in big-endian order.
inline int CommonPrefixBytes(Key a, Key b) {
  uint64_t diff = a ^ b;
  if (diff == 0) return kKeyBytes;
  return __builtin_clzll(diff) / 8;
}

/// \brief The first `bytes` big-endian bytes of `key`, remaining bytes zeroed.
/// Used by the fast pointer buffer to validate that a key lies under a hinted
/// ART subtree before using the hint.
inline Key KeyPrefix(Key key, int bytes) {
  if (bytes <= 0) return 0;
  if (bytes >= kKeyBytes) return key;
  return key & ~((uint64_t{1} << (8 * (kKeyBytes - bytes))) - 1);
}

}  // namespace alt
