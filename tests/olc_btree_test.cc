#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baselines/olc_btree.h"
#include "common/random.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

TEST(OlcBTreeTest, EmptyTree) {
  OlcBTree tree;
  Value v;
  EXPECT_FALSE(tree.Lookup(1, &v));
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 1u);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(tree.Scan(0, 10, &out), 0u);
}

TEST(OlcBTreeTest, SingleLeafOperations) {
  OlcBTree tree;
  for (Key k = 1; k <= 20; ++k) EXPECT_TRUE(tree.Insert(k, k * 10));
  EXPECT_EQ(tree.Height(), 1u);  // fits in one leaf
  Value v;
  for (Key k = 1; k <= 20; ++k) {
    ASSERT_TRUE(tree.Lookup(k, &v));
    EXPECT_EQ(v, k * 10);
  }
  EXPECT_FALSE(tree.Insert(5, 1));
  EXPECT_TRUE(tree.Update(5, 999));
  ASSERT_TRUE(tree.Lookup(5, &v));
  EXPECT_EQ(v, 999u);
  EXPECT_TRUE(tree.Remove(5));
  EXPECT_FALSE(tree.Lookup(5, &v));
  EXPECT_FALSE(tree.Remove(5));
}

TEST(OlcBTreeTest, RootSplitGrowsHeight) {
  OlcBTree tree;
  for (Key k = 0; k < 100; ++k) ASSERT_TRUE(tree.Insert(k, k));
  EXPECT_GT(tree.Height(), 1u);
  Value v;
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Lookup(k, &v)) << k;
    EXPECT_EQ(v, k);
  }
}

TEST(OlcBTreeTest, SequentialAndReverseInserts) {
  for (const bool reverse : {false, true}) {
    OlcBTree tree;
    constexpr Key kN = 20000;
    for (Key i = 0; i < kN; ++i) {
      const Key k = reverse ? kN - 1 - i : i;
      ASSERT_TRUE(tree.Insert(k * 3, k));
    }
    EXPECT_EQ(tree.Size(), kN);
    Value v;
    for (Key k = 0; k < kN; ++k) {
      ASSERT_TRUE(tree.Lookup(k * 3, &v));
      EXPECT_EQ(v, k);
      EXPECT_FALSE(tree.Lookup(k * 3 + 1, &v));
    }
    // log-ish height for fanout 32.
    EXPECT_LE(tree.Height(), 5u);
  }
}

TEST(OlcBTreeTest, ScanAcrossLeafChain) {
  OlcBTree tree;
  for (Key k = 0; k < 5000; ++k) ASSERT_TRUE(tree.Insert(k * 2, k));
  std::vector<std::pair<Key, Value>> out;
  ASSERT_EQ(tree.Scan(1001, 500, &out), 500u);  // starts between keys
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 1002 + 2 * i);
  }
  // Tail truncation.
  EXPECT_EQ(tree.Scan(9990, 100, &out), 5u);
}

TEST(OlcBTreeTest, RandomKeysAgainstSortedOracle) {
  OlcBTree tree;
  auto keys = GenerateKeys(Dataset::kLognormal, 30000, 3);
  Rng rng(9);
  // Insert in random order.
  std::vector<Key> shuffled = keys;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  for (Key k : shuffled) ASSERT_TRUE(tree.Insert(k, ValueFor(k)));
  // Scans agree with the sorted order.
  std::vector<std::pair<Key, Value>> out;
  tree.Scan(0, keys.size(), &out);
  ASSERT_EQ(out.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(out[i].first, keys[i]);
    ASSERT_EQ(out[i].second, ValueFor(keys[i]));
  }
}

TEST(OlcBTreeTest, ConcurrentDisjointInserts) {
  OlcBTree tree;
  constexpr int kThreads = 8;
  constexpr Key kPerThread = 20000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (Key i = 0; i < kPerThread; ++i) {
        const Key k = i * kThreads + static_cast<Key>(t);
        if (!tree.Insert(k, k + 1)) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load());
  EXPECT_EQ(tree.Size(), kPerThread * kThreads);
  Value v;
  for (Key k = 0; k < kPerThread * kThreads; ++k) {
    ASSERT_TRUE(tree.Lookup(k, &v)) << k;
    EXPECT_EQ(v, k + 1);
  }
}

TEST(OlcBTreeTest, ConcurrentReadersDuringSplits) {
  OlcBTree tree;
  for (Key k = 0; k < 10000; ++k) tree.Insert(k * 4, k);
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (Key k = 0; k < 10000; ++k) {
      if (!tree.Insert(k * 4 + 1, k)) failed.store(true);
      if (!tree.Insert(k * 4 + 2, k)) failed.store(true);
    }
  });
  std::thread reader([&] {
    Value v;
    for (int round = 0; round < 5; ++round) {
      for (Key k = 0; k < 10000; k += 3) {
        if (!tree.Lookup(k * 4, &v) || v != k) failed.store(true);
      }
    }
  });
  std::thread scanner([&] {
    std::vector<std::pair<Key, Value>> out;
    for (int r = 0; r < 40; ++r) {
      tree.Scan(static_cast<Key>(r) * 997, 100, &out);
      for (size_t i = 1; i < out.size(); ++i) {
        if (out[i - 1].first >= out[i].first) failed.store(true);
      }
    }
  });
  writer.join();
  reader.join();
  scanner.join();
  EXPECT_FALSE(failed.load());
}

TEST(OlcBTreeTest, MemoryGrowsWithData) {
  OlcBTree tree;
  const size_t empty = tree.MemoryUsage();
  for (Key k = 0; k < 10000; ++k) tree.Insert(k, k);
  EXPECT_GT(tree.MemoryUsage(), empty + 10000 * sizeof(Key));
}

}  // namespace
}  // namespace alt
