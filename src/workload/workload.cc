#include "workload/workload.h"

#include "common/random.h"
#include "common/zipf.h"

namespace alt {

Status ParseWorkload(const std::string& name, WorkloadType* out) {
  if (name == "read-only" || name == "ro") {
    *out = WorkloadType::kReadOnly;
  } else if (name == "read-heavy" || name == "rh") {
    *out = WorkloadType::kReadHeavy;
  } else if (name == "balanced" || name == "rwb") {
    *out = WorkloadType::kBalanced;
  } else if (name == "write-heavy" || name == "wh") {
    *out = WorkloadType::kWriteHeavy;
  } else if (name == "write-only" || name == "wo") {
    *out = WorkloadType::kWriteOnly;
  } else if (name == "scan") {
    *out = WorkloadType::kScan;
  } else {
    return Status::InvalidArgument("unknown workload: " + name);
  }
  return Status::OK();
}

const char* WorkloadName(WorkloadType w) {
  switch (w) {
    case WorkloadType::kReadOnly: return "read-only";
    case WorkloadType::kReadHeavy: return "read-heavy";
    case WorkloadType::kBalanced: return "balanced";
    case WorkloadType::kWriteHeavy: return "write-heavy";
    case WorkloadType::kWriteOnly: return "write-only";
    case WorkloadType::kScan: return "scan";
  }
  return "?";
}

std::vector<WorkloadType> PaperWorkloads() {
  return {WorkloadType::kReadOnly, WorkloadType::kReadHeavy, WorkloadType::kBalanced,
          WorkloadType::kWriteHeavy, WorkloadType::kWriteOnly};
}

namespace {
int InsertPercent(WorkloadType t) {
  switch (t) {
    case WorkloadType::kReadOnly: return 0;
    case WorkloadType::kReadHeavy: return 20;
    case WorkloadType::kBalanced: return 50;
    case WorkloadType::kWriteHeavy: return 80;
    case WorkloadType::kWriteOnly: return 100;
    case WorkloadType::kScan: return 0;
  }
  return 0;
}
}  // namespace

std::vector<std::vector<Op>> GenerateOpStreams(const std::vector<Key>& loaded_keys,
                                               const std::vector<Key>& insert_pool,
                                               int num_threads,
                                               const WorkloadOptions& options) {
  std::vector<std::vector<Op>> streams(static_cast<size_t>(num_threads));
  const int insert_pct = InsertPercent(options.type);
  const bool scans = options.type == WorkloadType::kScan;

  for (int t = 0; t < num_threads; ++t) {
    Rng rng(options.seed * 1000003 + static_cast<uint64_t>(t));
    ScrambledZipf zipf(loaded_keys.empty() ? 1 : loaded_keys.size(),
                       options.zipf_theta, options.seed + static_cast<uint64_t>(t));
    // Disjoint per-thread shard of the insert pool. Normal mode consumes the
    // shard in a shuffled order (the paper's "insertions are distributed
    // uniformly"); hot-write mode (§IV-E) consumes it in key order to keep
    // hammering one region.
    const size_t shard_size = insert_pool.size() / static_cast<size_t>(num_threads);
    const size_t shard_begin = static_cast<size_t>(t) * shard_size;
    std::vector<uint32_t> order(shard_size);
    for (size_t i = 0; i < shard_size; ++i) order[i] = static_cast<uint32_t>(i);
    if (!options.sequential_inserts) {
      for (size_t i = shard_size; i > 1; --i) {  // Fisher-Yates
        std::swap(order[i - 1], order[rng.NextBounded(i)]);
      }
    }
    size_t shard_next = 0;

    auto& stream = streams[static_cast<size_t>(t)];
    stream.reserve(options.ops_per_thread);
    for (size_t i = 0; i < options.ops_per_thread; ++i) {
      const bool do_insert =
          insert_pct > 0 && shard_size > 0 &&
          rng.NextBounded(100) < static_cast<uint64_t>(insert_pct);
      if (do_insert) {
        const size_t pick = order[shard_next++ % shard_size];
        stream.push_back(Op{OpType::kInsert, insert_pool[shard_begin + pick]});
      } else if (scans) {
        stream.push_back(Op{OpType::kScan, loaded_keys[zipf.Next()]});
      } else {
        stream.push_back(Op{OpType::kRead, loaded_keys[zipf.Next()]});
      }
    }
  }
  return streams;
}

}  // namespace alt
