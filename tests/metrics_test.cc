#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"

namespace alt {
namespace metrics {
namespace {

// The registry is process-global; each test starts from a clean slate. Safe
// here because this binary runs no concurrent recorder outside the tests'
// own (joined) threads.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetForTest(); }
};

#if !defined(ALT_METRICS_DISABLED)

TEST_F(MetricsTest, ShardedCountersCollapseExactlyUnderConcurrentMutators) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (uint64_t i = 0; i < kPerThread; ++i) {
        Inc(Counter::kLearnedHits);
        if ((i & 7) == 0) Inc(Counter::kArtLookups, 3);
        FpDepthHit(static_cast<int>(i % kFpDepthBuckets));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  const Snapshot s = TakeSnapshot();
  EXPECT_EQ(s.counter(Counter::kLearnedHits), kThreads * kPerThread);
  EXPECT_EQ(s.counter(Counter::kArtLookups), kThreads * (kPerThread / 8) * 3);
  uint64_t depth_total = 0;
  for (size_t d = 0; d < kFpDepthBuckets; ++d) depth_total += s.fp_hit_depth[d];
  EXPECT_EQ(depth_total, kThreads * kPerThread);
}

TEST_F(MetricsTest, SnapshotsAreMonotonicWhileRecording) {
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Inc(Counter::kSlotInserts);
      Inc(Counter::kWriteBacks, 2);
    }
  });
  Snapshot prev = TakeSnapshot();
  for (int i = 0; i < 200; ++i) {
    const Snapshot now = TakeSnapshot();
    for (size_t c = 0; c < kNumCounters; ++c) {
      ASSERT_GE(now.counters[c], prev.counters[c]) << "counter " << c;
    }
    ASSERT_GE(now.at_ns, prev.at_ns);
    prev = now;
  }
  stop.store(true, std::memory_order_release);
  mutator.join();
}

TEST_F(MetricsTest, DeltaSinceScopesToOnePhase) {
  Inc(Counter::kLearnedHits, 100);
  RecordEvent(EventType::kBulkLoad, 5, 1000);
  const Snapshot base = TakeSnapshot();
  Inc(Counter::kLearnedHits, 7);
  RecordEvent(EventType::kRetrainFinish, 42, 77);
  const Snapshot delta = TakeSnapshot().DeltaSince(base);
  EXPECT_EQ(delta.counter(Counter::kLearnedHits), 7u);
  ASSERT_EQ(delta.events.size(), 1u);
  EXPECT_EQ(delta.events[0].type, EventType::kRetrainFinish);
  EXPECT_EQ(delta.events[0].duration_ns, 42u);
  EXPECT_EQ(delta.events[0].detail, 77u);
}

TEST_F(MetricsTest, EventRingIsBoundedAndCountsDrops) {
  const uint64_t total = Registry::kEventCapacity + 37;
  for (uint64_t i = 0; i < total; ++i) {
    RecordEvent(EventType::kRetrainStart, i, i);
  }
  const Snapshot s = TakeSnapshot();
  ASSERT_EQ(s.events.size(), Registry::kEventCapacity);
  EXPECT_EQ(s.dropped_events, 37u);
  // Oldest-retained-first ordering: details are the last kEventCapacity i's.
  for (size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(s.events[i].detail, 37 + i);
  }
}

TEST_F(MetricsTest, FpDepthBucketsClampOutOfRangeDepths) {
  FpDepthHit(-3);
  FpDepthHit(0);
  FpDepthHit(static_cast<int>(kFpDepthBuckets));  // past the last bucket
  FpDepthHit(1000, 5);
  const Snapshot s = TakeSnapshot();
  EXPECT_EQ(s.fp_hit_depth[0], 2u);
  EXPECT_EQ(s.fp_hit_depth[kFpDepthBuckets - 1], 6u);
}

TEST_F(MetricsTest, GaugesAreLastWriteWins) {
  SetGauge(Gauge::kNumModels, 12);
  SetGauge(Gauge::kNumModels, 17);
  SetGauge(Gauge::kLiveKeys, 1000000);
  const Snapshot s = TakeSnapshot();
  EXPECT_EQ(s.gauge(Gauge::kNumModels), 17);
  EXPECT_EQ(s.gauge(Gauge::kLiveKeys), 1000000);
}

TEST_F(MetricsTest, ToJsonGolden) {
  Inc(Counter::kLearnedHits, 3);
  Inc(Counter::kConflictInserts, 2);
  FpDepthHit(4);
  SetGauge(Gauge::kNumModels, 5);
  RecordEvent(EventType::kTailModelAppend, 0, 99);
  Snapshot s = TakeSnapshot();
  // Pin the nondeterministic clock fields so the output is fully golden.
  s.at_ns = 123;
  ASSERT_EQ(s.events.size(), 1u);
  s.events[0].at_ns = 456;
  EXPECT_EQ(ToJson(s),
            "{\"at_ns\":123,\"counters\":{\"learned_hits\":3,"
            "\"learned_negatives\":0,\"slot_inserts\":0,\"conflict_inserts\":2,"
            "\"art_lookups\":0,\"art_lookup_steps\":0,\"art_root_fallbacks\":0,"
            "\"fast_pointer_hits\":0,\"write_backs\":0,\"scan_ops\":0,"
            "\"empty_scans\":0,\"retrain_started\":0,\"retrain_finished\":0,"
            "\"tail_models_appended\":0,\"batch_lookups\":0,"
            "\"batch_scalar_fallbacks\":0,\"server_accepts\":0,"
            "\"server_frames_in\":0,\"server_batch_flushes\":0,"
            "\"server_batch_keys\":0,\"server_malformed_frames\":0,"
            "\"server_worker_failures\":0},"
            "\"fp_hit_depth\":[0,0,0,0,1,0,0,0,0],"
            "\"gauges\":{\"num_models\":5,\"live_keys\":0},"
            "\"events\":[{\"type\":\"tail_model_append\",\"at_ns\":456,"
            "\"duration_ns\":0,\"detail\":99}],"
            "\"dropped_events\":0}");
}

TEST_F(MetricsTest, RecordingOverheadSmoke) {
  // Coarse regression guard, not a benchmark: 10M relaxed sharded increments
  // must stay far under a second even on a loaded CI machine.
  constexpr uint64_t kOps = 10000000;
  const Stopwatch sw;
  for (uint64_t i = 0; i < kOps; ++i) Inc(Counter::kLearnedHits);
  EXPECT_LT(sw.ElapsedSeconds(), 5.0);
  EXPECT_EQ(TakeSnapshot().counter(Counter::kLearnedHits), kOps);
}

#else  // ALT_METRICS_DISABLED

TEST_F(MetricsTest, DisabledRecordingIsANoop) {
  Inc(Counter::kLearnedHits, 3);
  FpDepthHit(4);
  SetGauge(Gauge::kNumModels, 5);
  RecordEvent(EventType::kBulkLoad, 1, 2);
  const Snapshot s = TakeSnapshot();
  EXPECT_EQ(s.counter(Counter::kLearnedHits), 0u);
  EXPECT_EQ(s.gauge(Gauge::kNumModels), 0);
  EXPECT_TRUE(s.events.empty());
  // ToJson stays available so exporters need no #ifdefs.
  EXPECT_NE(ToJson(s).find("\"learned_hits\":0"), std::string::npos);
}

#endif

}  // namespace
}  // namespace metrics
}  // namespace alt
