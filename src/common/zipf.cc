#include "common/zipf.h"

#include <cmath>

namespace alt {

double Zipf::Zeta(uint64_t n, double theta) {
  // Exact sum for small n; Euler-Maclaurin style approximation above a cutoff
  // keeps construction O(1M) even for billion-item spaces.
  constexpr uint64_t kExactLimit = 1u << 20;
  double sum = 0.0;
  const uint64_t exact = n < kExactLimit ? n : kExactLimit;
  for (uint64_t i = 1; i <= exact; ++i) sum += std::pow(1.0 / static_cast<double>(i), theta);
  if (n > exact) {
    // integral of x^-theta from exact to n
    if (theta == 1.0) {
      sum += std::log(static_cast<double>(n) / static_cast<double>(exact));
    } else {
      sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(exact), 1.0 - theta)) /
             (1.0 - theta);
    }
  }
  return sum;
}

Zipf::Zipf(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rng_(seed ^ 0x5bd1e995u) {
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t Zipf::Next() {
  if (theta_ <= 1e-9) return rng_.NextBounded(n_);
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace alt
