# Empty dependencies file for bench_fig8c_scan.
# This may be replaced when dependencies are built.
