file(REMOVE_RECURSE
  "CMakeFiles/alt_common.dir/common/latency_recorder.cc.o"
  "CMakeFiles/alt_common.dir/common/latency_recorder.cc.o.d"
  "CMakeFiles/alt_common.dir/common/random.cc.o"
  "CMakeFiles/alt_common.dir/common/random.cc.o.d"
  "CMakeFiles/alt_common.dir/common/zipf.cc.o"
  "CMakeFiles/alt_common.dir/common/zipf.cc.o.d"
  "libalt_common.a"
  "libalt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
