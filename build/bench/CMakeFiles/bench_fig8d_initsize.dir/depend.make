# Empty dependencies file for bench_fig8d_initsize.
# This may be replaced when dependencies are built.
