#pragma once

#include <string>
#include <utility>

namespace alt {

/// \brief Lightweight result status for fallible operations.
///
/// Follows the Arrow/RocksDB idiom: cheap to construct for OK, carries a code
/// and message otherwise. Index hot paths return bool; Status is used on
/// configuration / bulk operations where diagnosing the failure matters.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kIOError,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(Code::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) { return Status(Code::kIOError, std::move(msg)); }
  static Status Internal(std::string msg) { return Status(Code::kInternal, std::move(msg)); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kAlreadyExists: return "AlreadyExists";
      case Code::kOutOfRange: return "OutOfRange";
      case Code::kIOError: return "IOError";
      case Code::kInternal: return "Internal";
    }
    return "Unknown";
  }

  Code code_;
  std::string message_;
};

}  // namespace alt
