#pragma once

#include <cstddef>
#include <cstdint>

namespace alt {

/// Cache line size assumed for multi-line prefetches. 64 bytes covers x86 and
/// most AArch64 parts; an over-estimate only costs an extra harmless prefetch.
inline constexpr size_t kCacheLineBytes = 64;

/// \brief Hint the prefetcher to pull the line holding `p` for reading.
///
/// Used by the batched read path (AMAC-style group prefetching): one lookup
/// issues the prefetch for its next dependent line, then yields to the other
/// in-flight lookups of the group so the miss is overlapped with useful work.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Prefetch `bytes` worth of lines starting at `p` (e.g. an ART node header
/// plus its child array, or a GPL slot straddling a line boundary).
inline void PrefetchReadRange(const void* p, size_t bytes) {
  const auto addr = reinterpret_cast<uintptr_t>(p);
  const uintptr_t first = addr & ~(kCacheLineBytes - 1);
  const uintptr_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) & ~(kCacheLineBytes - 1);
  for (uintptr_t line = first; line <= last; line += kCacheLineBytes) {
    PrefetchRead(reinterpret_cast<const void*>(line));
  }
}

}  // namespace alt
