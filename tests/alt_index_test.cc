#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/epoch.h"
#include "common/random.h"
#include "core/alt_index.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

std::vector<std::pair<Key, Value>> MakePairs(const std::vector<Key>& keys) {
  std::vector<std::pair<Key, Value>> pairs;
  pairs.reserve(keys.size());
  for (Key k : keys) pairs.emplace_back(k, ValueFor(k));
  return pairs;
}

class AltIndexTest : public ::testing::Test {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

TEST_F(AltIndexTest, BulkLoadRejectsUnsorted) {
  AltIndex index;
  const Key keys[] = {5, 3, 9};
  const Value vals[] = {1, 2, 3};
  EXPECT_EQ(index.BulkLoad(keys, vals, 3).code(), Status::Code::kInvalidArgument);
}

TEST_F(AltIndexTest, BulkLoadRejectsDuplicates) {
  AltIndex index;
  const Key keys[] = {3, 3, 9};
  const Value vals[] = {1, 2, 3};
  EXPECT_EQ(index.BulkLoad(keys, vals, 3).code(), Status::Code::kInvalidArgument);
}

TEST_F(AltIndexTest, BulkLoadEmptyPublishesWholeRangeTailModel) {
  // n == 0 publishes one tail-like model spanning the whole keyspace so the
  // index is fully operational before any data arrives (empty shards of a
  // ShardedAltIndex rely on this).
  AltIndex index;
  ASSERT_TRUE(index.BulkLoad(nullptr, nullptr, 0).ok());
  EXPECT_EQ(index.Size(), 0u);
  Value v = 0;
  EXPECT_FALSE(index.Lookup(1, &v));
  EXPECT_TRUE(index.Insert(1, 10));
  EXPECT_TRUE(index.Insert(~Key{0} - 1, 20));  // far end of the keyspace
  EXPECT_TRUE(index.Lookup(1, &v));
  EXPECT_EQ(v, 10u);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(index.Scan(0, 10, &out), 2u);
  EXPECT_EQ(index.Size(), 2u);
}

TEST_F(AltIndexTest, BulkLoadRunsOnce) {
  AltIndex index;
  const Key keys[] = {1, 2, 3};
  const Value vals[] = {1, 2, 3};
  ASSERT_TRUE(index.BulkLoad(keys, vals, 3).ok());
  EXPECT_FALSE(index.BulkLoad(keys, vals, 3).ok());
}

TEST_F(AltIndexTest, BulkLoadThenLookupEveryKey) {
  AltIndex index;
  auto pairs = MakePairs(GenerateKeys(Dataset::kOsm, 100000, 17));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  EXPECT_EQ(index.Size(), pairs.size());
  for (const auto& [k, v] : pairs) {
    Value got;
    ASSERT_TRUE(index.Lookup(k, &got));
    EXPECT_EQ(got, v);
  }
}

TEST_F(AltIndexTest, SuggestedErrorBoundApplied) {
  AltIndex index;
  auto pairs = MakePairs(GenerateKeys(Dataset::kUniform, 50000, 1));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  EXPECT_DOUBLE_EQ(index.effective_error_bound(),
                   AltOptions::SuggestErrorBound(50000));
}

TEST_F(AltIndexTest, ExplicitErrorBoundRespected) {
  AltOptions opts;
  opts.error_bound = 128;
  AltIndex index(opts);
  auto pairs = MakePairs(GenerateKeys(Dataset::kUniform, 10000, 1));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  EXPECT_DOUBLE_EQ(index.effective_error_bound(), 128.0);
}

// Zero-error invariant: every bulk-loaded key is either at exactly its
// predicted slot or in ART — learned-layer keys need no secondary search.
TEST_F(AltIndexTest, LayerSplitAccountsForAllKeys) {
  AltIndex index;
  auto pairs = MakePairs(GenerateKeys(Dataset::kLonglat, 80000, 29));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  const auto st = index.CollectStats();
  EXPECT_EQ(st.learned_layer_keys + st.art_keys, pairs.size());
  EXPECT_GT(st.learned_layer_keys, pairs.size() / 2)
      << "most keys should be absorbed by the learned layer (Fig. 10(c))";
}

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

TEST_F(AltIndexTest, LookupMissesAbsentKeys) {
  AltIndex index;
  auto keys = GenerateKeys(Dataset::kFb, 50000, 7);
  auto pairs = MakePairs(keys);
  // Load only even positions; odd ones must miss.
  std::vector<std::pair<Key, Value>> loaded;
  for (size_t i = 0; i < pairs.size(); i += 2) loaded.push_back(pairs[i]);
  ASSERT_TRUE(index.BulkLoad(loaded).ok());
  for (size_t i = 1; i < pairs.size(); i += 2) {
    Value v;
    EXPECT_FALSE(index.Lookup(pairs[i].first, &v)) << i;
  }
}

TEST_F(AltIndexTest, InsertNewKeysThenLookup) {
  AltIndex index;
  auto keys = GenerateKeys(Dataset::kLibio, 60000, 7);
  std::vector<std::pair<Key, Value>> loaded, extra;
  for (size_t i = 0; i < keys.size(); ++i) {
    (i % 2 ? extra : loaded).emplace_back(keys[i], ValueFor(keys[i]));
  }
  ASSERT_TRUE(index.BulkLoad(loaded).ok());
  for (const auto& [k, v] : extra) EXPECT_TRUE(index.Insert(k, v));
  EXPECT_EQ(index.Size(), keys.size());
  for (const auto& [k, v] : extra) {
    Value got;
    ASSERT_TRUE(index.Lookup(k, &got));
    EXPECT_EQ(got, v);
  }
}

TEST_F(AltIndexTest, DuplicateInsertRejectedEverywhere) {
  AltIndex index;
  auto pairs = MakePairs(GenerateKeys(Dataset::kOsm, 20000, 7));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  // Both learned-layer residents and ART residents must reject duplicates.
  for (size_t i = 0; i < pairs.size(); i += 17) {
    EXPECT_FALSE(index.Insert(pairs[i].first, 0)) << i;
  }
  EXPECT_EQ(index.Size(), pairs.size());
}

TEST_F(AltIndexTest, UpdateChangesValueInBothLayers) {
  AltIndex index;
  auto pairs = MakePairs(GenerateKeys(Dataset::kFb, 30000, 7));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  for (size_t i = 0; i < pairs.size(); i += 7) {
    EXPECT_TRUE(index.Update(pairs[i].first, 777));
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    Value v;
    ASSERT_TRUE(index.Lookup(pairs[i].first, &v));
    EXPECT_EQ(v, i % 7 == 0 ? 777 : pairs[i].second);
  }
  EXPECT_FALSE(index.Update(pairs.back().first + 12345, 1));
}

TEST_F(AltIndexTest, UpsertInsertsThenOverwrites) {
  AltIndex index;
  auto pairs = MakePairs(GenerateKeys(Dataset::kUniform, 10000, 3));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  const Key fresh = pairs.back().first + 999;
  EXPECT_TRUE(index.Upsert(fresh, 1));
  EXPECT_FALSE(index.Upsert(fresh, 2));
  Value v;
  ASSERT_TRUE(index.Lookup(fresh, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(index.Upsert(pairs[0].first, 42));
  ASSERT_TRUE(index.Lookup(pairs[0].first, &v));
  EXPECT_EQ(v, 42u);
}

TEST_F(AltIndexTest, RemoveFromLearnedLayerLeavesTombstone) {
  AltIndex index;
  auto pairs = MakePairs(GenerateKeys(Dataset::kLibio, 30000, 7));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  for (size_t i = 0; i < pairs.size(); i += 3) {
    EXPECT_TRUE(index.Remove(pairs[i].first));
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    Value v;
    EXPECT_EQ(index.Lookup(pairs[i].first, &v), i % 3 != 0) << i;
  }
  EXPECT_FALSE(index.Remove(pairs[0].first)) << "double remove";
  EXPECT_EQ(index.Size(), pairs.size() - (pairs.size() + 2) / 3);
}

TEST_F(AltIndexTest, ReinsertAfterRemove) {
  AltIndex index;
  auto pairs = MakePairs(GenerateKeys(Dataset::kOsm, 20000, 7));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  for (size_t i = 0; i < pairs.size(); i += 5) {
    ASSERT_TRUE(index.Remove(pairs[i].first));
    EXPECT_TRUE(index.Insert(pairs[i].first, 1234));
    Value v;
    ASSERT_TRUE(index.Lookup(pairs[i].first, &v));
    EXPECT_EQ(v, 1234u);
  }
  EXPECT_EQ(index.Size(), pairs.size());
}

// The write-back scheme (Alg. 2): removing a learned-layer key whose slot
// shadows ART conflicts, then looking those conflicts up, migrates them back
// into the slot and out of ART.
TEST_F(AltIndexTest, WriteBackReclaimsTombstones) {
  AltIndex index;
  auto pairs = MakePairs(GenerateKeys(Dataset::kLonglat, 50000, 13));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  const auto before = index.CollectStats();
  ASSERT_GT(before.art_keys, 0u);
  // Remove every learned-layer resident, then look up every key twice: the
  // first pass write-backs eligible ART keys, the second verifies.
  for (size_t round = 0; round < 2; ++round) {
    for (const auto& [k, v] : pairs) {
      Value got;
      index.Lookup(k, &got);
    }
  }
  // Delete half the keys and re-look-up the rest.
  for (size_t i = 0; i < pairs.size(); i += 2) index.Remove(pairs[i].first);
  for (size_t i = 1; i < pairs.size(); i += 2) {
    Value got;
    ASSERT_TRUE(index.Lookup(pairs[i].first, &got)) << i;
    EXPECT_EQ(got, pairs[i].second);
  }
  const auto after = index.CollectStats();
  EXPECT_LT(after.art_keys, before.art_keys)
      << "write-back should drain some conflicts out of ART";
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

TEST_F(AltIndexTest, ScanMatchesSortedOracle) {
  AltIndex index;
  auto keys = GenerateKeys(Dataset::kFb, 40000, 23);
  auto pairs = MakePairs(keys);
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  std::vector<std::pair<Key, Value>> out;
  Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    const size_t start = rng.NextBounded(keys.size() - 200);
    const size_t n = 1 + rng.NextBounded(150);
    ASSERT_EQ(index.Scan(keys[start], n, &out), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i].first, keys[start + i]);
      EXPECT_EQ(out[i].second, ValueFor(keys[start + i]));
    }
  }
}

TEST_F(AltIndexTest, ScanFromBetweenKeys) {
  AltIndex index;
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 1000; ++k) pairs.emplace_back(k * 10 + 5, k);
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  std::vector<std::pair<Key, Value>> out;
  ASSERT_EQ(index.Scan(52, 3, &out), 3u);  // between 45 and 55
  EXPECT_EQ(out[0].first, 55u);
  EXPECT_EQ(out[1].first, 65u);
  EXPECT_EQ(out[2].first, 75u);
}

TEST_F(AltIndexTest, ScanSeesInsertsAndSkipsRemoved) {
  AltIndex index;
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 2000; k += 2) pairs.emplace_back(k, k);
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  for (Key k = 1; k < 2000; k += 2) ASSERT_TRUE(index.Insert(k, k));
  for (Key k = 0; k < 2000; k += 10) ASSERT_TRUE(index.Remove(k));
  std::vector<std::pair<Key, Value>> out;
  index.Scan(0, 5000, &out);
  std::vector<Key> expect;
  for (Key k = 0; k < 2000; ++k) {
    if (k % 10 != 0 || k % 2 == 1) expect.push_back(k);
  }
  ASSERT_EQ(out.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(out[i].first, expect[i]);
}

TEST_F(AltIndexTest, RangeQueryInclusiveBounds) {
  AltIndex index;
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 1; k <= 100; ++k) pairs.emplace_back(k * 100, k);
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(index.RangeQuery(500, 1000, &out), 6u);
  EXPECT_EQ(out.front().first, 500u);
  EXPECT_EQ(out.back().first, 1000u);
  EXPECT_EQ(index.RangeQuery(501, 599, &out), 0u);
  EXPECT_EQ(index.RangeQuery(1000, 500, &out), 0u);  // inverted range
}

// ---------------------------------------------------------------------------
// Option ablations
// ---------------------------------------------------------------------------

class AltOptionsTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }

  static AltOptions MakeOptions(int variant) {
    AltOptions o;
    switch (variant) {
      case 0: break;                                  // defaults
      case 1: o.enable_fast_pointers = false; break;  // root-only ART search
      case 2: o.enable_retraining = false; break;     // no expansions
      case 3: o.gap_factor = 1.2; break;              // dense slots
      case 4: o.gap_factor = 3.0; break;              // sparse slots
      case 5: o.error_bound = 32; break;              // small epsilon
      case 6: o.error_bound = 2048; break;            // large epsilon
      default: break;
    }
    return o;
  }
};

TEST_P(AltOptionsTest, FullLifecycleCorrectUnderAnyConfig) {
  AltIndex index(MakeOptions(GetParam()));
  auto keys = GenerateKeys(Dataset::kOsm, 30000, 41);
  std::vector<std::pair<Key, Value>> loaded, extra;
  for (size_t i = 0; i < keys.size(); ++i) {
    (i % 2 ? extra : loaded).emplace_back(keys[i], ValueFor(keys[i]));
  }
  ASSERT_TRUE(index.BulkLoad(loaded).ok());
  for (const auto& [k, v] : extra) ASSERT_TRUE(index.Insert(k, v));
  for (const auto& [k, v] : loaded) {
    Value got;
    ASSERT_TRUE(index.Lookup(k, &got));
    EXPECT_EQ(got, v);
  }
  for (size_t i = 0; i < keys.size(); i += 4) ASSERT_TRUE(index.Remove(keys[i]));
  for (size_t i = 0; i < keys.size(); ++i) {
    Value got;
    EXPECT_EQ(index.Lookup(keys[i], &got), i % 4 != 0);
  }
  std::vector<std::pair<Key, Value>> out;
  index.Scan(keys[10], 64, &out);
  for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1].first, out[i].first);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, AltOptionsTest, ::testing::Range(0, 7));

// Error-bound / model-count relation (Eq. 1): bigger epsilon, fewer models.
TEST_F(AltIndexTest, ModelCountInverseToErrorBound) {
  auto pairs = MakePairs(GenerateKeys(Dataset::kLonglat, 60000, 3));
  size_t prev = ~size_t{0};
  for (double eps : {16.0, 64.0, 256.0, 1024.0}) {
    AltOptions o;
    o.error_bound = eps;
    AltIndex index(o);
    ASSERT_TRUE(index.BulkLoad(pairs).ok());
    const size_t models = index.CollectStats().num_models;
    EXPECT_LE(models, prev) << "eps=" << eps;
    prev = models;
  }
}

// ART share grows with epsilon (Eq. 3): bigger parallelograms, more conflicts.
TEST_F(AltIndexTest, ArtShareGrowsWithErrorBound) {
  auto pairs = MakePairs(GenerateKeys(Dataset::kOsm, 60000, 3));
  double prev_share = -1;
  std::vector<double> shares;
  for (double eps : {16.0, 256.0, 4096.0}) {
    AltOptions o;
    o.error_bound = eps;
    AltIndex index(o);
    ASSERT_TRUE(index.BulkLoad(pairs).ok());
    const auto st = index.CollectStats();
    shares.push_back(static_cast<double>(st.art_keys) /
                     static_cast<double>(pairs.size()));
  }
  EXPECT_LE(shares[0], shares[2] + 0.05)
      << "conflict share should not shrink as epsilon grows";
  (void)prev_share;
}

TEST_F(AltIndexTest, MemoryUsageIsPlausible) {
  AltIndex index;
  auto pairs = MakePairs(GenerateKeys(Dataset::kLibio, 50000, 3));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  const size_t bytes = index.MemoryUsage();
  // At least the raw data, at most ~100 bytes/key for this config.
  EXPECT_GT(bytes, pairs.size() * sizeof(Key));
  EXPECT_LT(bytes, pairs.size() * 120);
}

TEST_F(AltIndexTest, KeyZeroIsALegalKey) {
  AltIndex index;
  std::vector<std::pair<Key, Value>> pairs{{0, 111}, {5, 222}, {10, 333}};
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  Value v;
  ASSERT_TRUE(index.Lookup(0, &v));
  EXPECT_EQ(v, 111u);
  ASSERT_TRUE(index.Remove(0));
  EXPECT_FALSE(index.Lookup(0, &v));
  EXPECT_TRUE(index.Insert(0, 444));
  ASSERT_TRUE(index.Lookup(0, &v));
  EXPECT_EQ(v, 444u);
}


TEST_F(AltIndexTest, IteratorWalksEverything) {
  AltIndex index;
  auto keys = GenerateKeys(Dataset::kFb, 20000, 3);
  auto pairs = MakePairs(keys);
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  AltIndex::Iterator it(index);
  size_t i = 0;
  for (it.Seek(0); it.Valid(); it.Next(), ++i) {
    ASSERT_LT(i, keys.size());
    ASSERT_EQ(it.key(), keys[i]);
    ASSERT_EQ(it.value(), ValueFor(keys[i]));
  }
  EXPECT_EQ(i, keys.size());
}

TEST_F(AltIndexTest, IteratorSeekMidAndBounded) {
  AltIndex index;
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 3000; ++k) pairs.emplace_back(k * 5, k);
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  AltIndex::Iterator it(index);
  // Seek between keys lands on the next one.
  it.Seek(501);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 505u);
  // Bounded walk.
  size_t n = 0;
  for (it.Seek(1000); it.Valid() && it.key() <= 2000; it.Next()) ++n;
  EXPECT_EQ(n, 201u);  // 1000, 1005, ..., 2000
  // Seek past the end.
  it.Seek(3000 * 5);
  EXPECT_FALSE(it.Valid());
}

TEST_F(AltIndexTest, IteratorCrossesModelAndLayerBoundaries) {
  AltIndex index;
  auto keys = GenerateKeys(Dataset::kLonglat, 30000, 9);
  auto pairs = MakePairs(keys);
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  // Mutate: remove some, insert others, so both layers contribute.
  for (size_t i = 0; i < keys.size(); i += 9) index.Remove(keys[i]);
  AltIndex::Iterator it(index);
  Key prev = 0;
  size_t count = 0;
  for (it.Seek(0); it.Valid(); it.Next()) {
    if (count > 0) ASSERT_GT(it.key(), prev);
    prev = it.key();
    ++count;
  }
  EXPECT_EQ(count, index.Size());
}

class RadixUpperModelTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

// The radix-accelerated Locate must agree with pure binary search for every
// key, including after tail-model appends.
TEST_P(RadixUpperModelTest, FullLifecycleAcrossRadixWidths) {
  AltOptions o;
  o.upper_radix_bits = GetParam();
  o.retrain_trigger_ratio = 0.5;
  AltIndex index(o);
  auto keys = GenerateKeys(Dataset::kOsm, 25000, 3);
  std::vector<std::pair<Key, Value>> loaded, extra;
  for (size_t i = 0; i < keys.size(); ++i) {
    (i % 2 ? extra : loaded).emplace_back(keys[i], ValueFor(keys[i]));
  }
  ASSERT_TRUE(index.BulkLoad(loaded).ok());
  for (const auto& [k, v] : extra) ASSERT_TRUE(index.Insert(k, v));
  for (const auto& [k, v] : loaded) {
    Value got;
    ASSERT_TRUE(index.Lookup(k, &got)) << "radix=" << GetParam();
    EXPECT_EQ(got, v);
  }
  for (size_t i = 0; i < keys.size(); i += 5) ASSERT_TRUE(index.Remove(keys[i]));
  for (size_t i = 0; i < keys.size(); ++i) {
    Value got;
    EXPECT_EQ(index.Lookup(keys[i], &got), i % 5 != 0);
  }
  std::vector<std::pair<Key, Value>> out;
  index.Scan(keys[7], 100, &out);
  for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1].first, out[i].first);
}

INSTANTIATE_TEST_SUITE_P(Widths, RadixUpperModelTest, ::testing::Values(0, 6, 10, 14));

}  // namespace
}  // namespace alt
