file(REMOVE_RECURSE
  "CMakeFiles/gpl_model_test.dir/gpl_model_test.cc.o"
  "CMakeFiles/gpl_model_test.dir/gpl_model_test.cc.o.d"
  "gpl_model_test"
  "gpl_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
