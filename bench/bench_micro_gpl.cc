// google-benchmark micro-benchmarks for the segmentation algorithms: GPL
// (Alg. 1) vs ShrinkingCone (FITing-tree / FINEdex's LPA family). Both are
// O(n); GPL's cheaper per-point update (slope min/max vs two divisions)
// shows up in ns/key.
#include <benchmark/benchmark.h>

#include "core/gpl.h"
#include "datasets/dataset.h"

namespace {

using alt::Dataset;
using alt::GenerateKeys;
using alt::Key;

const std::vector<Key>& KeysFor(int dataset_idx) {
  static std::vector<Key> cache[4];
  auto ds = alt::PaperDatasets()[static_cast<size_t>(dataset_idx)];
  auto& keys = cache[dataset_idx];
  if (keys.empty()) keys = GenerateKeys(ds, 200000, 11);
  return keys;
}

void BM_GplSegment(benchmark::State& state) {
  const auto& keys = KeysFor(static_cast<int>(state.range(0)));
  const double eps = static_cast<double>(state.range(1));
  size_t models = 0;
  for (auto _ : state) {
    auto segs = alt::GplSegment(keys.data(), keys.size(), eps);
    benchmark::DoNotOptimize(segs);
    models = segs.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * keys.size()));
  state.counters["models"] = static_cast<double>(models);
}

void BM_ShrinkingCone(benchmark::State& state) {
  const auto& keys = KeysFor(static_cast<int>(state.range(0)));
  const double eps = static_cast<double>(state.range(1));
  size_t models = 0;
  for (auto _ : state) {
    auto segs = alt::ShrinkingConeSegment(keys.data(), keys.size(), eps);
    benchmark::DoNotOptimize(segs);
    models = segs.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * keys.size()));
  state.counters["models"] = static_cast<double>(models);
}

}  // namespace

BENCHMARK(BM_GplSegment)
    ->ArgsProduct({{0, 1, 2, 3}, {32, 256}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShrinkingCone)
    ->ArgsProduct({{0, 1, 2, 3}, {32, 256}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
