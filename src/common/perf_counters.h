#pragma once

#include <cstdint>
#include <string>

namespace alt {
namespace perf {

/// \brief Per-thread micro-architectural counter group (DESIGN.md §10): the
/// measurement side of the SIMD hot-path pass, reporting *why* a path is fast
/// (cycles, LLC misses, branch mispredictions per lookup) instead of only
/// ops/sec.
///
/// Backed by perf_event_open with a three-tier fallback so the harness runs
/// everywhere and never silently reports zeros:
///  - kHardware: cycles + instructions + LLC(cache)-misses + branch-misses in
///    one scheduled group (read with PERF_FORMAT_GROUP, multiplexing-scaled
///    via time_enabled/time_running);
///  - kSoftware: hardware PMU unavailable (most containers/VMs) — task-clock
///    and page-faults still work and TSC supplies a cycles-per-op estimate;
///  - kUnavailable: perf_event_open rejected entirely (seccomp); only the TSC
///    cycle estimate is reported, with the open error preserved for display.
///
/// Usage (one instance per worker thread; not thread-safe):
///   ThreadCounters tc;            // opens fds, picks the tier
///   tc.Start();                   // reset + enable + TSC start
///   ... measured section ...
///   Reading r = tc.Stop();        // disable + read + TSC delta
enum class Tier { kHardware, kSoftware, kUnavailable };

struct Reading {
  Tier tier = Tier::kUnavailable;
  /// Hardware tier only; 0 otherwise.
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
  /// Software tier (also filled on the hardware tier where available).
  uint64_t task_clock_ns = 0;
  uint64_t page_faults = 0;
  /// Always valid on x86-64: TSC delta across Start()..Stop(). Reference
  /// cycles, not core cycles — unaffected by turbo/throttling, which is why
  /// scripts/perf_env.sh pins the clocks for comparable numbers.
  uint64_t tsc_cycles = 0;
  /// Multiplexing correction applied to the hardware group
  /// (time_enabled / time_running); 1.0 when the group was always scheduled.
  double scale = 1.0;

  void Accumulate(const Reading& other);
};

class ThreadCounters {
 public:
  ThreadCounters();
  ~ThreadCounters();

  ThreadCounters(const ThreadCounters&) = delete;
  ThreadCounters& operator=(const ThreadCounters&) = delete;

  void Start();
  Reading Stop();

  Tier tier() const { return tier_; }
  /// strerror of the failed hardware open when tier() != kHardware.
  const std::string& error() const { return error_; }

 private:
  static constexpr int kMaxEvents = 4;
  Tier tier_ = Tier::kUnavailable;
  int group_fd_ = -1;
  int fds_[kMaxEvents] = {-1, -1, -1, -1};
  int num_events_ = 0;
  uint64_t tsc_start_ = 0;
  std::string error_;
};

/// Name of the active tier for run headers: "hardware", "software (<why>)",
/// "unavailable (<why>)". `error` is the Open error of a representative
/// ThreadCounters.
std::string TierName(Tier tier, const std::string& error);

}  // namespace perf
}  // namespace alt
