#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/debug_checks.h"
#include "common/key_codec.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"

namespace alt {
namespace art {

/// ART node kinds (Leis et al., ICDE'13): the four adaptive fanouts.
enum class NodeType : uint8_t { kNode4 = 0, kNode16 = 1, kNode48 = 2, kNode256 = 3 };

struct Node;

/// \brief Single-value leaf. Child pointers tag leaves by setting bit 0.
///
/// Keys are fixed 8 bytes, so a leaf can never be an internal prefix of another
/// key; the final equality check against `key` suffices for correctness.
struct Leaf {
  Key key;
  std::atomic<Value> value;

  Leaf(Key k, Value v) : key(k), value(v) {}
};

inline bool IsLeaf(const Node* p) { return (reinterpret_cast<uintptr_t>(p) & 1u) != 0; }
inline Leaf* ToLeaf(Node* p) {
  return reinterpret_cast<Leaf*>(reinterpret_cast<uintptr_t>(p) & ~uintptr_t{1});
}
inline const Leaf* ToLeaf(const Node* p) {
  return reinterpret_cast<const Leaf*>(reinterpret_cast<uintptr_t>(p) & ~uintptr_t{1});
}
inline Node* TagLeaf(Leaf* l) {
  return reinterpret_cast<Node*>(reinterpret_cast<uintptr_t>(l) | 1u);
}

/// \brief Common node header with the optimistic-lock-coupling version word
/// (Leis et al., DaMoN'16): bit 1 = write-locked, bit 0 = obsolete,
/// bits 63..2 = version counter. Writers CAS `v -> v + 0b10` to lock and
/// `fetch_add(0b10)` to unlock (which also bumps the counter).
///
/// All mutable fields readers may race on are atomics; optimistic readers use
/// relaxed/acquire loads and re-validate the version afterwards (seqlock
/// pattern), so torn intermediate states are never acted upon.
///
/// ART-OPT extensions (§III-C of the ALT-index paper):
///  - `match_level`: depth in key bytes already consumed when traversal reaches
///    this node; lets a fast-pointer jump resume mid-tree.
///  - `fp_slot`: index of the fast-pointer-buffer entry targeting this node
///    (-1 if none), so structure-modification callbacks are O(1).
///  - the compressed path is packed into one atomic word (`prefix_word`,
///    big-endian byte order) so prefix updates during splits are race-free.
///
/// Each node is a clang thread-safety capability: the exclusive side is the
/// version word's write lock. Acquisition happens only through the conditional
/// UpgradeToWriteLockOrRestart (invisible to the static analysis), so the OLC
/// write paths in art_tree.cc are ALT_OPTIMISTIC_PATH escapes; the unlock
/// protocol is still enforced dynamically under ALT_DEBUG_CHECKS
/// (unlock-without-lock, double-upgrade, read-while-write-held).
struct CAPABILITY("art node lock") Node {
  std::atomic<uint64_t> version{0};
  std::atomic<uint64_t> prefix_word{0};
  const NodeType type;
  std::atomic<uint8_t> prefix_len{0};
  std::atomic<uint8_t> match_level{0};
  std::atomic<uint16_t> num_children{0};
  std::atomic<int32_t> fp_slot{-1};

  explicit Node(NodeType t) : type(t) {}

  // ---- compressed path helpers -------------------------------------------

  /// Byte `i` (0-based) of the compressed path.
  static uint8_t PrefixByte(uint64_t word, int i) {
    return static_cast<uint8_t>(word >> (8 * (kKeyBytes - 1 - i)));
  }

  /// Store a compressed path taken from `key`'s bytes [from, from+len).
  void SetPrefix(Key key, int from, int len) {
    uint64_t w = (len <= 0) ? 0 : (key << (8 * from));
    prefix_word.store(w, std::memory_order_relaxed);
    prefix_len.store(static_cast<uint8_t>(len), std::memory_order_relaxed);
  }

  /// Drop the first `n` bytes of the compressed path (prefix split).
  void ChopPrefix(int n) {
    uint64_t w = prefix_word.load(std::memory_order_relaxed);
    prefix_word.store(w << (8 * n), std::memory_order_relaxed);
    prefix_len.store(static_cast<uint8_t>(prefix_len.load(std::memory_order_relaxed) - n),
                     std::memory_order_relaxed);
  }

  // ---- optimistic lock coupling -------------------------------------------

  /// Construct-time lock: a freshly allocated node is created write-locked so
  /// it cannot be modified between publication and the creator's unlock. Not
  /// an ACQUIRE for the static analysis — the creator is always inside an
  /// ALT_OPTIMISTIC_PATH write path that releases it.
  void InitLocked() {
    version.store(2u, std::memory_order_relaxed);
    ALT_DEBUG_NOTE_ACQUIRED(this, "art-node");
  }

  static bool IsLocked(uint64_t v) { return (v & 2u) != 0; }
  static bool IsObsolete(uint64_t v) { return (v & 1u) != 0; }

  /// Spin until unlocked; \return version, or set *need_restart on obsolete.
  uint64_t ReadLockOrRestart(bool* need_restart) const {
    // A thread that write-holds this node would spin forever here.
    ALT_DEBUG_CHECK(!::alt::debug::LockHeldByThisThread(this), "art-node",
                    "ReadLockOrRestart while this thread write-holds the node",
                    this);
    uint64_t v = version.load(std::memory_order_acquire);
    while (IsLocked(v)) {
      CpuRelax();
      v = version.load(std::memory_order_acquire);
    }
    if (IsObsolete(v)) *need_restart = true;
    return v;
  }

  /// Validate that nothing changed since `v` was read. The acquire fence keeps
  /// the preceding data loads from being ordered after the version re-read.
  void CheckOrRestart(uint64_t v, bool* need_restart) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    if (version.load(std::memory_order_relaxed) != v) *need_restart = true;
  }

  /// Try to atomically upgrade the optimistic read at `v` to a write lock.
  /// Out-parameter acquisition is invisible to the static analysis; callers
  /// are ALT_OPTIMISTIC_PATH.
  void UpgradeToWriteLockOrRestart(uint64_t& v, bool* need_restart) {
    if (!version.compare_exchange_strong(v, v + 2, std::memory_order_acquire)) {
      *need_restart = true;
    } else {
      v += 2;
      ALT_DEBUG_NOTE_ACQUIRED(this, "art-node");
    }
  }

  void WriteUnlock() RELEASE() {
    ALT_DEBUG_NOTE_RELEASED(this, "art-node");
    ALT_DEBUG_CHECK(IsLocked(version.load(std::memory_order_relaxed)), "art-node",
                    "WriteUnlock of a node that is not write-locked", this);
    version.fetch_add(2, std::memory_order_release);
  }

  /// Unlock and mark obsolete in one step; readers holding old versions will
  /// restart, and the memory is reclaimed via the epoch manager.
  void WriteUnlockObsolete() RELEASE() {
    ALT_DEBUG_NOTE_RELEASED(this, "art-node");
    ALT_DEBUG_CHECK(IsLocked(version.load(std::memory_order_relaxed)), "art-node",
                    "WriteUnlockObsolete of a node that is not write-locked", this);
    version.fetch_add(3, std::memory_order_release);
  }
};

/// Fanout-4 node: parallel sorted key/child arrays.
struct Node4 : Node {
  std::atomic<uint8_t> keys[4];
  std::atomic<Node*> children[4];

  Node4() : Node(NodeType::kNode4) {
    for (auto& k : keys) k.store(0, std::memory_order_relaxed);
    for (auto& c : children) c.store(nullptr, std::memory_order_relaxed);
  }
};

/// Fanout-16 node: parallel sorted key/child arrays.
struct Node16 : Node {
  std::atomic<uint8_t> keys[16];
  std::atomic<Node*> children[16];

  Node16() : Node(NodeType::kNode16) {
    for (auto& k : keys) k.store(0, std::memory_order_relaxed);
    for (auto& c : children) c.store(nullptr, std::memory_order_relaxed);
  }
};

/// Fanout-48 node: 256-entry byte -> child-slot indirection (0xFF = empty).
struct Node48 : Node {
  static constexpr uint8_t kEmpty = 0xFF;
  std::atomic<uint8_t> child_index[256];
  std::atomic<Node*> children[48];

  Node48() : Node(NodeType::kNode48) {
    for (auto& i : child_index) i.store(kEmpty, std::memory_order_relaxed);
    for (auto& c : children) c.store(nullptr, std::memory_order_relaxed);
  }
};

/// Fanout-256 node: direct byte-indexed child array.
struct Node256 : Node {
  std::atomic<Node*> children[256];

  Node256() : Node(NodeType::kNode256) {
    for (auto& c : children) c.store(nullptr, std::memory_order_relaxed);
  }
};

/// Size in bytes of a node of the given type (for memory accounting).
inline size_t NodeBytes(NodeType t) {
  switch (t) {
    case NodeType::kNode4: return sizeof(Node4);
    case NodeType::kNode16: return sizeof(Node16);
    case NodeType::kNode48: return sizeof(Node48);
    case NodeType::kNode256: return sizeof(Node256);
  }
  return 0;
}

}  // namespace art
}  // namespace alt
