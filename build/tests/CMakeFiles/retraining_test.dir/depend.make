# Empty dependencies file for retraining_test.
# This may be replaced when dependencies are built.
