/// \file
/// \brief alt_loadgen: closed/open-loop load generator for alt_server.
///
/// Drives the wire protocol (docs/PROTOCOL.md) against a live server and
/// prints one JSON result line: latency percentiles (p50/p99/p999), achieved
/// throughput, failure counts, and the server's own STATS document. GETs draw
/// from the keyset the server preloaded, so every failed op is a real
/// correctness failure — see docs/OPERATIONS.md for the keyset contract.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/loadgen.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "Usage: %s [options]\n"
      "  --host H          server IPv4 literal (default 127.0.0.1)\n"
      "  --port N          server port (default 9117)\n"
      "  --threads N       generator threads (default 2)\n"
      "  --conns N         connections per thread (default 4)\n"
      "  --ops N           total operations (default 100000)\n"
      "  --open_loop       fixed-arrival-rate mode (default: closed loop)\n"
      "  --rate R          aggregate ops/sec target (open loop; default 50000)\n"
      "  --pipeline N      in-flight ops per connection (closed loop; default 8)\n"
      "  --put_pct P       percent PUTs (default 5)\n"
      "  --del_pct P       percent DELs (default 0)\n"
      "  --scan_pct P      percent SCANs (default 5; remainder = GETs)\n"
      "  --scan_count N    keys per SCAN (default 20)\n"
      "  --dataset D       server's preload dataset (default fb)\n"
      "  --keys N          server's preload keyset size (default 200000)\n"
      "  --seed N          server's preload seed (default 99)\n"
      "  --no_verify       skip GET value verification\n",
      argv0);
}

uint64_t ParseU64(const char* s, const char* flag) {
  char* end = nullptr;
  const uint64_t v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "alt_loadgen: bad value for %s: '%s'\n", flag, s);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  alt::server::LoadgenOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "alt_loadgen: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--host") {
      opt.host = next("--host");
    } else if (a == "--port") {
      opt.port = static_cast<uint16_t>(ParseU64(next("--port"), "--port"));
    } else if (a == "--threads") {
      opt.threads = static_cast<int>(ParseU64(next("--threads"), "--threads"));
    } else if (a == "--conns") {
      opt.connections_per_thread =
          static_cast<int>(ParseU64(next("--conns"), "--conns"));
    } else if (a == "--ops") {
      opt.ops = ParseU64(next("--ops"), "--ops");
    } else if (a == "--open_loop") {
      opt.open_loop = true;
    } else if (a == "--rate") {
      opt.rate_ops_per_sec = std::atof(next("--rate"));
    } else if (a == "--pipeline") {
      opt.pipeline = static_cast<int>(ParseU64(next("--pipeline"), "--pipeline"));
    } else if (a == "--put_pct") {
      opt.put_pct = static_cast<unsigned>(ParseU64(next("--put_pct"), "--put_pct"));
    } else if (a == "--del_pct") {
      opt.del_pct = static_cast<unsigned>(ParseU64(next("--del_pct"), "--del_pct"));
    } else if (a == "--scan_pct") {
      opt.scan_pct =
          static_cast<unsigned>(ParseU64(next("--scan_pct"), "--scan_pct"));
    } else if (a == "--scan_count") {
      opt.scan_count =
          static_cast<uint32_t>(ParseU64(next("--scan_count"), "--scan_count"));
    } else if (a == "--dataset") {
      alt::Status s = alt::ParseDataset(next("--dataset"), &opt.dataset);
      if (!s.ok()) {
        std::fprintf(stderr, "alt_loadgen: %s\n", s.ToString().c_str());
        return 2;
      }
    } else if (a == "--keys") {
      opt.keyspace = ParseU64(next("--keys"), "--keys");
    } else if (a == "--seed") {
      opt.seed = ParseU64(next("--seed"), "--seed");
    } else if (a == "--no_verify") {
      opt.verify_values = false;
    } else if (a == "--help" || a == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "alt_loadgen: unknown flag '%s'\n", a.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (opt.put_pct + opt.del_pct + opt.scan_pct > 100) {
    std::fprintf(stderr, "alt_loadgen: op mix exceeds 100%%\n");
    return 2;
  }

  const alt::server::LoadgenResult result = alt::server::RunLoadgen(opt);
  std::printf("%s\n", alt::server::LoadgenResultJson(opt, result).c_str());
  if (!result.ok) {
    std::fprintf(stderr, "alt_loadgen: %s\n", result.error.c_str());
    return 1;
  }
  return result.failed_ops == 0 ? 0 : 1;
}
