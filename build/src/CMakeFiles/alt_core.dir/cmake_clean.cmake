file(REMOVE_RECURSE
  "CMakeFiles/alt_core.dir/core/alt_index.cc.o"
  "CMakeFiles/alt_core.dir/core/alt_index.cc.o.d"
  "CMakeFiles/alt_core.dir/core/fast_pointer_buffer.cc.o"
  "CMakeFiles/alt_core.dir/core/fast_pointer_buffer.cc.o.d"
  "CMakeFiles/alt_core.dir/core/gpl.cc.o"
  "CMakeFiles/alt_core.dir/core/gpl.cc.o.d"
  "CMakeFiles/alt_core.dir/core/gpl_model.cc.o"
  "CMakeFiles/alt_core.dir/core/gpl_model.cc.o.d"
  "CMakeFiles/alt_core.dir/core/model_directory.cc.o"
  "CMakeFiles/alt_core.dir/core/model_directory.cc.o.d"
  "libalt_core.a"
  "libalt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
