// Reproduces Fig. 8(d): read throughput as the initialization (bulk-load)
// ratio grows. Competitors slow down as more data means more models to
// locate; ALT-index's GPL keeps the model count bounded so its curve is
// flatter.
#include "bench_common.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  cfg.datasets = {Dataset::kOsm};  // the paper's Fig. 8(d) dataset
  const auto keys = LoadKeys(cfg, Dataset::kOsm);
  PrintHeader("Fig. 8(d): read-only throughput vs init ratio (osm, Mops/s)",
              {"InitRatio", "ALT", "ALEX+", "LIPP+", "FINEdex", "XIndex", "ART"});
  for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    BenchConfig c = cfg;
    c.bulk_fraction = ratio;
    std::vector<std::string> row{Fmt(ratio, 1)};
    for (const char* name : {"alt", "alex", "lipp", "finedex", "xindex", "art"}) {
      const RunResult r = RunOne(c, name, keys, WorkloadType::kReadOnly);
      row.push_back(Fmt(r.throughput_mops));
    }
    PrintRow(row);
  }
  return 0;
}
