#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "baselines/factory.h"
#include "common/epoch.h"
#include "common/metrics.h"
#include "datasets/dataset.h"
#include "datasets/sosd_loader.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace alt {
namespace {

// ---------------------------------------------------------------------------
// Dataset generators
// ---------------------------------------------------------------------------

class DatasetTest : public ::testing::TestWithParam<Dataset> {};

TEST_P(DatasetTest, SortedUniqueExactCount) {
  const auto keys = GenerateKeys(GetParam(), 50000, 5);
  ASSERT_EQ(keys.size(), 50000u);
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]) << DatasetName(GetParam()) << " at " << i;
  }
}

TEST_P(DatasetTest, DeterministicForSeed) {
  const auto a = GenerateKeys(GetParam(), 5000, 9);
  const auto b = GenerateKeys(GetParam(), 5000, 9);
  EXPECT_EQ(a, b);
  const auto c = GenerateKeys(GetParam(), 5000, 10);
  if (GetParam() != Dataset::kSequential) EXPECT_NE(a, c);
}

INSTANTIATE_TEST_SUITE_P(
    All, DatasetTest,
    ::testing::Values(Dataset::kLibio, Dataset::kOsm, Dataset::kFb,
                      Dataset::kLonglat, Dataset::kUniform, Dataset::kLognormal,
                      Dataset::kSequential),
    [](const auto& info) { return DatasetName(info.param); });

TEST(DatasetTest, ParseRoundTrips) {
  for (const char* name :
       {"libio", "osm", "fb", "longlat", "uniform", "lognormal", "sequential"}) {
    Dataset d;
    ASSERT_TRUE(ParseDataset(name, &d).ok()) << name;
    EXPECT_STREQ(DatasetName(d), name);
  }
  Dataset d;
  EXPECT_FALSE(ParseDataset("nope", &d).ok());
}

// ---------------------------------------------------------------------------
// SOSD loader
// ---------------------------------------------------------------------------

TEST(SosdLoaderTest, RoundTrip) {
  const auto keys = GenerateKeys(Dataset::kOsm, 10000, 3);
  const std::string path = ::testing::TempDir() + "/sosd_roundtrip.bin";
  ASSERT_TRUE(WriteSosdFile(path, keys).ok());
  std::vector<Key> loaded;
  ASSERT_TRUE(LoadSosdFile(path, 0, &loaded).ok());
  EXPECT_EQ(loaded, keys);
  // Limited read.
  ASSERT_TRUE(LoadSosdFile(path, 100, &loaded).ok());
  EXPECT_EQ(loaded.size(), 100u);
  std::remove(path.c_str());
}

TEST(SosdLoaderTest, MissingFileFails) {
  std::vector<Key> out;
  EXPECT_EQ(LoadSosdFile("/no/such/file.bin", 0, &out).code(),
            Status::Code::kIOError);
}

// ---------------------------------------------------------------------------
// Workload generation
// ---------------------------------------------------------------------------

TEST(WorkloadTest, ParseRoundTrips) {
  for (const char* name :
       {"read-only", "read-heavy", "balanced", "write-heavy", "write-only", "scan"}) {
    WorkloadType w;
    ASSERT_TRUE(ParseWorkload(name, &w).ok()) << name;
    EXPECT_STREQ(WorkloadName(w), name);
  }
  WorkloadType w;
  ASSERT_TRUE(ParseWorkload("rwb", &w).ok());
  EXPECT_EQ(w, WorkloadType::kBalanced);
}

TEST(WorkloadTest, MixRatiosApproximatelyHonored) {
  const auto loaded = GenerateKeys(Dataset::kUniform, 10000, 3);
  const auto pool = GenerateKeys(Dataset::kLognormal, 40000, 4);
  for (auto [type, expect_pct] :
       std::vector<std::pair<WorkloadType, int>>{{WorkloadType::kReadOnly, 0},
                                                 {WorkloadType::kReadHeavy, 20},
                                                 {WorkloadType::kBalanced, 50},
                                                 {WorkloadType::kWriteHeavy, 80},
                                                 {WorkloadType::kWriteOnly, 100}}) {
    WorkloadOptions opts;
    opts.type = type;
    opts.ops_per_thread = 20000;
    auto streams = GenerateOpStreams(loaded, pool, 2, opts);
    ASSERT_EQ(streams.size(), 2u);
    size_t inserts = 0, total = 0;
    for (const auto& s : streams) {
      for (const auto& op : s) {
        total++;
        if (op.type == OpType::kInsert) inserts++;
      }
    }
    const double pct = 100.0 * static_cast<double>(inserts) / static_cast<double>(total);
    EXPECT_NEAR(pct, expect_pct, 2.0) << WorkloadName(type);
  }
}

TEST(WorkloadTest, InsertKeysAreDisjointAcrossThreads) {
  const auto loaded = GenerateKeys(Dataset::kUniform, 1000, 3);
  const auto pool = GenerateKeys(Dataset::kUniform, 40000, 77);
  WorkloadOptions opts;
  opts.type = WorkloadType::kWriteOnly;
  opts.ops_per_thread = 5000;
  auto streams = GenerateOpStreams(loaded, pool, 4, opts);
  std::set<Key> seen;
  for (const auto& s : streams) {
    std::set<Key> mine;
    for (const auto& op : s) mine.insert(op.key);
    for (Key k : mine) {
      EXPECT_TRUE(seen.insert(k).second) << "key shared across threads";
    }
  }
}

TEST(WorkloadTest, ScanWorkloadEmitsScans) {
  const auto loaded = GenerateKeys(Dataset::kUniform, 1000, 3);
  WorkloadOptions opts;
  opts.type = WorkloadType::kScan;
  opts.ops_per_thread = 100;
  auto streams = GenerateOpStreams(loaded, {}, 1, opts);
  for (const auto& op : streams[0]) EXPECT_EQ(op.type, OpType::kScan);
}

TEST(WorkloadTest, SequentialInsertsAreSequential) {
  const auto loaded = GenerateKeys(Dataset::kUniform, 1000, 3);
  const auto pool = GenerateKeys(Dataset::kSequential, 10000, 3);
  WorkloadOptions opts;
  opts.type = WorkloadType::kWriteOnly;
  opts.ops_per_thread = 1000;
  opts.sequential_inserts = true;
  auto streams = GenerateOpStreams(loaded, pool, 1, opts);
  for (size_t i = 1; i < streams[0].size(); ++i) {
    EXPECT_GT(streams[0][i].key, streams[0][i - 1].key);
  }
}

// ---------------------------------------------------------------------------
// SplitDataset + runner end-to-end
// ---------------------------------------------------------------------------

TEST(RunnerTest, SplitDatasetPreservesAllKeysDisjointly) {
  const auto keys = GenerateKeys(Dataset::kOsm, 10000, 3);
  const auto setup = SplitDataset(keys, 0.5);
  EXPECT_EQ(setup.loaded.size() + setup.pool.size(), keys.size());
  EXPECT_NEAR(static_cast<double>(setup.loaded.size()) / keys.size(), 0.5, 0.05);
  std::set<Key> all(setup.loaded.begin(), setup.loaded.end());
  for (Key k : setup.pool) EXPECT_TRUE(all.insert(k).second);
}

TEST(RunnerTest, SplitDatasetHandlesEmptyInput) {
  // Regression: an empty dataset used to dereference keys.front().
  const auto setup = SplitDataset({}, 0.5);
  EXPECT_TRUE(setup.loaded.empty());
  EXPECT_TRUE(setup.pool.empty());
}

TEST(RunnerTest, SplitDatasetTinyBulkFractionStillLoadsSomething) {
  const auto keys = GenerateKeys(Dataset::kUniform, 1000, 3);
  const auto setup = SplitDataset(keys, 0.0);
  EXPECT_FALSE(setup.loaded.empty());
  EXPECT_EQ(setup.loaded.size() + setup.pool.size(), keys.size());
}

TEST(RunnerTest, EndToEndBalancedRunProducesSaneNumbers) {
  auto index = MakeIndex("alt");
  const auto keys = GenerateKeys(Dataset::kLibio, 40000, 3);
  const auto setup = SplitDataset(keys, 0.5);
  std::vector<Value> vals(setup.loaded.size());
  for (size_t i = 0; i < setup.loaded.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
  ASSERT_TRUE(
      index->BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size()).ok());
  WorkloadOptions opts;
  opts.type = WorkloadType::kBalanced;
  opts.ops_per_thread = 20000;
  auto streams = GenerateOpStreams(setup.loaded, setup.pool, 2, opts);
  const RunResult r = RunWorkload(index.get(), streams);
  EXPECT_EQ(r.total_ops, 40000u);
  EXPECT_GT(r.throughput_mops, 0.0);
  EXPECT_GT(r.p999_ns, 0u);
  EXPECT_GE(r.p999_ns, r.p50_ns);
  // Reads draw from loaded keys and inserts are fresh; only the tail of the
  // insert pool may repeat once a thread's shard is exhausted (<1% here).
  EXPECT_LE(r.failed_ops, r.total_ops / 100);
  EpochManager::Global().DrainAll();
}

TEST(RunnerTest, ReadOnlyRunHasNoFailures) {
  auto index = MakeIndex("art");
  const auto keys = GenerateKeys(Dataset::kOsm, 20000, 3);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index->BulkLoad(keys.data(), vals.data(), keys.size()).ok());
  WorkloadOptions opts;
  opts.type = WorkloadType::kReadOnly;
  opts.ops_per_thread = 10000;
  auto streams = GenerateOpStreams(keys, {}, 2, opts);
  const RunResult r = RunWorkload(index.get(), streams);
  EXPECT_EQ(r.failed_ops, 0u);
  EpochManager::Global().DrainAll();
}

TEST(RunnerTest, ScanPastEndOfKeyspaceIsNotAFailure) {
  // Regression: a scan starting beyond the last key legitimately returns 0
  // results; the runner used to count it as a failed op.
  auto index = MakeIndex("alt");
  std::vector<Key> keys;
  for (Key k = 0; k < 1000; ++k) keys.push_back(k * 2);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index->BulkLoad(keys.data(), vals.data(), keys.size()).ok());
  std::vector<std::vector<Op>> streams(1);
  const Key beyond = keys.back() + 1;
  for (int i = 0; i < 64; ++i) streams[0].push_back({OpType::kScan, beyond});
  for (int i = 0; i < 64; ++i) streams[0].push_back({OpType::kScan, 0});
  const RunResult r = RunWorkload(index.get(), streams);
  EXPECT_EQ(r.failed_ops, 0u);
  EXPECT_EQ(r.empty_scans, 64u);
  EpochManager::Global().DrainAll();
}

// Minimal structural JSON check: balanced braces/brackets outside strings,
// no trailing garbage. Catches malformed exporter output without a parser.
bool LooksLikeJsonObject(const std::string& s) {
  if (s.empty() || s.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
      if (depth == 0 && i + 1 != s.size()) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(RunnerTest, MetricsJsonEmitsParseableFinalLine) {
  auto index = MakeIndex("alt");
  const auto keys = GenerateKeys(Dataset::kLibio, 20000, 3);
  const auto setup = SplitDataset(keys, 0.5);
  std::vector<Value> vals(setup.loaded.size());
  for (size_t i = 0; i < setup.loaded.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
  ASSERT_TRUE(
      index->BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size()).ok());
  WorkloadOptions opts;
  opts.type = WorkloadType::kBalanced;
  opts.ops_per_thread = 10000;
  auto streams = GenerateOpStreams(setup.loaded, setup.pool, 2, opts);

  const std::string path = ::testing::TempDir() + "/runner_metrics.jsonl";
  std::remove(path.c_str());
  RunOptions run_opts;
  run_opts.metrics_json = path;
  run_opts.metrics_label = "alt/balanced/2t";
  const RunResult r = RunWorkload(index.get(), streams, run_opts);
  EXPECT_GT(r.total_ops, 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u) << "one final line, no interval sampler";
  const std::string& line = lines[0];
  EXPECT_TRUE(LooksLikeJsonObject(line)) << line;
  EXPECT_NE(line.find("\"label\":\"alt/balanced/2t\""), std::string::npos);
  EXPECT_NE(line.find("\"phase\":\"final\""), std::string::npos);
  // The issue's minimum payload: learned hits, ART lookups, conflict inserts,
  // fast-pointer hits, retrain counters (events carry the durations).
  for (const char* field :
       {"\"learned_hits\":", "\"art_lookups\":", "\"conflict_inserts\":",
        "\"fast_pointer_hits\":", "\"retrain_started\":", "\"retrain_finished\":",
        "\"events\":", "\"throughput_mops\":", "\"empty_scans\":"}) {
    EXPECT_NE(line.find(field), std::string::npos) << field;
  }
#if !defined(ALT_METRICS_DISABLED)
  // A balanced run over a fresh index must actually touch the learned layer.
  EXPECT_EQ(line.find("\"learned_hits\":0,"), std::string::npos)
      << "learned-hit counter stayed zero across a balanced run";
#endif
  std::remove(path.c_str());
  EpochManager::Global().DrainAll();
}

TEST(RunnerTest, MetricsJsonIntervalSamplerAppendsLines) {
  auto index = MakeIndex("alt");
  const auto keys = GenerateKeys(Dataset::kUniform, 30000, 7);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index->BulkLoad(keys.data(), vals.data(), keys.size()).ok());
  WorkloadOptions opts;
  opts.type = WorkloadType::kReadOnly;
  opts.ops_per_thread = 400000;  // long enough to cross a few 5ms intervals
  auto streams = GenerateOpStreams(keys, {}, 2, opts);

  const std::string path = ::testing::TempDir() + "/runner_metrics_interval.jsonl";
  std::remove(path.c_str());
  RunOptions run_opts;
  run_opts.metrics_json = path;
  run_opts.metrics_interval_seconds = 0.005;
  run_opts.metrics_label = "interval-test";
  RunWorkload(index.get(), streams, run_opts);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  size_t total = 0, finals = 0;
  for (std::string line; std::getline(in, line);) {
    ++total;
    EXPECT_TRUE(LooksLikeJsonObject(line)) << line;
    if (line.find("\"phase\":\"final\"") != std::string::npos) ++finals;
  }
  EXPECT_EQ(finals, 1u);
  EXPECT_GE(total, 1u);  // interval count is timing-dependent; final is not
  std::remove(path.c_str());
  EpochManager::Global().DrainAll();
}

}  // namespace
}  // namespace alt
