// alt-raw-lock clean fixture: locking through capability wrappers and RAII
// guards only (stand-ins for alt::SpinLock / alt::SpinLockGuard).
struct SpinLock {
  void Acquire();
  void Release();
};

struct SpinLockGuard {
  explicit SpinLockGuard(SpinLock& l);
  ~SpinLockGuard();
};

struct State {
  SpinLock mu;
  int x = 0;

  void Bump() {
    SpinLockGuard g(mu);
    ++x;
  }
};
