#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/epoch.h"

namespace alt {
namespace {

std::atomic<int> g_deleted{0};

struct Tracked {
  int payload = 7;
};

void DeleteTracked(void* p) {
  delete static_cast<Tracked*>(p);
  g_deleted.fetch_add(1);
}

TEST(EpochTest, GuardNests) {
  EpochGuard outer;
  {
    EpochGuard inner;
    EpochGuard inner2;
  }
  // Reaching here without deadlock/assert is the test.
  SUCCEED();
}

TEST(EpochTest, DrainAllReclaimsEverything) {
  g_deleted.store(0);
  for (int i = 0; i < 100; ++i) {
    EpochManager::Global().Retire(new Tracked(), DeleteTracked);
  }
  EpochManager::Global().DrainAll();
  EXPECT_EQ(g_deleted.load(), 100);
  EXPECT_EQ(EpochManager::Global().PendingCount(), 0u);
}

TEST(EpochTest, RetireEventuallyReclaimsWithoutReaders) {
  g_deleted.store(0);
  // Retire enough items to cross several advance intervals.
  for (int i = 0; i < 1000; ++i) {
    EpochManager::Global().Retire(new Tracked(), DeleteTracked);
  }
  EXPECT_GT(g_deleted.load(), 0) << "advance intervals should have freed some";
  EpochManager::Global().DrainAll();
  EXPECT_EQ(g_deleted.load(), 1000);
}

TEST(EpochTest, ActiveReaderBlocksReclamation) {
  g_deleted.store(0);
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};

  std::thread reader([&] {
    EpochGuard g;
    reader_in.store(true);
    while (!release_reader.load()) std::this_thread::yield();
  });
  while (!reader_in.load()) std::this_thread::yield();

  // Retire from this thread while the reader pins an older epoch. Items
  // retired at epochs >= the reader's pin must survive.
  Tracked* witness = new Tracked();
  EpochManager::Global().Retire(witness, DeleteTracked);
  for (int i = 0; i < 500; ++i) {
    EpochManager::Global().Retire(new Tracked(), DeleteTracked);
  }
  EXPECT_EQ(witness->payload, 7) << "witness must not be freed under the reader";

  release_reader.store(true);
  reader.join();
  EpochManager::Global().DrainAll();
  EXPECT_EQ(g_deleted.load(), 501);
}

TEST(EpochTest, GlobalEpochAdvances) {
  const uint64_t before = EpochManager::Global().GlobalEpoch();
  for (int i = 0; i < 200; ++i) {
    EpochManager::Global().Retire(new Tracked(), DeleteTracked);
  }
  EXPECT_GT(EpochManager::Global().GlobalEpoch(), before);
  EpochManager::Global().DrainAll();
}

TEST(EpochTest, ManyThreadsRetireConcurrently) {
  g_deleted.store(0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        EpochGuard g;
        EpochManager::Global().Retire(new Tracked(), DeleteTracked);
      }
    });
  }
  for (auto& th : threads) th.join();
  EpochManager::Global().DrainAll();
  EXPECT_EQ(g_deleted.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace alt
