#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/index_interface.h"
#include "workload/workload.h"

namespace alt {

/// Aggregated result of one timed run.
struct RunResult {
  double throughput_mops = 0;  ///< million operations per second
  double seconds = 0;
  uint64_t total_ops = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;  ///< the paper's P99.9 tail metric
  double mean_ns = 0;
  uint64_t failed_ops = 0;   ///< reads that missed / duplicate inserts
  uint64_t empty_scans = 0;  ///< scans past the last key (not failures)
};

/// Execution knobs for RunWorkload.
struct RunOptions {
  size_t scan_length = 100;
  /// Reads per LookupBatch call: each worker coalesces up to this many
  /// *consecutive* kRead ops and issues them through the index's batched read
  /// path. 1 (default) keeps the scalar Lookup path, so existing benchmark
  /// numbers stay comparable. A sampled batch records its mean per-op latency.
  size_t read_batch = 1;
  /// When non-empty, append one JSON line per emitted snapshot to this file:
  /// periodic "interval" deltas (if metrics_interval_seconds > 0) while the
  /// run executes, plus one "final" line with the run result and the metrics
  /// delta scoped to this run (see common/metrics.h).
  std::string metrics_json;
  /// Seconds between interval snapshots; 0 (default) emits only the final one.
  double metrics_interval_seconds = 0;
  /// Free-form run label copied into each JSON line (e.g. "ycsb-a/alt/16t").
  std::string metrics_label;
};

/// \brief Execute pre-generated per-thread op streams against `index` with
/// one thread per stream and return throughput + tail latency (sampled 1/16).
///
/// Threads start together behind a barrier; the wall clock covers the slowest
/// thread, matching how the paper reports Mops/s for T threads.
RunResult RunWorkload(ConcurrentIndex* index,
                      const std::vector<std::vector<Op>>& streams,
                      const RunOptions& options);
RunResult RunWorkload(ConcurrentIndex* index,
                      const std::vector<std::vector<Op>>& streams,
                      size_t scan_length = 100);

/// Convenience: bulk-load `index` with the first `bulk_fraction` of keys
/// (values = ValueFor(key)), generate streams over the rest, run, return.
struct BenchSetup {
  std::vector<Key> loaded;
  std::vector<Key> pool;
};

/// Split sorted dataset keys into bulk-load set (every key whose rank is
/// below bulk_fraction when interleaved) and insert pool. Interleaving (odd /
/// even ranks) keeps both sets distribution-representative, mirroring how
/// learned-index evaluations sample insert keys.
BenchSetup SplitDataset(const std::vector<Key>& keys, double bulk_fraction);

}  // namespace alt
