#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "art/art_node.h"
#include "common/key_codec.h"

namespace alt {

class EpochManager;

namespace art {

/// \brief Callbacks fired by ArtTree during structure modifications that affect
/// a node referenced by a fast-pointer-buffer entry (ALT-index §III-C3).
///
/// All callbacks run while the affected node's write lock is held, so the
/// buffer update is atomic with respect to the modification as required for the
/// invariant "entry i covers all keys of the GPL models mapped to it".
class ArtStructureListener {
 public:
  virtual ~ArtStructureListener() = default;

  /// Scenario ② — node expansion/shrink replaced `old_node` with `new_node`
  /// (same coverage, same depth). The entry must be swung to `new_node`.
  virtual void OnNodeReplaced(int32_t slot, Node* old_node, Node* new_node) = 0;

  /// Scenario ① — prefix extraction created `new_parent` directly above
  /// `node`; keys previously reaching `node` may now branch at `new_parent`,
  /// so the entry must be lifted to it.
  virtual void OnPrefixSplit(int32_t slot, Node* node, Node* new_parent) = 0;

  /// `node` was merged away on removal; `ancestor` still covers its range.
  virtual void OnNodeRemoved(int32_t slot, Node* node, Node* ancestor) = 0;
};

/// Outcome of hint-based (fast pointer) operations.
enum class HintOutcome {
  kFound,     ///< lookup: key found in the hinted subtree
  kNotFound,  ///< lookup: not in subtree (caller may fall back to root)
  kInserted,  ///< insert: success
  kExists,    ///< insert: key already present
  kNeedRoot,  ///< hint unusable (obsolete / SMO required at hint) — retry from root
};

/// Outcome of one DescentStep (incremental lookup) touch.
enum class StepResult : uint8_t {
  kFound,     ///< leaf matched; *out was set
  kNotFound,  ///< authoritative miss from this start node (see LookupFrom caveat)
  kStepped,   ///< descended one level; the next node line is being prefetched
  kRestart,   ///< version validation failed — re-DescentInit and retry
};

/// \brief Adaptive Radix Tree over fixed 8-byte keys with optimistic lock
/// coupling, path compression, ordered scans, and the ART-OPT hooks ALT-index
/// needs (`match_level`, fast-pointer callbacks, hint-based entry points).
///
/// Concurrency contract: every public operation may run concurrently from any
/// number of threads. Callers MUST hold an alt::EpochGuard on the tree's
/// epoch manager across each call (the tree retires replaced nodes through
/// the manager given at construction — the global one by default).
class ArtTree {
 public:
  /// \param epoch manager replaced nodes/leaves retire through; nullptr means
  ///        EpochManager::Global(). Must outlive the tree.
  explicit ArtTree(EpochManager* epoch = nullptr);
  ~ArtTree();

  ArtTree(const ArtTree&) = delete;
  ArtTree& operator=(const ArtTree&) = delete;

  /// Install the fast-pointer-buffer listener (nullptr to detach).
  void SetListener(ArtStructureListener* listener) { listener_ = listener; }

  /// \return true and set *out if `key` is present.
  /// \param steps if non-null, accumulates the number of nodes visited
  ///        (Fig. 10(a) "average lookup length").
  bool Lookup(Key key, Value* out, int* steps = nullptr) const;

  /// Lookup resuming at `hint` (depth = hint->match_level). The caller must
  /// have validated that `key` shares the hint entry's prefix.
  HintOutcome LookupFrom(Node* hint, Key key, Value* out,
                         int* steps = nullptr) const ALT_REQUIRES_EPOCH;

  /// \brief Resumable lookup cursor for the batched read path: one
  /// DescentStep call performs one tree level of work (prefix match + child
  /// dispatch under the node's optimistic version) and *prefetches* the next
  /// node before returning, so a group of in-flight descents can overlap
  /// their cache misses (AMAC-style software pipelining).
  ///
  /// Protocol:
  ///   DescentState ds;
  ///   if (!tree.DescentInit(start, &ds)) { /* start obsolete: pick new start */ }
  ///   for (;;) switch (tree.DescentStep(&ds, key, &val, &steps)) {
  ///     case StepResult::kStepped: /* touch other lookups, come back */ break;
  ///     case StepResult::kRestart: /* DescentInit again (bounded) */ break;
  ///     case ... kFound / kNotFound: done;
  ///   }
  ///
  /// The step sequence validates exactly what the recursive LookupImpl
  /// validates (same OLC read-lock coupling), so a kFound / kNotFound result
  /// is identical to what Lookup / LookupFrom starting at the same node could
  /// have returned. As with LookupFrom, a kNotFound from a hint start is not
  /// authoritative under concurrent SMOs — the caller falls back to the root.
  struct DescentState {
    Node* node = nullptr;     ///< current node, read under `version`
    uint64_t version = 0;     ///< optimistic read version of `node`
    Node* pending = nullptr;  ///< prefetched child (possibly tagged leaf) not yet entered
    int depth = 0;            ///< key bytes consumed on entry to `node`
  };

  /// Begin a descent at `start` (the root or a fast-pointer hint).
  /// \return false if `start` is obsolete (hint went stale) — pick a new start.
  bool DescentInit(Node* start, DescentState* s) const ALT_REQUIRES_EPOCH;

  /// Advance the descent by one node. On kStepped the next node's cache lines
  /// have been prefetched; process other keys before stepping again.
  /// \param steps if non-null, incremented once per node visited (same
  ///        accounting as Lookup's `steps`).
  StepResult DescentStep(DescentState* s, Key key, Value* out,
                         int* steps = nullptr) const ALT_REQUIRES_EPOCH;

  /// Insert; \return false if the key already exists (value left unchanged).
  bool Insert(Key key, Value value);

  /// Insert resuming at `hint`. Returns kNeedRoot when the required structure
  /// modification involves the hint node itself (its parent is unknown here).
  HintOutcome InsertFrom(Node* hint, Key key, Value value) ALT_REQUIRES_EPOCH;

  /// Overwrite the value of an existing key. \return false if absent.
  bool Update(Key key, Value value);

  /// Remove `key`; \return true if it was present. Shrinks/merges nodes.
  /// \param old_value if non-null, receives the removed value (needed by the
  ///        ALT-index write-back scheme, Alg. 2).
  bool Remove(Key key, Value* old_value = nullptr);

  /// Collect up to `max_items` pairs with key >= lo in ascending order.
  size_t Scan(Key lo, size_t max_items, std::vector<std::pair<Key, Value>>* out) const;

  /// Collect all pairs with lo <= key <= hi in ascending order.
  size_t RangeQuery(Key lo, Key hi, std::vector<std::pair<Key, Value>>* out) const;

  /// Deepest node whose subtree contains the whole range [lo, hi].
  /// Quiescent-only (used while building the fast pointer buffer).
  /// \param depth_out set to the node's match_level.
  Node* FindLcaNode(Key lo, Key hi, int* depth_out) const;

  /// Structural statistics (quiescent-only traversal).
  struct Stats {
    size_t n4 = 0, n16 = 0, n48 = 0, n256 = 0;
    size_t leaves = 0;
    size_t bytes = 0;
    size_t height = 0;
  };
  Stats CollectStats() const;

  /// \brief Extended structural census (quiescent-only traversal) for the
  /// flight-recorder introspection layer (DESIGN.md §9.3): memory by node
  /// type, leaf-depth distribution, and path-compression savings — the
  /// decomposition behind the Fig. 8a memory curve.
  struct Census {
    size_t nodes[4] = {};       ///< inner-node count, indexed by NodeType
    size_t node_bytes[4] = {};  ///< inner-node bytes, indexed by NodeType
    size_t leaves = 0;
    size_t leaf_bytes = 0;
    /// Leaves by root→leaf path length in *inner nodes* (index clamped to
    /// kKeyBytes). With path compression a leaf sits at most kKeyBytes deep.
    size_t depth_hist[kKeyBytes + 1] = {};
    size_t height = 0;            ///< max inner nodes on any root→leaf path
    size_t compressed_nodes = 0;  ///< inner nodes carrying a non-empty prefix
    /// Total compressed-prefix bytes. Each byte is one single-child level the
    /// tree did not materialize (≈ one Node4 of savings per byte).
    size_t prefix_bytes = 0;
    size_t total_bytes = 0;  ///< == CollectStats().bytes
  };
  Census CollectCensus() const;

  /// Total bytes of nodes + leaves (quiescent-only).
  size_t MemoryUsage() const { return CollectStats().bytes; }

  size_t Size() const { return size_.load(std::memory_order_relaxed); }
  bool Empty() const { return Size() == 0; }

  Node* root() const { return root_; }

 private:
  enum class OpResult { kDone, kRestart, kExists, kNotFound, kNeedRoot };

  OpResult LookupImpl(Node* start, Key key, Value* out, int* steps) const;
  // The two OLC write paths acquire node locks via conditional upgrades
  // (UpgradeToWriteLockOrRestart) that the static analysis cannot model —
  // documented ALT_OPTIMISTIC_PATH escapes; the lock protocol is enforced
  // dynamically under ALT_DEBUG_CHECKS and by the sanitizer CI matrix.
  OpResult InsertImpl(Node* start, Node* start_parent, uint8_t start_parent_byte,
                      Key key, Value value) ALT_OPTIMISTIC_PATH;
  // Same restart-validated OLC escape as InsertImpl above.
  OpResult RemoveImpl(Key key, Value* old_value) ALT_OPTIMISTIC_PATH;

  bool ScanCollect(const Node* node, Key acc, Key lo, Key hi, size_t max_items,
                   std::vector<std::pair<Key, Value>>* out, int* restarts) const;

  Node* root_;  // fixed Node256, never replaced, never obsolete
  EpochManager* epoch_;  // resolved at construction, never null
  ArtStructureListener* listener_ = nullptr;
  std::atomic<size_t> size_{0};
};

}  // namespace art
}  // namespace alt
