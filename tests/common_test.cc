#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/bitmap.h"
#include "common/key_codec.h"
#include "common/latency_recorder.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"
#include "common/version_lock.h"
#include "common/zipf.h"

namespace alt {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad keys");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad keys");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad keys");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<Status::Code> codes{
      Status::OK().code(),           Status::InvalidArgument("").code(),
      Status::NotFound("").code(),   Status::AlreadyExists("").code(),
      Status::OutOfRange("").code(), Status::IOError("").code(),
      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

// ---------------------------------------------------------------------------
// Key codec
// ---------------------------------------------------------------------------

TEST(KeyCodecTest, KeyByteBigEndian) {
  const Key k = 0x0102030405060708ULL;
  for (int i = 0; i < kKeyBytes; ++i) {
    EXPECT_EQ(KeyByte(k, i), i + 1);
  }
}

TEST(KeyCodecTest, ByteOrderAgreesWithIntegerOrder) {
  Rng rng(1);
  for (int t = 0; t < 1000; ++t) {
    const Key a = rng.Next(), b = rng.Next();
    // Lexicographic comparison of the byte decomposition.
    int cmp = 0;
    for (int i = 0; i < kKeyBytes && cmp == 0; ++i) {
      cmp = static_cast<int>(KeyByte(a, i)) - static_cast<int>(KeyByte(b, i));
    }
    EXPECT_EQ(cmp < 0, a < b);
    EXPECT_EQ(cmp > 0, a > b);
  }
}

TEST(KeyCodecTest, CommonPrefixBytes) {
  EXPECT_EQ(CommonPrefixBytes(0, 0), 8);
  EXPECT_EQ(CommonPrefixBytes(0x1122334455667788ULL, 0x1122334455667788ULL), 8);
  EXPECT_EQ(CommonPrefixBytes(0x1122334455667788ULL, 0x1122334455667789ULL), 7);
  EXPECT_EQ(CommonPrefixBytes(0x1122334455667788ULL, 0x2122334455667788ULL), 0);
  EXPECT_EQ(CommonPrefixBytes(0x1122334455667788ULL, 0x1122FF4455667788ULL), 2);
}

TEST(KeyCodecTest, KeyPrefixMasksLowBytes) {
  const Key k = 0x1122334455667788ULL;
  EXPECT_EQ(KeyPrefix(k, 0), 0u);
  EXPECT_EQ(KeyPrefix(k, 2), 0x1122000000000000ULL);
  EXPECT_EQ(KeyPrefix(k, 8), k);
  EXPECT_EQ(KeyPrefix(k, 99), k);
}

TEST(KeyCodecTest, KeyPrefixConsistentWithCommonPrefix) {
  Rng rng(7);
  for (int t = 0; t < 1000; ++t) {
    const Key a = rng.Next(), b = rng.Next();
    const int p = CommonPrefixBytes(a, b);
    EXPECT_EQ(KeyPrefix(a, p), KeyPrefix(b, p));
    if (p < kKeyBytes) EXPECT_NE(KeyPrefix(a, p + 1), KeyPrefix(b, p + 1));
  }
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000007ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, BoundedZeroIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(kBuckets)]++;
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

// ---------------------------------------------------------------------------
// Zipf
// ---------------------------------------------------------------------------

TEST(ZipfTest, RanksInRange) {
  Zipf z(1000, 0.99, 9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(), 1000u);
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  Zipf z(100000, 0.99, 9);
  int top10 = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) top10 += (z.Next() < 10);
  // theta=0.99 over 100k items: rank<10 gets a large share (paper's hotspots).
  EXPECT_GT(top10, kDraws / 10);
}

TEST(ZipfTest, HigherThetaMoreSkew) {
  auto top_share = [](double theta) {
    Zipf z(100000, theta, 17);
    int top = 0;
    for (int i = 0; i < 20000; ++i) top += (z.Next() < 100);
    return top;
  };
  EXPECT_LT(top_share(0.5), top_share(0.99));
  EXPECT_LT(top_share(0.99), top_share(1.3));
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  Zipf z(1000, 0.0, 21);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) counts[z.Next()]++;
  int hot = 0;
  for (int c : counts) hot = std::max(hot, c);
  EXPECT_LT(hot, 100 * 3);  // no rank gets 3x its fair share
}

TEST(ZipfTest, ScrambledSpreadsHotKeys) {
  ScrambledZipf z(100000, 0.99, 25);
  std::set<uint64_t> hot;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.Next()]++;
  // The most frequent picks should not be clustered at the low end.
  uint64_t best = 0;
  int best_count = 0;
  for (const auto& [k, c] : counts) {
    if (c > best_count) {
      best = k;
      best_count = c;
    }
  }
  EXPECT_GT(best_count, 100);  // still skewed...
  EXPECT_GT(best, 100u);       // ...but the hottest item is not rank 0..100
}

// ---------------------------------------------------------------------------
// AtomicBitmap
// ---------------------------------------------------------------------------

TEST(BitmapTest, SetTestClear) {
  AtomicBitmap bm(200);
  EXPECT_FALSE(bm.Test(63));
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(199));
  EXPECT_EQ(bm.CountSet(), 3u);
  bm.Clear(64);
  EXPECT_FALSE(bm.Test(64));
  EXPECT_EQ(bm.CountSet(), 2u);
}

TEST(BitmapTest, NextSetSkipsEmptyWords) {
  AtomicBitmap bm(1000);
  bm.Set(5);
  bm.Set(700);
  EXPECT_EQ(bm.NextSet(0), 5u);
  EXPECT_EQ(bm.NextSet(5), 5u);
  EXPECT_EQ(bm.NextSet(6), 700u);
  EXPECT_EQ(bm.NextSet(701), 1000u);
  EXPECT_EQ(bm.NextSet(2000), 1000u);
}

TEST(BitmapTest, ConcurrentSetsAllLand) {
  AtomicBitmap bm(4096);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bm, t] {
      for (size_t i = static_cast<size_t>(t); i < 4096; i += 4) bm.Set(i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bm.CountSet(), 4096u);
}

// ---------------------------------------------------------------------------
// SlotVersion
// ---------------------------------------------------------------------------

TEST(SlotVersionTest, ReadValidateDetectsWriter) {
  SlotVersion v;
  const uint32_t r = v.ReadLock();
  EXPECT_TRUE(v.ReadValidate(r));
  v.WriteLock();
  v.WriteUnlock();
  EXPECT_FALSE(v.ReadValidate(r));
}

TEST(SlotVersionTest, WriteLockIsExclusive) {
  SlotVersion v;
  std::atomic<int> in_critical{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        v.WriteLock();
        if (in_critical.fetch_add(1) != 0) overlap.store(true);
        in_critical.fetch_sub(1);
        v.WriteUnlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(overlap.load());
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, PercentilesApproximateExact) {
  LatencyHistogram h;
  std::vector<uint64_t> samples;
  Rng rng(31);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t ns = 50 + rng.NextBounded(100000);
    samples.push_back(ns);
    h.Record(ns);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const uint64_t exact = samples[static_cast<size_t>(q * samples.size())];
    const uint64_t approx = h.Percentile(q);
    // Log buckets: within ~7% of the exact percentile.
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.08)
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeEqualsCombined) {
  LatencyHistogram a, b, combined;
  Rng rng(33);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t x = 10 + rng.NextBounded(10000);
    const uint64_t y = 10 + rng.NextBounded(10000);
    a.Record(x);
    b.Record(y);
    combined.Record(x);
    combined.Record(y);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_EQ(a.Percentile(0.99), combined.Percentile(0.99));
  EXPECT_DOUBLE_EQ(a.MeanNs(), combined.MeanNs());
}

TEST(LatencyHistogramTest, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.99), 0u);
  h.Record(100);
  EXPECT_GT(h.Percentile(0.5), 0u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
}

TEST(LatencyHistogramTest, SmallValuesExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.Percentile(1.0), 15u);
  EXPECT_EQ(h.Count(), 16u);
}

// Property test for the within-bucket linear interpolation: across several
// distribution shapes and quantiles, the histogram estimate must stay within
// one bucket width (~2 * 1/16 relative, we allow 8%) of the exact sorted-
// vector oracle — the old upper-bound-only behavior biased every estimate to
// the top of its bucket, failing the lower edge of this bound.
TEST(LatencyHistogramTest, InterpolatedPercentileTracksOracle) {
  Rng rng(71);
  for (int dist = 0; dist < 3; ++dist) {
    LatencyHistogram h;
    std::vector<uint64_t> samples;
    for (int i = 0; i < 60000; ++i) {
      uint64_t ns = 0;
      switch (dist) {
        case 0:  // uniform
          ns = 100 + rng.NextBounded(500000);
          break;
        case 1:  // bimodal: fast path + slow tail
          ns = (rng.NextBounded(10) < 9) ? 80 + rng.NextBounded(200)
                                         : 20000 + rng.NextBounded(80000);
          break;
        default:  // heavy-tailed (approximately log-uniform)
          ns = uint64_t{1} << (4 + rng.NextBounded(20));
          ns += rng.NextBounded(ns);
          break;
      }
      samples.push_back(ns);
      h.Record(ns);
    }
    std::sort(samples.begin(), samples.end());
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
      size_t rank = static_cast<size_t>(std::ceil(q * samples.size()));
      if (rank > 0) --rank;
      const double exact = static_cast<double>(samples[rank]);
      const double approx = static_cast<double>(h.Percentile(q));
      EXPECT_NEAR(approx, exact, exact * 0.08 + 2.0)
          << "dist=" << dist << " q=" << q;
    }
  }
}

TEST(LatencyRecorderTest, SamplingRatePreservedAndPhasesDiffer) {
  // Rate: over any window of k*sample_every calls, exactly k samples fire,
  // whatever the starting phase.
  std::set<uint32_t> phases;
  for (int r = 0; r < 16; ++r) {
    LatencyRecorder rec(16);
    int fired = 0;
    uint32_t first = 0;
    for (uint32_t i = 0; i < 160; ++i) {
      if (rec.ShouldSample()) {
        if (fired == 0) first = i;
        ++fired;
      }
    }
    EXPECT_EQ(fired, 10);
    phases.insert(first);
  }
  // De-phase-locking: 16 recorders must not all share one starting phase
  // (16 i.i.d. uniform draws collide completely with probability 16^-15).
  EXPECT_GT(phases.size(), 1u);
}

TEST(TimerTest, StopwatchAdvances) {
  Stopwatch sw;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<uint64_t>(i);
  EXPECT_GT(sw.ElapsedNanos(), 0u);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace alt
