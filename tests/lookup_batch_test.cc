#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/epoch.h"
#include "common/metrics.h"
#include "common/random.h"
#include "core/alt_index.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

// Result equivalence harness: every LookupBatch result must match what the
// scalar Lookup returns on the same (quiescent) index.
void ExpectBatchMatchesScalar(const AltIndex& index, const std::vector<Key>& queries) {
  std::vector<Value> out(queries.size(), 0);
  std::vector<bool> expected_found(queries.size());
  std::vector<Value> expected_val(queries.size(), 0);
  for (size_t i = 0; i < queries.size(); ++i) {
    Value v = 0;
    expected_found[i] = index.Lookup(queries[i], &v);
    expected_val[i] = v;
  }
  std::unique_ptr<bool[]> found(new bool[queries.size()]);
  const size_t hits = index.LookupBatch(queries.data(), queries.size(), out.data(),
                                        found.get());
  size_t expected_hits = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(found[i], expected_found[i]) << "key " << queries[i] << " at " << i;
    if (expected_found[i]) {
      EXPECT_EQ(out[i], expected_val[i]) << "key " << queries[i] << " at " << i;
      ++expected_hits;
    }
  }
  EXPECT_EQ(hits, expected_hits);
}

class LookupBatchTest : public ::testing::Test {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

TEST_F(LookupBatchTest, EmptyBatchIsANoop) {
  AltIndex index;
  std::vector<Key> keys = {10, 20, 30};
  std::vector<Value> vals = {1, 2, 3};
  ASSERT_TRUE(index.BulkLoad(keys.data(), vals.data(), keys.size()).ok());
  EXPECT_EQ(index.LookupBatch(nullptr, 0, nullptr, nullptr), 0u);
}

TEST_F(LookupBatchTest, MixedHitMissArtResidentTombstone) {
  // kOsm keys give real prediction conflicts, so ART-OPT is populated.
  AltIndex index;
  auto keys = GenerateKeys(Dataset::kOsm, 50000, 11);
  const size_t half = keys.size() / 2;
  std::vector<Value> vals(half);
  for (size_t i = 0; i < half; ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index.BulkLoad(keys.data(), vals.data(), half).ok());

  // Runtime inserts: conflicts land in ART, some keys trigger write-backs.
  for (size_t i = half; i < keys.size(); i += 2) {
    ASSERT_TRUE(index.Insert(keys[i], ValueFor(keys[i])));
  }
  // Tombstones: remove a slice of the bulk-loaded keys in place.
  for (size_t i = 0; i < half; i += 7) {
    ASSERT_TRUE(index.Remove(keys[i]));
  }
  EXPECT_GT(index.art().Size(), 0u) << "test needs ART-resident keys";

  // Query mix: live learned-layer keys, ART residents, tombstoned keys,
  // never-inserted keys (the odd second-half ranks), out-of-range keys,
  // and duplicates within one batch.
  std::vector<Key> queries;
  Rng rng(123);
  for (int i = 0; i < 4000; ++i) {
    queries.push_back(keys[rng.NextBounded(keys.size())]);
  }
  for (int i = 0; i < 500; ++i) {
    queries.push_back(keys[rng.NextBounded(keys.size())] + 1);  // likely absent
  }
  queries.push_back(0);
  queries.push_back(~Key{0});
  queries.push_back(queries.front());  // duplicate
  ExpectBatchMatchesScalar(index, queries);
}

TEST_F(LookupBatchTest, AllGroupWidthsAgree) {
  auto keys = GenerateKeys(Dataset::kFb, 20000, 5);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);

  for (uint32_t width : {1u, 2u, 5u, 16u, 64u, 1000u}) {
    AltOptions opts;
    opts.batch_group_width = width;  // 1000 exercises the clamp
    AltIndex index(opts);
    ASSERT_TRUE(index.BulkLoad(keys.data(), vals.data(), keys.size()).ok());
    std::vector<Key> queries;
    Rng rng(width);
    for (int i = 0; i < 1500; ++i) {
      const Key k = keys[rng.NextBounded(keys.size())];
      queries.push_back((i % 3 == 0) ? k + 1 : k);
    }
    ExpectBatchMatchesScalar(index, queries);
    EpochManager::Global().DrainAll();
  }
}

TEST_F(LookupBatchTest, WithoutFastPointers) {
  AltOptions opts;
  opts.enable_fast_pointers = false;
  AltIndex index(opts);
  auto keys = GenerateKeys(Dataset::kOsm, 30000, 17);
  const size_t half = keys.size() / 2;
  std::vector<Value> vals(half);
  for (size_t i = 0; i < half; ++i) vals[i] = ValueFor(keys[i]);
  ASSERT_TRUE(index.BulkLoad(keys.data(), vals.data(), half).ok());
  for (size_t i = half; i < keys.size(); ++i) {
    ASSERT_TRUE(index.Insert(keys[i], ValueFor(keys[i])));
  }
  std::vector<Key> queries(keys.begin(), keys.begin() + 3000);
  ExpectBatchMatchesScalar(index, queries);
}

TEST_F(LookupBatchTest, DuringInstalledExpansion) {
  // Drive a §III-F expansion and query while the temporal buffer is live but
  // unfinished (expansion installed, strict_empty suspended): the batch path
  // must take its scalar fallback and still agree with Lookup.
  AltOptions opts;
  opts.retrain_trigger_ratio = 0.05;
  AltIndex index(opts);
  std::vector<Key> bulk;
  std::vector<Value> vals;
  for (Key k = 1000; k < 2000; ++k) {
    bulk.push_back(k * 10);
    vals.push_back(ValueFor(k * 10));
  }
  ASSERT_TRUE(index.BulkLoad(bulk.data(), vals.data(), bulk.size()).ok());

  std::vector<Key> inserted;
  std::vector<Key> queries = bulk;
  bool saw_expansion = false;
  for (Key k = 1000; k < 2000 && !saw_expansion; ++k) {
    const Key nk = k * 10 + 3;
    ASSERT_TRUE(index.Insert(nk, ValueFor(nk)));
    inserted.push_back(nk);
    const auto st = index.CollectStats();
    saw_expansion = st.retrain_started > st.retrain_finished;
  }
  ASSERT_TRUE(saw_expansion) << "expansion never became observable mid-flight";
  queries.insert(queries.end(), inserted.begin(), inserted.end());
  for (Key k = 1000; k < 1100; ++k) queries.push_back(k * 10 + 7);  // absent
  ExpectBatchMatchesScalar(index, queries);

  // Push past finish_threshold (max(64, build_size)) so the temporal buffer
  // gets published, then re-verify over the new model.
  for (Key k = 1000; k < 2100; ++k) {
    index.Insert(k * 10 + 7, ValueFor(k * 10 + 7));
  }
  EXPECT_GE(index.CollectStats().retrain_finished, 1u);
  ExpectBatchMatchesScalar(index, queries);
}

TEST_F(LookupBatchTest, BatchLookupsFlushMetricsOncePerCall) {
  auto keys = GenerateKeys(Dataset::kOsm, 30000, 29);
  std::vector<Value> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) vals[i] = ValueFor(keys[i]);

  AltIndex index;
  const size_t half = keys.size() / 2;
  ASSERT_TRUE(index.BulkLoad(keys.data(), vals.data(), half).ok());
  for (size_t i = half; i < keys.size(); ++i) {
    index.Insert(keys[i], ValueFor(keys[i]));
  }
  std::vector<Key> queries(keys.begin(), keys.end());
  std::vector<Value> out(queries.size());
  std::unique_ptr<bool[]> found(new bool[queries.size()]);

  const auto base = metrics::TakeSnapshot();
  index.LookupBatch(queries.data(), queries.size(), out.data(), found.get());
  const auto delta = metrics::TakeSnapshot().DeltaSince(base);
#if !defined(ALT_METRICS_DISABLED)
  using metrics::Counter;
  EXPECT_EQ(delta.counter(Counter::kBatchLookups), queries.size());
  EXPECT_GT(delta.counter(Counter::kArtLookups), 0u);
  EXPECT_GT(delta.counter(Counter::kArtLookupSteps), 0u);
  // Every query either resolved in the learned layer, went to ART, or took
  // the scalar fallback (which does its own per-key accounting).
  EXPECT_GE(delta.counter(Counter::kLearnedHits) +
                delta.counter(Counter::kLearnedNegatives) +
                delta.counter(Counter::kArtLookups) +
                delta.counter(Counter::kBatchScalarFallbacks),
            queries.size());
#endif
}

}  // namespace
}  // namespace alt
