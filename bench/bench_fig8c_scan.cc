// Reproduces Fig. 8(c): short-scan workload (100-key scans from Zipfian start
// keys). ALEX+ wins (contiguous arrays); ALT-index pays for its dual-layer
// merge but should stay competitive with the other learned indexes.
#include "bench_common.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  // Scans are 100x heavier than point ops; scale op counts down.
  cfg.ops_per_thread = std::max<size_t>(1000, cfg.ops_per_thread / 25);
  PrintHeader("Fig. 8(c): scan workload (100-key scans)",
              {"Index", "Dataset", "Mops/s(scans)", "P99.9(us)"});
  for (const auto& name : cfg.indexes) {
    for (Dataset d : cfg.datasets) {
      const auto keys = LoadKeys(cfg, d);
      const RunResult r = RunOne(cfg, name, keys, WorkloadType::kScan);
      PrintRow({MakeIndex(name)->Name(), DatasetName(d), Fmt(r.throughput_mops, 3),
                Fmt(static_cast<double>(r.p999_ns) / 1000.0)});
    }
  }
  return 0;
}
