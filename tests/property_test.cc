#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "baselines/factory.h"
#include "common/epoch.h"
#include "common/random.h"
#include "core/alt_index.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

// ---------------------------------------------------------------------------
// Scan/range properties sweeping datasets x configurations (TEST_P).
// ---------------------------------------------------------------------------

class ScanPropertyTest
    : public ::testing::TestWithParam<std::tuple<Dataset, double /*gap*/>> {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

TEST_P(ScanPropertyTest, ScanEqualsSortedOracleEverywhere) {
  const auto [dataset, gap] = GetParam();
  AltOptions o;
  o.gap_factor = gap;
  AltIndex index(o);
  auto keys = GenerateKeys(dataset, 20000, 3);
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k : keys) pairs.emplace_back(k, ValueFor(k));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());

  std::vector<std::pair<Key, Value>> out;
  Rng rng(17);
  for (int t = 0; t < 60; ++t) {
    // Start from an arbitrary key value (present or not).
    const Key start = rng.Next();
    const size_t n = 1 + rng.NextBounded(64);
    index.Scan(start, n, &out);
    // Oracle: binary search in the sorted key list.
    const auto it = std::lower_bound(keys.begin(), keys.end(), start);
    const size_t expect = std::min<size_t>(n, static_cast<size_t>(keys.end() - it));
    ASSERT_EQ(out.size(), expect) << DatasetName(dataset) << " t=" << t;
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i].first, *(it + static_cast<ptrdiff_t>(i)));
      ASSERT_EQ(out[i].second, ValueFor(out[i].first));
    }
  }
}

TEST_P(ScanPropertyTest, RangeQueryCountsMatchOracle) {
  const auto [dataset, gap] = GetParam();
  AltOptions o;
  o.gap_factor = gap;
  AltIndex index(o);
  auto keys = GenerateKeys(dataset, 15000, 5);
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k : keys) pairs.emplace_back(k, ValueFor(k));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());

  std::vector<std::pair<Key, Value>> out;
  Rng rng(29);
  for (int t = 0; t < 40; ++t) {
    size_t a = rng.NextBounded(keys.size());
    size_t b = rng.NextBounded(keys.size());
    if (a > b) std::swap(a, b);
    const size_t got = index.RangeQuery(keys[a], keys[b], &out);
    EXPECT_EQ(got, b - a + 1) << DatasetName(dataset);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScanPropertyTest,
    ::testing::Combine(::testing::Values(Dataset::kLibio, Dataset::kOsm, Dataset::kFb,
                                         Dataset::kLonglat),
                       ::testing::Values(1.2, 2.0, 3.0)));

// ---------------------------------------------------------------------------
// Layer-accounting invariants across configurations.
// ---------------------------------------------------------------------------

class LayerInvariantTest
    : public ::testing::TestWithParam<std::tuple<Dataset, double /*eps*/>> {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

// Every key is in exactly one layer, before and after heavy churn.
TEST_P(LayerInvariantTest, LayersPartitionTheKeySet) {
  const auto [dataset, eps] = GetParam();
  AltOptions o;
  o.error_bound = eps;
  AltIndex index(o);
  auto keys = GenerateKeys(dataset, 20000, 7);
  std::vector<std::pair<Key, Value>> loaded;
  for (size_t i = 0; i < keys.size(); i += 2) {
    loaded.emplace_back(keys[i], ValueFor(keys[i]));
  }
  ASSERT_TRUE(index.BulkLoad(loaded).ok());
  auto st = index.CollectStats();
  EXPECT_EQ(st.learned_layer_keys + st.art_keys, loaded.size());

  // Insert the other half, remove a third, re-check accounting.
  size_t live = loaded.size();
  for (size_t i = 1; i < keys.size(); i += 2) {
    ASSERT_TRUE(index.Insert(keys[i], ValueFor(keys[i])));
    ++live;
  }
  for (size_t i = 0; i < keys.size(); i += 3) {
    ASSERT_TRUE(index.Remove(keys[i]));
    --live;
  }
  st = index.CollectStats();
  EXPECT_EQ(st.learned_layer_keys + st.art_keys, live);
  EXPECT_EQ(index.Size(), live);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayerInvariantTest,
    ::testing::Combine(::testing::Values(Dataset::kOsm, Dataset::kLonglat),
                       ::testing::Values(16.0, 64.0, 512.0)));

// ---------------------------------------------------------------------------
// Tombstone / write-back churn
// ---------------------------------------------------------------------------

class PropertyTest : public ::testing::Test {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

TEST_F(PropertyTest, RepeatedRemoveReinsertCyclesStayConsistent) {
  AltOptions o;
  o.gap_factor = 1.2;  // dense: many conflicts, exercising tombstone paths
  AltIndex index(o);
  auto keys = GenerateKeys(Dataset::kFb, 10000, 11);
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k : keys) pairs.emplace_back(k, ValueFor(k));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());

  Rng rng(3);
  for (int cycle = 0; cycle < 5; ++cycle) {
    // Remove a random half...
    std::vector<size_t> removed;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (rng.Next() & 1) {
        ASSERT_TRUE(index.Remove(keys[i])) << "cycle " << cycle << " i " << i;
        removed.push_back(i);
      }
    }
    // ...interleave lookups that trigger write-backs...
    for (size_t i = 0; i < keys.size(); i += 7) {
      Value v;
      index.Lookup(keys[i], &v);
    }
    // ...and re-insert with cycle-tagged values.
    for (size_t i : removed) {
      ASSERT_TRUE(index.Insert(keys[i], ValueFor(keys[i]) + cycle));
    }
    for (size_t i : removed) {
      Value v;
      ASSERT_TRUE(index.Lookup(keys[i], &v));
      EXPECT_EQ(v, ValueFor(keys[i]) + cycle);
    }
    EXPECT_EQ(index.Size(), keys.size());
  }
}

// Looking up every key must never mutate observable state (write-backs move
// keys between layers but preserve the mapping).
TEST_F(PropertyTest, LookupsAreObservationallyPure) {
  AltIndex index;
  auto keys = GenerateKeys(Dataset::kLonglat, 15000, 13);
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k : keys) pairs.emplace_back(k, ValueFor(k));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  for (size_t i = 0; i < keys.size(); i += 4) index.Remove(keys[i]);

  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < keys.size(); ++i) {
      Value v;
      const bool found = index.Lookup(keys[i], &v);
      ASSERT_EQ(found, i % 4 != 0) << "round " << round << " i " << i;
      if (found) ASSERT_EQ(v, ValueFor(keys[i]));
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent retraining + oracle: heavy write pressure on one region while a
// reader validates a frozen shard nobody touches.
// ---------------------------------------------------------------------------

TEST_F(PropertyTest, ConcurrentChurnWithFrozenShardOracle) {
  AltOptions o;
  o.retrain_trigger_ratio = 0.25;
  AltIndex index(o);
  // Frozen shard: keys 0..9999 (never touched after load).
  // Churn region: keys 1e9 + i.
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 10000; ++k) pairs.emplace_back(k * 7, ValueFor(k * 7));
  for (Key k = 0; k < 10000; ++k) {
    pairs.emplace_back(1000000000 + k * 8, ValueFor(1000000000 + k * 8));
  }
  ASSERT_TRUE(index.BulkLoad(pairs).ok());

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&index, &failed, t] {
      // Churn: insert/remove keys interleaved in the high region.
      for (Key k = 0; k < 30000; ++k) {
        const Key key = 1000000000 + k * 8 + 1 + static_cast<Key>(t);
        if (!index.Insert(key, key)) failed.store(true);
        if (k % 2 == 0 && !index.Remove(key)) failed.store(true);
      }
    });
  }
  threads.emplace_back([&index, &failed] {
    for (int round = 0; round < 10; ++round) {
      for (Key k = 0; k < 10000; k += 11) {
        Value v;
        if (!index.Lookup(k * 7, &v) || v != ValueFor(k * 7)) failed.store(true);
      }
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  // Full verification of the churn region's final state.
  for (int t = 0; t < 3; ++t) {
    for (Key k = 0; k < 30000; ++k) {
      const Key key = 1000000000 + k * 8 + 1 + static_cast<Key>(t);
      Value v;
      ASSERT_EQ(index.Lookup(key, &v), k % 2 != 0) << "t=" << t << " k=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-index differential test under a seed sweep (TEST_P over seeds).
// ---------------------------------------------------------------------------

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

TEST_P(DifferentialTest, AltAgreesWithArtOnRandomOps) {
  const uint64_t seed = GetParam();
  auto alt_index = MakeIndex("alt");
  auto art_index = MakeIndex("art");
  auto keys = GenerateKeys(Dataset::kLognormal, 5000, seed);
  std::vector<Value> vals(keys.size() / 2);
  std::vector<Key> bulk(keys.begin(), keys.begin() + static_cast<ptrdiff_t>(vals.size()));
  for (size_t i = 0; i < bulk.size(); ++i) vals[i] = ValueFor(bulk[i]);
  ASSERT_TRUE(alt_index->BulkLoad(bulk.data(), vals.data(), bulk.size()).ok());
  ASSERT_TRUE(art_index->BulkLoad(bulk.data(), vals.data(), bulk.size()).ok());

  Rng rng(seed * 31 + 7);
  for (int op = 0; op < 20000; ++op) {
    const Key k = keys[rng.NextBounded(keys.size())];
    switch (rng.NextBounded(5)) {
      case 0:
        ASSERT_EQ(alt_index->Insert(k, op), art_index->Insert(k, op)) << op;
        break;
      case 1:
        ASSERT_EQ(alt_index->Remove(k), art_index->Remove(k)) << op;
        break;
      case 2:
        ASSERT_EQ(alt_index->Update(k, op), art_index->Update(k, op)) << op;
        break;
      case 3: {
        std::vector<std::pair<Key, Value>> a, b;
        alt_index->Scan(k, 20, &a);
        art_index->Scan(k, 20, &b);
        ASSERT_EQ(a, b) << op;
        break;
      }
      default: {
        Value va = 0, vb = 0;
        const bool fa = alt_index->Lookup(k, &va);
        const bool fb = art_index->Lookup(k, &vb);
        ASSERT_EQ(fa, fb) << op;
        if (fa) ASSERT_EQ(va, vb) << op;
        break;
      }
    }
  }
  EXPECT_EQ(alt_index->Size(), art_index->Size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace alt
