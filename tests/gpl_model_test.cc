#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "core/gpl_model.h"
#include "core/model_directory.h"

namespace alt {
namespace {

// ---------------------------------------------------------------------------
// SlotWord
// ---------------------------------------------------------------------------

TEST(SlotWordTest, InitialStateEmpty) {
  SlotWord w;
  EXPECT_EQ(w.State(), SlotState::kEmpty);
}

TEST(SlotWordTest, LockUnlockTransitionsState) {
  SlotWord w;
  uint32_t lw = w.Lock();
  EXPECT_EQ(SlotWord::StateOf(lw), SlotState::kEmpty);
  w.Unlock(lw, SlotState::kOccupied);
  EXPECT_EQ(w.State(), SlotState::kOccupied);
  lw = w.Lock();
  w.Unlock(lw, SlotState::kTombstone);
  EXPECT_EQ(w.State(), SlotState::kTombstone);
  lw = w.Lock();
  w.Unlock(lw, SlotState::kMigrated);
  EXPECT_EQ(w.State(), SlotState::kMigrated);
}

TEST(SlotWordTest, ValidateDetectsIntermediateWriter) {
  SlotWord w;
  const uint32_t r = w.Read();
  EXPECT_TRUE(w.Validate(r));
  const uint32_t lw = w.Lock();
  w.Unlock(lw, SlotState::kOccupied);
  EXPECT_FALSE(w.Validate(r));
}

TEST(SlotWordTest, SequenceMonotonicAcrossSameStateUnlocks) {
  SlotWord w;
  const uint32_t r0 = w.Read();
  uint32_t lw = w.Lock();
  w.Unlock(lw, SlotState::kEmpty);  // same state, still bumps the version
  EXPECT_FALSE(w.Validate(r0));
  EXPECT_EQ(w.State(), SlotState::kEmpty);
}

TEST(SlotWordTest, ConcurrentLockersSerialize) {
  SlotWord w;
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        const uint32_t lw = w.Lock();
        if (inside.fetch_add(1) != 0) overlap.store(true);
        inside.fetch_sub(1);
        w.Unlock(lw, SlotWord::StateOf(lw));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(overlap.load());
}

// ---------------------------------------------------------------------------
// GplModel
// ---------------------------------------------------------------------------

TEST(GplModelTest, PredictAnchorsAtFirstKey) {
  GplModel m(1000, 2.0, 100, 10);
  EXPECT_EQ(m.Predict(1000), 0u);
  EXPECT_EQ(m.Predict(999), 0u);   // under-range clamps to 0
  EXPECT_EQ(m.Predict(1), 0u);
  EXPECT_EQ(m.Predict(1010), 20u);
  EXPECT_EQ(m.Predict(100000), 99u);  // over-range clamps to last slot
}

TEST(GplModelTest, PredictIsMonotone) {
  GplModel m(500, 0.37, 1000, 10);
  uint32_t prev = 0;
  for (Key k = 500; k < 5000; k += 3) {
    const uint32_t p = m.Predict(k);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(GplModelTest, ZeroSlopeAlwaysSlotZero) {
  GplModel m(10, 0.0, 1, 1);
  EXPECT_EQ(m.Predict(10), 0u);
  EXPECT_EQ(m.Predict(1u << 30), 0u);
}

TEST(GplModelTest, CollectRangeReturnsSortedOccupied) {
  GplModel m(0, 1.0, 100, 50);
  for (uint32_t i = 0; i < 100; i += 2) {
    GplSlot& s = m.slot(i);
    s.key.store(i, std::memory_order_relaxed);
    s.value.store(i * 10, std::memory_order_relaxed);
    s.word.InitState(SlotState::kOccupied);
  }
  // A tombstone and a migrated slot must be skipped.
  {
    GplSlot& s = m.slot(4);
    const uint32_t lw = s.word.Lock();
    s.word.Unlock(lw, SlotState::kTombstone);
  }
  std::vector<std::pair<Key, Value>> out;
  m.CollectRange(0, 50, &out);
  ASSERT_FALSE(out.empty());
  for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1].first, out[i].first);
  for (const auto& [k, v] : out) {
    EXPECT_NE(k, 4u) << "tombstoned key leaked into scan";
    EXPECT_EQ(v, k * 10);
    EXPECT_LE(k, 50u);
  }
}

TEST(GplModelTest, CountOccupied) {
  GplModel m(0, 1.0, 64, 10);
  EXPECT_EQ(m.CountOccupied(), 0u);
  for (uint32_t i = 0; i < 10; ++i) {
    GplSlot& s = m.slot(i);
    s.key.store(i, std::memory_order_relaxed);
    s.word.InitState(SlotState::kOccupied);
  }
  EXPECT_EQ(m.CountOccupied(), 10u);
}

TEST(GplModelTest, ExpansionInstallIsExclusive) {
  GplModel m(0, 1.0, 64, 10);
  auto* e1 = new Expansion(new GplModel(0, 2.0, 129, 10));
  auto* e2 = new Expansion(new GplModel(0, 2.0, 129, 10));
  EXPECT_TRUE(m.TryInstallExpansion(e1));
  EXPECT_FALSE(m.TryInstallExpansion(e2));
  EXPECT_EQ(m.expansion(), e1);
  delete e2;
  // e1 is owned (and freed) by the model's destructor.
}

// ---------------------------------------------------------------------------
// ModelDirectory
// ---------------------------------------------------------------------------

TEST(ModelDirectoryTest, LocateFindsOwningModel) {
  ModelDirectory dir;
  std::vector<GplModel*> models;
  for (Key fk : {10u, 100u, 1000u}) {
    models.push_back(new GplModel(fk, 1.0, 16, 4));
  }
  dir.Build(models);
  const auto* snap = dir.snapshot();
  EXPECT_EQ(ModelDirectory::Locate(*snap, 5), 0u);    // under-range clamps
  EXPECT_EQ(ModelDirectory::Locate(*snap, 10), 0u);
  EXPECT_EQ(ModelDirectory::Locate(*snap, 99), 0u);
  EXPECT_EQ(ModelDirectory::Locate(*snap, 100), 1u);
  EXPECT_EQ(ModelDirectory::Locate(*snap, 999), 1u);
  EXPECT_EQ(ModelDirectory::Locate(*snap, 1000), 2u);
  EXPECT_EQ(ModelDirectory::Locate(*snap, ~Key{0}), 2u);
}

TEST(ModelDirectoryTest, ReplacementPreservesOrderAndRetiresOld) {
  ModelDirectory dir;
  dir.Build({new GplModel(10, 1.0, 16, 4), new GplModel(100, 1.0, 16, 4)});
  const auto* snap = dir.snapshot();
  GplModel* old_model = snap->models[1].load();
  auto* replacement = new GplModel(100, 2.0, 33, 8);
  EXPECT_TRUE(dir.PublishReplacement(old_model, replacement));
  EXPECT_EQ(dir.snapshot()->models[1].load(), replacement);
  // Replacing again with the stale pointer fails.
  auto* again = new GplModel(100, 4.0, 67, 8);
  EXPECT_FALSE(dir.PublishReplacement(old_model, again));
  delete again;
  EpochManager::Global().DrainAll();
}

TEST(ModelDirectoryTest, AppendTailGrowsSnapshot) {
  ModelDirectory dir;
  dir.Build({new GplModel(10, 1.0, 16, 4)});
  EXPECT_EQ(dir.NumModels(), 1u);
  dir.AppendTail(new GplModel(500, 1.0, 16, 4));
  EXPECT_EQ(dir.NumModels(), 2u);
  const auto* snap = dir.snapshot();
  EXPECT_EQ(snap->first_keys[1], 500u);
  EXPECT_EQ(ModelDirectory::Locate(*snap, 600), 1u);
  EpochManager::Global().DrainAll();
}

TEST(ModelDirectoryTest, MemoryBytesCountsModels) {
  ModelDirectory dir;
  dir.Build({new GplModel(10, 1.0, 1024, 4)});
  EXPECT_GT(dir.MemoryBytes(), 1024 * sizeof(GplSlot));
}

}  // namespace
}  // namespace alt
