#include "server/loadgen.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <thread>

#include "common/random.h"
#include "common/timer.h"
#include "server/client.h"
#include "server/protocol.h"

namespace alt {
namespace server {

namespace {

/// PUT/DEL keys live far above every generated dataset key (generators stay
/// below 2^63), so write traffic never collides with the seeded GET keyset.
constexpr Key kPrivateKeyBase = 0xF000000000000000ull;

/// Abort a run when no response arrives for this long (dead server).
constexpr uint64_t kStallNs = 60ull * 1000000000ull;

struct PendingReq {
  uint64_t sched_ns;  ///< open loop: scheduled arrival; closed loop: == send
  Op op;
  Key key;
};

struct LgConn {
  int fd = -1;
  FrameDecoder dec;
  std::vector<uint8_t> out;
  size_t out_off = 0;
  std::deque<PendingReq> pending;  ///< responses arrive in this order
  std::vector<Key> owned;          ///< keys PUT and not yet DELeted
};

struct ThreadResult {
  uint64_t sent = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  LatencyHistogram hist;
  std::string error;
};

class LoadThread {
 public:
  LoadThread(const LoadgenOptions& opt, const std::vector<Key>& keys, int tid,
             uint64_t quota, ThreadResult* result)
      : opt_(opt),
        keys_(keys),
        tid_(tid),
        quota_(quota),
        result_(result),
        rng_(Mix64(0x10adull + static_cast<uint64_t>(tid) * 7919)),
        next_put_key_(kPrivateKeyBase +
                      (static_cast<uint64_t>(tid) << 40)) {}

  void Run() {
    if (!ConnectAll()) return;
    const uint64_t start_ns = NowNanos();
    uint64_t last_progress_ns = start_ns;

    // Open loop: aggregate rate split evenly across threads.
    const double thread_rate = opt_.rate_ops_per_sec / opt_.threads;
    const uint64_t interval_ns =
        opt_.open_loop && thread_rate > 0
            ? static_cast<uint64_t>(1e9 / thread_rate)
            : 0;
    uint64_t next_sched_ns = start_ns;
    size_t rr = 0;  // round-robin connection cursor (open loop)

    if (!opt_.open_loop) {
      for (LgConn& c : conns_) {
        for (int i = 0; i < opt_.pipeline && result_->sent < quota_; ++i) {
          QueueOp(c, NowNanos());
        }
      }
    }

    std::vector<pollfd> pfds(conns_.size());
    while (result_->completed < quota_ && result_->error.empty()) {
      const uint64_t now = NowNanos();
      if (opt_.open_loop) {
        uint64_t sched = next_sched_ns;
        while (result_->sent < quota_ && sched <= now) {
          QueueOp(conns_[rr], sched);
          rr = (rr + 1) % conns_.size();
          sched += interval_ns;
        }
        next_sched_ns = sched;
      }
      for (size_t i = 0; i < conns_.size(); ++i) {
        pfds[i].fd = conns_[i].fd;
        pfds[i].events = static_cast<short>(
            POLLIN | (conns_[i].out.size() > conns_[i].out_off ? POLLOUT : 0));
        pfds[i].revents = 0;
      }
      int timeout_ms = 100;
      if (opt_.open_loop && result_->sent < quota_) {
        const uint64_t now2 = NowNanos();
        timeout_ms = next_sched_ns > now2
                         ? static_cast<int>(
                               std::min<uint64_t>((next_sched_ns - now2) / 1000000, 100))
                         : 0;
      }
      const int n = poll(pfds.data(), pfds.size(), timeout_ms);
      if (n < 0 && errno != EINTR) {
        result_->error = std::string("poll() failed: ") + std::strerror(errno);
        break;
      }
      bool progressed = false;
      for (size_t i = 0; i < conns_.size() && result_->error.empty(); ++i) {
        if ((pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
          result_->error = "connection reset by server";
          break;
        }
        if ((pfds[i].revents & POLLOUT) != 0) FlushOut(conns_[i]);
        if ((pfds[i].revents & POLLIN) != 0) {
          progressed |= DrainResponses(conns_[i]) > 0;
        }
        // Closed loop: completions open window slots — refill immediately.
        if (!opt_.open_loop) {
          LgConn& c = conns_[i];
          while (result_->error.empty() && result_->sent < quota_ &&
                 c.pending.size() < static_cast<size_t>(opt_.pipeline)) {
            QueueOp(c, NowNanos());
          }
        }
      }
      if (progressed) last_progress_ns = NowNanos();
      if (result_->sent > result_->completed &&
          NowNanos() - last_progress_ns > kStallNs) {
        result_->error = "no responses for 60s: server stalled or dead";
        break;
      }
    }
    for (LgConn& c : conns_) {
      if (c.fd >= 0) close(c.fd);
    }
  }

 private:
  bool ConnectAll() {
    conns_.resize(static_cast<size_t>(opt_.connections_per_thread));
    for (LgConn& c : conns_) {
      KvClient probe;
      Status s = probe.Connect(opt_.host, opt_.port, opt_.connect_retry_ms);
      if (!s.ok()) {
        result_->error = s.ToString();
        return false;
      }
      // Steal the connected fd and drive it nonblocking from the poll loop.
      c.fd = dup(probe.fd());
      probe.Close();
      if (c.fd < 0 || fcntl(c.fd, F_SETFL, O_NONBLOCK) != 0) {
        result_->error = "failed to make connection nonblocking";
        return false;
      }
    }
    return true;
  }

  void QueueOp(LgConn& c, uint64_t sched_ns) {
    const uint64_t dice = rng_.NextBounded(100);
    PendingReq req{sched_ns, Op::kGet, 0};
    if (dice < opt_.put_pct) {
      req.op = Op::kPut;
      req.key = next_put_key_++;
      c.owned.push_back(req.key);
    } else if (dice < opt_.put_pct + opt_.del_pct) {
      if (!c.owned.empty()) {
        req.op = Op::kDel;
        req.key = c.owned.back();
        c.owned.pop_back();
      } else {
        // Nothing deletable yet (no PUT completed on this connection):
        // degrade to GET so the SCAN share stays at scan_pct exactly.
        req.key = keys_[rng_.NextBounded(keys_.size())];
      }
    } else if (dice < opt_.put_pct + opt_.del_pct + opt_.scan_pct) {
      req.op = Op::kScan;
      req.key = keys_[rng_.NextBounded(keys_.size())];
    } else {
      req.op = Op::kGet;
      req.key = keys_[rng_.NextBounded(keys_.size())];
    }
    const uint64_t id = next_id_++;
    switch (req.op) {
      case Op::kGet: AppendGet(&c.out, id, req.key); break;
      case Op::kPut: AppendPut(&c.out, id, req.key, ValueFor(req.key)); break;
      case Op::kDel: AppendDel(&c.out, id, req.key); break;
      case Op::kScan: AppendScan(&c.out, id, req.key, opt_.scan_count); break;
      case Op::kStats: break;  // not part of the generated mix
    }
    c.pending.push_back(req);
    result_->sent += 1;
    FlushOut(c);
  }

  void FlushOut(LgConn& c) {
    while (c.out_off < c.out.size()) {
      ssize_t k = send(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off,
                       MSG_NOSIGNAL);
      if (k > 0) {
        c.out_off += static_cast<size_t>(k);
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      result_->error = std::string("send() failed: ") + std::strerror(errno);
      return;
    }
    c.out.clear();
    c.out_off = 0;
  }

  size_t DrainResponses(LgConn& c) {
    size_t got = 0;
    for (;;) {
      FrameHeader h;
      const uint8_t* body = nullptr;
      FrameDecoder::Result r = c.dec.Next(&h, &body);
      if (r == FrameDecoder::Result::kFrame) {
        HandleResponse(c, h, body);
        ++got;
        continue;
      }
      if (r == FrameDecoder::Result::kError) {
        result_->error = std::string("protocol error: ") + c.dec.error();
        return got;
      }
      uint8_t buf[16384];
      ssize_t k = recv(c.fd, buf, sizeof(buf), 0);
      if (k > 0) {
        c.dec.Feed(buf, static_cast<size_t>(k));
        continue;
      }
      if (k == 0) {
        result_->error = "connection closed by server";
        return got;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return got;
      result_->error = std::string("recv() failed: ") + std::strerror(errno);
      return got;
    }
  }

  void HandleResponse(LgConn& c, const FrameHeader& h, const uint8_t* body) {
    if (c.pending.empty()) {
      result_->error = "response with no matching request";
      return;
    }
    const PendingReq req = c.pending.front();
    c.pending.pop_front();
    Response resp;
    if (!h.is_response() || !DecodeResponse(h, body, &resp)) {
      result_->error = "undecodable response frame";
      return;
    }
    result_->completed += 1;
    result_->hist.Record(NowNanos() - req.sched_ns);
    switch (req.op) {
      case Op::kGet:
        if (resp.status != RespStatus::kOk ||
            (opt_.verify_values && resp.value != ValueFor(req.key))) {
          result_->failed += 1;  // every GET targets a seeded key
        }
        break;
      case Op::kPut:
        if (resp.status != RespStatus::kOk) result_->failed += 1;
        break;
      case Op::kDel:
        if (resp.status != RespStatus::kOk) result_->failed += 1;
        break;
      case Op::kScan: {
        bool ok = resp.status == RespStatus::kOk && !resp.pairs.empty() &&
                  resp.pairs.front().first >= req.key;
        for (size_t i = 1; ok && i < resp.pairs.size(); ++i) {
          ok = resp.pairs[i - 1].first < resp.pairs[i].first;
        }
        if (!ok) result_->failed += 1;
        break;
      }
      case Op::kStats:
        break;
    }
  }

  const LoadgenOptions& opt_;
  const std::vector<Key>& keys_;
  const int tid_;
  const uint64_t quota_;
  ThreadResult* const result_;
  Rng rng_;
  Key next_put_key_;
  uint64_t next_id_ = 1;
  std::vector<LgConn> conns_;
};

}  // namespace

LoadgenResult RunLoadgen(const LoadgenOptions& options) {
  LoadgenResult result;
  LoadgenOptions opt = options;
  if (opt.threads < 1) opt.threads = 1;
  if (opt.connections_per_thread < 1) opt.connections_per_thread = 1;
  if (opt.pipeline < 1) opt.pipeline = 1;

  const std::vector<Key> keys = GenerateKeys(opt.dataset, opt.keyspace, opt.seed);

  std::vector<ThreadResult> per_thread(static_cast<size_t>(opt.threads));
  std::vector<std::thread> threads;
  const uint64_t start_ns = NowNanos();
  for (int t = 0; t < opt.threads; ++t) {
    const uint64_t quota = opt.ops / opt.threads +
                           (static_cast<uint64_t>(t) < opt.ops % opt.threads ? 1 : 0);
    threads.emplace_back([&, t, quota] {
      LoadThread worker(opt, keys, t, quota, &per_thread[static_cast<size_t>(t)]);
      worker.Run();
    });
  }
  for (auto& th : threads) th.join();
  result.seconds = static_cast<double>(NowNanos() - start_ns) * 1e-9;

  result.ok = true;
  for (const ThreadResult& tr : per_thread) {
    result.ops_sent += tr.sent;
    result.ops_completed += tr.completed;
    result.failed_ops += tr.failed;
    result.latency.Merge(tr.hist);
    if (!tr.error.empty() && result.error.empty()) {
      result.error = tr.error;
      result.ok = false;
    }
  }

  // Final STATS snapshot over a fresh connection (the run's own connections
  // are closed by now).
  KvClient stats_client;
  if (stats_client.Connect(opt.host, opt.port, opt.connect_retry_ms).ok()) {
    stats_client.Stats(&result.server_stats_json);
  }
  return result;
}

std::string LoadgenResultJson(const LoadgenOptions& options,
                              const LoadgenResult& result) {
  char buf[64];
  std::string out = "{";
  auto raw = [&out](const char* name, const std::string& v, bool comma = true) {
    out += '"';
    out += name;
    out += "\":";
    out += v;
    if (comma) out += ',';
  };
  raw("mode", options.open_loop ? "\"open\"" : "\"closed\"");
  raw("threads", std::to_string(options.threads));
  raw("connections_per_thread", std::to_string(options.connections_per_thread));
  raw("pipeline", std::to_string(options.pipeline));
  std::snprintf(buf, sizeof(buf), "%.0f", options.rate_ops_per_sec);
  raw("rate_ops_per_sec", options.open_loop ? buf : "0");
  raw("keyspace", std::to_string(options.keyspace));
  raw("ok", result.ok ? "true" : "false");
  raw("ops_sent", std::to_string(result.ops_sent));
  raw("ops_completed", std::to_string(result.ops_completed));
  raw("failed_ops", std::to_string(result.failed_ops));
  std::snprintf(buf, sizeof(buf), "%.3f", result.seconds);
  raw("seconds", buf);
  std::snprintf(buf, sizeof(buf), "%.4f", result.throughput_mops());
  raw("throughput_mops", buf);
  raw("p50_ns", std::to_string(result.latency.Percentile(0.50)));
  raw("p99_ns", std::to_string(result.latency.Percentile(0.99)));
  raw("p999_ns", std::to_string(result.latency.Percentile(0.999)));
  std::snprintf(buf, sizeof(buf), "%.1f", result.latency.MeanNs());
  raw("mean_ns", buf);
  raw("server_stats",
      result.server_stats_json.empty() ? "null" : result.server_stats_json,
      false);
  out += "}";
  return out;
}

}  // namespace server
}  // namespace alt
