file(REMOVE_RECURSE
  "libalt_datasets.a"
)
