// Design-choice ablations for ALT-index (DESIGN.md §4 "ablation benches"):
//  - fast pointer buffer on/off (secondary-search entry point),
//  - dynamic retraining on/off under hot writes,
//  - gapped-array expansion factor sweep (space vs conflict-rate trade),
//  - upper model: pure binary search (paper) vs radix-table acceleration.
#include "core/alt_index.h"

#include "bench_common.h"
#include "common/epoch.h"

using namespace alt;
using namespace alt::bench;

namespace {

RunResult RunAlt(const BenchConfig& cfg, const std::vector<Key>& keys,
                 WorkloadType w, const AltOptions& o, bool hot_write = false) {
  auto index = MakeIndex("alt", o);
  BenchSetup setup;
  if (hot_write) {
    // Reserve a consecutive 20% range for sequential inserts.
    const size_t lo = keys.size() * 2 / 5, hi = keys.size() * 3 / 5;
    for (size_t i = 0; i < keys.size(); ++i) {
      (i >= lo && i < hi ? setup.pool : setup.loaded).push_back(keys[i]);
    }
    std::vector<Value> vals(setup.loaded.size());
    for (size_t i = 0; i < vals.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
    index->BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size());
  } else {
    setup = LoadIndex(index.get(), keys, cfg.bulk_fraction);
  }
  WorkloadOptions opts;
  opts.type = w;
  opts.ops_per_thread = cfg.ops_per_thread;
  opts.zipf_theta = cfg.zipf_theta;
  opts.seed = cfg.seed;
  opts.sequential_inserts = hot_write;
  const auto streams = GenerateOpStreams(setup.loaded, setup.pool, cfg.threads, opts);
  const RunResult r = RunWorkload(index.get(), streams, cfg.scan_length);
  index.reset();
  EpochManager::Global().DrainAll();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  const auto keys = LoadKeys(cfg, Dataset::kOsm);

  PrintHeader("Ablation 1: fast pointer buffer (osm, balanced, Mops/s)",
              {"Config", "Mops/s", "P99.9(us)"});
  for (const bool fp : {true, false}) {
    AltOptions o;
    o.enable_fast_pointers = fp;
    const RunResult r = RunAlt(cfg, keys, WorkloadType::kBalanced, o);
    PrintRow({fp ? "with fast ptr" : "root-only", Fmt(r.throughput_mops),
              Fmt(static_cast<double>(r.p999_ns) / 1000.0)});
  }

  PrintHeader("Ablation 2: dynamic retraining under hot writes (osm, Mops/s)",
              {"Config", "Mops/s", "P99.9(us)"});
  for (const bool retrain : {true, false}) {
    AltOptions o;
    o.enable_retraining = retrain;
    const RunResult r = RunAlt(cfg, keys, WorkloadType::kBalanced, o, true);
    PrintRow({retrain ? "retraining on" : "retraining off", Fmt(r.throughput_mops),
              Fmt(static_cast<double>(r.p999_ns) / 1000.0)});
  }

  PrintHeader("Ablation 3: gap factor sweep (osm, balanced)",
              {"gap", "Mops/s", "ART share", "bytes/key"});
  for (const double gap : {1.2, 1.5, 2.0, 2.5, 3.0}) {
    AltOptions o;
    o.gap_factor = gap;
    const RunResult r = RunAlt(cfg, keys, WorkloadType::kBalanced, o);
    // Structural stats from a fresh load.
    AltIndex probe(o);
    auto setup = SplitDataset(keys, cfg.bulk_fraction);
    std::vector<Value> vals(setup.loaded.size());
    for (size_t i = 0; i < vals.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
    probe.BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size());
    const auto st = probe.CollectStats();
    PrintRow({Fmt(gap, 1), Fmt(r.throughput_mops),
              Fmt(static_cast<double>(st.art_keys) /
                      static_cast<double>(st.art_keys + st.learned_layer_keys),
                  3),
              Fmt(static_cast<double>(st.memory_bytes) /
                      static_cast<double>(setup.loaded.size()),
                  1)});
  }

  PrintHeader("Ablation 4: upper model search (osm, read-only, Mops/s)",
              {"Config", "Mops/s"});
  for (const int bits : {0, 8, 12, 16}) {
    AltOptions o;
    o.upper_radix_bits = bits;
    const RunResult r = RunAlt(cfg, keys, WorkloadType::kReadOnly, o);
    PrintRow({bits == 0 ? "binary search" : ("radix " + std::to_string(bits) + "b"),
              Fmt(r.throughput_mops)});
  }
  return 0;
}
