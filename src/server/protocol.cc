#include "server/protocol.h"

#include <cstring>

namespace alt {
namespace server {

const char* RespStatusName(RespStatus s) {
  switch (s) {
    case RespStatus::kOk: return "ok";
    case RespStatus::kNotFound: return "not_found";
    case RespStatus::kMalformed: return "malformed";
    case RespStatus::kUnsupported: return "unsupported";
    case RespStatus::kTooLarge: return "too_large";
    case RespStatus::kServerError: return "server_error";
  }
  return "unknown";
}

void AppendHeader(std::vector<uint8_t>* out, uint8_t code, uint64_t request_id,
                  uint32_t body_len, uint8_t echo_op) {
  PutU32(out, body_len);
  out->push_back(kProtocolVersion);
  out->push_back(code);
  out->push_back(echo_op);
  out->push_back(0);  // reserved
  PutU64(out, request_id);
}

void AppendGet(std::vector<uint8_t>* out, uint64_t request_id, Key key) {
  AppendHeader(out, static_cast<uint8_t>(Op::kGet), request_id, 8);
  PutU64(out, key);
}

void AppendPut(std::vector<uint8_t>* out, uint64_t request_id, Key key,
               Value value) {
  AppendHeader(out, static_cast<uint8_t>(Op::kPut), request_id, 16);
  PutU64(out, key);
  PutU64(out, value);
}

void AppendDel(std::vector<uint8_t>* out, uint64_t request_id, Key key) {
  AppendHeader(out, static_cast<uint8_t>(Op::kDel), request_id, 8);
  PutU64(out, key);
}

void AppendScan(std::vector<uint8_t>* out, uint64_t request_id, Key start,
                uint32_t count) {
  AppendHeader(out, static_cast<uint8_t>(Op::kScan), request_id, 12);
  PutU64(out, start);
  PutU32(out, count);
}

void AppendStats(std::vector<uint8_t>* out, uint64_t request_id) {
  AppendHeader(out, static_cast<uint8_t>(Op::kStats), request_id, 0);
}

void AppendValueResponse(std::vector<uint8_t>* out, uint64_t request_id,
                         Value value) {
  AppendHeader(out, static_cast<uint8_t>(RespStatus::kOk), request_id, 8,
               static_cast<uint8_t>(Op::kGet));
  PutU64(out, value);
}

void AppendStatusResponse(std::vector<uint8_t>* out, uint64_t request_id,
                          RespStatus status, uint8_t echo_op) {
  AppendHeader(out, static_cast<uint8_t>(status), request_id, 0, echo_op);
}

void AppendPutResponse(std::vector<uint8_t>* out, uint64_t request_id,
                       bool created) {
  AppendHeader(out, static_cast<uint8_t>(RespStatus::kOk), request_id, 1,
               static_cast<uint8_t>(Op::kPut));
  out->push_back(created ? 1 : 0);
}

void AppendScanResponse(std::vector<uint8_t>* out, uint64_t request_id,
                        const std::pair<Key, Value>* pairs, uint32_t n) {
  AppendHeader(out, static_cast<uint8_t>(RespStatus::kOk), request_id,
               4 + n * 16, static_cast<uint8_t>(Op::kScan));
  PutU32(out, n);
  for (uint32_t i = 0; i < n; ++i) {
    PutU64(out, pairs[i].first);
    PutU64(out, pairs[i].second);
  }
}

void AppendStatsResponse(std::vector<uint8_t>* out, uint64_t request_id,
                         const std::string& json) {
  AppendHeader(out, static_cast<uint8_t>(RespStatus::kOk), request_id,
               static_cast<uint32_t>(json.size()),
               static_cast<uint8_t>(Op::kStats));
  out->insert(out->end(), json.begin(), json.end());
}

RespStatus ValidateRequest(const FrameHeader& h) {
  if (h.version != kProtocolVersion) return RespStatus::kUnsupported;
  switch (h.op()) {
    case Op::kGet:
    case Op::kDel:
      return h.body_len == 8 ? RespStatus::kOk : RespStatus::kMalformed;
    case Op::kPut:
      return h.body_len == 16 ? RespStatus::kOk : RespStatus::kMalformed;
    case Op::kScan:
      return h.body_len == 12 ? RespStatus::kOk : RespStatus::kMalformed;
    case Op::kStats:
      return h.body_len == 0 ? RespStatus::kOk : RespStatus::kMalformed;
  }
  return RespStatus::kUnsupported;
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  if (error_ != nullptr || n == 0) return;
  // Reclaim consumed prefix before it dominates the buffer: cheap amortized
  // compaction keeps the decoder O(live bytes) on long-lived connections.
  if (consumed_ > 4096 && consumed_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameDecoder::HasCompleteFrame() const {
  if (error_ != nullptr) return false;
  const size_t avail = buf_.size() - consumed_;
  if (avail < kHeaderBytes) return false;
  const uint32_t body_len = GetU32(buf_.data() + consumed_);
  return body_len <= kMaxBodyLen && avail >= kHeaderBytes + body_len;
}

FrameDecoder::Result FrameDecoder::Next(FrameHeader* header,
                                        const uint8_t** body) {
  if (error_ != nullptr) return Result::kError;
  const size_t avail = buf_.size() - consumed_;
  if (avail < kHeaderBytes) return Result::kNeedMore;
  const uint8_t* p = buf_.data() + consumed_;
  FrameHeader h;
  h.body_len = GetU32(p);
  h.version = p[4];
  h.code = p[5];
  h.echo_op = p[6];
  h.request_id = GetU64(p + 8);
  if (h.body_len > kMaxBodyLen) {
    // Past this point the stream offers no way to find the next frame
    // boundary; the caller must close the connection.
    error_ = "frame body length exceeds kMaxBodyLen";
    return Result::kError;
  }
  if (avail < kHeaderBytes + h.body_len) return Result::kNeedMore;
  *header = h;
  *body = p + kHeaderBytes;
  consumed_ += kHeaderBytes + h.body_len;
  return Result::kFrame;
}

}  // namespace server
}  // namespace alt
