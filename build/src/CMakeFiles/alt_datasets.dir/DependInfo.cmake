
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/dataset.cc" "src/CMakeFiles/alt_datasets.dir/datasets/dataset.cc.o" "gcc" "src/CMakeFiles/alt_datasets.dir/datasets/dataset.cc.o.d"
  "/root/repo/src/datasets/sosd_loader.cc" "src/CMakeFiles/alt_datasets.dir/datasets/sosd_loader.cc.o" "gcc" "src/CMakeFiles/alt_datasets.dir/datasets/sosd_loader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
