#include "core/alt_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/epoch.h"
#include "common/metrics.h"
#include "common/spinlock.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/gpl.h"

namespace alt {

namespace {

using metrics::Counter;

// Merge two ascending (key, value) runs, truncating at `limit`. Each run may
// briefly contain a key the other also holds (a migration or write-back can
// move a key between the learned layer and ART mid-collection), so equal keys
// are emitted once — the first observed copy wins.
void MergePairs(std::vector<std::pair<Key, Value>>& a,
                std::vector<std::pair<Key, Value>>& b, size_t limit,
                std::vector<std::pair<Key, Value>>* out) {
  out->clear();
  out->reserve(std::min(limit, a.size() + b.size()));
  size_t i = 0, j = 0;
  while (out->size() < limit && (i < a.size() || j < b.size())) {
    std::pair<Key, Value> next;
    if (j >= b.size() || (i < a.size() && a[i].first <= b[j].first)) {
      next = a[i++];
    } else {
      next = b[j++];
    }
    if (!out->empty() && out->back().first == next.first) continue;
    out->push_back(next);
  }
}

// Drop all but the first copy of each key from the sorted tail [begin, end) of
// `v` (§III-F scan dedupe: during an expansion the old model and the temporal
// buffer are collected over the same key range, and a key migrated between the
// two per-slot-atomic collection passes appears in both).
void DedupeSortedTail(std::vector<std::pair<Key, Value>>* v, size_t begin) {
  auto first = v->begin() + static_cast<ptrdiff_t>(begin);
  v->erase(std::unique(first, v->end(),
                       [](const auto& x, const auto& y) { return x.first == y.first; }),
           v->end());
}

// Terminal accounting for lookups the learned layer answers by itself.
inline bool FinishLearnedHit(ServedBy* served) {
  metrics::Inc(Counter::kLearnedHits);
  SetServed(served, ServedBy::kLearnedSlot);
  return true;
}

inline bool FinishLearnedNegative(ServedBy* served) {
  metrics::Inc(Counter::kLearnedNegatives);
  SetServed(served, ServedBy::kLearnedNegative);
  return false;
}

}  // namespace

AltIndex::AltIndex(AltOptions options)
    : options_(options),
      epoch_(options_.epoch_manager != nullptr ? options_.epoch_manager
                                               : &EpochManager::Global()),
      directory_(epoch_),
      art_(epoch_) {
  if (options_.enable_fast_pointers) art_.SetListener(&fp_buffer_);
}

AltIndex::~AltIndex() = default;

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

Status AltIndex::BulkLoad(const std::vector<std::pair<Key, Value>>& sorted_pairs) {
  std::vector<Key> keys(sorted_pairs.size());
  std::vector<Value> values(sorted_pairs.size());
  for (size_t i = 0; i < sorted_pairs.size(); ++i) {
    keys[i] = sorted_pairs[i].first;
    values[i] = sorted_pairs[i].second;
  }
  return BulkLoad(keys.data(), values.data(), keys.size());
}

Status AltIndex::BulkLoad(const Key* keys, const Value* values, size_t n) {
  const Stopwatch load_clock;
  trace::Span span("bulk_load", "build", n);
  if (directory_.NumModels() != 0) {
    return Status::InvalidArgument("BulkLoad may only run once");
  }
  if (n == 0) {
    // Empty load: publish one tail-like model spanning the whole keyspace so
    // every operation has a routing target from the start. Runtime inserts
    // land at predicted slots (or ART on conflict) exactly as they would
    // behind a §III-F tail model. Sharded deployments rely on this: a range
    // partition may leave shards with no bulk keys.
    epsilon_ = options_.EffectiveErrorBound(0);
    const uint32_t slots = options_.tail_model_slots;
    const double slope =
        static_cast<double>(slots) / static_cast<double>(~Key{0});
    auto* model = new GplModel(0, slope, slots, slots / 2, ~Key{0},
                               options_.use_huge_pages);
    if (options_.enable_fast_pointers) {
      const int32_t slot = fp_buffer_.AddPointer(art_.root(), 0, 0);
      model->set_fp_index(slot);
    }
    directory_.Build({model}, options_.upper_radix_bits);
    metrics::SetGauge(metrics::Gauge::kNumModels, 1);
    metrics::RecordEvent(metrics::EventType::kBulkLoad, load_clock.ElapsedNanos(), 0);
    return Status::OK();
  }
  for (size_t i = 1; i < n; ++i) {
    if (keys[i] <= keys[i - 1]) {
      return Status::InvalidArgument("keys must be sorted and duplicate-free");
    }
  }

  epsilon_ = options_.EffectiveErrorBound(n);
  const std::vector<Segment> segments = GplSegment(keys, n, epsilon_);

  std::vector<GplModel*> models;
  models.reserve(segments.size());
  std::vector<std::pair<Key, Value>> conflicts;

  for (const Segment& seg : segments) {
    const Key first = keys[seg.start];
    const Key last = keys[seg.start + seg.length - 1];
    const double scaled_slope = seg.slope * options_.gap_factor;
    uint64_t slots = 1;
    if (seg.length >= 2 && scaled_slope > 0) {
      const double span = static_cast<double>(last - first);
      slots = static_cast<uint64_t>(scaled_slope * span) + 2;
    }
    // Safety clamp: predicted span is ~gap_factor * length by construction of
    // the GPL slope; a generous cap guards degenerate doubles.
    const uint64_t cap =
        static_cast<uint64_t>(options_.gap_factor * static_cast<double>(seg.length)) +
        2 * static_cast<uint64_t>(epsilon_) + 16;
    if (slots > cap) slots = cap;
    auto* model = new GplModel(first, scaled_slope, static_cast<uint32_t>(slots),
                               static_cast<uint32_t>(seg.length), ~Key{0},
                               options_.use_huge_pages);
    for (size_t i = 0; i < seg.length; ++i) {
      const Key k = keys[seg.start + i];
      const Value v = values[seg.start + i];
      GplSlot& s = model->slot(model->Predict(k));
      // Bulk load is single-threaded, but writing under the slot lock keeps
      // the key/value stores inside the capability the analysis checks (the
      // uncontended CAS costs nothing next to the O(n) load itself).
      const uint32_t lw = s.word.Lock();
      if (SlotWord::StateOf(lw) == SlotState::kEmpty) {
        s.key.store(k, std::memory_order_relaxed);
        s.value.store(v, std::memory_order_relaxed);
        s.word.Unlock(lw, SlotState::kOccupied);
      } else {
        s.word.Unlock(lw, SlotWord::StateOf(lw));
        // Prediction conflict: peeled out to ART-OPT (§III-A).
        conflicts.emplace_back(k, v);
      }
    }
    models.push_back(model);
  }

  for (const auto& [k, v] : conflicts) {
    EpochGuard g(*epoch_);
    art_.Insert(k, v);
  }

  directory_.Build(std::move(models), options_.upper_radix_bits);

  if (options_.enable_fast_pointers) {
    // §III-C1: for each pair of adjacent GPL models, point at the deepest ART
    // node covering the model's key range; duplicates are merged.
    const ModelDirectory::Snapshot* snap = directory_.snapshot();
    const size_t m = snap->first_keys.size();
    for (size_t i = 0; i < m; ++i) {
      const Key lo = snap->first_keys[i];
      const Key hi = (i + 1 < m) ? snap->first_keys[i + 1] - 1 : ~Key{0};
      int depth = 0;
      art::Node* lca = art_.FindLcaNode(lo, hi, &depth);
      const int32_t slot = fp_buffer_.AddPointer(lca, depth, KeyPrefix(lo, depth));
      snap->models[i].load(std::memory_order_relaxed)->set_fp_index(slot);
    }
  }

  size_.store(n, std::memory_order_relaxed);
  metrics::SetGauge(metrics::Gauge::kNumModels,
                    static_cast<int64_t>(directory_.NumModels()));
  metrics::RecordEvent(metrics::EventType::kBulkLoad, load_clock.ElapsedNanos(), n);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Slot probing and ART-OPT access
// ---------------------------------------------------------------------------

AltIndex::Probe AltIndex::ProbeSlot(const GplModel* model, Key key, Value* out,
                                    const GplSlot** slot_out,
                                    uint32_t* word_out) const ALT_REQUIRES_EPOCH {
  if (key >= model->coverage_end()) {
    // Out-of-coverage keys are never stored in slots (see GplModel ctor doc);
    // ART is their authoritative home and there is no slot to validate.
    *slot_out = nullptr;
    *word_out = 0;
    return Probe::kGoArt;
  }
  const GplSlot& s = model->slot(model->Predict(key));
  *slot_out = &s;
  for (;;) {
    const uint32_t w = s.word.Read();
    *word_out = w;
    switch (SlotWord::StateOf(w)) {
      case SlotState::kEmpty:
        return Probe::kEmpty;
      case SlotState::kMigrated:
        return Probe::kMigrated;
      case SlotState::kTombstone:
        return Probe::kGoArtTombstone;
      case SlotState::kOccupied: {
        const Key k = s.OptimisticKey();
        const Value v = s.OptimisticValue();
        if (!s.word.Validate(w)) break;  // writer raced; re-read
        if (k == key) {
          if (out != nullptr) *out = v;
          return Probe::kHit;
        }
        return Probe::kGoArt;
      }
    }
    if (SlotWord::StateOf(w) != SlotState::kOccupied) break;
  }
  // unreachable; loop either returns or re-reads
  return Probe::kEmpty;
}

bool AltIndex::ArtLookup(const GplModel* model, Key key, Value* out,
                         ServedBy* served) const ALT_REQUIRES_EPOCH {
  int steps = 0;
  bool found = false;
  bool used_hint = false;
  const int32_t fpi = model->fp_index();
  if (options_.enable_fast_pointers && fpi >= 0) {
    const FastPointerBuffer::Ref ref = fp_buffer_.Get(fpi);
    if (ref.node != nullptr && FastPointerBuffer::Covers(ref, key)) {
      used_hint = true;
      const art::HintOutcome r = art_.LookupFrom(ref.node, key, out, &steps);
      if (r == art::HintOutcome::kFound) {
        found = true;
        metrics::Inc(Counter::kFastPointerHits);
        metrics::FpDepthHit(ref.depth);
        SetServed(served, FpDepthTag(ref.depth));
      } else {
        // Miss within the hinted subtree is not authoritative under races
        // (an SMO may have momentarily moved the key above the hint).
        metrics::Inc(Counter::kArtRootFallbacks);
        found = art_.Lookup(key, out, &steps);
        SetServed(served, found ? ServedBy::kArtRoot : ServedBy::kArtNegative);
      }
    }
  }
  if (!used_hint) {
    found = art_.Lookup(key, out, &steps);
    SetServed(served, found ? ServedBy::kArtRoot : ServedBy::kArtNegative);
  }
  metrics::Inc(Counter::kArtLookups);
  metrics::Inc(Counter::kArtLookupSteps, static_cast<uint64_t>(steps));
  return found;
}

bool AltIndex::ArtInsert(GplModel* model, Key key,
                         Value value) ALT_REQUIRES_EPOCH {
  const int32_t fpi = model->fp_index();
  if (options_.enable_fast_pointers && fpi >= 0) {
    const FastPointerBuffer::Ref ref = fp_buffer_.Get(fpi);
    if (ref.node != nullptr && FastPointerBuffer::Covers(ref, key)) {
      const art::HintOutcome r = art_.InsertFrom(ref.node, key, value);
      if (r == art::HintOutcome::kInserted) {
        metrics::Inc(Counter::kConflictInserts);
        return true;
      }
      if (r == art::HintOutcome::kExists) return false;
      // kNeedRoot: the SMO involves the hint node itself — the root-based
      // insert below performs it and the listener refreshes the entry.
    }
  }
  const bool inserted = art_.Insert(key, value);
  if (inserted) metrics::Inc(Counter::kConflictInserts);
  return inserted;
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

bool AltIndex::Lookup(Key key, Value* out) const {
  EpochGuard g(*epoch_);
  return LookupInternal(key, out);
}

bool AltIndex::Lookup(Key key, Value* out, ServedBy* served) const {
  EpochGuard g(*epoch_);
  return LookupInternal(key, out, served);
}

bool AltIndex::LookupInternal(Key key, Value* out, ServedBy* served) const {
  ALT_ASSERT_EPOCH_PINNED("AltIndex::LookupInternal", *epoch_);
  for (;;) {
    const ModelDirectory::Snapshot* snap = directory_.snapshot();
    const size_t idx = ModelDirectory::Locate(*snap, key);
    GplModel* model = snap->models[idx].load(std::memory_order_acquire);
    Expansion* exp = model->expansion();

    const GplSlot* slot = nullptr;
    uint32_t word = 0;
    Probe p = ProbeSlot(model, key, out, &slot, &word);
    if (p == Probe::kHit) return FinishLearnedHit(served);

    if (slot == nullptr && exp != nullptr) {
      // Coverage gap (§III-F): the temporal buffer spans slightly more key
      // space than the old model (span grows by half a slot), so during an
      // expansion a key beyond the old coverage may live in a temporal slot.
      p = ProbeSlot(exp->new_model, key, out, &slot, &word);
      if (p == Probe::kHit) return FinishLearnedHit(served);
      if (p == Probe::kMigrated) continue;  // stale snapshot: re-route
      if (p == Probe::kEmpty && exp->new_model->strict_empty()) {
        return FinishLearnedNegative(served);
      }
      // Otherwise fall through to ART with the temporal slot as the routed
      // slot (or none if the key is beyond the temporal coverage too).
    } else if (p == Probe::kEmpty) {
      if (exp == nullptr) {
        // Zero-error invariant: an EMPTY predicted slot proves absence —
        // unless the model's invariant is suspended (fresh tail model).
        if (model->strict_empty()) return FinishLearnedNegative(served);
      } else {
        // §III-F: new inserts land in the temporal buffer.
        p = ProbeSlot(exp->new_model, key, out, &slot, &word);
        if (p == Probe::kHit) return FinishLearnedHit(served);
        if (p == Probe::kMigrated) continue;  // stale snapshot: re-route
        if (p == Probe::kEmpty && exp->new_model->strict_empty()) {
          return FinishLearnedNegative(served);
        }
        // Pre-sweep temporal slot: fall through to ART.
      }
    } else if (p == Probe::kMigrated) {
      p = ProbeSlot(exp != nullptr ? exp->new_model : model, key, out, &slot,
                    &word);
      if (p == Probe::kHit) return FinishLearnedHit(served);
      if (p == Probe::kMigrated) continue;  // stale snapshot: re-route
      if (p == Probe::kEmpty &&
          (exp == nullptr || exp->new_model->strict_empty())) {
        return FinishLearnedNegative(served);
      }
    }

    // Secondary search in ART-OPT (replaces error-correction, §III-A).
    Value art_value = 0;
    if (ArtLookup(model, key, &art_value, served)) {
      if (out != nullptr) *out = art_value;
      // Write-back scheme (Alg. 2 lines 10-13): a tombstoned predicted slot
      // re-adopts its key from ART. Skipped during expansion (§III-F owns
      // slot transitions then).
      if (p == Probe::kGoArtTombstone && exp == nullptr) {
        auto* ms = const_cast<GplSlot*>(slot);
        const uint32_t lw = ms->word.Lock();
        if (SlotWord::StateOf(lw) == SlotState::kTombstone) {
          Value moved = 0;
          if (const_cast<art::ArtTree&>(art_).Remove(key, &moved)) {
            ms->key.store(key, std::memory_order_relaxed);
            ms->value.store(moved, std::memory_order_relaxed);
            ms->word.Unlock(lw, SlotState::kOccupied);
            metrics::Inc(Counter::kWriteBacks);
            if (out != nullptr) *out = moved;
            return true;
          }
        }
        ms->word.Unlock(lw, SlotWord::StateOf(lw));
      }
      return true;
    }

    // ART miss: re-validate the slot we routed from; a concurrent write-back
    // or migration may have moved the key while we searched. Out-of-coverage
    // probes have no slot — re-validate the routing instead (a tail append
    // may have taken over the range).
    if (slot != nullptr) {
      if (slot->word.Validate(word)) return false;
    } else {
      const ModelDirectory::Snapshot* snap2 = directory_.snapshot();
      if (snap2->models[ModelDirectory::Locate(*snap2, key)].load(
              std::memory_order_acquire) == model) {
        return false;
      }
    }
    // else: retry the whole lookup
  }
}

// ---------------------------------------------------------------------------
// Insert / Upsert
// ---------------------------------------------------------------------------

bool AltIndex::Insert(Key key, Value value) {
  EpochGuard g(*epoch_);
  return InsertInternal(key, value);
}

bool AltIndex::Insert(Key key, Value value, ServedBy* served) {
  EpochGuard g(*epoch_);
  return InsertInternal(key, value, served);
}

bool AltIndex::Upsert(Key key, Value value) {
  EpochGuard g(*epoch_);
  for (;;) {
    if (InsertInternal(key, value)) return true;   // newly inserted
    if (UpdateInternal(key, value)) return false;  // overwrote existing
    // The key vanished between the exists check and the update; retry.
  }
}

bool AltIndex::InsertInternal(Key key, Value value, ServedBy* served) {
  ALT_ASSERT_EPOCH_PINNED("AltIndex::InsertInternal", *epoch_);
  for (;;) {
    const ModelDirectory::Snapshot* snap = directory_.snapshot();
    const size_t idx = ModelDirectory::Locate(*snap, key);
    GplModel* model = snap->models[idx].load(std::memory_order_acquire);
    Expansion* exp = model->expansion();

    if (exp != nullptr) {
      bool retry = false;
      const bool ok = InsertExpanding(model, exp, key, value, &retry);
      if (retry) continue;
      SetServed(served, ServedBy::kExpansionPath);
      return ok;
    }

    if (key >= model->coverage_end()) {
      // Out-of-coverage keys live exclusively in ART (no slot state).
      SetServed(served, ServedBy::kConflictInsert);
      if (!ArtInsert(model, key, value)) return false;
      size_.fetch_add(1, std::memory_order_relaxed);
      model->BumpInsertCount();
      MaybeTriggerExpansion(model);
      EnsureArtKeyVisible(key);
      return true;
    }

    GplSlot& s = model->slot(model->Predict(key));
    const uint32_t w = s.word.Read();
    switch (SlotWord::StateOf(w)) {
      case SlotState::kEmpty: {
        if (!model->strict_empty()) {
          // Suspended invariant (fresh tail model): the key may still sit in
          // ART; check before placing, then re-validate the slot so a racing
          // write-back sweep is observed.
          Value existing = 0;
          if (ArtLookup(model, key, &existing)) {
            if (!s.word.Validate(w)) continue;
            SetServed(served, ServedBy::kArtRoot);
            return false;  // exists in ART
          }
          if (!s.word.Validate(w)) continue;
        }
        const uint32_t lw = s.word.Lock();
        if (SlotWord::StateOf(lw) != SlotState::kEmpty) {
          s.word.Unlock(lw, SlotWord::StateOf(lw));
          continue;  // slot changed underneath; retry from the top
        }
        // Re-check the expansion under the slot lock: if one was installed
        // since `exp` was read, a concurrent insert may already have placed a
        // conflicting key in the temporal buffer while this slot was EMPTY.
        // Occupying it now would shadow that key behind the occupied → ART
        // route and strand it (lookups would never probe the buffer). The
        // lock acquisition is an RMW, so any install visible to a writer
        // that saw this slot EMPTY is visible to this load too.
        if (model->expansion() != nullptr) {
          s.word.Unlock(lw, SlotState::kEmpty);
          continue;  // retry routes through InsertExpanding
        }
        s.key.store(key, std::memory_order_relaxed);
        s.value.store(value, std::memory_order_relaxed);
        s.word.Unlock(lw, SlotState::kOccupied);
        metrics::Inc(Counter::kSlotInserts);
        size_.fetch_add(1, std::memory_order_relaxed);
        model->BumpInsertCount();
        MaybeTriggerExpansion(model);
        SetServed(served, ServedBy::kSlotInsert);
        return true;
      }
      case SlotState::kOccupied: {
        const Key k = s.OptimisticKey();
        if (!s.word.Validate(w)) continue;
        if (k == key) {
          SetServed(served, ServedBy::kLearnedSlot);
          return false;  // exists in place
        }
        // Conflict: the key belongs in ART-OPT.
        SetServed(served, ServedBy::kConflictInsert);
        if (ArtInsert(model, key, value)) {
          size_.fetch_add(1, std::memory_order_relaxed);
          model->BumpInsertCount();
          MaybeTriggerExpansion(model);
          EnsureArtKeyVisible(key);
          return true;
        }
        return false;  // exists in ART
      }
      case SlotState::kTombstone: {
        // Tombstone inserts route to ART (ART's insert is atomic w.r.t.
        // duplicates; writing in place here would race the write-back).
        SetServed(served, ServedBy::kConflictInsert);
        if (ArtInsert(model, key, value)) {
          size_.fetch_add(1, std::memory_order_relaxed);
          model->BumpInsertCount();
          MaybeTriggerExpansion(model);
          EnsureArtKeyVisible(key);
          return true;
        }
        return false;
      }
      case SlotState::kMigrated:
        continue;  // expansion appeared; retry picks it up
    }
  }
}

bool AltIndex::InsertExpanding(GplModel* model, Expansion* exp, Key key,
                               Value value, bool* retry) ALT_REQUIRES_EPOCH {
  *retry = false;
  GplModel* nm = exp->new_model;
  if (key >= nm->coverage_end()) {
    // The temporal buffer will not store this key; it belongs in ART. The
    // old model's clamp slot may still hold it from before the expansion —
    // check for a duplicate there first.
    if (key < model->coverage_end()) {
      const GplSlot& os = model->slot(model->Predict(key));
      for (;;) {
        const uint32_t ow = os.word.Read();
        if (SlotWord::StateOf(ow) != SlotState::kOccupied) break;
        const Key ok_key = os.OptimisticKey();
        if (!os.word.Validate(ow)) continue;
        if (ok_key == key) return false;  // exists in the old model
        break;
      }
    }
    if (!ArtInsert(nm, key, value)) return false;
    size_.fetch_add(1, std::memory_order_relaxed);
    exp->new_inserts.fetch_add(1, std::memory_order_relaxed);
    MaybeFinishExpansion(model, exp);
    EnsureArtKeyVisible(key);
    return true;
  }
  GplSlot& s = model->slot(model->Predict(key));
  const uint32_t w = s.word.Read();
  switch (SlotWord::StateOf(w)) {
    case SlotState::kOccupied: {
      const uint32_t lw = s.word.Lock();
      if (SlotWord::StateOf(lw) != SlotState::kOccupied) {
        s.word.Unlock(lw, SlotWord::StateOf(lw));
        *retry = true;
        return false;
      }
      const Key okey = s.key.load(std::memory_order_relaxed);
      const Value oval = s.value.load(std::memory_order_relaxed);
      if (okey == key) {
        s.word.Unlock(lw, SlotState::kOccupied);
        return false;  // exists in place
      }
      // §III-F step 2: evict the old occupant to the temporal buffer, then
      // place the new key there too.
      MigrateInto(exp->new_model, okey, oval);
      s.word.Unlock(lw, SlotState::kMigrated);
      return InsertIntoNewModel(model, exp, key, value, retry);
    }
    case SlotState::kTombstone: {
      const uint32_t lw = s.word.Lock();
      if (SlotWord::StateOf(lw) != SlotState::kTombstone) {
        s.word.Unlock(lw, SlotWord::StateOf(lw));
        *retry = true;
        return false;
      }
      s.word.Unlock(lw, SlotState::kMigrated);  // nothing to move
      return InsertIntoNewModel(model, exp, key, value, retry);
    }
    case SlotState::kEmpty:
    case SlotState::kMigrated:
      return InsertIntoNewModel(model, exp, key, value, retry);
  }
  *retry = true;
  return false;
}

void AltIndex::MigrateInto(GplModel* new_model, Key key,
                           Value value) ALT_REQUIRES_EPOCH {
  if (key >= new_model->coverage_end()) {
    // Pre-expansion clamp-slot resident beyond the new coverage: its home is
    // now ART (a future tail model takes the range over from there).
    const bool ok = ArtInsert(new_model, key, value);
    assert(ok && "migrated victim unexpectedly present in ART");
    (void)ok;
    return;
  }
  GplSlot& s = new_model->slot(new_model->Predict(key));
  const uint32_t lw = s.word.Lock();
  if (SlotWord::StateOf(lw) == SlotState::kEmpty) {
    s.key.store(key, std::memory_order_relaxed);
    s.value.store(value, std::memory_order_relaxed);
    s.word.Unlock(lw, SlotState::kOccupied);
    return;
  }
  s.word.Unlock(lw, SlotWord::StateOf(lw));
  // Conflict in the temporal buffer too: the victim goes to ART-OPT. Victims
  // are unique keys that lived only in the old model, so this cannot collide.
  const bool ok = ArtInsert(new_model, key, value);
  assert(ok && "migrated victim unexpectedly present in ART");
  (void)ok;
}

bool AltIndex::InsertIntoNewModel(GplModel* old_model, Expansion* exp, Key key,
                                  Value value, bool* retry) ALT_REQUIRES_EPOCH {
  GplModel* nm = exp->new_model;
  assert(key < nm->coverage_end() && "routed by InsertExpanding");
  for (;;) {
    GplSlot& s = nm->slot(nm->Predict(key));
    const uint32_t w = s.word.Read();
    switch (SlotWord::StateOf(w)) {
      case SlotState::kEmpty: {
        // While expanding, the zero-error invariant is suspended: the key may
        // still sit in ART from before the expansion. Check before placing.
        if (!nm->strict_empty()) {
          Value existing = 0;
          if (ArtLookup(nm, key, &existing)) {
            // Re-validate: if the slot changed, the write-back sweep may have
            // just moved a key here; retry to observe the final state.
            if (!s.word.Validate(w)) continue;
            return false;  // exists in ART
          }
          if (!s.word.Validate(w)) continue;
        }
        const uint32_t lw = s.word.Lock();
        if (SlotWord::StateOf(lw) != SlotState::kEmpty) {
          s.word.Unlock(lw, SlotWord::StateOf(lw));
          continue;
        }
        // Same TOCTOU guard as the non-expanding insert: `nm` may have been
        // published and started its own expansion, in which case this key
        // must go through that expansion's routing, not occupy a slot here.
        if (nm->expansion() != nullptr) {
          s.word.Unlock(lw, SlotState::kEmpty);
          *retry = true;
          return false;
        }
        s.key.store(key, std::memory_order_relaxed);
        s.value.store(value, std::memory_order_relaxed);
        s.word.Unlock(lw, SlotState::kOccupied);
        metrics::Inc(Counter::kSlotInserts);
        size_.fetch_add(1, std::memory_order_relaxed);
        exp->new_inserts.fetch_add(1, std::memory_order_relaxed);
        MaybeFinishExpansion(old_model, exp);
        return true;
      }
      case SlotState::kOccupied: {
        const Key k = s.OptimisticKey();
        if (!s.word.Validate(w)) continue;
        if (k == key) return false;  // exists in place
        if (ArtInsert(nm, key, value)) {
          size_.fetch_add(1, std::memory_order_relaxed);
          exp->new_inserts.fetch_add(1, std::memory_order_relaxed);
          MaybeFinishExpansion(old_model, exp);
          EnsureArtKeyVisible(key);
          return true;
        }
        return false;
      }
      case SlotState::kTombstone: {
        if (ArtInsert(nm, key, value)) {
          size_.fetch_add(1, std::memory_order_relaxed);
          exp->new_inserts.fetch_add(1, std::memory_order_relaxed);
          MaybeFinishExpansion(old_model, exp);
          EnsureArtKeyVisible(key);
          return true;
        }
        return false;
      }
      case SlotState::kMigrated:
        // The temporal buffer was published and is itself expanding; this
        // caller is working off a stale snapshot — re-route from the top.
        *retry = true;
        return false;
    }
  }
}

// ---------------------------------------------------------------------------
// Update / Remove
// ---------------------------------------------------------------------------

bool AltIndex::Update(Key key, Value value) {
  EpochGuard g(*epoch_);
  return UpdateInternal(key, value);
}

bool AltIndex::Update(Key key, Value value, ServedBy* served) {
  EpochGuard g(*epoch_);
  return UpdateInternal(key, value, served);
}

bool AltIndex::UpdateInternal(Key key, Value value, ServedBy* served) {
  ALT_ASSERT_EPOCH_PINNED("AltIndex::UpdateInternal", *epoch_);
  for (;;) {
    const ModelDirectory::Snapshot* snap = directory_.snapshot();
    const size_t idx = ModelDirectory::Locate(*snap, key);
    GplModel* model = snap->models[idx].load(std::memory_order_acquire);
    Expansion* exp = model->expansion();

    GplModel* targets[2] = {model, exp != nullptr ? exp->new_model : nullptr};
    const GplSlot* routed_slot = nullptr;
    uint32_t routed_word = 0;
    bool decided = false;

    for (GplModel* t : targets) {
      if (t == nullptr || decided) continue;
      if (key >= t->coverage_end()) {
        // Coverage gap (§III-F): the temporal buffer spans slightly more key
        // space than the old model, so consult it before declaring ART the
        // authoritative home.
        if (t == model && exp != nullptr) continue;
        routed_slot = nullptr;  // no slot: ART is the authoritative home
        decided = true;
        continue;
      }
      GplSlot& s = t->slot(t->Predict(key));
      for (;;) {
        const uint32_t w = s.word.Read();
        const SlotState st = SlotWord::StateOf(w);
        if (st == SlotState::kOccupied) {
          const Key k = s.OptimisticKey();
          if (!s.word.Validate(w)) continue;
          if (k == key) {
            const uint32_t lw = s.word.Lock();
            if (SlotWord::StateOf(lw) != SlotState::kOccupied ||
                s.key.load(std::memory_order_relaxed) != key) {
              s.word.Unlock(lw, SlotWord::StateOf(lw));
              break;  // changed underneath; retry from the top
            }
            s.value.store(value, std::memory_order_relaxed);
            s.word.Unlock(lw, SlotState::kOccupied);
            SetServed(served, ServedBy::kLearnedSlot);
            return true;
          }
          routed_slot = &s;
          routed_word = w;
          decided = true;
          break;
        }
        if (st == SlotState::kTombstone) {
          routed_slot = &s;
          routed_word = w;
          decided = true;
          break;
        }
        if (st == SlotState::kMigrated) break;  // consult next target
        // kEmpty:
        if (t == model && exp != nullptr) break;  // check temporal buffer
        if (t->strict_empty()) {
          SetServed(served, ServedBy::kLearnedNegative);
          return false;  // authoritative absence
        }
        routed_slot = &s;
        routed_word = w;
        decided = true;
        break;
      }
    }

    if (!decided) continue;  // slot changed underneath or all-migrated: retry

    if (art_.Update(key, value)) {
      SetServed(served, ServedBy::kArtRoot);
      return true;
    }
    if (routed_slot != nullptr) {
      if (!routed_slot->word.Validate(routed_word)) continue;
    } else {
      const ModelDirectory::Snapshot* snap2 = directory_.snapshot();
      if (snap2->models[ModelDirectory::Locate(*snap2, key)].load(
              std::memory_order_acquire) != model) {
        continue;  // routing changed (tail appended); retry
      }
    }
    SetServed(served, ServedBy::kArtNegative);
    return false;
  }
}

bool AltIndex::Remove(Key key) {
  EpochGuard g(*epoch_);
  return RemoveInternal(key);
}

bool AltIndex::Remove(Key key, ServedBy* served) {
  EpochGuard g(*epoch_);
  return RemoveInternal(key, served);
}

bool AltIndex::RemoveInternal(Key key, ServedBy* served) {
  ALT_ASSERT_EPOCH_PINNED("AltIndex::RemoveInternal", *epoch_);
  for (;;) {
    const ModelDirectory::Snapshot* snap = directory_.snapshot();
    const size_t idx = ModelDirectory::Locate(*snap, key);
    GplModel* model = snap->models[idx].load(std::memory_order_acquire);
    Expansion* exp = model->expansion();

    GplModel* targets[2] = {model, exp != nullptr ? exp->new_model : nullptr};
    const GplSlot* routed_slot = nullptr;
    uint32_t routed_word = 0;
    bool decided = false;

    for (GplModel* t : targets) {
      if (t == nullptr || decided) continue;
      if (key >= t->coverage_end()) {
        // Coverage gap (§III-F): the temporal buffer spans slightly more key
        // space than the old model, so consult it before declaring ART the
        // authoritative home.
        if (t == model && exp != nullptr) continue;
        routed_slot = nullptr;  // no slot: ART is the authoritative home
        decided = true;
        continue;
      }
      GplSlot& s = t->slot(t->Predict(key));
      for (;;) {
        const uint32_t w = s.word.Read();
        const SlotState st = SlotWord::StateOf(w);
        if (st == SlotState::kOccupied) {
          const Key k = s.OptimisticKey();
          if (!s.word.Validate(w)) continue;
          if (k == key) {
            const uint32_t lw = s.word.Lock();
            if (SlotWord::StateOf(lw) != SlotState::kOccupied ||
                s.key.load(std::memory_order_relaxed) != key) {
              s.word.Unlock(lw, SlotWord::StateOf(lw));
              break;
            }
            // In-place delete leaves a tombstone (§III-G): conflicting keys
            // in ART rely on this slot staying non-empty.
            s.word.Unlock(lw, SlotState::kTombstone);
            size_.fetch_sub(1, std::memory_order_relaxed);
            SetServed(served, ServedBy::kLearnedSlot);
            return true;
          }
          routed_slot = &s;
          routed_word = w;
          decided = true;
          break;
        }
        if (st == SlotState::kTombstone) {
          routed_slot = &s;
          routed_word = w;
          decided = true;
          break;
        }
        if (st == SlotState::kMigrated) break;
        // kEmpty:
        if (t == model && exp != nullptr) break;
        if (t->strict_empty()) {
          SetServed(served, ServedBy::kLearnedNegative);
          return false;  // authoritative absence
        }
        routed_slot = &s;
        routed_word = w;
        decided = true;
        break;
      }
    }

    if (!decided) continue;  // slot changed underneath or all-migrated: retry

    if (art_.Remove(key)) {
      size_.fetch_sub(1, std::memory_order_relaxed);
      SetServed(served, ServedBy::kArtRoot);
      return true;
    }
    if (routed_slot != nullptr) {
      if (!routed_slot->word.Validate(routed_word)) continue;
    } else {
      const ModelDirectory::Snapshot* snap2 = directory_.snapshot();
      if (snap2->models[ModelDirectory::Locate(*snap2, key)].load(
              std::memory_order_acquire) != model) {
        continue;  // routing changed (tail appended); retry
      }
    }
    SetServed(served, ServedBy::kArtNegative);
    return false;
  }
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

size_t AltIndex::Scan(Key start, size_t count,
                      std::vector<std::pair<Key, Value>>* out) const {
  out->clear();
  if (count == 0) return 0;
  EpochGuard g(*epoch_);
  metrics::Inc(Counter::kScanOps);

  std::vector<std::pair<Key, Value>> learned;
  std::vector<std::pair<Key, Value>> art_items;
  for (;;) {
    // Write-back seqlock read side: a concurrent ART→slot write-back could
    // move a key out of ART after its (EMPTY) slot was already collected,
    // hiding it from both layers of this composite read. Redo the collection
    // if a write-back was active at any point during it (see
    // WriteBackSection; point lookups use per-slot word validation instead).
    const uint64_t wb_gen = write_back_gen_.load(std::memory_order_acquire);
    if (write_backs_active_.load(std::memory_order_acquire) != 0) {
      CpuRelax();
      continue;
    }
    learned.clear();
    art_items.clear();
    const ModelDirectory::Snapshot* snap = directory_.snapshot();
    const size_t num_models = snap->first_keys.size();
    for (size_t i = ModelDirectory::Locate(*snap, start);
         i < num_models && learned.size() < count; ++i) {
      GplModel* model = snap->models[i].load(std::memory_order_acquire);
      const size_t before = learned.size();
      model->CollectRange(start, ~Key{0}, &learned, count);
      bool expanded = false;
      // Walk the whole §III-F expansion chain, not just one level: under
      // churn the temporal buffer may itself be expanding (its old slots are
      // marked kMigrated, so they no longer show up as occupied), and a
      // one-level walk would skip every key already migrated to the second
      // level. The chain passes also run uncapped — their `limit` counts
      // pairs appended per call, so a `count` cap would drop migrated keys
      // inside the window whenever a buffer holds more than `count`
      // residents; cost is bounded by the chain's residents, and excess is
      // truncated downstream.
      for (Expansion* e = model->expansion(); e != nullptr;
           e = e->new_model->expansion()) {
        e->new_model->CollectRange(start, ~Key{0}, &learned);
        expanded = true;
      }
      if (expanded) {
        std::sort(learned.begin() + static_cast<ptrdiff_t>(before), learned.end());
        // A key migrated to the temporal buffer between two per-slot-atomic
        // collection passes is observed by both; keep the first copy.
        DedupeSortedTail(&learned, before);
      }
    }
    // Keys in the learned layer are slot-ordered per model and models are
    // disjoint and ascending, so `learned` is sorted.
    const Key hi = learned.size() >= count ? learned[count - 1].first : ~Key{0};

    art_.RangeQuery(start, hi, &art_items);
    if (write_back_gen_.load(std::memory_order_acquire) == wb_gen) break;
  }

  MergePairs(learned, art_items, count, out);
  if (out->empty()) metrics::Inc(Counter::kEmptyScans);
  return out->size();
}

size_t AltIndex::RangeQuery(Key lo, Key hi,
                            std::vector<std::pair<Key, Value>>* out) const {
  out->clear();
  if (hi < lo) return 0;
  EpochGuard g(*epoch_);
  metrics::Inc(Counter::kScanOps);

  std::vector<std::pair<Key, Value>> learned;
  std::vector<std::pair<Key, Value>> art_items;
  for (;;) {
    // See Scan: validate the composite models∪ART read against concurrent
    // ART→slot write-backs.
    const uint64_t wb_gen = write_back_gen_.load(std::memory_order_acquire);
    if (write_backs_active_.load(std::memory_order_acquire) != 0) {
      CpuRelax();
      continue;
    }
    learned.clear();
    art_items.clear();
    const ModelDirectory::Snapshot* snap = directory_.snapshot();
    const size_t num_models = snap->first_keys.size();
    for (size_t i = ModelDirectory::Locate(*snap, lo); i < num_models; ++i) {
      if (snap->first_keys[i] > hi) break;
      GplModel* model = snap->models[i].load(std::memory_order_acquire);
      const size_t before = learned.size();
      model->CollectRange(lo, hi, &learned);
      bool expanded = false;
      // See Scan: follow the whole expansion chain or keys migrated past the
      // first temporal buffer are silently dropped.
      for (Expansion* e = model->expansion(); e != nullptr;
           e = e->new_model->expansion()) {
        e->new_model->CollectRange(lo, hi, &learned);
        expanded = true;
      }
      if (expanded) {
        std::sort(learned.begin() + static_cast<ptrdiff_t>(before), learned.end());
        // See Scan: drop the second copy of keys caught mid-migration.
        DedupeSortedTail(&learned, before);
      }
    }

    art_.RangeQuery(lo, hi, &art_items);
    if (write_back_gen_.load(std::memory_order_acquire) == wb_gen) break;
  }

  MergePairs(learned, art_items, ~size_t{0}, out);
  return out->size();
}

// ---------------------------------------------------------------------------
// Dynamic retraining (§III-F)
// ---------------------------------------------------------------------------

void AltIndex::EnsureArtKeyVisible(Key key) {
  const ModelDirectory::Snapshot* snap = directory_.snapshot();
  GplModel* model = snap->models[ModelDirectory::Locate(*snap, key)].load(
      std::memory_order_acquire);
  GplModel* t = model;
  Expansion* exp = t->expansion();
  GplSlot* s = nullptr;
  uint32_t w = 0;
  SlotState st = SlotState::kEmpty;
  if (key >= t->coverage_end()) {
    // Out of the old model's coverage. With no expansion ART is authoritative
    // (visible); with one, the temporal buffer's slightly wider coverage may
    // make a slot the key's home (§III-F coverage gap).
    if (exp == nullptr) return;
    t = exp->new_model;
    if (key >= t->coverage_end()) return;
    s = &t->slot(t->Predict(key));
    w = s->word.Read();
    st = SlotWord::StateOf(w);
  } else {
    s = &t->slot(t->Predict(key));
    w = s->word.Read();
    st = SlotWord::StateOf(w);
    if (exp != nullptr && (st == SlotState::kMigrated || st == SlotState::kEmpty)) {
      t = exp->new_model;
      if (key >= t->coverage_end()) return;
      s = &t->slot(t->Predict(key));
      w = s->word.Read();
      st = SlotWord::StateOf(w);
    }
  }
  // Only an EMPTY slot can ever make the key unreachable. Attempt the
  // write-back even while the model's invariant is suspended: the sweep that
  // will re-arm strict_empty may already have passed this key's position in
  // ART, so the inserter itself must make the key slot-visible.
  if (st != SlotState::kEmpty) return;
  WriteBackSection wb(this);
  const uint32_t lw = s->word.Lock();
  // TOCTOU guard (see InsertInternal): if an expansion appeared on `t` since
  // it was chosen, leave the key in ART — the suspended invariant keeps it
  // reachable, and the finish sweep owns the write-back from here.
  if (SlotWord::StateOf(lw) == SlotState::kEmpty && t->expansion() == nullptr) {
    Value moved = 0;
    if (art_.Remove(key, &moved)) {
      s->key.store(key, std::memory_order_relaxed);
      s->value.store(moved, std::memory_order_relaxed);
      s->word.Unlock(lw, SlotState::kOccupied);
      metrics::Inc(Counter::kWriteBacks);
      return;
    }
  }
  s->word.Unlock(lw, SlotWord::StateOf(lw));
}

void AltIndex::MaybeTriggerExpansion(GplModel* model) {
  if (!options_.enable_retraining) return;
  const double trigger =
      options_.retrain_trigger_ratio * static_cast<double>(model->build_size());
  if (static_cast<double>(model->insert_count()) <= trigger) return;
  if (model->expansion() != nullptr) return;

  // Expansion preparation: temporal buffer with twice the slots, doubled
  // train slope (§III-F step 1).
  const uint64_t new_slots = static_cast<uint64_t>(model->num_slots()) * 2 + 1;
  if (new_slots > (uint64_t{1} << 31)) return;  // refuse pathological growth
  Key coverage = ~Key{0};
  const double new_slope = model->slope() * 2.0;
  if (new_slope > 0) {
    const double span = static_cast<double>(new_slots) / new_slope;
    if (span < static_cast<double>(~Key{0} - model->first_key())) {
      coverage = model->first_key() + static_cast<Key>(span) + 1;
    }
  }
  auto* new_model =
      new GplModel(model->first_key(), new_slope, static_cast<uint32_t>(new_slots),
                   model->build_size() + model->insert_count(), coverage,
                   options_.use_huge_pages);
  new_model->set_fp_index(model->fp_index());
  // Until the finish sweep writes eligible ART keys back, EMPTY temporal
  // slots do not prove absence.
  new_model->set_strict_empty(false);
  auto* exp = new Expansion(new_model);
  exp->finish_threshold = std::max<uint32_t>(64, model->build_size());
  exp->start_ns = NowNanos();
  if (!model->TryInstallExpansion(exp)) {
    delete exp;
    return;
  }
  retrain_started_.fetch_add(1, std::memory_order_relaxed);
  metrics::Inc(Counter::kRetrainStarted);
  metrics::RecordEvent(metrics::EventType::kRetrainStart, 0, model->first_key());
  trace::RecordInstant("retrain_start", "retrain", model->first_key());
}

void AltIndex::MaybeFinishExpansion(GplModel* model,
                                    Expansion* exp) ALT_REQUIRES_EPOCH {
  if (exp->new_inserts.load(std::memory_order_relaxed) < exp->finish_threshold) return;
  if (exp->finishing.exchange(true, std::memory_order_acq_rel)) return;
  FinishExpansion(model, exp);
}

void AltIndex::FinishExpansion(GplModel* model,
                               Expansion* exp) ALT_REQUIRES_EPOCH {
  GplModel* nm = exp->new_model;
  trace::Span finish_span("retrain_finish", "retrain", model->first_key());

  {
    // Step 1: sweep the remaining old slots into the temporal buffer.
    trace::Span sweep_span("retrain_sweep", "retrain", model->num_slots());
    for (uint32_t i = 0; i < model->num_slots(); ++i) {
      GplSlot& s = model->slot(i);
      const uint32_t lw = s.word.Lock();
      if (SlotWord::StateOf(lw) == SlotState::kOccupied) {
        const Key k = s.key.load(std::memory_order_relaxed);
        const Value v = s.value.load(std::memory_order_relaxed);
        MigrateInto(nm, k, v);
      }
      s.word.Unlock(lw, SlotState::kMigrated);
    }
  }

  {
    // Step 2: restore the zero-error invariant — ART keys of this model whose
    // new predicted slot is empty are written back (§III-F).
    trace::Span wb_span("retrain_write_back", "retrain");
    WriteBackSection wb(this);
    const ModelDirectory::Snapshot* snap = directory_.snapshot();
    const size_t idx = ModelDirectory::Locate(*snap, model->first_key());
    const Key lo = model->first_key();
    const Key hi = (idx + 1 < snap->first_keys.size()) ? snap->first_keys[idx + 1] - 1
                                                       : ~Key{0};
    std::vector<std::pair<Key, Value>> art_keys;
    art_.RangeQuery(lo, hi, &art_keys);
    wb_span.set_detail(art_keys.size());
    for (const auto& [k, unused_v] : art_keys) {
      if (k >= nm->coverage_end()) continue;  // stays in ART (tail range)
      GplSlot& s = nm->slot(nm->Predict(k));
      const uint32_t lw = s.word.Lock();
      if (SlotWord::StateOf(lw) == SlotState::kEmpty) {
        Value moved = 0;
        if (art_.Remove(k, &moved)) {
          s.key.store(k, std::memory_order_relaxed);
          s.value.store(moved, std::memory_order_relaxed);
          s.word.Unlock(lw, SlotState::kOccupied);
          metrics::Inc(Counter::kWriteBacks);
          continue;
        }
      }
      s.word.Unlock(lw, SlotWord::StateOf(lw));
    }
  }

  // The invariant now holds for the temporal buffer: every ART key of this
  // range either has an occupied predicted slot or was just written back.
  nm->set_strict_empty(true);

  // Step 3: publish the temporal buffer as the model (§III-F step 3);
  // ownership moves to the directory (see Expansion dtor).
  GplModel* published = exp->new_model;
  const bool ok = directory_.PublishReplacement(model, published);
  assert(ok && "only the finishing thread publishes a replacement");
  (void)ok;
  exp->done.store(true, std::memory_order_release);
  retrain_finished_.fetch_add(1, std::memory_order_relaxed);
  metrics::Inc(Counter::kRetrainFinished);
  metrics::RecordEvent(metrics::EventType::kRetrainFinish,
                       NowNanos() - exp->start_ns, published->first_key());

  AppendTailModelIfLast(published);
}

void AltIndex::AppendTailModelIfLast(const GplModel* published) {
  const ModelDirectory::Snapshot* snap = directory_.snapshot();
  const size_t n = snap->first_keys.size();
  if (n == 0 || snap->models[n - 1].load(std::memory_order_acquire) != published) {
    return;
  }
  trace::Span span("tail_append", "retrain");
  // §III-F: "if the retraining GPL model is the last one, we create a new GPL
  // model behind it" — first key just beyond the published model's coverage.
  const Key tail_first = published->coverage_end();
  if (tail_first == ~Key{0}) return;  // infinite coverage: nothing to take over
  if (tail_first <= snap->first_keys[n - 1]) return;
  auto* tail = new GplModel(tail_first, published->slope(), options_.tail_model_slots,
                            options_.tail_model_slots / 2, ~Key{0},
                            options_.use_huge_pages);
  if (options_.enable_fast_pointers) {
    const int32_t slot = fp_buffer_.AddPointer(art_.root(), 0, 0);
    tail->set_fp_index(slot);
  }
  // The tail steals [tail_first, +inf) from the published model; ART keys in
  // that range would otherwise look "absent" behind the tail's EMPTY slots.
  // Publish with the invariant suspended, write those ART keys back, then
  // re-arm it.
  tail->set_strict_empty(false);
  if (!directory_.AppendTail(tail)) {
    // A concurrent finishing thread appended a covering tail first.
    delete tail;
    return;
  }
  metrics::Inc(Counter::kTailModelsAppended);
  metrics::RecordEvent(metrics::EventType::kTailModelAppend, 0, tail_first);
  metrics::SetGauge(metrics::Gauge::kNumModels,
                    static_cast<int64_t>(directory_.NumModels()));
  std::vector<std::pair<Key, Value>> strays;
  art_.RangeQuery(tail_first, ~Key{0}, &strays);
  WriteBackSection wb(this);
  for (const auto& [k, unused_v] : strays) {
    GplSlot& s = tail->slot(tail->Predict(k));
    const uint32_t lw = s.word.Lock();
    // TOCTOU guard (see InsertInternal): the tail is already published, so
    // an insert storm could have started expanding it; its sweep owns the
    // remaining write-backs then.
    if (tail->expansion() != nullptr) {
      s.word.Unlock(lw, SlotWord::StateOf(lw));
      break;
    }
    if (SlotWord::StateOf(lw) == SlotState::kEmpty) {
      Value moved = 0;
      if (art_.Remove(k, &moved)) {
        s.key.store(k, std::memory_order_relaxed);
        s.value.store(moved, std::memory_order_relaxed);
        s.word.Unlock(lw, SlotState::kOccupied);
        metrics::Inc(Counter::kWriteBacks);
        continue;
      }
    }
    s.word.Unlock(lw, SlotWord::StateOf(lw));
  }
  tail->set_strict_empty(true);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

AltIndex::Stats AltIndex::CollectStats() const {
  Stats st;
  EpochGuard g(*epoch_);
  const ModelDirectory::Snapshot* snap = directory_.snapshot();
  if (snap != nullptr) {
    st.num_models = snap->first_keys.size();
    for (const auto& m : snap->models) {
      const GplModel* model = m.load(std::memory_order_acquire);
      st.learned_layer_keys += model->CountOccupied();
      const Expansion* exp = model->expansion();
      if (exp != nullptr) st.learned_layer_keys += exp->new_model->CountOccupied();
    }
  }
  st.art_keys = art_.Size();
  st.fast_pointers = fp_buffer_.Size();
  st.fast_pointer_adds = fp_buffer_.UnmergedCount();
  st.retrain_started = retrain_started_.load(std::memory_order_relaxed);
  st.retrain_finished = retrain_finished_.load(std::memory_order_relaxed);
  st.memory_bytes = MemoryUsage();
  st.error_bound = epsilon_;
  return st;
}

size_t AltIndex::MemoryUsage() const {
  return sizeof(AltIndex) + directory_.MemoryBytes() + fp_buffer_.MemoryBytes() +
         art_.MemoryUsage();
}

}  // namespace alt
