#pragma once

#include <atomic>
#include <memory>

#include "baselines/leaf_directory.h"
#include "common/index_interface.h"
#include "common/optlock.h"

namespace alt {

/// \brief Mechanism-faithful re-implementation of ALEX+ (Ding et al. 2020,
/// with the optimistic concurrency wrapper of Wongkham et al. 2022):
///
///  - *gapped arrays*: each data node keeps ~30% gaps; gap slots duplicate
///    their nearest occupied left neighbor so the key array stays
///    binary-searchable,
///  - *model-based search*: a per-node linear model predicts the slot,
///    corrected by exponential search (the "prediction error" cost),
///  - *data shifting*: an insert shifts elements to the nearest gap — the
///    cost Table I attributes ALEX+'s osm tail latency to,
///  - *node splits* when density exceeds a threshold, published through a
///    copy-on-write directory,
///  - optimistic per-node version locks for reads, exclusive for writes.
///
/// Statistics (`shift_total`) expose the data-shifting volume for the
/// motivation bench.
class AlexLike : public ConcurrentIndex {
 public:
  AlexLike() = default;

  std::string Name() const override { return "ALEX+"; }

  Status BulkLoad(const Key* keys, const Value* values, size_t n) override;
  bool Lookup(Key key, Value* out) override;
  bool Insert(Key key, Value value) override;
  bool Update(Key key, Value value) override;
  bool Remove(Key key) override;
  size_t Scan(Key start, size_t count,
              std::vector<std::pair<Key, Value>>* out) override;
  size_t MemoryUsage() const override;
  size_t Size() const override { return size_.load(std::memory_order_relaxed); }

  /// Total elements moved by the data-shifting scheme so far.
  uint64_t ShiftTotal() const { return shift_total_.load(std::memory_order_relaxed); }

  size_t NumNodes() const { return dir_.NumLeaves(); }

 private:
  struct DataNode {
    OptLock lock;
    Key first_key = 0;
    double slope = 0;  // predicted slot = slope * (key - first_key) + intercept
    double intercept = 0;
    uint32_t capacity = 0;
    uint32_t num_keys = 0;  // mutated under lock only
    std::unique_ptr<std::atomic<Key>[]> keys;
    std::unique_ptr<std::atomic<Value>[]> values;
    std::unique_ptr<std::atomic<uint64_t>[]> occupied;  // bitmap words

    bool Occupied(uint32_t i) const {
      return (occupied[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1u;
    }
    void SetOccupied(uint32_t i) {
      occupied[i >> 6].fetch_or(uint64_t{1} << (i & 63), std::memory_order_relaxed);
    }
    void ClearOccupied(uint32_t i) {
      occupied[i >> 6].fetch_and(~(uint64_t{1} << (i & 63)), std::memory_order_relaxed);
    }
    size_t MemoryBytes() const {
      return sizeof(DataNode) + capacity * (sizeof(Key) + sizeof(Value)) +
             ((capacity + 63) / 64) * 8;
    }
  };

  static constexpr double kMaxDensity = 0.8;
  static constexpr double kInitDensity = 0.6;
  static constexpr uint32_t kBulkNodeKeys = 2048;
  static constexpr uint32_t kMinCapacity = 64;

  /// Build a node over sorted data (endpoint-fit model, gaps spread evenly).
  static DataNode* BuildNode(const Key* keys, const Value* values, size_t n);

  /// First slot index with keys[slot] >= key (exponential + binary search).
  static uint32_t LowerBound(const DataNode* node, Key key);

  /// Slot holding `key`, or capacity if absent.
  static uint32_t FindSlot(const DataNode* node, Key key);

  void SplitNode(DataNode* node);

  LeafDirectory<DataNode> dir_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> shift_total_{0};
};

}  // namespace alt
