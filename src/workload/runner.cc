#include "workload/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>

#include "common/latency_recorder.h"
#include "common/metrics.h"
#include "common/spinlock.h"
#include "common/timer.h"
#include "datasets/dataset.h"

namespace alt {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out->push_back(c);
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

/// One JSON line of the --metrics_json stream. `result` is null for interval
/// snapshots (the run is still executing).
std::string RunJsonLine(const std::string& label, const char* phase,
                        const RunResult* result, const metrics::Snapshot& delta) {
  std::string line = "{\"label\":";
  AppendJsonString(&line, label);
  line += ",\"phase\":\"";
  line += phase;
  line += '"';
  if (result != nullptr) {
    line += ",\"throughput_mops\":";
    AppendDouble(&line, result->throughput_mops);
    line += ",\"seconds\":";
    AppendDouble(&line, result->seconds);
    line += ",\"total_ops\":" + std::to_string(result->total_ops);
    line += ",\"failed_ops\":" + std::to_string(result->failed_ops);
    line += ",\"empty_scans\":" + std::to_string(result->empty_scans);
    line += ",\"p50_ns\":" + std::to_string(result->p50_ns);
    line += ",\"p99_ns\":" + std::to_string(result->p99_ns);
    line += ",\"p999_ns\":" + std::to_string(result->p999_ns);
  }
  line += ",\"metrics\":";
  line += metrics::ToJson(delta);
  line += '}';
  return line;
}

}  // namespace

RunResult RunWorkload(ConcurrentIndex* index,
                      const std::vector<std::vector<Op>>& streams,
                      const RunOptions& options) {
  const int num_threads = static_cast<int>(streams.size());
  const size_t scan_length = options.scan_length;
  const size_t read_batch = options.read_batch > 0 ? options.read_batch : 1;
  std::vector<LatencyHistogram> hists(static_cast<size_t>(num_threads));
  std::vector<uint64_t> fails(static_cast<size_t>(num_threads), 0);
  std::vector<uint64_t> empties(static_cast<size_t>(num_threads), 0);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};

  auto worker = [&](int tid) {
    const auto& stream = streams[static_cast<size_t>(tid)];
    LatencyHistogram& hist = hists[static_cast<size_t>(tid)];
    uint64_t failed = 0;
    uint64_t empty = 0;
    std::vector<std::pair<Key, Value>> scan_buf;
    // Read-coalescing buffers (read_batch > 1): consecutive kRead ops are
    // collected here and resolved with one LookupBatch call.
    std::vector<Key> batch_keys(read_batch);
    std::vector<Value> batch_vals(read_batch);
    std::unique_ptr<bool[]> batch_found(new bool[read_batch]);
    size_t pending = 0;
    uint32_t tick = 0;
    auto flush_reads = [&] {
      if (pending == 0) return;
      const bool sample = (tick++ & 15u) == 0;
      const uint64_t t0 = sample ? NowNanos() : 0;
      const size_t hits =
          index->LookupBatch(batch_keys.data(), pending, batch_vals.data(),
                             batch_found.get());
      failed += pending - hits;
      if (sample) hist.Record((NowNanos() - t0) / pending);
      pending = 0;
    };
    ready.fetch_add(1, std::memory_order_acq_rel);
    while (!go.load(std::memory_order_acquire)) CpuRelax();
    for (const Op& op : stream) {
      if (read_batch > 1) {
        if (op.type == OpType::kRead) {
          batch_keys[pending++] = op.key;
          if (pending == read_batch) flush_reads();
          continue;
        }
        flush_reads();  // a non-read op breaks the run of coalescible reads
      }
      const bool sample = (tick++ & 15u) == 0;
      const uint64_t t0 = sample ? NowNanos() : 0;
      bool ok = true;
      switch (op.type) {
        case OpType::kRead: {
          Value v;
          ok = index->Lookup(op.key, &v);
          break;
        }
        case OpType::kInsert:
          ok = index->Insert(op.key, ValueFor(op.key));
          break;
        case OpType::kScan:
          // A scan that finds nothing hit the end of the keyspace (every
          // start key is drawn from the live key space, so there is no
          // "miss" to report) — count it separately, not as a failure.
          if (index->Scan(op.key, scan_length, &scan_buf) == 0) ++empty;
          break;
        case OpType::kUpdate:
          ok = index->Update(op.key, ValueFor(op.key) ^ 0x5a5a);
          break;
        case OpType::kRemove:
          ok = index->Remove(op.key);
          break;
      }
      if (!ok) ++failed;
      if (sample) hist.Record(NowNanos() - t0);
    }
    if (read_batch > 1) flush_reads();
    fails[static_cast<size_t>(tid)] = failed;
    empties[static_cast<size_t>(tid)] = empty;
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  while (ready.load(std::memory_order_acquire) < num_threads) CpuRelax();

  // Metrics export: scope the process-global registry to this run by diffing
  // against a baseline taken right before the start barrier opens.
  const bool export_metrics = !options.metrics_json.empty();
  const metrics::Snapshot baseline = export_metrics ? metrics::TakeSnapshot()
                                                    : metrics::Snapshot{};
  std::vector<std::string> interval_lines;
  std::atomic<bool> stop_sampler{false};
  std::thread sampler;
  if (export_metrics && options.metrics_interval_seconds > 0) {
    sampler = std::thread([&] {
      metrics::Snapshot prev = baseline;
      const auto interval = std::chrono::duration<double>(
          options.metrics_interval_seconds);
      auto next_wake = std::chrono::steady_clock::now() + interval;
      while (!stop_sampler.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        if (std::chrono::steady_clock::now() < next_wake) continue;
        next_wake += interval;
        metrics::Snapshot now = metrics::TakeSnapshot();
        interval_lines.push_back(RunJsonLine(options.metrics_label, "interval",
                                             nullptr, now.DeltaSince(prev)));
        prev = std::move(now);
      }
    });
  }

  const Stopwatch clock;
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const double seconds = clock.ElapsedSeconds();
  if (sampler.joinable()) {
    stop_sampler.store(true, std::memory_order_release);
    sampler.join();
  }

  RunResult r;
  LatencyHistogram merged;
  for (int t = 0; t < num_threads; ++t) {
    merged.Merge(hists[static_cast<size_t>(t)]);
    r.total_ops += streams[static_cast<size_t>(t)].size();
    r.failed_ops += fails[static_cast<size_t>(t)];
    r.empty_scans += empties[static_cast<size_t>(t)];
  }
  r.seconds = seconds;
  r.throughput_mops = seconds > 0
                          ? static_cast<double>(r.total_ops) / seconds / 1e6
                          : 0;
  r.p50_ns = merged.Percentile(0.50);
  r.p99_ns = merged.Percentile(0.99);
  r.p999_ns = merged.Percentile(0.999);
  r.mean_ns = merged.MeanNs();

  if (export_metrics) {
    metrics::SetGauge(metrics::Gauge::kLiveKeys,
                      static_cast<int64_t>(index->Size()));
    const metrics::Snapshot delta = metrics::TakeSnapshot().DeltaSince(baseline);
    std::ofstream out(options.metrics_json, std::ios::app);
    if (out) {
      for (const std::string& line : interval_lines) out << line << '\n';
      out << RunJsonLine(options.metrics_label, "final", &r, delta) << '\n';
    } else {
      std::fprintf(stderr, "runner: cannot open metrics_json file '%s'\n",
                   options.metrics_json.c_str());
    }
  }
  return r;
}

RunResult RunWorkload(ConcurrentIndex* index,
                      const std::vector<std::vector<Op>>& streams,
                      size_t scan_length) {
  RunOptions options;
  options.scan_length = scan_length;
  return RunWorkload(index, streams, options);
}

BenchSetup SplitDataset(const std::vector<Key>& keys, double bulk_fraction) {
  BenchSetup setup;
  if (keys.empty()) return setup;  // nothing to split (and no front() to read)
  if (bulk_fraction < 0.01) bulk_fraction = 0.01;
  if (bulk_fraction > 1.0) bulk_fraction = 1.0;
  // Interleave: of every `period` keys, the first `bulk_per` go to the bulk
  // set, the rest to the pool, so both follow the dataset's distribution.
  const int period = 10;
  const int bulk_per = static_cast<int>(bulk_fraction * period + 0.5);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (static_cast<int>(i % period) < bulk_per) {
      setup.loaded.push_back(keys[i]);
    } else {
      setup.pool.push_back(keys[i]);
    }
  }
  if (setup.loaded.empty()) {
    // Move (not copy) the first key out of the pool: a copy would leave the
    // key in both sets, and its later pool insert would fail as a duplicate.
    setup.loaded.push_back(setup.pool.front());
    setup.pool.erase(setup.pool.begin());
  }
  return setup;
}

}  // namespace alt
