// alt-raw-lock failing fixture: raw std:: lock types and naked .lock() /
// .unlock() calls, all of which must go through the annotated wrappers.
#include <mutex>

struct State {
  std::mutex mu;
  int x = 0;

  void Bump() {
    mu.lock();
    ++x;
    mu.unlock();
  }

  void Guarded() {
    std::lock_guard<std::mutex> g(mu);
    ++x;
  }
};
