#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace alt {

/// \brief Concurrent occupancy bitmap, one bit per GPL slot (§III-B: "we use a
/// bitmap to reduce the unnecessary slot checks in the search procedure").
///
/// Bits are set/cleared with relaxed RMWs; the slot's version lock provides the
/// ordering, the bitmap is only a fast filter and the authoritative occupancy
/// lives in the slot state.
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(size_t bits) { Reset(bits); }

  void Reset(size_t bits) {
    bits_ = bits;
    words_ = std::vector<std::atomic<uint64_t>>((bits + 63) / 64);
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  void Set(size_t i) {
    words_[i >> 6].fetch_or(uint64_t{1} << (i & 63), std::memory_order_relaxed);
  }

  void Clear(size_t i) {
    words_[i >> 6].fetch_and(~(uint64_t{1} << (i & 63)), std::memory_order_relaxed);
  }

  bool Test(size_t i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1u;
  }

  /// First set bit at or after `i`, or `size()` if none. Powers slot scans in
  /// range queries without touching empty cache lines.
  size_t NextSet(size_t i) const {
    if (i >= bits_) return bits_;
    size_t w = i >> 6;
    uint64_t word = words_[w].load(std::memory_order_relaxed) & (~uint64_t{0} << (i & 63));
    for (;;) {
      if (word != 0) {
        size_t pos = (w << 6) + static_cast<size_t>(__builtin_ctzll(word));
        return pos < bits_ ? pos : bits_;
      }
      if (++w >= words_.size()) return bits_;
      word = words_[w].load(std::memory_order_relaxed);
    }
  }

  size_t size() const { return bits_; }

  size_t CountSet() const {
    size_t n = 0;
    for (const auto& w : words_) n += __builtin_popcountll(w.load(std::memory_order_relaxed));
    return n;
  }

 private:
  size_t bits_ = 0;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace alt
