file(REMOVE_RECURSE
  "CMakeFiles/alt_baselines.dir/baselines/alex_like.cc.o"
  "CMakeFiles/alt_baselines.dir/baselines/alex_like.cc.o.d"
  "CMakeFiles/alt_baselines.dir/baselines/art_index.cc.o"
  "CMakeFiles/alt_baselines.dir/baselines/art_index.cc.o.d"
  "CMakeFiles/alt_baselines.dir/baselines/btree_index.cc.o"
  "CMakeFiles/alt_baselines.dir/baselines/btree_index.cc.o.d"
  "CMakeFiles/alt_baselines.dir/baselines/factory.cc.o"
  "CMakeFiles/alt_baselines.dir/baselines/factory.cc.o.d"
  "CMakeFiles/alt_baselines.dir/baselines/finedex_like.cc.o"
  "CMakeFiles/alt_baselines.dir/baselines/finedex_like.cc.o.d"
  "CMakeFiles/alt_baselines.dir/baselines/lipp_like.cc.o"
  "CMakeFiles/alt_baselines.dir/baselines/lipp_like.cc.o.d"
  "CMakeFiles/alt_baselines.dir/baselines/olc_btree.cc.o"
  "CMakeFiles/alt_baselines.dir/baselines/olc_btree.cc.o.d"
  "CMakeFiles/alt_baselines.dir/baselines/xindex_like.cc.o"
  "CMakeFiles/alt_baselines.dir/baselines/xindex_like.cc.o.d"
  "libalt_baselines.a"
  "libalt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
