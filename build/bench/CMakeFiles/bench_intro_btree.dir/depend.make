# Empty dependencies file for bench_intro_btree.
# This may be replaced when dependencies are built.
