// ShardedAltIndex: range/hash dispatch, per-shard epoch isolation, and the
// cross-shard scan merge — including the PR 3 duplicate-key bug class
// (scans racing in-flight §III-F expansions), now exercised at partition
// seams, plus shard-count and boundary edge cases (tests/CMakeLists.txt;
// runs in the TSan CI leg).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "baselines/factory.h"
#include "shard/merge_iterator.h"
#include "shard/sharded_alt_index.h"

namespace alt {
namespace {

using shard::Partition;
using shard::ShardedAltIndex;
using shard::ShardedOptions;

std::vector<Key> MakeKeys(size_t n, Key start = 1000, Key stride = 7) {
  std::vector<Key> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = start + stride * static_cast<Key>(i);
  return keys;
}

std::vector<Value> ValuesFor(const std::vector<Key>& keys) {
  std::vector<Value> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = keys[i] * 2 + 1;
  return values;
}

ShardedOptions SmallOptions(int shards, Partition p = Partition::kRange) {
  ShardedOptions so;
  so.num_shards = shards;
  so.partition = p;
  so.index.tail_model_slots = 64;  // small empty-shard models keep tests fast
  return so;
}

TEST(ShardedAltIndexTest, BulkLoadDispatchAndLookupAcrossShards) {
  const auto keys = MakeKeys(20000);
  const auto values = ValuesFor(keys);
  ShardedAltIndex index(SmallOptions(4));
  ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());
  EXPECT_EQ(index.num_shards(), 4u);
  EXPECT_EQ(index.Size(), keys.size());

  // Equal-count split: every shard holds ~n/4 keys.
  for (size_t s = 0; s < index.num_shards(); ++s) {
    EXPECT_NEAR(static_cast<double>(index.shard(s).Size()),
                static_cast<double>(keys.size()) / 4.0, 1.0);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    Value v = 0;
    ASSERT_TRUE(index.Lookup(keys[i], &v)) << "key " << keys[i];
    EXPECT_EQ(v, values[i]);
  }
  Value v = 0;
  EXPECT_FALSE(index.Lookup(keys.back() + 1, &v));
}

TEST(ShardedAltIndexTest, DispatchAgreesWithLoadSplit) {
  const auto keys = MakeKeys(4096);
  const auto values = ValuesFor(keys);
  ShardedAltIndex index(SmallOptions(8));
  ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());
  // Every bulk key must live in the shard the runtime dispatch names,
  // including the keys sitting exactly on partition boundaries.
  for (Key k : keys) {
    const size_t s = index.ShardIndexOf(k);
    Value v = 0;
    EXPECT_TRUE(index.shard(s).Lookup(k, &v));
  }
  for (size_t s = 1; s < index.num_shards(); ++s) {
    const Key boundary = index.ShardLowerBound(s);
    EXPECT_EQ(index.ShardIndexOf(boundary), s);
    EXPECT_EQ(index.ShardIndexOf(boundary - 1), s - 1);
  }
}

TEST(ShardedAltIndexTest, SingleShardDegenerateCase) {
  const auto keys = MakeKeys(5000);
  const auto values = ValuesFor(keys);
  ShardedAltIndex index(SmallOptions(1));
  ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());
  EXPECT_EQ(index.num_shards(), 1u);
  Value v = 0;
  EXPECT_TRUE(index.Lookup(keys[123], &v));
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(index.Scan(0, 100, &out), 100u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

TEST(ShardedAltIndexTest, EmptyShardsServeInsertsAndScans) {
  // 3 keys over 8 shards: most shards get no bulk keys at all.
  const std::vector<Key> keys = {100, 200, 300};
  const auto values = ValuesFor(keys);
  ShardedAltIndex index(SmallOptions(8));
  ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());
  EXPECT_EQ(index.Size(), 3u);

  // Inserts landing in empty shards must work (the n==0 AltIndex bulk-load
  // publishes a whole-range tail-like model).
  for (Key k = 1000; k < 1100; ++k) {
    ASSERT_TRUE(index.Insert(k, k + 1)) << "key " << k;
  }
  EXPECT_EQ(index.Size(), 103u);
  Value v = 0;
  EXPECT_TRUE(index.Lookup(1050, &v));
  EXPECT_EQ(v, 1051u);
  EXPECT_FALSE(index.Insert(200, 9)) << "duplicate across bulk data";

  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(index.Scan(0, 1000, &out), 103u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first) << "sorted, duplicate-free";
  }
}

TEST(ShardedAltIndexTest, UsableWithoutBulkLoad) {
  ShardedAltIndex index(SmallOptions(4));
  Value v = 0;
  EXPECT_FALSE(index.Lookup(42, &v));
  EXPECT_TRUE(index.Insert(42, 1));
  EXPECT_TRUE(index.Insert(~Key{0} - 5, 2));  // lands in the last shard
  EXPECT_TRUE(index.Update(42, 3));
  EXPECT_TRUE(index.Lookup(42, &v));
  EXPECT_EQ(v, 3u);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(index.Scan(0, 10, &out), 2u);
  EXPECT_TRUE(index.Remove(42));
  EXPECT_EQ(index.Size(), 1u);
}

TEST(ShardedAltIndexTest, ScanMatchesOracleAcrossShardBoundaries) {
  const auto keys = MakeKeys(10000, 500, 13);
  const auto values = ValuesFor(keys);
  for (Partition p : {Partition::kRange, Partition::kHash}) {
    ShardedAltIndex index(SmallOptions(4, p));
    ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());
    // Starts chosen to sit before, exactly on, and after shard boundaries.
    std::vector<Key> starts_to_try = {0, keys[1], keys[2500] + 1, keys[7499]};
    if (p == Partition::kRange) {
      for (size_t s = 1; s < index.num_shards(); ++s) {
        starts_to_try.push_back(index.ShardLowerBound(s));
        starts_to_try.push_back(index.ShardLowerBound(s) - 1);
      }
    }
    for (Key start : starts_to_try) {
      std::vector<std::pair<Key, Value>> got;
      index.Scan(start, 500, &got);
      const auto lo = std::lower_bound(keys.begin(), keys.end(), start);
      const size_t expect_n =
          std::min<size_t>(500, static_cast<size_t>(keys.end() - lo));
      ASSERT_EQ(got.size(), expect_n) << "start " << start;
      for (size_t i = 0; i < expect_n; ++i) {
        const size_t j = static_cast<size_t>(lo - keys.begin()) + i;
        EXPECT_EQ(got[i].first, keys[j]);
        EXPECT_EQ(got[i].second, values[j]);
      }
    }
  }
}

TEST(ShardedAltIndexTest, RangeQueryMatchesOracle) {
  const auto keys = MakeKeys(8000, 500, 11);
  const auto values = ValuesFor(keys);
  for (Partition p : {Partition::kRange, Partition::kHash}) {
    ShardedAltIndex index(SmallOptions(4, p));
    ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());
    const Key lo = keys[100] + 1;     // exclusive of keys[100] (not a key)
    const Key hi = keys[6000];        // inclusive boundary hit
    std::vector<std::pair<Key, Value>> got;
    index.RangeQuery(lo, hi, &got);
    ASSERT_EQ(got.size(), 5900u);
    EXPECT_EQ(got.front().first, keys[101]);
    EXPECT_EQ(got.back().first, keys[6000]);
    for (size_t i = 1; i < got.size(); ++i) {
      ASSERT_LT(got[i - 1].first, got[i].first);
    }
  }
}

TEST(ShardedAltIndexTest, LookupBatchScatterGather) {
  const auto keys = MakeKeys(20000);
  const auto values = ValuesFor(keys);
  ShardedAltIndex index(SmallOptions(4));
  ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());

  // Probe mix: hits from every shard, misses, and duplicates, interleaved so
  // the scatter/gather has to restore caller order.
  std::vector<Key> probe;
  for (size_t i = 0; i < keys.size(); i += 97) probe.push_back(keys[i]);
  probe.push_back(keys[0]);
  probe.push_back(1);                  // miss before all shards' keys
  probe.push_back(keys.back() + 100);  // miss in the last shard
  std::vector<Value> out(probe.size(), 0);
  std::vector<uint8_t> found_bytes(probe.size(), 0);
  bool* found = reinterpret_cast<bool*>(found_bytes.data());
  const size_t hits = index.LookupBatch(probe.data(), probe.size(), out.data(), found);
  EXPECT_EQ(hits, probe.size() - 2);
  for (size_t i = 0; i < probe.size(); ++i) {
    Value ref = 0;
    const bool present = index.Lookup(probe[i], &ref);
    ASSERT_EQ(found[i], present) << "probe " << i;
    if (present) EXPECT_EQ(out[i], ref);
  }
}

TEST(ShardedAltIndexTest, KWayMergerDeduplicatesAndOrders) {
  // Unit-level merge check with overlapping sources, first-copy-wins.
  struct VecCursor {
    std::vector<std::pair<Key, Value>> items;
    size_t pos = 0;
    bool Next(std::pair<Key, Value>* out) {
      if (pos >= items.size()) return false;
      *out = items[pos++];
      return true;
    }
  };
  std::vector<VecCursor> sources(3);
  sources[0].items = {{1, 10}, {4, 40}, {7, 70}};
  sources[1].items = {{2, 20}, {4, 41}, {8, 80}};  // 4 duplicated across sources
  sources[2].items = {{3, 30}, {9, 90}};
  shard::KWayMerger<VecCursor> merger(std::move(sources));
  std::vector<std::pair<Key, Value>> got;
  std::pair<Key, Value> kv;
  while (merger.Next(&kv)) got.push_back(kv);
  const std::vector<std::pair<Key, Value>> expect = {
      {1, 10}, {2, 20}, {3, 30}, {4, 40}, {7, 70}, {8, 80}, {9, 90}};
  EXPECT_EQ(got, expect) << "ties keep the lowest source's copy";
}

TEST(ShardedAltIndexTest, PerShardEpochManagersStayOffTheGlobal) {
  const auto keys = MakeKeys(20000);
  const auto values = ValuesFor(keys);
  ShardedAltIndex index(SmallOptions(4));
  ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());

  const uint64_t global_epoch_before = EpochManager::Global().GlobalEpoch();
  const size_t global_pending_before = EpochManager::Global().PendingCount();
  std::vector<uint64_t> shard_epoch_before;
  for (size_t s = 0; s < index.num_shards(); ++s) {
    shard_epoch_before.push_back(index.shard_epoch(s).GlobalEpoch());
  }

  // Remove-heavy churn forces ART node retirement in every shard.
  for (size_t i = 0; i < keys.size(); i += 2) index.Remove(keys[i]);
  for (size_t i = 0; i < keys.size(); i += 2) index.Insert(keys[i], 1);
  for (size_t i = 0; i < keys.size(); i += 2) index.Remove(keys[i]);

  // The sharded hot path must never touch EpochManager::Global() (ISSUE 8
  // acceptance criterion): all epoch activity lands on the shard managers.
  EXPECT_EQ(EpochManager::Global().GlobalEpoch(), global_epoch_before);
  EXPECT_EQ(EpochManager::Global().PendingCount(), global_pending_before);
  bool any_shard_advanced = false;
  for (size_t s = 0; s < index.num_shards(); ++s) {
    if (index.shard_epoch(s).GlobalEpoch() > shard_epoch_before[s]) {
      any_shard_advanced = true;
    }
  }
  EXPECT_TRUE(any_shard_advanced) << "churn must drive shard epochs forward";
  index.DrainAllShards();
  for (size_t s = 0; s < index.num_shards(); ++s) {
    EXPECT_EQ(index.shard_epoch(s).PendingCount(), 0u);
  }
}

TEST(ShardedAltIndexTest, MemoryBreakdownAndStructureJson) {
  const auto keys = MakeKeys(10000);
  const auto values = ValuesFor(keys);
  ShardedAltIndex index(SmallOptions(4));
  ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());
  const auto b = index.CollectMemoryBreakdown();
  EXPECT_EQ(b.total(), index.MemoryUsage())
      << "per-shard decompositions must sum to the facade footprint";
  const std::string json = index.StructureJson();
  EXPECT_NE(json.find("\"num_shards\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"partition\": \"range\""), std::string::npos);
}

TEST(ShardedAltIndexTest, FactoryMakesShardedVariants) {
  auto idx = MakeIndex("alt-sharded8", AltOptions{});
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Name(), "ALT-sharded8");
  const auto keys = MakeKeys(1000);
  const auto values = ValuesFor(keys);
  ASSERT_TRUE(idx->BulkLoad(keys.data(), values.data(), keys.size()).ok());
  Value v = 0;
  EXPECT_TRUE(idx->Lookup(keys[500], &v));
  EXPECT_EQ(MakeIndex("alt-shardedX", AltOptions{}), nullptr);
}

// The PR 3 bug class at partition seams: scans crossing shard boundaries
// while §III-F expansions are in flight inside the shards must stay sorted
// and duplicate-free, and must always observe the stable key population.
TEST(ShardedAltIndexTest, ChurnScanAcrossSeamsDuringExpansion) {
  // Stable keys: every multiple of 4 in a dense block spanning all shards.
  // Churn keys (odd) are inserted by writers to drive §III-F expansions.
  constexpr size_t kStable = 30000;
  std::vector<Key> keys(kStable);
  for (size_t i = 0; i < kStable; ++i) keys[i] = 1000 + 4 * static_cast<Key>(i);
  const auto values = ValuesFor(keys);

  for (Partition p : {Partition::kRange, Partition::kHash}) {
    ShardedOptions so = SmallOptions(4, p);
    so.index.retrain_trigger_ratio = 0.05;  // expand aggressively
    ShardedAltIndex index(so);
    ASSERT_TRUE(index.BulkLoad(keys.data(), values.data(), keys.size()).ok());

    std::atomic<bool> stop{false};
    std::atomic<size_t> scan_failures{0};
    std::thread writer([&] {
      Key k = 1001;  // odd: never collides with stable keys
      while (!stop.load(std::memory_order_acquire)) {
        index.Insert(k, 1);
        k += 2;
      }
    });
    std::thread remover([&] {
      Key k = 1003;
      while (!stop.load(std::memory_order_acquire)) {
        index.Remove(k);
        k += 2;
      }
    });

    // Scans start just before a seam so every batch crosses shards mid-churn.
    std::vector<Key> seam_starts = {keys[0]};
    if (p == Partition::kRange) {
      for (size_t s = 1; s < index.num_shards(); ++s) {
        seam_starts.push_back(index.ShardLowerBound(s) - 64);
      }
    } else {
      seam_starts.push_back(keys[kStable / 2]);
    }
    std::vector<std::pair<Key, Value>> out;
    for (int round = 0; round < 60; ++round) {
      for (Key start : seam_starts) {
        index.Scan(start, 2000, &out);
        for (size_t i = 1; i < out.size(); ++i) {
          if (out[i - 1].first >= out[i].first) {
            ++scan_failures;
            ADD_FAILURE() << "unsorted/duplicate at scan pos " << i << ": "
                          << out[i - 1].first << " then " << out[i].first;
          }
        }
        // Every stable key inside the observed window must be present.
        if (!out.empty()) {
          const Key window_lo = start;
          const Key window_hi = out.back().first;
          auto it = std::lower_bound(keys.begin(), keys.end(), window_lo);
          std::set<Key> seen;
          for (const auto& kv : out) seen.insert(kv.first);
          for (; it != keys.end() && *it <= window_hi; ++it) {
            if (seen.count(*it) == 0) {
              ++scan_failures;
              ADD_FAILURE() << "stable key " << *it << " missing from scan"
                            << " (partition "
                            << (p == Partition::kRange ? "range" : "hash")
                            << ", start " << start << ")";
            }
          }
        }
        if (scan_failures.load() > 5) break;  // don't flood the log
      }
      if (scan_failures.load() > 5) break;
    }
    stop.store(true, std::memory_order_release);
    writer.join();
    remover.join();
    EXPECT_EQ(scan_failures.load(), 0u);
    index.DrainAllShards();
  }
}

}  // namespace
}  // namespace alt
