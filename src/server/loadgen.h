#pragma once

/// \file
/// \brief Load-generator core for alt_server (tools/alt_loadgen wraps this;
/// the loopback integration test and the CI server-smoke leg drive it
/// in-process).
///
/// Two modes (docs/OPERATIONS.md §"Load generation"):
///  - **closed loop**: each connection keeps `pipeline` requests in flight;
///    latency is measured send → response. Throughput is whatever the server
///    sustains at that concurrency — the classic saturation measurement.
///  - **open loop**: requests are *scheduled* at a fixed aggregate arrival
///    rate regardless of completions; latency is measured schedule →
///    response, so queueing delay under overload is visible (coordinated
///    omission avoided). The honest tail-latency measurement.
///
/// Workload: GETs draw uniformly from the same keyset the server preloaded
/// (identical GenerateKeys(dataset, n, seed) call — see OPERATIONS.md), so a
/// GET miss is a correctness failure, not noise. PUTs upsert per-connection
/// unique keys in a reserved high range; DELs remove previously PUT keys;
/// SCANs start at a random seeded key and must return ascending keys.

#include <cstdint>
#include <string>
#include <vector>

#include "common/key_codec.h"
#include "common/latency_recorder.h"
#include "datasets/dataset.h"

namespace alt {
namespace server {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 9117;
  /// Keep retrying a refused connect for this long (server may still be
  /// binding when the load generator starts — CI races).
  uint64_t connect_retry_ms = 5000;

  int threads = 2;
  int connections_per_thread = 4;
  /// Total operations across all threads.
  uint64_t ops = 100000;

  bool open_loop = false;
  /// Aggregate target arrival rate (open loop only), ops/second.
  double rate_ops_per_sec = 50000;
  /// In-flight requests per connection (closed loop only).
  int pipeline = 8;

  /// Op mix in percent; the remainder up to 100 becomes GETs.
  unsigned put_pct = 5;
  unsigned del_pct = 0;
  unsigned scan_pct = 5;
  uint32_t scan_count = 20;

  /// Keyset the server preloaded: GenerateKeys(dataset, keyspace, seed).
  Dataset dataset = Dataset::kFb;
  size_t keyspace = 200000;
  uint64_t seed = 99;
  /// Verify GET payloads against ValueFor(key) (off when PUTs may overwrite
  /// seeded keys; the built-in mix never does).
  bool verify_values = true;
};

struct LoadgenResult {
  bool ok = false;            ///< transport-level success of the whole run
  std::string error;          ///< first transport/protocol error, if any
  uint64_t ops_sent = 0;
  uint64_t ops_completed = 0;
  /// Wrong status, GET miss on a seeded key, value mismatch, or unordered
  /// scan — each is a server correctness failure.
  uint64_t failed_ops = 0;
  double seconds = 0;
  LatencyHistogram latency;   ///< all completed ops (no sampling)
  std::string server_stats_json;  ///< STATS snapshot fetched after the run

  double throughput_mops() const {
    return seconds > 0 ? static_cast<double>(ops_completed) / seconds / 1e6 : 0;
  }
};

/// Run the configured load against a live server. Blocks until done.
LoadgenResult RunLoadgen(const LoadgenOptions& options);

/// One JSON object with the run configuration, latency percentiles and the
/// embedded server STATS document (CI contract: see .github/workflows/ci.yml
/// server-smoke leg).
std::string LoadgenResultJson(const LoadgenOptions& options,
                              const LoadgenResult& result);

}  // namespace server
}  // namespace alt
