file(REMOVE_RECURSE
  "libalt_art.a"
)
