# Empty compiler generated dependencies file for alt_common.
# This may be replaced when dependencies are built.
