file(REMOVE_RECURSE
  "CMakeFiles/gpl_test.dir/gpl_test.cc.o"
  "CMakeFiles/gpl_test.dir/gpl_test.cc.o.d"
  "gpl_test"
  "gpl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
