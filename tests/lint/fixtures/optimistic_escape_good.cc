// alt-optimistic-escape clean fixture: both sanctioned shapes — a seqlock
// retry loop that re-validates before the value escapes, and a leaf accessor
// whose justification defers the validation to its caller.
#define ALT_OPTIMISTIC_PATH

struct Slot {
  unsigned Read() const;
  bool Validate(unsigned w) const;
  int value;
};

// Seqlock read: the slot version is re-validated (Validate) before the read
// value escapes; a mismatch restarts the loop.
int ReadValidated(const Slot& s) ALT_OPTIMISTIC_PATH {
  for (;;) {
    const unsigned w = s.Read();
    const int v = s.value;
    if (s.Validate(w)) return v;
  }
}

// Optimistic leaf read, validated by caller: the bracketing Read()/Validate()
// pair around this accessor decides whether the value is kept.
int RawValue(const Slot& s) ALT_OPTIMISTIC_PATH {
  return s.value;
}
