file(REMOVE_RECURSE
  "CMakeFiles/alt_workload.dir/workload/runner.cc.o"
  "CMakeFiles/alt_workload.dir/workload/runner.cc.o.d"
  "CMakeFiles/alt_workload.dir/workload/workload.cc.o"
  "CMakeFiles/alt_workload.dir/workload/workload.cc.o.d"
  "libalt_workload.a"
  "libalt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
