// Quickstart: the five-minute tour of the ALT-index public API.
//
//   $ ./build/examples/quickstart
//
// Builds an index over a million synthetic keys, then demonstrates point
// lookups, inserts, updates, deletes and range scans, and prints the
// two-layer structure statistics that make ALT-index what it is.
#include <cstdio>
#include <vector>

#include "core/alt_index.h"
#include "datasets/dataset.h"

int main() {
  using namespace alt;

  // 1. Generate sorted, unique keys (stand-in for your data).
  const size_t n = 1000000;
  std::vector<Key> keys = GenerateKeys(Dataset::kOsm, n, /*seed=*/7);
  std::vector<Value> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = keys[i] * 2;

  // 2. Configure and bulk load. The defaults follow the paper: epsilon =
  //    n/1000, gap factor 2, fast pointers and retraining enabled.
  AltOptions options;
  AltIndex index(options);
  Status st = index.BulkLoad(keys.data(), values.data(), n);
  if (!st.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu keys, effective error bound %.0f\n", index.Size(),
              index.effective_error_bound());

  // 3. Point lookup.
  Value v = 0;
  if (index.Lookup(keys[12345], &v)) {
    std::printf("lookup(%llu) -> %llu\n",
                static_cast<unsigned long long>(keys[12345]),
                static_cast<unsigned long long>(v));
  }

  // 4. Insert / duplicate handling.
  const Key fresh = keys[n - 1] + 12345;
  std::printf("insert fresh key: %s\n", index.Insert(fresh, 1) ? "ok" : "exists");
  std::printf("insert same key again: %s\n",
              index.Insert(fresh, 2) ? "ok (BUG!)" : "rejected as duplicate");

  // 5. Update in place and read back.
  index.Update(fresh, 42);
  index.Lookup(fresh, &v);
  std::printf("after update, value = %llu\n", static_cast<unsigned long long>(v));

  // 6. Upsert either inserts or overwrites.
  std::printf("upsert existing -> %s\n",
              index.Upsert(fresh, 43) ? "inserted" : "updated");

  // 7. Remove, and verify it is gone.
  index.Remove(fresh);
  std::printf("after remove, lookup -> %s\n",
              index.Lookup(fresh, &v) ? "found (BUG!)" : "absent");

  // 8. Range scan: 10 smallest keys >= keys[500].
  std::vector<std::pair<Key, Value>> window;
  index.Scan(keys[500], 10, &window);
  std::printf("scan from keys[500]:");
  for (const auto& [k, val] : window) {
    std::printf(" %llu", static_cast<unsigned long long>(k));
  }
  std::printf("\n");

  // 9. Peek inside: the hybrid two-layer structure (paper Fig. 10(c)).
  const AltIndex::Stats stats = index.CollectStats();
  std::printf(
      "\nstructure: %zu GPL models, %zu keys in the learned layer (%.1f%%), "
      "%zu conflict keys in ART-OPT,\n%zu fast pointers (merged from %zu), "
      "%.1f MB total\n",
      stats.num_models, stats.learned_layer_keys,
      100.0 * static_cast<double>(stats.learned_layer_keys) /
          static_cast<double>(stats.learned_layer_keys + stats.art_keys),
      stats.art_keys, stats.fast_pointers, stats.fast_pointer_adds,
      static_cast<double>(stats.memory_bytes) / 1048576.0);
  return 0;
}
