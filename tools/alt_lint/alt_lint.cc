// alt-lint: enforce the ALT-Index concurrency protocols over src/.
//
// Usage:
//   alt-lint [--compdb compile_commands.json] [--verify-compdb]
//            [--src-root DIR]... [file.cc ...]
//
// With --src-root (repeatable: `--src-root src --src-root examples`), every
// *.h / *.cc / *.cpp under each directory is checked (two-pass:
// ALT_REQUIRES_EPOCH names are collected across ALL inputs first, so the
// epoch obligation propagates across translation units, not just within one).
// With --compdb + --verify-compdb, exit non-zero if any src-root source file
// lacks a compile_commands.json entry — the CI gate that keeps the lint
// surface and the build surface identical.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"
#include "lexer.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Extract every "file" value from compile_commands.json. A full JSON parser
// is overkill for the fixed shape CMake emits; scan for the key instead.
std::set<std::string> CompdbFiles(const std::string& json) {
  std::set<std::string> files;
  const std::string key = "\"file\"";
  size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    while (pos < json.size() && (json[pos] == ' ' || json[pos] == ':')) ++pos;
    if (pos >= json.size() || json[pos] != '"') continue;
    ++pos;
    std::string value;
    while (pos < json.size() && json[pos] != '"') {
      if (json[pos] == '\\' && pos + 1 < json.size()) ++pos;
      value += json[pos++];
    }
    files.insert(value);
  }
  return files;
}

std::string Canon(const std::string& path) {
  std::error_code ec;
  fs::path c = fs::weakly_canonical(fs::path(path), ec);
  return ec ? path : c.string();
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Translation units that must appear in the compdb (headers are excluded —
// they compile only through their includers).
bool IsSourceFile(const std::string& path) {
  return HasSuffix(path, ".cc") || HasSuffix(path, ".cpp");
}

}  // namespace

int main(int argc, char** argv) {
  std::string compdb_path;
  std::vector<std::string> src_roots;
  bool verify_compdb = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "alt-lint: " << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--compdb") {
      compdb_path = need_value("--compdb");
    } else if (arg == "--src-root") {
      src_roots.push_back(need_value("--src-root"));
    } else if (arg == "--verify-compdb") {
      verify_compdb = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: alt-lint [--compdb FILE] [--verify-compdb] "
                   "[--src-root DIR]... [file ...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "alt-lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }

  for (const std::string& src_root : src_roots) {
    std::error_code ec;
    if (!fs::is_directory(src_root, ec)) {
      std::cerr << "alt-lint: --src-root '" << src_root
                << "' is not a directory\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp")
        inputs.push_back(entry.path().string());
    }
  }
  if (inputs.empty()) {
    std::cerr << "alt-lint: no input files (pass --src-root or file args)\n";
    return 2;
  }
  std::sort(inputs.begin(), inputs.end());
  inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());

  int exit_code = 0;

  if (verify_compdb) {
    if (compdb_path.empty()) {
      std::cerr << "alt-lint: --verify-compdb requires --compdb\n";
      return 2;
    }
    std::string json;
    if (!ReadFile(compdb_path, &json)) {
      std::cerr << "alt-lint: cannot read compdb '" << compdb_path << "'\n";
      return 2;
    }
    std::set<std::string> canon_db;
    for (const std::string& f : CompdbFiles(json)) canon_db.insert(Canon(f));
    for (const std::string& in : inputs) {
      if (!IsSourceFile(in)) continue;
      if (!canon_db.count(Canon(in))) {
        std::cerr << "alt-lint: " << in
                  << " missing from compile_commands.json — the lint/build "
                     "surfaces have diverged (is the file in a CMake target?)"
                  << "\n";
        exit_code = 1;
      }
    }
  }

  // Pass 1: ALT_REQUIRES_EPOCH names across every input.
  std::vector<altlint::LexedFile> lexed;
  lexed.reserve(inputs.size());
  std::set<std::string> epoch_fns;
  for (const std::string& path : inputs) {
    std::string source;
    if (!ReadFile(path, &source)) {
      std::cerr << "alt-lint: cannot read '" << path << "'\n";
      return 2;
    }
    lexed.push_back(altlint::Lex(path, source));
    altlint::CollectEpochFunctions(lexed.back(), &epoch_fns);
  }

  // Pass 2: checks + suppression accounting.
  int total_findings = 0;
  std::map<std::string, int> suppressed;
  for (const altlint::LexedFile& file : lexed) {
    altlint::CheckResult result = altlint::Check(file, epoch_fns);
    for (const altlint::Finding& f : result.findings) {
      std::cout << f.path << ":" << f.line << ":" << f.col << ": error: ["
                << f.check << "] " << f.message << "\n";
      ++total_findings;
    }
    for (const auto& [check, n] : result.suppressed) suppressed[check] += n;
  }

  int total_suppressed = 0;
  std::string breakdown;
  for (const auto& [check, n] : suppressed) {
    total_suppressed += n;
    breakdown += (breakdown.empty() ? "" : ", ") + check + ": " + std::to_string(n);
  }
  std::cout << "alt-lint: " << total_findings << " finding(s), "
            << total_suppressed << " suppression(s)"
            << (breakdown.empty() ? "" : " [" + breakdown + "]") << " in "
            << lexed.size() << " file(s)\n";

  if (total_findings > 0) exit_code = 1;
  return exit_code;
}
