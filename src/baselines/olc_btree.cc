#include "baselines/olc_btree.h"

#include <algorithm>
#include <cassert>

namespace alt {

OlcBTree::OlcBTree() { root_.store(new LeafNode(), std::memory_order_release); }

OlcBTree::~OlcBTree() { DeleteSubtree(root_.load(std::memory_order_acquire)); }

void OlcBTree::DeleteSubtree(Node* node) {
  if (node->is_leaf) {
    delete static_cast<LeafNode*>(node);
    return;
  }
  auto* inner = static_cast<Inner*>(node);
  const int n = inner->count.load(std::memory_order_relaxed);
  for (int i = 0; i <= n; ++i) {
    DeleteSubtree(inner->children[i].load(std::memory_order_relaxed));
  }
  delete inner;
}

size_t OlcBTree::SubtreeBytes(const Node* node) {
  if (node->is_leaf) return sizeof(LeafNode);
  const auto* inner = static_cast<const Inner*>(node);
  size_t total = sizeof(Inner);
  const int n = inner->count.load(std::memory_order_relaxed);
  for (int i = 0; i <= n; ++i) {
    total += SubtreeBytes(inner->children[i].load(std::memory_order_relaxed));
  }
  return total;
}

size_t OlcBTree::MemoryUsage() const {
  return SubtreeBytes(root_.load(std::memory_order_acquire));
}

size_t OlcBTree::Height() const {
  size_t h = 1;
  const Node* node = root_.load(std::memory_order_acquire);
  while (!node->is_leaf) {
    node = static_cast<const Inner*>(node)->children[0].load(std::memory_order_acquire);
    ++h;
  }
  return h;
}

Status OlcBTree::BulkLoad(const Key* keys, const Value* values, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && keys[i] <= keys[i - 1]) {
      return Status::InvalidArgument("keys must be sorted and duplicate-free");
    }
    Insert(keys[i], values[i]);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Splits (called mid-descent; every split restarts the operation)
// ---------------------------------------------------------------------------

void OlcBTree::SplitRoot(Node* node, uint64_t v, bool* restarted) ALT_OPTIMISTIC_PATH {
  *restarted = true;  // the caller always restarts after a (attempted) split
  bool fail = false;
  uint64_t mv = meta_lock_.ReadLockOrRestart(&fail);
  if (fail) return;
  if (root_.load(std::memory_order_acquire) != node) return;
  meta_lock_.UpgradeToWriteLockOrRestart(mv, &fail);
  if (fail) return;
  node->lock.UpgradeToWriteLockOrRestart(v, &fail);
  if (fail) {
    meta_lock_.WriteUnlock();
    return;
  }
  auto* new_root = new Inner();
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    auto* right = new LeafNode();
    const int n = leaf->count.load(std::memory_order_relaxed);
    const int mid = n / 2;
    for (int i = mid; i < n; ++i) {
      right->keys[i - mid] = leaf->keys[i];
      right->values[i - mid].store(leaf->values[i].load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
    }
    right->count.store(static_cast<uint16_t>(n - mid), std::memory_order_relaxed);
    right->next.store(leaf->next.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    leaf->count.store(static_cast<uint16_t>(mid), std::memory_order_release);
    leaf->next.store(right, std::memory_order_release);
    new_root->keys[0] = right->keys[0];
    new_root->children[0].store(leaf, std::memory_order_relaxed);
    new_root->children[1].store(right, std::memory_order_relaxed);
  } else {
    auto* inner = static_cast<Inner*>(node);
    auto* right = new Inner();
    const int n = inner->count.load(std::memory_order_relaxed);
    const int mid = n / 2;
    const Key sep = inner->keys[mid];
    for (int i = mid + 1; i < n; ++i) right->keys[i - mid - 1] = inner->keys[i];
    for (int i = mid + 1; i <= n; ++i) {
      right->children[i - mid - 1].store(
          inner->children[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    right->count.store(static_cast<uint16_t>(n - mid - 1), std::memory_order_relaxed);
    inner->count.store(static_cast<uint16_t>(mid), std::memory_order_release);
    new_root->keys[0] = sep;
    new_root->children[0].store(inner, std::memory_order_relaxed);
    new_root->children[1].store(right, std::memory_order_relaxed);
  }
  new_root->count.store(1, std::memory_order_relaxed);
  root_.store(new_root, std::memory_order_release);
  node->lock.WriteUnlock();
  meta_lock_.WriteUnlock();
}

// OLC escape: conditional upgrades (UpgradeToWriteLockOrRestart) against the
// versions observed by the caller; any mismatch restarts the insert.
void OlcBTree::SplitChild(Inner* parent, uint64_t pv, Node* child, uint64_t cv,
                          bool* restarted) ALT_OPTIMISTIC_PATH {
  *restarted = true;
  bool fail = false;
  parent->lock.UpgradeToWriteLockOrRestart(pv, &fail);
  if (fail) return;
  child->lock.UpgradeToWriteLockOrRestart(cv, &fail);
  if (fail) {
    parent->lock.WriteUnlock();
    return;
  }
  Key sep;
  Node* right_node;
  if (child->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(child);
    auto* right = new LeafNode();
    const int n = leaf->count.load(std::memory_order_relaxed);
    const int mid = n / 2;
    for (int i = mid; i < n; ++i) {
      right->keys[i - mid] = leaf->keys[i];
      right->values[i - mid].store(leaf->values[i].load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
    }
    right->count.store(static_cast<uint16_t>(n - mid), std::memory_order_relaxed);
    right->next.store(leaf->next.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    leaf->count.store(static_cast<uint16_t>(mid), std::memory_order_release);
    leaf->next.store(right, std::memory_order_release);
    sep = right->keys[0];
    right_node = right;
  } else {
    auto* inner = static_cast<Inner*>(child);
    auto* right = new Inner();
    const int n = inner->count.load(std::memory_order_relaxed);
    const int mid = n / 2;
    sep = inner->keys[mid];
    for (int i = mid + 1; i < n; ++i) right->keys[i - mid - 1] = inner->keys[i];
    for (int i = mid + 1; i <= n; ++i) {
      right->children[i - mid - 1].store(
          inner->children[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    right->count.store(static_cast<uint16_t>(n - mid - 1), std::memory_order_relaxed);
    inner->count.store(static_cast<uint16_t>(mid), std::memory_order_release);
    right_node = right;
  }
  // Insert (sep, right_node) into the parent, which has room (eager splits).
  const int pn = parent->count.load(std::memory_order_relaxed);
  assert(pn < kInnerFanout - 1);
  int pos = 0;
  while (pos < pn && parent->keys[pos] < sep) ++pos;
  for (int i = pn; i > pos; --i) {
    parent->keys[i] = parent->keys[i - 1];
    parent->children[i + 1].store(parent->children[i].load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
  }
  parent->keys[pos] = sep;
  parent->children[pos + 1].store(right_node, std::memory_order_release);
  parent->count.store(static_cast<uint16_t>(pn + 1), std::memory_order_release);
  child->lock.WriteUnlock();
  parent->lock.WriteUnlock();
}

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

bool OlcBTree::Lookup(Key key, Value* out) {
  for (;;) {
    bool restart = false;
    uint64_t mv = meta_lock_.ReadLockOrRestart(&restart);
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->lock.ReadLockOrRestart(&restart);
    meta_lock_.CheckOrRestart(mv, &restart);
    if (restart) continue;
    bool done = false;
    bool found = false;
    while (!done) {
      if (node->is_leaf) {
        auto* leaf = static_cast<LeafNode*>(node);
        const int pos = leaf->LowerBound(key);
        Value val = 0;
        bool hit = false;
        if (pos < leaf->count.load(std::memory_order_relaxed) &&
            leaf->keys[pos] == key) {
          val = leaf->values[pos].load(std::memory_order_relaxed);
          hit = true;
        }
        leaf->lock.CheckOrRestart(v, &restart);
        if (restart) break;
        if (hit) *out = val;
        found = hit;
        done = true;
        break;
      }
      auto* inner = static_cast<Inner*>(node);
      const int idx = inner->ChildIndex(key);
      Node* child = inner->children[idx].load(std::memory_order_acquire);
      inner->lock.CheckOrRestart(v, &restart);
      if (restart) break;
      uint64_t cv = child->lock.ReadLockOrRestart(&restart);
      if (restart) break;
      inner->lock.CheckOrRestart(v, &restart);
      if (restart) break;
      node = child;
      v = cv;
    }
    if (!restart) return found;
  }
}

// OLC escape: read-lock coupling (ReadLockOrRestart/CheckOrRestart) with
// conditional write upgrades; every mismatch restarts from the root.
OlcBTree::Op OlcBTree::InsertImpl(Key key, Value value) ALT_OPTIMISTIC_PATH {
  bool restart = false;
  uint64_t mv = meta_lock_.ReadLockOrRestart(&restart);
  Node* node = root_.load(std::memory_order_acquire);
  uint64_t v = node->lock.ReadLockOrRestart(&restart);
  meta_lock_.CheckOrRestart(mv, &restart);
  if (restart) return Op::kRestart;

  // Eager root split keeps the descent invariant "parent has room".
  const bool root_full = node->is_leaf ? static_cast<LeafNode*>(node)->IsFull()
                                       : static_cast<Inner*>(node)->IsFull();
  if (root_full) {
    bool restarted = false;
    SplitRoot(node, v, &restarted);
    return Op::kRestart;
  }

  while (!node->is_leaf) {
    auto* inner = static_cast<Inner*>(node);
    const int idx = inner->ChildIndex(key);
    Node* child = inner->children[idx].load(std::memory_order_acquire);
    inner->lock.CheckOrRestart(v, &restart);
    if (restart) return Op::kRestart;
    uint64_t cv = child->lock.ReadLockOrRestart(&restart);
    if (restart) return Op::kRestart;
    inner->lock.CheckOrRestart(v, &restart);
    if (restart) return Op::kRestart;
    const bool child_full = child->is_leaf ? static_cast<LeafNode*>(child)->IsFull()
                                           : static_cast<Inner*>(child)->IsFull();
    if (child_full) {
      bool restarted = false;
      SplitChild(inner, v, child, cv, &restarted);
      return Op::kRestart;
    }
    node = child;
    v = cv;
  }

  auto* leaf = static_cast<LeafNode*>(node);
  const int pos = leaf->LowerBound(key);
  const int n = leaf->count.load(std::memory_order_relaxed);
  const bool exists = pos < n && leaf->keys[pos] == key;
  leaf->lock.CheckOrRestart(v, &restart);
  if (restart) return Op::kRestart;
  if (exists) return Op::kExists;
  leaf->lock.UpgradeToWriteLockOrRestart(v, &restart);
  if (restart) return Op::kRestart;
  for (int i = n; i > pos; --i) {
    leaf->keys[i] = leaf->keys[i - 1];
    leaf->values[i].store(leaf->values[i - 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  leaf->keys[pos] = key;
  leaf->values[pos].store(value, std::memory_order_relaxed);
  leaf->count.store(static_cast<uint16_t>(n + 1), std::memory_order_release);
  leaf->lock.WriteUnlock();
  return Op::kDone;
}

bool OlcBTree::Insert(Key key, Value value) {
  for (;;) {
    const Op r = InsertImpl(key, value);
    if (r == Op::kDone) {
      size_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (r == Op::kExists) return false;
  }
}

// Same restart-validated OLC coupling as InsertImpl.
bool OlcBTree::Update(Key key, Value value) ALT_OPTIMISTIC_PATH {
  for (;;) {
    bool restart = false;
    uint64_t mv = meta_lock_.ReadLockOrRestart(&restart);
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->lock.ReadLockOrRestart(&restart);
    meta_lock_.CheckOrRestart(mv, &restart);
    if (restart) continue;
    while (!restart && !node->is_leaf) {
      auto* inner = static_cast<Inner*>(node);
      Node* child = inner->children[inner->ChildIndex(key)].load(
          std::memory_order_acquire);
      inner->lock.CheckOrRestart(v, &restart);
      if (restart) break;
      uint64_t cv = child->lock.ReadLockOrRestart(&restart);
      if (restart) break;
      inner->lock.CheckOrRestart(v, &restart);
      if (restart) break;
      node = child;
      v = cv;
    }
    if (restart) continue;
    auto* leaf = static_cast<LeafNode*>(node);
    const int pos = leaf->LowerBound(key);
    const bool hit =
        pos < leaf->count.load(std::memory_order_relaxed) && leaf->keys[pos] == key;
    if (!hit) {
      leaf->lock.CheckOrRestart(v, &restart);
      if (restart) continue;
      return false;
    }
    leaf->lock.UpgradeToWriteLockOrRestart(v, &restart);
    if (restart) continue;
    leaf->values[pos].store(value, std::memory_order_relaxed);
    leaf->lock.WriteUnlock();
    return true;
  }
}

// Same restart-validated OLC coupling as InsertImpl.
OlcBTree::Op OlcBTree::RemoveImpl(Key key) ALT_OPTIMISTIC_PATH {
  bool restart = false;
  uint64_t mv = meta_lock_.ReadLockOrRestart(&restart);
  Node* node = root_.load(std::memory_order_acquire);
  uint64_t v = node->lock.ReadLockOrRestart(&restart);
  meta_lock_.CheckOrRestart(mv, &restart);
  if (restart) return Op::kRestart;
  while (!node->is_leaf) {
    auto* inner = static_cast<Inner*>(node);
    Node* child =
        inner->children[inner->ChildIndex(key)].load(std::memory_order_acquire);
    inner->lock.CheckOrRestart(v, &restart);
    if (restart) return Op::kRestart;
    uint64_t cv = child->lock.ReadLockOrRestart(&restart);
    if (restart) return Op::kRestart;
    inner->lock.CheckOrRestart(v, &restart);
    if (restart) return Op::kRestart;
    node = child;
    v = cv;
  }
  auto* leaf = static_cast<LeafNode*>(node);
  const int pos = leaf->LowerBound(key);
  const int n = leaf->count.load(std::memory_order_relaxed);
  const bool hit = pos < n && leaf->keys[pos] == key;
  leaf->lock.CheckOrRestart(v, &restart);
  if (restart) return Op::kRestart;
  if (!hit) return Op::kNotFound;
  leaf->lock.UpgradeToWriteLockOrRestart(v, &restart);
  if (restart) return Op::kRestart;
  // Lazy removal: shift left within the leaf; empty leaves linger (no
  // underflow merging, see class comment).
  for (int i = pos; i < n - 1; ++i) {
    leaf->keys[i] = leaf->keys[i + 1];
    leaf->values[i].store(leaf->values[i + 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  leaf->count.store(static_cast<uint16_t>(n - 1), std::memory_order_release);
  leaf->lock.WriteUnlock();
  return Op::kDone;
}

bool OlcBTree::Remove(Key key) {
  for (;;) {
    const Op r = RemoveImpl(key);
    if (r == Op::kDone) {
      size_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    if (r == Op::kNotFound) return false;
  }
}

size_t OlcBTree::Scan(Key start, size_t count,
                      std::vector<std::pair<Key, Value>>* out) {
  out->clear();
  if (count == 0) return 0;
  Key resume = start;
  for (;;) {
    // Descend to the leaf covering `resume`.
    bool restart = false;
    uint64_t mv = meta_lock_.ReadLockOrRestart(&restart);
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->lock.ReadLockOrRestart(&restart);
    meta_lock_.CheckOrRestart(mv, &restart);
    if (restart) continue;
    while (!restart && !node->is_leaf) {
      auto* inner = static_cast<Inner*>(node);
      Node* child = inner->children[inner->ChildIndex(resume)].load(
          std::memory_order_acquire);
      inner->lock.CheckOrRestart(v, &restart);
      if (restart) break;
      uint64_t cv = child->lock.ReadLockOrRestart(&restart);
      if (restart) break;
      inner->lock.CheckOrRestart(v, &restart);
      if (restart) break;
      node = child;
      v = cv;
    }
    if (restart) continue;
    // Walk the leaf chain collecting validated snapshots.
    auto* leaf = static_cast<LeafNode*>(node);
    while (leaf != nullptr && out->size() < count) {
      const size_t checkpoint = out->size();
      const int n = leaf->count.load(std::memory_order_relaxed);
      LeafNode* next = leaf->next.load(std::memory_order_relaxed);
      for (int i = leaf->LowerBound(resume); i < n && out->size() < count; ++i) {
        out->emplace_back(leaf->keys[i],
                          leaf->values[i].load(std::memory_order_relaxed));
      }
      leaf->lock.CheckOrRestart(v, &restart);
      if (restart) {
        out->resize(checkpoint);
        break;  // restart the descent from `resume`
      }
      if (!out->empty()) resume = out->back().first + 1;
      leaf = next;
      if (leaf != nullptr) {
        v = leaf->lock.ReadLockOrRestart(&restart);
        if (restart) break;
      }
    }
    if (!restart) return out->size();
  }
}

}  // namespace alt
