file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8c_scan.dir/bench_fig8c_scan.cc.o"
  "CMakeFiles/bench_fig8c_scan.dir/bench_fig8c_scan.cc.o.d"
  "bench_fig8c_scan"
  "bench_fig8c_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8c_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
