#pragma once

#include <memory>

#include "common/index_interface.h"
#include "core/alt_index.h"

namespace alt {

/// ConcurrentIndex facade over AltIndex, for the shared bench/test harness.
class AltIndexAdapter : public ConcurrentIndex {
 public:
  explicit AltIndexAdapter(AltOptions options = AltOptions{})
      : index_(std::make_unique<AltIndex>(options)) {}

  std::string Name() const override { return "ALT-index"; }

  Status BulkLoad(const Key* keys, const Value* values, size_t n) override {
    return index_->BulkLoad(keys, values, n);
  }
  bool Lookup(Key key, Value* out) override { return index_->Lookup(key, out); }
  size_t LookupBatch(const Key* keys, size_t n, Value* out, bool* found) override {
    return index_->LookupBatch(keys, n, out, found);
  }
  bool Insert(Key key, Value value) override { return index_->Insert(key, value); }
  bool Update(Key key, Value value) override { return index_->Update(key, value); }
  bool Remove(Key key) override { return index_->Remove(key); }
  bool LookupServed(Key key, Value* out, ServedBy* served) override {
    return index_->Lookup(key, out, served);
  }
  bool InsertServed(Key key, Value value, ServedBy* served) override {
    return index_->Insert(key, value, served);
  }
  bool UpdateServed(Key key, Value value, ServedBy* served) override {
    return index_->Update(key, value, served);
  }
  bool RemoveServed(Key key, ServedBy* served) override {
    return index_->Remove(key, served);
  }
  MemoryBreakdown CollectMemoryBreakdown() const override {
    const AltIndex::StructuralStats st = index_->CollectStructuralStats();
    MemoryBreakdown b;
    b.model_bytes = st.model_bytes;
    b.delta_bytes = st.art_bytes + st.expansion_bytes;
    b.auxiliary_bytes =
        st.fast_pointer_bytes + st.directory_bytes + st.header_bytes;
    return b;
  }
  std::string StructureJson() const override { return index_->StructureJson(); }
  size_t Scan(Key start, size_t count,
              std::vector<std::pair<Key, Value>>* out) override {
    return index_->Scan(start, count, out);
  }
  size_t MemoryUsage() const override { return index_->MemoryUsage(); }
  size_t Size() const override { return index_->Size(); }

  AltIndex& index() { return *index_; }
  const AltIndex& index() const { return *index_; }

 private:
  std::unique_ptr<AltIndex> index_;
};

}  // namespace alt
