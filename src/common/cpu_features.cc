#include "common/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace alt {
namespace cpu {

namespace {

Features Detect() {
  Features f;
#if ALT_SIMD_X86
  f.compiled_simd = true;
  // __builtin_cpu_supports checks CPUID *and* that the OS enabled the ymm
  // state (XSAVE), so a positive answer means AVX2 instructions will not trap.
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
  const char* force = std::getenv("ALT_FORCE_SCALAR");
  f.forced_scalar = force != nullptr && force[0] != '\0' &&
                    std::strcmp(force, "0") != 0;
  return f;
}

}  // namespace

const Features& GetFeatures() {
  static const Features f = Detect();
  return f;
}

bool SimdEnabled() {
  // Function-local static: thread-safe one-time detection, then a guard-bit
  // check + load per call. The callers sit next to a binary search or an
  // O(num_slots) walk, so this never shows up in a profile.
  static const bool enabled = [] {
    const Features& f = GetFeatures();
    return f.compiled_simd && f.avx2 && !f.forced_scalar;
  }();
  return enabled;
}

const char* SimdModeName() {
  const Features& f = GetFeatures();
  if (!f.compiled_simd) return "scalar (compiled out)";
  if (f.forced_scalar) return "scalar (forced)";
  if (!f.avx2) return "scalar (no avx2)";
  return "avx2";
}

}  // namespace cpu
}  // namespace alt
