#pragma once

#include <cstddef>
#include <cstdint>

#include "common/cpu_features.h"
#include "common/lint_annotations.h"

namespace alt {
namespace simd {

/// \brief Vector kernels for the two read-path hot loops (DESIGN.md §10): the
/// upper-model first-key search and the slot-state skip-scan. Every kernel has
/// an always-compiled scalar twin with bit-identical results; dispatch is one
/// cached-bool branch (cpu::SimdEnabled), so ALT_FORCE_SCALAR=1 or a non-AVX2
/// machine degrades to exactly the pre-vectorization behaviour.

// ---------------------------------------------------------------------------
// Upper-model probe: branchless lower/upper bound over sorted u64 arrays
// ---------------------------------------------------------------------------

/// Window below which the AVX2 search stops bisecting and sweeps 8 keys per
/// iteration (two 256-bit compares + movemask). 64 keys = 8 sweeps worst case
/// over one 512-byte span — cheaper than 6 more dependent binary-search steps
/// once the window is cache-resident, and the whole window is contiguous so
/// the hardware prefetcher covers it.
inline constexpr size_t kSimdSearchCutover = 64;

/// Scalar branch-reduced upper bound: index of the first element in
/// [data+lo, data+hi) greater than `key`, or hi. The pre-SIMD Locate loop,
/// kept as the always-available fallback and differential-test oracle.
inline size_t UpperBoundU64Scalar(const uint64_t* data, size_t lo, size_t hi,
                                  uint64_t key) {
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (data[mid] <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

#if ALT_SIMD_X86
namespace detail {
/// AVX2 upper bound (simd.cc, target("avx2")): bisect to kSimdSearchCutover,
/// then 8-way compare+movemask sweep. Bit-identical to the scalar twin.
size_t UpperBoundU64Avx2(const uint64_t* data, size_t lo, size_t hi,
                         uint64_t key);
}  // namespace detail
#endif

/// Dispatched upper bound over the sorted range [data+lo, data+hi).
inline size_t UpperBoundU64(const uint64_t* data, size_t lo, size_t hi,
                            uint64_t key) {
#if ALT_SIMD_X86
  if (cpu::SimdEnabled()) return detail::UpperBoundU64Avx2(data, lo, hi, key);
#endif
  return UpperBoundU64Scalar(data, lo, hi, key);
}

// ---------------------------------------------------------------------------
// Slot-state scan: 8 strided 32-bit slot words per step
// ---------------------------------------------------------------------------

/// One vector step over 8 slot words read (plain, non-atomic — see the TSan
/// note in cpu_features.h) from `first_slot`, `first_slot + stride`, ...,
/// `first_slot + 7*stride`.
///
/// `state_mask[s]` has bit L set iff lane L's word carries SlotState s *and*
/// the writer bit is clear; `busy_mask` collects lanes with the writer bit set
/// (an in-flight writer). Busy lanes appear in no state mask — callers re-read
/// them through SlotWord::Read(), which spins to a stable word.
struct SlotScan8 {
  uint8_t state_mask[4] = {0, 0, 0, 0};
  uint8_t busy_mask = 0;
};

/// Scalar twin of the gather kernel; also the oracle for the differential
/// test. Reads the words with plain loads like the vector path so both see
/// the same (possibly in-flight) values under concurrency.
SlotScan8 ScanSlotWords8Scalar(const void* first_slot, size_t stride)
    ALT_REQUIRES_EPOCH;

#if ALT_SIMD_X86
namespace detail {
/// AVX2 gather kernel (simd.cc, target("avx2")).
SlotScan8 ScanSlotWords8Avx2(const void* first_slot, size_t stride)
    ALT_REQUIRES_EPOCH;
}  // namespace detail
#endif

inline SlotScan8 ScanSlotWords8(const void* first_slot,
                                size_t stride) ALT_REQUIRES_EPOCH {
#if ALT_SIMD_X86
  if (cpu::SimdEnabled()) return detail::ScanSlotWords8Avx2(first_slot, stride);
#endif
  return ScanSlotWords8Scalar(first_slot, stride);
}

}  // namespace simd
}  // namespace alt
