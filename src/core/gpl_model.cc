#include "core/gpl_model.h"

namespace alt {

GplModel::GplModel(Key first_key, double slope, uint32_t num_slots, uint32_t build_size,
                   Key coverage_end)
    : first_key_(first_key),
      slope_(slope),
      num_slots_(num_slots == 0 ? 1 : num_slots),
      build_size_(build_size),
      coverage_end_(coverage_end),
      slots_(new GplSlot[num_slots == 0 ? 1 : num_slots]) {}

Expansion::~Expansion() {
  if (!done.load(std::memory_order_acquire)) delete new_model;
}

GplModel::~GplModel() {
  Expansion* e = expansion_.load(std::memory_order_acquire);
  delete e;
}

uint32_t GplModel::CountOccupied() const {
  uint32_t n = 0;
  for (uint32_t i = 0; i < num_slots_; ++i) {
    if (SlotWord::StateOf(slots_[i].word.Read()) == SlotState::kOccupied) ++n;
  }
  return n;
}

void GplModel::CountSlotStates(size_t counts[4]) const {
  for (uint32_t i = 0; i < num_slots_; ++i) {
    const uint32_t state = static_cast<uint32_t>(SlotWord::StateOf(slots_[i].word.Read()));
    counts[state & 3]++;
  }
}

void GplModel::CollectRange(Key lo, Key hi, std::vector<std::pair<Key, Value>>* out,
                            size_t limit) const {
  size_t appended = 0;
  // Placement is monotone in the key, so no key >= lo sits left of
  // Predict(lo), and the first resident key beyond hi ends the walk.
  for (uint32_t i = Predict(lo); i < num_slots_ && appended < limit; ++i) {
    const GplSlot& s = slots_[i];
    for (;;) {
      const uint32_t w = s.word.Read();
      if (SlotWord::StateOf(w) != SlotState::kOccupied) break;
      const Key k = s.OptimisticKey();
      const Value v = s.OptimisticValue();
      if (!s.word.Validate(w)) continue;  // concurrent writer: re-read the slot
      if (k > hi) return;
      if (k >= lo) {
        out->emplace_back(k, v);
        ++appended;
      }
      break;
    }
  }
}

}  // namespace alt
