#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/key_codec.h"
#include "core/alt_index.h"

namespace alt {
namespace shard {

/// \brief Pull cursor over one AltIndex's merged key space, batched on top of
/// Scan (which pins the index's own epoch manager internally, so the cursor
/// needs no guard of its own). Yields ascending (key, value) pairs; each pair
/// was live at some point during iteration (same contract as AltIndex::Scan).
class AltIndexScanCursor {
 public:
  AltIndexScanCursor(const AltIndex* index, Key start, size_t batch = 128)
      : index_(index), next_start_(start), batch_(batch == 0 ? 1 : batch) {}

  /// \return true and fill *out with the next pair, false when exhausted.
  bool Next(std::pair<Key, Value>* out) {
    if (pos_ >= buf_.size()) {
      if (exhausted_) return false;
      Refill();
      if (buf_.empty()) return false;
    }
    *out = buf_[pos_++];
    return true;
  }

 private:
  void Refill() {
    index_->Scan(next_start_, batch_, &buf_);
    pos_ = 0;
    if (buf_.size() < batch_ || buf_.back().first == ~Key{0}) {
      exhausted_ = true;
    } else {
      next_start_ = buf_.back().first + 1;
    }
  }

  const AltIndex* index_;
  Key next_start_;
  size_t batch_;
  std::vector<std::pair<Key, Value>> buf_;
  size_t pos_ = 0;
  bool exhausted_ = false;
};

/// \brief K-way merge over pull cursors producing ascending (key, value)
/// streams — the cross-shard Scan/RangeQuery engine (DESIGN.md §12), written
/// against a cursor concept (`bool Next(std::pair<Key,Value>*)`) so the
/// serving layer can reuse it over remote-partition cursors later.
///
/// Ordering: global ascending by key; ties across sources resolve to the
/// lowest source index and the duplicates are dropped (first-copy-wins, the
/// same policy AltIndex::Scan applies to expansion-seam duplicates). Sources
/// whose streams are disjoint ranges degrade to sequential concatenation.
template <typename Cursor>
class KWayMerger {
 public:
  explicit KWayMerger(std::vector<Cursor> sources) : sources_(std::move(sources)) {
    heap_.reserve(sources_.size());
    for (size_t i = 0; i < sources_.size(); ++i) {
      Item it{{0, 0}, i};
      if (sources_[i].Next(&it.kv)) Push(it);
    }
  }

  /// \return true and fill *out with the globally next pair, false when every
  /// source is exhausted.
  bool Next(std::pair<Key, Value>* out) {
    while (!heap_.empty()) {
      Item top = Pop();
      Item refill{{0, 0}, top.src};
      if (sources_[top.src].Next(&refill.kv)) Push(refill);
      if (has_last_ && top.kv.first == last_key_) continue;
      has_last_ = true;
      last_key_ = top.kv.first;
      *out = top.kv;
      return true;
    }
    return false;
  }

 private:
  struct Item {
    std::pair<Key, Value> kv;
    size_t src;
  };
  // Min-heap via std::*_heap with the inverted comparison; ties break toward
  // the lower source index so first-copy-wins is deterministic.
  struct After {
    bool operator()(const Item& a, const Item& b) const {
      if (a.kv.first != b.kv.first) return a.kv.first > b.kv.first;
      return a.src > b.src;
    }
  };

  void Push(const Item& it) {
    heap_.push_back(it);
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }

  Item Pop() {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    Item it = heap_.back();
    heap_.pop_back();
    return it;
  }

  std::vector<Cursor> sources_;
  std::vector<Item> heap_;
  Key last_key_ = 0;
  bool has_last_ = false;
};

}  // namespace shard
}  // namespace alt
