#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/index_interface.h"
#include "core/alt_options.h"

namespace alt {

/// Create an index by name: "alt", "alex", "lipp", "xindex", "finedex",
/// "art", "btree-olc", "btree" (the std::map oracle). Returns nullptr for
/// unknown names.
/// `alt_options` configures the ALT-index instance (others ignore it).
std::unique_ptr<ConcurrentIndex> MakeIndex(const std::string& name,
                                           const AltOptions& alt_options = {});

/// The paper's Fig. 7/9 competitor lineup, in presentation order:
/// alt, alex, lipp, finedex, xindex, art.
std::vector<std::string> PaperIndexLineup();

}  // namespace alt
