#pragma once

#include <cstdint>

#include "common/random.h"

namespace alt {

/// \brief Zipfian rank generator following the YCSB formulation
/// (Gray et al., "Quickly generating billion-record synthetic databases").
///
/// Draws ranks in [0, n) where rank r has probability proportional to
/// 1 / (r+1)^theta. The paper's read workloads use theta = 0.99 (§IV-A2).
/// ScrambledZipf additionally hashes the rank so that hot items are spread
/// uniformly across the key space, which is the YCSB default and what learned
/// index papers mean by "zipfian reads".
class Zipf {
 public:
  /// \param n number of distinct items
  /// \param theta skew in [0, ~1.3]; 0 is uniform-ish, 0.99 is YCSB default
  Zipf(uint64_t n, double theta, uint64_t seed = 1);

  /// Next rank in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Rng rng_;
};

/// \brief Zipfian ranks scrambled through a 64-bit mixer so the hot set is not
/// clustered at the low end of the key array.
class ScrambledZipf {
 public:
  ScrambledZipf(uint64_t n, double theta, uint64_t seed = 1) : zipf_(n, theta, seed) {}

  uint64_t Next() {
    // Offset before mixing: Mix64(0) == 0, which would pin the hottest rank
    // to index 0 instead of scattering it.
    return Mix64(zipf_.Next() + 0x9e3779b97f4a7c15ULL) % zipf_.n();
  }

 private:
  Zipf zipf_;
};

}  // namespace alt
