// google-benchmark micro-benchmarks for the ART-OPT substrate: point ops and
// the fast-pointer hint entry points (LookupFrom vs root Lookup).
#include <benchmark/benchmark.h>

#include "art/art_tree.h"
#include "common/epoch.h"
#include "common/random.h"
#include "datasets/dataset.h"

namespace {

using namespace alt;

struct Fixture {
  art::ArtTree tree;
  std::vector<Key> keys;
  art::Node* lca = nullptr;

  explicit Fixture(size_t n) {
    keys = GenerateKeys(Dataset::kOsm, n, 3);
    EpochGuard g;
    for (size_t i = 0; i < keys.size(); ++i) tree.Insert(keys[i], ValueFor(keys[i]));
    int depth = 0;
    lca = tree.FindLcaNode(keys[n / 4], keys[n / 4 + n / 64], &depth);
  }
};

Fixture& GlobalFixture() {
  static Fixture f(200000);
  return f;
}

void BM_ArtLookup(benchmark::State& state) {
  auto& f = GlobalFixture();
  EpochGuard g;
  size_t i = 0;
  for (auto _ : state) {
    Value v;
    benchmark::DoNotOptimize(f.tree.Lookup(f.keys[i % f.keys.size()], &v));
    i += 7919;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_ArtLookupFromHint(benchmark::State& state) {
  auto& f = GlobalFixture();
  EpochGuard g;
  const size_t base = f.keys.size() / 4;
  const size_t span = f.keys.size() / 64;
  size_t i = 0;
  for (auto _ : state) {
    Value v;
    benchmark::DoNotOptimize(
        f.tree.LookupFrom(f.lca, f.keys[base + (i % span)], &v));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_ArtInsertRemove(benchmark::State& state) {
  auto& f = GlobalFixture();
  EpochGuard g;
  uint64_t salt = 0x123456789abcdefULL;
  for (auto _ : state) {
    const Key k = Mix64(salt++) | 1;  // avoid colliding with the fixture keys
    f.tree.Insert(k, 1);
    f.tree.Remove(k);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 2));
}

void BM_ArtScan100(benchmark::State& state) {
  auto& f = GlobalFixture();
  EpochGuard g;
  std::vector<std::pair<Key, Value>> out;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tree.Scan(f.keys[(i * 131) % f.keys.size()], 100, &out));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 100));
}

}  // namespace

BENCHMARK(BM_ArtLookup);
BENCHMARK(BM_ArtLookupFromHint);
BENCHMARK(BM_ArtInsertRemove);
BENCHMARK(BM_ArtScan100);

BENCHMARK_MAIN();
