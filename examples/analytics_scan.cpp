// analytics_scan: range-query analytics over a spatial-style dataset — the
// §III-G "Range Query" path that merges the learned layer with ART-OPT.
//
//   $ ./build/examples/analytics_scan
//
// Loads longitude/latitude-derived keys (the paper's hardest distribution),
// then answers windowed aggregation queries (count, sum, min/max of values in
// a key range) while a writer keeps appending fresh measurements.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/alt_index.h"
#include "datasets/dataset.h"

int main() {
  using namespace alt;
  const size_t n = 400000;
  std::vector<Key> keys = GenerateKeys(Dataset::kLonglat, n, 5);
  std::vector<Value> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = i % 1000;  // "measurement"

  AltIndex index;
  if (!index.BulkLoad(keys.data(), values.data(), n).ok()) return 1;
  std::printf("analytics_scan: %zu measurements loaded (longlat clusters)\n", n);

  // Background ingestion: new measurements trickle in between existing keys.
  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    Rng rng(77);
    while (!stop.load(std::memory_order_acquire)) {
      const Key base = keys[rng.NextBounded(n)];
      index.Insert(base + 1 + rng.NextBounded(1000), rng.NextBounded(1000));
    }
  });

  // Foreground analytics: windowed aggregations over key ranges.
  Rng rng(13);
  std::vector<std::pair<Key, Value>> window;
  const Stopwatch sw;
  uint64_t total_rows = 0;
  constexpr int kQueries = 200;
  for (int q = 0; q < kQueries; ++q) {
    const size_t a = rng.NextBounded(n - 2000);
    const Key lo = keys[a];
    const Key hi = keys[a + 1500];
    index.RangeQuery(lo, hi, &window);
    uint64_t sum = 0;
    Value vmin = ~Value{0}, vmax = 0;
    for (const auto& [k, v] : window) {
      sum += v;
      if (v < vmin) vmin = v;
      if (v > vmax) vmax = v;
    }
    total_rows += window.size();
    if (q % 50 == 0) {
      std::printf("  window %3d: rows=%zu sum=%llu min=%llu max=%llu\n", q,
                  window.size(), static_cast<unsigned long long>(sum),
                  static_cast<unsigned long long>(window.empty() ? 0 : vmin),
                  static_cast<unsigned long long>(vmax));
    }
  }
  const double secs = sw.ElapsedSeconds();
  stop.store(true, std::memory_order_release);
  ingester.join();

  std::printf("%d range queries, %.0f rows/query avg, %.1f ms/query, "
              "%.2f Mrows/s (with concurrent ingestion)\n",
              kQueries, static_cast<double>(total_rows) / kQueries,
              secs * 1000.0 / kQueries,
              static_cast<double>(total_rows) / secs / 1e6);
  std::printf("index grew to %zu keys during the run\n", index.Size());
  return 0;
}
