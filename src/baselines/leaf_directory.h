#pragma once

#include <atomic>
#include <cassert>
#include <vector>

#include "common/epoch.h"
#include "common/key_codec.h"
#include "common/spinlock.h"

namespace alt {

/// \brief Copy-on-write sorted directory of index leaves, shared by the
/// baseline indexes (AlexLike data nodes, XIndexLike group leaves, ...).
///
/// Readers (under an EpochGuard) load the snapshot pointer and binary-search
/// the first-key array; structural changes (leaf splits, merges) clone the
/// snapshot under a lock and retire the old one. Point replacement of a leaf
/// (same first key) is an in-place atomic store.
///
/// LeafT must be deletable via `delete`; retired leaves are reclaimed through
/// the epoch manager.
template <typename LeafT>
class LeafDirectory {
 public:
  struct Snapshot {
    explicit Snapshot(size_t n) : first_keys(n), leaves(n) {}
    std::vector<Key> first_keys;
    std::vector<std::atomic<LeafT*>> leaves;
  };

  LeafDirectory() = default;

  ~LeafDirectory() {
    Snapshot* s = snapshot_.load(std::memory_order_acquire);
    if (s == nullptr) return;
    for (auto& l : s->leaves) delete l.load(std::memory_order_relaxed);
    delete s;
  }

  LeafDirectory(const LeafDirectory&) = delete;
  LeafDirectory& operator=(const LeafDirectory&) = delete;

  /// Install the initial (sorted-by-first-key) leaf list. Single-threaded.
  void Build(const std::vector<std::pair<Key, LeafT*>>& leaves) {
    auto* s = new Snapshot(leaves.size());
    for (size_t i = 0; i < leaves.size(); ++i) {
      s->first_keys[i] = leaves[i].first;
      s->leaves[i].store(leaves[i].second, std::memory_order_relaxed);
    }
    snapshot_.store(s, std::memory_order_release);
  }

  const Snapshot* snapshot() const { return snapshot_.load(std::memory_order_acquire); }

  static size_t Locate(const Snapshot& s, Key key) {
    size_t lo = 0, hi = s.first_keys.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (s.first_keys[mid] <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo == 0 ? 0 : lo - 1;
  }

  /// Split: replace `old_leaf` with `left` (same first key) and `right`
  /// (strictly larger first key). Retires old_leaf + old snapshot.
  /// \return false if old_leaf is no longer present (caller must retry).
  bool ReplaceWithTwo(LeafT* old_leaf, Key left_first, LeafT* left, Key right_first,
                      LeafT* right) {
    SpinLockGuard lg(structure_lock_);
    Snapshot* s = snapshot_.load(std::memory_order_acquire);
    const size_t idx = Locate(*s, left_first);
    if (s->leaves[idx].load(std::memory_order_acquire) != old_leaf) return false;
    assert(s->first_keys[idx] == left_first);
    const size_t n = s->first_keys.size();
    auto* ns = new Snapshot(n + 1);
    for (size_t i = 0; i <= idx; ++i) {
      ns->first_keys[i] = s->first_keys[i];
      ns->leaves[i].store(s->leaves[i].load(std::memory_order_acquire),
                          std::memory_order_relaxed);
    }
    ns->leaves[idx].store(left, std::memory_order_relaxed);
    ns->first_keys[idx + 1] = right_first;
    ns->leaves[idx + 1].store(right, std::memory_order_relaxed);
    for (size_t i = idx + 1; i < n; ++i) {
      ns->first_keys[i + 1] = s->first_keys[i];
      ns->leaves[i + 1].store(s->leaves[i].load(std::memory_order_acquire),
                              std::memory_order_relaxed);
    }
    snapshot_.store(ns, std::memory_order_release);
    Retire(old_leaf);
    EpochManager::Global().Retire(s, [](void* p) { delete static_cast<Snapshot*>(p); });
    return true;
  }

  /// In-place replacement preserving the first key (e.g. leaf compaction).
  bool ReplaceOne(LeafT* old_leaf, Key first_key, LeafT* new_leaf) {
    SpinLockGuard lg(structure_lock_);
    Snapshot* s = snapshot_.load(std::memory_order_acquire);
    const size_t idx = Locate(*s, first_key);
    if (s->leaves[idx].load(std::memory_order_acquire) != old_leaf) return false;
    s->leaves[idx].store(new_leaf, std::memory_order_release);
    Retire(old_leaf);
    return true;
  }

  size_t NumLeaves() const {
    const Snapshot* s = snapshot();
    return s == nullptr ? 0 : s->first_keys.size();
  }

 private:
  static void Retire(LeafT* leaf) {
    EpochManager::Global().Retire(leaf, [](void* p) { delete static_cast<LeafT*>(p); });
  }

  std::atomic<Snapshot*> snapshot_{nullptr};
  SpinLock structure_lock_;
};

}  // namespace alt
