#pragma once

#include <cstdint>
#include <cstddef>

namespace alt {

/// \brief Which internal path answered an operation (per-path latency
/// attribution, DESIGN.md §9.2).
///
/// The scalar read/write entry points optionally report the terminal path
/// taken, so the workload runner can keep one latency histogram per
/// (op-type × path) instead of a single blended distribution — the breakdown
/// that explains the paper's figures (a p99 dominated by deep ART descents
/// looks identical to one dominated by retrain interference in a single
/// histogram).
///
/// Attribution is *terminal*: an op that probes a slot, misses, and resolves
/// in ART is tagged with the ART outcome. Failed writes are tagged with the
/// path that proved the conflicting key's existence when that is known.
enum class ServedBy : uint8_t {
  kUnattributed = 0,  ///< not tracked (baselines, scans, batched reads)
  kLearnedSlot,       ///< answered at the predicted learned-layer slot
  kLearnedNegative,   ///< strict-EMPTY predicted slot proved absence
  kArtFpShallow,      ///< fast-pointer-hinted ART hit, hint depth 0–2
  kArtFpMid,          ///< fast-pointer-hinted ART hit, hint depth 3–4
  kArtFpDeep,         ///< fast-pointer-hinted ART hit, hint depth ≥ 5
  kArtRoot,           ///< ART hit via root descent (no usable hint, or fallback)
  kArtNegative,       ///< ART root miss proved absence
  kSlotInsert,        ///< write placed at its predicted (gapped) slot
  kConflictInsert,    ///< write evicted to ART-OPT (prediction conflict)
  kExpansionPath,     ///< op routed through an in-flight §III-F expansion
  kCount              ///< sentinel — number of tags
};

constexpr size_t kNumServedBy = static_cast<size_t>(ServedBy::kCount);

/// Stable snake_case name (used in JSON exports and breakdown tables).
inline const char* ServedByName(ServedBy s) {
  switch (s) {
    case ServedBy::kUnattributed:
      return "unattributed";
    case ServedBy::kLearnedSlot:
      return "learned_slot";
    case ServedBy::kLearnedNegative:
      return "learned_negative";
    case ServedBy::kArtFpShallow:
      return "art_fp_shallow";
    case ServedBy::kArtFpMid:
      return "art_fp_mid";
    case ServedBy::kArtFpDeep:
      return "art_fp_deep";
    case ServedBy::kArtRoot:
      return "art_root";
    case ServedBy::kArtNegative:
      return "art_negative";
    case ServedBy::kSlotInsert:
      return "slot_insert";
    case ServedBy::kConflictInsert:
      return "conflict_insert";
    case ServedBy::kExpansionPath:
      return "expansion_path";
    case ServedBy::kCount:
      break;
  }
  return "?";
}

/// Bucket a fast-pointer hint depth (key bytes resolved by the hint) into the
/// shallow/mid/deep attribution tags.
inline ServedBy FpDepthTag(int depth) {
  if (depth <= 2) return ServedBy::kArtFpShallow;
  if (depth <= 4) return ServedBy::kArtFpMid;
  return ServedBy::kArtFpDeep;
}

/// Write `v` through an optional attribution out-param (no-op when null).
inline void SetServed(ServedBy* s, ServedBy v) {
  if (s != nullptr) *s = v;
}

}  // namespace alt
