#pragma once

#include <atomic>
#include <cstdint>

#include "common/spinlock.h"

namespace alt {

/// \brief Per-slot optimistic version lock, the §III-E scheme: even = stable,
/// odd = a writer is mid-flight. Readers snapshot the version, copy the slot,
/// and re-validate; writers CAS even -> odd, publish, then store even+2.
///
/// 32 bits keeps one lock per data slot affordable (the learned layer allocates
/// one per gapped slot).
class SlotVersion {
 public:
  /// Begin an optimistic read. Spins past in-flight writers.
  /// \return the (even) version to pass to ReadValidate.
  uint32_t ReadLock() const {
    uint32_t v = version_.load(std::memory_order_acquire);
    while (v & 1u) {
      CpuRelax();
      v = version_.load(std::memory_order_acquire);
    }
    return v;
  }

  /// \return true iff no writer intervened since ReadLock returned `v`.
  bool ReadValidate(uint32_t v) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return version_.load(std::memory_order_acquire) == v;
  }

  /// Acquire exclusive write access (spins).
  void WriteLock() {
    for (;;) {
      uint32_t v = version_.load(std::memory_order_relaxed);
      if (!(v & 1u) &&
          version_.compare_exchange_weak(v, v + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return;
      }
      CpuRelax();
    }
  }

  /// Try to move even -> odd starting from the observed version `v`.
  bool TryWriteLock(uint32_t& v) {
    if (v & 1u) return false;
    return version_.compare_exchange_strong(v, v + 1, std::memory_order_acquire,
                                            std::memory_order_relaxed);
  }

  /// Release write access (version becomes even and strictly larger).
  void WriteUnlock() { version_.fetch_add(1, std::memory_order_release); }

  uint32_t RawVersion() const { return version_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint32_t> version_{0};
};

/// RAII write guard for SlotVersion.
class SlotWriteGuard {
 public:
  explicit SlotWriteGuard(SlotVersion& v) : v_(v) { v_.WriteLock(); }
  ~SlotWriteGuard() { v_.WriteUnlock(); }
  SlotWriteGuard(const SlotWriteGuard&) = delete;
  SlotWriteGuard& operator=(const SlotWriteGuard&) = delete;

 private:
  SlotVersion& v_;
};

}  // namespace alt
