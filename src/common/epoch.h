#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/debug_checks.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "common/trace.h"

namespace alt {

/// \brief Epoch-based memory reclamation shared by all concurrent structures.
///
/// Optimistic lock coupling (ART) and copy-on-write snapshots (model directory,
/// retraining) replace nodes while lock-free readers may still dereference the
/// old ones. Writers therefore *retire* replaced memory here instead of freeing
/// it; it is reclaimed once every thread that could have observed it has left
/// its read-side critical section.
///
/// Usage:
///   { EpochGuard g;            // read-side critical section
///     ... dereference shared nodes ... }
///   EpochManager::Global().Retire(old_node, [](void* p){ delete Node::From(p); });
///
/// The design is the classic 3-epoch scheme: a guard pins the global epoch in a
/// per-thread slot; retired items are stamped with the epoch at retirement and
/// freed when the minimum pinned epoch has advanced past them.
///
/// Thread registration: each thread gets one of kMaxThreads pinned-epoch slots
/// on first use and returns it at thread exit, so any number of threads may
/// come and go over a process lifetime as long as no more than kMaxThreads are
/// registered *concurrently*. Exceeding that aborts with a clear message
/// (sharing a slot would silently break the reclamation protocol).
class EpochManager {
 public:
  static constexpr uint64_t kIdle = ~uint64_t{0};
  static constexpr int kMaxThreads = 256;

  using Deleter = void (*)(void*);

  static EpochManager& Global() {
    static EpochManager mgr;
    return mgr;
  }

  /// Enter a read-side critical section (nestable). Prefer EpochGuard.
  void Enter() {
    ThreadState& ts = LocalState();
    if (ts.nesting++ == 0) {
      uint64_t e = global_epoch_.load(std::memory_order_acquire);
      slots_[ts.slot].epoch.store(e, std::memory_order_release);
      // A second load catches an advance that raced with our publication.
      uint64_t e2 = global_epoch_.load(std::memory_order_acquire);
      if (e2 != e) slots_[ts.slot].epoch.store(e2, std::memory_order_release);
    }
  }

  void Exit() {
    ThreadState& ts = LocalState();
    if (--ts.nesting == 0) {
      slots_[ts.slot].epoch.store(kIdle, std::memory_order_release);
    }
  }

  /// \return true iff the calling thread is inside an Enter/Exit (EpochGuard)
  /// read-side critical section.
  bool CurrentThreadPinned() { return LocalState().nesting > 0; }

#if defined(ALT_DEBUG_CHECKS)
  /// Epoch-guard validator: abort unless the calling thread holds an
  /// EpochGuard. Placed (via ALT_ASSERT_EPOCH_PINNED) at every hot-path entry
  /// point that dereferences retire-capable shared pointers.
  void AssertPinned(const char* where) {
    if (LocalState().nesting > 0) return;
    std::fprintf(stderr,
                 "[alt-debug-checks] epoch-guard: %s reached outside an "
                 "EpochGuard; epoch-retired memory could be reclaimed while "
                 "still in use\n",
                 where);
    std::fflush(stderr);
    std::abort();
  }
#endif

  /// Schedule `p` for deletion once all current readers are gone.
  void Retire(void* p, Deleter del) {
    ThreadState& ts = LocalState();
    uint64_t e = global_epoch_.load(std::memory_order_acquire);
    {
      SpinLockGuard lg(ts.retired_lock);
      ts.retired.push_back({p, del, e});
    }
    if (++ts.retire_count % kAdvanceInterval == 0) {
      AdvanceAndCollect(ts);
    }
  }

  /// Free everything retired so far. Only safe when no thread is inside a
  /// read-side section (e.g. between benchmark phases, in destructors of the
  /// last live index, or single-threaded tests).
  void DrainAll() {
    trace::Span span("epoch_drain", "epoch");
    uint64_t freed = 0;
    global_epoch_.fetch_add(1, std::memory_order_acq_rel);
    SpinLockGuard lg(registry_mutex_);
    for (ThreadState* ts : registry_) {
      std::vector<Retired> items;
      {
        SpinLockGuard il(ts->retired_lock);
        items.swap(ts->retired);
      }
      freed += items.size();
      for (auto& r : items) r.del(r.p);
    }
    span.set_detail(freed);
  }

  uint64_t GlobalEpoch() const { return global_epoch_.load(std::memory_order_acquire); }

  /// Count of items awaiting reclamation (approximate; for tests/metrics).
  size_t PendingCount() {
    SpinLockGuard lg(registry_mutex_);
    size_t n = 0;
    for (ThreadState* ts : registry_) {
      SpinLockGuard il(ts->retired_lock);
      n += ts->retired.size();
    }
    return n;
  }

  /// Number of threads currently holding a pinned-epoch slot (tests/metrics).
  size_t RegisteredThreads() {
    SpinLockGuard lg(registry_mutex_);
    return static_cast<size_t>(next_slot_) - free_slots_.size();
  }

 private:
  static constexpr int kAdvanceInterval = 64;

  struct Retired {
    void* p;
    Deleter del;
    uint64_t epoch;
  };

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  struct ThreadState {
    int slot = -1;
    int nesting = 0;
    uint64_t retire_count = 0;
    SpinLock retired_lock;
    std::vector<Retired> retired GUARDED_BY(retired_lock);
  };

  /// RAII thread registration: the constructor claims a slot, the destructor
  /// (thread exit) returns it for reuse. The ThreadState itself stays in the
  /// registry so still-pending retired items are drained later.
  struct ThreadLocalHandle {
    explicit ThreadLocalHandle(EpochManager* m)
        : mgr(m), state(m->RegisterThread()) {}
    ~ThreadLocalHandle() { mgr->UnregisterThread(state); }
    ThreadLocalHandle(const ThreadLocalHandle&) = delete;
    ThreadLocalHandle& operator=(const ThreadLocalHandle&) = delete;

    EpochManager* mgr;
    ThreadState* state;
  };

  EpochManager() = default;

  // The singleton destructs at process exit, after user threads joined: free
  // everything still pending plus the per-thread registry records.
  ~EpochManager() {
    DrainAll();
    SpinLockGuard lg(registry_mutex_);
    for (ThreadState* ts : registry_) delete ts;
    registry_.clear();
  }

  ThreadState& LocalState() {
    // One handle per thread; EpochManager is a process singleton, so a plain
    // function-local thread_local suffices.
    thread_local ThreadLocalHandle handle(this);
    return *handle.state;
  }

  ThreadState* RegisterThread() {
    auto* ts = new ThreadState();
    SpinLockGuard lg(registry_mutex_);
    if (!free_slots_.empty()) {
      ts->slot = free_slots_.back();
      free_slots_.pop_back();
    } else if (next_slot_ < kMaxThreads) {
      ts->slot = next_slot_++;
    } else {
      // Fail loudly: handing out a shared or wrapped slot would let two live
      // threads overwrite each other's pinned epoch — silent use-after-free
      // of retired memory. kMaxThreads bounds *concurrent* threads only;
      // exited threads return their slots above.
      debug::CheckFailed(
          "epoch",
          "thread slot exhaustion: more than EpochManager::kMaxThreads (256) "
          "concurrent threads registered; raise kMaxThreads or reduce thread "
          "concurrency",
          this);
    }
    registry_.push_back(ts);
    return ts;
  }

  void UnregisterThread(ThreadState* ts) {
    // A thread exiting inside a read-side section would leave its slot pinned
    // forever; the RAII EpochGuard makes this unreachable.
    ALT_DEBUG_CHECK(ts->nesting == 0, "epoch",
                    "thread exited while inside an EpochGuard", ts);
    SpinLockGuard lg(registry_mutex_);
    free_slots_.push_back(ts->slot);
  }

  uint64_t MinPinnedEpoch() const {
    uint64_t m = kIdle;
    for (const Slot& s : slots_) {
      uint64_t e = s.epoch.load(std::memory_order_acquire);
      if (e < m) m = e;
    }
    return m;
  }

  void AdvanceAndCollect(ThreadState& ts) {
    trace::Span span("epoch_advance", "epoch");
    global_epoch_.fetch_add(1, std::memory_order_acq_rel);
    uint64_t min_pinned = MinPinnedEpoch();
    std::vector<Retired> free_now;
    {
      SpinLockGuard lg(ts.retired_lock);
      auto& v = ts.retired;
      size_t w = 0;
      for (size_t i = 0; i < v.size(); ++i) {
        // Safe once no reader can still be pinned at or before the retire epoch.
        if (v[i].epoch < min_pinned) {
          free_now.push_back(v[i]);
        } else {
          v[w++] = v[i];
        }
      }
      v.resize(w);
    }
    span.set_detail(free_now.size());
    for (auto& r : free_now) r.del(r.p);
  }

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxThreads];
  SpinLock registry_mutex_;
  std::vector<ThreadState*> registry_ GUARDED_BY(registry_mutex_);
  std::vector<int> free_slots_ GUARDED_BY(registry_mutex_);
  int next_slot_ GUARDED_BY(registry_mutex_) = 0;
};

/// RAII read-side critical section.
class EpochGuard {
 public:
  EpochGuard() { EpochManager::Global().Enter(); }
  ~EpochGuard() { EpochManager::Global().Exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
};

}  // namespace alt

/// Epoch-guard validator hook for hot-path entry points (no-op unless
/// ALT_DEBUG_CHECKS): fatal if the calling thread dereferences
/// epoch-retire-capable shared pointers outside an EpochGuard.
#if defined(ALT_DEBUG_CHECKS)
#define ALT_ASSERT_EPOCH_PINNED(where) \
  ::alt::EpochManager::Global().AssertPinned(where)
#else
#define ALT_ASSERT_EPOCH_PINNED(where) ((void)0)
#endif
