file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_model_count.dir/bench_fig3_model_count.cc.o"
  "CMakeFiles/bench_fig3_model_count.dir/bench_fig3_model_count.cc.o.d"
  "bench_fig3_model_count"
  "bench_fig3_model_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_model_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
