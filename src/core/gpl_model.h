#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/debug_checks.h"
#include "common/key_codec.h"
#include "common/prefetch.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"

namespace alt {

/// Slot occupancy states (§III-B / §III-F).
enum class SlotState : uint32_t {
  kEmpty = 0,      ///< never written: the searched key is provably absent
  kOccupied = 1,   ///< holds a live key/value
  kTombstone = 2,  ///< removed in place; conflicting keys may still sit in ART
  kMigrated = 3,   ///< moved to the expansion (temporal) buffer (§III-F)
};

/// \brief Per-slot word combining the §III-E optimistic version scheme with
/// the slot state: bit 0 = writer lock, bits 1-2 = SlotState, bits 3+ = a
/// sequence number bumped on every unlock. One 32-bit atomic per slot.
///
/// A clang thread-safety capability guarding the slot's key/value (see
/// GplSlot). Writers hold it via Lock/Unlock; optimistic readers carry no
/// capability and must go through GplSlot's ALT_OPTIMISTIC_PATH accessors plus
/// Validate. Under ALT_DEBUG_CHECKS the version-lock protocol checker catches
/// unlock-without-lock, same-thread double-lock, and stale unlock tokens.
class CAPABILITY("slot word lock") SlotWord {
 public:
  /// Snapshot the word, spinning past in-flight writers. The returned value
  /// is both the state and the validation token.
  uint32_t Read() const {
    // A thread that holds this slot's writer lock would spin forever here.
    ALT_DEBUG_CHECK(!::alt::debug::LockHeldByThisThread(this), "slot-word",
                    "Read while this thread holds the slot writer lock", this);
    uint32_t w = word_.load(std::memory_order_acquire);
    while (w & 1u) {
      CpuRelax();
      w = word_.load(std::memory_order_acquire);
    }
    return w;
  }

  static SlotState StateOf(uint32_t w) { return static_cast<SlotState>((w >> 1) & 3u); }

  /// \return true iff no writer intervened since `w` was Read().
  bool Validate(uint32_t w) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return word_.load(std::memory_order_relaxed) == w;
  }

  /// Acquire the writer lock (spins) and \return the pre-lock word.
  uint32_t Lock() ACQUIRE() {
    // A same-thread double lock would spin forever below.
    ALT_DEBUG_CHECK(!::alt::debug::LockHeldByThisThread(this), "slot-word",
                    "double-lock: this thread already holds the slot lock", this);
    for (;;) {
      uint32_t w = word_.load(std::memory_order_relaxed);
      if (!(w & 1u) &&
          word_.compare_exchange_weak(w, w | 1u, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        ALT_DEBUG_NOTE_ACQUIRED(this, "slot-word");
        return w;
      }
      CpuRelax();
    }
  }

  /// Release the lock, publishing `new_state` and a bumped sequence number.
  /// `locked_word` must be the exact token Lock() returned.
  void Unlock(uint32_t locked_word, SlotState new_state) RELEASE() {
    ALT_DEBUG_NOTE_RELEASED(this, "slot-word");
    // Writer-side publication check: the current word must be the held token
    // (lock bit set); publishing from a stale token would rewind the sequence
    // number and let a racing reader validate a torn snapshot.
    ALT_DEBUG_CHECK(word_.load(std::memory_order_relaxed) == (locked_word | 1u),
                    "slot-word",
                    "Unlock without the lock held or with a stale token", this);
    const uint32_t seq = (locked_word >> 3) + 1;
    word_.store((seq << 3) | (static_cast<uint32_t>(new_state) << 1),
                std::memory_order_release);
  }

  SlotState State() const { return StateOf(Read()); }

  /// Single-threaded initialization (bulk load only).
  void InitState(SlotState s) {
    word_.store(static_cast<uint32_t>(s) << 1, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint32_t> word_{0};
};

/// One gapped-array slot: state word + key + value.
///
/// `key`/`value` are GUARDED_BY the slot word: all writes happen between
/// word.Lock() and word.Unlock(). Concurrent readers use the two
/// ALT_OPTIMISTIC_PATH accessors — the sanctioned seqlock escape — and must
/// discard the loads unless word.Validate(w) subsequently succeeds.
///
/// Padded to 32 bytes: together with the 64-byte-aligned slot arrays
/// (aligned_mem.h) every slot occupies exactly half a cache line and no probe
/// ever straddles a line boundary — previously 2 of every 8 slots did, and
/// PrefetchSlot papered over it with a two-line prefetch. The fixed
/// power-of-two stride also lets the §10 vector state scan cover one slot
/// per 256-bit load.
struct alignas(32) GplSlot {
  SlotWord word;
  std::atomic<Key> key GUARDED_BY(word){0};
  std::atomic<Value> value GUARDED_BY(word){0};

  /// Optimistic (seqlock) read of `key`, validated by caller: only valid if
  /// the caller's bracketing word.Read()/word.Validate() pair succeeds.
  Key OptimisticKey() const ALT_OPTIMISTIC_PATH ALT_REQUIRES_EPOCH {
    return key.load(std::memory_order_relaxed);
  }

  /// Optimistic (seqlock) read of `value`, validated by caller: same
  /// bracketing word.Read()/word.Validate() contract.
  Value OptimisticValue() const ALT_OPTIMISTIC_PATH ALT_REQUIRES_EPOCH {
    return value.load(std::memory_order_relaxed);
  }
};

class GplModel;

/// \brief In-flight §III-F expansion: the "temporal buffer" is a fresh model
/// with twice the slots and doubled train slope. Owned by the old model.
///
/// `new_model` stays readable by racing operations even after the finishing
/// thread publishes it in the directory; ownership transfers to the directory
/// at that point (signalled by `done`), so the destructor only frees the
/// temporal buffer of an expansion that never completed.
struct Expansion {
  explicit Expansion(GplModel* nm) : new_model(nm) {}
  ~Expansion();

  GplModel* const new_model;
  /// Keys inserted into the temporal buffer since expansion began; finishing
  /// triggers when this reaches the old model's live size (§III-F step 3).
  std::atomic<uint32_t> new_inserts{0};
  /// Live keys in the old model at expansion start (the finish threshold).
  uint32_t finish_threshold = 0;
  /// NowNanos() when the expansion was prepared; the §III-F retrain-finish
  /// event's duration is measured from here (set before install, never
  /// written again).
  uint64_t start_ns = 0;
  /// Exactly one thread runs the finishing sweep.
  std::atomic<bool> finishing{false};
  /// Set once the sweep + ART write-back completed and the new model was
  /// published in the directory (ownership handover).
  std::atomic<bool> done{false};
};

/// \brief One GPL model: an anchored linear function over a gapped slot array
/// where every resident key sits at exactly its predicted slot — the learned
/// index layer has no prediction error by construction (§III-A).
///
/// alignas(64): the header starts on a cache-line boundary so the hot member
/// block below maps onto exactly one line (C++17 aligned operator new).
class alignas(64) GplModel {
 public:
  /// \param first_key anchor (first key of the segment)
  /// \param slope scaled positions-per-key-unit (already multiplied by the
  ///        gap factor), >= 0
  /// \param num_slots gapped array capacity (>= 1)
  /// \param build_size number of keys placed at construction (retrain trigger
  ///        reference, §III-F)
  /// \param coverage_end exclusive upper bound of keys this model may *store*.
  ///        Keys >= coverage_end route to this model only while it is the
  ///        last one; they live exclusively in ART (no slot state), so a
  ///        later tail-model append (§III-F) can take over their range by
  ///        sweeping ART alone.
  /// \param use_huge_pages back the slot array with 2MB transparent huge
  ///        pages when it spans at least one (AltOptions::use_huge_pages;
  ///        graceful 4KB fallback, see aligned_mem.h).
  GplModel(Key first_key, double slope, uint32_t num_slots, uint32_t build_size,
           Key coverage_end = ~Key{0}, bool use_huge_pages = false);

  GplModel(const GplModel&) = delete;
  GplModel& operator=(const GplModel&) = delete;

  /// Predicted slot for `key`, clamped to [0, num_slots).
  uint32_t Predict(Key key) const {
    if (key <= first_key_) return 0;
    const double p = slope_ * static_cast<double>(key - first_key_);
    if (p >= static_cast<double>(num_slots_ - 1)) return num_slots_ - 1;
    return static_cast<uint32_t>(p + 0.5);
  }

  Key first_key() const { return first_key_; }
  double slope() const { return slope_; }
  uint32_t num_slots() const { return num_slots_; }
  uint32_t build_size() const { return build_size_; }
  Key coverage_end() const { return coverage_end_; }

  GplSlot& slot(uint32_t i) { return slots_[i]; }
  const GplSlot& slot(uint32_t i) const { return slots_[i]; }

  /// Batched read path stage hook: pull slot `i`'s line before it is probed.
  /// One prefetch suffices — 32-byte slots in a 64-byte-aligned array never
  /// straddle a line (enforced by static_asserts in gpl_model.cc).
  void PrefetchSlot(uint32_t i) const { PrefetchRead(&slots_[i]); }

  /// Fast-pointer-buffer entry index for this model's key range (§III-C).
  int32_t fp_index() const { return fp_index_.load(std::memory_order_acquire); }
  void set_fp_index(int32_t i) { fp_index_.store(i, std::memory_order_release); }

  /// Runtime insertions attributed to this model (in-place + conflicts).
  uint32_t insert_count() const { return insert_count_.load(std::memory_order_relaxed); }
  uint32_t BumpInsertCount() {
    return insert_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Zero-error invariant flag: while false, an EMPTY predicted slot does NOT
  /// prove absence and operations must fall through to ART. Cleared on
  /// temporal buffers (until the §III-F finish sweep writes eligible ART keys
  /// back) and on freshly appended tail models (until their ART range sweep).
  bool strict_empty() const { return strict_empty_.load(std::memory_order_acquire); }
  void set_strict_empty(bool v) { strict_empty_.store(v, std::memory_order_release); }

  Expansion* expansion() const { return expansion_.load(std::memory_order_acquire); }
  /// Install an expansion; \return false if another thread won the race.
  bool TryInstallExpansion(Expansion* e) {
    Expansion* expected = nullptr;
    return expansion_.compare_exchange_strong(expected, e, std::memory_order_acq_rel);
  }

  /// Count slots currently kOccupied (O(num_slots); stats & finish threshold).
  uint32_t CountOccupied() const ALT_REQUIRES_EPOCH;

  /// Count slots by state: counts[i] += slots in SlotState i (kEmpty /
  /// kOccupied / kTombstone / kMigrated). O(num_slots); structural stats.
  void CountSlotStates(size_t counts[4]) const ALT_REQUIRES_EPOCH;

  /// Collect occupied (key, value) pairs with key in [lo, hi], ascending,
  /// stopping after `limit` appended pairs. Starts at Predict(lo) — valid
  /// because placement is monotone — and stops at the first key beyond `hi`.
  /// Slots are read under their version words; the result is per-slot atomic.
  void CollectRange(Key lo, Key hi, std::vector<std::pair<Key, Value>>* out,
                    size_t limit = ~size_t{0}) const ALT_REQUIRES_EPOCH;

  /// Approximate heap footprint of this model (slots + header).
  size_t MemoryBytes() const { return sizeof(GplModel) + sizeof(GplSlot) * num_slots_; }

  /// True iff the slot array is 2MB-huge-page backed (stats / bench headers).
  bool slots_huge_backed() const { return slots_huge_; }

  ~GplModel();

 private:
  // Hot header: everything a point probe touches — route check
  // (coverage_end_), prediction (first_key_, slope_, num_slots_), the slot
  // base pointer, the expansion check, and the two ART-routing fields
  // (fp_index_, strict_empty_) — packed into the first cache line of the
  // 64-byte-aligned object, so a lookup reads exactly one header line
  // (BLI-style hot/cold split, DESIGN.md §10).
  const Key first_key_;
  const double slope_;
  const Key coverage_end_;
  GplSlot* slots_ = nullptr;
  std::atomic<Expansion*> expansion_{nullptr};
  const uint32_t num_slots_;
  std::atomic<int32_t> fp_index_{-1};
  std::atomic<bool> strict_empty_{true};
  // Cold tail (second line): write-path and teardown bookkeeping only.
  const uint32_t build_size_;
  std::atomic<uint32_t> insert_count_{0};
  bool slots_huge_ = false;  ///< set once in the ctor; how slots_ is freed
};

}  // namespace alt
