#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/cpu_features.h"
#include "common/epoch.h"
#include "common/trace.h"
#include "datasets/sosd_loader.h"

namespace alt {
namespace bench {

namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

BenchConfig BenchConfig::Parse(int argc, char** argv) {
  BenchConfig cfg;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--keys")) {
      cfg.keys = std::strtoull(next(i), nullptr, 10);
    } else if (!std::strcmp(a, "--threads")) {
      cfg.threads = std::atoi(next(i));
    } else if (!std::strcmp(a, "--ops")) {
      cfg.ops_per_thread = std::strtoull(next(i), nullptr, 10);
    } else if (!std::strcmp(a, "--bulk-fraction")) {
      cfg.bulk_fraction = std::atof(next(i));
    } else if (!std::strcmp(a, "--zipf-theta")) {
      cfg.zipf_theta = std::atof(next(i));
    } else if (!std::strcmp(a, "--scan-length")) {
      cfg.scan_length = std::strtoull(next(i), nullptr, 10);
    } else if (!std::strcmp(a, "--read_batch") || !std::strcmp(a, "--read-batch")) {
      cfg.read_batch = std::strtoull(next(i), nullptr, 10);
      if (cfg.read_batch == 0) cfg.read_batch = 1;
    } else if (!std::strcmp(a, "--seed")) {
      cfg.seed = std::strtoull(next(i), nullptr, 10);
    } else if (!std::strcmp(a, "--dataset-file")) {
      cfg.dataset_file = next(i);
    } else if (!std::strcmp(a, "--metrics_json") || !std::strcmp(a, "--metrics-json")) {
      cfg.metrics_json = next(i);
    } else if (!std::strcmp(a, "--metrics_interval") ||
               !std::strcmp(a, "--metrics-interval")) {
      cfg.metrics_interval = std::atof(next(i));
    } else if (!std::strcmp(a, "--trace_json") || !std::strcmp(a, "--trace-json")) {
      cfg.trace_json = next(i);
    } else if (!std::strcmp(a, "--dump_structure") ||
               !std::strcmp(a, "--dump-structure")) {
      cfg.dump_structure = next(i);
    } else if (!std::strcmp(a, "--path_breakdown") ||
               !std::strcmp(a, "--path-breakdown")) {
      cfg.path_breakdown = true;
    } else if (!std::strcmp(a, "--perf_stat") || !std::strcmp(a, "--perf-stat")) {
      cfg.perf_stat = true;
    } else if (!std::strcmp(a, "--datasets")) {
      cfg.datasets.clear();
      for (const auto& name : SplitCsv(next(i))) {
        Dataset d;
        if (!ParseDataset(name, &d).ok()) {
          std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
          std::exit(2);
        }
        cfg.datasets.push_back(d);
      }
    } else if (!std::strcmp(a, "--indexes")) {
      cfg.indexes = SplitCsv(next(i));
    } else if (!std::strcmp(a, "--help")) {
      std::printf(
          "flags: --keys N --threads T --ops N --bulk-fraction F "
          "--zipf-theta F --scan-length N --read_batch N --seed N "
          "--datasets a,b --indexes a,b --dataset-file PATH "
          "--metrics_json PATH --metrics_interval S "
          "--trace_json PATH --dump_structure PATH|- --path_breakdown "
          "--perf_stat\n"
          "env: ALT_BENCH_SCALE=K multiplies --keys and --ops\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", a);
      std::exit(2);
    }
  }
  if (const char* scale_env = std::getenv("ALT_BENCH_SCALE")) {
    const double scale = std::atof(scale_env);
    if (scale > 0) {
      cfg.keys = static_cast<size_t>(static_cast<double>(cfg.keys) * scale);
      cfg.ops_per_thread =
          static_cast<size_t>(static_cast<double>(cfg.ops_per_thread) * scale);
    }
  }
  // Arm the flight recorder as early as possible so key generation and bulk
  // load are captured too, not just the timed run.
  if (!cfg.trace_json.empty()) trace::SetEnabled(true);
  return cfg;
}

std::vector<Key> LoadKeys(const BenchConfig& cfg, Dataset d) {
  trace::Span span("load_keys", "bench", cfg.keys);
  if (!cfg.dataset_file.empty()) {
    std::vector<Key> keys;
    const Status st = LoadSosdFile(cfg.dataset_file, cfg.keys, &keys);
    if (!st.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", cfg.dataset_file.c_str(),
                   st.ToString().c_str());
      std::exit(1);
    }
    return keys;
  }
  return GenerateKeys(d, cfg.keys, cfg.seed);
}

BenchSetup LoadIndex(ConcurrentIndex* index, const std::vector<Key>& keys,
                     double bulk_fraction) {
  trace::Span span("load_index", "bench", keys.size());
  BenchSetup setup = SplitDataset(keys, bulk_fraction);
  std::vector<Value> values(setup.loaded.size());
  for (size_t i = 0; i < setup.loaded.size(); ++i) {
    values[i] = ValueFor(setup.loaded[i]);
  }
  const Status st =
      index->BulkLoad(setup.loaded.data(), values.data(), setup.loaded.size());
  if (!st.ok()) {
    std::fprintf(stderr, "bulk load failed for %s: %s\n", index->Name().c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
  return setup;
}

RunResult RunOne(const BenchConfig& cfg, const std::string& index_name,
                 const std::vector<Key>& keys, WorkloadType workload,
                 const AltOptions& alt_options) {
  auto index = MakeIndex(index_name, alt_options);
  if (index == nullptr) {
    std::fprintf(stderr, "unknown index %s\n", index_name.c_str());
    std::exit(2);
  }
  const BenchSetup setup = LoadIndex(index.get(), keys, cfg.bulk_fraction);
  WorkloadOptions opts;
  opts.type = workload;
  opts.ops_per_thread = cfg.ops_per_thread;
  opts.zipf_theta = cfg.zipf_theta;
  opts.scan_length = cfg.scan_length;
  opts.seed = cfg.seed;
  const auto streams = GenerateOpStreams(setup.loaded, setup.pool, cfg.threads, opts);
  RunOptions run_opts;
  run_opts.scan_length = cfg.scan_length;
  run_opts.read_batch = cfg.read_batch;
  run_opts.metrics_json = cfg.metrics_json;
  run_opts.metrics_interval_seconds = cfg.metrics_interval;
  run_opts.path_breakdown = cfg.path_breakdown;
  run_opts.perf_stat = cfg.perf_stat;
  run_opts.metrics_label = index_name;
  run_opts.metrics_label += '/';
  run_opts.metrics_label += WorkloadName(workload);
  run_opts.metrics_label += '/';
  run_opts.metrics_label += std::to_string(cfg.threads) + "t";
  const RunResult r = RunWorkload(index.get(), streams, run_opts);
  if (cfg.path_breakdown) PrintPathBreakdown(r);
  if (cfg.perf_stat) {
    // The counter numbers are only interpretable against the code path that
    // produced them, so name the active read-path kernel alongside them.
    std::printf("read-path simd: %s\n", cpu::SimdModeName());
    PrintPerfStat(r);
  }
  if (!cfg.dump_structure.empty()) {
    const std::string report = index->StructureJson();
    if (cfg.dump_structure == "-") {
      std::fwrite(report.data(), 1, report.size(), stdout);
    } else {
      std::FILE* f = std::fopen(cfg.dump_structure.c_str(), "a");
      if (f != nullptr) {
        std::fwrite(report.data(), 1, report.size(), f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "cannot open dump_structure file '%s'\n",
                     cfg.dump_structure.c_str());
      }
    }
  }
  if (!cfg.trace_json.empty()) {
    // Rewrite the cumulative trace after every run so a partial bench sweep
    // still leaves a loadable document behind.
    if (!trace::WriteChromeTrace(cfg.trace_json)) {
      std::fprintf(stderr, "cannot write trace_json file '%s'\n",
                   cfg.trace_json.c_str());
    }
  }
  index.reset();
  EpochManager::Global().DrainAll();
  return r;
}

void PrintHeader(const std::string& title, const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : columns) std::printf("%-14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%-14s", "------------");
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-14s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace bench
}  // namespace alt
