#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/index_interface.h"
#include "common/spinlock.h"

namespace alt {

/// \brief Mechanism-faithful re-implementation of FINEdex (Li et al.,
/// VLDB'21):
///
///  - *LPA-style segmentation*: models come from a shrinking-cone pass with
///    the paper-suggested error bound (32);
///  - *error-bounded search* in each model's sorted array — the prediction
///    error cost of Table I;
///  - *level bins*: every insertion position owns a chain of small
///    fixed-capacity bins (the finest-granularity delta buffer of §II-B),
///    so concurrent inserts into different positions never collide;
///  - per-position spin locks for writers, lock-free append-ordered reads.
///
/// Like the original, the trained models are static at runtime; inserts only
/// ever grow level bins (no runtime retraining), which reproduces FINEdex's
/// degradation under write-heavy load.
class FinedexLike : public ConcurrentIndex {
 public:
  FinedexLike() = default;
  ~FinedexLike() override;

  std::string Name() const override { return "FINEdex"; }

  Status BulkLoad(const Key* keys, const Value* values, size_t n) override;
  bool Lookup(Key key, Value* out) override;
  bool Insert(Key key, Value value) override;
  bool Update(Key key, Value value) override;
  bool Remove(Key key) override;
  size_t Scan(Key start, size_t count,
              std::vector<std::pair<Key, Value>>* out) override;
  size_t MemoryUsage() const override;
  size_t Size() const override { return size_.load(std::memory_order_relaxed); }

  size_t NumModels() const { return models_.size(); }

  /// The FINEdex paper's suggested error bound.
  static constexpr double kErrorBound = 32.0;

 private:
  static constexpr int kBinCapacity = 4;

  /// One fixed-capacity bin; chains form the per-position level structure.
  struct Bin {
    struct Slot {
      std::atomic<Key> key{0};
      std::atomic<Value> value{0};
      std::atomic<uint8_t> state{0};  // 0 unset, 1 live, 2 deleted
    };
    Slot slots[kBinCapacity];
    std::atomic<uint32_t> count{0};  // published entries (append index)
    std::atomic<Bin*> next{nullptr};

    ~Bin() { delete next.load(std::memory_order_relaxed); }
  };

  /// One trained segment: immutable sorted base arrays + per-position bins.
  struct Model {
    Key base = 0;
    double slope = 0;
    uint32_t max_error = 0;
    std::vector<Key> keys;
    std::unique_ptr<std::atomic<Value>[]> values;
    std::unique_ptr<std::atomic<uint64_t>[]> tombstones;  // bitmap over keys
    // Position i holds keys inserted between keys[i-1] and keys[i]
    // (position keys.size() = after the last key).
    std::unique_ptr<std::atomic<Bin*>[]> bins;
    std::unique_ptr<SpinLock[]> bin_locks;

    bool Tombstoned(size_t i) const {
      return (tombstones[i >> 6].load(std::memory_order_acquire) >> (i & 63)) & 1u;
    }
    size_t LowerBound(Key key) const;

    ~Model() {
      // Bin chains hang off atomic heads; ~Bin frees each chain's tail.
      if (bins != nullptr) {
        for (size_t i = 0; i <= keys.size(); ++i) {
          delete bins[i].load(std::memory_order_relaxed);
        }
      }
    }
  };

  Model* LocateModel(Key key) const;
  static Bin::Slot* FindInBins(Bin* head, Key key);
  void CollectBins(Bin* head, Key lo, Key hi,
                   std::vector<std::pair<Key, Value>>* out) const;

  std::vector<Key> first_keys_;
  std::vector<std::unique_ptr<Model>> models_;
  std::atomic<size_t> size_{0};
};

}  // namespace alt
