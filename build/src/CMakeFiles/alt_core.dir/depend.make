# Empty dependencies file for alt_core.
# This may be replaced when dependencies are built.
