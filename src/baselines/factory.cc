#include "baselines/factory.h"

#include "baselines/alex_like.h"
#include "baselines/alt_adapter.h"
#include "baselines/art_index.h"
#include "baselines/btree_index.h"
#include "baselines/finedex_like.h"
#include "baselines/lipp_like.h"
#include "baselines/olc_btree.h"
#include "baselines/xindex_like.h"

namespace alt {

std::unique_ptr<ConcurrentIndex> MakeIndex(const std::string& name,
                                           const AltOptions& alt_options) {
  if (name == "alt") return std::make_unique<AltIndexAdapter>(alt_options);
  if (name == "alex") return std::make_unique<AlexLike>();
  if (name == "lipp") return std::make_unique<LippLike>();
  if (name == "xindex") return std::make_unique<XIndexLike>();
  if (name == "finedex") return std::make_unique<FinedexLike>();
  if (name == "art") return std::make_unique<ArtIndex>();
  if (name == "btree-olc") return std::make_unique<OlcBTree>();
  if (name == "btree") return std::make_unique<BTreeIndex>();
  return nullptr;
}

std::vector<std::string> PaperIndexLineup() {
  return {"alt", "alex", "lipp", "finedex", "xindex", "art"};
}

}  // namespace alt
