#pragma once

#include <atomic>
#include <cstdint>

#include "common/debug_checks.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"

namespace alt {

/// \brief Per-slot optimistic version lock, the §III-E scheme: even = stable,
/// odd = a writer is mid-flight. Readers snapshot the version, copy the slot,
/// and re-validate; writers CAS even -> odd, publish, then store even+2.
///
/// 32 bits keeps one lock per data slot affordable (the learned layer allocates
/// one per gapped slot).
///
/// Annotated as a clang thread-safety capability on the writer side
/// (WriteLock / TryWriteLock / WriteUnlock); the optimistic reader side
/// (ReadLock / ReadValidate) carries no capability — readers that load guarded
/// state are ALT_OPTIMISTIC_PATH and must re-validate (see DESIGN.md "Locking
/// protocol"). Under ALT_DEBUG_CHECKS the protocol checker catches
/// unlock-without-lock, same-thread double-lock, and writers publishing a
/// version of the wrong parity.
class CAPABILITY("slot version lock") SlotVersion {
 public:
  /// Begin an optimistic read. Spins past in-flight writers.
  /// \return the (even) version to pass to ReadValidate.
  uint32_t ReadLock() const {
    // A thread that write-holds this lock would spin forever here.
    ALT_DEBUG_CHECK(!::alt::debug::LockHeldByThisThread(this), "slot-version",
                    "ReadLock while this thread write-holds the lock", this);
    uint32_t v = version_.load(std::memory_order_acquire);
    while (v & 1u) {
      CpuRelax();
      v = version_.load(std::memory_order_acquire);
    }
    return v;
  }

  /// \return true iff no writer intervened since ReadLock returned `v`.
  bool ReadValidate(uint32_t v) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return version_.load(std::memory_order_acquire) == v;
  }

  /// Acquire exclusive write access (spins).
  void WriteLock() ACQUIRE() {
    // A same-thread double write-lock would spin forever below.
    ALT_DEBUG_CHECK(!::alt::debug::LockHeldByThisThread(this), "slot-version",
                    "double-lock: this thread already write-holds the lock", this);
    for (;;) {
      uint32_t v = version_.load(std::memory_order_relaxed);
      if (!(v & 1u) &&
          version_.compare_exchange_weak(v, v + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        ALT_DEBUG_NOTE_ACQUIRED(this, "slot-version");
        return;
      }
      CpuRelax();
    }
  }

  /// Try to move even -> odd starting from the observed version `v`.
  bool TryWriteLock(uint32_t& v) TRY_ACQUIRE(true) {
    if (v & 1u) return false;
    if (version_.compare_exchange_strong(v, v + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      ALT_DEBUG_NOTE_ACQUIRED(this, "slot-version");
      return true;
    }
    return false;
  }

  /// Release write access (version becomes even and strictly larger).
  void WriteUnlock() RELEASE() {
    ALT_DEBUG_NOTE_RELEASED(this, "slot-version");
    // Writer-side parity check: unlocking an even version would *publish* an
    // odd (writer-in-flight) version and wedge every future reader.
    ALT_DEBUG_CHECK((version_.load(std::memory_order_relaxed) & 1u) != 0,
                    "slot-version",
                    "WriteUnlock would publish an odd version "
                    "(unlock-without-lock or double-unlock)",
                    this);
    version_.fetch_add(1, std::memory_order_release);
  }

  uint32_t RawVersion() const { return version_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint32_t> version_{0};
};

/// RAII write guard for SlotVersion, visible to the thread-safety analysis.
class SCOPED_CAPABILITY SlotWriteGuard {
 public:
  explicit SlotWriteGuard(SlotVersion& v) ACQUIRE(v) : v_(v) { v_.WriteLock(); }
  ~SlotWriteGuard() RELEASE() { v_.WriteUnlock(); }
  SlotWriteGuard(const SlotWriteGuard&) = delete;
  SlotWriteGuard& operator=(const SlotWriteGuard&) = delete;

 private:
  SlotVersion& v_;
};

}  // namespace alt
