// alt-atomic-order failing fixture: implicit-seq_cst accesses in every form
// the check covers — member calls without a memory_order argument and
// operator-form accesses on declared std::atomic variables.
#include <atomic>

struct Counter {
  std::atomic<int> hits{0};
  std::atomic<bool> ready{false};

  void Bump() {
    hits.fetch_add(1);
    ready.store(true);
  }

  int Read() const { return hits.load(); }
};

std::atomic<int> g_total{0};

void Tick() {
  g_total++;
  g_total += 2;
  g_total = 7;
}
