#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/debug_checks.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "common/trace.h"

namespace alt {

/// \brief Epoch-based memory reclamation shared by all concurrent structures.
///
/// Optimistic lock coupling (ART) and copy-on-write snapshots (model directory,
/// retraining) replace nodes while lock-free readers may still dereference the
/// old ones. Writers therefore *retire* replaced memory here instead of freeing
/// it; it is reclaimed once every thread that could have observed it has left
/// its read-side critical section.
///
/// Usage (process-wide default manager):
///   { EpochGuard g;            // read-side critical section
///     ... dereference shared nodes ... }
///   EpochManager::Global().Retire(old_node, [](void* p){ delete Node::From(p); });
///
/// Usage (instance manager, e.g. one per shard — see src/shard/):
///   EpochManager mgr("shard-epoch");
///   { EpochGuard g(mgr); ... }
///   mgr.Retire(old_node, deleter);
///
/// The design is the classic 3-epoch scheme: a guard pins the manager's epoch
/// in a per-thread slot; retired items are stamped with the epoch at retirement
/// and freed when the minimum pinned epoch has advanced past them.
///
/// Thread registration: per manager, each thread gets one of kMaxThreads
/// pinned-epoch slots on first use and returns it at thread exit, so any number
/// of threads may come and go over a process lifetime as long as no more than
/// kMaxThreads are registered *concurrently* with any one manager. Exceeding
/// that aborts with a clear message (sharing a slot would silently break the
/// reclamation protocol).
///
/// Lifetime contract for instance managers: destroying a manager must not race
/// a thread currently entering/exiting it (the same quiescence the destructor
/// of any index imposes). Threads that merely *used* the manager earlier may
/// outlive it: per-thread records are reference-counted and reclaimed by
/// whichever side (thread exit / manager destruction) lets go last.
class EpochManager {
 public:
  static constexpr uint64_t kIdle = ~uint64_t{0};
  static constexpr int kMaxThreads = 256;

  using Deleter = void (*)(void*);

  /// \param trace_category flight-recorder category for this manager's
  ///        epoch_drain / epoch_advance spans. Must be a string literal (or
  ///        otherwise outlive the manager): the trace ring stores the pointer.
  ///        Sharded indexes pass a per-shard literal so epoch spans attribute
  ///        to the owning shard.
  explicit EpochManager(const char* trace_category = "epoch")
      : id_(NextId()), trace_category_(trace_category) {}

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The process-wide default manager, used whenever no instance is supplied
  /// (single-index setups, baselines, tests).
  static EpochManager& Global() {
    static EpochManager mgr;
    return mgr;
  }

  // Destruction drains everything still pending and releases the manager's
  // reference on every per-thread record; records of threads that already
  // exited are freed here, records of still-live threads are freed at their
  // thread exit. Must not run concurrently with threads entering/exiting
  // this manager (see the class-level lifetime contract).
  ~EpochManager() {
    DrainAll();
    SpinLockGuard lg(registry_mutex_);
    for (ThreadState* ts : registry_) {
      if (ts->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete ts;
    }
    registry_.clear();
  }

  /// Enter a read-side critical section (nestable). Prefer EpochGuard.
  void Enter() {
    ThreadState& ts = LocalState();
    if (ts.nesting++ == 0) {
      uint64_t e = global_epoch_.load(std::memory_order_acquire);
      slots_[ts.slot].epoch.store(e, std::memory_order_release);
      // A second load catches an advance that raced with our publication.
      uint64_t e2 = global_epoch_.load(std::memory_order_acquire);
      if (e2 != e) slots_[ts.slot].epoch.store(e2, std::memory_order_release);
    }
  }

  void Exit() {
    ThreadState& ts = LocalState();
    if (--ts.nesting == 0) {
      slots_[ts.slot].epoch.store(kIdle, std::memory_order_release);
    }
  }

  /// \return true iff the calling thread is inside an Enter/Exit (EpochGuard)
  /// read-side critical section of *this* manager.
  bool CurrentThreadPinned() { return LocalState().nesting > 0; }

#if defined(ALT_DEBUG_CHECKS)
  /// Epoch-guard validator: abort unless the calling thread holds an
  /// EpochGuard on this manager. Placed (via ALT_ASSERT_EPOCH_PINNED) at every
  /// hot-path entry point that dereferences retire-capable shared pointers.
  void AssertPinned(const char* where) {
    if (LocalState().nesting > 0) return;
    std::fprintf(stderr,
                 "[alt-debug-checks] epoch-guard: %s reached outside an "
                 "EpochGuard; epoch-retired memory could be reclaimed while "
                 "still in use\n",
                 where);
    std::fflush(stderr);
    std::abort();
  }
#endif

  /// Schedule `p` for deletion once all current readers are gone.
  void Retire(void* p, Deleter del) {
    ThreadState& ts = LocalState();
    uint64_t e = global_epoch_.load(std::memory_order_acquire);
    {
      SpinLockGuard lg(ts.retired_lock);
      ts.retired.push_back({p, del, e});
    }
    if (++ts.retire_count % kAdvanceInterval == 0) {
      AdvanceAndCollect(ts);
    }
  }

  /// Free everything retired so far. Only safe when no thread is inside a
  /// read-side section (e.g. between benchmark phases, in destructors of the
  /// last live index, or single-threaded tests). Under ALT_DEBUG_CHECKS a
  /// still-pinned reader slot aborts: draining would free memory that reader
  /// may still dereference.
  void DrainAll() {
    trace::Span span("epoch_drain", trace_category_);
    ALT_DEBUG_CHECK(MinPinnedEpoch() == kIdle, "epoch",
                    "DrainAll while a reader is pinned: retired items may "
                    "still be referenced by a concurrent EpochGuard holder",
                    this);
    uint64_t freed = 0;
    global_epoch_.fetch_add(1, std::memory_order_acq_rel);
    SpinLockGuard lg(registry_mutex_);
    for (ThreadState* ts : registry_) {
      std::vector<Retired> items;
      {
        SpinLockGuard il(ts->retired_lock);
        items.swap(ts->retired);
      }
      freed += items.size();
      for (auto& r : items) r.del(r.p);
    }
    span.set_detail(freed);
  }

  uint64_t GlobalEpoch() const { return global_epoch_.load(std::memory_order_acquire); }

  /// Count of items awaiting reclamation (approximate; for tests/metrics).
  size_t PendingCount() {
    SpinLockGuard lg(registry_mutex_);
    size_t n = 0;
    for (ThreadState* ts : registry_) {
      SpinLockGuard il(ts->retired_lock);
      n += ts->retired.size();
    }
    return n;
  }

  /// Number of threads currently holding a pinned-epoch slot (tests/metrics).
  size_t RegisteredThreads() {
    SpinLockGuard lg(registry_mutex_);
    return static_cast<size_t>(next_slot_) - free_slots_.size();
  }

  /// Process-unique, never-reused manager identity (tests/diagnostics). The
  /// per-thread state cache keys on this rather than the address so a new
  /// manager allocated where a destroyed one lived cannot inherit stale state.
  uint64_t ManagerId() const { return id_; }

 private:
  static constexpr int kAdvanceInterval = 64;

  struct Retired {
    void* p;
    Deleter del;
    uint64_t epoch;
  };

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  struct ThreadState {
    int slot = -1;
    int nesting = 0;
    uint64_t retire_count = 0;
    /// Two owners: the registering thread and the manager's registry. Whoever
    /// drops the count to zero frees the record, so a manager may be destroyed
    /// before or after the threads that used it (but not concurrently with
    /// them — see the class-level lifetime contract).
    std::atomic<uint32_t> refs{2};
    SpinLock retired_lock;
    std::vector<Retired> retired GUARDED_BY(retired_lock);
  };

  /// Per-thread map from manager identity to this thread's ThreadState in that
  /// manager. A plain function-local thread_local handle no longer works now
  /// that managers are instances: one thread may interleave critical sections
  /// on several managers (e.g. a scan merging across shards). Lookups hit a
  /// one-entry MRU cache first; the fallback is a linear scan, cheap at
  /// realistic manager counts (one per shard plus the global).
  struct ThreadRegistry {
    struct Entry {
      uint64_t id;
      EpochManager* mgr;
      ThreadState* state;
    };

    uint64_t cached_id = 0;
    ThreadState* cached_state = nullptr;
    std::vector<Entry> entries;

    ThreadState* StateFor(EpochManager* m) {
      const uint64_t id = m->id_;
      if (id == cached_id) return cached_state;
      for (size_t i = 0; i < entries.size();) {
        Entry& e = entries[i];
        if (e.state->refs.load(std::memory_order_acquire) == 1) {
          // Manager already destroyed: drop the thread's reference so stale
          // entries do not accumulate across short-lived managers.
          if (e.state->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            delete e.state;
          }
          e = entries.back();
          entries.pop_back();
          continue;
        }
        if (e.id == id) {
          cached_id = id;
          cached_state = e.state;
          return e.state;
        }
        ++i;
      }
      ThreadState* ts = m->RegisterThread();
      entries.push_back({id, m, ts});
      cached_id = id;
      cached_state = ts;
      return ts;
    }

    // Thread exit: return the pinned-epoch slot of every still-live manager
    // (refs == 2 proves the manager has not released its reference, hence is
    // alive per the lifetime contract), then drop this thread's reference.
    ~ThreadRegistry() {
      for (Entry& e : entries) {
        if (e.state->refs.load(std::memory_order_acquire) == 2) {
          e.mgr->UnregisterThread(e.state);
        }
        if (e.state->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          delete e.state;
        }
      }
    }
  };

  static uint64_t NextId() {
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  ThreadState& LocalState() {
    thread_local ThreadRegistry registry;
    return *registry.StateFor(this);
  }

  ThreadState* RegisterThread() {
    auto* ts = new ThreadState();
    SpinLockGuard lg(registry_mutex_);
    if (!free_slots_.empty()) {
      ts->slot = free_slots_.back();
      free_slots_.pop_back();
    } else if (next_slot_ < kMaxThreads) {
      ts->slot = next_slot_++;
    } else {
      // Fail loudly: handing out a shared or wrapped slot would let two live
      // threads overwrite each other's pinned epoch — silent use-after-free
      // of retired memory. kMaxThreads bounds *concurrent* threads only;
      // exited threads return their slots above.
      debug::CheckFailed(
          "epoch",
          "thread slot exhaustion: more than EpochManager::kMaxThreads (256) "
          "concurrent threads registered; raise kMaxThreads or reduce thread "
          "concurrency",
          this);
    }
    registry_.push_back(ts);
    return ts;
  }

  void UnregisterThread(ThreadState* ts) {
    // A thread exiting inside a read-side section would leave its slot pinned
    // forever; the RAII EpochGuard makes this unreachable.
    ALT_DEBUG_CHECK(ts->nesting == 0, "epoch",
                    "thread exited while inside an EpochGuard", ts);
    SpinLockGuard lg(registry_mutex_);
    free_slots_.push_back(ts->slot);
  }

  uint64_t MinPinnedEpoch() const {
    uint64_t m = kIdle;
    for (const Slot& s : slots_) {
      uint64_t e = s.epoch.load(std::memory_order_acquire);
      if (e < m) m = e;
    }
    return m;
  }

  void AdvanceAndCollect(ThreadState& ts) {
    trace::Span span("epoch_advance", trace_category_);
    global_epoch_.fetch_add(1, std::memory_order_acq_rel);
    uint64_t min_pinned = MinPinnedEpoch();
    std::vector<Retired> free_now;
    {
      SpinLockGuard lg(ts.retired_lock);
      auto& v = ts.retired;
      size_t w = 0;
      for (size_t i = 0; i < v.size(); ++i) {
        // Safe once no reader can still be pinned at or before the retire epoch.
        if (v[i].epoch < min_pinned) {
          free_now.push_back(v[i]);
        } else {
          v[w++] = v[i];
        }
      }
      v.resize(w);
    }
    span.set_detail(free_now.size());
    for (auto& r : free_now) r.del(r.p);
  }

  const uint64_t id_;
  const char* const trace_category_;
  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxThreads];
  SpinLock registry_mutex_;
  std::vector<ThreadState*> registry_ GUARDED_BY(registry_mutex_);
  std::vector<int> free_slots_ GUARDED_BY(registry_mutex_);
  int next_slot_ GUARDED_BY(registry_mutex_) = 0;
};

/// RAII read-side critical section. Default-constructed guards pin the global
/// manager; pass a manager to pin an instance (e.g. a shard's).
class EpochGuard {
 public:
  EpochGuard() : mgr_(&EpochManager::Global()) { mgr_->Enter(); }
  explicit EpochGuard(EpochManager& mgr) : mgr_(&mgr) { mgr_->Enter(); }
  ~EpochGuard() { mgr_->Exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* const mgr_;
};

#if defined(ALT_DEBUG_CHECKS)
inline void EpochAssertPinnedImpl(const char* where) {
  EpochManager::Global().AssertPinned(where);
}
inline void EpochAssertPinnedImpl(const char* where, EpochManager& mgr) {
  mgr.AssertPinned(where);
}
inline void EpochAssertPinnedImpl(const char* where, EpochManager* mgr) {
  mgr->AssertPinned(where);
}
#endif

}  // namespace alt

/// Epoch-guard validator hook for hot-path entry points (no-op unless
/// ALT_DEBUG_CHECKS): fatal if the calling thread dereferences
/// epoch-retire-capable shared pointers outside an EpochGuard. Takes the
/// location string plus an optional EpochManager&/EpochManager* naming the
/// instance that must be pinned; without one the global manager is checked.
#if defined(ALT_DEBUG_CHECKS)
#define ALT_ASSERT_EPOCH_PINNED(where, ...) \
  ::alt::EpochAssertPinnedImpl(where __VA_OPT__(, ) __VA_ARGS__)
#else
#define ALT_ASSERT_EPOCH_PINNED(where, ...) ((void)0)
#endif
