# Empty dependencies file for alt_index_test.
# This may be replaced when dependencies are built.
