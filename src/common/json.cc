#include "common/json.h"

#include <cstdio>

namespace alt {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void AppendJsonQuoted(const std::string& s, std::string* out) {
  out->push_back('"');
  *out += JsonEscape(s);
  out->push_back('"');
}

}  // namespace alt
