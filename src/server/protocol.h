#pragma once

/// \file
/// \brief ALT wire protocol v1: length-prefixed, pipelined, binary frames
/// (docs/PROTOCOL.md is the normative spec; this header implements it).
///
/// Every frame — request or response — is a fixed 16-byte little-endian
/// header followed by `body_len` payload bytes:
///
///   offset  size  field
///        0     4  body_len    payload bytes after the header (<= kMaxBodyLen)
///        4     1  version     kProtocolVersion (1)
///        5     1  code        request opcode (high bit clear) or
///                             response status (high bit set)
///        6     1  echo_op     responses: the request's opcode (0 when the
///                             request could not be decoded); requests: zero
///        7     1  reserved    zero on send, ignored on receive
///        8     8  request_id  client-chosen, echoed verbatim in the response
///
/// Frames are independent and pipelined: a client may send any number of
/// requests before reading responses; the server answers each connection's
/// frames in arrival order. FrameDecoder below reassembles frames from
/// arbitrary byte chunks (partial reads, multiple frames per read), which is
/// the single decode path shared by server, client, load generator and tests.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/key_codec.h"

namespace alt {
namespace server {

constexpr uint8_t kProtocolVersion = 1;
constexpr size_t kHeaderBytes = 16;
/// Upper bound on body_len: large enough for a max-size SCAN response
/// (4 + 1024*16 bytes), small enough that a corrupt length cannot balloon a
/// connection buffer. Oversized lengths are unrecoverable framing errors.
constexpr uint32_t kMaxBodyLen = 1u << 20;
/// SCAN count field is clamped here by the server (and validated by clients).
constexpr uint32_t kMaxScanCount = 1024;

/// Request opcodes (high bit clear).
enum class Op : uint8_t {
  kGet = 0x01,    ///< body: key(8)            -> kOk value(8) | kNotFound
  kPut = 0x02,    ///< body: key(8) value(8)   -> kOk created(1)   [upsert]
  kDel = 0x03,    ///< body: key(8)            -> kOk | kNotFound
  kScan = 0x04,   ///< body: start(8) count(4) -> kOk n(4) + n*(key,value)
  kStats = 0x05,  ///< body: empty             -> kOk utf-8 JSON blob
};

/// Response status codes (high bit set).
enum class RespStatus : uint8_t {
  kOk = 0x80,
  kNotFound = 0x81,     ///< GET/DEL of an absent key (not an error)
  kMalformed = 0x82,    ///< body size disagrees with the opcode; fatal
  kUnsupported = 0x83,  ///< unknown opcode or version; connection survives
  kTooLarge = 0x84,     ///< SCAN count above kMaxScanCount
  kServerError = 0x85,  ///< internal failure (e.g. upsert retry exhaustion)
};

struct FrameHeader {
  uint32_t body_len = 0;
  uint8_t version = kProtocolVersion;
  uint8_t code = 0;
  uint8_t echo_op = 0;
  uint64_t request_id = 0;

  Op op() const { return static_cast<Op>(code); }
  RespStatus status() const { return static_cast<RespStatus>(code); }
  bool is_response() const { return (code & 0x80u) != 0; }
};

/// Human-readable name of a response status ("ok", "not_found", ...).
const char* RespStatusName(RespStatus s);

// -- little-endian primitives (shared by encoders and payload readers) -------

inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

// -- frame encoders ----------------------------------------------------------

/// Append a 16-byte header. `code` is an Op (requests) or RespStatus
/// (responses) value; `body_len` must match the bytes appended after it;
/// `echo_op` is the echoed request opcode on responses (0 on requests and on
/// responses to undecodable requests).
void AppendHeader(std::vector<uint8_t>* out, uint8_t code, uint64_t request_id,
                  uint32_t body_len, uint8_t echo_op = 0);

void AppendGet(std::vector<uint8_t>* out, uint64_t request_id, Key key);
void AppendPut(std::vector<uint8_t>* out, uint64_t request_id, Key key,
               Value value);
void AppendDel(std::vector<uint8_t>* out, uint64_t request_id, Key key);
void AppendScan(std::vector<uint8_t>* out, uint64_t request_id, Key start,
                uint32_t count);
void AppendStats(std::vector<uint8_t>* out, uint64_t request_id);

/// kOk GET response carrying the value.
void AppendValueResponse(std::vector<uint8_t>* out, uint64_t request_id,
                         Value value);
/// Bodyless response (kNotFound, kMalformed, ... and bodyless kOk for DEL).
/// `echo_op` is the request's opcode, or 0 when the request never decoded.
void AppendStatusResponse(std::vector<uint8_t>* out, uint64_t request_id,
                          RespStatus status, uint8_t echo_op = 0);
/// kOk PUT response carrying the created flag (1 = inserted, 0 = updated).
void AppendPutResponse(std::vector<uint8_t>* out, uint64_t request_id,
                       bool created);
/// kOk SCAN response: count + pairs.
void AppendScanResponse(std::vector<uint8_t>* out, uint64_t request_id,
                        const std::pair<Key, Value>* pairs, uint32_t n);
/// kOk STATS response carrying a JSON blob.
void AppendStatsResponse(std::vector<uint8_t>* out, uint64_t request_id,
                         const std::string& json);

// -- request validation ------------------------------------------------------

/// Classify a decoded request frame. Returns kOk when `h` is a well-formed
/// request whose body size matches its opcode; otherwise the error status the
/// server must answer with (kMalformed is fatal to the connection, the rest
/// keep it open — see docs/PROTOCOL.md §"Errors").
RespStatus ValidateRequest(const FrameHeader& h);

// -- incremental decoder -----------------------------------------------------

/// \brief Reassembles frames from an arbitrary byte stream.
///
/// Feed() appends whatever recv() produced; Next() yields complete frames in
/// order. A frame's body pointer stays valid until the next Feed/Next call.
/// kError is sticky and unrecoverable: a corrupt length or version leaves no
/// way to find the next frame boundary, so the connection must be closed
/// (docs/PROTOCOL.md §"Partial reads and resynchronization").
class FrameDecoder {
 public:
  enum class Result {
    kFrame,     ///< *header/*body filled with one complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< stream corrupt; see error()
  };

  void Feed(const uint8_t* data, size_t n);

  Result Next(FrameHeader* header, const uint8_t** body);

  /// Human-readable reason after kError, nullptr otherwise.
  const char* error() const { return error_; }

  /// True iff Next() would return kFrame right now (no state change). Lets
  /// the server revisit a connection whose decode was cut short by fairness
  /// or backpressure limits without waiting for another readability edge.
  bool HasCompleteFrame() const;

  /// Bytes buffered but not yet consumed by Next() (tests, backpressure).
  size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;
  const char* error_ = nullptr;
};

}  // namespace server
}  // namespace alt
