// Structural introspection (DESIGN.md §9.3): CollectStructuralStats walks the
// model directory and ART-OPT and reports what the index *looks like* — the
// memory decomposition behind Fig. 8a, per-model segment/occupancy
// distributions, the conflict ratio, and the ART node census.
//
// Quiescent-only, like CollectStats / MemoryUsage: the walkers read per-slot
// words and node headers without retry loops, so run them while no writer is
// active. The component byte fields reuse the exact expressions MemoryUsage()
// sums, so `total_bytes == MemoryUsage()` at a quiescent point by
// construction (the --dump_structure acceptance check).

#include <algorithm>
#include <cstdio>

#include "common/epoch.h"
#include "common/json.h"
#include "core/alt_index.h"

namespace alt {

namespace {

/// log2-style bucket for a segment length: bucket b holds build_size in
/// [2^b, 2^(b+1)); the last bucket is open-ended.
size_t SegmentBucket(uint32_t build_size) {
  size_t b = 0;
  while (build_size > 1 && b < 16) {
    build_size >>= 1;
    ++b;
  }
  return b;
}

void AppendSizeArray(const char* name, const size_t* v, size_t n, bool last,
                     std::string* out) {
  *out += "    \"";
  *out += name;
  *out += "\": [";
  for (size_t i = 0; i < n; ++i) {
    if (i != 0) *out += ", ";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%zu", v[i]);
    *out += buf;
  }
  *out += last ? "]\n" : "],\n";
}

void AppendKv(const char* name, uint64_t v, bool last, std::string* out) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "    \"%s\": %llu%s\n", name,
                static_cast<unsigned long long>(v), last ? "" : ",");
  *out += buf;
}

}  // namespace

AltIndex::StructuralStats AltIndex::CollectStructuralStats() const {
  StructuralStats st;
  EpochGuard g(*epoch_);

  st.header_bytes = sizeof(AltIndex);
  st.fast_pointer_bytes = fp_buffer_.MemoryBytes();

  const ModelDirectory::Snapshot* snap = directory_.snapshot();
  if (snap != nullptr) {
    // Snapshot overhead, exactly as ModelDirectory::MemoryBytes counts it
    // (the per-model bytes are split out below).
    st.directory_bytes =
        sizeof(ModelDirectory::Snapshot) +
        snap->first_keys.size() * (sizeof(Key) + sizeof(std::atomic<GplModel*>)) +
        snap->radix.size() * sizeof(uint32_t);

    st.num_models = snap->first_keys.size();
    st.min_segment = ~uint32_t{0};
    for (const auto& m : snap->models) {
      const GplModel* model = m.load(std::memory_order_acquire);
      st.model_bytes += model->MemoryBytes();
      st.total_slots += model->num_slots();
      model->CountSlotStates(st.slot_states);
      if (!model->strict_empty()) st.tail_models++;
      if (model->slots_huge_backed()) st.huge_backed_models++;

      const uint32_t seg = model->build_size();
      st.min_segment = std::min(st.min_segment, seg);
      st.max_segment = std::max(st.max_segment, seg);
      st.segment_len_hist[SegmentBucket(seg)]++;

      const uint32_t occupied = model->CountOccupied();
      size_t decile = (static_cast<size_t>(occupied) * 10) / model->num_slots();
      if (decile > 9) decile = 9;
      st.occupancy_hist[decile]++;

      const Expansion* exp = model->expansion();
      if (exp != nullptr && exp->new_model != nullptr) {
        st.expanding_models++;
        st.expansion_bytes += exp->new_model->MemoryBytes();
        st.total_slots += exp->new_model->num_slots();
        exp->new_model->CountSlotStates(st.slot_states);
      }
    }
    if (st.min_segment == ~uint32_t{0}) st.min_segment = 0;
  }

  st.art = art_.CollectCensus();
  st.art_bytes = st.art.total_bytes;
  st.art_keys = art_.Size();

  st.total_bytes = st.header_bytes + st.directory_bytes + st.model_bytes +
                   st.expansion_bytes + st.fast_pointer_bytes + st.art_bytes;

  const size_t occupied_slots =
      st.slot_states[static_cast<size_t>(SlotState::kOccupied)];
  const size_t resident = st.art_keys + occupied_slots;
  st.conflict_ratio =
      resident == 0 ? 0.0
                    : static_cast<double>(st.art_keys) / static_cast<double>(resident);
  return st;
}

std::string AltIndex::StructureJson() const {
  const StructuralStats st = CollectStructuralStats();
  std::string out = "{\n";

  out += "  \"memory\": {\n";
  AppendKv("header_bytes", st.header_bytes, false, &out);
  AppendKv("directory_bytes", st.directory_bytes, false, &out);
  AppendKv("model_bytes", st.model_bytes, false, &out);
  AppendKv("expansion_bytes", st.expansion_bytes, false, &out);
  AppendKv("fast_pointer_bytes", st.fast_pointer_bytes, false, &out);
  AppendKv("art_bytes", st.art_bytes, false, &out);
  AppendKv("total_bytes", st.total_bytes, true, &out);
  out += "  },\n";

  out += "  \"learned_layer\": {\n";
  AppendKv("num_models", st.num_models, false, &out);
  AppendKv("expanding_models", st.expanding_models, false, &out);
  AppendKv("tail_models", st.tail_models, false, &out);
  AppendKv("huge_backed_models", st.huge_backed_models, false, &out);
  AppendKv("total_slots", st.total_slots, false, &out);
  AppendKv("slots_empty", st.slot_states[0], false, &out);
  AppendKv("slots_occupied", st.slot_states[1], false, &out);
  AppendKv("slots_tombstone", st.slot_states[2], false, &out);
  AppendKv("slots_migrated", st.slot_states[3], false, &out);
  AppendKv("min_segment", st.min_segment, false, &out);
  AppendKv("max_segment", st.max_segment, false, &out);
  AppendSizeArray("segment_len_hist_log2", st.segment_len_hist, 17, false, &out);
  AppendSizeArray("occupancy_deciles", st.occupancy_hist, 10, true, &out);
  out += "  },\n";

  char buf[96];
  std::snprintf(buf, sizeof(buf), "  \"art_keys\": %llu,\n  \"conflict_ratio\": %.6f,\n",
                static_cast<unsigned long long>(st.art_keys), st.conflict_ratio);
  out += buf;

  out += "  \"art\": {\n";
  AppendKv("node4", st.art.nodes[0], false, &out);
  AppendKv("node16", st.art.nodes[1], false, &out);
  AppendKv("node48", st.art.nodes[2], false, &out);
  AppendKv("node256", st.art.nodes[3], false, &out);
  AppendKv("node4_bytes", st.art.node_bytes[0], false, &out);
  AppendKv("node16_bytes", st.art.node_bytes[1], false, &out);
  AppendKv("node48_bytes", st.art.node_bytes[2], false, &out);
  AppendKv("node256_bytes", st.art.node_bytes[3], false, &out);
  AppendKv("leaves", st.art.leaves, false, &out);
  AppendKv("leaf_bytes", st.art.leaf_bytes, false, &out);
  AppendKv("height", st.art.height, false, &out);
  AppendKv("compressed_nodes", st.art.compressed_nodes, false, &out);
  AppendKv("prefix_bytes_saved", st.art.prefix_bytes, false, &out);
  AppendKv("total_bytes", st.art.total_bytes, false, &out);
  AppendSizeArray("leaf_depth_hist", st.art.depth_hist, kKeyBytes + 1, true, &out);
  out += "  }\n}\n";
  return out;
}

}  // namespace alt
