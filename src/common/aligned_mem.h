#pragma once

#include <cstddef>

namespace alt {

/// 2MB — x86-64 / AArch64 transparent huge page granularity.
inline constexpr size_t kHugePageBytes = size_t{2} << 20;

/// \brief Zero-filled, 64-byte-aligned allocation for hot arrays (GPL slot
/// arrays). When `use_huge_pages` is set and the request spans at least one
/// huge page, the region is mmap'd at 2MB granularity and advised
/// MADV_HUGEPAGE so the kernel backs it with 2MB pages where it can —
/// collapsing the dTLB footprint of large slot arrays (DESIGN.md §10).
///
/// Fallback chain, each step graceful and silent: a request below one huge
/// page, an mmap or madvise failure (THP compiled out or set to "never"), or
/// a non-Linux build all land on an ordinary 64-byte-aligned heap allocation.
/// `*huge_backed` reports whether the huge-page mmap path was taken (and thus
/// how the matching FreeHotArray must release the region).
void* AllocateHotArray(size_t bytes, bool use_huge_pages, bool* huge_backed);

/// Release an AllocateHotArray region. `bytes` and `huge_backed` must be the
/// values of the matching allocation (mmap'd regions need their length back).
void FreeHotArray(void* p, size_t bytes, bool huge_backed);

}  // namespace alt
