// alt-atomic-order clean fixture: every atomic access spells its order, and
// a non-atomic member sharing its name with an atomic (`total`) must not be
// mistaken for an operator-form access.
#include <atomic>

struct Counter {
  std::atomic<int> hits{0};
  std::atomic<bool> ready{false};

  void Bump() {
    hits.fetch_add(1, std::memory_order_relaxed);
    ready.store(true, std::memory_order_release);
  }

  int Read() const { return hits.load(std::memory_order_acquire); }
};

std::atomic<int> total{0};

struct Snapshot {
  int total = 0;
};

Snapshot Capture() {
  Snapshot s;
  const int current = total.load(std::memory_order_relaxed);
  s.total = current;
  return s;
}

void Tick() { total.fetch_add(1, std::memory_order_relaxed); }
