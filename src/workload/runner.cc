#include "workload/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>

#include "common/json.h"
#include "common/latency_recorder.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/spinlock.h"
#include "common/timer.h"
#include "common/trace.h"
#include "datasets/dataset.h"

namespace alt {

namespace {

constexpr size_t kNumOpTypes = 5;  // kRead..kRemove in workload.h
constexpr size_t kNumPathCells = kNumOpTypes * kNumServedBy;

size_t PathCell(OpType op, ServedBy served) {
  return static_cast<size_t>(op) * kNumServedBy + static_cast<size_t>(served);
}

/// Per-thread attribution state: one total-op counter and one sampled-latency
/// histogram per (op type × serving path) cell. Only allocated when
/// RunOptions::path_breakdown is set.
struct PathGrid {
  std::vector<uint64_t> counts{std::vector<uint64_t>(kNumPathCells, 0)};
  std::vector<LatencyHistogram> hists{std::vector<LatencyHistogram>(kNumPathCells)};

  void Account(OpType op, ServedBy served, bool sampled, uint64_t ns) {
    const size_t cell = PathCell(op, served);
    counts[cell]++;
    if (sampled) hists[cell].Record(ns);
  }
};

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

/// One JSON line of the --metrics_json stream. `result` is null for interval
/// snapshots (the run is still executing).
std::string RunJsonLine(const std::string& label, const char* phase,
                        const RunResult* result, const metrics::Snapshot& delta) {
  std::string line = "{\"label\":";
  AppendJsonQuoted(label, &line);
  line += ",\"phase\":";
  AppendJsonQuoted(phase, &line);
  if (result != nullptr) {
    line += ",\"throughput_mops\":";
    AppendDouble(&line, result->throughput_mops);
    line += ",\"seconds\":";
    AppendDouble(&line, result->seconds);
    line += ",\"total_ops\":" + std::to_string(result->total_ops);
    line += ",\"failed_ops\":" + std::to_string(result->failed_ops);
    line += ",\"empty_scans\":" + std::to_string(result->empty_scans);
    line += ",\"p50_ns\":" + std::to_string(result->p50_ns);
    line += ",\"p99_ns\":" + std::to_string(result->p99_ns);
    line += ",\"p999_ns\":" + std::to_string(result->p999_ns);
    if (result->perf.enabled) {
      const PerfStatResult& pf = result->perf;
      line += ",\"perf\":{\"tier\":";
      AppendJsonQuoted(pf.tier_name, &line);
      line += ",\"available\":";
      line += pf.tier != perf::Tier::kUnavailable ? "true" : "false";
      line += ",\"ops\":" + std::to_string(pf.ops);
      // Only the rows the active tier actually measured: a software-tier run
      // must not report cycles_per_op=0 as if it were a measurement.
      if (pf.tier == perf::Tier::kHardware) {
        line += ",\"cycles_per_op\":";
        AppendDouble(&line, pf.PerOp(pf.totals.cycles));
        line += ",\"instructions_per_op\":";
        AppendDouble(&line, pf.PerOp(pf.totals.instructions));
        line += ",\"ipc\":";
        AppendDouble(&line, pf.totals.cycles > 0
                                ? static_cast<double>(pf.totals.instructions) /
                                      static_cast<double>(pf.totals.cycles)
                                : 0);
        line += ",\"llc_misses_per_kop\":";
        AppendDouble(&line, pf.PerKop(pf.totals.llc_misses));
        line += ",\"branch_misses_per_kop\":";
        AppendDouble(&line, pf.PerKop(pf.totals.branch_misses));
        line += ",\"mux_scale\":";
        AppendDouble(&line, pf.totals.scale);
      } else if (pf.tier == perf::Tier::kSoftware) {
        line += ",\"task_clock_ns_per_op\":";
        AppendDouble(&line, pf.PerOp(pf.totals.task_clock_ns));
        line += ",\"page_faults_per_kop\":";
        AppendDouble(&line, pf.PerKop(pf.totals.page_faults));
      }
      line += ",\"tsc_cycles_per_op\":";
      AppendDouble(&line, pf.PerOp(pf.totals.tsc_cycles));
      line += '}';
    }
    if (!result->path_stats.empty()) {
      line += ",\"paths\":[";
      bool first = true;
      for (const PathStat& p : result->path_stats) {
        if (!first) line += ',';
        first = false;
        line += "{\"op\":";
        AppendJsonQuoted(OpTypeName(p.op), &line);
        line += ",\"served\":";
        AppendJsonQuoted(ServedByName(p.served), &line);
        line += ",\"count\":" + std::to_string(p.count);
        line += ",\"samples\":" + std::to_string(p.samples);
        line += ",\"mean_ns\":";
        AppendDouble(&line, p.mean_ns);
        line += ",\"p50_ns\":" + std::to_string(p.p50_ns);
        line += ",\"p99_ns\":" + std::to_string(p.p99_ns);
        line += ",\"p999_ns\":" + std::to_string(p.p999_ns) + '}';
      }
      line += ']';
    }
  }
  line += ",\"metrics\":";
  line += metrics::ToJson(delta);
  line += '}';
  return line;
}

}  // namespace

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kRead: return "read";
    case OpType::kInsert: return "insert";
    case OpType::kScan: return "scan";
    case OpType::kUpdate: return "update";
    case OpType::kRemove: return "remove";
  }
  return "unknown";
}

void PrintPathBreakdown(const RunResult& result, std::FILE* f) {
  if (result.path_stats.empty()) return;
  if (f == nullptr) f = stdout;
  std::fprintf(f, "%-8s %-18s %12s %10s %10s %10s %10s %10s\n", "op",
               "served_by", "count", "samples", "mean_ns", "p50_ns", "p99_ns",
               "p999_ns");
  for (const PathStat& p : result.path_stats) {
    std::fprintf(f, "%-8s %-18s %12llu %10llu %10.0f %10llu %10llu %10llu\n",
                 OpTypeName(p.op), ServedByName(p.served),
                 static_cast<unsigned long long>(p.count),
                 static_cast<unsigned long long>(p.samples), p.mean_ns,
                 static_cast<unsigned long long>(p.p50_ns),
                 static_cast<unsigned long long>(p.p99_ns),
                 static_cast<unsigned long long>(p.p999_ns));
  }
}

void PrintPerfStat(const RunResult& result, std::FILE* f) {
  const PerfStatResult& pf = result.perf;
  if (!pf.enabled) return;
  if (f == nullptr) f = stdout;
  std::fprintf(f, "perf counters: %s\n", pf.tier_name.c_str());
  if (pf.tier == perf::Tier::kHardware) {
    std::fprintf(f, "  %-22s %12.1f\n", "cycles/op", pf.PerOp(pf.totals.cycles));
    std::fprintf(f, "  %-22s %12.1f\n", "instructions/op",
                 pf.PerOp(pf.totals.instructions));
    std::fprintf(f, "  %-22s %12.2f\n", "IPC",
                 pf.totals.cycles > 0
                     ? static_cast<double>(pf.totals.instructions) /
                           static_cast<double>(pf.totals.cycles)
                     : 0.0);
    std::fprintf(f, "  %-22s %12.2f\n", "LLC-misses/Kop",
                 pf.PerKop(pf.totals.llc_misses));
    std::fprintf(f, "  %-22s %12.2f\n", "branch-misses/Kop",
                 pf.PerKop(pf.totals.branch_misses));
    if (pf.totals.scale > 1.0) {
      std::fprintf(f, "  %-22s %12.2f\n", "multiplex-scale", pf.totals.scale);
    }
  } else if (pf.tier == perf::Tier::kSoftware) {
    std::fprintf(f, "  %-22s %12.1f\n", "task-clock-ns/op",
                 pf.PerOp(pf.totals.task_clock_ns));
    std::fprintf(f, "  %-22s %12.3f\n", "page-faults/Kop",
                 pf.PerKop(pf.totals.page_faults));
  } else {
    std::fprintf(f,
                 "  (hardware and software counters unavailable; TSC estimate "
                 "only)\n");
  }
  // TSC reference cycles are always measured on x86-64 — the cycles-per-op
  // estimate of record when the PMU is unavailable (VMs, containers).
  std::fprintf(f, "  %-22s %12.1f\n", "tsc-ref-cycles/op",
               pf.PerOp(pf.totals.tsc_cycles));
}

RunResult RunWorkload(ConcurrentIndex* index,
                      const std::vector<std::vector<Op>>& streams,
                      const RunOptions& options) {
  const int num_threads = static_cast<int>(streams.size());
  const size_t scan_length = options.scan_length;
  const size_t read_batch = options.read_batch > 0 ? options.read_batch : 1;
  const bool paths = options.path_breakdown;
  const bool perf_stat = options.perf_stat;
  std::vector<LatencyHistogram> hists(static_cast<size_t>(num_threads));
  std::vector<PathGrid> grids(paths ? static_cast<size_t>(num_threads) : 0);
  std::vector<uint64_t> fails(static_cast<size_t>(num_threads), 0);
  std::vector<uint64_t> empties(static_cast<size_t>(num_threads), 0);
  std::vector<perf::Reading> perf_readings(
      perf_stat ? static_cast<size_t>(num_threads) : 0);
  std::vector<perf::Tier> perf_tiers(
      perf_stat ? static_cast<size_t>(num_threads) : 0, perf::Tier::kUnavailable);
  std::vector<std::string> perf_errors(
      perf_stat ? static_cast<size_t>(num_threads) : 0);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};

  auto worker = [&](int tid) {
    const auto& stream = streams[static_cast<size_t>(tid)];
    LatencyHistogram& hist = hists[static_cast<size_t>(tid)];
    PathGrid* grid = paths ? &grids[static_cast<size_t>(tid)] : nullptr;
    // Per-thread counter group, opened before the barrier (fd setup excluded
    // from the measured window) and started only after `go` (barrier spin
    // excluded too). Per-thread because inherited events cannot be read with
    // PERF_FORMAT_GROUP, and a single group would multiplex across threads.
    std::unique_ptr<perf::ThreadCounters> counters;
    if (perf_stat) {
      counters = std::make_unique<perf::ThreadCounters>();
      perf_tiers[static_cast<size_t>(tid)] = counters->tier();
      perf_errors[static_cast<size_t>(tid)] = counters->error();
    }
    uint64_t failed = 0;
    uint64_t empty = 0;
    std::vector<std::pair<Key, Value>> scan_buf;
    // Read-coalescing buffers (read_batch > 1): consecutive kRead ops are
    // collected here and resolved with one LookupBatch call.
    std::vector<Key> batch_keys(read_batch);
    std::vector<Value> batch_vals(read_batch);
    std::unique_ptr<bool[]> batch_found(new bool[read_batch]);
    size_t pending = 0;
    // 1-in-16 latency sampling, with the starting phase de-correlated across
    // threads (see LatencyRecorder's class comment: identical phases would
    // sample the same op indices in lockstep and alias with synchronized
    // periodic work such as epoch advances or batch flushes).
    uint32_t tick = static_cast<uint32_t>(
        Mix64(0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(tid)));
    ready.fetch_add(1, std::memory_order_acq_rel);
    while (!go.load(std::memory_order_acquire)) CpuRelax();
    if (counters != nullptr) counters->Start();
    trace::Span worker_span("worker", "runner", stream.size());
    auto flush_reads = [&] {
      if (pending == 0) return;
      const bool sample = (tick++ & 15u) == 0;
      const uint64_t t0 = sample ? NowNanos() : 0;
      const size_t hits =
          index->LookupBatch(batch_keys.data(), pending, batch_vals.data(),
                             batch_found.get());
      failed += pending - hits;
      const uint64_t per_op = sample ? (NowNanos() - t0) / pending : 0;
      if (sample) hist.Record(per_op);
      if (grid != nullptr) {
        // The batch pipeline does not attribute individual keys; the whole
        // group lands in (read, unattributed) at its mean per-op latency.
        for (size_t i = 0; i < pending; ++i) {
          grid->Account(OpType::kRead, ServedBy::kUnattributed,
                        sample && i == 0, per_op);
        }
      }
      pending = 0;
    };
    for (const Op& op : stream) {
      if (read_batch > 1) {
        if (op.type == OpType::kRead) {
          batch_keys[pending++] = op.key;
          if (pending == read_batch) flush_reads();
          continue;
        }
        flush_reads();  // a non-read op breaks the run of coalescible reads
      }
      const bool sample = (tick++ & 15u) == 0;
      const uint64_t t0 = sample ? NowNanos() : 0;
      bool ok = true;
      ServedBy served = ServedBy::kUnattributed;
      ServedBy* sp = grid != nullptr ? &served : nullptr;
      switch (op.type) {
        case OpType::kRead: {
          Value v;
          ok = sp != nullptr ? index->LookupServed(op.key, &v, sp)
                             : index->Lookup(op.key, &v);
          break;
        }
        case OpType::kInsert:
          ok = sp != nullptr ? index->InsertServed(op.key, ValueFor(op.key), sp)
                             : index->Insert(op.key, ValueFor(op.key));
          break;
        case OpType::kScan:
          // A scan that finds nothing hit the end of the keyspace (every
          // start key is drawn from the live key space, so there is no
          // "miss" to report) — count it separately, not as a failure.
          if (index->Scan(op.key, scan_length, &scan_buf) == 0) ++empty;
          break;
        case OpType::kUpdate:
          ok = sp != nullptr
                   ? index->UpdateServed(op.key, ValueFor(op.key) ^ 0x5a5a, sp)
                   : index->Update(op.key, ValueFor(op.key) ^ 0x5a5a);
          break;
        case OpType::kRemove:
          ok = sp != nullptr ? index->RemoveServed(op.key, sp)
                             : index->Remove(op.key);
          break;
      }
      if (!ok) ++failed;
      const uint64_t ns = sample ? NowNanos() - t0 : 0;
      if (sample) hist.Record(ns);
      if (grid != nullptr) grid->Account(op.type, served, sample, ns);
    }
    if (read_batch > 1) flush_reads();
    if (counters != nullptr) {
      perf_readings[static_cast<size_t>(tid)] = counters->Stop();
    }
    fails[static_cast<size_t>(tid)] = failed;
    empties[static_cast<size_t>(tid)] = empty;
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  while (ready.load(std::memory_order_acquire) < num_threads) CpuRelax();

  // Metrics export: scope the process-global registry to this run by diffing
  // against a baseline taken right before the start barrier opens.
  const bool export_metrics = !options.metrics_json.empty();
  const metrics::Snapshot baseline = export_metrics ? metrics::TakeSnapshot()
                                                    : metrics::Snapshot{};
  std::vector<std::string> interval_lines;
  std::atomic<bool> stop_sampler{false};
  std::thread sampler;
  if (export_metrics && options.metrics_interval_seconds > 0) {
    sampler = std::thread([&] {
      metrics::Snapshot prev = baseline;
      const auto interval = std::chrono::duration<double>(
          options.metrics_interval_seconds);
      auto next_wake = std::chrono::steady_clock::now() + interval;
      while (!stop_sampler.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        if (std::chrono::steady_clock::now() < next_wake) continue;
        next_wake += interval;
        metrics::Snapshot now = metrics::TakeSnapshot();
        interval_lines.push_back(RunJsonLine(options.metrics_label, "interval",
                                             nullptr, now.DeltaSince(prev)));
        prev = std::move(now);
      }
    });
  }

  const Stopwatch clock;
  {
    trace::Span measure_span("measure", "runner",
                             static_cast<uint64_t>(num_threads));
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
  }
  const double seconds = clock.ElapsedSeconds();
  if (sampler.joinable()) {
    stop_sampler.store(true, std::memory_order_release);
    sampler.join();
  }

  RunResult r;
  LatencyHistogram merged;
  for (int t = 0; t < num_threads; ++t) {
    merged.Merge(hists[static_cast<size_t>(t)]);
    r.total_ops += streams[static_cast<size_t>(t)].size();
    r.failed_ops += fails[static_cast<size_t>(t)];
    r.empty_scans += empties[static_cast<size_t>(t)];
  }
  r.seconds = seconds;
  r.throughput_mops = seconds > 0
                          ? static_cast<double>(r.total_ops) / seconds / 1e6
                          : 0;
  r.p50_ns = merged.Percentile(0.50);
  r.p99_ns = merged.Percentile(0.99);
  r.p999_ns = merged.Percentile(0.999);
  r.mean_ns = merged.MeanNs();

  if (perf_stat) {
    r.perf.enabled = true;
    r.perf.ops = r.total_ops;
    for (const perf::Reading& reading : perf_readings) {
      r.perf.totals.Accumulate(reading);
    }
    // All threads land on the same tier (same kernel, same paranoid level);
    // report thread 0's, with its open-failure reason when degraded.
    if (num_threads > 0) {
      r.perf.tier = perf_tiers[0];
      r.perf.tier_name = perf::TierName(perf_tiers[0], perf_errors[0]);
    } else {
      r.perf.tier_name = perf::TierName(perf::Tier::kUnavailable, "no worker threads");
    }
    r.perf.totals.tier = r.perf.tier;
  }

  if (paths) {
    for (size_t cell = 0; cell < kNumPathCells; ++cell) {
      uint64_t count = 0;
      LatencyHistogram cell_hist;
      for (const PathGrid& g : grids) {
        count += g.counts[cell];
        cell_hist.Merge(g.hists[cell]);
      }
      if (count == 0) continue;
      PathStat p;
      p.op = static_cast<OpType>(cell / kNumServedBy);
      p.served = static_cast<ServedBy>(cell % kNumServedBy);
      p.count = count;
      p.samples = cell_hist.Count();
      p.mean_ns = cell_hist.MeanNs();
      p.p50_ns = cell_hist.Percentile(0.50);
      p.p99_ns = cell_hist.Percentile(0.99);
      p.p999_ns = cell_hist.Percentile(0.999);
      r.path_stats.push_back(p);
    }
  }

  if (export_metrics) {
    metrics::SetGauge(metrics::Gauge::kLiveKeys,
                      static_cast<int64_t>(index->Size()));
    const metrics::Snapshot delta = metrics::TakeSnapshot().DeltaSince(baseline);
    std::ofstream out(options.metrics_json, std::ios::app);
    if (out) {
      for (const std::string& line : interval_lines) out << line << '\n';
      out << RunJsonLine(options.metrics_label, "final", &r, delta) << '\n';
    } else {
      std::fprintf(stderr, "runner: cannot open metrics_json file '%s'\n",
                   options.metrics_json.c_str());
    }
  }
  return r;
}

RunResult RunWorkload(ConcurrentIndex* index,
                      const std::vector<std::vector<Op>>& streams,
                      size_t scan_length) {
  RunOptions options;
  options.scan_length = scan_length;
  return RunWorkload(index, streams, options);
}

BenchSetup SplitDataset(const std::vector<Key>& keys, double bulk_fraction) {
  BenchSetup setup;
  if (keys.empty()) return setup;  // nothing to split (and no front() to read)
  if (bulk_fraction < 0.01) bulk_fraction = 0.01;
  if (bulk_fraction > 1.0) bulk_fraction = 1.0;
  // Interleave: of every `period` keys, the first `bulk_per` go to the bulk
  // set, the rest to the pool, so both follow the dataset's distribution.
  const int period = 10;
  const int bulk_per = static_cast<int>(bulk_fraction * period + 0.5);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (static_cast<int>(i % period) < bulk_per) {
      setup.loaded.push_back(keys[i]);
    } else {
      setup.pool.push_back(keys[i]);
    }
  }
  if (setup.loaded.empty()) {
    // Move (not copy) the first key out of the pool: a copy would leave the
    // key in both sets, and its later pool insert would fail as a duplicate.
    setup.loaded.push_back(setup.pool.front());
    setup.pool.erase(setup.pool.begin());
  }
  return setup;
}

}  // namespace alt
