#pragma once

#include <cstdint>

namespace alt {

/// \brief SplitMix64: fast, high-quality 64-bit mixer. Used to seed Xoshiro and
/// to scramble Zipfian ranks into uncorrelated key-space picks.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Stateless mix of a single 64-bit value (Stafford variant 13).
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** PRNG — fast enough for per-operation workload draws and
/// statistically solid for dataset synthesis.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Uniform 64-bit draw.
  uint64_t Next();

  /// Uniform draw in [0, bound) without modulo bias (Lemire reduction).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace alt
