// Reproduces Fig. 8(a): memory overhead per index after bulk-loading half of
// each dataset and inserting the rest. Expected shape: ALEX+ smallest,
// ALT-index next (less than the delta-buffer designs), LIPP+ largest.
//
// The figure now decomposes each total into the components behind it
// (CollectMemoryBreakdown, DESIGN.md §9.3): learned models / inner nodes,
// delta structures (ALT's conflict ART + in-flight expansions), and auxiliary
// metadata (fast pointers, directories, headers). Baselines without a
// structural walker land in "other". Pass --dump_structure PATH|- for the
// full JSON report (segment/occupancy histograms, ART node census).
#include "bench_common.h"
#include "common/epoch.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Fig. 8(a): memory overhead (bytes/key) after load + insert-all",
              {"Index", "Dataset", "MB", "bytes/key", "model%", "delta%",
               "aux%", "other%"});
  for (const auto& name : cfg.indexes) {
    for (Dataset d : cfg.datasets) {
      const auto keys = LoadKeys(cfg, d);
      auto index = MakeIndex(name);
      const BenchSetup setup = LoadIndex(index.get(), keys, cfg.bulk_fraction);
      for (Key k : setup.pool) index->Insert(k, ValueFor(k));
      const size_t bytes = index->MemoryUsage();
      const ConcurrentIndex::MemoryBreakdown mb = index->CollectMemoryBreakdown();
      const double total =
          mb.total() > 0 ? static_cast<double>(mb.total()) : 1.0;
      auto pct = [&](size_t part) {
        return Fmt(100.0 * static_cast<double>(part) / total, 1);
      };
      PrintRow({index->Name(), DatasetName(d),
                Fmt(static_cast<double>(bytes) / 1048576.0),
                Fmt(static_cast<double>(bytes) / static_cast<double>(keys.size()), 1),
                pct(mb.model_bytes), pct(mb.delta_bytes),
                pct(mb.auxiliary_bytes), pct(mb.other_bytes)});
      if (!cfg.dump_structure.empty()) {
        const std::string report = index->StructureJson();
        if (cfg.dump_structure == "-") {
          std::fwrite(report.data(), 1, report.size(), stdout);
        } else {
          std::FILE* f = std::fopen(cfg.dump_structure.c_str(), "a");
          if (f != nullptr) {
            std::fwrite(report.data(), 1, report.size(), f);
            std::fclose(f);
          }
        }
      }
      index.reset();
      EpochManager::Global().DrainAll();
    }
  }
  return 0;
}
