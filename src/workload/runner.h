#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/index_interface.h"
#include "workload/workload.h"

namespace alt {

/// Per-(op type × serving path) latency attribution row (DESIGN.md §9.2):
/// which internal path answered the op, how often, and at what latency.
struct PathStat {
  OpType op = OpType::kRead;
  ServedBy served = ServedBy::kUnattributed;
  uint64_t count = 0;    ///< ops routed to this path (every op, not sampled)
  uint64_t samples = 0;  ///< latency samples behind the percentiles (1/16)
  double mean_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
};

/// Aggregated result of one timed run.
struct RunResult {
  double throughput_mops = 0;  ///< million operations per second
  double seconds = 0;
  uint64_t total_ops = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;  ///< the paper's P99.9 tail metric
  double mean_ns = 0;
  uint64_t failed_ops = 0;   ///< reads that missed / duplicate inserts
  uint64_t empty_scans = 0;  ///< scans past the last key (not failures)
  /// Non-empty iff RunOptions::path_breakdown; rows with count > 0 only,
  /// ordered by (op, served).
  std::vector<PathStat> path_stats;
};

/// Execution knobs for RunWorkload.
struct RunOptions {
  size_t scan_length = 100;
  /// Reads per LookupBatch call: each worker coalesces up to this many
  /// *consecutive* kRead ops and issues them through the index's batched read
  /// path. 1 (default) keeps the scalar Lookup path, so existing benchmark
  /// numbers stay comparable. A sampled batch records its mean per-op latency.
  size_t read_batch = 1;
  /// When non-empty, append one JSON line per emitted snapshot to this file:
  /// periodic "interval" deltas (if metrics_interval_seconds > 0) while the
  /// run executes, plus one "final" line with the run result and the metrics
  /// delta scoped to this run (see common/metrics.h).
  std::string metrics_json;
  /// Seconds between interval snapshots; 0 (default) emits only the final one.
  double metrics_interval_seconds = 0;
  /// Free-form run label copied into each JSON line (e.g. "ycsb-a/alt/16t").
  std::string metrics_label;
  /// Collect per-(op × serving path) latency attribution into
  /// RunResult::path_stats (and the "paths" array of the final metrics JSON
  /// line). Off by default: attribution routes ops through the Served*
  /// interface variants and keeps one extra histogram per (op, path) pair
  /// per thread.
  bool path_breakdown = false;
};

/// \brief Execute pre-generated per-thread op streams against `index` with
/// one thread per stream and return throughput + tail latency (sampled 1/16).
///
/// Threads start together behind a barrier; the wall clock covers the slowest
/// thread, matching how the paper reports Mops/s for T threads.
RunResult RunWorkload(ConcurrentIndex* index,
                      const std::vector<std::vector<Op>>& streams,
                      const RunOptions& options);
RunResult RunWorkload(ConcurrentIndex* index,
                      const std::vector<std::vector<Op>>& streams,
                      size_t scan_length = 100);

/// Convenience: bulk-load `index` with the first `bulk_fraction` of keys
/// (values = ValueFor(key)), generate streams over the rest, run, return.
struct BenchSetup {
  std::vector<Key> loaded;
  std::vector<Key> pool;
};

/// Split sorted dataset keys into bulk-load set (every key whose rank is
/// below bulk_fraction when interleaved) and insert pool. Interleaving (odd /
/// even ranks) keeps both sets distribution-representative, mirroring how
/// learned-index evaluations sample insert keys.
BenchSetup SplitDataset(const std::vector<Key>& keys, double bulk_fraction);

/// Human-readable name of an op type ("read", "insert", ...).
const char* OpTypeName(OpType t);

/// Print RunResult::path_stats as an aligned table to `f` (default stdout).
/// No-op when path_stats is empty.
void PrintPathBreakdown(const RunResult& result, std::FILE* f = nullptr);

}  // namespace alt
