# Empty compiler generated dependencies file for alt_datasets.
# This may be replaced when dependencies are built.
