#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/key_codec.h"
#include "common/path_tag.h"
#include "common/status.h"

namespace alt {

/// \brief Uniform facade over every index in this repository (ALT-index, the
/// four learned-index competitors, ART, B+-tree), used by the benchmark
/// harness, workload runner and integration tests.
///
/// Contract: BulkLoad runs once, single-threaded, before any other call; all
/// other operations are thread-safe and may run concurrently.
class ConcurrentIndex {
 public:
  virtual ~ConcurrentIndex() = default;

  /// Human-readable name used in benchmark table rows (e.g. "ALT-index").
  virtual std::string Name() const = 0;

  /// Build from sorted, duplicate-free data.
  virtual Status BulkLoad(const Key* keys, const Value* values, size_t n) = 0;

  /// \return true and set *out if `key` is present.
  virtual bool Lookup(Key key, Value* out) = 0;

  /// Batched point lookups: found[i] is set for every key, out[i] only when
  /// found[i]. Indexes with a pipelined read path (ALT-index) override this;
  /// the default is the scalar loop, so every index accepts batched reads.
  /// \return the number of keys found.
  virtual size_t LookupBatch(const Key* keys, size_t n, Value* out, bool* found) {
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      found[i] = Lookup(keys[i], &out[i]);
      hits += found[i] ? 1 : 0;
    }
    return hits;
  }

  /// \return false if the key already exists (no change).
  virtual bool Insert(Key key, Value value) = 0;

  /// Overwrite an existing key; \return false if absent.
  virtual bool Update(Key key, Value value) = 0;

  /// \return true if the key was present.
  virtual bool Remove(Key key) = 0;

  // -- Path attribution (observability, DESIGN.md §9.2) ---------------------
  //
  // ServedBy-reporting variants of the four point operations. Indexes with
  // internal path structure (ALT-index: learned slot vs ART-OPT vs fast
  // pointer vs expansion) override these to tag each op with the terminal
  // path that served it; the defaults delegate to the plain operation and
  // report kUnattributed, so baselines need no changes and the runner can
  // call the Served variants unconditionally.

  virtual bool LookupServed(Key key, Value* out, ServedBy* served) {
    SetServed(served, ServedBy::kUnattributed);
    return Lookup(key, out);
  }
  virtual bool InsertServed(Key key, Value value, ServedBy* served) {
    SetServed(served, ServedBy::kUnattributed);
    return Insert(key, value);
  }
  virtual bool UpdateServed(Key key, Value value, ServedBy* served) {
    SetServed(served, ServedBy::kUnattributed);
    return Update(key, value);
  }
  virtual bool RemoveServed(Key key, ServedBy* served) {
    SetServed(served, ServedBy::kUnattributed);
    return Remove(key);
  }

  // -- Structural introspection (observability, DESIGN.md §9.3) -------------

  /// Coarse memory decomposition for figures that break MemoryUsage() down by
  /// component. Indexes that can't decompose report everything under `other`.
  struct MemoryBreakdown {
    size_t model_bytes = 0;      ///< learned models / inner nodes
    size_t delta_bytes = 0;      ///< conflict tree, delta buffers, expansions
    size_t auxiliary_bytes = 0;  ///< fast pointers, directories, headers
    size_t other_bytes = 0;      ///< anything unclassified
    size_t total() const {
      return model_bytes + delta_bytes + auxiliary_bytes + other_bytes;
    }
  };

  /// Default: everything is unclassified, totals still match MemoryUsage().
  virtual MemoryBreakdown CollectMemoryBreakdown() const {
    MemoryBreakdown b;
    b.other_bytes = MemoryUsage();
    return b;
  }

  /// JSON structural report (--dump_structure). Indexes without structural
  /// walkers report only their name and footprint.
  virtual std::string StructureJson() const {
    std::string out = "{\n  \"name\": \"";
    out += JsonEscape(Name());
    out += "\",\n  \"memory\": {\n    \"total_bytes\": ";
    out += std::to_string(MemoryUsage());
    out += "\n  }\n}\n";
    return out;
  }

  /// Up to `count` pairs with key >= start, ascending. \return pairs written.
  virtual size_t Scan(Key start, size_t count,
                      std::vector<std::pair<Key, Value>>* out) = 0;

  /// Approximate heap footprint in bytes (quiescent).
  virtual size_t MemoryUsage() const = 0;

  /// Approximate live key count.
  virtual size_t Size() const = 0;
};

}  // namespace alt
