#include "baselines/art_index.h"

#include "common/epoch.h"

namespace alt {

Status ArtIndex::BulkLoad(const Key* keys, const Value* values, size_t n) {
  EpochGuard g;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && keys[i] <= keys[i - 1]) {
      return Status::InvalidArgument("keys must be sorted and duplicate-free");
    }
    tree_.Insert(keys[i], values[i]);
  }
  return Status::OK();
}

bool ArtIndex::Lookup(Key key, Value* out) {
  EpochGuard g;
  return tree_.Lookup(key, out);
}

bool ArtIndex::Insert(Key key, Value value) {
  EpochGuard g;
  return tree_.Insert(key, value);
}

bool ArtIndex::Update(Key key, Value value) {
  EpochGuard g;
  return tree_.Update(key, value);
}

bool ArtIndex::Remove(Key key) {
  EpochGuard g;
  return tree_.Remove(key);
}

size_t ArtIndex::Scan(Key start, size_t count,
                      std::vector<std::pair<Key, Value>>* out) {
  EpochGuard g;
  return tree_.Scan(start, count, out);
}

}  // namespace alt
