// kv_store: the "memory database system" scenario from the paper's title,
// now as a *network* client-server demo. Where this example used to hammer an
// in-process AltIndex directly, the real serving path lives in src/server/
// (see DESIGN.md §13): an epoll server that coalesces pipelined GETs into
// AMAC LookupBatches. This example boots that server in-process on an
// ephemeral loopback port, then talks to it exclusively through the wire
// protocol (docs/PROTOCOL.md) like any remote client would.
//
//   $ ./build/examples/kv_store [num_clients] [ops_per_client]
//
// For a real two-process setup, run ./build/tools/alt_server and
// ./build/tools/alt_loadgen instead — docs/OPERATIONS.md walks through it.
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "datasets/dataset.h"
#include "server/client.h"
#include "server/server.h"

int main(int argc, char** argv) {
  using namespace alt;
  const int num_clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const uint64_t ops_per_client = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                           : 20000;

  // Seed the store with 200k user records and start serving on loopback.
  const size_t n = 200000;
  std::vector<Key> keys = GenerateKeys(Dataset::kFb, n, 99);
  std::vector<Value> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = ValueFor(keys[i]);

  server::ServerOptions opt;
  opt.port = 0;  // ephemeral
  opt.sharded.num_shards = 2;
  server::KvServer srv(opt);
  if (!srv.Preload(keys.data(), values.data(), n).ok()) return 1;
  if (!srv.Start().ok()) return 1;
  std::printf("kv_store: serving %zu records on 127.0.0.1:%u "
              "(%d workers, batch %zu, %d shards)\n",
              n, srv.port(), opt.num_workers, opt.batch_size,
              opt.sharded.num_shards);

  // Each client pipelines GET windows (which the server coalesces into
  // LookupBatches) and sprinkles in PUT/DEL/SCAN round-trips.
  std::vector<uint64_t> done(static_cast<size_t>(num_clients), 0);
  std::vector<std::thread> clients;
  const uint64_t start_ns = NowNanos();
  for (int t = 0; t < num_clients; ++t) {
    clients.emplace_back([&, t] {
      server::KvClient c;
      if (!c.Connect("127.0.0.1", srv.port(), 2000).ok()) return;
      uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      Key scratch = 0xF000000000000000ull + (static_cast<uint64_t>(t) << 32);
      for (uint64_t i = 0; i < ops_per_client;) {
        // A pipelined window of 8 GETs: one Flush, 8 in-order responses.
        const int window = 8;
        for (int w = 0; w < window; ++w) {
          c.QueueGet(keys[SplitMix64(state) % n]);
        }
        if (!c.Flush().ok()) return;
        for (int w = 0; w < window; ++w) {
          server::Response r;
          if (!c.ReceiveResponse(&r).ok() ||
              r.status != server::RespStatus::kOk) {
            return;
          }
        }
        i += window;
        done[static_cast<size_t>(t)] += window;
        // Occasional writes and a short scan, blocking round-trips.
        if (i % 512 == 0) {
          bool created = false, existed = false;
          std::vector<std::pair<Key, Value>> rows;
          if (!c.Put(scratch, i, &created).ok()) return;
          if (!c.Scan(keys[SplitMix64(state) % n], 10, &rows).ok()) return;
          if (!c.Del(scratch, &existed).ok()) return;
          ++scratch;
          done[static_cast<size_t>(t)] += 3;
          i += 3;
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  const double secs = static_cast<double>(NowNanos() - start_ns) * 1e-9;

  uint64_t total = 0;
  for (uint64_t d : done) total += d;
  const server::ServerStats stats = srv.CollectStats();
  std::printf("kv_store: %llu ops in %.2fs (%.2f Mops/s) over the wire\n",
              static_cast<unsigned long long>(total), secs,
              static_cast<double>(total) / secs / 1e6);
  std::printf("kv_store: server coalesced %llu GETs into %llu LookupBatch "
              "flushes (mean occupancy %.2f)\n",
              static_cast<unsigned long long>(stats.batch_keys),
              static_cast<unsigned long long>(stats.batch_flushes),
              stats.mean_batch_occupancy());
  srv.Stop();
  return total > 0 ? 0 : 1;
}
