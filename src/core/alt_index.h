#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "art/art_tree.h"
#include "common/key_codec.h"
#include "common/path_tag.h"
#include "common/status.h"
#include "core/alt_options.h"
#include "core/fast_pointer_buffer.h"
#include "core/gpl_model.h"
#include "core/model_directory.h"

namespace alt {

/// \brief ALT-index: the paper's hybrid learned index (learned GPL layer over
/// an optimized ART), with fast pointer buffer and dynamic retraining.
///
/// ## Architecture (paper §III)
///  - *Learned index layer*: a flattened array of GPL models (Alg. 1
///    segmentation) behind one binary-searchable upper model. Every resident
///    key sits at exactly its predicted slot — no secondary search ever runs
///    in this layer.
///  - *ART-OPT layer*: keys whose predicted slot was already taken (bulk-load
///    conflicts and runtime insertion conflicts) live in an ART; the fast
///    pointer buffer jumps secondary searches into the deepest covering
///    subtree.
///  - *Dynamic retraining* (§III-F): a crowded model expands into a temporal
///    buffer with twice the slots; migration is amortized over subsequent
///    inserts and finished with a sweep plus an ART write-back pass.
///
/// ## Concurrency (paper §III-E)
/// Per-slot optimistic versions in the learned layer, spin locks per fast
/// pointer entry, optimistic lock coupling in ART, epoch-based reclamation for
/// replaced models/nodes. All public operations are thread-safe; Lookup /
/// Insert / Update / Remove are linearizable per key. Scans are per-slot
/// atomic snapshots (keys may be concurrently inserted/removed mid-scan).
///
/// Thread-safety exception: BulkLoad must complete before concurrent use, and
/// CollectStats / MemoryUsage expect a quiescent index.
class AltIndex {
 public:
  explicit AltIndex(AltOptions options = AltOptions{});
  ~AltIndex();

  AltIndex(const AltIndex&) = delete;
  AltIndex& operator=(const AltIndex&) = delete;

  /// Build the index from sorted, duplicate-free data. Must be called exactly
  /// once, before any concurrent operation. O(n).
  Status BulkLoad(const Key* keys, const Value* values, size_t n);
  Status BulkLoad(const std::vector<std::pair<Key, Value>>& sorted_pairs);

  /// \return true and set *out if present.
  bool Lookup(Key key, Value* out) const;

  /// Lookup with per-path attribution: *served reports the terminal path that
  /// answered (learned slot, fast-pointer ART hit by depth, root fallback,
  /// negative; see common/path_tag.h). Same result contract as Lookup.
  bool Lookup(Key key, Value* out, ServedBy* served) const;

  /// \brief Batched point lookups: resolve `n` independent keys with their
  /// cache misses overlapped (AMAC-style group prefetching; see
  /// src/core/lookup_batch.cc and DESIGN.md "Batched read path").
  ///
  /// Semantically equivalent to calling Lookup(keys[i], &out[i]) for each i:
  /// found[i] is set, and out[i] is written only when found[i] is true. Each
  /// key's result is one a standalone Lookup could have returned at some point
  /// during the call (per-key linearizability; no cross-key snapshot).
  /// `keys` may contain duplicates and need not be sorted.
  /// \return the number of keys found.
  size_t LookupBatch(const Key* keys, size_t n, Value* out, bool* found) const;

  /// Insert a new key. \return false (no change) if the key already exists.
  bool Insert(Key key, Value value);
  bool Insert(Key key, Value value, ServedBy* served);

  /// Overwrite an existing key's value. \return false if absent.
  bool Update(Key key, Value value);
  bool Update(Key key, Value value, ServedBy* served);

  /// Insert or overwrite. \return true if the key was newly inserted.
  bool Upsert(Key key, Value value);

  /// Delete a key. \return true if it was present.
  bool Remove(Key key);
  bool Remove(Key key, ServedBy* served);

  /// Collect up to `count` pairs with key >= start, ascending (merged across
  /// the learned layer and ART-OPT, paper §III-G "Range Query").
  size_t Scan(Key start, size_t count, std::vector<std::pair<Key, Value>>* out) const;

  /// All pairs with lo <= key <= hi, ascending.
  size_t RangeQuery(Key lo, Key hi, std::vector<std::pair<Key, Value>>* out) const;

  /// Approximate live key count (maintained with relaxed counters).
  size_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// \brief Forward cursor over the merged key space (batched on top of
  /// Scan). Not a stable snapshot: concurrent inserts/removes may or may not
  /// appear, but keys arrive in strictly ascending order and each observed
  /// (key, value) pair was live at some point during the iteration.
  ///
  ///   AltIndex::Iterator it(index);
  ///   for (it.Seek(lo); it.Valid() && it.key() <= hi; it.Next()) { ... }
  class Iterator {
   public:
    explicit Iterator(const AltIndex& index) : index_(&index) {}

    /// Position at the first key >= `key`.
    void Seek(Key key) {
      exhausted_ = false;
      Refill(key);
    }

    bool Valid() const { return pos_ < batch_.size(); }
    Key key() const { return batch_[pos_].first; }
    Value value() const { return batch_[pos_].second; }

    void Next() {
      if (++pos_ >= batch_.size() && !exhausted_) {
        const Key last = batch_.empty() ? 0 : batch_.back().first;
        if (last == ~Key{0}) {
          exhausted_ = true;
          batch_.clear();
          pos_ = 0;
          return;
        }
        Refill(last + 1);
      }
    }

   private:
    static constexpr size_t kBatch = 128;

    void Refill(Key from) {
      index_->Scan(from, kBatch, &batch_);
      pos_ = 0;
      if (batch_.size() < kBatch) exhausted_ = true;
    }

    const AltIndex* index_;
    std::vector<std::pair<Key, Value>> batch_;
    size_t pos_ = 0;
    bool exhausted_ = true;
  };

  /// Structural / behavioural statistics. Quiescent-only.
  struct Stats {
    size_t num_models = 0;          ///< GPL models in the directory
    size_t learned_layer_keys = 0;  ///< keys resident at predicted slots
    size_t art_keys = 0;            ///< conflict keys in ART-OPT
    size_t fast_pointers = 0;       ///< merged fast pointer entries
    size_t fast_pointer_adds = 0;   ///< entries without the merge scheme
    size_t retrain_started = 0;     ///< expansions triggered (§III-F)
    size_t retrain_finished = 0;    ///< expansions completed & published
    size_t memory_bytes = 0;        ///< models + directory + buffer + ART
    double error_bound = 0;         ///< effective epsilon
  };
  // Traffic counters (ART lookups, fast-pointer hits, conflict inserts, ...)
  // live in the always-on metrics registry; see common/metrics.h.
  Stats CollectStats() const;

  /// \brief Deep structural introspection (quiescent-only; defined in
  /// structural_stats.cc, DESIGN.md §9.3). The component byte fields are
  /// computed from the same accessors as MemoryUsage(), so
  /// `header_bytes + directory_bytes + model_bytes + expansion_bytes +
  /// fast_pointer_bytes + art_bytes == MemoryUsage()` at a quiescent point.
  struct StructuralStats {
    // --- memory decomposition (bytes) -------------------------------------
    size_t header_bytes = 0;        ///< sizeof(AltIndex)
    size_t directory_bytes = 0;     ///< snapshot arrays + radix (no models)
    size_t model_bytes = 0;         ///< published GPL models (headers + slots)
    size_t expansion_bytes = 0;     ///< in-flight §III-F temporal buffers
    size_t fast_pointer_bytes = 0;  ///< fast pointer buffer
    size_t art_bytes = 0;           ///< ART-OPT nodes + leaves
    size_t total_bytes = 0;         ///< sum of the above (== MemoryUsage())

    // --- learned layer ----------------------------------------------------
    size_t num_models = 0;
    size_t expanding_models = 0;  ///< models with an expansion installed
    size_t tail_models = 0;       ///< models with the zero-error invariant suspended
    size_t huge_backed_models = 0;  ///< slot arrays on 2MB pages (DESIGN.md §10)
    size_t total_slots = 0;
    size_t slot_states[4] = {};  ///< by SlotState: empty/occupied/tombstone/migrated
    uint32_t min_segment = 0;    ///< smallest model build_size
    uint32_t max_segment = 0;    ///< largest model build_size
    /// Models bucketed by log2(build_size): segment_len_hist[b] counts models
    /// with build_size in [2^b, 2^(b+1)). 17 buckets, last one open-ended.
    size_t segment_len_hist[17] = {};
    /// Models bucketed by occupancy decile (occupied / num_slots).
    size_t occupancy_hist[10] = {};

    // --- conflict population ----------------------------------------------
    size_t art_keys = 0;
    /// art_keys / (art_keys + occupied slots): fraction of resident keys that
    /// lost their predicted slot (paper §III-A conflict ratio).
    double conflict_ratio = 0;

    art::ArtTree::Census art;
  };
  StructuralStats CollectStructuralStats() const;

  /// CollectStructuralStats serialized as a single JSON object (pretty, 2-space
  /// indent) — the payload behind the `--dump_structure` bench flag.
  std::string StructureJson() const;

  size_t MemoryUsage() const;

  const AltOptions& options() const { return options_; }
  double effective_error_bound() const { return epsilon_; }

  /// The epoch manager this index retires through: the instance from
  /// AltOptions::epoch_manager, or the process-wide global. Readers outside
  /// the index (tests, cross-shard merge cursors) pin it before touching
  /// retire-capable internals.
  EpochManager& epoch() const { return *epoch_; }

  /// Internal structures, exposed read-only for tests and benches.
  const art::ArtTree& art() const { return art_; }
  const FastPointerBuffer& fast_pointer_buffer() const { return fp_buffer_; }
  const ModelDirectory& directory() const { return directory_; }

 private:
  enum class Probe { kHit, kExistsSameKey, kEmpty, kGoArt, kGoArtTombstone, kMigrated };

  /// Read `model`'s predicted slot for `key`. On kHit, *out is set. Returns
  /// the observed slot + word so callers can re-validate after an ART miss.
  Probe ProbeSlot(const GplModel* model, Key key, Value* out, const GplSlot** slot_out,
                  uint32_t* word_out) const ALT_REQUIRES_EPOCH;

  /// Secondary search in ART-OPT via the model's fast pointer (root fallback).
  /// `served` (optional) receives the attribution of the terminal descent.
  bool ArtLookup(const GplModel* model, Key key, Value* out,
                 ServedBy* served = nullptr) const ALT_REQUIRES_EPOCH;

  /// Insert into ART-OPT via the model's fast pointer; updates conflict stats.
  /// \return true if inserted, false if the key already existed.
  bool ArtInsert(GplModel* model, Key key, Value value) ALT_REQUIRES_EPOCH;

  bool LookupInternal(Key key, Value* out,
                      ServedBy* served = nullptr) const ALT_REQUIRES_EPOCH;

  /// Batched read path internals (defined in lookup_batch.cc).
  struct BatchCursor;
  struct BatchStatsDelta;
  /// Advance one in-flight lookup by one pipeline stage. \return true when
  /// the cursor reached a terminal state (result written).
  bool BatchStep(BatchCursor& c, Value* out, bool* found,
                 BatchStatsDelta* st) const ALT_REQUIRES_EPOCH;
  bool InsertInternal(Key key, Value value,
                      ServedBy* served = nullptr) ALT_REQUIRES_EPOCH;
  bool RemoveInternal(Key key, ServedBy* served = nullptr) ALT_REQUIRES_EPOCH;
  bool UpdateInternal(Key key, Value value,
                      ServedBy* served = nullptr) ALT_REQUIRES_EPOCH;

  /// Slow path: model under §III-F expansion. \return true if inserted,
  /// false if the key exists; sets *retry when the caller must re-run.
  bool InsertExpanding(GplModel* model, Expansion* exp, Key key, Value value,
                       bool* retry) ALT_REQUIRES_EPOCH;

  /// Place (key, value) into the temporal buffer; conflicts go to ART.
  /// Used for victim migration (never fails; victims are unique).
  void MigrateInto(GplModel* new_model, Key key, Value value) ALT_REQUIRES_EPOCH;

  /// Insert a *new* key into the temporal buffer (dup checks against ART).
  /// \return true if inserted, false if the key already exists; sets *retry
  /// when the buffer was published and is itself migrating (stale caller).
  bool InsertIntoNewModel(GplModel* old_model, Expansion* exp, Key key, Value value,
                          bool* retry) ALT_REQUIRES_EPOCH;

  /// Post-ART-insert repair for routing races: if a concurrently appended
  /// tail model now owns `key`'s range and would answer "absent" from an
  /// EMPTY slot, write the key back from ART into that slot before the
  /// insert returns.
  void EnsureArtKeyVisible(Key key);

  void MaybeTriggerExpansion(GplModel* model);
  void MaybeFinishExpansion(GplModel* model, Expansion* exp) ALT_REQUIRES_EPOCH;
  void FinishExpansion(GplModel* model, Expansion* exp) ALT_REQUIRES_EPOCH;
  void AppendTailModelIfLast(const GplModel* published);

  /// RAII bracket around an ART→slot write-back (finish sweep, tail-append
  /// sweep, EnsureArtKeyVisible). A write-back removes the key from ART after
  /// locking its slot, so a scan that read the slot as EMPTY before the lock
  /// and queries ART after the removal sees the key in *neither* layer. Point
  /// lookups survive this by re-validating the routed slot word after an ART
  /// miss; scans validate coarsely instead, against this generation seqlock
  /// (see Scan).
  class WriteBackSection {
   public:
    explicit WriteBackSection(const AltIndex* index) : index_(index) {
      index_->write_backs_active_.fetch_add(1, std::memory_order_acq_rel);
      index_->write_back_gen_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~WriteBackSection() {
      index_->write_backs_active_.fetch_sub(1, std::memory_order_acq_rel);
      index_->write_back_gen_.fetch_add(1, std::memory_order_acq_rel);
    }
    WriteBackSection(const WriteBackSection&) = delete;
    WriteBackSection& operator=(const WriteBackSection&) = delete;

   private:
    const AltIndex* index_;
  };

  AltOptions options_;
  double epsilon_ = 0;
  // Resolved before directory_/art_ (declaration order): both retire through
  // this manager.
  EpochManager* epoch_ = nullptr;
  ModelDirectory directory_;
  art::ArtTree art_;
  FastPointerBuffer fp_buffer_;

  std::atomic<size_t> size_{0};
  std::atomic<size_t> retrain_started_{0};
  std::atomic<size_t> retrain_finished_{0};

  // Write-back seqlock (see WriteBackSection). `mutable`: bumped from
  // EnsureArtKeyVisible and the expansion sweeps, read by const scans.
  mutable std::atomic<uint64_t> write_back_gen_{0};
  mutable std::atomic<uint32_t> write_backs_active_{0};
};

}  // namespace alt
