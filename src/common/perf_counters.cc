#include "common/perf_counters.h"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace alt {
namespace perf {

namespace {

inline uint64_t ReadTsc() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_ia32_rdtsc();
#else
  return 0;
#endif
}

}  // namespace

void Reading::Accumulate(const Reading& other) {
  cycles += other.cycles;
  instructions += other.instructions;
  llc_misses += other.llc_misses;
  branch_misses += other.branch_misses;
  task_clock_ns += other.task_clock_ns;
  page_faults += other.page_faults;
  tsc_cycles += other.tsc_cycles;
  // Worst (largest) multiplexing correction across the merged threads; the
  // per-value scaling itself already happened in Stop().
  if (other.scale > scale) scale = other.scale;
}

#if defined(__linux__)

namespace {

int OpenEvent(uint32_t type, uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  // Group members inherit the leader's enable state; only the leader starts
  // disabled. exclude_kernel/hv keeps the counters openable at
  // perf_event_paranoid <= 2 (the unprivileged default).
  attr.disabled = group_fd < 0 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(__NR_perf_event_open, &attr, 0, -1,
                                  group_fd, 0));
}

}  // namespace

ThreadCounters::ThreadCounters() {
  // Tier 1: the four hardware counters of the micro-architectural analysis
  // playbook. PERF_COUNT_HW_CACHE_MISSES is the "LLC misses" alias perf stat
  // itself uses.
  static constexpr struct {
    uint32_t type;
    uint64_t config;
  } kHardwareEvents[kMaxEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
  };
  bool ok = true;
  for (int i = 0; i < kMaxEvents; ++i) {
    const int fd = OpenEvent(kHardwareEvents[i].type, kHardwareEvents[i].config,
                             i == 0 ? -1 : fds_[0]);
    if (fd < 0) {
      if (error_.empty()) error_ = std::strerror(errno);
      ok = false;
      break;
    }
    fds_[i] = fd;
    ++num_events_;
  }
  if (ok) {
    tier_ = Tier::kHardware;
    group_fd_ = fds_[0];
    return;
  }
  for (int i = 0; i < num_events_; ++i) close(fds_[i]);
  num_events_ = 0;

  // Tier 2: software events exist even without a PMU (VMs, most containers).
  const int sw_leader = OpenEvent(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, -1);
  if (sw_leader >= 0) {
    fds_[0] = sw_leader;
    num_events_ = 1;
    const int faults =
        OpenEvent(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS, sw_leader);
    if (faults >= 0) {
      fds_[1] = faults;
      num_events_ = 2;
    }
    tier_ = Tier::kSoftware;
    group_fd_ = sw_leader;
    return;
  }
  // Tier 3: perf_event_open rejected outright (seccomp); TSC only.
}

ThreadCounters::~ThreadCounters() {
  for (int i = 0; i < num_events_; ++i) close(fds_[i]);
}

void ThreadCounters::Start() {
  if (group_fd_ >= 0) {
    ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
  tsc_start_ = ReadTsc();
}

Reading ThreadCounters::Stop() {
  const uint64_t tsc_end = ReadTsc();
  Reading r;
  r.tier = tier_;
  r.tsc_cycles = tsc_end - tsc_start_;
  if (group_fd_ < 0) return r;
  ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);

  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, values[nr].
  uint64_t buf[3 + kMaxEvents] = {};
  const ssize_t want = static_cast<ssize_t>((3 + num_events_) * sizeof(uint64_t));
  if (read(group_fd_, buf, static_cast<size_t>(want)) != want) return r;
  const uint64_t enabled = buf[1];
  const uint64_t running = buf[2];
  // Multiplexing correction, exactly as perf stat scales: the group may have
  // been scheduled for only part of the window when counters are contended.
  const double scale =
      running > 0 ? static_cast<double>(enabled) / static_cast<double>(running)
                  : 0.0;
  r.scale = scale > 1.0 ? scale : 1.0;
  const auto scaled = [&](uint64_t v) {
    return running > 0 ? static_cast<uint64_t>(static_cast<double>(v) * r.scale)
                       : uint64_t{0};
  };
  if (tier_ == Tier::kHardware) {
    r.cycles = scaled(buf[3]);
    r.instructions = scaled(buf[4]);
    r.llc_misses = scaled(buf[5]);
    r.branch_misses = scaled(buf[6]);
  } else {
    r.task_clock_ns = scaled(buf[3]);
    if (num_events_ > 1) r.page_faults = scaled(buf[4]);
  }
  return r;
}

#else  // !__linux__

ThreadCounters::ThreadCounters() { error_ = "perf_event_open requires Linux"; }
ThreadCounters::~ThreadCounters() = default;

void ThreadCounters::Start() { tsc_start_ = ReadTsc(); }

Reading ThreadCounters::Stop() {
  Reading r;
  r.tsc_cycles = ReadTsc() - tsc_start_;
  return r;
}

#endif  // __linux__

std::string TierName(Tier tier, const std::string& error) {
  switch (tier) {
    case Tier::kHardware:
      return "hardware";
    case Tier::kSoftware:
      return "software (hardware counters: " + error + ")";
    case Tier::kUnavailable:
      return "unavailable (" + error + ")";
  }
  return "unknown";
}

}  // namespace perf
}  // namespace alt
