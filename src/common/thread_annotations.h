#pragma once

/// \file
/// Clang thread-safety (capability) analysis macros, no-ops off-clang.
///
/// These wrap the attributes documented at
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so lock discipline is
/// machine-checked: locks are declared as *capabilities*, the state a lock
/// protects is declared GUARDED_BY it, and acquiring/releasing functions are
/// annotated so `clang -Wthread-safety` proves every guarded access happens
/// with the right capability held. GCC and MSVC see empty macros, so the
/// annotated code builds everywhere; the analysis runs in the dedicated clang
/// CI job with `-Werror=thread-safety`.
///
/// Conventions for this codebase (see DESIGN.md "Locking protocol"):
///  - every lock class is a CAPABILITY; every RAII guard is a
///    SCOPED_CAPABILITY;
///  - state written only under a lock is GUARDED_BY that lock, even when the
///    field is an atomic that lock-free readers may also load;
///  - lock-free readers of such state go through a tiny accessor (or a leaf
///    function) marked ALT_OPTIMISTIC_PATH — the single sanctioned escape,
///    reserved for seqlock-validated / optimistic-lock-coupling reads and for
///    OLC's conditional lock upgrades, neither of which fits clang's static
///    lockset model. Every ALT_OPTIMISTIC_PATH use must carry a comment naming
///    the validation that makes it safe.

#include "common/lint_annotations.h"

#if defined(__clang__) && !defined(SWIG)
#define ALT_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define ALT_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a lock-like capability (e.g. SpinLock, SlotWord).
#define CAPABILITY(x) ALT_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY ALT_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define GUARDED_BY(x) ALT_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Declares that the data pointed to by a pointer member is protected.
#define PT_GUARDED_BY(x) ALT_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declares lock acquisition ordering (deadlock prevention).
#define ACQUIRED_BEFORE(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The function must be called with the capability held (and keeps it held).
#define REQUIRES(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (exclusively / shared).
#define ACQUIRE(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability.
#define RELEASE(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the capability held.
#define EXCLUDES(...) ALT_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// The function checks at runtime that the capability is held.
#define ASSERT_CAPABILITY(x) ALT_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) ALT_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Turns off the analysis for one function. Do NOT use directly — use
/// ALT_OPTIMISTIC_PATH so every escape is greppable and carries the documented
/// justification category.
#define NO_THREAD_SAFETY_ANALYSIS \
  ALT_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

/// \brief The single sanctioned analysis escape (see DESIGN.md "Locking
/// protocol" for the exhaustive list of uses).
///
/// Applied to functions implementing optimistic protocols that clang's static
/// lockset model cannot express:
///  1. seqlock-style optimistic readers: load guarded state without the lock,
///     then re-validate the version word and discard the read on mismatch;
///  2. optimistic-lock-coupling writers: conditionally upgrade an optimistic
///     read to a write lock via an out-parameter restart flag, with lock
///     identities flowing through reassigned node pointers.
/// Correctness of these paths is enforced dynamically instead: by version
/// re-validation, by the ALT_DEBUG_CHECKS protocol checkers, and by the
/// TSan/ASan/UBSan CI jobs.
#define ALT_OPTIMISTIC_PATH NO_THREAD_SAFETY_ANALYSIS
