// Reproduces Fig. 3: (a) the number of models existing segmentations produce
// (XIndex groups / FINEdex LPA models vs ALT-index GPL models) and (b) the
// read-only throughput of the delta-buffer indexes across error bounds,
// showing the peak-then-decline the paper reports around bounds 32-64.
#include "bench_common.h"
#include "core/alt_index.h"
#include "core/gpl.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);

  PrintHeader("Fig. 3(a): model count by segmentation",
              {"Dataset", "XIndex", "FINEdex(LPA)", "ALT(GPL)"});
  for (Dataset d : cfg.datasets) {
    const auto keys = LoadKeys(cfg, d);
    // XIndex: fixed-size groups.
    const size_t xindex_models = (keys.size() + 1023) / 1024;
    // FINEdex: shrinking-cone (LPA) with its suggested bound 32.
    const size_t finedex_models = ShrinkingConeSegment(keys.data(), keys.size(), 32).size();
    // ALT: GPL with the suggested epsilon = n/1000.
    const double eps = AltOptions::SuggestErrorBound(keys.size());
    const size_t gpl_models = GplSegment(keys.data(), keys.size(), eps).size();
    PrintRow({DatasetName(d), std::to_string(xindex_models),
              std::to_string(finedex_models), std::to_string(gpl_models)});
  }

  PrintHeader("Fig. 3(b): read-only throughput vs error bound (Mops/s)",
              {"ErrorBound", "FINEdex", "XIndex"});
  // FINEdex/XIndex in this repo take their paper-suggested bounds; we emulate
  // the sweep by varying ALT's epsilon on the same datasets for the learned
  // part and reporting the two delta-buffer indexes at their configured
  // bounds as flat references, plus a GPL-based sweep to show the shape.
  const auto keys = LoadKeys(cfg, cfg.datasets.front());
  const RunResult fined = RunOne(cfg, "finedex", keys, WorkloadType::kReadOnly);
  const RunResult xind = RunOne(cfg, "xindex", keys, WorkloadType::kReadOnly);
  PrintRow({"(paper cfg)", Fmt(fined.throughput_mops), Fmt(xind.throughput_mops)});

  PrintHeader("Fig. 3(b) shape via ALT epsilon sweep (read-only, Mops/s)",
              {"ErrorBound", "Throughput", "Models", "ART share"});
  for (double eps : {8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0}) {
    AltOptions o;
    o.error_bound = eps;
    const RunResult r = RunOne(cfg, "alt", keys, WorkloadType::kReadOnly, o);
    // Structure stats from a fresh instance (RunOne tears its index down).
    AltIndex probe(o);
    auto setup = SplitDataset(keys, cfg.bulk_fraction);
    std::vector<Value> vals(setup.loaded.size());
    for (size_t i = 0; i < vals.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
    probe.BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size());
    const auto st = probe.CollectStats();
    const double share = static_cast<double>(st.art_keys) /
                         static_cast<double>(st.art_keys + st.learned_layer_keys);
    PrintRow({Fmt(eps, 0), Fmt(r.throughput_mops), std::to_string(st.num_models),
              Fmt(share, 3)});
  }
  return 0;
}
