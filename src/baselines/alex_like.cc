#include "baselines/alex_like.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "common/epoch.h"

namespace alt {

AlexLike::DataNode* AlexLike::BuildNode(const Key* keys, const Value* values,
                                        size_t n) {
  auto* node = new DataNode();
  node->first_key = keys[0];
  uint32_t cap = static_cast<uint32_t>(static_cast<double>(n) / kInitDensity) + 2;
  if (cap < kMinCapacity) cap = kMinCapacity;
  node->capacity = cap;
  node->num_keys = static_cast<uint32_t>(n);
  node->keys = std::make_unique<std::atomic<Key>[]>(cap);
  node->values = std::make_unique<std::atomic<Value>[]>(cap);
  node->occupied = std::make_unique<std::atomic<uint64_t>[]>((cap + 63) / 64);
  for (uint32_t w = 0; w < (cap + 63) / 64; ++w) {
    node->occupied[w].store(0, std::memory_order_relaxed);
  }
  // Least-squares key->slot model (as in ALEX); exponential search absorbs
  // the residual error. Keys are centered on the first key for precision.
  node->slope = 0.0;
  if (n >= 2 && keys[n - 1] > keys[0]) {
    double sx = 0, sxx = 0, sxy = 0, sy = 0;
    for (size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(keys[i] - keys[0]);
      const double y = (static_cast<double>(i) + 0.5) / static_cast<double>(n) *
                       static_cast<double>(cap);
      sx += x;
      sxx += x * x;
      sxy += x * y;
      sy += y;
    }
    const double nn = static_cast<double>(n);
    const double denom = nn * sxx - sx * sx;
    if (denom > 0) {
      node->slope = (nn * sxy - sx * sy) / denom;
      node->intercept = (sy - node->slope * sx) / nn;
    } else {
      node->slope = static_cast<double>(cap - 1) /
                    static_cast<double>(keys[n - 1] - keys[0]);
    }
    if (node->slope < 0) {
      node->slope = static_cast<double>(cap - 1) /
                    static_cast<double>(keys[n - 1] - keys[0]);
      node->intercept = 0;
    }
  }
  // Place keys by position rank (gaps spread evenly), preserving order.
  for (size_t i = 0; i < n; ++i) {
    uint32_t pos = static_cast<uint32_t>(
        (static_cast<double>(i) + 0.5) / static_cast<double>(n) *
        static_cast<double>(cap));
    if (pos >= cap) pos = cap - 1;
    // Keep strictly increasing positions.
    while (node->Occupied(pos)) ++pos;  // cap sized so this cannot run off
    node->keys[pos].store(keys[i], std::memory_order_relaxed);
    node->values[pos].store(values[i], std::memory_order_relaxed);
    node->SetOccupied(pos);
  }
  // Fill gaps with their nearest occupied left neighbor (leading gaps take
  // the first key) so the array is binary-searchable.
  Key fill = keys[0];
  for (uint32_t i = 0; i < cap; ++i) {
    if (node->Occupied(i)) {
      fill = node->keys[i].load(std::memory_order_relaxed);
    } else {
      node->keys[i].store(fill, std::memory_order_relaxed);
    }
  }
  return node;
}

uint32_t AlexLike::LowerBound(const DataNode* node, Key key) {
  const uint32_t cap = node->capacity;
  int64_t pred = 0;
  if (key > node->first_key) {
    pred = static_cast<int64_t>(node->slope *
                                    static_cast<double>(key - node->first_key) +
                                node->intercept);
    if (pred >= cap) pred = cap - 1;
    if (pred < 0) pred = 0;
  }
  // Exponential search to bracket the lower bound, then binary search.
  int64_t lo, hi;
  if (node->keys[static_cast<uint32_t>(pred)].load(std::memory_order_relaxed) < key) {
    int64_t bound = 1;
    while (pred + bound < cap &&
           node->keys[static_cast<uint32_t>(pred + bound)].load(
               std::memory_order_relaxed) < key) {
      bound <<= 1;
    }
    lo = pred + bound / 2;
    hi = std::min<int64_t>(pred + bound, cap);
  } else {
    int64_t bound = 1;
    while (pred - bound >= 0 &&
           node->keys[static_cast<uint32_t>(pred - bound)].load(
               std::memory_order_relaxed) >= key) {
      bound <<= 1;
    }
    lo = std::max<int64_t>(pred - bound, 0);
    hi = pred - bound / 2 + 1;
  }
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (node->keys[static_cast<uint32_t>(mid)].load(std::memory_order_relaxed) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<uint32_t>(lo);
}

uint32_t AlexLike::FindSlot(const DataNode* node, Key key) {
  uint32_t pos = LowerBound(node, key);
  // Gap slots duplicate keys; scan the equal run for the occupied original.
  while (pos < node->capacity &&
         node->keys[pos].load(std::memory_order_relaxed) == key) {
    if (node->Occupied(pos)) return pos;
    ++pos;
  }
  return node->capacity;
}

Status AlexLike::BulkLoad(const Key* keys, const Value* values, size_t n) {
  if (n == 0) return Status::InvalidArgument("empty bulk load");
  for (size_t i = 1; i < n; ++i) {
    if (keys[i] <= keys[i - 1]) {
      return Status::InvalidArgument("keys must be sorted and duplicate-free");
    }
  }
  std::vector<std::pair<Key, DataNode*>> leaves;
  for (size_t start = 0; start < n; start += kBulkNodeKeys) {
    const size_t len = std::min<size_t>(kBulkNodeKeys, n - start);
    leaves.emplace_back(keys[start], BuildNode(keys + start, values + start, len));
  }
  dir_.Build(leaves);
  size_.store(n, std::memory_order_relaxed);
  return Status::OK();
}

bool AlexLike::Lookup(Key key, Value* out) {
  EpochGuard g;
  for (;;) {
    const auto* snap = dir_.snapshot();
    DataNode* node =
        snap->leaves[LeafDirectory<DataNode>::Locate(*snap, key)].load(
            std::memory_order_acquire);
    bool restart = false;
    const uint64_t v = node->lock.ReadLockOrRestart(&restart);
    if (restart) continue;
    const uint32_t pos = FindSlot(node, key);
    bool found = false;
    Value val = 0;
    if (pos < node->capacity) {
      val = node->values[pos].load(std::memory_order_relaxed);
      found = true;
    }
    node->lock.CheckOrRestart(v, &restart);
    if (restart) continue;
    if (found) *out = val;
    return found;
  }
}

// Optimistic escape: per-node version locks are re-validated before any
// observed state is trusted; a mismatch restarts the whole operation.
bool AlexLike::Insert(Key key, Value value) ALT_OPTIMISTIC_PATH {
  EpochGuard g;
  for (;;) {
    const auto* snap = dir_.snapshot();
    DataNode* node =
        snap->leaves[LeafDirectory<DataNode>::Locate(*snap, key)].load(
            std::memory_order_acquire);
    if (!node->lock.WriteLockOrFail()) continue;
    // Node may have been split/retired while we waited.
    {
      const auto* snap2 = dir_.snapshot();
      DataNode* cur =
          snap2->leaves[LeafDirectory<DataNode>::Locate(*snap2, key)].load(
              std::memory_order_acquire);
      if (cur != node) {
        node->lock.WriteUnlock();
        continue;
      }
    }
    const uint32_t cap = node->capacity;
    uint32_t pos = LowerBound(node, key);
    // Duplicate check within the equal run.
    uint32_t scan = pos;
    bool exists = false;
    while (scan < cap && node->keys[scan].load(std::memory_order_relaxed) == key) {
      if (node->Occupied(scan)) {
        exists = true;
        break;
      }
      ++scan;
    }
    if (exists) {
      node->lock.WriteUnlock();
      return false;
    }
    // Find the nearest gap on each side of the insertion position.
    int64_t right_gap = -1;
    for (int64_t i = pos; i < cap; ++i) {
      if (!node->Occupied(static_cast<uint32_t>(i))) {
        right_gap = i;
        break;
      }
    }
    int64_t left_gap = -1;
    for (int64_t i = static_cast<int64_t>(pos) - 1; i >= 0; --i) {
      if (!node->Occupied(static_cast<uint32_t>(i))) {
        left_gap = i;
        break;
      }
    }
    uint64_t shifted = 0;
    if (right_gap >= 0 &&
        (left_gap < 0 || right_gap - pos <= static_cast<int64_t>(pos) - left_gap)) {
      // Shift [pos, right_gap) one to the right; insert at pos.
      for (int64_t i = right_gap; i > pos; --i) {
        node->keys[i].store(node->keys[i - 1].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        node->values[i].store(node->values[i - 1].load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
        ++shifted;
      }
      node->SetOccupied(static_cast<uint32_t>(right_gap));
      node->keys[pos].store(key, std::memory_order_relaxed);
      node->values[pos].store(value, std::memory_order_relaxed);
      // pos was occupied (or gap about to be covered): mark it.
      node->SetOccupied(pos);
    } else if (left_gap >= 0) {
      // Shift (left_gap, pos) one to the left; insert at pos - 1.
      for (int64_t i = left_gap; i < static_cast<int64_t>(pos) - 1; ++i) {
        node->keys[i].store(node->keys[i + 1].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        node->values[i].store(node->values[i + 1].load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
        ++shifted;
      }
      node->SetOccupied(static_cast<uint32_t>(left_gap));
      node->keys[pos - 1].store(key, std::memory_order_relaxed);
      node->values[pos - 1].store(value, std::memory_order_relaxed);
      node->SetOccupied(pos - 1);
    } else {
      // Completely full (cannot happen below kMaxDensity, but guard): split
      // and retry.
      node->lock.WriteUnlock();
      SplitNode(node);
      continue;
    }
    node->num_keys++;
    shift_total_.fetch_add(shifted, std::memory_order_relaxed);
    size_.fetch_add(1, std::memory_order_relaxed);
    const bool needs_split =
        static_cast<double>(node->num_keys) >= kMaxDensity * static_cast<double>(cap);
    node->lock.WriteUnlock();
    if (needs_split) SplitNode(node);
    return true;
  }
}

// Conditional acquire (WriteLockOrFail) + directory snapshot re-validation;
// gives up if the node went stale, so losers never mutate a retired node.
void AlexLike::SplitNode(DataNode* node) ALT_OPTIMISTIC_PATH {
  if (!node->lock.WriteLockOrFail()) return;  // already split by someone else
  // Verify the node is still current (another thread may have split it).
  const auto* snap = dir_.snapshot();
  DataNode* cur = snap->leaves[LeafDirectory<DataNode>::Locate(*snap, node->first_key)]
                      .load(std::memory_order_acquire);
  if (cur != node) {
    node->lock.WriteUnlock();
    return;
  }
  std::vector<Key> keys;
  std::vector<Value> values;
  keys.reserve(node->num_keys);
  values.reserve(node->num_keys);
  for (uint32_t i = 0; i < node->capacity; ++i) {
    if (!node->Occupied(i)) continue;
    keys.push_back(node->keys[i].load(std::memory_order_relaxed));
    values.push_back(node->values[i].load(std::memory_order_relaxed));
  }
  if (keys.size() < 2) {
    node->lock.WriteUnlock();
    return;
  }
  const size_t half = keys.size() / 2;
  DataNode* left = BuildNode(keys.data(), values.data(), half);
  DataNode* right =
      BuildNode(keys.data() + half, values.data() + half, keys.size() - half);
  // The left node must answer for the whole old range's lower end.
  left->first_key = node->first_key;
  const bool ok = dir_.ReplaceWithTwo(node, node->first_key, left, keys[half], right);
  assert(ok && "split raced despite holding the node lock");
  (void)ok;
  node->lock.WriteUnlockObsolete();
  // The directory retired `node` storage-wise; nothing else to do.
}

// Same version-validated restart loop as Insert.
bool AlexLike::Update(Key key, Value value) ALT_OPTIMISTIC_PATH {
  EpochGuard g;
  for (;;) {
    const auto* snap = dir_.snapshot();
    DataNode* node =
        snap->leaves[LeafDirectory<DataNode>::Locate(*snap, key)].load(
            std::memory_order_acquire);
    if (!node->lock.WriteLockOrFail()) continue;
    const auto* snap2 = dir_.snapshot();
    DataNode* cur = snap2->leaves[LeafDirectory<DataNode>::Locate(*snap2, key)].load(
        std::memory_order_acquire);
    if (cur != node) {
      node->lock.WriteUnlock();
      continue;
    }
    const uint32_t pos = FindSlot(node, key);
    const bool found = pos < node->capacity;
    if (found) node->values[pos].store(value, std::memory_order_relaxed);
    node->lock.WriteUnlock();
    return found;
  }
}

// Same version-validated restart loop as Insert.
bool AlexLike::Remove(Key key) ALT_OPTIMISTIC_PATH {
  EpochGuard g;
  for (;;) {
    const auto* snap = dir_.snapshot();
    DataNode* node =
        snap->leaves[LeafDirectory<DataNode>::Locate(*snap, key)].load(
            std::memory_order_acquire);
    if (!node->lock.WriteLockOrFail()) continue;
    const auto* snap2 = dir_.snapshot();
    DataNode* cur = snap2->leaves[LeafDirectory<DataNode>::Locate(*snap2, key)].load(
        std::memory_order_acquire);
    if (cur != node) {
      node->lock.WriteUnlock();
      continue;
    }
    const uint32_t pos = FindSlot(node, key);
    const bool found = pos < node->capacity;
    if (found) {
      // The slot becomes a gap; its key value stays (order is preserved and
      // lookups consult the occupancy bitmap).
      node->ClearOccupied(pos);
      node->num_keys--;
      size_.fetch_sub(1, std::memory_order_relaxed);
    }
    node->lock.WriteUnlock();
    return found;
  }
}

size_t AlexLike::Scan(Key start, size_t count,
                      std::vector<std::pair<Key, Value>>* out) {
  out->clear();
  if (count == 0) return 0;
  EpochGuard g;
  Key resume = start;
  for (;;) {
    const auto* snap = dir_.snapshot();
    const size_t num_leaves = snap->first_keys.size();
    size_t li = LeafDirectory<DataNode>::Locate(*snap, resume);
    bool snapshot_stale = false;
    for (; li < num_leaves && out->size() < count; ++li) {
      DataNode* node = snap->leaves[li].load(std::memory_order_acquire);
      bool node_done = false;
      for (int attempt = 0; attempt < 64 && !node_done; ++attempt) {
        const size_t checkpoint = out->size();
        bool restart = false;
        const uint64_t v = node->lock.ReadLockOrRestart(&restart);
        if (restart) {
          // Node was split: re-resolve through a fresh snapshot.
          snapshot_stale = true;
          break;
        }
        for (uint32_t i = LowerBound(node, resume);
             i < node->capacity && out->size() < count; ++i) {
          if (!node->Occupied(i)) continue;
          const Key k = node->keys[i].load(std::memory_order_relaxed);
          if (k < resume) continue;
          out->emplace_back(k, node->values[i].load(std::memory_order_relaxed));
        }
        node->lock.CheckOrRestart(v, &restart);
        if (!restart) {
          node_done = true;
        } else {
          out->resize(checkpoint);
        }
      }
      if (snapshot_stale) break;
      if (!out->empty()) resume = out->back().first + 1;
    }
    if (!snapshot_stale || out->size() >= count) return out->size();
    if (!out->empty()) resume = out->back().first + 1;
  }
}

size_t AlexLike::MemoryUsage() const {
  EpochGuard g;
  const auto* snap = dir_.snapshot();
  if (snap == nullptr) return 0;
  size_t total = snap->first_keys.size() * (sizeof(Key) + sizeof(void*));
  for (const auto& l : snap->leaves) {
    total += l.load(std::memory_order_acquire)->MemoryBytes();
  }
  return total;
}

}  // namespace alt
