#pragma once

#include <shared_mutex>

#include "common/thread_annotations.h"

namespace alt {

/// \brief std::shared_mutex wrapped as a clang thread-safety capability.
///
/// libstdc++'s std::shared_mutex carries no annotations, so acquisitions
/// through it (std::unique_lock / std::shared_lock) are invisible to the
/// analysis. This wrapper + its two RAII guards make reader-writer locking in
/// the baselines (BTreeIndex oracle, XIndexLike group buffers) checkable.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  // ALT_LINT_ALLOW(alt-raw-lock): this wrapper IS the sanctioned boundary —
  // the only place the raw std::shared_mutex may be driven directly.
  void lock() ACQUIRE() { mu_.lock(); }
  // ALT_LINT_ALLOW(alt-raw-lock): wrapper boundary (see lock() above).
  void unlock() RELEASE() { mu_.unlock(); }
  // ALT_LINT_ALLOW(alt-raw-lock): wrapper boundary (see lock() above).
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  // ALT_LINT_ALLOW(alt-raw-lock): wrapper boundary (see lock() above).
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  // ALT_LINT_ALLOW(alt-raw-lock): the wrapped primitive itself; every other
  // file must hold it through SharedMutex + its guards.
  std::shared_mutex mu_;
};

/// Exclusive RAII guard for SharedMutex (replaces std::unique_lock).
class SCOPED_CAPABILITY WriteLockGuard {
 public:
  // ALT_LINT_ALLOW(alt-raw-lock): RAII guard implementation — the calls the
  // rest of src/ is banned from writing by hand.
  explicit WriteLockGuard(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  // ALT_LINT_ALLOW(alt-raw-lock): RAII guard implementation (see ctor).
  ~WriteLockGuard() RELEASE() { mu_.unlock(); }
  WriteLockGuard(const WriteLockGuard&) = delete;
  WriteLockGuard& operator=(const WriteLockGuard&) = delete;

 private:
  SharedMutex& mu_;
};

/// Shared RAII guard for SharedMutex (replaces std::shared_lock).
class SCOPED_CAPABILITY ReadLockGuard {
 public:
  explicit ReadLockGuard(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    // ALT_LINT_ALLOW(alt-raw-lock): RAII guard implementation.
    mu_.lock_shared();
  }
  // ALT_LINT_ALLOW(alt-raw-lock): RAII guard implementation (see ctor).
  ~ReadLockGuard() RELEASE() { mu_.unlock_shared(); }
  ReadLockGuard(const ReadLockGuard&) = delete;
  ReadLockGuard& operator=(const ReadLockGuard&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace alt
