#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace alt {

/// \brief Log-bucketed latency histogram with percentile queries.
///
/// Buckets grow geometrically (~4.6% width), so P99.9 estimates are accurate to
/// a few percent while recording costs two instructions on the hot path. The
/// paper reports throughput in Mops/s and P99.9 latency in microseconds
/// (Table I, Fig. 7); this recorder produces both.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Record one sample, in nanoseconds.
  void Record(uint64_t ns);

  /// Merge another histogram into this one (for per-thread -> global collapse).
  void Merge(const LatencyHistogram& other);

  /// \param q in (0, 1], e.g. 0.999 for P99.9. Returns nanoseconds.
  uint64_t Percentile(double q) const;

  uint64_t Count() const { return total_; }
  double MeanNs() const { return total_ ? static_cast<double>(sum_ns_) / total_ : 0.0; }

  void Reset();

 private:
  static constexpr int kBuckets = 512;
  static int BucketFor(uint64_t ns);
  static uint64_t BucketUpperNs(int b);
  static uint64_t BucketLowerNs(int b);

  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
  uint64_t sum_ns_ = 0;
};

/// \brief Sampled per-thread latency recorder.
///
/// Timing every op doubles the cost of a 100ns index lookup; we time one op in
/// `sample_every` (default 16) which leaves tail estimates intact for the op
/// volumes used here.
///
/// Sampling phase: if every thread started its modular counter at 0, all
/// threads would time ops 0, 16, 32, ... in lockstep — phase-locked with any
/// periodic behavior that is itself synchronized across threads (epoch
/// advances every kAdvanceInterval retires, batched flushes, warmup
/// boundaries), silently over- or under-representing those ops in the tail.
/// Each recorder therefore starts at a pseudo-random phase derived from a
/// process-wide instance counter via Mix64, so concurrent threads sample
/// de-correlated op indices while the 1-in-`sample_every` rate is unchanged.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(uint32_t sample_every = 16)
      : sample_every_(sample_every),
        counter_(sample_every > 1
                     ? static_cast<uint32_t>(Mix64(NextInstanceId()) % sample_every)
                     : 0) {}

  /// \return true if the caller should time this operation.
  bool ShouldSample() { return (counter_++ % sample_every_) == 0; }

  void Record(uint64_t ns) { hist_.Record(ns); }

  const LatencyHistogram& histogram() const { return hist_; }
  LatencyHistogram& histogram() { return hist_; }

 private:
  static uint64_t NextInstanceId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  uint32_t sample_every_;
  uint32_t counter_;
  LatencyHistogram hist_;
};

}  // namespace alt
