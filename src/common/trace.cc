#include "common/trace.h"

#include <cstdio>

#include "common/json.h"

#if !defined(ALT_TRACING_DISABLED)
#include <memory>

#include "common/spinlock.h"
#include "common/timer.h"
#endif

namespace alt {
namespace trace {

#if !defined(ALT_TRACING_DISABLED)

namespace {

/// Records retained per thread. Power of two; at 64 B/cell one ring is 256 KiB,
/// allocated lazily on the thread's first record while tracing is enabled.
constexpr uint64_t kRingCapacity = 4096;

/// One ring cell. Every field is atomic so a concurrent exporter is race-free
/// (TSan-clean); the generation is validated through `seq` exactly like the
/// learned layer's per-slot optimistic words. Generation g of ring position
/// p publishes seq = 2*(g+1): the reader accepts a cell only when both seq
/// loads around the payload reads return the even value of the generation it
/// expects, so a wrapped or in-flight overwrite is discarded, never torn.
struct Cell {
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> category{nullptr};
  std::atomic<uint64_t> start_ns{0};
  std::atomic<uint64_t> dur_ns{0};
  std::atomic<uint64_t> detail{0};
  std::atomic<uint8_t> phase{0};
};

struct ThreadRing {
  explicit ThreadRing(uint32_t id) : tid(id) {}
  const uint32_t tid;
  std::atomic<uint64_t> head{0};  ///< records ever written (next generation)
  Cell cells[kRingCapacity];
};

std::atomic<bool> g_enabled{false};

/// Registry of every thread's ring. Rings are never deallocated while the
/// process lives (flight-recorder semantics: a finished thread's history stays
/// exportable), so the thread-local pointer below can never dangle.
class Registry {
 public:
  static Registry& Global() {
    static Registry* r = new Registry();  // leaked: outlives late-exiting threads
    return *r;
  }

  ThreadRing* Register() {
    SpinLockGuard g(lock_);
    rings_.push_back(std::make_unique<ThreadRing>(static_cast<uint32_t>(rings_.size())));
    return rings_.back().get();
  }

  std::vector<ThreadRing*> SnapshotRings() {
    SpinLockGuard g(lock_);
    std::vector<ThreadRing*> out;
    out.reserve(rings_.size());
    for (auto& r : rings_) out.push_back(r.get());
    return out;
  }

 private:
  SpinLock lock_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

ThreadRing* LocalRing() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) ring = Registry::Global().Register();
  return ring;
}

void Push(const char* name, const char* category, uint64_t start_ns,
          uint64_t dur_ns, uint64_t detail, Phase phase) {
  ThreadRing* ring = LocalRing();
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  Cell& c = ring->cells[h & (kRingCapacity - 1)];
  c.seq.store(2 * h + 1, std::memory_order_relaxed);
  // StoreStore: the odd ("write in progress") mark must reach memory before
  // any payload byte. TSan does not model fences, but every field is atomic,
  // so the exporter race stays instrumented-clean regardless.
  std::atomic_thread_fence(std::memory_order_release);
  c.name.store(name, std::memory_order_relaxed);
  c.category.store(category, std::memory_order_relaxed);
  c.start_ns.store(start_ns, std::memory_order_relaxed);
  c.dur_ns.store(dur_ns, std::memory_order_relaxed);
  c.detail.store(detail, std::memory_order_relaxed);
  c.phase.store(static_cast<uint8_t>(phase), std::memory_order_relaxed);
  c.seq.store(2 * (h + 1), std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
}

}  // namespace

uint64_t Span::ClockNow() { return NowNanos(); }

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void RecordSpan(const char* name, const char* category, uint64_t start_ns,
                uint64_t dur_ns, uint64_t detail) {
  Push(name, category, start_ns, dur_ns, detail, Phase::kComplete);
}

void RecordInstant(const char* name, const char* category, uint64_t detail) {
  if (!Enabled()) return;
  Push(name, category, NowNanos(), 0, detail, Phase::kInstant);
}

std::vector<Record> Collect(uint64_t* dropped) {
  uint64_t lost = 0;
  std::vector<Record> out;
  for (ThreadRing* ring : Registry::Global().SnapshotRings()) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t begin = head > kRingCapacity ? head - kRingCapacity : 0;
    lost += begin;  // wrapped away before this collect
    for (uint64_t g = begin; g < head; ++g) {
      Cell& c = ring->cells[g & (kRingCapacity - 1)];
      const uint64_t want = 2 * (g + 1);
      if (c.seq.load(std::memory_order_acquire) != want) {
        ++lost;  // being overwritten right now (or already wrapped)
        continue;
      }
      Record r;
      r.name = c.name.load(std::memory_order_relaxed);
      r.category = c.category.load(std::memory_order_relaxed);
      r.start_ns = c.start_ns.load(std::memory_order_relaxed);
      r.dur_ns = c.dur_ns.load(std::memory_order_relaxed);
      r.detail = c.detail.load(std::memory_order_relaxed);
      r.tid = ring->tid;
      r.phase = static_cast<Phase>(c.phase.load(std::memory_order_relaxed));
      std::atomic_thread_fence(std::memory_order_acquire);
      if (c.seq.load(std::memory_order_relaxed) != want) {
        ++lost;  // overwritten underneath us — discard the torn copy
        continue;
      }
      out.push_back(r);
    }
  }
  if (dropped != nullptr) *dropped = lost;
  return out;
}

void ResetForTest() {
  // Rings stay registered (live threads cache pointers into them); only the
  // contents are discarded. Callers guarantee no concurrent recording.
  for (ThreadRing* ring : Registry::Global().SnapshotRings()) {
    for (uint64_t i = 0; i < kRingCapacity; ++i) {
      ring->cells[i].seq.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

#endif  // !ALT_TRACING_DISABLED

namespace {

void AppendEvent(const Record& r, std::string* out) {
  char buf[160];
  // Chrome trace-event timestamps are microseconds; keep ns resolution with
  // three decimals. pid is fixed (single process).
  std::snprintf(buf, sizeof(buf), "{\"pid\":1,\"tid\":%u,\"ts\":%.3f,",
                r.tid, static_cast<double>(r.start_ns) / 1000.0);
  *out += buf;
  if (r.phase == Phase::kComplete) {
    std::snprintf(buf, sizeof(buf), "\"ph\":\"X\",\"dur\":%.3f,",
                  static_cast<double>(r.dur_ns) / 1000.0);
    *out += buf;
  } else {
    *out += "\"ph\":\"i\",\"s\":\"t\",";
  }
  *out += "\"name\":";
  AppendJsonQuoted(r.name != nullptr ? r.name : "?", out);
  *out += ",\"cat\":";
  AppendJsonQuoted(r.category != nullptr ? r.category : "alt", out);
  std::snprintf(buf, sizeof(buf), ",\"args\":{\"detail\":%llu}}",
                static_cast<unsigned long long>(r.detail));
  *out += buf;
}

}  // namespace

std::string ToChromeJson(const std::vector<Record>& records) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Record& r : records) {
    if (!first) out += ",\n";
    first = false;
    AppendEvent(r, &out);
  }
  out += "],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  const std::string doc = ToChromeJson(Collect());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const int rc = std::fclose(f);
  return n == doc.size() && rc == 0;
}

}  // namespace trace
}  // namespace alt
