// Reproduces Fig. 10, the inside analysis of ALT-index:
//  (a) average ART lookup length with vs without the fast pointer buffer,
//  (b) fast pointer count with vs without the merge scheme,
//  (c) data distribution between the learned layer and ART-OPT,
//  (d) bulk-load time of ALT-index vs the competitors.
#include "core/alt_index.h"

#include "bench_common.h"
#include "common/epoch.h"
#include "common/metrics.h"
#include "common/timer.h"

using namespace alt;
using namespace alt::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);

  PrintHeader("Fig. 10(a): avg ART lookup length (nodes visited per secondary search)",
              {"Dataset", "with FP", "without FP"});
  for (Dataset d : cfg.datasets) {
    const auto keys = LoadKeys(cfg, d);
    double avg[2] = {0, 0};
    for (int variant = 0; variant < 2; ++variant) {
      AltOptions o;
      o.enable_fast_pointers = (variant == 0);
      AltIndex index(o);
      auto setup = SplitDataset(keys, cfg.bulk_fraction);
      std::vector<Value> vals(setup.loaded.size());
      for (size_t i = 0; i < vals.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
      index.BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size());
      const auto base = metrics::TakeSnapshot();
      Value v;
      for (size_t i = 0; i < setup.loaded.size(); ++i) index.Lookup(setup.loaded[i], &v);
      const auto delta = metrics::TakeSnapshot().DeltaSince(base);
      const uint64_t lookups = delta.counter(metrics::Counter::kArtLookups);
      avg[variant] =
          lookups > 0
              ? static_cast<double>(delta.counter(metrics::Counter::kArtLookupSteps)) /
                    static_cast<double>(lookups)
              : 0.0;
    }
    PrintRow({DatasetName(d), Fmt(avg[0]), Fmt(avg[1])});
  }

  PrintHeader("Fig. 10(b): fast pointers with vs without the merge scheme",
              {"Dataset", "merged", "unmerged", "reduction"});
  for (Dataset d : cfg.datasets) {
    const auto keys = LoadKeys(cfg, d);
    AltIndex index;
    auto setup = SplitDataset(keys, cfg.bulk_fraction);
    std::vector<Value> vals(setup.loaded.size());
    for (size_t i = 0; i < vals.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
    index.BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size());
    const auto st = index.CollectStats();
    const double reduction =
        st.fast_pointer_adds > 0
            ? 1.0 - static_cast<double>(st.fast_pointers) /
                        static_cast<double>(st.fast_pointer_adds)
            : 0.0;
    PrintRow({DatasetName(d), std::to_string(st.fast_pointers),
              std::to_string(st.fast_pointer_adds), Fmt(100 * reduction, 1) + "%"});
  }

  PrintHeader("Fig. 10(c): data distribution across ALT-index layers",
              {"Dataset", "learned %", "ART %", "models"});
  for (Dataset d : cfg.datasets) {
    const auto keys = LoadKeys(cfg, d);
    AltIndex index;
    auto setup = SplitDataset(keys, cfg.bulk_fraction);
    std::vector<Value> vals(setup.loaded.size());
    for (size_t i = 0; i < vals.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
    index.BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size());
    const auto st = index.CollectStats();
    const double total = static_cast<double>(st.learned_layer_keys + st.art_keys);
    PrintRow({DatasetName(d),
              Fmt(100.0 * static_cast<double>(st.learned_layer_keys) / total, 1),
              Fmt(100.0 * static_cast<double>(st.art_keys) / total, 1),
              std::to_string(st.num_models)});
  }

  PrintHeader("Fig. 10(d): bulk-load time (seconds)",
              {"Index", "Dataset", "seconds"});
  for (const auto& name : cfg.indexes) {
    for (Dataset d : cfg.datasets) {
      const auto keys = LoadKeys(cfg, d);
      auto index = MakeIndex(name);
      auto setup = SplitDataset(keys, 1.0);
      std::vector<Value> vals(setup.loaded.size());
      for (size_t i = 0; i < vals.size(); ++i) vals[i] = ValueFor(setup.loaded[i]);
      const Stopwatch sw;
      index->BulkLoad(setup.loaded.data(), vals.data(), setup.loaded.size());
      PrintRow({index->Name(), DatasetName(d), Fmt(sw.ElapsedSeconds(), 3)});
      index.reset();
      EpochManager::Global().DrainAll();
    }
  }
  return 0;
}
