file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8d_initsize.dir/bench_fig8d_initsize.cc.o"
  "CMakeFiles/bench_fig8d_initsize.dir/bench_fig8d_initsize.cc.o.d"
  "bench_fig8d_initsize"
  "bench_fig8d_initsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8d_initsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
