#pragma once

#include <atomic>
#include <cstdint>

#include "common/spinlock.h"

namespace alt {

/// \brief Standalone optimistic version lock (the DaMoN'16 scheme used inside
/// ART nodes), for baseline index nodes: bit 1 = locked, bit 0 = obsolete,
/// bits 63..2 = version counter.
class OptLock {
 public:
  static bool IsLocked(uint64_t v) { return (v & 2u) != 0; }
  static bool IsObsolete(uint64_t v) { return (v & 1u) != 0; }

  /// Spin past writers; sets *need_restart if the node is obsolete.
  uint64_t ReadLockOrRestart(bool* need_restart) const {
    uint64_t v = v_.load(std::memory_order_acquire);
    while (IsLocked(v)) {
      CpuRelax();
      v = v_.load(std::memory_order_acquire);
    }
    if (IsObsolete(v)) *need_restart = true;
    return v;
  }

  /// Seqlock validation: preceding data loads stay before the re-read.
  void CheckOrRestart(uint64_t v, bool* need_restart) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    if (v_.load(std::memory_order_relaxed) != v) *need_restart = true;
  }

  void UpgradeToWriteLockOrRestart(uint64_t& v, bool* need_restart) {
    if (!v_.compare_exchange_strong(v, v + 2, std::memory_order_acquire)) {
      *need_restart = true;
    } else {
      v += 2;
    }
  }

  /// Blocking write lock; \return false if the node became obsolete.
  bool WriteLockOrFail() {
    for (;;) {
      uint64_t v = v_.load(std::memory_order_acquire);
      if (IsObsolete(v)) return false;
      if (!IsLocked(v) &&
          v_.compare_exchange_weak(v, v + 2, std::memory_order_acquire)) {
        return true;
      }
      CpuRelax();
    }
  }

  void WriteUnlock() { v_.fetch_add(2, std::memory_order_release); }
  void WriteUnlockObsolete() { v_.fetch_add(3, std::memory_order_release); }

 private:
  std::atomic<uint64_t> v_{0};
};

}  // namespace alt
