#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/timer.h"

namespace alt {
namespace server {

Status KvClient::Connect(const std::string& host, uint16_t port,
                         uint64_t retry_for_ms) {
  Close();
  const uint64_t deadline_ns = NowNanos() + retry_for_ms * 1000000ull;
  for (;;) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return Status::IOError("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      Close();
      return Status::InvalidArgument("host must be an IPv4 literal: " + host);
    }
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Status::OK();
    }
    const int err = errno;
    Close();
    if ((err == ECONNREFUSED || err == ETIMEDOUT) && NowNanos() < deadline_ns) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    return Status::IOError(std::string("connect() failed: ") + std::strerror(err));
  }
}

void KvClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status KvClient::SendAll(const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t k = send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (k > 0) {
      off += static_cast<size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("send() failed: ") + std::strerror(errno));
  }
  return Status::OK();
}

uint64_t KvClient::QueueGet(Key key) {
  const uint64_t id = next_id_++;
  AppendGet(&send_buf_, id, key);
  return id;
}

uint64_t KvClient::QueuePut(Key key, Value value) {
  const uint64_t id = next_id_++;
  AppendPut(&send_buf_, id, key, value);
  return id;
}

uint64_t KvClient::QueueDel(Key key) {
  const uint64_t id = next_id_++;
  AppendDel(&send_buf_, id, key);
  return id;
}

uint64_t KvClient::QueueScan(Key start, uint32_t count) {
  const uint64_t id = next_id_++;
  AppendScan(&send_buf_, id, start, count);
  return id;
}

uint64_t KvClient::QueueStats() {
  const uint64_t id = next_id_++;
  AppendStats(&send_buf_, id);
  return id;
}

Status KvClient::Flush() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  Status s = SendAll(send_buf_.data(), send_buf_.size());
  send_buf_.clear();
  return s;
}

bool DecodeResponse(const FrameHeader& h, const uint8_t* body, Response* resp) {
  resp->request_id = h.request_id;
  resp->status = h.status();
  resp->pairs.clear();
  resp->json.clear();
  resp->value = 0;
  resp->created = false;
  if (resp->status != RespStatus::kOk) {
    return h.body_len == 0;  // error responses are bodyless
  }
  // kOk payload layout is selected by the echoed request opcode (header
  // byte 6) — never by guessing at the body shape.
  switch (static_cast<Op>(h.echo_op)) {
    case Op::kGet:
      if (h.body_len != 8) return false;
      resp->value = GetU64(body);
      return true;
    case Op::kPut:
      if (h.body_len != 1) return false;
      resp->created = body[0] != 0;
      return true;
    case Op::kDel:
      return h.body_len == 0;
    case Op::kScan: {
      if (h.body_len < 4) return false;
      const uint32_t n = GetU32(body);
      if (h.body_len != 4 + static_cast<uint64_t>(n) * 16) return false;
      resp->pairs.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        const uint8_t* p = body + 4 + i * 16;
        resp->pairs.emplace_back(GetU64(p), GetU64(p + 8));
      }
      return true;
    }
    case Op::kStats:
      resp->json.assign(reinterpret_cast<const char*>(body), h.body_len);
      return true;
  }
  return false;
}

Status KvClient::ReceiveResponse(Response* resp) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  for (;;) {
    FrameHeader h;
    const uint8_t* body = nullptr;
    FrameDecoder::Result r = dec_.Next(&h, &body);
    if (r == FrameDecoder::Result::kFrame) {
      if (!h.is_response()) {
        return Status::Internal("server sent a non-response frame");
      }
      DecodeResponse(h, body, resp);
      return Status::OK();
    }
    if (r == FrameDecoder::Result::kError) {
      return Status::Internal(std::string("protocol error: ") + dec_.error());
    }
    uint8_t buf[16384];
    ssize_t k = recv(fd_, buf, sizeof(buf), 0);
    if (k > 0) {
      dec_.Feed(buf, static_cast<size_t>(k));
      continue;
    }
    if (k == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    return Status::IOError(std::string("recv() failed: ") + std::strerror(errno));
  }
}

Status KvClient::Get(Key key, Value* out, bool* found) {
  QueueGet(key);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReceiveResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status == RespStatus::kOk) {
    *found = true;
    *out = resp.value;
    return Status::OK();
  }
  if (resp.status == RespStatus::kNotFound) {
    *found = false;
    return Status::OK();
  }
  return Status::Internal(std::string("GET failed: ") + RespStatusName(resp.status));
}

Status KvClient::Put(Key key, Value value, bool* created) {
  QueuePut(key, value);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReceiveResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status != RespStatus::kOk) {
    return Status::Internal(std::string("PUT failed: ") + RespStatusName(resp.status));
  }
  if (created != nullptr) *created = resp.created;
  return Status::OK();
}

Status KvClient::Del(Key key, bool* existed) {
  QueueDel(key);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReceiveResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status == RespStatus::kOk) {
    *existed = true;
    return Status::OK();
  }
  if (resp.status == RespStatus::kNotFound) {
    *existed = false;
    return Status::OK();
  }
  return Status::Internal(std::string("DEL failed: ") + RespStatusName(resp.status));
}

Status KvClient::Scan(Key start, uint32_t count,
                      std::vector<std::pair<Key, Value>>* out) {
  QueueScan(start, count);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReceiveResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status != RespStatus::kOk) {
    return Status::Internal(std::string("SCAN failed: ") + RespStatusName(resp.status));
  }
  *out = std::move(resp.pairs);
  return Status::OK();
}

Status KvClient::Stats(std::string* json) {
  QueueStats();
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReceiveResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status != RespStatus::kOk) {
    return Status::Internal(std::string("STATS failed: ") + RespStatusName(resp.status));
  }
  *json = std::move(resp.json);
  return Status::OK();
}

}  // namespace server
}  // namespace alt
