file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_internals.dir/bench_fig10_internals.cc.o"
  "CMakeFiles/bench_fig10_internals.dir/bench_fig10_internals.cc.o.d"
  "bench_fig10_internals"
  "bench_fig10_internals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
