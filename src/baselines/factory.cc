#include "baselines/factory.h"

#include <cstdlib>

#include "baselines/alex_like.h"
#include "baselines/alt_adapter.h"
#include "baselines/art_index.h"
#include "baselines/btree_index.h"
#include "baselines/finedex_like.h"
#include "baselines/lipp_like.h"
#include "baselines/olc_btree.h"
#include "baselines/xindex_like.h"
#include "shard/sharded_alt_index.h"

namespace alt {

std::unique_ptr<ConcurrentIndex> MakeIndex(const std::string& name,
                                           const AltOptions& alt_options) {
  if (name == "alt") return std::make_unique<AltIndexAdapter>(alt_options);
  // "alt-shardedN" (e.g. alt-sharded4): range-partitioned sharded front-end
  // with N shards, each on its own epoch manager (src/shard/).
  if (name.rfind("alt-sharded", 0) == 0) {
    shard::ShardedOptions so;
    so.index = alt_options;
    const std::string count = name.substr(std::string("alt-sharded").size());
    if (!count.empty()) so.num_shards = std::atoi(count.c_str());
    if (so.num_shards <= 0) return nullptr;
    return std::make_unique<shard::ShardedAltIndex>(so);
  }
  if (name == "alex") return std::make_unique<AlexLike>();
  if (name == "lipp") return std::make_unique<LippLike>();
  if (name == "xindex") return std::make_unique<XIndexLike>();
  if (name == "finedex") return std::make_unique<FinedexLike>();
  if (name == "art") return std::make_unique<ArtIndex>();
  if (name == "btree-olc") return std::make_unique<OlcBTree>();
  if (name == "btree") return std::make_unique<BTreeIndex>();
  return nullptr;
}

std::vector<std::string> PaperIndexLineup() {
  return {"alt", "alex", "lipp", "finedex", "xindex", "art"};
}

}  // namespace alt
