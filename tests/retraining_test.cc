#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "core/alt_index.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

class RetrainingTest : public ::testing::Test {
 protected:
  void TearDown() override { EpochManager::Global().DrainAll(); }
};

// Hammer one small key region with inserts so a single GPL model's insert
// count far exceeds its build size — the §III-F trigger.
TEST_F(RetrainingTest, HotInsertsTriggerAndFinishExpansion) {
  AltOptions opts;
  opts.retrain_trigger_ratio = 0.5;
  AltIndex index(opts);
  // Dense region loaded, then 3x that volume inserted into the same region:
  // the finish threshold (§III-F: temporal-buffer inserts == old model size)
  // is comfortably crossed.
  constexpr Key kBulk = 15000;
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < kBulk; ++k) pairs.emplace_back(k * 4, ValueFor(k * 4));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  for (Key k = 0; k < kBulk; ++k) {
    for (Key d = 1; d <= 3; ++d) {
      ASSERT_TRUE(index.Insert(k * 4 + d, ValueFor(k * 4 + d))) << k;
    }
  }
  const auto st = index.CollectStats();
  EXPECT_GT(st.retrain_started, 0u) << "hot inserts must trigger expansion";
  EXPECT_GT(st.retrain_finished, 0u) << "expansion must complete";
  // Every key, old and new, remains reachable.
  for (Key k = 0; k < kBulk * 4; ++k) {
    Value v;
    ASSERT_TRUE(index.Lookup(k, &v)) << k;
    EXPECT_EQ(v, ValueFor(k));
  }
  EXPECT_EQ(index.Size(), kBulk * 4);
}

TEST_F(RetrainingTest, DisabledRetrainingNeverExpands) {
  AltOptions opts;
  opts.enable_retraining = false;
  AltIndex index(opts);
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 5000; ++k) pairs.emplace_back(k * 2, k);
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  for (Key k = 0; k < 5000; ++k) ASSERT_TRUE(index.Insert(k * 2 + 1, k));
  const auto st = index.CollectStats();
  EXPECT_EQ(st.retrain_started, 0u);
  for (Key k = 0; k < 10000; ++k) {
    Value v;
    ASSERT_TRUE(index.Lookup(k, &v)) << k;
  }
}

// After an expansion finishes, the zero-error invariant must hold again:
// ART keys whose new predicted slot is empty were written back (§III-F).
TEST_F(RetrainingTest, InvariantRestoredAfterFinish) {
  AltOptions opts;
  opts.retrain_trigger_ratio = 0.5;
  opts.gap_factor = 1.2;  // dense: provokes conflicts and write-backs
  AltIndex index(opts);
  constexpr Key kBulk = 10000;
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < kBulk; ++k) pairs.emplace_back(k * 8, ValueFor(k * 8));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  for (Key k = 0; k < kBulk; ++k) {
    for (Key d = 2; d <= 6; d += 2) {
      ASSERT_TRUE(index.Insert(k * 8 + d, ValueFor(k * 8 + d)));
    }
  }
  const auto st = index.CollectStats();
  ASSERT_GT(st.retrain_finished, 0u);
  EXPECT_EQ(st.learned_layer_keys + st.art_keys, kBulk * 4);
  for (Key k = 0; k < kBulk * 8; k += 2) {
    Value v;
    ASSERT_TRUE(index.Lookup(k, &v)) << k;
    EXPECT_EQ(v, ValueFor(k));
  }
  // Absent keys still answer "not found" quickly post-retraining.
  for (Key k = 1; k < kBulk * 8; k += 2) {
    Value v;
    EXPECT_FALSE(index.Lookup(k, &v)) << k;
  }
}

TEST_F(RetrainingTest, TailModelAppendedWhenLastModelRetrains) {
  AltOptions opts;
  opts.retrain_trigger_ratio = 0.5;
  AltIndex index(opts);
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 4000; ++k) pairs.emplace_back(1000 + k * 2, k);
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  const size_t models_before = index.CollectStats().num_models;
  for (Key k = 0; k < 4000; ++k) {
    ASSERT_TRUE(index.Insert(1000 + k * 2 + 1, k));
  }
  const auto st = index.CollectStats();
  if (st.retrain_finished > 0) {
    EXPECT_GE(st.num_models, models_before)
        << "finishing the last model appends a tail model";
  }
  // Out-of-range inserts beyond the original max land correctly.
  const Key beyond = 1000 + 4000 * 2 + 100;
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(index.Insert(beyond + k * 3, k));
  }
  for (Key k = 0; k < 1000; ++k) {
    Value v;
    ASSERT_TRUE(index.Lookup(beyond + k * 3, &v)) << k;
    EXPECT_EQ(v, k);
  }
}

// Removes and updates racing an in-flight expansion must stay correct.
TEST_F(RetrainingTest, MixedOpsDuringExpansionSingleThread) {
  AltOptions opts;
  opts.retrain_trigger_ratio = 0.25;
  AltIndex index(opts);
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 8000; ++k) pairs.emplace_back(k * 3, ValueFor(k * 3));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());
  // Interleave inserts (forcing expansions) with removes/updates/lookups.
  for (Key k = 0; k < 8000; ++k) {
    ASSERT_TRUE(index.Insert(k * 3 + 1, ValueFor(k * 3 + 1)));
    if (k % 5 == 0) ASSERT_TRUE(index.Remove(k * 3));
    if (k % 7 == 0) ASSERT_TRUE(index.Update(k * 3 + 1, 42));
    Value v;
    ASSERT_TRUE(index.Lookup(k * 3 + 1, &v));
    EXPECT_EQ(v, k % 7 == 0 ? 42 : ValueFor(k * 3 + 1));
  }
  for (Key k = 0; k < 8000; ++k) {
    Value v;
    EXPECT_EQ(index.Lookup(k * 3, &v), k % 5 != 0) << k;
  }
}

TEST_F(RetrainingTest, ConcurrentInsertersDuringExpansion) {
  AltOptions opts;
  opts.retrain_trigger_ratio = 0.25;
  AltIndex index(opts);
  std::vector<std::pair<Key, Value>> pairs;
  constexpr Key kStride = 8;
  constexpr Key kBulk = 20000;
  for (Key k = 0; k < kBulk; ++k) pairs.emplace_back(k * kStride, ValueFor(k * kStride));
  ASSERT_TRUE(index.BulkLoad(pairs).ok());

  constexpr int kThreads = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&index, &failed, t] {
      // Thread t inserts keys congruent to t+1 (mod kStride).
      for (Key k = 0; k < kBulk; ++k) {
        const Key key = k * kStride + 1 + static_cast<Key>(t);
        if (!index.Insert(key, ValueFor(key))) failed.store(true);
      }
    });
  }
  // A reader thread hammers the bulk keys throughout.
  threads.emplace_back([&index, &failed] {
    for (int round = 0; round < 3; ++round) {
      for (Key k = 0; k < kBulk; k += 3) {
        Value v;
        if (!index.Lookup(k * kStride, &v) || v != ValueFor(k * kStride)) {
          failed.store(true);
        }
      }
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(index.Size(), kBulk * (1 + kThreads));
  // Full post-condition sweep.
  for (Key k = 0; k < kBulk; ++k) {
    for (int t = -1; t < kThreads; ++t) {
      const Key key = k * kStride + (t < 0 ? 0 : 1 + static_cast<Key>(t));
      Value v;
      ASSERT_TRUE(index.Lookup(key, &v)) << "k=" << k << " t=" << t;
      EXPECT_EQ(v, ValueFor(key));
    }
  }
  const auto st = index.CollectStats();
  EXPECT_GT(st.retrain_started, 0u);
}

// Regression: during an in-flight §III-F expansion, Scan and RangeQuery
// collect the old model and the temporal buffer over the same key range. A key
// migrating between the two per-slot-atomic collection passes was observed by
// both and returned twice. Scans racing expansions must return strictly
// ascending keys with correct values.
TEST_F(RetrainingTest, ScanDuringRetrainReturnsNoDuplicates) {
  AltOptions opts;
  opts.retrain_trigger_ratio = 0.25;
  AltIndex index(opts);
  constexpr Key kStride = 8;
  constexpr Key kBulk = 20000;
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < kBulk; ++k) {
    pairs.emplace_back(k * kStride, ValueFor(k * kStride));
  }
  ASSERT_TRUE(index.BulkLoad(pairs).ok());

  constexpr int kInserters = 3;
  std::atomic<bool> stop{false};
  std::atomic<bool> bad_order{false};
  std::atomic<bool> bad_value{false};
  std::atomic<Key> bad_key{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kInserters; ++t) {
    threads.emplace_back([&index, &stop, t] {
      // Thread t cycles insert-all / remove-all over keys congruent to t+1
      // (mod kStride). Every cycle re-crosses the retrain trigger, so some
      // model has an in-flight expansion (and keys migrating into its
      // temporal buffer) for most of the run — the window the scanner needs.
      while (!stop.load(std::memory_order_acquire)) {
        for (Key k = 0; k < kBulk; ++k) {
          const Key key = k * kStride + 1 + static_cast<Key>(t);
          index.Insert(key, ValueFor(key));
        }
        for (Key k = 0; k < kBulk; ++k) {
          const Key key = k * kStride + 1 + static_cast<Key>(t);
          index.Remove(key);
        }
      }
    });
  }
  std::thread scanner([&] {
    std::vector<std::pair<Key, Value>> out;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
    uint64_t round = 0;
    while (std::chrono::steady_clock::now() < deadline &&
           !bad_order.load(std::memory_order_relaxed) &&
           !bad_value.load(std::memory_order_relaxed)) {
      const Key start = (round * 977) % (kBulk * kStride);
      if ((round & 1) == 0) {
        index.Scan(start, 256, &out);
      } else {
        index.RangeQuery(start, start + 256 * kStride, &out);
      }
      for (size_t i = 0; i < out.size(); ++i) {
        if (i > 0 && out[i].first <= out[i - 1].first) {
          bad_order.store(true);
          bad_key.store(out[i].first);
        }
        if (out[i].second != ValueFor(out[i].first)) {
          bad_value.store(true);
          bad_key.store(out[i].first);
        }
      }
      ++round;
    }
    stop.store(true, std::memory_order_release);
  });
  scanner.join();
  for (auto& th : threads) th.join();

  EXPECT_FALSE(bad_order.load())
      << "scan returned a duplicate/unordered key " << bad_key.load();
  EXPECT_FALSE(bad_value.load()) << "scan returned a torn value for key "
                                 << bad_key.load();
  EXPECT_GT(index.CollectStats().retrain_started, 0u)
      << "workload never triggered an expansion; the race was not exercised";
}

}  // namespace
}  // namespace alt
