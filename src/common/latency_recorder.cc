#include "common/latency_recorder.h"

#include <cmath>

namespace alt {

namespace {
// 16 sub-buckets per power of two: bucket = 16*log2(ns) roughly.
constexpr int kSubBucketBits = 4;
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

int LatencyHistogram::BucketFor(uint64_t ns) {
  if (ns < 16) return static_cast<int>(ns);
  const int msb = 63 - __builtin_clzll(ns);
  const int sub = static_cast<int>((ns >> (msb - kSubBucketBits)) & 0xF);
  int b = ((msb - kSubBucketBits + 1) << kSubBucketBits) + sub;
  return b < kBuckets ? b : kBuckets - 1;
}

uint64_t LatencyHistogram::BucketUpperNs(int b) {
  if (b < 16) return static_cast<uint64_t>(b);
  const int msb = (b >> kSubBucketBits) + kSubBucketBits - 1;
  const uint64_t sub = static_cast<uint64_t>(b & 0xF);
  return ((uint64_t{16} + sub + 1) << (msb - kSubBucketBits)) - 1;
}

void LatencyHistogram::Record(uint64_t ns) {
  buckets_[static_cast<size_t>(BucketFor(ns))]++;
  total_++;
  sum_ns_ += ns;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  sum_ns_ += other.sum_ns_;
}

uint64_t LatencyHistogram::BucketLowerNs(int b) {
  return b == 0 ? 0 : BucketUpperNs(b - 1) + 1;
}

uint64_t LatencyHistogram::Percentile(double q) const {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total_)));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] >= target) {
      // Linear interpolation within the bucket: assume the bucket's samples
      // are spread uniformly over [lower, upper] and return the rank'th of
      // them. The last sample of a bucket still maps to its upper bound, so
      // the sub-16ns buckets (width 1) stay exact and a ~halved worst-case
      // error replaces the old always-return-upper-bound bias elsewhere.
      const uint64_t lower = BucketLowerNs(i);
      const uint64_t upper = BucketUpperNs(i);
      const uint64_t rank = target - seen;  // in [1, buckets_[i]]
      const double frac =
          static_cast<double>(rank) / static_cast<double>(buckets_[i]);
      return lower + static_cast<uint64_t>(
                         static_cast<double>(upper - lower) * frac + 0.5);
    }
    seen += buckets_[i];
  }
  return BucketUpperNs(kBuckets - 1);
}

void LatencyHistogram::Reset() {
  buckets_.assign(kBuckets, 0);
  total_ = 0;
  sum_ns_ = 0;
}

}  // namespace alt
