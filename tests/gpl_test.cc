#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/alt_options.h"
#include "core/gpl.h"
#include "datasets/dataset.h"

namespace alt {
namespace {

std::vector<Key> Linear(size_t n, Key step) {
  std::vector<Key> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = 100 + static_cast<Key>(i) * step;
  return keys;
}

// ---------------------------------------------------------------------------
// GPL basics
// ---------------------------------------------------------------------------

TEST(GplTest, EmptyInput) {
  EXPECT_TRUE(GplSegment(nullptr, 0, 16).empty());
}

TEST(GplTest, SingleKeyIsOneSegment) {
  const Key k = 42;
  auto segs = GplSegment(&k, 1, 16);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].start, 0u);
  EXPECT_EQ(segs[0].length, 1u);
}

TEST(GplTest, PerfectlyLinearDataIsOneSegment) {
  auto keys = Linear(100000, 7);
  auto segs = GplSegment(keys.data(), keys.size(), 16);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].length, keys.size());
  EXPECT_NEAR(segs[0].slope, 1.0 / 7.0, 1e-9);
}

TEST(GplTest, SegmentsPartitionTheInput) {
  auto keys = GenerateKeys(Dataset::kOsm, 50000, 3);
  auto segs = GplSegment(keys.data(), keys.size(), 64);
  size_t expect_start = 0;
  for (const auto& s : segs) {
    EXPECT_EQ(s.start, expect_start);
    EXPECT_GT(s.length, 0u);
    expect_start += s.length;
  }
  EXPECT_EQ(expect_start, keys.size());
}

TEST(GplTest, StepFunctionSplits) {
  // Two dense runs separated by a huge jump: at least 2 segments, split at
  // the jump.
  std::vector<Key> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(1000 + i);
  for (int i = 0; i < 1000; ++i) keys.push_back(1u << 30 | (1000 + i));
  auto segs = GplSegment(keys.data(), keys.size(), 8);
  EXPECT_GE(segs.size(), 2u);
}

// Error-bound property: the midpoint-slope model's prediction error is <= eps
// for EVERY key of EVERY segment, on every dataset and every bound — the
// core guarantee that lets ALT-index place keys at exact predicted slots.
class GplErrorBoundTest
    : public ::testing::TestWithParam<std::tuple<Dataset, double>> {};

TEST_P(GplErrorBoundTest, MaxErrorWithinEpsilon) {
  const auto [dataset, eps] = GetParam();
  auto keys = GenerateKeys(dataset, 20000, 11);
  auto segs = GplSegment(keys.data(), keys.size(), eps);
  for (const auto& s : segs) {
    EXPECT_LE(MaxSegmentError(keys.data(), s), eps + 1e-6)
        << "segment at " << s.start << " len " << s.length;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, GplErrorBoundTest,
    ::testing::Combine(::testing::Values(Dataset::kLibio, Dataset::kOsm, Dataset::kFb,
                                         Dataset::kLonglat, Dataset::kUniform,
                                         Dataset::kLognormal),
                       ::testing::Values(4.0, 16.0, 64.0, 256.0)));

// Eq. 1 shape: larger error bound => fewer models (inverse relationship).
TEST(GplTest, ModelCountShrinksWithEpsilon) {
  auto keys = GenerateKeys(Dataset::kLonglat, 100000, 5);
  size_t prev = ~size_t{0};
  for (double eps : {8.0, 32.0, 128.0, 512.0}) {
    const size_t count = GplSegment(keys.data(), keys.size(), eps).size();
    EXPECT_LE(count, prev) << "eps=" << eps;
    prev = count;
  }
}

// delta_h ordering (DESIGN.md §5): libio is the easiest CDF, longlat among
// the hardest, at the paper's suggested epsilon.
TEST(GplTest, DatasetDifficultyOrdering) {
  constexpr size_t kN = 100000;
  const double eps = AltOptions::SuggestErrorBound(kN);
  auto count = [&](Dataset d) {
    auto keys = GenerateKeys(d, kN, 5);
    return GplSegment(keys.data(), keys.size(), eps).size();
  };
  const size_t libio = count(Dataset::kLibio);
  const size_t longlat = count(Dataset::kLonglat);
  EXPECT_LT(libio, longlat);
}

// ---------------------------------------------------------------------------
// ShrinkingCone
// ---------------------------------------------------------------------------

TEST(ShrinkingConeTest, PartitionsInput) {
  auto keys = GenerateKeys(Dataset::kFb, 30000, 9);
  auto segs = ShrinkingConeSegment(keys.data(), keys.size(), 32);
  size_t expect_start = 0;
  for (const auto& s : segs) {
    EXPECT_EQ(s.start, expect_start);
    expect_start += s.length;
  }
  EXPECT_EQ(expect_start, keys.size());
}

TEST(ShrinkingConeTest, LinearDataOneSegment) {
  auto keys = Linear(10000, 3);
  auto segs = ShrinkingConeSegment(keys.data(), keys.size(), 16);
  EXPECT_EQ(segs.size(), 1u);
}

TEST(ShrinkingConeTest, ErrorBoundedByEpsilonish) {
  // The cone guarantees each point is within eps of SOME line through the
  // apex; with the midpoint slope the error stays within 2*eps.
  auto keys = GenerateKeys(Dataset::kOsm, 20000, 13);
  const double eps = 32;
  auto segs = ShrinkingConeSegment(keys.data(), keys.size(), eps);
  for (const auto& s : segs) {
    EXPECT_LE(MaxSegmentError(keys.data(), s), 2 * eps + 1e-6);
  }
}

TEST(AlgorithmComparisonTest, BothCoverAllKeysWithComparableCounts) {
  auto keys = GenerateKeys(Dataset::kLonglat, 50000, 3);
  const double eps = 64;
  auto gpl = GplSegment(keys.data(), keys.size(), eps);
  auto cone = ShrinkingConeSegment(keys.data(), keys.size(), eps);
  EXPECT_GT(gpl.size(), 0u);
  EXPECT_GT(cone.size(), 0u);
  // Both are O(n) single-pass splitters; counts land within a small factor.
  const double ratio = static_cast<double>(gpl.size()) / static_cast<double>(cone.size());
  EXPECT_GT(ratio, 0.1);
  EXPECT_LT(ratio, 10.0);
}

}  // namespace
}  // namespace alt
