file(REMOVE_RECURSE
  "libalt_workload.a"
)
