file(REMOVE_RECURSE
  "CMakeFiles/art_edge_test.dir/art_edge_test.cc.o"
  "CMakeFiles/art_edge_test.dir/art_edge_test.cc.o.d"
  "art_edge_test"
  "art_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/art_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
