#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "common/index_interface.h"
#include "datasets/dataset.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace alt {
namespace bench {

/// Shared benchmark configuration, parsed from argv (`--keys 1000000`,
/// `--threads 8`, `--ops 200000`, `--datasets libio,osm`, `--indexes alt,art`,
/// `--bulk-fraction 0.5`, `--dataset-file path` to use a real SOSD binary).
/// The env var ALT_BENCH_SCALE multiplies --keys and --ops (e.g. =10 for a
/// server-scale run).
struct BenchConfig {
  size_t keys = 1000000;
  int threads = 4;
  size_t ops_per_thread = 100000;
  double bulk_fraction = 0.5;
  double zipf_theta = 0.99;
  size_t scan_length = 100;
  /// Consecutive reads coalesced into one LookupBatch call (`--read_batch N`).
  /// 1 = scalar Lookup path (default, keeps historical numbers comparable).
  size_t read_batch = 1;
  uint64_t seed = 42;
  std::vector<Dataset> datasets = PaperDatasets();
  std::vector<std::string> indexes = PaperIndexLineup();
  std::string dataset_file;  // optional real SOSD file
  /// `--metrics_json PATH`: append one JSON line per run (see
  /// RunOptions::metrics_json); empty = disabled.
  std::string metrics_json;
  /// `--metrics_interval S`: seconds between interval snapshots within a run
  /// (0 = final snapshot only).
  double metrics_interval = 0;
  /// `--trace_json PATH`: enable the flight recorder (common/trace.h) for the
  /// whole process and write a Chrome trace-event JSON file (loadable in
  /// Perfetto / chrome://tracing) on exit of each RunOne. Empty = disabled.
  /// With ALT_TRACING=OFF builds the file still appears but holds no events.
  std::string trace_json;
  /// `--dump_structure PATH`: after each run, append the index's structural
  /// JSON report (memory decomposition, segment/occupancy histograms, ART
  /// census; see AltIndex::StructureJson) to PATH. "-" = stdout.
  std::string dump_structure;
  /// `--path_breakdown`: collect per-(op × serving path) latency attribution
  /// and print the breakdown table after each run.
  bool path_breakdown = false;
  /// `--perf_stat`: per-thread perf_event_open counter groups around the
  /// timed loop; prints the cycles/instructions/LLC-miss/branch-miss per-op
  /// block after each run and adds a "perf" object to the metrics JSON line.
  /// Degrades tier-by-tier when the PMU is unavailable (see
  /// common/perf_counters.h) and says so instead of printing zeros.
  bool perf_stat = false;

  static BenchConfig Parse(int argc, char** argv);
};

/// Dataset keys for `d` under `cfg` (generated, or loaded from --dataset-file).
std::vector<Key> LoadKeys(const BenchConfig& cfg, Dataset d);

/// Bulk-load `index` with cfg.bulk_fraction of `keys` (values = ValueFor) and
/// return the split. Aborts on bulk-load failure.
BenchSetup LoadIndex(ConcurrentIndex* index, const std::vector<Key>& keys,
                     double bulk_fraction);

/// Run `workload` against a freshly built `index_name` over `keys`.
RunResult RunOne(const BenchConfig& cfg, const std::string& index_name,
                 const std::vector<Key>& keys, WorkloadType workload,
                 const AltOptions& alt_options = {});

/// Printing helpers: paper-style aligned table rows.
void PrintHeader(const std::string& title, const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string Fmt(double v, int precision = 2);

}  // namespace bench
}  // namespace alt
