#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/key_codec.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "core/gpl_model.h"

namespace alt {

class EpochManager;

/// \brief The flattened "upper model" (§III-B): an immutable sorted array of
/// model first-keys published through an atomic snapshot pointer, plus the
/// model pointers themselves.
///
/// Two kinds of structural change, both rare and serialized by a lock:
///  - retraining replaces a model *in place* (first_key is preserved, so the
///    sorted order is untouched): an atomic store into the snapshot's slot;
///  - appending a tail model (out-of-range catcher, §III-F) copies the
///    snapshot (copy-on-write) and swings the snapshot pointer.
///
/// Readers run under an EpochGuard on the directory's epoch manager;
/// replaced models/snapshots are retired to that manager.
class ModelDirectory {
 public:
  struct Snapshot {
    explicit Snapshot(size_t n) : first_keys(n), models(n) {}
    std::vector<Key> first_keys;
    std::vector<std::atomic<GplModel*>> models;
    /// Optional radix acceleration (§III-B discusses binary search vs radix
    /// table): radix[r] = index of the model owning the smallest key whose
    /// top `radix_bits` equal r. Narrows the binary search window to the
    /// bucket; empty when radix_bits == 0.
    int radix_bits = 0;
    std::vector<uint32_t> radix;
  };

  /// \param epoch manager replaced models/snapshots retire through; nullptr
  ///        means EpochManager::Global(). Must outlive the directory.
  explicit ModelDirectory(EpochManager* epoch = nullptr);
  ~ModelDirectory();

  ModelDirectory(const ModelDirectory&) = delete;
  ModelDirectory& operator=(const ModelDirectory&) = delete;

  /// Install the initial model list (bulk load, single-threaded). Takes
  /// ownership. Models must be sorted by first_key.
  /// \param radix_bits build a 2^radix_bits-entry prefix table accelerating
  ///        Locate (0 = pure binary search, the paper's choice).
  void Build(std::vector<GplModel*> models, int radix_bits = 0);

  /// Current snapshot; caller must hold an EpochGuard.
  const Snapshot* snapshot() const { return snapshot_.load(std::memory_order_acquire); }

  /// The search window Locate scans for a key: the key's radix bucket when
  /// the table is present, else the full array. The single source of truth
  /// for the radix narrowing — Locate (scalar and AVX2), LocateScalar, and
  /// PrefetchLocate all route through here, so the paths cannot drift.
  struct Window {
    size_t lo = 0;
    size_t hi = 0;
  };
  static Window LocateWindow(const Snapshot& s, Key key) {
    Window w{0, s.first_keys.size()};
    if (s.radix_bits > 0) {
      const size_t r = static_cast<size_t>(key >> (64 - s.radix_bits));
      w.lo = s.radix[r];
      w.hi = s.radix[r + 1];
    }
    return w;
  }

  /// Batched read path stage hook: pull the first-key segment Locate will
  /// search for `key` (the radix bucket when present, else the middle of the
  /// full window) so the upper-model search does not stall the group.
  static void PrefetchLocate(const Snapshot& s, Key key) {
    const Window w = LocateWindow(s, key);
    if (w.lo < w.hi) {
      const size_t mid = w.lo + (w.hi - w.lo) / 2;
      PrefetchRead(&s.first_keys[mid]);
      // The model-pointer cell is read right after the search resolves; its
      // array parallels first_keys, so the same midpoint is the best guess.
      PrefetchRead(&s.models[mid]);
    }
  }

  /// Index of the model responsible for `key`: the last model whose first_key
  /// <= key (clamped to 0 for under-range keys). Dispatches to the AVX2
  /// 8-way probe when the CPU supports it (DESIGN.md §10); bit-identical to
  /// LocateScalar by construction and by tests/simd_test.cc.
  static size_t Locate(const Snapshot& s, Key key) {
    const Window w = LocateWindow(s, key);
    const size_t ub = simd::UpperBoundU64(s.first_keys.data(), w.lo, w.hi, key);
    return ub == 0 ? 0 : ub - 1;
  }

  /// The always-compiled scalar twin (branch-reduced binary search over the
  /// same window). Kept callable — not just a dispatch arm — as the oracle
  /// for the vectorized-vs-scalar differential test.
  static size_t LocateScalar(const Snapshot& s, Key key) {
    const Window w = LocateWindow(s, key);
    const size_t ub =
        simd::UpperBoundU64Scalar(s.first_keys.data(), w.lo, w.hi, key);
    return ub == 0 ? 0 : ub - 1;
  }

  /// Retraining finished: swap `old_model` (at the slot owning `first_key`)
  /// for `new_model`. Retires the old model via the epoch manager.
  /// \return false if the slot no longer holds `old_model`.
  bool PublishReplacement(GplModel* old_model, GplModel* new_model);

  /// Append a model whose first_key is greater than every existing one.
  /// \return false (and leave the directory untouched) if a concurrent append
  /// already installed a model at or beyond this first key.
  bool AppendTail(GplModel* model);

  size_t NumModels() const {
    const Snapshot* s = snapshot_.load(std::memory_order_acquire);
    return s == nullptr ? 0 : s->first_keys.size();
  }

  /// Sum of model footprints (quiescent).
  size_t MemoryBytes() const;

  /// Populate `s->radix` / `s->radix_bits` over the already-sorted
  /// `s->first_keys`. Public so the differential test can build directories
  /// with adversarial first-key layouts without routing through Build.
  static void BuildRadix(Snapshot* s, int radix_bits);

 private:
  void RetireSnapshot(Snapshot* s);

  EpochManager* epoch_;  // resolved at construction, never null

  /// Serializes structural changes (Build / PublishReplacement / AppendTail).
  /// Snapshots themselves stay readable lock-free through `snapshot_`.
  SpinLock structure_lock_;
  int radix_bits_ GUARDED_BY(structure_lock_) = 0;
  std::atomic<Snapshot*> snapshot_{nullptr};
};

}  // namespace alt
