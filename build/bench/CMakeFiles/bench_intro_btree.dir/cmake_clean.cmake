file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_btree.dir/bench_intro_btree.cc.o"
  "CMakeFiles/bench_intro_btree.dir/bench_intro_btree.cc.o.d"
  "bench_intro_btree"
  "bench_intro_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
