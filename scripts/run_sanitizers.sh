#!/usr/bin/env bash
# Build and run the test suite under the sanitizer matrix, mirroring the CI
# jobs in .github/workflows/ci.yml (see DESIGN.md "Locking protocol" for what
# each leg is expected to catch).
#
# Usage: scripts/run_sanitizers.sh [asan|ubsan|tsan|lint|all]
#   asan   ASan+UBSan combined, debug checkers on, full ctest  (CI: address-undefined-sanitizer)
#   ubsan  UBSan alone, full ctest                             (CI: undefined-sanitizer)
#   tsan   TSan over the concurrency-heavy binaries            (CI: thread-sanitizer)
#   lint   build tools/alt_lint and run it over src/           (CI: alt-lint)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"

gen=()
command -v ninja >/dev/null 2>&1 && gen=(-G Ninja)

run_asan() {
  cmake -B build-asan "${gen[@]}" -DCMAKE_BUILD_TYPE=Debug \
    -DALT_SANITIZE="address;undefined" -DALT_DEBUG_CHECKS=ON \
    -DALT_BUILD_BENCHMARKS=OFF -DALT_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
    ctest --test-dir build-asan --output-on-failure -j 4
}

run_ubsan() {
  cmake -B build-ubsan "${gen[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DALT_SANITIZE=undefined \
    -DALT_BUILD_BENCHMARKS=OFF -DALT_BUILD_EXAMPLES=OFF
  cmake --build build-ubsan -j
  ctest --test-dir build-ubsan --output-on-failure -j 4
}

run_tsan() {
  cmake -B build-tsan "${gen[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DALT_SANITIZE=thread \
    -DALT_BUILD_BENCHMARKS=OFF -DALT_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  # Focus on the concurrency-heavy binaries; the full suite is slow under TSan.
  # tsan.supp covers only OlcBTree's by-design optimistic reads.
  local t
  for t in art_test retraining_test concurrency_test olc_btree_test \
           lookup_batch_test epoch_test shard_test server_test; do
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 suppressions=$PWD/tsan.supp" \
      "./build-tsan/tests/$t"
  done
}

run_lint() {
  # Mirrors the alt-lint CI leg: the protocol checker over src/, examples/ and
  # bench/, driven off the exported compilation database so a source file
  # missing from the build is a failure, not a silent skip. The tool is
  # dependency-free, so this is the cheapest mode here by far.
  cmake -B build-lint "${gen[@]}" -DALT_BUILD_LINT=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DALT_BUILD_TESTS=OFF -DALT_BUILD_BENCHMARKS=ON -DALT_BUILD_EXAMPLES=ON
  cmake --build build-lint -j --target alt-lint
  ./build-lint/tools/alt_lint/alt-lint \
    --compdb build-lint/compile_commands.json \
    --src-root src --src-root examples --src-root bench \
    --src-root tools/alt_server --src-root tools/alt_loadgen --verify-compdb
}

case "$mode" in
  asan) run_asan ;;
  ubsan) run_ubsan ;;
  tsan) run_tsan ;;
  lint) run_lint ;;
  all) run_lint; run_asan; run_ubsan; run_tsan ;;
  *) echo "usage: $0 [asan|ubsan|tsan|lint|all]" >&2; exit 2 ;;
esac
